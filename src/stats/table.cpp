#include "stats/table.hpp"

#include <cstdio>
#include <iostream>
#include <sstream>

namespace san {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::to_markdown() const {
  std::vector<size_t> width(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    out << "|";
    for (size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      out << " " << cell << std::string(width[c] - cell.size(), ' ') << " |";
    }
    out << "\n";
  };
  emit(header_);
  out << "|";
  for (size_t c = 0; c < header_.size(); ++c)
    out << std::string(width[c] + 2, '-') << "|";
  out << "\n";
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string Table::to_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < header_.size(); ++c) {
      if (c > 0) out << ",";
      out << (c < row.size() ? row[c] : std::string());
    }
    out << "\n";
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void Table::print() const { std::cout << to_markdown() << std::flush; }

std::string ratio_cell(double ours, double baseline) {
  if (baseline == 0.0) return "-";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fx", ours / baseline);
  return buf;
}

std::string fixed_cell(double value, int decimals) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

}  // namespace san
