// Per-request cost series: mean / percentiles / max and a coarse time-bucket
// view, used by benches and the CLI to report tail behaviour (a reactive
// SAN trades mean cost against occasional expensive reconfiguration bursts;
// the tail is where that shows).
//
// Thread-safety: the const observers (mean / max / percentile /
// bucket_means) may be called concurrently from any number of threads —
// the lazily sorted percentile cache is guarded by an internal mutex.
// add() is a mutation and requires external exclusion against every other
// member, as usual for containers.
#pragma once

#include <cstddef>
#include <mutex>
#include <vector>

#include "core/types.hpp"

namespace san {

class CostSeries {
 public:
  void add(Cost value) {
    values_.push_back(value);
    sorted_ = false;
  }

  std::size_t count() const { return values_.size(); }
  double mean() const;
  Cost max() const;
  /// p in [0, 1]; nearest-rank percentile. Throws TreeError when empty.
  Cost percentile(double p) const;

  /// Means of consecutive time slices (trend over the trace: warm-up,
  /// convergence, drift). Returns exactly min(buckets, count()) slices
  /// whose sizes differ by at most one and cover every value.
  std::vector<double> bucket_means(int buckets) const;

 private:
  /// Must be called with sort_mu_ held.
  void ensure_sorted() const;

  std::vector<Cost> values_;
  /// Guards the lazily sorted cache below so concurrent const readers
  /// (per-shard frontend reporting) do not race on its construction.
  mutable std::mutex sort_mu_;
  mutable std::vector<Cost> sorted_values_;
  mutable bool sorted_ = false;
};

}  // namespace san
