// Per-request cost series: mean / percentiles / max and a coarse time-bucket
// view, used by benches and the CLI to report tail behaviour (a reactive
// SAN trades mean cost against occasional expensive reconfiguration bursts;
// the tail is where that shows).
#pragma once

#include <cstddef>
#include <vector>

#include "core/types.hpp"

namespace san {

class CostSeries {
 public:
  void add(Cost value) {
    values_.push_back(value);
    sorted_ = false;
  }

  std::size_t count() const { return values_.size(); }
  double mean() const;
  Cost max() const;
  /// p in [0, 1]; nearest-rank percentile. Throws TreeError when empty.
  Cost percentile(double p) const;

  /// Means of `buckets` equal consecutive time slices (trend over the
  /// trace: warm-up, convergence, drift).
  std::vector<double> bucket_means(int buckets) const;

 private:
  void ensure_sorted() const;

  std::vector<Cost> values_;
  mutable std::vector<Cost> sorted_values_;
  mutable bool sorted_ = false;
};

}  // namespace san
