// Deterministic, mergeable streaming summaries of pair-demand histograms.
//
// The rebalancer's exact window (workload/rebalance.hpp) keeps one hash-map
// entry per distinct communicating pair, which is fine at n=10^3 but not at
// n=10^6, where a uniform background alone can touch ~window_capacity new
// pairs per epoch. These two sketches bound that state independently of n
// and m while preserving exactly what the planner consumes:
//   * CountMinSketch — point estimates of any pair's window weight
//     (overestimate by at most total_weight * e / width per row, min over
//     depth rows). Cells are doubles so the epoch decay is one multiply.
//   * SpaceSaving   — the top-k heavy pairs with per-entry error bounds;
//     its entry list replaces the exact window's sorted_entries().
// Both are deterministic functions of the observation sequence: hashing is
// splitmix64 (core/rng.hpp) — never std::hash — and every eviction and
// merge tie-breaks on the key, so two runs (or two shards merging their
// summaries) agree bit-for-bit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

namespace san {

/// Count-min sketch over 64-bit keys with double-valued cells.
///
/// estimate() never underestimates the true decayed weight; it
/// overestimates by at most (total weight) * depth-independent collision
/// mass — with width w and total weight W, each row's error is below
/// W * 2 / w with probability >= 1/2 per row, so the min over depth rows is
/// almost surely tight. Width is rounded up to a power of two so the row
/// index is a mask, not a modulo.
class CountMinSketch {
 public:
  /// `width` is rounded up to the next power of two (min 8); `depth` rows
  /// are hashed independently by salting splitmix64 with the row index and
  /// `seed`.
  CountMinSketch(std::size_t width, int depth, std::uint64_t seed = 0);

  void observe(std::uint64_t key, double weight);
  /// Point estimate: min over rows; >= the true accumulated weight.
  double estimate(std::uint64_t key) const;

  /// Multiplies every cell (and the running total) by `factor` — the
  /// epoch-boundary window decay in O(width * depth).
  void scale(double factor);
  /// Cell-wise sum. Throws TreeError unless width, depth and seed match:
  /// differently-shaped sketches do not share index functions.
  void merge(const CountMinSketch& other);
  void clear();

  std::size_t width() const { return width_; }
  int depth() const { return depth_; }
  std::uint64_t seed() const { return seed_; }
  /// Total observed weight (decayed with scale()); the error bound scales
  /// with it.
  double total_weight() const { return total_; }
  std::size_t memory_bytes() const { return cells_.size() * sizeof(double); }

 private:
  std::size_t cell_index(std::uint64_t key, int row) const;

  std::size_t width_ = 0;  ///< power of two
  std::uint64_t mask_ = 0;
  int depth_ = 0;
  std::uint64_t seed_ = 0;
  double total_ = 0.0;
  std::vector<double> cells_;  ///< depth_ rows of width_ cells
};

/// Space-saving heavy-hitters summary over 64-bit keys, capacity-bounded.
///
/// Tracks at most `capacity` keys. An observed key that is already tracked
/// gains its weight; an untracked key evicts the minimum-count entry
/// (deterministic victim: smallest count, then smallest key) and inherits
/// its count as the classical space-saving error bound. Guarantees:
/// count(key) >= true weight for tracked keys, and count - error <= true
/// weight <= count.
class SpaceSaving {
 public:
  struct Entry {
    std::uint64_t key = 0;
    double count = 0.0;  ///< upper bound on the key's true weight
    double error = 0.0;  ///< count - error lower-bounds the true weight
  };

  explicit SpaceSaving(std::size_t capacity);

  void observe(std::uint64_t key, double weight);

  bool contains(std::uint64_t key) const { return items_.count(key) != 0; }
  /// Tracked count (upper bound), or 0 for untracked keys.
  double count(std::uint64_t key) const;
  /// All tracked entries, heaviest first, (count desc, key asc) — the same
  /// deterministic order the exact window's sorted_entries() uses.
  std::vector<Entry> entries() const;

  /// Multiplies every count and error by `factor` (epoch decay). Order is
  /// preserved, so this is O(k) plus one sorted rebuild.
  void scale(double factor);
  /// Drops entries whose count fell below `cut` (aged-out noise).
  void prune_below(double cut);
  /// Key-wise sum of counts and errors over the union, then the heaviest
  /// `capacity` keys are kept (ties broken toward smaller keys). When the
  /// union fits within capacity the merge is exact and associative
  /// bit-for-bit; beyond that the truncation is still a deterministic
  /// function of the two summaries.
  void merge(const SpaceSaving& other);
  void clear();

  std::size_t size() const { return items_.size(); }
  std::size_t capacity() const { return capacity_; }

 private:
  struct Item {
    double count = 0.0;
    double error = 0.0;
  };

  std::size_t capacity_ = 0;
  std::unordered_map<std::uint64_t, Item> items_;
  /// (count, key) ascending: *begin() is the eviction victim; the key in
  /// the ordering makes every tie deterministic.
  std::set<std::pair<double, std::uint64_t>> order_;
};

}  // namespace san
