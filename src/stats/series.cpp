#include "stats/series.hpp"

#include <algorithm>
#include <cmath>

namespace san {

double CostSeries::mean() const {
  if (values_.empty()) return 0.0;
  double sum = 0.0;
  for (Cost v : values_) sum += static_cast<double>(v);
  return sum / static_cast<double>(values_.size());
}

Cost CostSeries::max() const {
  if (values_.empty()) return 0;
  return *std::max_element(values_.begin(), values_.end());
}

void CostSeries::ensure_sorted() const {
  if (sorted_) return;
  sorted_values_ = values_;
  std::sort(sorted_values_.begin(), sorted_values_.end());
  sorted_ = true;
}

Cost CostSeries::percentile(double p) const {
  if (values_.empty()) throw TreeError("CostSeries::percentile: empty series");
  std::lock_guard<std::mutex> lock(sort_mu_);
  ensure_sorted();
  p = std::clamp(p, 0.0, 1.0);
  const auto rank = static_cast<std::size_t>(
      std::ceil(p * static_cast<double>(sorted_values_.size())));
  return sorted_values_[rank == 0 ? 0 : rank - 1];
}

std::vector<double> CostSeries::bucket_means(int buckets) const {
  std::vector<double> out;
  if (buckets <= 0 || values_.empty()) return out;
  // Exactly min(buckets, count()) near-equal slices: slice i covers
  // [i*count/nb, (i+1)*count/nb), so sizes differ by at most one and the
  // slices tile the series. Ceil-division sizing here used to emit fewer
  // buckets than requested (5 values / 4 buckets -> 3 slices of 2+2+1).
  const std::size_t nb =
      std::min(static_cast<std::size_t>(buckets), values_.size());
  out.reserve(nb);
  for (std::size_t b = 0; b < nb; ++b) {
    const std::size_t begin = b * values_.size() / nb;
    const std::size_t end = (b + 1) * values_.size() / nb;
    double sum = 0.0;
    for (std::size_t i = begin; i < end; ++i)
      sum += static_cast<double>(values_[i]);
    out.push_back(sum / static_cast<double>(end - begin));
  }
  return out;
}

}  // namespace san
