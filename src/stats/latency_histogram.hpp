// LatencyHistogram: fixed-memory log-bucketed histogram for tail-latency
// reporting (p50 / p99 / p999) in the open-loop serving frontend.
//
// Values are nanoseconds (any nonnegative 64-bit scalar works). Buckets
// follow the HdrHistogram idea: 32 linear sub-buckets per power of two, so
// the relative quantile error is bounded by 2^-5 ~ 3.1% at every
// magnitude, with exact resolution below 32. The bucket array is a fixed
// 1920-slot table (~15 KB) regardless of how many values are recorded —
// each shard worker owns one and records per-request sojourn times
// allocation-free.
//
// Histograms merge by adding bucket counts (plus exact count/sum/min/max),
// which is the mergeable-summary shape of federated quantile estimation:
// per-shard distributions combine into exact global bucket counts, so a
// global quantile is as accurate as if one histogram had seen every
// request. merge() is the frontend's cross-shard aggregation path.
//
// Not internally synchronized: one writer per instance (merge after join),
// like every other accumulator in the codebase.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace san {

class LatencyHistogram {
 public:
  /// Linear sub-buckets per octave; 2^kSubBits bounds the relative error.
  static constexpr int kSubBits = 5;
  static constexpr std::uint64_t kSubBuckets = std::uint64_t{1} << kSubBits;
  /// (64 - kSubBits + 1) octave groups of kSubBuckets slots cover the full
  /// uint64 range (values < kSubBuckets map to themselves exactly).
  static constexpr std::size_t kBuckets = (64 - kSubBits + 1) * kSubBuckets;

  void record(std::uint64_t value_ns);

  /// Adds `other`'s counts into this histogram (bucket-wise, plus the
  /// exact count / sum / min / max). Associative and commutative.
  void merge(const LatencyHistogram& other);

  std::uint64_t count() const { return count_; }
  /// Exact mean of everything recorded (tracked outside the buckets).
  double mean() const;
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return max_; }

  /// Nearest-rank quantile, q in [0, 1]; returns the representative
  /// (midpoint) value of the bucket holding that rank, so the result is
  /// within 2^-kSubBits of the true order statistic. q <= 0 returns the
  /// exact min, q >= 1 the exact max. Returns 0 on an empty histogram.
  std::uint64_t quantile(double q) const;

  std::uint64_t p50() const { return quantile(0.50); }
  std::uint64_t p99() const { return quantile(0.99); }
  std::uint64_t p999() const { return quantile(0.999); }

  /// Bucket index of a value (exposed for tests).
  static std::size_t bucket_index(std::uint64_t value);
  /// Inclusive lower edge of bucket `index`.
  static std::uint64_t bucket_low(std::size_t index);
  /// Representative (midpoint) value of bucket `index`.
  static std::uint64_t bucket_mid(std::size_t index);

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~std::uint64_t{0};
  std::uint64_t max_ = 0;
};

}  // namespace san
