#include "stats/latency_histogram.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace san {

std::size_t LatencyHistogram::bucket_index(std::uint64_t value) {
  if (value < kSubBuckets) return static_cast<std::size_t>(value);
  // Octave of the value's most significant bit, kSubBits of mantissa.
  const int msb = 63 - std::countl_zero(value);
  const int shift = msb - kSubBits;
  const std::uint64_t mantissa = (value >> shift) - kSubBuckets;
  return static_cast<std::size_t>(shift + 1) *
             static_cast<std::size_t>(kSubBuckets) +
         static_cast<std::size_t>(mantissa);
}

std::uint64_t LatencyHistogram::bucket_low(std::size_t index) {
  if (index < kSubBuckets) return index;
  const std::size_t group = index / kSubBuckets;  // >= 1
  const std::uint64_t mantissa = index % kSubBuckets;
  const int shift = static_cast<int>(group) - 1;
  return (kSubBuckets + mantissa) << shift;
}

std::uint64_t LatencyHistogram::bucket_mid(std::size_t index) {
  if (index < kSubBuckets) return index;  // width 1: exact
  const std::size_t group = index / kSubBuckets;
  const int shift = static_cast<int>(group) - 1;
  const std::uint64_t width = std::uint64_t{1} << shift;
  return bucket_low(index) + width / 2;
}

void LatencyHistogram::record(std::uint64_t value_ns) {
  ++counts_[bucket_index(value_ns)];
  ++count_;
  sum_ += value_ns;
  min_ = std::min(min_, value_ns);
  max_ = std::max(max_, value_ns);
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (std::size_t i = 0; i < kBuckets; ++i) counts_[i] += other.counts_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double LatencyHistogram::mean() const {
  return count_ == 0
             ? 0.0
             : static_cast<double>(sum_) / static_cast<double>(count_);
}

std::uint64_t LatencyHistogram::quantile(double q) const {
  if (count_ == 0) return 0;
  if (q <= 0.0) return min();
  if (q >= 1.0) return max_;
  // Nearest rank: the ceil(q * count)-th smallest recorded value.
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  const std::uint64_t target = std::max<std::uint64_t>(rank, 1);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += counts_[i];
    if (seen >= target)
      return std::clamp<std::uint64_t>(bucket_mid(i), min(), max_);
  }
  return max_;  // unreachable: counts_ sums to count_
}

}  // namespace san
