#include "stats/sketch.hpp"

#include <algorithm>

#include "core/rng.hpp"
#include "core/types.hpp"

namespace san {

namespace {

std::size_t round_up_pow2(std::size_t x) {
  std::size_t p = 8;
  while (p < x) p <<= 1;
  return p;
}

}  // namespace

CountMinSketch::CountMinSketch(std::size_t width, int depth,
                               std::uint64_t seed)
    : seed_(seed) {
  if (depth < 1 || depth > 16)
    throw TreeError("CountMinSketch: depth must be in [1, 16]");
  width_ = round_up_pow2(width);
  mask_ = width_ - 1;
  depth_ = depth;
  cells_.assign(width_ * static_cast<std::size_t>(depth_), 0.0);
}

std::size_t CountMinSketch::cell_index(std::uint64_t key, int row) const {
  // Row salting: mix the row index through splitmix64 first so rows are
  // pairwise independent even for adjacent seeds, then mix the key in.
  const std::uint64_t salt =
      splitmix64_mix(seed_ + 0x9e3779b97f4a7c15ull *
                                 static_cast<std::uint64_t>(row + 1));
  const std::uint64_t h = splitmix64_mix(key ^ salt);
  return static_cast<std::size_t>(row) * width_ +
         static_cast<std::size_t>(h & mask_);
}

void CountMinSketch::observe(std::uint64_t key, double weight) {
  for (int row = 0; row < depth_; ++row) cells_[cell_index(key, row)] += weight;
  total_ += weight;
}

double CountMinSketch::estimate(std::uint64_t key) const {
  double best = cells_[cell_index(key, 0)];
  for (int row = 1; row < depth_; ++row)
    best = std::min(best, cells_[cell_index(key, row)]);
  return best;
}

void CountMinSketch::scale(double factor) {
  for (double& c : cells_) c *= factor;
  total_ *= factor;
}

void CountMinSketch::merge(const CountMinSketch& other) {
  if (width_ != other.width_ || depth_ != other.depth_ ||
      seed_ != other.seed_)
    throw TreeError(
        "CountMinSketch::merge: width/depth/seed mismatch — differently "
        "shaped sketches do not share index functions");
  for (std::size_t i = 0; i < cells_.size(); ++i) cells_[i] += other.cells_[i];
  total_ += other.total_;
}

void CountMinSketch::clear() {
  std::fill(cells_.begin(), cells_.end(), 0.0);
  total_ = 0.0;
}

SpaceSaving::SpaceSaving(std::size_t capacity) : capacity_(capacity) {
  if (capacity_ < 1) throw TreeError("SpaceSaving: capacity must be >= 1");
}

void SpaceSaving::observe(std::uint64_t key, double weight) {
  const auto it = items_.find(key);
  if (it != items_.end()) {
    order_.erase({it->second.count, key});
    it->second.count += weight;
    order_.insert({it->second.count, key});
    return;
  }
  if (items_.size() < capacity_) {
    items_.emplace(key, Item{weight, 0.0});
    order_.insert({weight, key});
    return;
  }
  // Evict the deterministic minimum (smallest count, then smallest key);
  // the newcomer inherits its count as the space-saving error bound.
  const auto victim = order_.begin();
  const double floor = victim->first;
  items_.erase(victim->second);
  order_.erase(victim);
  items_.emplace(key, Item{floor + weight, floor});
  order_.insert({floor + weight, key});
}

double SpaceSaving::count(std::uint64_t key) const {
  const auto it = items_.find(key);
  return it == items_.end() ? 0.0 : it->second.count;
}

std::vector<SpaceSaving::Entry> SpaceSaving::entries() const {
  std::vector<Entry> out;
  out.reserve(items_.size());
  for (const auto& [key, item] : items_)
    out.push_back({key, item.count, item.error});
  // (count desc, key asc): the exact window's sorted_entries() order, and
  // independent of hash-map iteration order.
  std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.key < b.key;
  });
  return out;
}

void SpaceSaving::scale(double factor) {
  // A positive factor preserves the (count, key) order, so the new set can
  // be rebuilt from the old one in sorted order (O(k) via end-hints).
  std::set<std::pair<double, std::uint64_t>> scaled;
  for (const auto& [count, key] : order_)
    scaled.emplace_hint(scaled.end(), count * factor, key);
  order_ = std::move(scaled);
  for (auto& [key, item] : items_) {
    item.count *= factor;
    item.error *= factor;
  }
}

void SpaceSaving::prune_below(double cut) {
  while (!order_.empty() && order_.begin()->first < cut) {
    items_.erase(order_.begin()->second);
    order_.erase(order_.begin());
  }
}

void SpaceSaving::merge(const SpaceSaving& other) {
  for (const auto& [key, item] : other.items_) {
    const auto it = items_.find(key);
    if (it == items_.end()) {
      items_.emplace(key, item);
    } else {
      it->second.count += item.count;
      it->second.error += item.error;
    }
  }
  // Rebuild the order index once, then truncate to capacity by evicting
  // the lightest entries (smallest count, then smallest key) — the same
  // deterministic victim rule observe() uses.
  order_.clear();
  for (const auto& [key, item] : items_) order_.insert({item.count, key});
  while (items_.size() > capacity_) {
    items_.erase(order_.begin()->second);
    order_.erase(order_.begin());
  }
}

void SpaceSaving::clear() {
  items_.clear();
  order_.clear();
}

}  // namespace san
