#include "sim/sweep.hpp"

#include <exception>
#include <mutex>

namespace san {

std::vector<SimResult> run_sweep(const std::vector<SweepCase>& cases,
                                 int threads) {
  for (const SweepCase& c : cases)
    if (!c.make_network || c.trace == nullptr)
      throw TreeError("run_sweep: case missing factory or trace");

  std::vector<SimResult> results(cases.size());
  std::exception_ptr first_error;
  std::mutex error_mu;
  parallel_for(0, static_cast<long>(cases.size()), threads, [&](long i) {
    try {
      const SweepCase& c = cases[static_cast<size_t>(i)];
      std::unique_ptr<Network> net = c.make_network();
      results[static_cast<size_t>(i)] = run_trace(*net, *c.trace);
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mu);
      if (!first_error) first_error = std::current_exception();
    }
  });
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

}  // namespace san
