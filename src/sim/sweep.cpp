#include "sim/sweep.hpp"

#include "core/parallel.hpp"

namespace san {

std::vector<SimResult> run_sweep(const std::vector<SweepCase>& cases,
                                 int threads) {
  for (const SweepCase& c : cases)
    if (!c.make_network || c.trace == nullptr)
      throw TreeError("run_sweep: case missing factory or trace");

  // Each case writes only its own slot, so results are positional and
  // bit-identical across thread counts; the Executor rethrows the first
  // worker exception after the round drains.
  std::vector<SimResult> results(cases.size());
  parallel_for(0, static_cast<long>(cases.size()), threads, [&](long i) {
    const SweepCase& c = cases[static_cast<size_t>(i)];
    AnyNetwork net = c.make_network();
    results[static_cast<size_t>(i)] = run_trace(net, *c.trace);
  });
  return results;
}

}  // namespace san
