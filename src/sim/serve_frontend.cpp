#include "sim/serve_frontend.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "workload/rebalance.hpp"

namespace san {
namespace {

using Clock = std::chrono::steady_clock;

/// splitmix64, the deterministic stream behind handover-retry backoff
/// jitter. Stable across platforms so a backoff schedule is a pure
/// function of (backoff_seed, worker slot).
std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Circuit-breaker states, one per shard. kRecovery is dispatcher-owned
/// (set around a shard kill's recovery window); kOpen is worker-owned
/// (tripped by handover-retry exhaustion, half-opened by a probe).
constexpr int kBreakerClosed = 0;
constexpr int kBreakerOpen = 1;
constexpr int kBreakerRecovery = 2;

/// One queued operation, in global ids (local ids are resolved on
/// admission so queued items survive migrations).
struct QueueItem {
  NodeId src = kNoNode;
  NodeId dst = kNoNode;          ///< kNoNode marks a handover second leg
  std::uint64_t arrival_ns = 0;  ///< intended arrival (latency origin)
  std::uint64_t deadline_ns = 0;  ///< absolute deadline; 0 = none. Only
                                  ///< fresh items carry one: a handover
                                  ///< second leg always completes (its
                                  ///< first leg already mutated a tree).
  Cost pending_top = 0;           ///< top-tree legs accumulated so far

  bool is_handover() const { return dst == kNoNode; }
};

/// Per-shard inbox: a bounded main queue (dispatcher -> worker) plus a
/// mailbox (worker -> worker handovers) that is unbounded under kBlock
/// and bounded under the degradation modes. MPSC; one mutex and one
/// wakeup per admitted *batch*, not per request.
class ShardInbox {
 public:
  ShardInbox(std::size_t capacity, std::size_t mail_capacity)
      : capacity_(capacity), mail_capacity_(mail_capacity) {}

  /// Dispatcher push; blocks while the main queue is full. Returns true
  /// when it had to wait (the queue was full on arrival) — the
  /// queue_full_blocks signal.
  bool push_main(const QueueItem& item) {
    std::unique_lock<std::mutex> lock(mu_);
    bool waited = false;
    while (main_.size() >= capacity_) {
      waited = true;
      not_full_.wait(lock);
    }
    const bool was_empty = main_.empty() && mail_.empty();
    main_.push_back(item);
    if (was_empty) not_empty_.notify_one();
    return waited;
  }

  /// Dispatcher push under kShed; false when the main queue is full.
  bool try_push_main(const QueueItem& item) {
    std::lock_guard<std::mutex> lock(mu_);
    if (main_.size() >= capacity_) return false;
    const bool was_empty = main_.empty() && mail_.empty();
    main_.push_back(item);
    if (was_empty) not_empty_.notify_one();
    return true;
  }

  /// Worker-to-worker handover push; never blocks. False when the mailbox
  /// is bounded (degradation modes) and full — callers retry or shed.
  bool push_mail(const QueueItem& item) {
    std::lock_guard<std::mutex> lock(mu_);
    if (mail_capacity_ != 0 && mail_.size() >= mail_capacity_) return false;
    const bool was_empty = main_.empty() && mail_.empty();
    mail_.push_back(item);
    if (was_empty) not_empty_.notify_one();
    return true;
  }

  /// Admits up to `max_items` into `out`, mailbox first (handover ops are
  /// half-served; finishing them first bounds cross-shard sojourn).
  /// Blocks while empty; returns 0 only when closed and fully drained.
  std::size_t pop_batch(std::vector<QueueItem>& out, std::size_t max_items) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock,
                    [&] { return closed_ || !mail_.empty() || !main_.empty(); });
    std::size_t n = 0;
    while (n < max_items && !mail_.empty()) {
      out.push_back(mail_.front());
      mail_.pop_front();
      ++n;
    }
    bool popped_main = false;
    while (n < max_items && !main_.empty()) {
      out.push_back(main_.front());
      main_.pop_front();
      popped_main = true;
      ++n;
    }
    if (popped_main) not_full_.notify_one();  // single dispatcher waits here
    return n;
  }

  void close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  /// Re-arms a closed, drained inbox so a respawned worker (worker-kill
  /// recovery) or a slot-reusing split can serve from it again.
  void reopen() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = false;
  }

  /// Dispatcher-only (same thread as push_main): the kQueuePressure fault
  /// collapses the bound, the next quiesce barrier restores it.
  void set_capacity(std::size_t capacity) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      capacity_ = capacity;
    }
    not_full_.notify_all();
  }

  std::size_t capacity() {
    std::lock_guard<std::mutex> lock(mu_);
    return capacity_;
  }

 private:
  std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<QueueItem> mail_;
  std::deque<QueueItem> main_;
  std::size_t capacity_;
  std::size_t mail_capacity_;  ///< 0 = unbounded (kBlock compat mode)
  bool closed_ = false;
};

/// Worker-owned accumulators. Written only by the owning worker thread
/// (a slot keeps one WorkerState across worker-kill respawns and shard
/// reassignments, so counters only ever accumulate); read by the
/// dispatcher at quiesce barriers (ordered by the acquire load of
/// `completed` against the workers' release increments) and after join.
/// The trailing histograms make the struct large enough that neighbouring
/// workers' hot counters do not share a cache line.
struct WorkerState {
  Cost routing = 0;
  Cost rotations = 0;
  Cost edges = 0;
  /// Measured cross/intra split feeding the rebalancer's cost model
  /// (ascents + top legs vs local serves), same convention as the batch
  /// pipeline's ChunkSplit.
  Cost ascent_cost = 0;
  Cost intra_cost = 0;
  std::size_t intra_requests = 0;
  std::size_t cross_requests = 0;  ///< completed second legs
  Cost replica_reads = 0;          ///< intra serves answered by the replica
  std::size_t handovers = 0;
  std::size_t forwards = 0;
  Cost reordered = 0;  ///< batch slots permuted by the locality schedule
  Cost deadline_expired = 0;  ///< shed at dequeue, pre-mutation
  Cost cross_shed = 0;        ///< handover/forward legs shed by the
                              ///< breaker or retry exhaustion
  Cost breaker_trips = 0;
  std::uint64_t probe_clock = 0;  ///< half-open probe cadence counter
  LatencyHistogram sojourn;
  LatencyHistogram queue_wait;
  LatencyHistogram shed;  ///< age at drop of dequeue/handover sheds
};

}  // namespace

const char* queue_policy_name(QueuePolicy policy) {
  switch (policy) {
    case QueuePolicy::kBlock:
      return "block";
    case QueuePolicy::kShed:
      return "shed";
    case QueuePolicy::kDeadline:
      return "deadline";
  }
  return "?";
}

ServeFrontend::ServeFrontend(ShardedNetwork& net, FrontendOptions opt)
    : net_(net), opt_(opt) {
  if (opt_.admission_batch < 1)
    throw TreeError("ServeFrontend: admission_batch must be >= 1");
  if (opt_.queue_capacity < 1)
    throw TreeError("ServeFrontend: queue_capacity must be >= 1");
  opt_.schedule.validate();
  if (opt_.schedule.reorders() && opt_.admission_batch < 2)
    throw TreeError(
        "ServeFrontend: locality schedule needs admission_batch >= 2 "
        "(a 1-item batch can never reorder)");
  if (opt_.queue_policy == QueuePolicy::kDeadline && opt_.deadline_ms <= 0.0)
    throw TreeError("ServeFrontend: kDeadline needs deadline_ms > 0");
  if (opt_.queue_policy != QueuePolicy::kDeadline && opt_.deadline_ms != 0.0)
    throw TreeError(
        "ServeFrontend: deadline_ms requires the kDeadline queue policy");
  if (opt_.admit_rate < 0.0 || opt_.admit_burst < 0.0)
    throw TreeError("ServeFrontend: admit_rate/admit_burst must be >= 0");
  if (opt_.handover_retries < 0)
    throw TreeError("ServeFrontend: handover_retries must be >= 0");
  if (opt_.breaker_threshold < 1)
    throw TreeError("ServeFrontend: breaker_threshold must be >= 1");
  if (opt_.faults != nullptr) opt_.faults->validate();
}

FrontendResult ServeFrontend::run(const Trace& trace,
                                  std::span<const std::uint64_t> arrivals) {
  if (arrivals.size() != trace.size())
    throw TreeError("ServeFrontend::run: one arrival time per request");
  TraceStream stream(trace);
  FixedArrivalSchedule schedule(arrivals);
  FrontendResult res = run_stream(stream, schedule);
  // With an unchanged map the dispatch-time counters already are the final
  // intra fraction; a migrated (or split/merged — shard ids rewritten
  // wholesale) map needs the full-trace re-scan, which the single-pass
  // engine cannot perform.
  if (res.sim.migrations != 0 || res.sim.shard_splits != 0 ||
      res.sim.shard_merges != 0)
    res.sim.post_intra_fraction =
        compute_shard_stats(trace, net_.map()).intra_fraction();
  return res;
}

FrontendResult ServeFrontend::run_stream(RequestStream& stream,
                                         ArrivalSchedule& schedule) {
  const int S0 = net_.num_shards();
  const std::size_t total = stream.size();
  const bool lifecycle =
      opt_.rebalance != nullptr && opt_.rebalance->lifecycle_enabled();
  // Worker slots are preallocated to the lifecycle ceiling so the fleet
  // can grow without reallocating any array a live worker reads: splits
  // claim a fresh (or previously retired) slot, merges retire one.
  const int max_workers =
      lifecycle ? std::max(S0, opt_.rebalance->max_shards) : S0;
  const bool degrade = opt_.queue_policy != QueuePolicy::kBlock;
  const std::size_t mail_cap =
      degrade ? (opt_.mailbox_capacity != 0 ? opt_.mailbox_capacity
                                            : 4 * opt_.queue_capacity)
              : 0;  // kBlock keeps the lossless unbounded mailbox

  FrontendResult res;

  const auto n_slots = static_cast<std::size_t>(max_workers);
  std::vector<std::unique_ptr<ShardInbox>> inboxes(n_slots);  // mutexes
                                                              // don't move
  std::vector<WorkerState> workers(n_slots);
  std::vector<std::thread> threads(n_slots);
  // The shard-route table: shard id -> worker slot (`route`) and its
  // inverse (`owned`, -1 = slot free/retired). Mutated by the dispatcher
  // only at quiesce barriers — the pipeline is empty, every worker is
  // parked in pop_batch — and published through the inbox mutexes (any
  // item a worker pops was pushed after the mutation). `route_epoch` is
  // the version counter: workers re-resolve their shard id and tree
  // pointer when it moves (splits/merges reallocate the shard vector, so
  // a cached reference can dangle across a barrier).
  std::vector<int> route(n_slots, -1);
  std::vector<int> owned(n_slots, -1);
  std::atomic<std::uint64_t> route_epoch{0};
  // Per-shard circuit breakers (degradation modes only; see file comment).
  std::vector<std::atomic<int>> breaker_state(n_slots);
  std::vector<std::atomic<int>> breaker_failures(n_slots);
  std::atomic<std::size_t> completed{0};
  for (int s = 0; s < S0; ++s) {
    inboxes[static_cast<std::size_t>(s)] =
        std::make_unique<ShardInbox>(opt_.queue_capacity, mail_cap);
    route[static_cast<std::size_t>(s)] = s;
    owned[static_cast<std::size_t>(s)] = s;
  }

  const Clock::time_point start = Clock::now();
  auto now_ns = [&start] {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start)
            .count());
  };

  // ---- dynamic worker fleet -------------------------------------------
  auto worker_loop = [&](int w) {
    WorkerState& ws = workers[static_cast<std::size_t>(w)];
    ShardInbox& inbox = *inboxes[static_cast<std::size_t>(w)];
    // Resolved lazily at the first popped batch (sentinel epoch): an idle
    // worker that reads the route table or the shard vector at startup
    // has no happens-before edge to a later barrier's split/merge realloc
    // — it completed nothing, so the quiesce never observed it. Every
    // read below is sandwiched between an inbox pop and this worker's
    // own `completed` release, which the barrier acquires.
    int my_shard = -1;
    KArySplayNet* shard = nullptr;
    std::uint64_t seen_epoch = ~std::uint64_t{0};
    std::uint64_t rng =
        opt_.backoff_seed ^
        (0x9E3779B97F4A7C15ull * (static_cast<std::uint64_t>(w) + 1));
    // Deterministic backoff between handover retries: exponential base
    // plus seeded jitter, microseconds-scale so retry exhaustion resolves
    // well under any realistic deadline.
    auto backoff = [&](int attempt) {
      const std::uint64_t base = 2'000ull << std::min(attempt, 10);
      std::this_thread::sleep_for(
          std::chrono::nanoseconds(base + splitmix64(rng) % (base / 2 + 1)));
    };
    // Shed bookkeeping for an item this worker drops (deadline at
    // dequeue, breaker, retry exhaustion): record its age and dispose of
    // it so the quiesce accounting sees every admitted request exactly
    // once.
    auto shed_item = [&](const QueueItem& item) {
      ws.shed.record(now_ns() - item.arrival_ns);
      completed.fetch_add(1, std::memory_order_release);
    };
    // Delivers a mailbox leg to `target`'s worker. kBlock: unbounded push,
    // always succeeds. Degradation modes: the target's breaker may shed
    // outright (open or mid-recovery), a full mailbox is retried with
    // deterministic backoff, and exhaustion feeds the breaker. Returns
    // false when the leg was shed (caller completes it via shed_item).
    auto deliver = [&](int target, const QueueItem& leg) -> bool {
      ShardInbox& box = *inboxes[static_cast<std::size_t>(route[
          static_cast<std::size_t>(target)])];
      if (!degrade) {
        box.push_mail(leg);
        return true;
      }
      std::atomic<int>& st = breaker_state[static_cast<std::size_t>(target)];
      std::atomic<int>& failures =
          breaker_failures[static_cast<std::size_t>(target)];
      const int state = st.load(std::memory_order_acquire);
      if (state == kBreakerRecovery) return false;
      if (state == kBreakerOpen) {
        // Half-open: every 16th leg probes the mailbox; one success
        // closes the breaker again.
        if (++ws.probe_clock % 16 != 0) return false;
        if (box.push_mail(leg)) {
          st.store(kBreakerClosed, std::memory_order_release);
          failures.store(0, std::memory_order_relaxed);
          return true;
        }
        return false;
      }
      for (int attempt = 0;; ++attempt) {
        if (box.push_mail(leg)) {
          failures.store(0, std::memory_order_relaxed);
          return true;
        }
        if (attempt >= opt_.handover_retries) break;
        backoff(attempt);
      }
      if (failures.fetch_add(1, std::memory_order_relaxed) + 1 >=
          opt_.breaker_threshold) {
        int expect = kBreakerClosed;
        if (st.compare_exchange_strong(expect, kBreakerOpen))
          ++ws.breaker_trips;
      }
      return false;
    };
    std::vector<QueueItem> batch;
    batch.reserve(static_cast<std::size_t>(opt_.admission_batch));
    auto process_item = [&](const QueueItem& item) {
      const ShardMap& map = net_.map();
      if (item.is_handover()) {
        // Second leg of a cross-shard request: ascend v, charge the
        // accumulated top-tree legs, complete.
        const int home = map.shard_of(item.src);
        if (home != my_shard) {  // lost a race with a migration: forward
          QueueItem fwd = item;
          fwd.pending_top += net_.top_distance(my_shard, home);
          ++ws.forwards;
          if (!deliver(home, fwd)) {
            ++ws.cross_shed;
            shed_item(fwd);
          }
          return;
        }
        const ServeResult sr = shard->access(map.local_of(item.src));
        if (KArySplayNet* rep = net_.replica_mut(my_shard))
          rep->access(map.local_of(item.src));
        ws.routing += sr.routing_cost + item.pending_top;
        ws.rotations += sr.rotations;
        ws.edges += sr.edge_changes;
        ws.ascent_cost += sr.routing_cost +
                          static_cast<Cost>(sr.rotations) + item.pending_top;
        ++ws.cross_requests;
        ws.sojourn.record(now_ns() - item.arrival_ns);
        completed.fetch_add(1, std::memory_order_release);
        return;
      }
      const int a = map.shard_of(item.src);
      if (a != my_shard) {  // fresh item whose source migrated away
        ++ws.forwards;
        if (!deliver(a, item)) {
          ++ws.cross_shed;
          shed_item(item);
        }
        return;
      }
      // Deadline shed at dequeue, before any tree mutation: a request
      // that expired while queued never touches state.
      if (item.deadline_ns != 0 && now_ns() > item.deadline_ns) {
        ++ws.deadline_expired;
        shed_item(item);
        return;
      }
      ws.queue_wait.record(now_ns() - item.arrival_ns);
      const int b = map.shard_of(item.dst);
      if (b == my_shard) {
        // A replicated shard answers intra requests from its lockstep
        // replica (bit-identical results — the pair never diverges) and
        // mirrors the splay into the primary; cost is charged once.
        ServeResult sr;
        if (KArySplayNet* rep = net_.replica_mut(my_shard)) {
          sr = rep->serve(map.local_of(item.src), map.local_of(item.dst));
          shard->serve(map.local_of(item.src), map.local_of(item.dst));
          ++ws.replica_reads;
        } else {
          sr = shard->serve(map.local_of(item.src), map.local_of(item.dst));
        }
        ws.routing += sr.routing_cost;
        ws.rotations += sr.rotations;
        ws.edges += sr.edge_changes;
        ws.intra_cost += sr.routing_cost + static_cast<Cost>(sr.rotations);
        ++ws.intra_requests;
        ws.sojourn.record(now_ns() - item.arrival_ns);
        completed.fetch_add(1, std::memory_order_release);
      } else {
        // First leg: ascend u to this shard's root, hand the request
        // over to v's shard with the top-tree route priced in.
        const ServeResult sr = shard->access(map.local_of(item.src));
        if (KArySplayNet* rep = net_.replica_mut(my_shard))
          rep->access(map.local_of(item.src));
        ws.routing += sr.routing_cost;
        ws.rotations += sr.rotations;
        ws.edges += sr.edge_changes;
        ws.ascent_cost += sr.routing_cost + static_cast<Cost>(sr.rotations);
        ++ws.handovers;
        QueueItem leg;
        leg.src = item.dst;
        leg.arrival_ns = item.arrival_ns;
        leg.pending_top = net_.top_distance(my_shard, b);
        if (!deliver(b, leg)) {
          ++ws.cross_shed;
          shed_item(leg);
        }
      }
    };
    // Resolves a queued item into this worker's shard-local id space for
    // the locality scheduler. Items for other shards (forwards) and
    // handovers/first legs key as root ascents or foreign ops; fleet and
    // map changes only land at quiesce barriers, so the map is stable per
    // batch.
    auto resolve = [&](const QueueItem& item) -> ScheduleEndpoints {
      const ShardMap& map = net_.map();
      if (map.shard_of(item.src) != my_shard) return {kNoNode, kNoNode};
      const NodeId u = map.local_of(item.src);
      if (item.is_handover() || map.shard_of(item.dst) != my_shard)
        return {u, kNoNode};  // root ascent (second or first leg)
      return {u, map.local_of(item.dst)};
    };
    LocalityScheduler scheduler(opt_.schedule);
    const bool reorder = opt_.schedule.reorders();
    for (;;) {
      batch.clear();
      if (inbox.pop_batch(batch,
                          static_cast<std::size_t>(opt_.admission_batch)) ==
          0) {
        // Closed and drained. += so counters survive worker-kill respawns
        // on this slot.
        ws.reordered += scheduler.reordered();
        return;
      }
      const std::uint64_t e = route_epoch.load(std::memory_order_acquire);
      if (e != seen_epoch) {  // fleet changed shape at a barrier
        seen_epoch = e;
        my_shard = owned[static_cast<std::size_t>(w)];
        shard = &net_.shard(my_shard);
      }
      if (!reorder) {
        for (const QueueItem& item : batch) process_item(item);
      } else {
        scheduler.run(shard->tree(), std::span<QueueItem>(batch), resolve,
                      process_item);
      }
    }
  };

  auto spawn_worker = [&](int w, int shard_id) {
    auto& slot = inboxes[static_cast<std::size_t>(w)];
    if (slot == nullptr)
      slot = std::make_unique<ShardInbox>(opt_.queue_capacity, mail_cap);
    else
      slot->reopen();  // reclaimed after an earlier merge retired it
    owned[static_cast<std::size_t>(w)] = shard_id;
    route[static_cast<std::size_t>(shard_id)] = w;
    threads[static_cast<std::size_t>(w)] = std::thread(worker_loop, w);
  };
  auto retire_worker = [&](int w) {
    inboxes[static_cast<std::size_t>(w)]->close();
    threads[static_cast<std::size_t>(w)].join();
    owned[static_cast<std::size_t>(w)] = -1;
  };
  auto free_slot = [&]() -> int {
    for (int w = 0; w < max_workers; ++w)
      if (owned[static_cast<std::size_t>(w)] == -1 &&
          !threads[static_cast<std::size_t>(w)].joinable())
        return w;
    return -1;
  };
  auto publish_epoch = [&] {
    route_epoch.fetch_add(1, std::memory_order_release);
    ++res.route_epochs;
  };

  for (int s = 0; s < S0; ++s)
    threads[static_cast<std::size_t>(s)] = std::thread(worker_loop, s);

  // ---- open-loop dispatcher (caller thread) ---------------------------
  const bool adaptive =
      opt_.rebalance != nullptr &&
      ((opt_.rebalance->enabled() && S0 > 1) || lifecycle);
  RebalanceState state(adaptive ? *opt_.rebalance : RebalanceConfig{});
  const std::size_t epoch =
      adaptive ? opt_.rebalance->epoch_requests : total + 1;
  const RebalanceCostHints base_hints = net_.cost_hints();
  const double decay = adaptive ? opt_.rebalance->window_decay : 1.0;
  // Exponentially aged measured costs (same scheme as run_trace_sharded):
  // deltas of the workers' cumulative counters between barriers.
  double cross_cost_w = 0.0, intra_cost_w = 0.0;
  double cross_reqs_w = 0.0, intra_reqs_w = 0.0;
  Cost prev_ascent = 0, prev_intra_cost = 0;
  std::size_t prev_cross = 0, prev_intra = 0;

  auto quiesce = [&](std::size_t dispatched) {
    while (completed.load(std::memory_order_acquire) < dispatched)
      std::this_thread::yield();
  };

  // Queue-pressure windows: (worker slot, original capacity) pairs,
  // restored at the next quiesce barrier.
  std::vector<std::pair<int, std::size_t>> pressured;
  auto restore_pressure = [&] {
    for (const auto& [w, cap] : pressured)
      inboxes[static_cast<std::size_t>(w)]->set_capacity(cap);
    pressured.clear();
  };
  // Barriers reset the breakers: the fleet just proved it can drain, so
  // congestion-tripped breakers half-open wholesale (and merge renumbering
  // would stale per-shard state anyway).
  auto reset_breakers = [&] {
    if (!degrade) return;
    for (int i = 0; i < max_workers; ++i) {
      breaker_state[static_cast<std::size_t>(i)].store(
          kBreakerClosed, std::memory_order_release);
      breaker_failures[static_cast<std::size_t>(i)].store(
          0, std::memory_order_relaxed);
    }
  };

  // ---- scripted fault injection (sim/fault.hpp) -----------------------
  // While events are pending the dispatcher keeps a fleet snapshot plus
  // the tail of requests admitted since it; resume points are run start,
  // post-recovery and post-epoch-barrier instants, so the tail never spans
  // a map change. A shard kill quiesces the (drained, handovers included)
  // pipeline, then recovers: replica promotion when the shard is
  // replicated, else snapshot restore + dispatch-order tail replay.
  std::vector<FaultEvent> events;
  if (opt_.faults != nullptr && opt_.faults->enabled())
    events = opt_.faults->kills;
  std::size_t next_event = 0;
  std::vector<std::string> snaps;   // [shard] tree_io snapshot text
  std::vector<Request> fault_tail;  // admitted since the snapshots
  auto snapshot_all = [&] {
    if (next_event >= events.size()) return;
    const int live = net_.num_shards();
    snaps.resize(static_cast<std::size_t>(live));
    for (int s = 0; s < live; ++s)
      snaps[static_cast<std::size_t>(s)] = net_.snapshot_shard(s);
    fault_tail.clear();
  };
  auto fire_event = [&](const FaultEvent& ev, std::size_t disp) {
    const int live = net_.num_shards();
    if (ev.shard < 0 || ev.shard >= live)
      throw TreeError("FaultPlan: " + std::string(fault_kind_name(ev.kind)) +
                      " shard " + std::to_string(ev.shard) +
                      " out of range (live S=" + std::to_string(live) + ")");
    ++next_event;  // before snapshot_all so the final event skips it
    switch (ev.kind) {
      case FaultKind::kShardKill: {
        // Open the recovery breaker first so in-flight cross legs shed
        // instead of serving into the doomed shard (degradation modes;
        // kBlock stays lossless and drains them).
        if (degrade)
          breaker_state[static_cast<std::size_t>(ev.shard)].store(
              kBreakerRecovery, std::memory_order_release);
        quiesce(disp);
        restore_pressure();
        const Clock::time_point t0 = Clock::now();
        ++res.sim.faults_injected;
        if (net_.has_replica(ev.shard)) {
          net_.promote_replica(ev.shard);  // lockstep copy == lost state
          ++res.sim.replica_promotions;
        } else {
          net_.restore_shard(ev.shard,
                             snaps[static_cast<std::size_t>(ev.shard)]);
          // Replay the killed shard's projection of the tail in dispatch
          // order. At S = 1 under FIFO admission this is bit-identical to
          // the lost state; at S > 1 it is dispatch-order-consistent (the
          // racy mailbox interleaving that produced the lost state was
          // never recorded). Costs land in the recovery counters, not the
          // serve counters.
          PartitionedTrace pt = partition_trace(fault_tail, net_.map());
          std::vector<ShardOp>& ops =
              pt.ops[static_cast<std::size_t>(ev.shard)];
          KArySplayNet& sh = net_.shard(ev.shard);
          for (const ShardOp& op : ops) {
            const ServeResult sr =
                op.is_ascent() ? sh.access(op.src) : sh.serve(op.src, op.dst);
            res.sim.recovery_cost +=
                sr.routing_cost + static_cast<Cost>(sr.rotations);
          }
          res.sim.recovery_replayed += static_cast<Cost>(ops.size());
        }
        if (degrade) {
          breaker_state[static_cast<std::size_t>(ev.shard)].store(
              kBreakerClosed, std::memory_order_release);
          breaker_failures[static_cast<std::size_t>(ev.shard)].store(
              0, std::memory_order_relaxed);
        }
        const double ms =
            std::chrono::duration<double, std::milli>(Clock::now() - t0)
                .count();
        res.sim.recovery_total_ms += ms;
        res.sim.recovery_max_ms = std::max(res.sim.recovery_max_ms, ms);
        snapshot_all();
        break;
      }
      case FaultKind::kWorkerKill: {
        // The thread dies, the shard's data survives: retire the worker
        // at the quiesce barrier and respawn a fresh one on the same
        // slot (same inbox, same accumulated counters).
        quiesce(disp);
        restore_pressure();
        const Clock::time_point t0 = Clock::now();
        ++res.sim.worker_kills;
        const int w = route[static_cast<std::size_t>(ev.shard)];
        inboxes[static_cast<std::size_t>(w)]->close();
        threads[static_cast<std::size_t>(w)].join();
        inboxes[static_cast<std::size_t>(w)]->reopen();
        threads[static_cast<std::size_t>(w)] = std::thread(worker_loop, w);
        const double ms =
            std::chrono::duration<double, std::milli>(Clock::now() - t0)
                .count();
        res.sim.recovery_total_ms += ms;
        res.sim.recovery_max_ms = std::max(res.sim.recovery_max_ms, ms);
        snapshot_all();
        break;
      }
      case FaultKind::kQueuePressure: {
        // No barrier: the shard's inbox bound collapses mid-flight and
        // the admission policy has to cope until the next barrier
        // restores it. The crash tail keeps accumulating (no tree or map
        // change to re-anchor against).
        const int w = route[static_cast<std::size_t>(ev.shard)];
        pressured.emplace_back(
            w, inboxes[static_cast<std::size_t>(w)]->capacity());
        inboxes[static_cast<std::size_t>(w)]->set_capacity(
            std::max<std::size_t>(1, opt_.queue_capacity / 8));
        ++res.sim.queue_pressure_events;
        break;
      }
    }
  };
  snapshot_all();

  // Lifecycle at the barrier, mirroring the batch pipeline: plan ids
  // refer to the pre-lifecycle map, so replicas are reconciled first; the
  // split/merge (which renumbers shards and drops their replicas) applies
  // last, then the worker fleet is reshaped to match. Returns true when
  // the fleet or map changed shape.
  auto apply_lifecycle = [&](const RebalancePlan& plan) -> bool {
    bool changed = false;
    if (opt_.rebalance->replicas > 0) {
      for (int s = 0; s < net_.num_shards(); ++s) {
        const bool want = std::binary_search(plan.replicate.begin(),
                                             plan.replicate.end(), s);
        if (want && !net_.has_replica(s))
          net_.add_replica(s);
        else if (!want && net_.has_replica(s))
          net_.drop_replica(s);
      }
    }
    // Migrations applied above may have reshaped the very shard the plan
    // targets, so the split precondition is re-checked against the live
    // map. The slot check cannot fail while the planner respects
    // max_shards, but a fleet that somehow ran out of slots skips the
    // split rather than corrupting the route table.
    if (plan.split_shard >= 0 &&
        net_.map().shard_size(plan.split_shard) >= 2 && free_slot() >= 0) {
      const LifecycleResult lr = net_.split_shard(plan.split_shard);
      ++res.sim.shard_splits;
      res.sim.lifecycle_cost += lr.total_cost();
      // The new shard takes the next id; give it a worker of its own.
      spawn_worker(free_slot(), net_.num_shards() - 1);
      changed = true;
    } else if (plan.merge_from >= 0) {
      const LifecycleResult lr =
          net_.merge_shards(plan.merge_into, plan.merge_from);
      ++res.sim.shard_merges;
      res.sim.lifecycle_cost += lr.total_cost();
      // Retire the vacated worker, then renumber: every shard id above
      // merge_from shifted down by one.
      retire_worker(route[static_cast<std::size_t>(plan.merge_from)]);
      for (int w = 0; w < max_workers; ++w) {
        int& o = owned[static_cast<std::size_t>(w)];
        if (o > plan.merge_from) --o;
      }
      for (int w = 0; w < max_workers; ++w)
        if (owned[static_cast<std::size_t>(w)] >= 0)
          route[static_cast<std::size_t>(
              owned[static_cast<std::size_t>(w)])] = w;
      changed = true;
    }
    return changed;
  };

  // The epoch barrier: drain the pipeline, measure, plan, apply —
  // migrations and, when configured, the full shard lifecycle. The
  // dispatcher keeps the arrival clock running, so this pause is charged
  // to every request that arrives during it.
  auto epoch_barrier = [&](std::size_t dispatched) {
    quiesce(dispatched);
    restore_pressure();
    reset_breakers();
    Cost ascent = 0, intra_c = 0;
    std::size_t crossn = 0, intran = 0;
    for (const WorkerState& ws : workers) {
      ascent += ws.ascent_cost;
      intra_c += ws.intra_cost;
      crossn += ws.cross_requests;
      intran += ws.intra_requests;
    }
    cross_cost_w =
        cross_cost_w * decay + static_cast<double>(ascent - prev_ascent);
    intra_cost_w =
        intra_cost_w * decay + static_cast<double>(intra_c - prev_intra_cost);
    cross_reqs_w =
        cross_reqs_w * decay + static_cast<double>(crossn - prev_cross);
    intra_reqs_w =
        intra_reqs_w * decay + static_cast<double>(intran - prev_intra);
    prev_ascent = ascent;
    prev_intra_cost = intra_c;
    prev_cross = crossn;
    prev_intra = intran;
    RebalanceCostHints hints = base_hints;
    if (cross_reqs_w > 0.0 && intra_reqs_w > 0.0)
      hints.cross_penalty = std::max(
          0.0, cross_cost_w / cross_reqs_w - intra_cost_w / intra_reqs_w);
    RebalancePlan plan = state.epoch(net_.map(), hints);
    bool changed = false;
    if (plan.triggered) {
      ++res.sim.rebalance_epochs;
      if (!plan.migrations.empty()) {
        const MigrationResult applied =
            net_.apply_migrations(std::move(plan.migrations));
        res.sim.migrations += applied.migrated;
        res.sim.migration_cost += applied.total_cost();
        changed = true;
      }
    }
    if (lifecycle && apply_lifecycle(plan)) changed = true;
    if (changed) publish_epoch();
  };

  // ---- admission control ----------------------------------------------
  const bool throttled = opt_.admit_rate > 0.0;
  const double burst_cap = opt_.admit_burst > 0.0 ? opt_.admit_burst : 64.0;
  double tokens = burst_cap;
  std::uint64_t bucket_clock = 0;  // last intended-arrival refill instant
  const std::uint64_t deadline_budget_ns =
      opt_.queue_policy == QueuePolicy::kDeadline
          ? static_cast<std::uint64_t>(opt_.deadline_ms * 1e6)
          : 0;
  // Admission-time sheds are recorded by the dispatcher itself.
  auto shed_admission = [&](std::uint64_t arrival_ns) {
    res.shed.record(now_ns() - arrival_ns);
  };

  std::size_t offered = 0;     // pulled from the schedule (admitted + shed)
  std::size_t dispatched = 0;  // admitted into a queue
  std::size_t cross_dispatched = 0;
  std::uint64_t last_arrival_ns = 0;
  std::vector<Request> chunk(std::min(total, kStreamChunkRequests));
  while (true) {
    const std::size_t got = stream.fill(chunk);
    if (got == 0) break;
    for (std::size_t i = 0; i < got; ++i) {
      while (next_event < events.size() &&
             events[next_event].at_request == offered)
        fire_event(events[next_event], dispatched);
      // Pace to the arrival schedule: sleep for coarse gaps, spin out the
      // last stretch (sleep_until wakes late by scheduler quanta, which
      // would throttle multi-million-req/s schedules).
      const std::uint64_t due = schedule.next();
      last_arrival_ns = due;
      if (due > 0) {
        constexpr std::uint64_t kSpinWindowNs = 50'000;
        std::uint64_t now = now_ns();
        if (due > now + kSpinWindowNs)
          std::this_thread::sleep_for(
              std::chrono::nanoseconds(due - now - kSpinWindowNs));
        while (now_ns() < due) {
          // busy-wait: the dispatcher is the clock of the experiment
        }
      }
      ++offered;
      // Token bucket, refilled from the intended-arrival clock: the
      // admit/shed pattern is a deterministic function of the schedule,
      // not of wall-clock jitter.
      if (throttled) {
        tokens = std::min(burst_cap,
                          tokens + static_cast<double>(due - bucket_clock) *
                                       1e-9 * opt_.admit_rate);
        bucket_clock = due;
        if (tokens < 1.0) {
          ++res.sim.shed_throttled;
          shed_admission(due);
          continue;
        }
        tokens -= 1.0;
      }
      std::uint64_t deadline_ns = 0;
      if (deadline_budget_ns != 0) {
        deadline_ns = due + deadline_budget_ns;
        if (now_ns() > deadline_ns) {  // dead on arrival (backpressure)
          ++res.sim.deadline_expired;
          shed_admission(due);
          continue;
        }
      }
      const Request& r = chunk[i];
      const int a = net_.map().shard_of(r.src);
      QueueItem item;
      item.src = r.src;
      item.dst = r.dst;
      item.arrival_ns = due;
      item.deadline_ns = deadline_ns;
      ShardInbox& box = *inboxes[static_cast<std::size_t>(
          route[static_cast<std::size_t>(a)])];
      if (opt_.queue_policy == QueuePolicy::kShed) {
        if (!box.try_push_main(item)) {
          ++res.sim.queue_full_blocks;
          ++res.sim.shed_queue_full;
          shed_admission(due);
          continue;
        }
      } else {
        if (box.push_main(item)) ++res.sim.queue_full_blocks;
      }
      if (net_.map().shard_of(r.dst) != a) ++cross_dispatched;
      ++dispatched;
      if (next_event < events.size()) fault_tail.push_back(r);
      if (adaptive) {
        state.observe(r, net_.map());
        if (dispatched % epoch == 0 && dispatched < total) {
          epoch_barrier(dispatched);
          // The barrier may have rewritten the map or fleet: re-anchor
          // the crash tail so a later replay never spans it.
          snapshot_all();
        }
      }
    }
  }

  res.sim.requests = offered;
  if (offered > 0 && last_arrival_ns > 0)
    res.offered_rate = static_cast<double>(offered) /
                       (static_cast<double>(last_arrival_ns) / 1e9);

  quiesce(dispatched);
  res.elapsed_seconds = static_cast<double>(now_ns()) / 1e9;
  for (auto& inbox : inboxes)
    if (inbox != nullptr) inbox->close();
  for (std::thread& t : threads)
    if (t.joinable()) t.join();

  // ---- aggregation ----------------------------------------------------
  for (const WorkerState& ws : workers) {
    res.sim.routing_cost += ws.routing;
    res.sim.rotation_count += ws.rotations;
    res.sim.edge_changes += ws.edges;
    res.sim.replica_reads += ws.replica_reads;
    res.handovers += ws.handovers;
    res.forwards += ws.forwards;
    res.sim.reordered_requests += ws.reordered;
    res.sim.deadline_expired += ws.deadline_expired;
    res.sim.cross_shed += ws.cross_shed;
    res.sim.breaker_trips += ws.breaker_trips;
    res.sojourn.merge(ws.sojourn);
    res.queue_wait.merge(ws.queue_wait);
    res.shed.merge(ws.shed);
  }
  res.sim.shed_requests = res.sim.shed_queue_full + res.sim.shed_throttled +
                          res.sim.deadline_expired + res.sim.cross_shed;
  res.sim.schedule = opt_.schedule.policy;
  res.sim.final_shards = net_.num_shards();
  res.sim.cross_shard = static_cast<Cost>(cross_dispatched);
  net_.note_cross_served(static_cast<Cost>(cross_dispatched));
  res.route_epochs = route_epoch.load(std::memory_order_relaxed);
  res.achieved_rate =
      res.elapsed_seconds > 0.0
          ? static_cast<double>(res.sojourn.count()) / res.elapsed_seconds
          : 0.0;
  // Dispatch-time intra fraction: the fraction of admitted requests that
  // were intra-shard under the map they were routed by. The Trace&
  // adapter upgrades this to a final-map re-scan when the map changed.
  res.sim.post_intra_fraction =
      dispatched == 0 ? 0.0
                      : 1.0 - static_cast<double>(cross_dispatched) /
                                  static_cast<double>(dispatched);
  if (res.sojourn.count() > 0) {
    res.sim.latency.measured = true;
    res.sim.latency.mean_us = res.sojourn.mean() / 1e3;
    res.sim.latency.p50_us = static_cast<double>(res.sojourn.p50()) / 1e3;
    res.sim.latency.p99_us = static_cast<double>(res.sojourn.p99()) / 1e3;
    res.sim.latency.p999_us = static_cast<double>(res.sojourn.p999()) / 1e3;
    res.sim.latency.max_us = static_cast<double>(res.sojourn.max()) / 1e3;
  }
  return res;
}

}  // namespace san
