#include "sim/serve_frontend.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "workload/rebalance.hpp"

namespace san {
namespace {

using Clock = std::chrono::steady_clock;

/// One queued operation, in global ids (local ids are resolved on
/// admission so queued items survive migrations).
struct QueueItem {
  NodeId src = kNoNode;
  NodeId dst = kNoNode;          ///< kNoNode marks a handover second leg
  std::uint64_t arrival_ns = 0;  ///< intended arrival (latency origin)
  Cost pending_top = 0;          ///< top-tree legs accumulated so far

  bool is_handover() const { return dst == kNoNode; }
};

/// Per-shard inbox: a bounded main queue (dispatcher -> worker) plus an
/// unbounded mailbox (worker -> worker handovers). MPSC; one mutex and
/// one wakeup per admitted *batch*, not per request.
class ShardInbox {
 public:
  explicit ShardInbox(std::size_t capacity) : capacity_(capacity) {}

  /// Dispatcher push; blocks while the main queue is full.
  void push_main(const QueueItem& item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] { return main_.size() < capacity_; });
    const bool was_empty = main_.empty() && mail_.empty();
    main_.push_back(item);
    if (was_empty) not_empty_.notify_one();
  }

  /// Worker-to-worker handover push; never blocks (see FrontendOptions).
  void push_mail(const QueueItem& item) {
    std::lock_guard<std::mutex> lock(mu_);
    const bool was_empty = main_.empty() && mail_.empty();
    mail_.push_back(item);
    if (was_empty) not_empty_.notify_one();
  }

  /// Admits up to `max_items` into `out`, mailbox first (handover ops are
  /// half-served; finishing them first bounds cross-shard sojourn).
  /// Blocks while empty; returns 0 only when closed and fully drained.
  std::size_t pop_batch(std::vector<QueueItem>& out, std::size_t max_items) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock,
                    [&] { return closed_ || !mail_.empty() || !main_.empty(); });
    std::size_t n = 0;
    while (n < max_items && !mail_.empty()) {
      out.push_back(mail_.front());
      mail_.pop_front();
      ++n;
    }
    bool popped_main = false;
    while (n < max_items && !main_.empty()) {
      out.push_back(main_.front());
      main_.pop_front();
      popped_main = true;
      ++n;
    }
    if (popped_main) not_full_.notify_one();  // single dispatcher waits here
    return n;
  }

  void close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<QueueItem> mail_;
  std::deque<QueueItem> main_;
  std::size_t capacity_;
  bool closed_ = false;
};

/// Worker-owned accumulators. Written only by the owning worker thread;
/// read by the dispatcher at quiesce barriers (ordered by the acquire
/// load of `completed` against the workers' release increments) and after
/// join. The trailing histograms make the struct large enough that
/// neighbouring workers' hot counters do not share a cache line.
struct WorkerState {
  Cost routing = 0;
  Cost rotations = 0;
  Cost edges = 0;
  /// Measured cross/intra split feeding the rebalancer's cost model
  /// (ascents + top legs vs local serves), same convention as the batch
  /// pipeline's ChunkSplit.
  Cost ascent_cost = 0;
  Cost intra_cost = 0;
  std::size_t intra_requests = 0;
  std::size_t cross_requests = 0;  ///< completed second legs
  Cost replica_reads = 0;          ///< intra serves answered by the replica
  std::size_t handovers = 0;
  std::size_t forwards = 0;
  Cost reordered = 0;  ///< batch slots permuted by the locality schedule
  LatencyHistogram sojourn;
  LatencyHistogram queue_wait;
};

}  // namespace

ServeFrontend::ServeFrontend(ShardedNetwork& net, FrontendOptions opt)
    : net_(net), opt_(opt) {
  if (opt_.admission_batch < 1)
    throw TreeError("ServeFrontend: admission_batch must be >= 1");
  if (opt_.queue_capacity < 1)
    throw TreeError("ServeFrontend: queue_capacity must be >= 1");
  opt_.schedule.validate();
  if (opt_.schedule.reorders() && opt_.admission_batch < 2)
    throw TreeError(
        "ServeFrontend: locality schedule needs admission_batch >= 2 "
        "(a 1-item batch can never reorder)");
  if (opt_.rebalance != nullptr && opt_.rebalance->lifecycle_enabled())
    throw TreeError(
        "ServeFrontend: shard lifecycle (split/merge watermarks, planned "
        "replicas) is batch-pipeline-only — the frontend's worker-per-shard "
        "topology is fixed for a run. Replicate statically with "
        "ShardedNetwork::add_replica instead.");
  if (opt_.faults != nullptr) opt_.faults->validate();
}

FrontendResult ServeFrontend::run(const Trace& trace,
                                  std::span<const std::uint64_t> arrivals) {
  if (arrivals.size() != trace.size())
    throw TreeError("ServeFrontend::run: one arrival time per request");
  TraceStream stream(trace);
  FixedArrivalSchedule schedule(arrivals);
  FrontendResult res = run_stream(stream, schedule);
  // With an unchanged map the dispatch-time counters already are the final
  // intra fraction; a migrated map needs the full-trace re-scan, which the
  // single-pass engine cannot perform.
  if (res.sim.migrations != 0)
    res.sim.post_intra_fraction =
        compute_shard_stats(trace, net_.map()).intra_fraction();
  return res;
}

FrontendResult ServeFrontend::run_stream(RequestStream& stream,
                                         ArrivalSchedule& schedule) {
  const int S = net_.num_shards();
  const std::size_t total = stream.size();

  FrontendResult res;

  std::vector<std::unique_ptr<ShardInbox>> inboxes;  // mutexes don't move
  inboxes.reserve(static_cast<std::size_t>(S));
  for (int s = 0; s < S; ++s)
    inboxes.push_back(std::make_unique<ShardInbox>(opt_.queue_capacity));
  std::vector<WorkerState> workers(static_cast<std::size_t>(S));
  std::atomic<std::size_t> completed{0};

  const Clock::time_point start = Clock::now();
  auto now_ns = [&start] {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start)
            .count());
  };

  // ---- shard-pinned workers -------------------------------------------
  auto worker_loop = [&](int s) {
    WorkerState& ws = workers[static_cast<std::size_t>(s)];
    KArySplayNet& shard = net_.shard(s);
    std::vector<QueueItem> batch;
    batch.reserve(static_cast<std::size_t>(opt_.admission_batch));
    auto process_item = [&](const QueueItem& item) {
      const ShardMap& map = net_.map();
      if (item.is_handover()) {
        // Second leg of a cross-shard request: ascend v, charge the
        // accumulated top-tree legs, complete.
        const int home = map.shard_of(item.src);
        if (home != s) {  // lost a race with a migration: forward
          QueueItem fwd = item;
          fwd.pending_top += net_.top_distance(s, home);
          ++ws.forwards;
          inboxes[static_cast<std::size_t>(home)]->push_mail(fwd);
          return;
        }
        const ServeResult sr = shard.access(map.local_of(item.src));
        if (KArySplayNet* rep = net_.replica_mut(s))
          rep->access(map.local_of(item.src));
        ws.routing += sr.routing_cost + item.pending_top;
        ws.rotations += sr.rotations;
        ws.edges += sr.edge_changes;
        ws.ascent_cost += sr.routing_cost +
                          static_cast<Cost>(sr.rotations) + item.pending_top;
        ++ws.cross_requests;
        ws.sojourn.record(now_ns() - item.arrival_ns);
        completed.fetch_add(1, std::memory_order_release);
        return;
      }
      const int a = map.shard_of(item.src);
      if (a != s) {  // fresh item whose source migrated away meanwhile
        ++ws.forwards;
        inboxes[static_cast<std::size_t>(a)]->push_mail(item);
        return;
      }
      ws.queue_wait.record(now_ns() - item.arrival_ns);
      const int b = map.shard_of(item.dst);
      if (b == s) {
        // A replicated shard answers intra requests from its lockstep
        // replica (bit-identical results — the pair never diverges) and
        // mirrors the splay into the primary; cost is charged once.
        ServeResult sr;
        if (KArySplayNet* rep = net_.replica_mut(s)) {
          sr = rep->serve(map.local_of(item.src), map.local_of(item.dst));
          shard.serve(map.local_of(item.src), map.local_of(item.dst));
          ++ws.replica_reads;
        } else {
          sr = shard.serve(map.local_of(item.src), map.local_of(item.dst));
        }
        ws.routing += sr.routing_cost;
        ws.rotations += sr.rotations;
        ws.edges += sr.edge_changes;
        ws.intra_cost += sr.routing_cost + static_cast<Cost>(sr.rotations);
        ++ws.intra_requests;
        ws.sojourn.record(now_ns() - item.arrival_ns);
        completed.fetch_add(1, std::memory_order_release);
      } else {
        // First leg: ascend u to this shard's root, hand the request
        // over to v's shard with the top-tree route priced in.
        const ServeResult sr = shard.access(map.local_of(item.src));
        if (KArySplayNet* rep = net_.replica_mut(s))
          rep->access(map.local_of(item.src));
        ws.routing += sr.routing_cost;
        ws.rotations += sr.rotations;
        ws.edges += sr.edge_changes;
        ws.ascent_cost += sr.routing_cost + static_cast<Cost>(sr.rotations);
        ++ws.handovers;
        QueueItem leg;
        leg.src = item.dst;
        leg.arrival_ns = item.arrival_ns;
        leg.pending_top = net_.top_distance(s, b);
        inboxes[static_cast<std::size_t>(b)]->push_mail(leg);
      }
    };
    // Resolves a queued item into this worker's shard-local id space for
    // the locality scheduler. Items for other shards (forwards) and
    // handovers/first legs key as root ascents or foreign ops; migrations
    // only land at quiesce barriers, so the map is stable per batch.
    auto resolve = [&](const QueueItem& item) -> ScheduleEndpoints {
      const ShardMap& map = net_.map();
      if (map.shard_of(item.src) != s) return {kNoNode, kNoNode};
      const NodeId u = map.local_of(item.src);
      if (item.is_handover() || map.shard_of(item.dst) != s)
        return {u, kNoNode};  // root ascent (second or first leg)
      return {u, map.local_of(item.dst)};
    };
    LocalityScheduler scheduler(opt_.schedule);
    const bool reorder = opt_.schedule.reorders();
    for (;;) {
      batch.clear();
      if (inboxes[static_cast<std::size_t>(s)]->pop_batch(
              batch, static_cast<std::size_t>(opt_.admission_batch)) == 0) {
        ws.reordered = scheduler.reordered();
        return;  // closed and drained
      }
      if (!reorder) {
        for (const QueueItem& item : batch) process_item(item);
      } else {
        scheduler.run(shard.tree(), std::span<QueueItem>(batch), resolve,
                      process_item);
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(S));
  for (int s = 0; s < S; ++s) threads.emplace_back(worker_loop, s);

  // ---- open-loop dispatcher (caller thread) ---------------------------
  const bool adaptive =
      opt_.rebalance != nullptr && opt_.rebalance->enabled() && S > 1;
  RebalanceState state(adaptive ? *opt_.rebalance : RebalanceConfig{});
  const std::size_t epoch =
      adaptive ? opt_.rebalance->epoch_requests : total + 1;
  const RebalanceCostHints base_hints = net_.cost_hints();
  const double decay = adaptive ? opt_.rebalance->window_decay : 1.0;
  // Exponentially aged measured costs (same scheme as run_trace_sharded):
  // deltas of the workers' cumulative counters between barriers.
  double cross_cost_w = 0.0, intra_cost_w = 0.0;
  double cross_reqs_w = 0.0, intra_reqs_w = 0.0;
  Cost prev_ascent = 0, prev_intra_cost = 0;
  std::size_t prev_cross = 0, prev_intra = 0;

  auto quiesce = [&](std::size_t dispatched) {
    while (completed.load(std::memory_order_acquire) < dispatched)
      std::this_thread::yield();
  };

  // ---- scripted crash injection (sim/fault.hpp) -----------------------
  // While kills are pending the dispatcher keeps a fleet snapshot plus the
  // tail of requests dispatched since it; resume points are run start,
  // post-recovery and post-epoch-barrier instants, so the tail never spans
  // a map change. A kill quiesces the (drained, handovers included)
  // pipeline, then recovers: replica promotion when the shard is
  // replicated, else snapshot restore + dispatch-order tail replay.
  std::vector<FaultEvent> kills;
  if (opt_.faults != nullptr && opt_.faults->enabled())
    kills = opt_.faults->kills;
  std::size_t next_kill = 0;
  std::vector<std::string> snaps;   // [shard] tree_io snapshot text
  std::vector<Request> fault_tail;  // dispatched since the snapshots
  auto snapshot_all = [&] {
    if (next_kill >= kills.size()) return;
    snaps.resize(static_cast<std::size_t>(S));
    for (int s = 0; s < S; ++s)
      snaps[static_cast<std::size_t>(s)] = net_.snapshot_shard(s);
    fault_tail.clear();
  };
  auto fire_kill = [&](int shard, std::size_t disp) {
    if (shard < 0 || shard >= S)
      throw TreeError("FaultPlan: kill shard " + std::to_string(shard) +
                      " out of range (S=" + std::to_string(S) + ")");
    quiesce(disp);
    const Clock::time_point t0 = Clock::now();
    ++res.sim.faults_injected;
    if (net_.has_replica(shard)) {
      net_.promote_replica(shard);  // lockstep copy == lost state
      ++res.sim.replica_promotions;
    } else {
      net_.restore_shard(shard, snaps[static_cast<std::size_t>(shard)]);
      // Replay the killed shard's projection of the tail in dispatch
      // order. At S = 1 under FIFO admission this is bit-identical to the
      // lost state; at S > 1 it is dispatch-order-consistent (the racy
      // mailbox interleaving that produced the lost state was never
      // recorded). Costs land in the recovery counters, not the serve
      // counters.
      PartitionedTrace pt = partition_trace(fault_tail, net_.map());
      std::vector<ShardOp>& ops = pt.ops[static_cast<std::size_t>(shard)];
      KArySplayNet& sh = net_.shard(shard);
      for (const ShardOp& op : ops) {
        const ServeResult sr =
            op.is_ascent() ? sh.access(op.src) : sh.serve(op.src, op.dst);
        res.sim.recovery_cost +=
            sr.routing_cost + static_cast<Cost>(sr.rotations);
      }
      res.sim.recovery_replayed += static_cast<Cost>(ops.size());
    }
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    res.sim.recovery_total_ms += ms;
    res.sim.recovery_max_ms = std::max(res.sim.recovery_max_ms, ms);
    ++next_kill;
    snapshot_all();
  };
  snapshot_all();

  // The epoch barrier: drain the pipeline, measure, plan, apply. The
  // dispatcher keeps the arrival clock running, so this pause is charged
  // to every request that arrives during it.
  auto epoch_barrier = [&](std::size_t dispatched) {
    quiesce(dispatched);
    Cost ascent = 0, intra_c = 0;
    std::size_t crossn = 0, intran = 0;
    for (const WorkerState& ws : workers) {
      ascent += ws.ascent_cost;
      intra_c += ws.intra_cost;
      crossn += ws.cross_requests;
      intran += ws.intra_requests;
    }
    cross_cost_w =
        cross_cost_w * decay + static_cast<double>(ascent - prev_ascent);
    intra_cost_w =
        intra_cost_w * decay + static_cast<double>(intra_c - prev_intra_cost);
    cross_reqs_w =
        cross_reqs_w * decay + static_cast<double>(crossn - prev_cross);
    intra_reqs_w =
        intra_reqs_w * decay + static_cast<double>(intran - prev_intra);
    prev_ascent = ascent;
    prev_intra_cost = intra_c;
    prev_cross = crossn;
    prev_intra = intran;
    RebalanceCostHints hints = base_hints;
    if (cross_reqs_w > 0.0 && intra_reqs_w > 0.0)
      hints.cross_penalty = std::max(
          0.0, cross_cost_w / cross_reqs_w - intra_cost_w / intra_reqs_w);
    RebalancePlan plan = state.epoch(net_.map(), hints);
    if (plan.triggered) {
      ++res.sim.rebalance_epochs;
      if (!plan.migrations.empty()) {
        const MigrationResult applied =
            net_.apply_migrations(std::move(plan.migrations));
        res.sim.migrations += applied.migrated;
        res.sim.migration_cost += applied.total_cost();
      }
    }
  };

  std::size_t dispatched = 0;
  std::size_t cross_dispatched = 0;
  std::uint64_t last_arrival_ns = 0;
  std::vector<Request> chunk(std::min(total, kStreamChunkRequests));
  while (true) {
    const std::size_t got = stream.fill(chunk);
    if (got == 0) break;
    for (std::size_t i = 0; i < got; ++i) {
      while (next_kill < kills.size() &&
             kills[next_kill].at_request == dispatched)
        fire_kill(kills[next_kill].shard, dispatched);
      // Pace to the arrival schedule: sleep for coarse gaps, spin out the
      // last stretch (sleep_until wakes late by scheduler quanta, which
      // would throttle multi-million-req/s schedules).
      const std::uint64_t due = schedule.next();
      last_arrival_ns = due;
      if (due > 0) {
        constexpr std::uint64_t kSpinWindowNs = 50'000;
        std::uint64_t now = now_ns();
        if (due > now + kSpinWindowNs)
          std::this_thread::sleep_for(
              std::chrono::nanoseconds(due - now - kSpinWindowNs));
        while (now_ns() < due) {
          // busy-wait: the dispatcher is the clock of the experiment
        }
      }
      const Request& r = chunk[i];
      const int a = net_.map().shard_of(r.src);
      if (net_.map().shard_of(r.dst) != a) ++cross_dispatched;
      QueueItem item;
      item.src = r.src;
      item.dst = r.dst;
      item.arrival_ns = due;
      inboxes[static_cast<std::size_t>(a)]->push_main(item);
      ++dispatched;
      if (next_kill < kills.size()) fault_tail.push_back(r);
      if (adaptive) {
        state.observe(r, net_.map());
        if (dispatched % epoch == 0 && dispatched < total) {
          epoch_barrier(dispatched);
          // Migrations may have rewritten the map: re-anchor the crash
          // tail so a later replay never spans the barrier.
          snapshot_all();
        }
      }
    }
  }

  res.sim.requests = dispatched;
  if (dispatched > 0 && last_arrival_ns > 0)
    res.offered_rate = static_cast<double>(dispatched) /
                       (static_cast<double>(last_arrival_ns) / 1e9);

  quiesce(dispatched);
  res.elapsed_seconds = static_cast<double>(now_ns()) / 1e9;
  for (auto& inbox : inboxes) inbox->close();
  for (std::thread& t : threads) t.join();

  // ---- aggregation ----------------------------------------------------
  for (const WorkerState& ws : workers) {
    res.sim.routing_cost += ws.routing;
    res.sim.rotation_count += ws.rotations;
    res.sim.edge_changes += ws.edges;
    res.sim.replica_reads += ws.replica_reads;
    res.handovers += ws.handovers;
    res.forwards += ws.forwards;
    res.sim.reordered_requests += ws.reordered;
    res.sojourn.merge(ws.sojourn);
    res.queue_wait.merge(ws.queue_wait);
  }
  res.sim.schedule = opt_.schedule.policy;
  res.sim.final_shards = net_.num_shards();
  res.sim.cross_shard = static_cast<Cost>(cross_dispatched);
  net_.note_cross_served(static_cast<Cost>(cross_dispatched));
  res.achieved_rate =
      res.elapsed_seconds > 0.0
          ? static_cast<double>(dispatched) / res.elapsed_seconds
          : 0.0;
  // Dispatch-time intra fraction: the fraction of requests that were
  // intra-shard under the map they were routed by. The Trace& adapter
  // upgrades this to a final-map re-scan when migrations occurred.
  res.sim.post_intra_fraction =
      dispatched == 0 ? 0.0
                      : 1.0 - static_cast<double>(cross_dispatched) /
                                  static_cast<double>(dispatched);
  if (res.sojourn.count() > 0) {
    res.sim.latency.measured = true;
    res.sim.latency.mean_us = res.sojourn.mean() / 1e3;
    res.sim.latency.p50_us = static_cast<double>(res.sojourn.p50()) / 1e3;
    res.sim.latency.p99_us = static_cast<double>(res.sojourn.p99()) / 1e3;
    res.sim.latency.p999_us = static_cast<double>(res.sojourn.p999()) / 1e3;
    res.sim.latency.max_us = static_cast<double>(res.sojourn.max()) / 1e3;
  }
  return res;
}

}  // namespace san
