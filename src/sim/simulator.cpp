#include "sim/simulator.hpp"

#include <algorithm>
#include <chrono>
#include <span>
#include <string>
#include <vector>

#include "core/parallel.hpp"
#include "workload/rebalance.hpp"

namespace san {
namespace {

/// One shard's drain totals plus the ascent-op share, which the adaptive
/// path uses to measure what a cross-shard request actually costs.
struct ShardDrain {
  SimResult sim;
  Cost ascent_cost = 0;  ///< routing + rotations of the ascent ops alone
};

/// Serves one shard's op queue in the scheduled order. Ops are local-id
/// pairs; an ascent op (cross-shard half-request) splays its node to the
/// shard root and is charged the pre-adjustment depth — exactly what
/// ShardedNetwork::serve does inline, so pipeline and per-request paths
/// cannot diverge. Under FIFO the queue is served untouched; kLocality
/// reorders within windows of this shard's own queue (shards share
/// nothing, so the sequential/concurrent bit-identity is preserved).
///
/// `replica` (null when the shard is unreplicated) is the shard's
/// lockstep copy: intra ops are answered from it — bit-identical results,
/// costs charged once, counted as replica reads — and every op is
/// mirrored so primary and replica never diverge. Only this drain call
/// touches the pair, so the share-nothing determinism argument is intact.
ShardDrain drain_shard(KArySplayNet& shard, KArySplayNet* replica,
                       std::vector<ShardOp>& ops,
                       const ScheduleConfig& sched) {
  ShardDrain res;
  const auto serve_one = [&](const ShardOp& op) {
    ServeResult s;
    if (op.is_ascent()) {
      s = shard.access(op.src);
      if (replica != nullptr) replica->access(op.src);
    } else if (replica != nullptr) {
      s = replica->serve(op.src, op.dst);
      shard.serve(op.src, op.dst);
      ++res.sim.replica_reads;
    } else {
      s = shard.serve(op.src, op.dst);
    }
    res.sim.routing_cost += s.routing_cost;
    res.sim.rotation_count += s.rotations;
    res.sim.edge_changes += s.edge_changes;
    if (op.is_ascent())
      res.ascent_cost += s.routing_cost + static_cast<Cost>(s.rotations);
  };
  if (!sched.reorders()) {
    for (const ShardOp& op : ops) serve_one(op);
    return res;
  }
  LocalityScheduler scheduler(sched);
  scheduler.run(
      shard.tree(), std::span<ShardOp>(ops),
      [](const ShardOp& op) { return ScheduleEndpoints{op.src, op.dst}; },
      serve_one);
  res.sim.reordered_requests = scheduler.reordered();
  return res;
}

}  // namespace

SimResult run_trace(AnyNetwork& net, const Trace& trace,
                    const ScheduleConfig& sched) {
  return net.visit([&](auto& n) { return run_trace(n, trace, sched); });
}

SimResult run_trace_stream(AnyNetwork& net, RequestStream& stream,
                           const ScheduleConfig& sched) {
  return net.visit([&](auto& n) { return run_trace_stream(n, stream, sched); });
}

SimResult run_trace_static(const KAryTree& tree, const Trace& trace,
                           const ScheduleConfig& sched) {
  sched.validate();
  SimResult res;
  res.schedule = sched.policy;
  if (!sched.reorders()) {
    for (const Request& r : trace.requests) {
      res.routing_cost += serve_on_static_tree(tree, r.src, r.dst).routing_cost;
      ++res.requests;
    }
    return res;
  }
  // A static tree never rotates, so total routing cost is invariant under
  // any permutation — locality scheduling here is purely a cache/MLP play
  // (tests assert the cost tie).
  std::vector<Request> buf = trace.requests;
  LocalityScheduler scheduler(sched);
  scheduler.run(
      tree, std::span<Request>(buf),
      [](const Request& r) { return ScheduleEndpoints{r.src, r.dst}; },
      [&](const Request& r) {
        res.routing_cost +=
            serve_on_static_tree(tree, r.src, r.dst).routing_cost;
        ++res.requests;
      });
  res.reordered_requests = scheduler.reordered();
  return res;
}

namespace {

/// Cross/intra split of one drained chunk, feeding the measured migration
/// cost model: what did a cross-shard request cost here, against an
/// intra-shard one?
struct ChunkSplit {
  Cost cross_cost = 0;  ///< ascent halves + top-level legs
  Cost intra_cost = 0;  ///< everything else
  std::size_t cross_requests = 0;
  std::size_t intra_requests = 0;
};

/// Serves one contiguous slice of the trace through the batched pipeline
/// and accumulates its costs into `res`. Both the static path (one chunk =
/// the whole trace) and the rebalancing path (one chunk per epoch) go
/// through here, so their drains cannot diverge.
ChunkSplit drain_chunk(ShardedNetwork& net, std::span<const Request> chunk,
                       const ShardedRunOptions& opt, SimResult& res) {
  PartitionedTrace pt = partition_trace(chunk, net.map());
  const int S = net.num_shards();

  // One result slot and one queue per shard: workers share nothing, so the
  // drain is deterministic regardless of scheduling (locality reordering
  // included — it permutes each shard's own queue deterministically).
  std::vector<ShardDrain> partial(static_cast<std::size_t>(S));
  if (opt.sequential) {
    for (int s = 0; s < S; ++s)
      partial[static_cast<std::size_t>(s)] =
          drain_shard(net.shard(s), net.replica_mut(s),
                      pt.ops[static_cast<std::size_t>(s)], opt.schedule);
  } else {
    parallel_for(0, S, opt.threads, [&](long s) {
      partial[static_cast<std::size_t>(s)] =
          drain_shard(net.shard(static_cast<int>(s)),
                      net.replica_mut(static_cast<int>(s)),
                      pt.ops[static_cast<std::size_t>(s)], opt.schedule);
    });
  }

  // Combine in shard index order (fixed, mode-independent): per-shard sums
  // plus the static top-level legs of every cross-shard request.
  ChunkSplit split;
  Cost total = 0, ascents = 0;
  for (int s = 0; s < S; ++s) {
    const ShardDrain& p = partial[static_cast<std::size_t>(s)];
    res.routing_cost += p.sim.routing_cost;
    res.rotation_count += p.sim.rotation_count;
    res.edge_changes += p.sim.edge_changes;
    res.reordered_requests += p.sim.reordered_requests;
    res.replica_reads += p.sim.replica_reads;
    total += p.sim.routing_cost + p.sim.rotation_count;
    ascents += p.ascent_cost;
  }
  split.cross_cost = ascents;
  for (int a = 0; a < S; ++a)
    for (int b = 0; b < S; ++b) {
      const std::size_t pairs =
          pt.cross_pairs[static_cast<std::size_t>(a) *
                             static_cast<std::size_t>(S) +
                         static_cast<std::size_t>(b)];
      if (pairs != 0) {
        const Cost legs = static_cast<Cost>(pairs) * net.top_distance(a, b);
        res.routing_cost += legs;
        split.cross_cost += legs;
      }
    }
  split.intra_cost = total - ascents;
  split.cross_requests = pt.cross_requests;
  split.intra_requests = pt.total_requests - pt.cross_requests;
  res.cross_shard += static_cast<Cost>(pt.cross_requests);
  net.note_cross_served(static_cast<Cost>(pt.cross_requests));
  return split;
}

}  // namespace

namespace {

/// Pulls from `stream` until `out` is full or the stream ends; returns how
/// many requests landed. A single fill() may legally return short, but the
/// epoch machinery needs exact epoch-sized chunks so the streamed and
/// materialized paths place every barrier identically.
std::size_t fill_exact(RequestStream& stream, std::span<Request> out) {
  std::size_t have = 0;
  while (have < out.size()) {
    const std::size_t got = stream.fill(out.subspan(have));
    if (got == 0) break;
    have += got;
  }
  return have;
}

/// Scripted crash machinery of the batch pipeline (sim/fault.hpp). While
/// kills are pending, every shard is snapshotted (tree_io text form, in
/// memory) at each *resume point* — chunk starts and post-recovery
/// instants. Between two resume points the map is constant and each
/// shard's ops form one contiguous drain, so a kill recovers bit-exactly:
/// restore the snapshot, re-project the sub-chunk served since it, and
/// replay the killed shard's queue under the same schedule. A replicated
/// shard skips all that and fails over by promotion. Sub-chunk drains
/// concatenate to the unsplit drain (additive counters, per-shard op
/// order preserved), so sequential == concurrent still holds with faults
/// active, and under FIFO the serve counters bit-match the unfaulted run.
class FaultInjector {
 public:
  FaultInjector(ShardedNetwork& net, const ShardedRunOptions& opt,
                SimResult& res)
      : net_(net), opt_(opt), res_(res) {
    if (opt.faults != nullptr && opt.faults->enabled()) {
      opt.faults->validate();
      kills_ = opt.faults->kills;
    }
  }

  bool pending() const { return next_ < kills_.size(); }

  /// Snapshots the whole fleet at a resume point. Cheap no-op once every
  /// scripted kill has fired.
  void snapshot_all() {
    if (!pending()) return;
    const int S = net_.num_shards();
    snaps_.resize(static_cast<std::size_t>(S));
    for (int s = 0; s < S; ++s)
      snaps_[static_cast<std::size_t>(s)] = net_.snapshot_shard(s);
  }

  /// Drains one chunk, splitting it at the scripted kill indices.
  /// `served_before` is the global request index of chunk[0].
  ChunkSplit drain(std::span<const Request> chunk,
                   std::size_t served_before) {
    ChunkSplit total;
    std::size_t done = 0;
    while (pending()) {
      const std::size_t at = kills_[next_].at_request;
      if (at < served_before + done)
        throw TreeError("FaultPlan: kill at request " + std::to_string(at) +
                        " is already in the past (script must be sorted)");
      if (at > served_before + chunk.size()) break;  // fires in a later chunk
      const std::size_t rel = at - served_before;
      const std::span<const Request> tail = chunk.subspan(done, rel - done);
      if (!tail.empty()) accumulate(total, drain_chunk(net_, tail, opt_, res_));
      switch (kills_[next_].kind) {
        case FaultKind::kShardKill:
          crash_recover(kills_[next_].shard, tail);
          break;
        case FaultKind::kWorkerKill:
          // Batch drains spawn workers per chunk; there is no persistent
          // thread to kill, so the event only counts (the frontend is
          // where it bites).
          ++res_.worker_kills;
          break;
        case FaultKind::kQueuePressure:
          ++res_.queue_pressure_events;  // no queues in the batch pipeline
          break;
      }
      ++next_;
      snapshot_all();
      done = rel;
    }
    if (done < chunk.size())
      accumulate(total, drain_chunk(net_, chunk.subspan(done), opt_, res_));
    return total;
  }

 private:
  static void accumulate(ChunkSplit& into, const ChunkSplit& part) {
    into.cross_cost += part.cross_cost;
    into.intra_cost += part.intra_cost;
    into.cross_requests += part.cross_requests;
    into.intra_requests += part.intra_requests;
  }

  void crash_recover(int shard, std::span<const Request> tail) {
    if (shard < 0 || shard >= net_.num_shards())
      throw TreeError("FaultPlan: kill shard " + std::to_string(shard) +
                      " out of range (live S=" +
                      std::to_string(net_.num_shards()) + ")");
    const auto t0 = std::chrono::steady_clock::now();
    ++res_.faults_injected;
    if (net_.has_replica(shard)) {
      // Failover: the lockstep replica holds the exact pre-crash state.
      net_.promote_replica(shard);
      ++res_.replica_promotions;
    } else {
      net_.restore_shard(shard, snaps_[static_cast<std::size_t>(shard)]);
      // Replay the killed shard's queue of the tail served since the
      // snapshot, under the run's own schedule — same queue, same initial
      // tree, hence the same permutation and the same final state the
      // shard held when it died. Costs go to the recovery counters, not
      // the serve counters.
      PartitionedTrace pt = partition_trace(tail, net_.map());
      std::vector<ShardOp>& ops = pt.ops[static_cast<std::size_t>(shard)];
      const ShardDrain replay =
          drain_shard(net_.shard(shard), nullptr, ops, opt_.schedule);
      res_.recovery_replayed += static_cast<Cost>(ops.size());
      res_.recovery_cost +=
          replay.sim.routing_cost + replay.sim.rotation_count;
    }
    const double ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    res_.recovery_total_ms += ms;
    res_.recovery_max_ms = std::max(res_.recovery_max_ms, ms);
  }

  ShardedNetwork& net_;
  const ShardedRunOptions& opt_;
  SimResult& res_;
  std::vector<FaultEvent> kills_;
  std::size_t next_ = 0;
  std::vector<std::string> snaps_;  ///< [shard] tree_io snapshot text
};

}  // namespace

SimResult run_trace_sharded_stream(ShardedNetwork& net, RequestStream& stream,
                                   const ShardedRunOptions& opt) {
  opt.schedule.validate();
  SimResult res;
  res.schedule = opt.schedule.policy;
  const std::size_t total = stream.size();

  FaultInjector injector(net, opt, res);
  // Migration planning needs S > 1 to have anywhere to move nodes;
  // lifecycle planning creates and destroys shards, so it runs (from its
  // own epoch barrier) even on a single-shard fleet.
  const bool adaptive =
      opt.rebalance != nullptr &&
      ((opt.rebalance->enabled() && net.num_shards() > 1) ||
       opt.rebalance->lifecycle_enabled());
  if (!adaptive) {
    // Chunking is cost-invariant (additive counters, per-shard order
    // preserved across boundaries), so the static path streams in fixed
    // chunks and still matches the one-big-chunk materialized drain bit
    // for bit.
    std::vector<Request> buf(std::min(total, kStreamChunkRequests));
    while (true) {
      const std::size_t got = fill_exact(stream, buf);
      if (got == 0) break;
      injector.snapshot_all();
      injector.drain(std::span<const Request>(buf.data(), got), res.requests);
      res.requests += got;
    }
  } else {
    // Rebalance epochs: drain a chunk, account it into the sliding window,
    // let the trigger decide at the barrier, apply the batch, resume. The
    // final chunk skips the barrier — there is nothing left to serve, so a
    // rebalance there would be pure cost.
    RebalanceState state(*opt.rebalance);
    const RebalanceCostHints base_hints = net.cost_hints();
    const std::size_t epoch = opt.rebalance->epoch_requests;
    const double decay = opt.rebalance->window_decay;
    double cross_cost = 0.0, intra_cost = 0.0;
    double cross_reqs = 0.0, intra_reqs = 0.0;
    std::vector<Request> buf(std::min(total, epoch));
    while (true) {
      const std::size_t got = fill_exact(stream, buf);
      if (got == 0) break;
      const std::span<const Request> chunk(buf.data(), got);
      injector.snapshot_all();
      const ChunkSplit split = injector.drain(chunk, res.requests);
      res.requests += got;
      if (res.requests >= total || got < epoch) break;
      // Aged at the same rate as the pair window, so the cost measurement
      // tracks the topology the upcoming plan will actually serve instead
      // of averaging in the long-gone cold-start epochs.
      cross_cost = cross_cost * decay + static_cast<double>(split.cross_cost);
      intra_cost = intra_cost * decay + static_cast<double>(split.intra_cost);
      cross_reqs =
          cross_reqs * decay + static_cast<double>(split.cross_requests);
      intra_reqs =
          intra_reqs * decay + static_cast<double>(split.intra_requests);
      for (const Request& r : chunk) state.observe(r, net.map());

      // Price colocation with the run's own measurements once both sides
      // have been observed: what a cross-shard request has actually cost
      // here, minus what an intra-shard one does. Splaying keeps hot
      // nodes at their shard roots, so the static structural estimate can
      // badly overprice the ascents — a measured penalty of ~0 correctly
      // parks the rebalancer instead of churning nodes for nothing. The
      // inputs are sums of exact integer totals scaled by dyadic decay
      // factors: bit-deterministic across drain modes and thread counts.
      RebalanceCostHints hints = base_hints;
      if (cross_reqs > 0.0 && intra_reqs > 0.0) {
        hints.cross_penalty =
            std::max(0.0, cross_cost / cross_reqs - intra_cost / intra_reqs);
      }

      RebalancePlan plan = state.epoch(net.map(), hints);
      if (plan.triggered) {
        ++res.rebalance_epochs;
        if (!plan.migrations.empty()) {
          const MigrationResult applied =
              net.apply_migrations(std::move(plan.migrations));
          res.migrations += applied.migrated;
          res.migration_cost += applied.total_cost();
        }
      }
      // Lifecycle barrier. Plan ids refer to the pre-lifecycle map, so
      // replicas are reconciled first; the split/merge (which renumbers
      // shards and drops their replicas) applies last. The next chunk top
      // re-snapshots, so pending kills never replay across this barrier.
      if (opt.rebalance->replicas > 0) {
        for (int s = 0; s < net.num_shards(); ++s) {
          const bool want = std::binary_search(plan.replicate.begin(),
                                               plan.replicate.end(), s);
          if (want && !net.has_replica(s))
            net.add_replica(s);
          else if (!want && net.has_replica(s))
            net.drop_replica(s);
        }
      }
      // Migrations applied above may have reshaped the very shard the plan
      // targets (watermark migration and split watch the same hot shard),
      // so the split precondition is re-checked against the live map —
      // deterministically: the barrier state is identical across drain
      // modes.
      if (plan.split_shard >= 0 &&
          net.map().shard_size(plan.split_shard) >= 2) {
        const LifecycleResult lr = net.split_shard(plan.split_shard);
        ++res.shard_splits;
        res.lifecycle_cost += lr.total_cost();
      } else if (plan.merge_from >= 0) {
        const LifecycleResult lr =
            net.merge_shards(plan.merge_into, plan.merge_from);
        ++res.shard_merges;
        res.lifecycle_cost += lr.total_cost();
      }
    }
  }
  res.final_shards = net.num_shards();

  // Dispatch-time intra fraction from the drain counters. When nodes
  // migrated this reflects the maps requests were actually served under;
  // the Trace& adapter upgrades it to a final-map re-scan, which a
  // single-pass stream cannot do.
  res.post_intra_fraction =
      res.requests == 0
          ? 0.0
          : 1.0 - static_cast<double>(res.cross_shard) /
                      static_cast<double>(res.requests);
  return res;
}

SimResult run_trace_sharded(ShardedNetwork& net, const Trace& trace,
                            const ShardedRunOptions& opt) {
  TraceStream stream(trace);
  SimResult res = run_trace_sharded_stream(net, stream, opt);
  // With an unchanged map the final intra fraction is already in the drain
  // counters; only an actually-changed map (migrations, or a lifecycle
  // split/merge, which rewrites shard ids wholesale) needs the full-trace
  // re-scan against the live shard count.
  if (res.migrations != 0 || res.shard_splits != 0 || res.shard_merges != 0)
    res.post_intra_fraction =
        compute_shard_stats(trace, net.map()).intra_fraction();
  return res;
}

}  // namespace san
