#include "sim/simulator.hpp"

namespace san {

SimResult run_trace(Network& net, const Trace& trace) {
  SimResult res;
  for (const Request& r : trace.requests) {
    const ServeResult s = net.serve(r.src, r.dst);
    res.routing_cost += s.routing_cost;
    res.rotation_count += s.rotations;
    res.edge_changes += s.edge_changes;
    ++res.requests;
  }
  return res;
}

SimResult run_trace_static(const KAryTree& tree, const Trace& trace) {
  SimResult res;
  for (const Request& r : trace.requests) {
    res.routing_cost += serve_on_static_tree(tree, r.src, r.dst).routing_cost;
    ++res.requests;
  }
  return res;
}

}  // namespace san
