#include "sim/simulator.hpp"

#include <vector>

#include "core/parallel.hpp"

namespace san {
namespace {

/// Serves one shard's op queue in order. Ops are local-id pairs; an ascent
/// op (cross-shard half-request) splays its node to the shard root and is
/// charged the pre-adjustment depth — exactly what ShardedNetwork::serve
/// does inline, so pipeline and per-request paths cannot diverge.
SimResult drain_shard(KArySplayNet& shard, const std::vector<ShardOp>& ops) {
  SimResult res;
  for (const ShardOp& op : ops) {
    const ServeResult s =
        op.is_ascent() ? shard.access(op.src) : shard.serve(op.src, op.dst);
    res.routing_cost += s.routing_cost;
    res.rotation_count += s.rotations;
    res.edge_changes += s.edge_changes;
  }
  return res;
}

}  // namespace

SimResult run_trace(AnyNetwork& net, const Trace& trace) {
  return net.visit([&](auto& n) { return run_trace(n, trace); });
}

SimResult run_trace_static(const KAryTree& tree, const Trace& trace) {
  SimResult res;
  for (const Request& r : trace.requests) {
    res.routing_cost += serve_on_static_tree(tree, r.src, r.dst).routing_cost;
    ++res.requests;
  }
  return res;
}

SimResult run_trace_sharded(ShardedNetwork& net, const Trace& trace,
                            const ShardedRunOptions& opt) {
  const PartitionedTrace pt = partition_trace(trace, net.map());
  const int S = net.num_shards();

  // One result slot and one queue per shard: workers share nothing, so the
  // drain is deterministic regardless of scheduling.
  std::vector<SimResult> partial(static_cast<std::size_t>(S));
  if (opt.sequential) {
    for (int s = 0; s < S; ++s)
      partial[static_cast<std::size_t>(s)] =
          drain_shard(net.shard(s), pt.ops[static_cast<std::size_t>(s)]);
  } else {
    parallel_for(0, S, opt.threads, [&](long s) {
      partial[static_cast<std::size_t>(s)] = drain_shard(
          net.shard(static_cast<int>(s)), pt.ops[static_cast<std::size_t>(s)]);
    });
  }

  // Combine in shard index order (fixed, mode-independent): per-shard sums
  // plus the static top-level legs of every cross-shard request.
  SimResult res;
  for (int s = 0; s < S; ++s) {
    const SimResult& p = partial[static_cast<std::size_t>(s)];
    res.routing_cost += p.routing_cost;
    res.rotation_count += p.rotation_count;
    res.edge_changes += p.edge_changes;
  }
  for (int a = 0; a < S; ++a)
    for (int b = 0; b < S; ++b) {
      const std::size_t pairs =
          pt.cross_pairs[static_cast<std::size_t>(a) *
                             static_cast<std::size_t>(S) +
                         static_cast<std::size_t>(b)];
      if (pairs != 0)
        res.routing_cost +=
            static_cast<Cost>(pairs) * net.top_distance(a, b);
    }
  res.requests = pt.total_requests;
  res.cross_shard = static_cast<Cost>(pt.cross_requests);
  net.note_cross_served(static_cast<Cost>(pt.cross_requests));
  return res;
}

}  // namespace san
