#include "sim/simulator.hpp"

#include <algorithm>
#include <span>
#include <vector>

#include "core/parallel.hpp"
#include "workload/rebalance.hpp"

namespace san {
namespace {

/// One shard's drain totals plus the ascent-op share, which the adaptive
/// path uses to measure what a cross-shard request actually costs.
struct ShardDrain {
  SimResult sim;
  Cost ascent_cost = 0;  ///< routing + rotations of the ascent ops alone
};

/// Serves one shard's op queue in the scheduled order. Ops are local-id
/// pairs; an ascent op (cross-shard half-request) splays its node to the
/// shard root and is charged the pre-adjustment depth — exactly what
/// ShardedNetwork::serve does inline, so pipeline and per-request paths
/// cannot diverge. Under FIFO the queue is served untouched; kLocality
/// reorders within windows of this shard's own queue (shards share
/// nothing, so the sequential/concurrent bit-identity is preserved).
ShardDrain drain_shard(KArySplayNet& shard, std::vector<ShardOp>& ops,
                       const ScheduleConfig& sched) {
  ShardDrain res;
  const auto serve_one = [&](const ShardOp& op) {
    const ServeResult s =
        op.is_ascent() ? shard.access(op.src) : shard.serve(op.src, op.dst);
    res.sim.routing_cost += s.routing_cost;
    res.sim.rotation_count += s.rotations;
    res.sim.edge_changes += s.edge_changes;
    if (op.is_ascent())
      res.ascent_cost += s.routing_cost + static_cast<Cost>(s.rotations);
  };
  if (!sched.reorders()) {
    for (const ShardOp& op : ops) serve_one(op);
    return res;
  }
  LocalityScheduler scheduler(sched);
  scheduler.run(
      shard.tree(), std::span<ShardOp>(ops),
      [](const ShardOp& op) { return ScheduleEndpoints{op.src, op.dst}; },
      serve_one);
  res.sim.reordered_requests = scheduler.reordered();
  return res;
}

}  // namespace

SimResult run_trace(AnyNetwork& net, const Trace& trace,
                    const ScheduleConfig& sched) {
  return net.visit([&](auto& n) { return run_trace(n, trace, sched); });
}

SimResult run_trace_stream(AnyNetwork& net, RequestStream& stream,
                           const ScheduleConfig& sched) {
  return net.visit([&](auto& n) { return run_trace_stream(n, stream, sched); });
}

SimResult run_trace_static(const KAryTree& tree, const Trace& trace,
                           const ScheduleConfig& sched) {
  sched.validate();
  SimResult res;
  res.schedule = sched.policy;
  if (!sched.reorders()) {
    for (const Request& r : trace.requests) {
      res.routing_cost += serve_on_static_tree(tree, r.src, r.dst).routing_cost;
      ++res.requests;
    }
    return res;
  }
  // A static tree never rotates, so total routing cost is invariant under
  // any permutation — locality scheduling here is purely a cache/MLP play
  // (tests assert the cost tie).
  std::vector<Request> buf = trace.requests;
  LocalityScheduler scheduler(sched);
  scheduler.run(
      tree, std::span<Request>(buf),
      [](const Request& r) { return ScheduleEndpoints{r.src, r.dst}; },
      [&](const Request& r) {
        res.routing_cost +=
            serve_on_static_tree(tree, r.src, r.dst).routing_cost;
        ++res.requests;
      });
  res.reordered_requests = scheduler.reordered();
  return res;
}

namespace {

/// Cross/intra split of one drained chunk, feeding the measured migration
/// cost model: what did a cross-shard request cost here, against an
/// intra-shard one?
struct ChunkSplit {
  Cost cross_cost = 0;  ///< ascent halves + top-level legs
  Cost intra_cost = 0;  ///< everything else
  std::size_t cross_requests = 0;
  std::size_t intra_requests = 0;
};

/// Serves one contiguous slice of the trace through the batched pipeline
/// and accumulates its costs into `res`. Both the static path (one chunk =
/// the whole trace) and the rebalancing path (one chunk per epoch) go
/// through here, so their drains cannot diverge.
ChunkSplit drain_chunk(ShardedNetwork& net, std::span<const Request> chunk,
                       const ShardedRunOptions& opt, SimResult& res) {
  PartitionedTrace pt = partition_trace(chunk, net.map());
  const int S = net.num_shards();

  // One result slot and one queue per shard: workers share nothing, so the
  // drain is deterministic regardless of scheduling (locality reordering
  // included — it permutes each shard's own queue deterministically).
  std::vector<ShardDrain> partial(static_cast<std::size_t>(S));
  if (opt.sequential) {
    for (int s = 0; s < S; ++s)
      partial[static_cast<std::size_t>(s)] = drain_shard(
          net.shard(s), pt.ops[static_cast<std::size_t>(s)], opt.schedule);
  } else {
    parallel_for(0, S, opt.threads, [&](long s) {
      partial[static_cast<std::size_t>(s)] =
          drain_shard(net.shard(static_cast<int>(s)),
                      pt.ops[static_cast<std::size_t>(s)], opt.schedule);
    });
  }

  // Combine in shard index order (fixed, mode-independent): per-shard sums
  // plus the static top-level legs of every cross-shard request.
  ChunkSplit split;
  Cost total = 0, ascents = 0;
  for (int s = 0; s < S; ++s) {
    const ShardDrain& p = partial[static_cast<std::size_t>(s)];
    res.routing_cost += p.sim.routing_cost;
    res.rotation_count += p.sim.rotation_count;
    res.edge_changes += p.sim.edge_changes;
    res.reordered_requests += p.sim.reordered_requests;
    total += p.sim.routing_cost + p.sim.rotation_count;
    ascents += p.ascent_cost;
  }
  split.cross_cost = ascents;
  for (int a = 0; a < S; ++a)
    for (int b = 0; b < S; ++b) {
      const std::size_t pairs =
          pt.cross_pairs[static_cast<std::size_t>(a) *
                             static_cast<std::size_t>(S) +
                         static_cast<std::size_t>(b)];
      if (pairs != 0) {
        const Cost legs = static_cast<Cost>(pairs) * net.top_distance(a, b);
        res.routing_cost += legs;
        split.cross_cost += legs;
      }
    }
  split.intra_cost = total - ascents;
  split.cross_requests = pt.cross_requests;
  split.intra_requests = pt.total_requests - pt.cross_requests;
  res.cross_shard += static_cast<Cost>(pt.cross_requests);
  net.note_cross_served(static_cast<Cost>(pt.cross_requests));
  return split;
}

}  // namespace

namespace {

/// Pulls from `stream` until `out` is full or the stream ends; returns how
/// many requests landed. A single fill() may legally return short, but the
/// epoch machinery needs exact epoch-sized chunks so the streamed and
/// materialized paths place every barrier identically.
std::size_t fill_exact(RequestStream& stream, std::span<Request> out) {
  std::size_t have = 0;
  while (have < out.size()) {
    const std::size_t got = stream.fill(out.subspan(have));
    if (got == 0) break;
    have += got;
  }
  return have;
}

}  // namespace

SimResult run_trace_sharded_stream(ShardedNetwork& net, RequestStream& stream,
                                   const ShardedRunOptions& opt) {
  opt.schedule.validate();
  SimResult res;
  res.schedule = opt.schedule.policy;
  const std::size_t total = stream.size();

  const bool adaptive = opt.rebalance != nullptr && opt.rebalance->enabled() &&
                        net.num_shards() > 1;
  if (!adaptive) {
    // Chunking is cost-invariant (additive counters, per-shard order
    // preserved across boundaries), so the static path streams in fixed
    // chunks and still matches the one-big-chunk materialized drain bit
    // for bit.
    std::vector<Request> buf(std::min(total, kStreamChunkRequests));
    while (true) {
      const std::size_t got = fill_exact(stream, buf);
      if (got == 0) break;
      drain_chunk(net, std::span<const Request>(buf.data(), got), opt, res);
      res.requests += got;
    }
  } else {
    // Rebalance epochs: drain a chunk, account it into the sliding window,
    // let the trigger decide at the barrier, apply the batch, resume. The
    // final chunk skips the barrier — there is nothing left to serve, so a
    // rebalance there would be pure cost.
    RebalanceState state(*opt.rebalance);
    const RebalanceCostHints base_hints = net.cost_hints();
    const std::size_t epoch = opt.rebalance->epoch_requests;
    const double decay = opt.rebalance->window_decay;
    double cross_cost = 0.0, intra_cost = 0.0;
    double cross_reqs = 0.0, intra_reqs = 0.0;
    std::vector<Request> buf(std::min(total, epoch));
    while (true) {
      const std::size_t got = fill_exact(stream, buf);
      if (got == 0) break;
      const std::span<const Request> chunk(buf.data(), got);
      const ChunkSplit split = drain_chunk(net, chunk, opt, res);
      res.requests += got;
      if (res.requests >= total || got < epoch) break;
      // Aged at the same rate as the pair window, so the cost measurement
      // tracks the topology the upcoming plan will actually serve instead
      // of averaging in the long-gone cold-start epochs.
      cross_cost = cross_cost * decay + static_cast<double>(split.cross_cost);
      intra_cost = intra_cost * decay + static_cast<double>(split.intra_cost);
      cross_reqs =
          cross_reqs * decay + static_cast<double>(split.cross_requests);
      intra_reqs =
          intra_reqs * decay + static_cast<double>(split.intra_requests);
      for (const Request& r : chunk) state.observe(r, net.map());

      // Price colocation with the run's own measurements once both sides
      // have been observed: what a cross-shard request has actually cost
      // here, minus what an intra-shard one does. Splaying keeps hot
      // nodes at their shard roots, so the static structural estimate can
      // badly overprice the ascents — a measured penalty of ~0 correctly
      // parks the rebalancer instead of churning nodes for nothing. The
      // inputs are sums of exact integer totals scaled by dyadic decay
      // factors: bit-deterministic across drain modes and thread counts.
      RebalanceCostHints hints = base_hints;
      if (cross_reqs > 0.0 && intra_reqs > 0.0) {
        hints.cross_penalty =
            std::max(0.0, cross_cost / cross_reqs - intra_cost / intra_reqs);
      }

      RebalancePlan plan = state.epoch(net.map(), hints);
      if (!plan.triggered) continue;
      ++res.rebalance_epochs;
      if (plan.migrations.empty()) continue;
      const MigrationResult applied =
          net.apply_migrations(std::move(plan.migrations));
      res.migrations += applied.migrated;
      res.migration_cost += applied.total_cost();
    }
  }

  // Dispatch-time intra fraction from the drain counters. When nodes
  // migrated this reflects the maps requests were actually served under;
  // the Trace& adapter upgrades it to a final-map re-scan, which a
  // single-pass stream cannot do.
  res.post_intra_fraction =
      res.requests == 0
          ? 0.0
          : 1.0 - static_cast<double>(res.cross_shard) /
                      static_cast<double>(res.requests);
  return res;
}

SimResult run_trace_sharded(ShardedNetwork& net, const Trace& trace,
                            const ShardedRunOptions& opt) {
  TraceStream stream(trace);
  SimResult res = run_trace_sharded_stream(net, stream, opt);
  // With an unchanged map the final intra fraction is already in the drain
  // counters; only an actually-migrated map needs the full-trace re-scan.
  if (res.migrations != 0)
    res.post_intra_fraction =
        compute_shard_stats(trace, net.map()).intra_fraction();
  return res;
}

}  // namespace san
