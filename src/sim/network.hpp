// Concrete network wrappers over every topology the evaluation compares:
// self-adjusting (k-ary SplayNet, (k+1)-SplayNet, binary SplayNet, sharded)
// and static (full tree, optimal DP tree, centroid tree).
//
// These are plain value types — serve() is a direct (devirtualized) call.
// Closed-set dispatch across them goes through the std::variant-based
// AnyNetwork (any_network.hpp); the virtual `Network` interface below
// survives only as a thin adapter at the factory boundary for topologies
// outside the variant (sweep cases may still hand over any subclass via
// AnyNetwork's unique_ptr<Network> alternative).
#pragma once

#include <memory>
#include <string>

#include "core/binary_splaynet.hpp"
#include "core/splaynet.hpp"

namespace san {

/// Open-extension escape hatch (see file comment). Every in-tree topology
/// is served devirtualized through AnyNetwork instead.
class Network {
 public:
  virtual ~Network() = default;
  virtual ServeResult serve(NodeId u, NodeId v) = 0;
  virtual int size() const = 0;
  virtual std::string name() const = 0;
};

/// Shared costing for never-adjusting topologies: pure pre-adjustment
/// routing, zero rotations. Both StaticTreeNetwork::serve and
/// run_trace_static (simulator.cpp) route through this one helper so the
/// two static costing paths cannot drift apart
/// (tests/test_simulator.cpp: StaticPathsAgree).
inline ServeResult serve_on_static_tree(const KAryTree& tree, NodeId u,
                                        NodeId v) {
  ServeResult r;
  if (u != v) r.routing_cost = tree.distance(u, v);
  return r;
}

/// Static tree: serving is pure routing, no adjustment ever happens.
class StaticTreeNetwork {
 public:
  StaticTreeNetwork(KAryTree tree, std::string name)
      : tree_(std::move(tree)), name_(std::move(name)) {
    if (auto err = tree_.validate())
      throw TreeError("StaticTreeNetwork: " + *err);
  }

  ServeResult serve(NodeId u, NodeId v) {
    return serve_on_static_tree(tree_, u, v);
  }
  int size() const { return tree_.size(); }
  std::string name() const { return name_; }
  const KAryTree& tree() const { return tree_; }

 private:
  KAryTree tree_;
  std::string name_;
};

class KArySplayNetwork {
 public:
  explicit KArySplayNetwork(KArySplayNet net) : net_(std::move(net)) {}

  ServeResult serve(NodeId u, NodeId v) { return net_.serve(u, v); }
  int size() const { return net_.size(); }
  std::string name() const {
    return std::to_string(net_.arity()) + "-ary SplayNet";
  }
  const KArySplayNet& net() const { return net_; }

 private:
  KArySplayNet net_;
};

class CentroidSplayNetwork {
 public:
  explicit CentroidSplayNetwork(CentroidSplayNet net) : net_(std::move(net)) {}

  ServeResult serve(NodeId u, NodeId v) { return net_.serve(u, v); }
  int size() const { return net_.size(); }
  std::string name() const {
    return std::to_string(net_.arity() + 1) + "-SplayNet";
  }
  const CentroidSplayNet& net() const { return net_; }

 private:
  CentroidSplayNet net_;
};

class BinarySplayNetwork {
 public:
  explicit BinarySplayNetwork(int n) : net_(n) {}

  ServeResult serve(NodeId u, NodeId v) { return net_.serve(u, v); }
  int size() const { return net_.size(); }
  std::string name() const { return "SplayNet"; }
  const BinarySplayNet& net() const { return net_; }

 private:
  BinarySplayNet net_;
};

}  // namespace san
