#include "sim/schedule.hpp"

namespace san {

const char* schedule_policy_name(SchedulePolicy p) {
  switch (p) {
    case SchedulePolicy::kFifo:
      return "fifo";
    case SchedulePolicy::kLocality:
      return "locality";
  }
  return "?";
}

void ScheduleConfig::validate() const {
  if (window < 1) throw TreeError("ScheduleConfig: window must be >= 1");
  if (group < 1) throw TreeError("ScheduleConfig: group must be >= 1");
  if (group > window)
    throw TreeError(
        "ScheduleConfig: group cannot exceed the reorder window");
}

}  // namespace san
