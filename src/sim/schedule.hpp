// Intra-shard batch scheduling policies.
//
// FIFO is the bit-exact default: requests are served in arrival order and no
// code on that path changed. kLocality reorders requests *within bounded
// windows* of a drain chunk by tree locality — the sort key is the LCA of the
// request's access path, so requests touching the same subtree region are
// served consecutively while their upper path is cache-hot — and serves each
// window in small groups whose root paths are warmed by an interleaved
// software-prefetch walk (KAryTree::warm_root_paths) before the serves run.
//
// Cost semantics: a locality-scheduled serve is an ordinary sequential serve
// of the *permuted* sequence. The scheduler never interleaves mutations of
// two descents and the prefetch warm-up is read-only, so the reported
// routing/rotation costs are exactly what FIFO would report for that
// permutation — deterministic (stable sort over deterministic keys),
// golden-lockable, and honestly different from FIFO's costs because splay
// order matters. The scheduling pass itself is mutation-free, so the depth
// memos it repairs stay valid for the whole window (the epoch never bumps
// mid-pass), making the per-request path_info keying cheap.
#pragma once

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <span>
#include <vector>

#include "core/karytree.hpp"
#include "core/types.hpp"

namespace san {

enum class SchedulePolicy : std::uint8_t {
  kFifo = 0,      ///< arrival order, bit-identical to pre-scheduler behavior
  kLocality = 1,  ///< windowed LCA-cluster reorder + prefetch-warmed groups
};

const char* schedule_policy_name(SchedulePolicy p);

struct ScheduleConfig {
  SchedulePolicy policy = SchedulePolicy::kFifo;
  /// Reorder window: requests may only be permuted within consecutive
  /// windows of this many requests (per shard, never across a drain-chunk
  /// boundary), bounding how far any request can be deferred past its
  /// arrival position.
  int window = 1024;
  /// In-flight walks per interleaved keying / prefetch warm-up group.
  int group = 8;

  bool reorders() const { return policy == SchedulePolicy::kLocality; }
  /// Rejects non-positive window/group and group > window (a warm-up group
  /// can never span more requests than one reorder window). Called by every
  /// engine entry point before any request is served.
  void validate() const;
};

/// Endpoints of one schedulable operation, resolved into the id space of the
/// tree being scheduled. `u == kNoNode` marks an operation foreign to this
/// tree (e.g. a frontend forward for another shard): it keeps its arrival
/// position's sort key floor and is served as-is. `v == kNoNode` marks a
/// root ascent (sharded first leg / access): it is keyed and warmed against
/// the current root.
struct ScheduleEndpoints {
  NodeId u = kNoNode;
  NodeId v = kNoNode;
};

/// Windowed locality scheduler, generic over the operation type (Request,
/// ShardOp, frontend QueueItem) via a caller-supplied `resolve` mapping an
/// op to ScheduleEndpoints, and over the tree type: trees exposing the
/// KAryTree batch walks get interleaved keying and prefetch warm-up; any
/// tree with `lca(u,v)`/`root()` (BinarySplayNet) falls back to scalar
/// keying with no warm-up, keeping the reorder semantics identical.
class LocalityScheduler {
 public:
  explicit LocalityScheduler(const ScheduleConfig& cfg) : cfg_(cfg) {
    cfg_.validate();
  }

  /// Requests whose final serve position differed from their arrival
  /// position, accumulated over every window this scheduler processed.
  Cost reordered() const { return reordered_; }

  /// Serves `ops` under the configured policy: each window is reordered
  /// against the tree's current topology, then served in groups of
  /// `cfg.group` with a prefetch warm-up per group. `serve` is invoked
  /// exactly once per op, in the scheduled order.
  template <typename TreeT, typename Op, typename Resolve, typename ServeFn>
  void run(const TreeT& tree, std::span<Op> ops, Resolve&& resolve,
           ServeFn&& serve) {
    if (!cfg_.reorders()) {
      for (Op& op : ops) serve(op);
      return;
    }
    const size_t w = static_cast<size_t>(cfg_.window);
    for (size_t base = 0; base < ops.size(); base += w) {
      std::span<Op> win = ops.subspan(base, std::min(w, ops.size() - base));
      reorder(tree, win, resolve);
      const size_t g = static_cast<size_t>(cfg_.group);
      for (size_t gb = 0; gb < win.size(); gb += g) {
        std::span<Op> grp = win.subspan(gb, std::min(g, win.size() - gb));
        warm(tree, grp, resolve);
        for (Op& op : grp) serve(op);
      }
    }
  }

  /// The reorder pass alone (exposed for tests and for engines that manage
  /// their own serve loop): stable-sorts one window by locality key and
  /// applies the permutation in place. Mutation-free with respect to the
  /// tree.
  template <typename TreeT, typename Op, typename Resolve>
  void reorder(const TreeT& tree, std::span<Op> ops, Resolve&& resolve) {
    const size_t m = ops.size();
    if (m < 2) return;
    keys_.assign(m, 0);
    us_.clear();
    vs_.clear();
    slots_.clear();
    const NodeId root = tree.root();
    for (size_t i = 0; i < m; ++i) {
      const ScheduleEndpoints ep = resolve(ops[i]);
      if (ep.u == kNoNode) continue;  // foreign op: key 0, stable floor
      us_.push_back(ep.u);
      vs_.push_back(ep.v == kNoNode ? root : ep.v);
      slots_.push_back(i);
    }
    lcas_.resize(us_.size());
    if constexpr (requires {
                    tree.path_info_batch(std::span<const NodeId>{},
                                         std::span<const NodeId>{},
                                         std::span<PathInfo>{}, 1);
                  }) {
      infos_.resize(us_.size());
      tree.path_info_batch(us_, vs_, infos_, cfg_.group);
      for (size_t j = 0; j < infos_.size(); ++j) lcas_[j] = infos_[j].lca;
    } else {
      for (size_t j = 0; j < us_.size(); ++j)
        lcas_[j] = tree.lca(us_[j], vs_[j]);
    }
    for (size_t j = 0; j < slots_.size(); ++j) {
      const std::uint64_t lo =
          static_cast<std::uint32_t>(std::min(us_[j], vs_[j]));
      keys_[slots_[j]] =
          (static_cast<std::uint64_t>(static_cast<std::uint32_t>(lcas_[j]))
           << 32) |
          lo;
    }
    order_.resize(m);
    std::iota(order_.begin(), order_.end(), size_t{0});
    std::stable_sort(order_.begin(), order_.end(), [&](size_t a, size_t b) {
      return keys_[a] < keys_[b];
    });
    bool moved = false;
    for (size_t i = 0; i < m; ++i) {
      if (order_[i] != i) {
        ++reordered_;
        moved = true;
      }
    }
    if (!moved) return;
    // Apply the permutation in place by cycle-following (order_ is consumed:
    // visited slots are marked by pointing them at themselves).
    for (size_t i = 0; i < m; ++i) {
      size_t cur = i;
      while (order_[cur] != cur) {
        const size_t src = order_[cur];
        std::swap(ops[cur], ops[src]);
        order_[cur] = cur;
        cur = src;
      }
    }
  }

 private:
  template <typename TreeT, typename Op, typename Resolve>
  void warm(const TreeT& tree, std::span<Op> ops, Resolve&& resolve) {
    if constexpr (requires { tree.warm_root_paths(std::span<const NodeId>{}); }) {
      warm_ids_.clear();
      for (Op& op : ops) {
        const ScheduleEndpoints ep = resolve(op);
        if (ep.u == kNoNode) continue;
        warm_ids_.push_back(ep.u);
        if (ep.v != kNoNode && ep.v != ep.u) warm_ids_.push_back(ep.v);
      }
      tree.warm_root_paths(warm_ids_);
    }
  }

  ScheduleConfig cfg_;
  Cost reordered_ = 0;
  std::vector<std::uint64_t> keys_;
  std::vector<NodeId> us_, vs_, lcas_, warm_ids_;
  std::vector<size_t> slots_;
  std::vector<PathInfo> infos_;
  std::vector<size_t> order_;
};

}  // namespace san
