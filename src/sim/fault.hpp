// Deterministic fault injection for the sharded serving engine.
//
// A FaultPlan is a script of fault events keyed to the global request
// index: "after `at_request` requests have been served, fire `kind` at
// shard `shard`". Because the trigger is a request count — not wall
// time — a failure scenario replays bit-exactly: the batch pipeline
// (sim/simulator.hpp) splits its drain chunks at the kill points, so the
// pre-crash state, the tree_io snapshot the recovery restores, and the
// trace tail it replays are identical on every run, sequential or
// concurrent. The open-loop frontend (sim/serve_frontend.hpp) fires the
// same script at its dispatch counter and recovers at a quiesce barrier;
// its recovered state is dispatch-order-consistent rather than bit-exact
// (real-time interleaving is not replayable — see the frontend's file
// comment).
//
// Three event kinds, mirroring what actually fails in a tablet server:
//   * kShardKill     — the shard loses its in-memory tree; recovery is
//     two-tier: a replicated shard fails over by promotion (the lockstep
//     copy already holds the exact pre-crash state), an unreplicated one
//     is rebuilt from its last tree_io snapshot plus a replay of the
//     trace tail served since it. Replay costs are accounted separately
//     from serve costs (SimResult::recovery_cost), the same convention
//     migration_cost uses, so a faulted run's golden serve counters match
//     the unfaulted run's.
//   * kWorkerKill    — the serving *thread* dies, the data survives: the
//     open-loop frontend retires the shard's worker at a quiesce barrier
//     and respawns a fresh one (counted in SimResult::worker_kills, the
//     pause charged to latency like any stall). The batch pipeline has no
//     persistent workers, so there it only counts the event.
//   * kQueuePressure — the shard's inbox capacity collapses to a sliver
//     until the next quiesce barrier, forcing the admission policy
//     (block/shed/deadline) to actually engage. Counted in
//     SimResult::queue_pressure_events; a no-op outside the frontend
//     (the batch pipeline has no queues to pressure).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace san {

enum class FaultKind : std::uint8_t {
  kShardKill = 0,      ///< lose the shard's in-memory tree
  kWorkerKill = 1,     ///< lose the shard's worker thread (frontend only)
  kQueuePressure = 2,  ///< collapse the shard's inbox bound (frontend only)
};

const char* fault_kind_name(FaultKind kind);

/// One scripted fault: fires when `at_request` requests have been
/// served/dispatched (i.e. between request at_request-1 and at_request).
struct FaultEvent {
  std::size_t at_request = 0;
  int shard = -1;
  FaultKind kind = FaultKind::kShardKill;

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

struct FaultPlan {
  /// Fault script; must be non-decreasing in at_request (validated by the
  /// engines before the run starts). Events scheduled past the end of the
  /// trace simply never fire.
  std::vector<FaultEvent> kills;
  /// Recovery-time objective in milliseconds, carried through to reports
  /// (bench/lifecycle_scaling, san_cli); 0 = no SLO configured. The
  /// engines measure, they do not enforce.
  double recovery_slo_ms = 0.0;

  bool enabled() const { return !kills.empty(); }

  /// Throws TreeError when the script is malformed: unsorted event indices
  /// or a negative shard id. Shard ids are range-checked at fire time
  /// against the *live* shard count (splits/merges may have changed it).
  void validate() const;
};

/// Parses a CLI fault script: "[KIND:]IDX@SHARD[,...]" where KIND is
/// `k` (shard kill, the default when omitted), `w` (worker kill) or `q`
/// (queue pressure) — e.g. "50000@2,w:60000@0,q:80000@1". Throws
/// TreeError on malformed input.
FaultPlan parse_fault_plan(const std::string& spec);

/// Chaos mode: a seeded generator of valid fault scripts. Emits a
/// deterministic function of (seed, shards, m) — same inputs, same plan,
/// so a chaos run that trips an invariant is replayable from its seed
/// alone. Events are sorted, strictly inside (0, m), target shards in
/// [0, shards), and mix all three kinds with shard kills dominating
/// (they exercise the deepest recovery machinery). Throws TreeError on
/// shards < 1 or m < 2.
FaultPlan gen_chaos_plan(std::uint64_t seed, int shards, std::size_t m);

}  // namespace san
