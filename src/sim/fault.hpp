// Deterministic fault injection for the sharded serving engine.
//
// A FaultPlan is a script of shard kills keyed to the global request
// index: "after `at_request` requests have been served, shard `shard`
// loses its in-memory tree". Because the trigger is a request count — not
// wall time — a failure scenario replays bit-exactly: the batch pipeline
// (sim/simulator.hpp) splits its drain chunks at the kill points, so the
// pre-crash state, the tree_io snapshot the recovery restores, and the
// trace tail it replays are identical on every run, sequential or
// concurrent. The open-loop frontend (sim/serve_frontend.hpp) fires the
// same script at its dispatch counter and recovers at a quiesce barrier;
// its recovered state is dispatch-order-consistent rather than bit-exact
// (real-time interleaving is not replayable — see the frontend's file
// comment).
//
// Recovery itself is two-tier, mirroring tablet servers: a shard with a
// live replica fails over by promotion (the lockstep copy already holds
// the exact pre-crash state); an unreplicated shard is rebuilt from its
// last tree_io snapshot plus a replay of the trace tail served since that
// snapshot. Replay costs are accounted separately from serve costs
// (SimResult::recovery_cost), the same convention migration_cost uses, so
// a faulted run's golden serve counters match the unfaulted run's.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace san {

/// One scripted shard kill: fires when `at_request` requests have been
/// served/dispatched (i.e. between request at_request-1 and at_request).
struct FaultEvent {
  std::size_t at_request = 0;
  int shard = -1;

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

struct FaultPlan {
  /// Kill script; must be non-decreasing in at_request (validated by the
  /// engines before the run starts). Kills scheduled past the end of the
  /// trace simply never fire.
  std::vector<FaultEvent> kills;
  /// Recovery-time objective in milliseconds, carried through to reports
  /// (bench/lifecycle_scaling, san_cli); 0 = no SLO configured. The
  /// engines measure, they do not enforce.
  double recovery_slo_ms = 0.0;

  bool enabled() const { return !kills.empty(); }

  /// Throws TreeError when the script is malformed: unsorted kill indices
  /// or a negative shard id. Shard ids are range-checked at fire time
  /// against the *live* shard count (splits/merges may have changed it).
  void validate() const;
};

/// Parses a CLI kill script: "IDX@SHARD[,IDX@SHARD...]", e.g.
/// "50000@2,80000@0". Throws TreeError on malformed input.
FaultPlan parse_fault_plan(const std::string& spec);

}  // namespace san
