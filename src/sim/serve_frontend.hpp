// ServeFrontend: the live open-loop serving engine — a dynamic fleet of
// worker threads over per-shard bounded MPSC inboxes, fed by an
// arrival-timed dispatcher, with cross-shard requests handed over between
// workers through per-shard mailboxes (the RPC/handover split of
// disaggregated stores like DiStore, replacing the batch pipeline's epoch
// barrier).
//
// Topology of one run:
//
//   caller thread (dispatcher)            worker threads, one per shard
//   ─────────────────────────             ──────────────────────────────
//   wait until arrival[i]                 drain inbox (mailbox first,
//   admission control: token              then main queue, ≤ B per
//     bucket, deadline, queue             wakeup = batched admission)
//     policy (block/shed)                 re-resolve shard through the
//   route r_i via the shard-route         route table per batch
//     table                   ──push──►   intra: shard.serve(u, v)
//   observe into rebalancer               cross 1st leg: shard.access(u),
//   every epoch: quiesce, plan,             mailbox-push to dst worker
//     migrate, split/merge,                 (bounded retry + breaker)
//     reshape the worker fleet            cross 2nd leg: shard.access(v)
//                                           + top-tree legs, complete
//
// Dynamic worker lifecycle: workers are no longer pinned to a shard at
// construction. A shard-route table (shard id -> worker slot, versioned
// by an epoch counter bumped at every fleet change) is consulted per
// admitted batch and per handover, so the whole PR 9 lifecycle machinery
// runs mid-flight under live traffic: watermark splits spawn a fresh
// worker for the new shard, merges retire and join the vacated worker,
// replica promotion and snapshot-restore recovery rebuild a killed
// shard — all at the existing quiesce barrier (completed == dispatched),
// where no request is in flight and the route can change shape safely.
// Route/fleet mutations are published to workers through the inbox
// mutexes (every item a worker pops was pushed after the mutation) with
// the epoch counter as the cheap per-batch re-resolution trigger.
//
// Cost accounting is identical to the batched pipeline (and hence to
// per-request ShardedNetwork::serve): intra requests are exact Section 2
// accounting, a cross-shard request pays both root ascents plus the
// static top-tree route. At S = 1 with FIFO admission the single inbox
// preserves trace order, so the total cost bit-matches closed-loop batch
// replay for any arrival process (locked by tests/test_frontend.cpp). At
// S > 1 the per-shard interleaving of direct and handed-over ops depends
// on real-time scheduling, so costs are statistically but not bit
// reproducible — the price of measuring actual latency.
//
// Overload control: the admission plane is explicit instead of an
// implicit infinite queue. The full-queue policy picks what happens when
// a shard's main inbox is full — kBlock (backpressure the dispatcher;
// the pre-overload-control behavior, still the default and still
// lossless) or kShed (drop the request, count it, record its age in the
// shed histogram). kDeadline gives every request an absolute deadline
// (arrival + deadline_ms): dead requests are shed at admission and again
// at dequeue — a request that expired while queued is dropped before it
// can touch a tree, so deadline-expired requests never mutate state. An
// optional token bucket (admit_rate/admit_burst, refilled from the
// *intended* arrival clock, so its admit/shed pattern is a deterministic
// function of the schedule) throttles admission upstream of the queues.
// Every drop lands in SimResult's shed counters and the shed-age
// histogram; a run with no drops is bit-identical to the pre-overload
// engine.
//
// Cross-shard resilience (kShed/kDeadline only; kBlock keeps the
// lossless unbounded-mailbox semantics): handover mailboxes are bounded,
// a full push is retried a bounded number of times with deterministic
// seeded backoff, and each shard has a circuit breaker — tripped by
// retry exhaustion (half-opens on a probe cadence) or forced open by the
// dispatcher while the shard is mid-recovery — that sheds cross-shard
// legs instead of stalling the sender behind a struggling shard.
//
// Latency: each request carries its intended arrival timestamp; sojourn
// (queue wait + service, including both legs and every mailbox hop of a
// cross-shard request) is recorded into per-worker LatencyHistograms and
// merged after the run — the mergeable-summary path to global p50/p99/p999.
// Shed requests are recorded in the separate shed histogram (age at drop)
// and never in sojourn: served latency stays honest under degradation.
#pragma once

#include <cstdint>
#include <span>

#include "sim/sharded_network.hpp"
#include "sim/simulator.hpp"
#include "stats/latency_histogram.hpp"
#include "workload/arrival.hpp"

namespace san {

/// What the dispatcher does when a shard's main inbox is full — and, for
/// kDeadline, what a request's deadline means. See the file comment.
enum class QueuePolicy : std::uint8_t {
  kBlock = 0,  ///< wait for space: lossless backpressure (the default; the
               ///< pre-overload-control behavior bit for bit, with the
               ///< wait now counted in SimResult::queue_full_blocks)
  kShed = 1,   ///< drop the request at a full queue, count + histogram it
  kDeadline = 2,  ///< block at a full queue, but shed requests whose
                  ///< absolute deadline (arrival + deadline_ms) has passed
                  ///< — at admission and again at dequeue
};

const char* queue_policy_name(QueuePolicy policy);

struct FrontendOptions {
  /// Max requests a worker admits per wakeup (the B of batched admission).
  int admission_batch = 64;
  /// Bound of each shard's main request queue. What happens when it fills
  /// is queue_policy's call; under kBlock the dispatcher blocks while the
  /// target queue is full (arrival timestamps keep counting, so the
  /// backpressure is charged to latency, not hidden).
  std::size_t queue_capacity = 1024;
  /// Full-queue / deadline semantics (see QueuePolicy). kBlock is
  /// lossless; kShed and kDeadline are the degradation modes that also
  /// bound the handover mailboxes and arm the circuit breakers.
  QueuePolicy queue_policy = QueuePolicy::kBlock;
  /// kDeadline: per-request budget in milliseconds from intended arrival.
  /// Must be > 0 under kDeadline and 0 otherwise (validated).
  double deadline_ms = 0.0;
  /// > 0 arms the token-bucket admission throttle at this many requests/s.
  /// The bucket refills from the intended-arrival clock, so which requests
  /// it sheds is a deterministic function of the arrival schedule (under a
  /// saturation schedule the clock never advances: only the initial burst
  /// is admitted). Works under every queue policy.
  double admit_rate = 0.0;
  /// Token-bucket depth; 0 picks the default (64 tokens).
  double admit_burst = 0.0;
  /// Handover mailbox bound under kShed/kDeadline; 0 picks the default
  /// (4 x queue_capacity). Under kBlock mailboxes stay unbounded: handover
  /// traffic is already bounded by the main queues, and a bounded
  /// worker-to-worker push could deadlock a cycle of full shards — the
  /// degradation modes break that cycle by shedding after bounded retries
  /// instead.
  std::size_t mailbox_capacity = 0;
  /// Bounded retries of a full handover push before the leg is shed
  /// (kShed/kDeadline only).
  int handover_retries = 3;
  /// Seeds the per-worker deterministic backoff schedule between handover
  /// retries.
  std::uint64_t backoff_seed = 0x5EED;
  /// Consecutive handover-retry exhaustions against one shard that trip
  /// its circuit breaker (which then sheds cross legs outright and
  /// half-opens on a probe cadence). Must be >= 1.
  int breaker_threshold = 8;
  /// Non-null + enabled() turns on online rebalancing epochs (see file
  /// comment); lifecycle knobs (split/merge watermarks, planned replicas)
  /// are honored mid-flight: splits spawn workers, merges retire them,
  /// replicas are reconciled — all at quiesce barriers, exactly like the
  /// batch pipeline's drain barriers. Statically replicated shards
  /// (ShardedNetwork::add_replica before the run) work too — workers
  /// mirror into them and serve intra-shard requests from them.
  const RebalanceConfig* rebalance = nullptr;
  /// Non-null + enabled() injects scripted faults (sim/fault.hpp): each
  /// event fires when the dispatch counter reaches its at_request.
  /// kShardKill quiesces the pipeline, then recovers the shard — replica
  /// promotion when one exists, else a checksummed snapshot restore plus
  /// a dispatch-order replay of the killed shard's ops since the
  /// snapshot. At S = 1 under FIFO the rebuild is bit-identical to the
  /// lost state; at S > 1 it is dispatch-order-consistent (the racy
  /// mailbox interleaving that produced the lost state is not recorded).
  /// kWorkerKill retires and respawns the shard's worker thread (data
  /// intact); kQueuePressure collapses the shard's inbox bound until the
  /// next barrier. Recovery wall time lands in
  /// SimResult::recovery_total_ms/_max_ms and every pause is charged to
  /// arrivals like any other stall.
  const FaultPlan* faults = nullptr;
  /// Serve order within each admitted batch (sim/schedule.hpp). FIFO keeps
  /// the inbox order (and hence the S = 1 bit-match with batch replay);
  /// kLocality reorders each batch by LCA cluster against the worker's own
  /// shard tree before serving — fleet changes only land at quiesce
  /// barriers, so the map is stable for the whole batch. Validated at
  /// construction.
  ScheduleConfig schedule{};
};

struct FrontendResult {
  /// Serve-path totals in the batch pipeline's conventions, with
  /// sim.latency filled from the sojourn histogram. cross_shard counts
  /// requests that were cross-shard under the map at dispatch time;
  /// sim.requests counts every request the schedule offered (admitted or
  /// shed), so sojourn.count() + sim.shed_requests == sim.requests.
  SimResult sim;
  /// Queue wait + service time per served request, nanoseconds.
  LatencyHistogram sojourn;
  /// Arrival-to-first-admission wait per served request, nanoseconds.
  LatencyHistogram queue_wait;
  /// Age (now - intended arrival) at the moment a request was dropped,
  /// nanoseconds — the "how stale was what we refused" histogram. Empty
  /// when nothing was shed.
  LatencyHistogram shed;
  double elapsed_seconds = 0.0;  ///< first dispatch to last completion
  double offered_rate = 0.0;     ///< requests/s of the arrival schedule
                                 ///< (0 for saturation)
  double achieved_rate = 0.0;    ///< served requests / elapsed
  std::size_t handovers = 0;     ///< first-leg mailbox handovers performed
  std::size_t forwards = 0;      ///< ops re-routed after losing a race
                                 ///< with a migration or a fleet change
  std::uint64_t route_epochs = 0;  ///< shard-route-table versions published
                                   ///< (fleet/map changes during the run)
};

class ServeFrontend {
 public:
  /// The frontend serves through `net`, which must outlive it. Worker
  /// threads are spawned per run() (one per live shard, plus one per
  /// mid-run split) and joined before it returns.
  explicit ServeFrontend(ShardedNetwork& net, FrontendOptions opt = {});

  /// Serves `trace` open-loop: request i is dispatched at `arrivals[i]`
  /// nanoseconds after the run starts (gen_arrival_times produces the
  /// schedule; all-zero = saturation). Blocks until every request has
  /// completed or been shed. Throws TreeError when the sizes disagree or
  /// the options are invalid. Thin adapter over run_stream (TraceStream +
  /// FixedArrivalSchedule), plus a final-map post_intra_fraction re-scan
  /// when migrations or splits/merges occurred — the only thing a
  /// single-pass stream cannot reproduce.
  FrontendResult run(const Trace& trace,
                     std::span<const std::uint64_t> arrivals);

  /// Streaming engine: pulls requests from `stream` in O(chunk) memory and
  /// one arrival timestamp per request from `schedule`, so an m = 10^8
  /// open-loop run needs neither the materialized trace nor the 800 MB
  /// arrival vector. Identical serving machinery to run() — workers,
  /// mailboxes, quiesce barriers, epoch placement — the only divergence is
  /// post_intra_fraction, computed from dispatch-time counters.
  FrontendResult run_stream(RequestStream& stream, ArrivalSchedule& schedule);

 private:
  ShardedNetwork& net_;
  FrontendOptions opt_;
};

}  // namespace san
