// ServeFrontend: the live open-loop serving engine — shard-pinned worker
// threads over per-shard bounded MPSC inboxes, fed by an arrival-timed
// dispatcher, with cross-shard requests handed over between workers
// through per-shard mailboxes (the RPC/handover split of disaggregated
// stores like DiStore, replacing the batch pipeline's epoch barrier).
//
// Topology of one run:
//
//   caller thread (dispatcher)            S worker threads, one per shard
//   ─────────────────────────             ──────────────────────────────
//   wait until arrival[i]                 drain inbox (mailbox first,
//   route r_i by ShardMap      ──push──►  then main queue, ≤ B per
//   observe into rebalancer               wakeup = batched admission)
//   every epoch: quiesce,                 intra: shard.serve(u, v)
//     plan, apply_migrations              cross 1st leg: shard.access(u),
//                                           mailbox-push to dst worker
//                                         cross 2nd leg: shard.access(v)
//                                           + top-tree legs, complete
//
// Cost accounting is identical to the batched pipeline (and hence to
// per-request ShardedNetwork::serve): intra requests are exact Section 2
// accounting, a cross-shard request pays both root ascents plus the
// static top-tree route. At S = 1 with FIFO admission the single inbox
// preserves trace order, so the total cost bit-matches closed-loop batch
// replay for any arrival process (locked by tests/test_frontend.cpp). At
// S > 1 the per-shard interleaving of direct and handed-over ops depends
// on real-time scheduling, so costs are statistically but not bit
// reproducible — the price of measuring actual latency.
//
// Latency: each request carries its intended arrival timestamp; sojourn
// (queue wait + service, including both legs and every mailbox hop of a
// cross-shard request) is recorded into per-worker LatencyHistograms and
// merged after the run — the mergeable-summary path to global p50/p99/p999.
//
// Rebalancing reuses the PR 4 observe/plan/apply hooks online: the
// dispatcher observes every request into a RebalanceState; at each epoch
// boundary it stops dispatching, waits for the pipeline to drain
// (completed == dispatched — a quiesce barrier, not a per-request one),
// plans against measured cross/intra costs, applies the migration batch,
// and resumes. The pause is real serving time: arrivals keep accumulating
// during it, so migration stalls show up honestly in the tail quantiles.
// Queued items hold global ids and re-resolve their shard on admission,
// so ops that raced a migration are forwarded to the node's new shard
// (counted in FrontendResult::forwards) instead of being lost.
#pragma once

#include <cstdint>
#include <span>

#include "sim/sharded_network.hpp"
#include "sim/simulator.hpp"
#include "stats/latency_histogram.hpp"
#include "workload/arrival.hpp"

namespace san {

struct FrontendOptions {
  /// Max requests a worker admits per wakeup (the B of batched admission).
  int admission_batch = 64;
  /// Bound of each shard's main request queue; the dispatcher blocks while
  /// its target queue is full (arrival timestamps keep counting, so the
  /// backpressure is charged to latency, not hidden). Mailboxes are
  /// unbounded: handover traffic is already bounded by the main queues,
  /// and a bounded worker-to-worker push could deadlock a cycle of full
  /// shards.
  std::size_t queue_capacity = 1024;
  /// Non-null + enabled() turns on online rebalancing epochs (see file
  /// comment). Ignored when the network has a single shard. Lifecycle
  /// configs (split/merge watermarks, planned replicas) are rejected at
  /// construction: the frontend's worker-per-shard topology is fixed for
  /// a run, so fleets can only change shape in the batch pipeline.
  /// Statically replicated shards (ShardedNetwork::add_replica before the
  /// run) are fine — workers mirror into them and serve intra-shard
  /// requests from them.
  const RebalanceConfig* rebalance = nullptr;
  /// Non-null + enabled() injects scripted shard crashes (sim/fault.hpp):
  /// each kill fires when the dispatch counter reaches its at_request.
  /// The dispatcher quiesces the pipeline, then recovers the shard —
  /// replica promotion when one exists, else a tree_io snapshot restore
  /// plus a dispatch-order replay of the killed shard's ops since the
  /// snapshot. At S = 1 under FIFO the rebuild is bit-identical to the
  /// lost state; at S > 1 it is dispatch-order-consistent (the racy
  /// mailbox interleaving that produced the lost state is not recorded).
  /// Recovery wall time lands in SimResult::recovery_total_ms/_max_ms and
  /// the pause is charged to arrivals like any other stall.
  const FaultPlan* faults = nullptr;
  /// Serve order within each admitted batch (sim/schedule.hpp). FIFO keeps
  /// the inbox order (and hence the S = 1 bit-match with batch replay);
  /// kLocality reorders each batch by LCA cluster against the worker's own
  /// shard tree before serving — migrations only land at quiesce barriers,
  /// so the map is stable for the whole batch. Validated at construction.
  ScheduleConfig schedule{};
};

struct FrontendResult {
  /// Serve-path totals in the batch pipeline's conventions, with
  /// sim.latency filled from the sojourn histogram. cross_shard counts
  /// requests that were cross-shard under the map at dispatch time.
  SimResult sim;
  /// Queue wait + service time per request, nanoseconds.
  LatencyHistogram sojourn;
  /// Arrival-to-first-admission wait per request, nanoseconds.
  LatencyHistogram queue_wait;
  double elapsed_seconds = 0.0;  ///< first dispatch to last completion
  double offered_rate = 0.0;     ///< requests/s of the arrival schedule
                                 ///< (0 for saturation)
  double achieved_rate = 0.0;    ///< completed requests / elapsed
  std::size_t handovers = 0;     ///< first-leg mailbox handovers performed
  std::size_t forwards = 0;      ///< ops re-routed after losing a race
                                 ///< with a migration
};

class ServeFrontend {
 public:
  /// The frontend serves through `net`, which must outlive it. One worker
  /// thread per shard is spawned per run() and joined before it returns.
  explicit ServeFrontend(ShardedNetwork& net, FrontendOptions opt = {});

  /// Serves `trace` open-loop: request i is dispatched at `arrivals[i]`
  /// nanoseconds after the run starts (gen_arrival_times produces the
  /// schedule; all-zero = saturation). Blocks until every request has
  /// completed. Throws TreeError when the sizes disagree or the options
  /// are invalid. Thin adapter over run_stream (TraceStream +
  /// FixedArrivalSchedule), plus a final-map post_intra_fraction re-scan
  /// when migrations occurred — the only thing a single-pass stream
  /// cannot reproduce.
  FrontendResult run(const Trace& trace,
                     std::span<const std::uint64_t> arrivals);

  /// Streaming engine: pulls requests from `stream` in O(chunk) memory and
  /// one arrival timestamp per request from `schedule`, so an m = 10^8
  /// open-loop run needs neither the materialized trace nor the 800 MB
  /// arrival vector. Identical serving machinery to run() — workers,
  /// mailboxes, quiesce barriers, epoch placement — the only divergence is
  /// post_intra_fraction, computed from dispatch-time counters.
  FrontendResult run_stream(RequestStream& stream, ArrivalSchedule& schedule);

 private:
  ShardedNetwork& net_;
  FrontendOptions opt_;
};

}  // namespace san
