// Parallel parameter sweeps: run many independent (network factory, trace)
// experiments across hardware threads and collect SimResults in input
// order. The bench tables are sweeps over k and topology; on multi-core
// hosts this turns a minutes-long table into seconds.
#pragma once

#include <functional>
#include <vector>

#include "sim/any_network.hpp"
#include "sim/simulator.hpp"

namespace san {

struct SweepCase {
  /// Builds a fresh network instance; invoked on a worker thread, so the
  /// factory must not share mutable state with other cases. Returns the
  /// variant directly for the in-tree topologies (served devirtualized);
  /// out-of-variant topologies ride the unique_ptr<Network> escape hatch.
  std::function<AnyNetwork()> make_network;
  /// Trace to replay; referenced, not copied — must outlive the sweep.
  const Trace* trace = nullptr;
};

/// Runs every case (each on one worker; 0 = all hardware threads) and
/// returns results positionally. Throws TreeError if a case is missing a
/// factory or trace; exceptions from workers propagate.
std::vector<SimResult> run_sweep(const std::vector<SweepCase>& cases,
                                 int threads = 0);

}  // namespace san
