#include "sim/fault.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/types.hpp"

namespace san {
namespace {

/// splitmix64: the chaos generator's PRNG. Chosen for being tiny, seedable
/// and stable across platforms — the plan must be a pure function of the
/// seed, not of the standard library's distribution implementations.
std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kShardKill:
      return "shard-kill";
    case FaultKind::kWorkerKill:
      return "worker-kill";
    case FaultKind::kQueuePressure:
      return "queue-pressure";
  }
  return "?";
}

void FaultPlan::validate() const {
  for (std::size_t i = 0; i < kills.size(); ++i) {
    if (kills[i].shard < 0)
      throw TreeError("FaultPlan: event " + std::to_string(i) +
                      " has a negative shard id");
    if (i > 0 && kills[i].at_request < kills[i - 1].at_request)
      throw TreeError(
          "FaultPlan: events must be sorted by at_request (event " +
          std::to_string(i) + " fires before its predecessor)");
  }
}

FaultPlan parse_fault_plan(const std::string& spec) {
  if (spec.empty())
    throw TreeError("parse_fault_plan: empty fault script");
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    std::string item = spec.substr(pos, end - pos);
    FaultKind kind = FaultKind::kShardKill;
    if (item.size() >= 2 && item[1] == ':') {
      switch (item[0]) {
        case 'k':
          kind = FaultKind::kShardKill;
          break;
        case 'w':
          kind = FaultKind::kWorkerKill;
          break;
        case 'q':
          kind = FaultKind::kQueuePressure;
          break;
        default:
          throw TreeError("parse_fault_plan: unknown fault kind '" +
                          item.substr(0, 1) + "' in '" + item + "'");
      }
      item.erase(0, 2);
    }
    const std::size_t at = item.find('@');
    if (at == std::string::npos || at == 0 || at + 1 >= item.size())
      throw TreeError("parse_fault_plan: expected [KIND:]IDX@SHARD, got '" +
                      item + "'");
    try {
      plan.kills.push_back(
          {std::stoull(item.substr(0, at)), std::stoi(item.substr(at + 1)),
           kind});
    } catch (const std::exception&) {
      throw TreeError("parse_fault_plan: malformed number in '" + item + "'");
    }
    pos = end + 1;
  }
  plan.validate();
  return plan;
}

FaultPlan gen_chaos_plan(std::uint64_t seed, int shards, std::size_t m) {
  if (shards < 1)
    throw TreeError("gen_chaos_plan: need at least one shard");
  if (m < 2)
    throw TreeError("gen_chaos_plan: need at least two requests");
  // Fold every input into the stream so plans differ across (shards, m)
  // even under a shared seed.
  std::uint64_t state = (seed + 1) * 0x9E3779B97F4A7C15ull ^
                        (static_cast<std::uint64_t>(shards) << 32) ^
                        static_cast<std::uint64_t>(m);
  const std::size_t events =
      2 + static_cast<std::size_t>(splitmix64(state) % 5);  // 2..6
  std::vector<std::size_t> at(events);
  for (std::size_t& a : at)
    a = 1 + static_cast<std::size_t>(splitmix64(state) %
                                     static_cast<std::uint64_t>(m - 1));
  std::sort(at.begin(), at.end());
  FaultPlan plan;
  plan.kills.reserve(events);
  for (const std::size_t a : at) {
    // Shard kills dominate (they exercise snapshot restore / promotion,
    // the deepest recovery path); worker kills and queue pressure each
    // take a quarter of the rolls.
    const std::uint64_t roll = splitmix64(state) % 4;
    const FaultKind kind = roll < 2   ? FaultKind::kShardKill
                           : roll == 2 ? FaultKind::kWorkerKill
                                       : FaultKind::kQueuePressure;
    const int shard = static_cast<int>(
        splitmix64(state) % static_cast<std::uint64_t>(shards));
    plan.kills.push_back({a, shard, kind});
  }
  plan.validate();
  return plan;
}

}  // namespace san
