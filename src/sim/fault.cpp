#include "sim/fault.hpp"

#include <stdexcept>

#include "core/types.hpp"

namespace san {

void FaultPlan::validate() const {
  for (std::size_t i = 0; i < kills.size(); ++i) {
    if (kills[i].shard < 0)
      throw TreeError("FaultPlan: kill " + std::to_string(i) +
                      " has a negative shard id");
    if (i > 0 && kills[i].at_request < kills[i - 1].at_request)
      throw TreeError(
          "FaultPlan: kills must be sorted by at_request (kill " +
          std::to_string(i) + " fires before its predecessor)");
  }
}

FaultPlan parse_fault_plan(const std::string& spec) {
  if (spec.empty())
    throw TreeError("parse_fault_plan: empty kill script");
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string item = spec.substr(pos, end - pos);
    const std::size_t at = item.find('@');
    if (at == std::string::npos || at == 0 || at + 1 >= item.size())
      throw TreeError("parse_fault_plan: expected IDX@SHARD, got '" + item +
                      "'");
    try {
      plan.kills.push_back({std::stoull(item.substr(0, at)),
                            std::stoi(item.substr(at + 1))});
    } catch (const std::exception&) {
      throw TreeError("parse_fault_plan: malformed number in '" + item + "'");
    }
    pos = end + 1;
  }
  plan.validate();
  return plan;
}

}  // namespace san
