// ShardedNetwork: S independent k-ary SplayNet shards under a static
// top-level tree — the partitioned serving engine that lets one heavy
// trace use all cores.
//
// The node space 1..n is split by a ShardMap (workload/partition.hpp) into
// S shards; each shard runs its own KArySplayNet over dense local ids, so
// intra-shard requests keep the exact Section 2 cost accounting of the
// unsharded network. Cross-shard traffic is costed through a static
// top-level tree whose S positions stand for the shard root slots:
//
//   cost(u in a, v in b, a != b) =
//       depth_a(u)            // ascend to shard a's root, splaying u up
//     + d_top(a, b)           // static route between the two root slots
//     + depth_b(v)            // descend into shard b; v splays to its root
//
// Both endpoint shards self-adjust (root ascent = KArySplayNet::access);
// the top-level tree never does, so cross-shard requests pay routing but
// no top-level adjustment — see README "cost-model caveat". With S = 1
// the engine degenerates to exactly KArySplayNetwork: same balanced
// initial tree, same serve path, bit-identical SimResults.
//
// Shards share no mutable state, so a trace can be drained one shard per
// worker (sim/simulator.hpp: run_trace_sharded) with costs bit-identical
// to the sequential order.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/splaynet.hpp"
#include "workload/partition.hpp"
#include "workload/rebalance.hpp"

namespace san {

/// Cost breakdown of one applied migration batch (see
/// ShardedNetwork::apply_migrations for the model).
struct MigrationResult {
  int migrated = 0;
  Cost extraction_routing = 0;    ///< levels climbed splaying nodes to roots
  Cost extraction_rotations = 0;  ///< k-splay / k-semi-splay steps of those
  Cost relink_edges = 0;          ///< edge symmetric difference of rebuilds

  /// Unit-cost total, same convention as SimResult::total_cost.
  Cost total_cost() const {
    return extraction_routing + extraction_rotations + relink_edges;
  }
};

/// Cost breakdown of one shard lifecycle operation (split or merge).
struct LifecycleResult {
  /// split: id of the freshly created shard; merge: id of the combined
  /// shard after the slot compaction.
  int shard = -1;
  /// Edge symmetric difference (global-id terms) between the affected
  /// shards' trees before and after the rebuild — same Section 2 link
  /// pricing apply_migrations uses.
  Cost relink_edges = 0;
  /// Top-level tree re-slot cost: the fleet size changed, so the static
  /// top tree is torn down and rebuilt over the new S slots; charged as
  /// old edge count + new edge count (conservative full rewire).
  Cost top_edges = 0;

  Cost total_cost() const { return relink_edges + top_edges; }
};

class ShardedNetwork {
 public:
  /// Builds balanced per-shard trees of arity `k` over `map`'s shards.
  ShardedNetwork(int k, ShardMap map, RotationPolicy policy = {},
                 SplayMode mode = SplayMode::kFullSplay);

  /// Convenience: balanced shards over a fresh ShardMap(n, shards, policy).
  static ShardedNetwork balanced(
      int k, int n, int shards,
      ShardPartition partition = ShardPartition::kContiguous,
      RotationPolicy policy = {}, SplayMode mode = SplayMode::kFullSplay);

  /// Serves one request in global ids; self-adjusts the touched shard(s).
  ServeResult serve(NodeId u, NodeId v);

  int size() const { return map_.n(); }
  int arity() const { return k_; }
  int num_shards() const { return map_.shards(); }
  std::string name() const;

  const ShardMap& map() const { return map_; }
  /// Mutable shard access for the batched pipeline; shard s serves local
  /// ids 1..map().shard_size(s).
  KArySplayNet& shard(int s) { return shards_[static_cast<std::size_t>(s)]; }
  const KArySplayNet& shard(int s) const {
    return shards_[static_cast<std::size_t>(s)];
  }

  /// Static top-level distance between the root slots of shards a and b
  /// (0 when a == b). Precomputed at construction.
  Cost top_distance(int a, int b) const {
    return top_dist_[static_cast<std::size_t>(a) *
                         static_cast<std::size_t>(map_.shards()) +
                     static_cast<std::size_t>(b)];
  }

  /// Cross-shard requests served so far (serve() and run_trace_sharded both
  /// maintain it); run_trace snapshots the delta into SimResult::cross_shard.
  Cost cross_shard_served() const { return cross_served_; }
  void note_cross_served(Cost requests) { cross_served_ += requests; }

  /// Applies one rebalancing batch between drains. Per migrating node (the
  /// batch is processed in ascending node order, no-ops dropped):
  ///   1. *Extraction*: the node is splayed to its source shard's root
  ///      (KArySplayNet::access) — the splay-tree deletion idiom — and the
  ///      ascent's routing + rotation cost is charged to the batch.
  ///   2. The ShardMap migrates it (dense local ids recompact).
  ///   3. Every affected shard rebuilds a balanced tree over its new local
  ///      id space; the structural cost charged is the edge symmetric
  ///      difference between the post-extraction and rebuilt topologies in
  ///      global-id terms — this prices both the root detach and the
  ///      re-insert at the destination root in Section 2 link units.
  /// Throws TreeError (before touching anything) if the batch would drain
  /// a shard below one node, since a shard serves a non-empty tree.
  MigrationResult apply_migrations(std::vector<Migration> batch);

  /// Engine-derived planning estimates: cross_penalty = mean top-level
  /// route plus the second root ascent; migration_cost = a balanced-depth
  /// extraction plus a per-node relink share.
  RebalanceCostHints cost_hints() const;

  // ---- tablet-style shard lifecycle -----------------------------------

  /// Splits shard `s` at its local-rank midpoint: the upper half of its
  /// nodes becomes a brand-new shard (id = old shards()), both halves are
  /// rebuilt balanced over their compacted local id spaces, and the top
  /// tree is re-slotted over S+1 positions. A replica of `s` is dropped
  /// (its state described the unsplit shard). Throws TreeError when the
  /// shard has fewer than 2 nodes.
  LifecycleResult split_shard(int s);

  /// Merges shard `from` into shard `into`: the combined shard rebuilds
  /// balanced, `from`'s slot disappears (shard ids above it shift down),
  /// and the top tree re-slots over S-1 positions. Replicas of both
  /// operands are dropped; replicas of other shards keep following their
  /// (re-numbered) primaries. Returns the combined shard's post-merge id.
  LifecycleResult merge_shards(int into, int from);

  // ---- read replicas --------------------------------------------------
  // A replica is a lockstep state-machine copy of its primary: the drain
  // paths mirror every op into it, so it is staleness-free by construction
  // — intra-shard ops ("reads") are answered from the replica copy with
  // bit-identical ServeResults, ascent ops ("writes"/splays) run
  // primary-first, and costs are charged exactly once. A replicated shard
  // also recovers from a crash by promotion instead of snapshot replay.

  /// Attaches a replica to shard `s` (a copy of its current tree);
  /// replaces any existing one.
  void add_replica(int s);
  void drop_replica(int s);
  bool has_replica(int s) const {
    return replicas_[static_cast<std::size_t>(s)] != nullptr;
  }
  int num_replicas() const;
  const KArySplayNet& replica(int s) const;
  /// Mutable replica pointer for the drain paths (null when the shard is
  /// unreplicated). The owning drain worker is the only writer.
  KArySplayNet* replica_mut(int s) {
    return replicas_[static_cast<std::size_t>(s)].get();
  }
  /// Intra-shard ops answered from a replica by serve() (the drain
  /// pipelines count their own into SimResult::replica_reads).
  Cost replica_reads_served() const { return replica_reads_; }

  // ---- crash recovery -------------------------------------------------

  /// Serializes shard `s`'s current topology in san-tree v1 text format
  /// (io/tree_io.hpp) plus a trailing "#crc32 XXXXXXXX" integrity footer
  /// over the text — the snapshot a crash recovery restores from.
  std::string snapshot_shard(int s) const;

  /// Simulated crash recovery: replaces shard `s`'s (lost) tree with the
  /// topology parsed from `snap`. The integrity footer is verified first
  /// (a torn or bit-flipped snapshot is rejected before any parsing),
  /// then the snapshot is validated (tree_io's hardened loader) and must
  /// match the shard's arity and current node count; a replica of `s` is
  /// refreshed to the restored state. The caller replays the trace tail
  /// served since the snapshot to reach the exact pre-crash state.
  void restore_shard(int s, const std::string& snap);

  /// Replica failover: primary becomes a copy of the lockstep replica
  /// (which holds the exact pre-crash state). Throws when unreplicated.
  void promote_replica(int s);

 private:
  void append_edges(int shard, std::vector<std::uint64_t>& out) const;
  void rebuild_top();
  void check_shard(int s, const char* what) const;

  int k_;
  ShardMap map_;
  RotationPolicy policy_;
  SplayMode mode_;
  std::vector<KArySplayNet> shards_;
  /// [shard] -> lockstep replica, null when unreplicated. unique_ptr so
  /// drain workers' replica pointers survive vector growth on split.
  std::vector<std::unique_ptr<KArySplayNet>> replicas_;
  std::vector<Cost> top_dist_;  ///< S x S static route lengths, row-major
  Cost cross_served_ = 0;
  Cost replica_reads_ = 0;
};

}  // namespace san
