// ShardedNetwork: S independent k-ary SplayNet shards under a static
// top-level tree — the partitioned serving engine that lets one heavy
// trace use all cores.
//
// The node space 1..n is split by a ShardMap (workload/partition.hpp) into
// S shards; each shard runs its own KArySplayNet over dense local ids, so
// intra-shard requests keep the exact Section 2 cost accounting of the
// unsharded network. Cross-shard traffic is costed through a static
// top-level tree whose S positions stand for the shard root slots:
//
//   cost(u in a, v in b, a != b) =
//       depth_a(u)            // ascend to shard a's root, splaying u up
//     + d_top(a, b)           // static route between the two root slots
//     + depth_b(v)            // descend into shard b; v splays to its root
//
// Both endpoint shards self-adjust (root ascent = KArySplayNet::access);
// the top-level tree never does, so cross-shard requests pay routing but
// no top-level adjustment — see README "cost-model caveat". With S = 1
// the engine degenerates to exactly KArySplayNetwork: same balanced
// initial tree, same serve path, bit-identical SimResults.
//
// Shards share no mutable state, so a trace can be drained one shard per
// worker (sim/simulator.hpp: run_trace_sharded) with costs bit-identical
// to the sequential order.
#pragma once

#include <string>
#include <vector>

#include "core/splaynet.hpp"
#include "workload/partition.hpp"

namespace san {

class ShardedNetwork {
 public:
  /// Builds balanced per-shard trees of arity `k` over `map`'s shards.
  ShardedNetwork(int k, ShardMap map, RotationPolicy policy = {},
                 SplayMode mode = SplayMode::kFullSplay);

  /// Convenience: balanced shards over a fresh ShardMap(n, shards, policy).
  static ShardedNetwork balanced(
      int k, int n, int shards,
      ShardPartition partition = ShardPartition::kContiguous,
      RotationPolicy policy = {}, SplayMode mode = SplayMode::kFullSplay);

  /// Serves one request in global ids; self-adjusts the touched shard(s).
  ServeResult serve(NodeId u, NodeId v);

  int size() const { return map_.n(); }
  int arity() const { return k_; }
  int num_shards() const { return map_.shards(); }
  std::string name() const;

  const ShardMap& map() const { return map_; }
  /// Mutable shard access for the batched pipeline; shard s serves local
  /// ids 1..map().shard_size(s).
  KArySplayNet& shard(int s) { return shards_[static_cast<std::size_t>(s)]; }
  const KArySplayNet& shard(int s) const {
    return shards_[static_cast<std::size_t>(s)];
  }

  /// Static top-level distance between the root slots of shards a and b
  /// (0 when a == b). Precomputed at construction.
  Cost top_distance(int a, int b) const {
    return top_dist_[static_cast<std::size_t>(a) *
                         static_cast<std::size_t>(map_.shards()) +
                     static_cast<std::size_t>(b)];
  }

  /// Cross-shard requests served so far (serve() and run_trace_sharded both
  /// maintain it); run_trace snapshots the delta into SimResult::cross_shard.
  Cost cross_shard_served() const { return cross_served_; }
  void note_cross_served(Cost requests) { cross_served_ += requests; }

 private:
  int k_;
  ShardMap map_;
  std::vector<KArySplayNet> shards_;
  std::vector<Cost> top_dist_;  ///< S x S static route lengths, row-major
  Cost cross_served_ = 0;
};

}  // namespace san
