// AnyNetwork: closed-set, virtual-free dispatch over every topology the
// simulator serves.
//
// The per-request `virtual serve()` hierarchy used to cost an indirect
// call (and block inlining) on every request of every replay. AnyNetwork
// replaces it with a std::variant: run_trace visits the variant ONCE and
// then runs a monomorphic serve loop on the concrete type, so the hot
// path compiles down to direct calls into the tree engines.
//
// Open extension is still possible through the unique_ptr<Network>
// alternative — a thin virtual adapter kept for factory boundaries
// (sim/sweep.hpp) that want to sweep a topology the variant does not
// know. Only that escape hatch pays virtual dispatch per request.
#pragma once

#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <variant>

#include "sim/network.hpp"
#include "sim/sharded_network.hpp"

namespace san {

class AnyNetwork {
 public:
  using Variant =
      std::variant<StaticTreeNetwork, KArySplayNetwork, CentroidSplayNetwork,
                   BinarySplayNetwork, ShardedNetwork,
                   std::unique_ptr<Network>>;

  /// Converting constructor from any alternative (concrete network by
  /// value, or unique_ptr<Network> for the virtual escape hatch).
  template <typename T,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<T>, AnyNetwork> &&
                std::is_constructible_v<Variant, T&&>>>
  AnyNetwork(T&& net) : v_(std::forward<T>(net)) {  // NOLINT(runtime/explicit)
    if (auto* p = std::get_if<std::unique_ptr<Network>>(&v_))
      if (*p == nullptr)
        throw TreeError("AnyNetwork: null Network adapter");
  }

  /// One-shot dispatch to the concrete type — what run_trace uses to hoist
  /// the variant branch out of the serve loop. The unique_ptr<Network>
  /// alternative is unwrapped to a Network& so callers see a servable
  /// object either way.
  template <typename F>
  decltype(auto) visit(F&& f) {
    return std::visit(
        [&](auto& alt) -> decltype(auto) {
          if constexpr (std::is_same_v<std::remove_cvref_t<decltype(alt)>,
                                       std::unique_ptr<Network>>)
            return std::forward<F>(f)(*alt);
          else
            return std::forward<F>(f)(alt);
        },
        v_);
  }
  template <typename F>
  decltype(auto) visit(F&& f) const {
    return std::visit(
        [&](const auto& alt) -> decltype(auto) {
          if constexpr (std::is_same_v<std::remove_cvref_t<decltype(alt)>,
                                       std::unique_ptr<Network>>)
            return std::forward<F>(f)(*alt);
          else
            return std::forward<F>(f)(alt);
        },
        v_);
  }

  ServeResult serve(NodeId u, NodeId v) {
    return visit([&](auto& net) { return net.serve(u, v); });
  }
  int size() const {
    return visit([](const auto& net) { return net.size(); });
  }
  std::string name() const {
    return visit([](const auto& net) { return net.name(); });
  }

  /// Concrete-type access (nullptr when another alternative is held).
  template <typename T>
  T* get_if() {
    return std::get_if<T>(&v_);
  }
  template <typename T>
  const T* get_if() const {
    return std::get_if<T>(&v_);
  }

 private:
  Variant v_;
};

}  // namespace san
