#include "sim/sharded_network.hpp"

#include <algorithm>
#include <cstdio>
#include <iterator>
#include <sstream>
#include <string_view>

#include "io/checksum.hpp"
#include "io/tree_io.hpp"
#include "static_trees/full_tree.hpp"

namespace san {

ShardedNetwork::ShardedNetwork(int k, ShardMap map, RotationPolicy policy,
                               SplayMode mode)
    : k_(k), map_(std::move(map)), policy_(policy), mode_(mode) {
  const int S = map_.shards();
  shards_.reserve(static_cast<std::size_t>(S));
  for (int s = 0; s < S; ++s) {
    if (map_.shard_size(s) == 0)
      throw TreeError("ShardedNetwork: shard " + std::to_string(s) +
                      " owns no nodes");
    shards_.push_back(
        KArySplayNet::balanced(k, map_.shard_size(s), policy, mode));
  }
  replicas_.resize(static_cast<std::size_t>(S));
  rebuild_top();
}

void ShardedNetwork::rebuild_top() {
  // The top-level tree is a demand-oblivious complete k-ary tree over the
  // S root slots (slot s = node s+1); it is consulted only through this
  // precomputed distance table, so S = 1 simply leaves it all-zero. Called
  // again by split/merge whenever the fleet size changes.
  const int S = map_.shards();
  top_dist_.assign(static_cast<std::size_t>(S) * static_cast<std::size_t>(S),
                   0);
  if (S > 1) {
    const KAryTree top = full_kary_tree(k_, S);
    for (int a = 0; a < S; ++a)
      for (int b = 0; b < S; ++b)
        if (a != b)
          top_dist_[static_cast<std::size_t>(a) * static_cast<std::size_t>(S) +
                    static_cast<std::size_t>(b)] =
              top.distance(static_cast<NodeId>(a + 1),
                           static_cast<NodeId>(b + 1));
  }
}

void ShardedNetwork::check_shard(int s, const char* what) const {
  if (s < 0 || s >= map_.shards())
    throw TreeError(std::string(what) + ": shard " + std::to_string(s) +
                    " out of range (S=" + std::to_string(map_.shards()) + ")");
}

ShardedNetwork ShardedNetwork::balanced(int k, int n, int shards,
                                        ShardPartition partition,
                                        RotationPolicy policy,
                                        SplayMode mode) {
  return ShardedNetwork(k, ShardMap(n, shards, partition), policy, mode);
}

ServeResult ShardedNetwork::serve(NodeId u, NodeId v) {
  const int a = map_.shard_of(u);
  const int b = map_.shard_of(v);
  if (a == b) {
    // Intra-shard ops are the read path: a replicated shard answers from
    // its lockstep copy (bit-identical by construction) and mirrors the
    // self-adjustment into the primary, charging the cost once.
    if (KArySplayNet* rep = replica_mut(a)) {
      const ServeResult r = rep->serve(map_.local_of(u), map_.local_of(v));
      shard(a).serve(map_.local_of(u), map_.local_of(v));
      ++replica_reads_;
      return r;
    }
    return shard(a).serve(map_.local_of(u), map_.local_of(v));
  }

  ++cross_served_;
  // Root ascents are the write/splay path: primary-first, mirrored into
  // the replica so the pair stays staleness-free.
  const ServeResult up = shard(a).access(map_.local_of(u));
  if (KArySplayNet* rep = replica_mut(a)) rep->access(map_.local_of(u));
  const ServeResult down = shard(b).access(map_.local_of(v));
  if (KArySplayNet* rep = replica_mut(b)) rep->access(map_.local_of(v));
  ServeResult res;
  res.routing_cost = up.routing_cost + top_distance(a, b) + down.routing_cost;
  res.rotations = up.rotations + down.rotations;
  res.parent_changes = up.parent_changes + down.parent_changes;
  res.edge_changes = up.edge_changes + down.edge_changes;
  return res;
}

std::string ShardedNetwork::name() const {
  return "sharded[" + std::to_string(num_shards()) + "," +
         shard_partition_name(map_.policy()) + "] " + std::to_string(k_) +
         "-ary SplayNet";
}

void ShardedNetwork::append_edges(int shard,
                                  std::vector<std::uint64_t>& out) const {
  // Parent links of one shard in *global*-id terms: the encoding survives
  // the local-id recompaction a migration causes, so the pre/post edge
  // diff below charges exactly the links the batch rewired.
  const KAryTree& t = shards_[static_cast<std::size_t>(shard)].tree();
  for (NodeId local = 1; local <= t.size(); ++local) {
    const NodeId p = t.parent(local);
    if (p == kNoNode) continue;
    out.push_back(pack_node_pair(map_.global_of(shard, local),
                                 map_.global_of(shard, p)));
  }
}

MigrationResult ShardedNetwork::apply_migrations(std::vector<Migration> batch) {
  MigrationResult res;

  // Normalize: drop no-ops, validate, fixed ascending-node order so the
  // result is independent of how the planner emitted the batch.
  std::erase_if(batch, [&](const Migration& m) {
    if (m.node < 1 || m.node > map_.n())
      throw TreeError("apply_migrations: node id out of range");
    if (m.to_shard < 0 || m.to_shard >= map_.shards())
      throw TreeError("apply_migrations: shard out of range");
    return map_.shard_of(m.node) == m.to_shard;
  });
  if (batch.empty()) return res;
  std::sort(batch.begin(), batch.end(),
            [](const Migration& a, const Migration& b) {
              return a.node < b.node;
            });
  for (std::size_t i = 1; i < batch.size(); ++i)
    if (batch[i].node == batch[i - 1].node)
      throw TreeError("apply_migrations: node migrated twice in one batch");

  // Reject draining before any state changes. Only the *final* sizes
  // matter: extractions run on the untouched trees and rebuilds happen
  // after the whole batch remaps, so a shard transiently empty mid-remap
  // is fine — one left empty at the end is not.
  {
    std::vector<int> owned(static_cast<std::size_t>(map_.shards()));
    for (int s = 0; s < map_.shards(); ++s)
      owned[static_cast<std::size_t>(s)] = map_.shard_size(s);
    for (const Migration& m : batch) {
      --owned[static_cast<std::size_t>(map_.shard_of(m.node))];
      ++owned[static_cast<std::size_t>(m.to_shard)];
    }
    for (int s = 0; s < map_.shards(); ++s)
      if (owned[static_cast<std::size_t>(s)] < 1)
        throw TreeError("apply_migrations: batch would drain shard " +
                        std::to_string(s));
  }

  std::vector<bool> affected(static_cast<std::size_t>(map_.shards()), false);
  for (const Migration& m : batch) {
    affected[static_cast<std::size_t>(map_.shard_of(m.node))] = true;
    affected[static_cast<std::size_t>(m.to_shard)] = true;
  }

  // Phase 1 — extraction: splay every migrating node to its source shard's
  // root under the *old* map (successive extractions from one shard act on
  // the progressively adjusted tree, like any other access sequence).
  for (const Migration& m : batch) {
    const ServeResult up =
        shard(map_.shard_of(m.node)).access(map_.local_of(m.node));
    res.extraction_routing += up.routing_cost;
    res.extraction_rotations += up.rotations;
  }

  std::vector<std::uint64_t> before, after;
  for (int s = 0; s < map_.shards(); ++s)
    if (affected[static_cast<std::size_t>(s)]) append_edges(s, before);

  // Phase 2 — remap and rebuild the affected shards balanced over their
  // compacted local id spaces. Replicas of affected shards are refreshed
  // to the rebuilt primary so the lockstep invariant survives migrations.
  for (const Migration& m : batch) map_.migrate(m.node, m.to_shard);
  for (int s = 0; s < map_.shards(); ++s)
    if (affected[static_cast<std::size_t>(s)]) {
      shards_[static_cast<std::size_t>(s)] =
          KArySplayNet::balanced(k_, map_.shard_size(s), policy_, mode_);
      if (replicas_[static_cast<std::size_t>(s)])
        *replicas_[static_cast<std::size_t>(s)] =
            shards_[static_cast<std::size_t>(s)];
    }

  for (int s = 0; s < map_.shards(); ++s)
    if (affected[static_cast<std::size_t>(s)]) append_edges(s, after);

  std::sort(before.begin(), before.end());
  std::sort(after.begin(), after.end());
  std::vector<std::uint64_t> diff;
  std::set_symmetric_difference(before.begin(), before.end(), after.begin(),
                                after.end(), std::back_inserter(diff));
  res.relink_edges = static_cast<Cost>(diff.size());
  res.migrated = static_cast<int>(batch.size());
  return res;
}

namespace {

/// Edge count of the static complete k-ary top tree over S slots.
Cost top_edge_count(int S) { return S > 1 ? static_cast<Cost>(S - 1) : 0; }

}  // namespace

LifecycleResult ShardedNetwork::split_shard(int s) {
  check_shard(s, "split_shard");
  if (map_.shard_size(s) < 2)
    throw TreeError("split_shard: shard " + std::to_string(s) +
                    " needs >= 2 nodes to split");
  LifecycleResult res;
  const int s_old = map_.shards();
  res.top_edges = top_edge_count(s_old);

  std::vector<std::uint64_t> before, after;
  append_edges(s, before);

  const int fresh = map_.split(s);
  shards_.push_back(
      KArySplayNet::balanced(k_, map_.shard_size(fresh), policy_, mode_));
  shards_[static_cast<std::size_t>(s)] =
      KArySplayNet::balanced(k_, map_.shard_size(s), policy_, mode_);
  // The old replica described the unsplit shard; drop it (the planner can
  // re-replicate either half next epoch).
  replicas_[static_cast<std::size_t>(s)].reset();
  replicas_.push_back(nullptr);
  rebuild_top();
  res.top_edges += top_edge_count(map_.shards());

  append_edges(s, after);
  append_edges(fresh, after);
  std::sort(before.begin(), before.end());
  std::sort(after.begin(), after.end());
  std::vector<std::uint64_t> diff;
  std::set_symmetric_difference(before.begin(), before.end(), after.begin(),
                                after.end(), std::back_inserter(diff));
  res.relink_edges = static_cast<Cost>(diff.size());
  res.shard = fresh;
  return res;
}

LifecycleResult ShardedNetwork::merge_shards(int into, int from) {
  check_shard(into, "merge_shards");
  check_shard(from, "merge_shards");
  if (into == from) throw TreeError("merge_shards: into == from");
  LifecycleResult res;
  res.top_edges = top_edge_count(map_.shards());

  std::vector<std::uint64_t> before, after;
  append_edges(into, before);
  append_edges(from, before);

  replicas_[static_cast<std::size_t>(into)].reset();
  replicas_[static_cast<std::size_t>(from)].reset();
  replicas_.erase(replicas_.begin() + from);
  const int at = map_.merge(into, from);
  shards_.erase(shards_.begin() + from);
  shards_[static_cast<std::size_t>(at)] =
      KArySplayNet::balanced(k_, map_.shard_size(at), policy_, mode_);
  rebuild_top();
  res.top_edges += top_edge_count(map_.shards());

  append_edges(at, after);
  std::sort(before.begin(), before.end());
  std::sort(after.begin(), after.end());
  std::vector<std::uint64_t> diff;
  std::set_symmetric_difference(before.begin(), before.end(), after.begin(),
                                after.end(), std::back_inserter(diff));
  res.relink_edges = static_cast<Cost>(diff.size());
  res.shard = at;
  return res;
}

void ShardedNetwork::add_replica(int s) {
  check_shard(s, "add_replica");
  replicas_[static_cast<std::size_t>(s)] =
      std::make_unique<KArySplayNet>(shards_[static_cast<std::size_t>(s)]);
}

void ShardedNetwork::drop_replica(int s) {
  check_shard(s, "drop_replica");
  replicas_[static_cast<std::size_t>(s)].reset();
}

int ShardedNetwork::num_replicas() const {
  int count = 0;
  for (const auto& r : replicas_)
    if (r) ++count;
  return count;
}

const KArySplayNet& ShardedNetwork::replica(int s) const {
  check_shard(s, "replica");
  if (!replicas_[static_cast<std::size_t>(s)])
    throw TreeError("replica: shard " + std::to_string(s) +
                    " is not replicated");
  return *replicas_[static_cast<std::size_t>(s)];
}

namespace {

/// Snapshot integrity footer: one trailing line "#crc32 XXXXXXXX" over
/// every preceding byte of the tree_io text. '#' keeps it visually apart
/// from tree lines; restore_shard() strips and verifies it before the
/// hardened parse, so a torn or bit-flipped snapshot is rejected before
/// any topology work.
constexpr std::string_view kSnapshotFooterTag = "#crc32 ";

std::string checksum_footer(std::string_view body) {
  char line[20];
  std::snprintf(line, sizeof(line), "#crc32 %08x\n", crc32(body));
  return line;
}

/// Validates the footer and returns the tree_io body it covers.
std::string_view strip_snapshot_footer(const std::string& snap) {
  if (snap.empty() || snap.back() != '\n')
    throw TreeError(
        "restore_shard: snapshot missing integrity footer (torn snapshot?)");
  const std::size_t prev = snap.rfind('\n', snap.size() - 2);
  const std::size_t at = prev == std::string::npos ? 0 : prev + 1;
  const std::string_view footer(snap.data() + at, snap.size() - at);
  // "#crc32 " + 8 hex digits + '\n'
  if (footer.size() != kSnapshotFooterTag.size() + 9 ||
      footer.substr(0, kSnapshotFooterTag.size()) != kSnapshotFooterTag)
    throw TreeError(
        "restore_shard: snapshot missing integrity footer (torn snapshot?)");
  std::uint32_t want = 0;
  for (std::size_t i = kSnapshotFooterTag.size(); i + 1 < footer.size(); ++i) {
    const char c = footer[i];
    std::uint32_t digit = 0;
    if (c >= '0' && c <= '9')
      digit = static_cast<std::uint32_t>(c - '0');
    else if (c >= 'a' && c <= 'f')
      digit = static_cast<std::uint32_t>(c - 'a' + 10);
    else
      throw TreeError("restore_shard: malformed snapshot checksum footer");
    want = (want << 4) | digit;
  }
  const std::string_view body(snap.data(), at);
  if (crc32(body) != want)
    throw TreeError(
        "restore_shard: snapshot checksum mismatch (torn or bit-flipped "
        "snapshot)");
  return body;
}

}  // namespace

std::string ShardedNetwork::snapshot_shard(int s) const {
  check_shard(s, "snapshot_shard");
  std::ostringstream out;
  write_tree(out, shards_[static_cast<std::size_t>(s)].tree());
  std::string snap = out.str();
  snap += checksum_footer(snap);
  return snap;
}

void ShardedNetwork::restore_shard(int s, const std::string& snap) {
  check_shard(s, "restore_shard");
  std::istringstream in(std::string(strip_snapshot_footer(snap)));
  KAryTree tree = read_tree(in);  // hardened parse + topology validation
  if (tree.arity() != k_)
    throw TreeError("restore_shard: snapshot arity " +
                    std::to_string(tree.arity()) + " != engine arity " +
                    std::to_string(k_));
  if (tree.size() != map_.shard_size(s))
    throw TreeError("restore_shard: snapshot has " +
                    std::to_string(tree.size()) + " nodes, shard " +
                    std::to_string(s) + " owns " +
                    std::to_string(map_.shard_size(s)));
  shards_[static_cast<std::size_t>(s)] =
      KArySplayNet(std::move(tree), policy_, mode_);
  if (replicas_[static_cast<std::size_t>(s)])
    *replicas_[static_cast<std::size_t>(s)] =
        shards_[static_cast<std::size_t>(s)];
}

void ShardedNetwork::promote_replica(int s) {
  check_shard(s, "promote_replica");
  if (!replicas_[static_cast<std::size_t>(s)])
    throw TreeError("promote_replica: shard " + std::to_string(s) +
                    " is not replicated");
  shards_[static_cast<std::size_t>(s)] = *replicas_[static_cast<std::size_t>(s)];
}

RebalanceCostHints ShardedNetwork::cost_hints() const {
  RebalanceCostHints hints;
  const int S = map_.shards();
  if (S > 1) {
    Cost top_sum = 0;
    for (int a = 0; a < S; ++a)
      for (int b = 0; b < S; ++b)
        if (a != b) top_sum += top_distance(a, b);
    const Cost top_pairs = static_cast<Cost>(S) * (S - 1);
    // A colocated request saves the top route plus one of the two root
    // ascents (integer inputs, so the value is bit-stable).
    const double avg_shard =
        static_cast<double>(map_.n()) / static_cast<double>(S);
    int depth_est = 0;
    for (double cap = 1.0; cap < avg_shard; cap = cap * k_ + 1.0) ++depth_est;
    hints.cross_penalty =
        static_cast<double>(top_sum) / static_cast<double>(top_pairs) +
        depth_est;
    // Extraction climbs about a balanced depth; the rebuild relinks a few
    // edges per migrated node once batches amortize the shard rewires.
    hints.migration_cost = 2.0 * depth_est + 2.0 * k_;
  }
  return hints;
}

}  // namespace san
