#include "sim/sharded_network.hpp"

#include "static_trees/full_tree.hpp"

namespace san {

ShardedNetwork::ShardedNetwork(int k, ShardMap map, RotationPolicy policy,
                               SplayMode mode)
    : k_(k), map_(std::move(map)) {
  const int S = map_.shards();
  shards_.reserve(static_cast<std::size_t>(S));
  for (int s = 0; s < S; ++s)
    shards_.push_back(
        KArySplayNet::balanced(k, map_.shard_size(s), policy, mode));

  // The top-level tree is a demand-oblivious complete k-ary tree over the
  // S root slots (slot s = node s+1); it is consulted only through this
  // precomputed distance table, so S = 1 simply leaves it all-zero.
  top_dist_.assign(static_cast<std::size_t>(S) * static_cast<std::size_t>(S),
                   0);
  if (S > 1) {
    const KAryTree top = full_kary_tree(k, S);
    for (int a = 0; a < S; ++a)
      for (int b = 0; b < S; ++b)
        if (a != b)
          top_dist_[static_cast<std::size_t>(a) * static_cast<std::size_t>(S) +
                    static_cast<std::size_t>(b)] =
              top.distance(static_cast<NodeId>(a + 1),
                           static_cast<NodeId>(b + 1));
  }
}

ShardedNetwork ShardedNetwork::balanced(int k, int n, int shards,
                                        ShardPartition partition,
                                        RotationPolicy policy,
                                        SplayMode mode) {
  return ShardedNetwork(k, ShardMap(n, shards, partition), policy, mode);
}

ServeResult ShardedNetwork::serve(NodeId u, NodeId v) {
  const int a = map_.shard_of(u);
  const int b = map_.shard_of(v);
  if (a == b) return shard(a).serve(map_.local_of(u), map_.local_of(v));

  ++cross_served_;
  const ServeResult up = shard(a).access(map_.local_of(u));
  const ServeResult down = shard(b).access(map_.local_of(v));
  ServeResult res;
  res.routing_cost = up.routing_cost + top_distance(a, b) + down.routing_cost;
  res.rotations = up.rotations + down.rotations;
  res.parent_changes = up.parent_changes + down.parent_changes;
  res.edge_changes = up.edge_changes + down.edge_changes;
  return res;
}

std::string ShardedNetwork::name() const {
  return "sharded[" + std::to_string(num_shards()) + "," +
         shard_partition_name(map_.policy()) + "] " + std::to_string(k_) +
         "-ary SplayNet";
}

}  // namespace san
