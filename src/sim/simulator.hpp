// Trace simulator: replays a communication sequence over a network and
// accounts costs per the Section 2 model with the Section 5 experimental
// conventions (routing hop = 1, rotation = 1).
//
// run_trace is a template over the concrete network type, so the serve
// loop is monomorphic (no per-request indirect call); the AnyNetwork
// overload hoists the variant dispatch out of the loop with a single
// visit. run_trace_sharded is the batched pipeline for ShardedNetwork:
// it splits the trace into per-shard queues and drains the shards
// concurrently on the Executor, with a sequential mode that is
// bit-identical by construction (shards share no state, and per-shard op
// order alone determines cost).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/any_network.hpp"
#include "sim/fault.hpp"
#include "sim/schedule.hpp"
#include "workload/request.hpp"
#include "workload/streaming.hpp"

namespace san {

/// Requests pulled per chunk by the streaming replay loops. Bounds the
/// simulator's working set at O(chunk) regardless of m; chunking is
/// cost-invariant (per-shard op order and every additive counter are
/// unchanged by where the chunk boundaries fall).
inline constexpr std::size_t kStreamChunkRequests = 8192;

/// Tail-latency summary attached to results that were measured under an
/// open-loop arrival process (sim/serve_frontend.hpp). Latency of one
/// request = queue wait + service time, measured from its *intended*
/// arrival timestamp, so a backlogged server cannot hide its stalls
/// (no coordinated omission). Closed-loop replay leaves this unmeasured.
struct LatencyStats {
  bool measured = false;
  double mean_us = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  double max_us = 0.0;
};

struct SimResult {
  Cost routing_cost = 0;    ///< sum of pre-adjustment path lengths
  Cost rotation_count = 0;  ///< k-splay / k-semi-splay / splay steps
  Cost edge_changes = 0;    ///< links added + removed (Section 2 adjustment)
  Cost cross_shard = 0;     ///< requests routed over the top-level tree
                            ///< (always 0 for unsharded networks)
  std::size_t requests = 0;

  // Rebalancing accounting (always 0 unless run_trace_sharded ran with an
  // active RebalanceConfig). Migration cost is kept out of the serve-path
  // counters above so static and adaptive runs stay comparable; use
  // grand_total_cost() for the honest adaptive total.
  Cost rebalance_epochs = 0;    ///< epochs whose trigger fired
  Cost migrations = 0;          ///< nodes moved across shards
  Cost migration_cost = 0;      ///< extraction splays + rebuild relinks
  /// Intra-shard fraction of the whole trace under the *final* map (set by
  /// run_trace_sharded in both static and adaptive modes).
  double post_intra_fraction = 0.0;

  // Shard lifecycle accounting (always 0 unless a sharded run planned
  // splits/merges/replicas through RebalanceConfig's lifecycle knobs).
  // Like migration_cost, lifecycle_cost stays out of the serve counters.
  Cost shard_splits = 0;    ///< shard splits applied at barriers
  Cost shard_merges = 0;    ///< shard merges applied at barriers
  Cost lifecycle_cost = 0;  ///< relink + top-tree rewire edges of those
  Cost replica_reads = 0;   ///< intra-shard ops answered from a replica
  int final_shards = 0;     ///< live shard count when the run ended (0 for
                            ///< unsharded networks)

  // Fault-injection accounting (always 0 without a FaultPlan). Recovery
  // replay cost is kept out of the serve counters so a faulted run's
  // golden serve costs bit-match the unfaulted run's (FIFO schedule).
  Cost faults_injected = 0;      ///< scripted shard kills that fired
  Cost replica_promotions = 0;   ///< recoveries served by replica failover
  Cost recovery_replayed = 0;    ///< tail ops replayed into rebuilt shards
  Cost recovery_cost = 0;        ///< routing + rotations of that replay
  double recovery_total_ms = 0.0;  ///< wall-clock spent recovering, summed
  double recovery_max_ms = 0.0;    ///< slowest single recovery (SLO check)
  /// Chaos events that are not shard kills (sim/fault.hpp): worker kills
  /// (frontend: thread retired + respawned at a quiesce barrier; data
  /// intact) and queue-pressure windows (frontend: inbox bound collapsed
  /// until the next barrier). The batch pipeline has neither persistent
  /// workers nor queues, so there these only count the fired events.
  Cost worker_kills = 0;
  Cost queue_pressure_events = 0;

  // Overload-control accounting (open-loop frontend only; always 0 for
  // closed-loop replay). A shed request never touched a tree past the
  // point it was dropped, so unshed runs stay bit-identical to the
  // pre-overload-control goldens. shed_requests is the sum of the three
  // shed classes plus cross_shed; requests == served + shed_requests.
  Cost shed_requests = 0;     ///< total requests dropped instead of served
  Cost shed_queue_full = 0;   ///< kShed: dropped at a full main queue
  Cost shed_throttled = 0;    ///< token-bucket admission drops
  Cost deadline_expired = 0;  ///< kDeadline: dead at admission or dequeue
  Cost cross_shed = 0;        ///< cross-shard legs dropped by the circuit
                              ///< breaker or handover-retry exhaustion
  /// Dispatcher pushes that found the target main queue full. Under
  /// kBlock the push then waited (the pre-existing backpressure, now
  /// visible instead of silent); under kShed it was dropped; under
  /// kDeadline it waited like kBlock.
  Cost queue_full_blocks = 0;
  Cost breaker_trips = 0;  ///< per-shard circuit-breaker open transitions

  /// Sojourn-time summary when the result came from the open-loop serving
  /// frontend; latency.measured stays false for closed-loop replay.
  LatencyStats latency;

  // Batch-scheduling accounting (sim/schedule.hpp). `schedule` records the
  // policy the run was served under so bench JSON and CLI rows are
  // self-describing; `reordered_requests` counts requests whose serve
  // position differed from their arrival position (always 0 under FIFO).
  SchedulePolicy schedule = SchedulePolicy::kFifo;
  Cost reordered_requests = 0;

  /// Experimental-section total: unit routing + unit rotation cost.
  Cost total_cost() const { return routing_cost + rotation_count; }
  /// Serving total plus everything spent reshaping and recovering the
  /// fleet: migrations, splits/merges, and crash-recovery replay.
  Cost grand_total_cost() const {
    return total_cost() + migration_cost + lifecycle_cost + recovery_cost;
  }
  /// Section 2 model total: routing + links added/removed.
  Cost model_cost() const { return routing_cost + edge_changes; }
  double avg_request_cost() const {
    return requests == 0
               ? 0.0
               : static_cast<double>(total_cost()) /
                     static_cast<double>(requests);
  }
  double avg_routing_cost() const {
    return requests == 0
               ? 0.0
               : static_cast<double>(routing_cost) /
                     static_cast<double>(requests);
  }
};

namespace detail {

/// Resolves the tree a LocalityScheduler should key against for a given
/// network type: the underlying KAryTree where one exists, or the
/// BinarySplayNet itself (it satisfies the scheduler's scalar lca()/root()
/// fallback). Networks with no single schedulable tree (ShardedNetwork —
/// use run_trace_sharded — and the virtual Network escape hatch) fail
/// kHasScheduleTree and get a runtime error instead.
template <typename Net>
constexpr bool kHasScheduleTree =
    requires(Net& n) { n.tree().root(); } ||
    requires(Net& n) { n.net().tree().root(); } ||
    requires(Net& n) {
      n.lca(NodeId{1}, NodeId{1});
      n.root();
    } ||
    requires(Net& n) {
      n.net().lca(NodeId{1}, NodeId{1});
      n.net().root();
    };

template <typename Net>
decltype(auto) schedule_tree(Net& net) {
  if constexpr (requires { net.tree().root(); })
    return (net.tree());
  else if constexpr (requires { net.net().tree().root(); })
    return (net.net().tree());
  else if constexpr (requires {
                       net.lca(NodeId{1}, NodeId{1});
                       net.root();
                     })
    return (net);
  else
    return (net.net());
}

}  // namespace detail

/// Replays a request stream over `net`, mutating it, pulling one chunk at
/// a time — O(kStreamChunkRequests) memory regardless of the stream
/// length. Monomorphic per network type: works on any object with a
/// `ServeResult serve(NodeId, NodeId)` member (all concrete networks,
/// ShardedNetwork, and the virtual Network escape hatch alike).
///
/// `sched` selects the intra-chunk serve order (sim/schedule.hpp). The
/// default FIFO path is the pre-scheduler loop, untouched; kLocality
/// reorders within windows of each chunk and throws for network types with
/// no schedulable tree (ShardedNetwork — use run_trace_sharded — and the
/// virtual escape hatch).
template <typename Net>
SimResult run_trace_stream(Net& net, RequestStream& stream,
                           const ScheduleConfig& sched = {}) {
  sched.validate();
  SimResult res;
  res.schedule = sched.policy;
  Cost cross_before = 0;
  if constexpr (requires { net.cross_shard_served(); })
    cross_before = net.cross_shard_served();
  std::vector<Request> chunk(kStreamChunkRequests);
  if (!sched.reorders()) {
    while (true) {
      const std::size_t got = stream.fill(chunk);
      if (got == 0) break;
      for (std::size_t i = 0; i < got; ++i) {
        const ServeResult s = net.serve(chunk[i].src, chunk[i].dst);
        res.routing_cost += s.routing_cost;
        res.rotation_count += s.rotations;
        res.edge_changes += s.edge_changes;
      }
      res.requests += got;
    }
  } else if constexpr (detail::kHasScheduleTree<Net>) {
    LocalityScheduler scheduler(sched);
    const auto resolve = [](const Request& r) {
      return ScheduleEndpoints{r.src, r.dst};
    };
    const auto serve_one = [&](const Request& r) {
      const ServeResult s = net.serve(r.src, r.dst);
      res.routing_cost += s.routing_cost;
      res.rotation_count += s.rotations;
      res.edge_changes += s.edge_changes;
    };
    while (true) {
      const std::size_t got = stream.fill(chunk);
      if (got == 0) break;
      scheduler.run(detail::schedule_tree(net),
                    std::span<Request>(chunk.data(), got), resolve, serve_one);
      res.requests += got;
    }
    res.reordered_requests = scheduler.reordered();
  } else {
    throw TreeError(
        "locality schedule is not supported for this network type "
        "(no schedulable tree; sharded runs go through run_trace_sharded)");
  }
  if constexpr (requires { net.cross_shard_served(); })
    res.cross_shard = net.cross_shard_served() - cross_before;
  return res;
}

/// Materialized adapter: identical serve order, hence identical costs —
/// run_trace(net, trace) is run_trace_stream over a TraceStream.
template <typename Net>
SimResult run_trace(Net& net, const Trace& trace,
                    const ScheduleConfig& sched = {}) {
  TraceStream stream(trace);
  return run_trace_stream(net, stream, sched);
}

/// Single visit, then the monomorphic loop above on the held alternative.
SimResult run_trace(AnyNetwork& net, const Trace& trace,
                    const ScheduleConfig& sched = {});
SimResult run_trace_stream(AnyNetwork& net, RequestStream& stream,
                           const ScheduleConfig& sched = {});

/// Static-tree shortcut (used by benches to cost a fixed topology against
/// a long trace). Locality scheduling is supported and provably
/// cost-neutral here — a static tree never rotates, so total cost is
/// order-invariant; the reorder + interleaved path_info_batch walk is a
/// pure throughput play.
SimResult run_trace_static(const KAryTree& tree, const Trace& trace,
                           const ScheduleConfig& sched = {});

/// How run_trace_sharded drains the per-shard queues.
struct ShardedRunOptions {
  int threads = 0;          ///< Executor width for the concurrent drain (0 = auto)
  bool sequential = false;  ///< drain shards in index order on the caller —
                            ///< the bit-identical determinism reference
  /// Non-null + enabled() turns on rebalance epochs: the trace is served
  /// in epoch_requests-sized chunks; after each chunk the drain barrier
  /// doubles as a rebalance point (observe window, evaluate trigger, apply
  /// the planned batch, resume). Null or disabled reproduces the static
  /// pipeline bit for bit.
  const RebalanceConfig* rebalance = nullptr;
  /// Intra-shard serve order within each drained queue (sim/schedule.hpp).
  /// Reordering is per-shard and per-chunk, so the sequential/concurrent
  /// bit-identity guarantee is preserved: shards share nothing and each
  /// shard's scheduled order is deterministic.
  ScheduleConfig schedule{};
  /// Non-null + enabled() injects scripted shard kills (sim/fault.hpp):
  /// the drain splits its chunks at the kill indices, snapshots every
  /// shard (tree_io) at each resume point while kills are pending, and
  /// recovers a killed shard by replica promotion or snapshot restore +
  /// trace-tail replay. Deterministic and mode-independent; under the
  /// FIFO schedule the serve counters bit-match the unfaulted run
  /// (locality windows legitimately re-seat at the crash boundary).
  const FaultPlan* faults = nullptr;
};

/// Batched sharded pipeline: partitions `trace` into per-shard op queues
/// (arrival order preserved) and drains every shard independently —
/// concurrently on the Executor unless `opt.sequential`. Costs are
/// bit-identical across modes and thread counts, and identical to serving
/// the same trace request-by-request through net.serve(). With rebalancing
/// enabled the epoch schedule, every planned batch, and hence every cost
/// are still bit-identical across modes and thread counts: chunks drain
/// deterministically and planning runs at the barrier on the caller.
SimResult run_trace_sharded(ShardedNetwork& net, const Trace& trace,
                            const ShardedRunOptions& opt = {});

/// Streaming sharded pipeline: pulls epoch-aligned chunks from `stream`
/// and feeds the same drain/barrier machinery, so costs are bit-identical
/// to run_trace_sharded over the materialized trace. Memory is O(chunk +
/// shard queues), independent of the stream length. One documented
/// divergence: post_intra_fraction is computed from dispatch-time drain
/// counters (the fraction of requests that were intra-shard when served) —
/// a single-pass stream cannot be re-scanned under the final map, so the
/// Trace& overload above performs that re-scan in its adapter when
/// migrations occurred.
SimResult run_trace_sharded_stream(ShardedNetwork& net, RequestStream& stream,
                                   const ShardedRunOptions& opt = {});

}  // namespace san
