// Trace simulator: replays a communication sequence over a Network and
// accounts costs per the Section 2 model with the Section 5 experimental
// conventions (routing hop = 1, rotation = 1).
#pragma once

#include <cstdint>

#include "sim/network.hpp"
#include "workload/request.hpp"

namespace san {

struct SimResult {
  Cost routing_cost = 0;    ///< sum of pre-adjustment path lengths
  Cost rotation_count = 0;  ///< k-splay / k-semi-splay / splay steps
  Cost edge_changes = 0;    ///< links added + removed (Section 2 adjustment)
  std::size_t requests = 0;

  /// Experimental-section total: unit routing + unit rotation cost.
  Cost total_cost() const { return routing_cost + rotation_count; }
  /// Section 2 model total: routing + links added/removed.
  Cost model_cost() const { return routing_cost + edge_changes; }
  double avg_request_cost() const {
    return requests == 0
               ? 0.0
               : static_cast<double>(total_cost()) /
                     static_cast<double>(requests);
  }
  double avg_routing_cost() const {
    return requests == 0
               ? 0.0
               : static_cast<double>(routing_cost) /
                     static_cast<double>(requests);
  }
};

/// Replays `trace` over `net`, mutating it.
SimResult run_trace(Network& net, const Trace& trace);

/// Static-tree shortcut (no virtual dispatch; used by benches to cost a
/// fixed topology against a long trace).
SimResult run_trace_static(const KAryTree& tree, const Trace& trace);

}  // namespace san
