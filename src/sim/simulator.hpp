// Trace simulator: replays a communication sequence over a network and
// accounts costs per the Section 2 model with the Section 5 experimental
// conventions (routing hop = 1, rotation = 1).
//
// run_trace is a template over the concrete network type, so the serve
// loop is monomorphic (no per-request indirect call); the AnyNetwork
// overload hoists the variant dispatch out of the loop with a single
// visit. run_trace_sharded is the batched pipeline for ShardedNetwork:
// it splits the trace into per-shard queues and drains the shards
// concurrently on the Executor, with a sequential mode that is
// bit-identical by construction (shards share no state, and per-shard op
// order alone determines cost).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/any_network.hpp"
#include "workload/request.hpp"
#include "workload/streaming.hpp"

namespace san {

/// Requests pulled per chunk by the streaming replay loops. Bounds the
/// simulator's working set at O(chunk) regardless of m; chunking is
/// cost-invariant (per-shard op order and every additive counter are
/// unchanged by where the chunk boundaries fall).
inline constexpr std::size_t kStreamChunkRequests = 8192;

/// Tail-latency summary attached to results that were measured under an
/// open-loop arrival process (sim/serve_frontend.hpp). Latency of one
/// request = queue wait + service time, measured from its *intended*
/// arrival timestamp, so a backlogged server cannot hide its stalls
/// (no coordinated omission). Closed-loop replay leaves this unmeasured.
struct LatencyStats {
  bool measured = false;
  double mean_us = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  double max_us = 0.0;
};

struct SimResult {
  Cost routing_cost = 0;    ///< sum of pre-adjustment path lengths
  Cost rotation_count = 0;  ///< k-splay / k-semi-splay / splay steps
  Cost edge_changes = 0;    ///< links added + removed (Section 2 adjustment)
  Cost cross_shard = 0;     ///< requests routed over the top-level tree
                            ///< (always 0 for unsharded networks)
  std::size_t requests = 0;

  // Rebalancing accounting (always 0 unless run_trace_sharded ran with an
  // active RebalanceConfig). Migration cost is kept out of the serve-path
  // counters above so static and adaptive runs stay comparable; use
  // grand_total_cost() for the honest adaptive total.
  Cost rebalance_epochs = 0;    ///< epochs whose trigger fired
  Cost migrations = 0;          ///< nodes moved across shards
  Cost migration_cost = 0;      ///< extraction splays + rebuild relinks
  /// Intra-shard fraction of the whole trace under the *final* map (set by
  /// run_trace_sharded in both static and adaptive modes).
  double post_intra_fraction = 0.0;

  /// Sojourn-time summary when the result came from the open-loop serving
  /// frontend; latency.measured stays false for closed-loop replay.
  LatencyStats latency;

  /// Experimental-section total: unit routing + unit rotation cost.
  Cost total_cost() const { return routing_cost + rotation_count; }
  /// Serving total plus what the rebalancer spent moving nodes.
  Cost grand_total_cost() const { return total_cost() + migration_cost; }
  /// Section 2 model total: routing + links added/removed.
  Cost model_cost() const { return routing_cost + edge_changes; }
  double avg_request_cost() const {
    return requests == 0
               ? 0.0
               : static_cast<double>(total_cost()) /
                     static_cast<double>(requests);
  }
  double avg_routing_cost() const {
    return requests == 0
               ? 0.0
               : static_cast<double>(routing_cost) /
                     static_cast<double>(requests);
  }
};

/// Replays a request stream over `net`, mutating it, pulling one chunk at
/// a time — O(kStreamChunkRequests) memory regardless of the stream
/// length. Monomorphic per network type: works on any object with a
/// `ServeResult serve(NodeId, NodeId)` member (all concrete networks,
/// ShardedNetwork, and the virtual Network escape hatch alike).
template <typename Net>
SimResult run_trace_stream(Net& net, RequestStream& stream) {
  SimResult res;
  Cost cross_before = 0;
  if constexpr (requires { net.cross_shard_served(); })
    cross_before = net.cross_shard_served();
  std::vector<Request> chunk(kStreamChunkRequests);
  while (true) {
    const std::size_t got = stream.fill(chunk);
    if (got == 0) break;
    for (std::size_t i = 0; i < got; ++i) {
      const ServeResult s = net.serve(chunk[i].src, chunk[i].dst);
      res.routing_cost += s.routing_cost;
      res.rotation_count += s.rotations;
      res.edge_changes += s.edge_changes;
    }
    res.requests += got;
  }
  if constexpr (requires { net.cross_shard_served(); })
    res.cross_shard = net.cross_shard_served() - cross_before;
  return res;
}

/// Materialized adapter: identical serve order, hence identical costs —
/// run_trace(net, trace) is run_trace_stream over a TraceStream.
template <typename Net>
SimResult run_trace(Net& net, const Trace& trace) {
  TraceStream stream(trace);
  return run_trace_stream(net, stream);
}

/// Single visit, then the monomorphic loop above on the held alternative.
SimResult run_trace(AnyNetwork& net, const Trace& trace);
SimResult run_trace_stream(AnyNetwork& net, RequestStream& stream);

/// Static-tree shortcut (used by benches to cost a fixed topology against
/// a long trace).
SimResult run_trace_static(const KAryTree& tree, const Trace& trace);

/// How run_trace_sharded drains the per-shard queues.
struct ShardedRunOptions {
  int threads = 0;          ///< Executor width for the concurrent drain (0 = auto)
  bool sequential = false;  ///< drain shards in index order on the caller —
                            ///< the bit-identical determinism reference
  /// Non-null + enabled() turns on rebalance epochs: the trace is served
  /// in epoch_requests-sized chunks; after each chunk the drain barrier
  /// doubles as a rebalance point (observe window, evaluate trigger, apply
  /// the planned batch, resume). Null or disabled reproduces the static
  /// pipeline bit for bit.
  const RebalanceConfig* rebalance = nullptr;
};

/// Batched sharded pipeline: partitions `trace` into per-shard op queues
/// (arrival order preserved) and drains every shard independently —
/// concurrently on the Executor unless `opt.sequential`. Costs are
/// bit-identical across modes and thread counts, and identical to serving
/// the same trace request-by-request through net.serve(). With rebalancing
/// enabled the epoch schedule, every planned batch, and hence every cost
/// are still bit-identical across modes and thread counts: chunks drain
/// deterministically and planning runs at the barrier on the caller.
SimResult run_trace_sharded(ShardedNetwork& net, const Trace& trace,
                            const ShardedRunOptions& opt = {});

/// Streaming sharded pipeline: pulls epoch-aligned chunks from `stream`
/// and feeds the same drain/barrier machinery, so costs are bit-identical
/// to run_trace_sharded over the materialized trace. Memory is O(chunk +
/// shard queues), independent of the stream length. One documented
/// divergence: post_intra_fraction is computed from dispatch-time drain
/// counters (the fraction of requests that were intra-shard when served) —
/// a single-pass stream cannot be re-scanned under the final map, so the
/// Trace& overload above performs that re-scan in its adapter when
/// migrations occurred.
SimResult run_trace_sharded_stream(ShardedNetwork& net, RequestStream& stream,
                                   const ShardedRunOptions& opt = {});

}  // namespace san
