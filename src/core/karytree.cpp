#include "core/karytree.hpp"

#include <algorithm>
#include <sstream>

namespace san {

KAryTree::KAryTree(int k, int n) : k_(k), n_(n) {
  if (k < 2) throw TreeError("arity must be >= 2");
  if (n < 1) throw TreeError("tree needs at least one node");
  const size_t slots = static_cast<size_t>(n) + 1;
  parent_.assign(slots, kNoNode);
  slot_in_parent_.assign(slots, -1);
  lo_.assign(slots, kKeyMin);
  hi_.assign(slots, kKeyMax);
  nkeys_.assign(slots, 0);  // zero keys -> one (empty) interval
  keys_.assign(static_cast<size_t>(n) * static_cast<size_t>(k - 1), 0);
  children_.assign(static_cast<size_t>(n) * static_cast<size_t>(k), kNoNode);
  depth_.assign(slots, 0);
  depth_epoch_.assign(slots, 0);  // epoch_ starts at 1: everything stale
  depth_scratch_.reserve(slots);
  route_scratch_.reserve(slots);
}

int KAryTree::depth(NodeId id) const {
  check(id);
  sync_epoch();
  if (depth_epoch_[static_cast<size_t>(id)] == epoch_)
    return depth_[static_cast<size_t>(id)];
  // Walk up to the nearest fresh ancestor (or the root), then stamp true
  // depths down the walked path so the next read is O(1).
  std::vector<NodeId>& path = depth_scratch_;
  path.clear();
  NodeId cur = id;
  int base = -1;  // depth of the node above path.back(); -1 = none (root)
  while (true) {
    if (depth_epoch_[static_cast<size_t>(cur)] == epoch_) {
      base = depth_[static_cast<size_t>(cur)];
      break;
    }
    path.push_back(cur);
    if (static_cast<int>(path.size()) > n_)
      throw TreeError("parent cycle detected in depth()");
    const NodeId up = parent_[static_cast<size_t>(cur)];
    if (up == kNoNode) break;  // cur is a root: gets depth 0 below
    cur = up;
  }
  int d = base;  // path.back() gets d+1 (base == -1 makes a root 0)
  for (auto it = path.rbegin(); it != path.rend(); ++it) {
    ++d;
    depth_[static_cast<size_t>(*it)] = d;
    depth_epoch_[static_cast<size_t>(*it)] = epoch_;
  }
  return depth_[static_cast<size_t>(id)];
}

NodeId KAryTree::lca(NodeId u, NodeId v) const {
  int du = depth(u);
  int dv = depth(v);
  NodeId a = u;
  NodeId b = v;
  while (du > dv) {
    a = parent_[static_cast<size_t>(a)];
    --du;
  }
  while (dv > du) {
    b = parent_[static_cast<size_t>(b)];
    --dv;
  }
  while (a != b) {
    a = parent_[static_cast<size_t>(a)];
    b = parent_[static_cast<size_t>(b)];
    if (a == kNoNode || b == kNoNode)
      throw TreeError("nodes are in disconnected components");
  }
  return a;
}

int KAryTree::distance(NodeId u, NodeId v) const {
  return path_info(u, v).distance;
}

PathInfo KAryTree::path_info(NodeId u, NodeId v) const {
  int du = depth(u);
  int dv = depth(v);
  NodeId a = u;
  NodeId b = v;
  int d = 0;
  while (du > dv) {
    a = parent_[static_cast<size_t>(a)];
    --du;
    ++d;
  }
  while (dv > du) {
    b = parent_[static_cast<size_t>(b)];
    --dv;
    ++d;
  }
  while (a != b) {
    a = parent_[static_cast<size_t>(a)];
    b = parent_[static_cast<size_t>(b)];
    d += 2;
    if (a == kNoNode || b == kNoNode)
      throw TreeError("nodes are in disconnected components");
  }
  return PathInfo{a, d};
}

void KAryTree::path_info_batch(std::span<const NodeId> us,
                               std::span<const NodeId> vs,
                               std::span<PathInfo> out, int group) const {
  if (us.size() != vs.size() || us.size() != out.size())
    throw TreeError("path_info_batch: span sizes must match");
  if (group < 1) throw TreeError("path_info_batch: group must be >= 1");
  // One in-flight walk: the exact state machine of scalar path_info(),
  // advanced one hop per round.
  struct Walk {
    NodeId a, b;
    int da, db, d;
    size_t slot;  // index into out
  };
  constexpr size_t kMaxGroup = 64;
  Walk walks[kMaxGroup];
  const size_t g = std::min<size_t>(static_cast<size_t>(group), kMaxGroup);
  for (size_t base = 0; base < us.size(); base += g) {
    const size_t lanes = std::min(g, us.size() - base);
    // Depth reads first (memo repair may walk and stamp paths); prefetch
    // each lane's endpoints ahead of its depth() call.
    for (size_t i = 0; i < lanes; ++i) {
      prefetch_read(&parent_[static_cast<size_t>(check(us[base + i]))]);
      prefetch_read(&parent_[static_cast<size_t>(check(vs[base + i]))]);
    }
    size_t live = 0;
    for (size_t i = 0; i < lanes; ++i) {
      Walk w{us[base + i], vs[base + i], depth(us[base + i]),
             depth(vs[base + i]), 0, base + i};
      walks[live++] = w;
    }
    while (live > 0) {
      size_t keep = 0;
      for (size_t i = 0; i < live; ++i) {
        Walk w = walks[i];
        if (w.da > w.db) {
          w.a = parent_[static_cast<size_t>(w.a)];
          --w.da;
          ++w.d;
        } else if (w.db > w.da) {
          w.b = parent_[static_cast<size_t>(w.b)];
          --w.db;
          ++w.d;
        } else if (w.a != w.b) {
          w.a = parent_[static_cast<size_t>(w.a)];
          w.b = parent_[static_cast<size_t>(w.b)];
          w.d += 2;
          if (w.a == kNoNode || w.b == kNoNode)
            throw TreeError("nodes are in disconnected components");
        } else {
          out[w.slot] = PathInfo{w.a, w.d};
          continue;  // lane retired
        }
        prefetch_read(&parent_[static_cast<size_t>(w.a)]);
        prefetch_read(&parent_[static_cast<size_t>(w.b)]);
        walks[keep++] = w;
      }
      live = keep;
    }
  }
}

int KAryTree::warm_root_paths(std::span<const NodeId> ids) const {
  constexpr size_t kMaxLanes = 64;
  NodeId cur[kMaxLanes];
  int hops = 0;
  for (size_t base = 0; base < ids.size(); base += kMaxLanes) {
    const size_t lanes = std::min(kMaxLanes, ids.size() - base);
    size_t live = 0;
    for (size_t i = 0; i < lanes; ++i) {
      const NodeId id = check(ids[base + i]);
      prefetch_read(&parent_[static_cast<size_t>(id)]);
      prefetch_read(keys_.data() + key_base(id));
      prefetch_read(children_.data() + child_base(id));
      cur[live++] = id;
    }
    int rounds = 0;
    while (live > 0) {
      if (++rounds > n_) throw TreeError("parent cycle in warm_root_paths()");
      size_t keep = 0;
      for (size_t i = 0; i < live; ++i) {
        const NodeId up = parent_[static_cast<size_t>(cur[i])];
        if (up == kNoNode) continue;  // reached a root: lane retires
        ++hops;
        prefetch_read(&parent_[static_cast<size_t>(up)]);
        prefetch_read(keys_.data() + key_base(up));
        prefetch_read(children_.data() + child_base(up));
        cur[keep++] = up;
      }
      live = keep;
    }
  }
  return hops;
}

int KAryTree::route_into(NodeId u, NodeId v, std::vector<NodeId>& out) const {
  int du = depth(u);
  int dv = depth(v);
  out.clear();
  std::vector<NodeId>& down = route_scratch_;
  down.clear();
  NodeId a = u;
  NodeId b = v;
  while (du > dv) {
    out.push_back(a);
    a = parent_[static_cast<size_t>(a)];
    --du;
  }
  while (dv > du) {
    down.push_back(b);
    b = parent_[static_cast<size_t>(b)];
    --dv;
  }
  while (a != b) {
    out.push_back(a);
    down.push_back(b);
    a = parent_[static_cast<size_t>(a)];
    b = parent_[static_cast<size_t>(b)];
    if (a == kNoNode || b == kNoNode)
      throw TreeError("nodes are in disconnected components");
  }
  out.push_back(a);  // the LCA
  out.insert(out.end(), down.rbegin(), down.rend());
  return static_cast<int>(out.size()) - 1;
}

std::vector<NodeId> KAryTree::route(NodeId u, NodeId v) const {
  std::vector<NodeId> out;
  route_into(u, v, out);
  return out;
}

bool KAryTree::is_ancestor(NodeId anc, NodeId id) const {
  check(anc);
  const int da = depth(anc);
  int d = depth(id);
  NodeId cur = id;
  while (d > da) {
    cur = parent_[static_cast<size_t>(cur)];
    --d;
  }
  return cur == anc;
}

int KAryTree::interval_of(NodeId id, RoutingKey key) const {
  const std::span<const RoutingKey> ks = keys(id);
  return static_cast<int>(std::upper_bound(ks.begin(), ks.end(), key) -
                          ks.begin());
}

int KAryTree::search_from_root_into(NodeId target,
                                    std::vector<NodeId>& out) const {
  check(target);
  out.clear();
  NodeId cur = root_;
  while (true) {
    if (cur == kNoNode) throw TreeError("search fell off the tree");
    out.push_back(cur);
    if (cur == target) return static_cast<int>(out.size()) - 1;
    if (out.size() > static_cast<size_t>(n_))
      throw TreeError("search path longer than tree size");
    cur = child(cur, interval_of(cur, id_key(target)));
  }
}

std::vector<NodeId> KAryTree::search_from_root(NodeId target) const {
  std::vector<NodeId> path;
  search_from_root_into(target, path);
  return path;
}

Cost KAryTree::uniform_total_distance() const {
  // Sum of subtree-size * (n - subtree-size) over all edges equals the sum
  // of pairwise distances over ordered pairs divided by 2; we return the
  // ordered-pair total to match TotalDistance(D_uniform, T) with D the
  // upper-triangular all-ones matrix: each unordered pair counted once.
  std::vector<int> sz(static_cast<size_t>(n_) + 1, 1);
  // children-before-parent order via iterative post-order on ids reachable
  // from the root.
  std::vector<NodeId> order;
  order.reserve(static_cast<size_t>(n_));
  std::vector<NodeId> stack = {root_};
  while (!stack.empty()) {
    NodeId cur = stack.back();
    stack.pop_back();
    order.push_back(cur);
    for (NodeId c : children(cur))
      if (c != kNoNode) stack.push_back(c);
  }
  Cost total = 0;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    NodeId cur = *it;
    const NodeId par = parent_[static_cast<size_t>(cur)];
    if (par != kNoNode) {
      sz[static_cast<size_t>(par)] += sz[static_cast<size_t>(cur)];
      total += static_cast<Cost>(sz[static_cast<size_t>(cur)]) *
               (n_ - sz[static_cast<size_t>(cur)]);
    }
  }
  return total;
}

void KAryTree::set_root(NodeId id) {
  check(id);
  root_ = id;
  parent_[static_cast<size_t>(id)] = kNoNode;
  slot_in_parent_[static_cast<size_t>(id)] = -1;
  lo_[static_cast<size_t>(id)] = kKeyMin;
  hi_[static_cast<size_t>(id)] = kKeyMax;
  dirty_ = true;
}

void KAryTree::install(NodeId id, std::span<const RoutingKey> keys,
                       std::span<const NodeId> children, RoutingKey lo,
                       RoutingKey hi) {
  check(id);
  if (children.size() != keys.size() + 1)
    throw TreeError("install: children.size() must be keys.size()+1");
  if (static_cast<int>(keys.size()) > k_ - 1)
    throw TreeError("install: too many routing keys for arity");
  nkeys_[static_cast<size_t>(id)] = static_cast<std::int32_t>(keys.size());
  std::copy(keys.begin(), keys.end(), keys_.begin() + static_cast<std::ptrdiff_t>(key_base(id)));
  std::copy(children.begin(), children.end(),
            children_.begin() + static_cast<std::ptrdiff_t>(child_base(id)));
  lo_[static_cast<size_t>(id)] = lo;
  hi_[static_cast<size_t>(id)] = hi;
  for (int s = 0; s < static_cast<int>(children.size()); ++s) {
    const NodeId c = children[static_cast<size_t>(s)];
    if (c == kNoNode) continue;
    parent_[static_cast<size_t>(c)] = id;
    slot_in_parent_[static_cast<size_t>(c)] = s;
  }
  dirty_ = true;
}

void KAryTree::link(NodeId parent, int slot, NodeId child) {
  check(child);
  if (parent == kNoNode) {
    set_root(child);
    return;
  }
  check(parent);
  if (slot < 0 || slot > nkeys_[static_cast<size_t>(parent)])
    throw TreeError("link: slot out of range");
  children_[child_base(parent) + static_cast<size_t>(slot)] = child;
  parent_[static_cast<size_t>(child)] = parent;
  slot_in_parent_[static_cast<size_t>(child)] = slot;
  dirty_ = true;
}

std::optional<std::string> KAryTree::validate() const {
  std::ostringstream err;
  if (root_ == kNoNode) return "no root set";
  if (parent_[static_cast<size_t>(root_)] != kNoNode)
    return "root has a parent";
  sync_epoch();  // pending mutations invalidate every depth memo below

  // DFS with explicit [lo, hi) ranges and true depths; checks structure,
  // search property, and the depth cache.
  struct Frame {
    NodeId id;
    RoutingKey lo, hi;
    int depth;
  };
  std::vector<bool> seen(static_cast<size_t>(n_) + 1, false);
  std::vector<Frame> stack = {{root_, kKeyMin, kKeyMax, 0}};
  int visited = 0;
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    const TreeNode nd = node(f.id);
    if (seen[static_cast<size_t>(f.id)]) {
      err << "node " << f.id << " reached twice (not a tree)";
      return err.str();
    }
    seen[static_cast<size_t>(f.id)] = true;
    ++visited;
    // Open-interval semantics: the id value must lie strictly inside the
    // node's range (boundary values belong to neither side).
    if (id_key(f.id) <= f.lo || id_key(f.id) >= f.hi) {
      err << "node " << f.id << " violates its range [" << f.lo << ", " << f.hi
          << ")";
      return err.str();
    }
    if (nd.lo != f.lo || nd.hi != f.hi) {
      err << "node " << f.id << " has stale cached range";
      return err.str();
    }
    if (depth_epoch_[static_cast<size_t>(f.id)] == epoch_ &&
        depth_[static_cast<size_t>(f.id)] != f.depth) {
      err << "node " << f.id << " has a stale depth memo ("
          << depth_[static_cast<size_t>(f.id)] << ", true depth " << f.depth
          << ")";
      return err.str();
    }
    if (static_cast<int>(nd.keys.size()) > k_ - 1) {
      err << "node " << f.id << " has " << nd.keys.size()
          << " routing keys, max is " << (k_ - 1);
      return err.str();
    }
    if (nd.children.size() != nd.keys.size() + 1) {
      err << "node " << f.id << " children/keys size mismatch";
      return err.str();
    }
    for (size_t i = 0; i + 1 < nd.keys.size(); ++i) {
      if (nd.keys[i] >= nd.keys[i + 1]) {
        err << "node " << f.id << " routing keys not strictly increasing";
        return err.str();
      }
    }
    for (const RoutingKey rk : nd.keys) {
      if (rk <= f.lo || rk >= f.hi) {
        // A key equal to lo would create an empty leading interval that can
        // never receive a subtree root id; keys outside the range are
        // always rotation-engine bugs, so reject both.
        if (!(rk > f.lo && rk < f.hi)) {
          err << "node " << f.id << " routing key " << rk
              << " outside open range (" << f.lo << ", " << f.hi << ")";
          return err.str();
        }
      }
    }
    for (int s = 0; s < static_cast<int>(nd.children.size()); ++s) {
      NodeId c = nd.children[static_cast<size_t>(s)];
      if (c == kNoNode) continue;
      if (parent_[static_cast<size_t>(c)] != f.id ||
          slot_in_parent_[static_cast<size_t>(c)] != s) {
        err << "child " << c << " of node " << f.id << " has bad back-link";
        return err.str();
      }
      RoutingKey clo = (s == 0) ? f.lo : nd.keys[static_cast<size_t>(s - 1)];
      RoutingKey chi = (s == static_cast<int>(nd.keys.size()))
                           ? f.hi
                           : nd.keys[static_cast<size_t>(s)];
      stack.push_back({c, clo, chi, f.depth + 1});
    }
  }
  if (visited != n_) {
    err << "only " << visited << " of " << n_ << " nodes reachable from root";
    return err.str();
  }
  return std::nullopt;
}

}  // namespace san
