#include "core/karytree.hpp"

#include <algorithm>
#include <sstream>

namespace san {

KAryTree::KAryTree(int k, int n) : k_(k), n_(n) {
  if (k < 2) throw TreeError("arity must be >= 2");
  if (n < 1) throw TreeError("tree needs at least one node");
  nodes_.resize(static_cast<size_t>(n) + 1);
  for (NodeId id = 1; id <= n; ++id) {
    nodes_[id].id = id;
    nodes_[id].children = {kNoNode};  // zero keys -> one (empty) interval
  }
}

int KAryTree::depth(NodeId id) const {
  int d = 0;
  for (NodeId cur = check(id); nodes_[cur].parent != kNoNode;
       cur = nodes_[cur].parent) {
    ++d;
    if (d > n_) throw TreeError("parent cycle detected in depth()");
  }
  return d;
}

NodeId KAryTree::lca(NodeId u, NodeId v) const {
  int du = depth(u);
  int dv = depth(v);
  NodeId a = u;
  NodeId b = v;
  while (du > dv) {
    a = nodes_[a].parent;
    --du;
  }
  while (dv > du) {
    b = nodes_[b].parent;
    --dv;
  }
  while (a != b) {
    a = nodes_[a].parent;
    b = nodes_[b].parent;
    if (a == kNoNode || b == kNoNode)
      throw TreeError("nodes are in disconnected components");
  }
  return a;
}

int KAryTree::distance(NodeId u, NodeId v) const {
  NodeId w = lca(u, v);
  return depth(u) + depth(v) - 2 * depth(w);
}

std::vector<NodeId> KAryTree::route(NodeId u, NodeId v) const {
  NodeId w = lca(u, v);
  std::vector<NodeId> up;
  for (NodeId cur = u; cur != w; cur = nodes_[cur].parent) up.push_back(cur);
  up.push_back(w);
  std::vector<NodeId> down;
  for (NodeId cur = v; cur != w; cur = nodes_[cur].parent) down.push_back(cur);
  up.insert(up.end(), down.rbegin(), down.rend());
  return up;
}

bool KAryTree::is_ancestor(NodeId anc, NodeId id) const {
  for (NodeId cur = check(id); cur != kNoNode; cur = nodes_[cur].parent)
    if (cur == anc) return true;
  return false;
}

int KAryTree::interval_of(NodeId id, RoutingKey key) const {
  const auto& ks = nodes_[check(id)].keys;
  return static_cast<int>(std::upper_bound(ks.begin(), ks.end(), key) -
                          ks.begin());
}

std::vector<NodeId> KAryTree::search_from_root(NodeId target) const {
  check(target);
  std::vector<NodeId> path;
  NodeId cur = root_;
  while (true) {
    if (cur == kNoNode) throw TreeError("search fell off the tree");
    path.push_back(cur);
    if (cur == target) return path;
    if (path.size() > static_cast<size_t>(n_))
      throw TreeError("search path longer than tree size");
    const TreeNode& nd = nodes_[cur];
    cur = nd.children[interval_of(cur, id_key(target))];
  }
}

Cost KAryTree::uniform_total_distance() const {
  // Sum of subtree-size * (n - subtree-size) over all edges equals the sum
  // of pairwise distances over ordered pairs divided by 2; we return the
  // ordered-pair total to match TotalDistance(D_uniform, T) with D the
  // upper-triangular all-ones matrix: each unordered pair counted once.
  std::vector<int> sz(static_cast<size_t>(n_) + 1, 1);
  // children-before-parent order via iterative post-order on ids reachable
  // from the root.
  std::vector<NodeId> order;
  order.reserve(n_);
  std::vector<NodeId> stack = {root_};
  while (!stack.empty()) {
    NodeId cur = stack.back();
    stack.pop_back();
    order.push_back(cur);
    for (NodeId c : nodes_[cur].children)
      if (c != kNoNode) stack.push_back(c);
  }
  Cost total = 0;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    NodeId cur = *it;
    if (nodes_[cur].parent != kNoNode) {
      sz[nodes_[cur].parent] += sz[cur];
      total += static_cast<Cost>(sz[cur]) * (n_ - sz[cur]);
    }
  }
  return total;
}

void KAryTree::set_root(NodeId id) {
  check(id);
  root_ = id;
  nodes_[id].parent = kNoNode;
  nodes_[id].slot_in_parent = -1;
  nodes_[id].lo = kKeyMin;
  nodes_[id].hi = kKeyMax;
}

void KAryTree::install(NodeId id, std::vector<RoutingKey> keys,
                       std::vector<NodeId> children, RoutingKey lo,
                       RoutingKey hi) {
  check(id);
  if (children.size() != keys.size() + 1)
    throw TreeError("install: children.size() must be keys.size()+1");
  if (static_cast<int>(keys.size()) > k_ - 1)
    throw TreeError("install: too many routing keys for arity");
  TreeNode& nd = nodes_[id];
  nd.keys = std::move(keys);
  nd.children = std::move(children);
  nd.lo = lo;
  nd.hi = hi;
  for (int s = 0; s < static_cast<int>(nd.children.size()); ++s) {
    NodeId c = nd.children[s];
    if (c == kNoNode) continue;
    nodes_[c].parent = id;
    nodes_[c].slot_in_parent = s;
  }
}

void KAryTree::link(NodeId parent, int slot, NodeId child) {
  check(child);
  if (parent == kNoNode) {
    set_root(child);
    return;
  }
  check(parent);
  TreeNode& p = nodes_[parent];
  if (slot < 0 || slot >= static_cast<int>(p.children.size()))
    throw TreeError("link: slot out of range");
  p.children[slot] = child;
  nodes_[child].parent = parent;
  nodes_[child].slot_in_parent = slot;
}

std::optional<std::string> KAryTree::validate() const {
  std::ostringstream err;
  if (root_ == kNoNode) return "no root set";
  if (nodes_[root_].parent != kNoNode) return "root has a parent";

  // DFS with explicit [lo, hi) ranges; checks structure and search property.
  struct Frame {
    NodeId id;
    RoutingKey lo, hi;
  };
  std::vector<bool> seen(static_cast<size_t>(n_) + 1, false);
  std::vector<Frame> stack = {{root_, kKeyMin, kKeyMax}};
  int visited = 0;
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    const TreeNode& nd = nodes_[f.id];
    if (seen[f.id]) {
      err << "node " << f.id << " reached twice (not a tree)";
      return err.str();
    }
    seen[f.id] = true;
    ++visited;
    // Open-interval semantics: the id value must lie strictly inside the
    // node's range (boundary values belong to neither side).
    if (id_key(f.id) <= f.lo || id_key(f.id) >= f.hi) {
      err << "node " << f.id << " violates its range [" << f.lo << ", " << f.hi
          << ")";
      return err.str();
    }
    if (nd.lo != f.lo || nd.hi != f.hi) {
      err << "node " << f.id << " has stale cached range";
      return err.str();
    }
    if (static_cast<int>(nd.keys.size()) > k_ - 1) {
      err << "node " << f.id << " has " << nd.keys.size()
          << " routing keys, max is " << (k_ - 1);
      return err.str();
    }
    if (nd.children.size() != nd.keys.size() + 1) {
      err << "node " << f.id << " children/keys size mismatch";
      return err.str();
    }
    for (size_t i = 0; i + 1 < nd.keys.size(); ++i) {
      if (nd.keys[i] >= nd.keys[i + 1]) {
        err << "node " << f.id << " routing keys not strictly increasing";
        return err.str();
      }
    }
    for (const RoutingKey rk : nd.keys) {
      if (rk <= f.lo || rk >= f.hi) {
        // A key equal to lo would create an empty leading interval that can
        // never receive a subtree root id; keys outside the range are
        // always rotation-engine bugs, so reject both.
        if (!(rk > f.lo && rk < f.hi)) {
          err << "node " << f.id << " routing key " << rk
              << " outside open range (" << f.lo << ", " << f.hi << ")";
          return err.str();
        }
      }
    }
    for (int s = 0; s < static_cast<int>(nd.children.size()); ++s) {
      NodeId c = nd.children[s];
      if (c == kNoNode) continue;
      if (nodes_[c].parent != f.id || nodes_[c].slot_in_parent != s) {
        err << "child " << c << " of node " << f.id << " has bad back-link";
        return err.str();
      }
      RoutingKey clo = (s == 0) ? f.lo : nd.keys[s - 1];
      RoutingKey chi =
          (s == static_cast<int>(nd.keys.size())) ? f.hi : nd.keys[s];
      stack.push_back({c, clo, chi});
    }
  }
  if (visited != n_) {
    err << "only " << visited << " of " << n_ << " nodes reachable from root";
    return err.str();
  }
  return std::nullopt;
}

}  // namespace san
