#include "core/shape.hpp"

#include <algorithm>

namespace san {

int Shape::recompute_sizes() {
  size = 1;
  for (Shape& kid : kids) size += kid.recompute_sizes();
  self_pos = std::clamp(self_pos, 0, static_cast<int>(kids.size()));
  return size;
}

NodeId install_shape(KAryTree& tree, const Shape& shape, NodeId first,
                     RoutingKey lo, RoutingKey hi) {
  const int c = static_cast<int>(shape.kids.size());
  if (c > tree.arity())
    throw TreeError("shape node has more children than the arity allows");
  const bool edge_self = shape.self_pos == 0 || shape.self_pos == c;
  // Every node keeps its own id key (see types.hpp); an interior self
  // position reuses it as the boundary between two children, an edge
  // position spends an extra key slot on it.
  if (c > 0 && edge_self && c + 1 > tree.arity())
    throw TreeError(
        "shape node with full fan-out must place its id between children");

  // Lay out identifiers: children before self_pos, then the node id, then
  // the remaining children.
  NodeId cursor = first;
  std::vector<NodeId> kid_first(c);
  NodeId my_id = kNoNode;
  for (int i = 0; i <= c; ++i) {
    if (i == shape.self_pos) my_id = cursor++;
    if (i < c) {
      kid_first[i] = cursor;
      cursor += shape.kids[i].size;
    }
  }

  // Plan the saturated routing array: one interval per child, an empty
  // interval adjacent to the id key when the id sits at the edge, and
  // synthetic separator pads right above the id key until the node holds
  // exactly arity-1 elements (saturation invariant, see types.hpp).
  // Boundaries between two children are mid-gap separators, except at
  // self_pos where the id key itself is the boundary.
  std::vector<RoutingKey> keys;
  std::vector<int> slot_kid;  // child index per interval, -1 = empty
  if (c == 0) {
    keys.push_back(id_key(my_id));
    slot_kid.assign(2, -1);
  } else {
    if (shape.self_pos == 0) {
      keys.push_back(id_key(my_id));
      slot_kid.push_back(-1);
    }
    for (int i = 0; i < c; ++i) {
      if (i > 0)
        keys.push_back(shape.self_pos == i ? id_key(my_id)
                                           : separator_before(kid_first[i]));
      slot_kid.push_back(i);
    }
    if (shape.self_pos == c) {
      keys.push_back(id_key(my_id));
      slot_kid.push_back(-1);
    }
  }

  // Pads go immediately above the id key: values id_key + 1, +2, ... are
  // all below the next real boundary (>= id_key + kKeySpacing/2) and below
  // any descendant id (>= id_key + kKeySpacing), so each pad splits off an
  // empty interval. Inserting descending values at a fixed position keeps
  // the array sorted.
  const int want = tree.arity() - 1;
  const long pad_count = want - static_cast<long>(keys.size());
  if (pad_count >= kKeySpacing / 2 - 1)
    throw TreeError("arity too large for the key spacing");
  const auto id_pos = static_cast<size_t>(
      std::lower_bound(keys.begin(), keys.end(), id_key(my_id)) -
      keys.begin());
  for (long p = pad_count; p >= 1; --p) {
    keys.insert(keys.begin() + id_pos + 1, id_key(my_id) + p);
    slot_kid.insert(slot_kid.begin() + id_pos + 1, -1);
  }

  // Recurse with each child's final [lo, hi) bounds.
  std::vector<NodeId> children(slot_kid.size(), kNoNode);
  for (size_t s = 0; s < slot_kid.size(); ++s) {
    if (slot_kid[s] < 0) continue;
    const RoutingKey clo = (s == 0) ? lo : keys[s - 1];
    const RoutingKey chi = (s == keys.size()) ? hi : keys[s];
    children[s] =
        install_shape(tree, shape.kids[slot_kid[s]], kid_first[slot_kid[s]],
                      clo, chi);
  }
  tree.install(my_id, std::move(keys), std::move(children), lo, hi);
  return my_id;
}

KAryTree build_from_shape(int k, const Shape& shape) {
  KAryTree tree(k, shape.size);
  NodeId root = install_shape(tree, shape, 1, kKeyMin, kKeyMax);
  tree.set_root(root);
  return tree;
}

Shape make_complete_shape(int n, int k) {
  Shape s;
  s.size = n;
  if (n <= 1) return s;
  // Capacity of a full k-ary subtree of height h is (k^{h+1}-1)/(k-1).
  // Find the height of this tree and hand out last-level slots left-first.
  std::int64_t full_below = 1;  // capacity of a full child subtree
  while (full_below * k + 1 < n) full_below = full_below * k + 1;
  // `full_below` is now the largest full-subtree size with k*full_below+1>=n.
  std::int64_t interior = (full_below - 1) / k;  // full size one level lower
  std::int64_t remaining = n - 1;
  std::int64_t last_level = remaining - static_cast<std::int64_t>(k) * interior;
  for (int i = 0; i < k && remaining > 0; ++i) {
    std::int64_t leaves_here =
        std::min<std::int64_t>(last_level, full_below - interior);
    std::int64_t child_n = std::min(remaining, interior + leaves_here);
    last_level -= leaves_here;
    remaining -= child_n;
    if (child_n > 0) s.kids.push_back(make_complete_shape(
        static_cast<int>(child_n), k));
  }
  s.self_pos = static_cast<int>(s.kids.size()) / 2;
  return s;
}

Shape make_path_shape(int n) {
  Shape s;
  s.size = n;
  if (n > 1) {
    s.kids.push_back(make_path_shape(n - 1));
    s.self_pos = 1;
  }
  return s;
}

Shape make_random_shape(int n, int k, std::mt19937_64& rng) {
  Shape s;
  s.size = n;
  if (n <= 1) return s;
  int remaining = n - 1;
  int max_kids = std::min(k, remaining);
  std::uniform_int_distribution<int> kid_count_dist(1, max_kids);
  int c = kid_count_dist(rng);
  // Random composition of `remaining` into c positive parts.
  std::vector<int> parts(c, 1);
  for (int extra = remaining - c; extra > 0; --extra)
    parts[std::uniform_int_distribution<int>(0, c - 1)(rng)]++;
  for (int part : parts) s.kids.push_back(make_random_shape(part, k, rng));
  // A node with full fan-out must place its id between two children (the id
  // key doubles as the boundary); otherwise any position is allowed.
  const int kid_count = static_cast<int>(s.kids.size());
  if (kid_count == k)
    s.self_pos = std::uniform_int_distribution<int>(1, kid_count - 1)(rng);
  else
    s.self_pos = std::uniform_int_distribution<int>(0, kid_count)(rng);
  return s;
}

}  // namespace san
