// Hop-by-hop local routing over a k-ary search tree network.
//
// The main practical argument for search-tree SANs (Section 2): a node can
// forward a packet using only its own state — its cached subtree range
// [lo, hi) and its routing keys — with no routing tables to update after a
// reconfiguration. This module simulates exactly that local decision
// procedure; tests assert that the resulting path equals the global
// LCA-based route for all pairs, before and after arbitrary rotations.
#pragma once

#include <vector>

#include "core/karytree.hpp"
#include "core/types.hpp"

namespace san {

/// One forwarding decision made by `from` for a packet addressed to
/// `target`, using only node-local state.
enum class HopKind { kDeliverLocal, kToChild, kToParent };

struct Hop {
  NodeId at;
  HopKind kind;
  NodeId next;  ///< kNoNode for kDeliverLocal
};

/// Simulates local greedy forwarding from `src` to `dst`. Throws TreeError
/// if a node makes an impossible decision (broken search property) or the
/// hop count exceeds n.
std::vector<Hop> local_route(const KAryTree& tree, NodeId src, NodeId dst);

/// Buffer-reusing variant: replaces `out` with the hop sequence and returns
/// the number of edges traversed. No allocation once `out`'s capacity
/// covers the path — the form the simulator uses on its per-request loop.
int local_route_into(const KAryTree& tree, NodeId src, NodeId dst,
                     std::vector<Hop>& out);

/// Number of edges traversed by local forwarding. Allocation-free in steady
/// state (reuses a thread-local hop buffer).
int local_route_length(const KAryTree& tree, NodeId src, NodeId dst);

}  // namespace san
