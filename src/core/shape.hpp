// Tree shapes and the shape -> k-ary search tree builder.
//
// Static constructions in the paper (full k-ary tree, centroid tree, DP
// reconstructions) are naturally described as *shapes*: rooted trees with
// ordered children plus, per node, the position of the node's own identifier
// among its children (`self_pos`). Given a shape, identifiers are assigned
// in order and routing keys are derived so the search property holds; the
// node's own identifier sits at the boundary between child `self_pos - 1`
// and child `self_pos` (half-open convention, see types.hpp).
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "core/karytree.hpp"
#include "core/types.hpp"

namespace san {

/// Rooted ordered tree shape. `size` counts the node itself plus all
/// descendants and is maintained by the factory helpers; call
/// `recompute_sizes` after manual edits.
struct Shape {
  int self_pos = 0;
  std::vector<Shape> kids;
  int size = 1;

  /// Recomputes `size` bottom-up and clamps self_pos into [0, kids.size()].
  int recompute_sizes();
};

/// Builds a KAryTree over ids 1..shape.size with arity k from `shape`.
/// Throws TreeError if any shape node has more than k children.
KAryTree build_from_shape(int k, const Shape& shape);

/// Installs `shape` as the subtree covering ids [first, first+shape.size)
/// into an existing tree; returns the subtree root id. `lo`/`hi` is the
/// routing range recorded on the subtree root (callers link it afterwards).
NodeId install_shape(KAryTree& tree, const Shape& shape, NodeId first,
                     RoutingKey lo, RoutingKey hi);

/// Complete k-ary tree shape on n nodes: every level full except the last,
/// which is filled left to right ("full k-ary tree" of the paper's
/// evaluation; also the weakly-complete building block of the centroid
/// construction). self_pos is the middle child slot.
Shape make_complete_shape(int n, int k);

/// Degenerate path (each node one child) — worst-case topology used in
/// tests and as an adversarial initial network.
Shape make_path_shape(int n);

/// Uniformly random shape with at most k children per node, random
/// self positions. Used by property tests and as a random initial network.
Shape make_random_shape(int n, int k, std::mt19937_64& rng);

}  // namespace san
