#include "core/executor.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <thread>
#include <vector>

namespace san {

int resolve_threads(int requested) {
  if (requested > 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

namespace {
// True while this thread is executing inside a parallel round, either as
// a pool worker or as the round's caller. Nested for_range calls from
// such a thread run serially: the pool is already saturated with the
// outer round, and recursing into it would deadlock.
thread_local bool tls_in_parallel = false;

struct ParallelRegionGuard {
  ParallelRegionGuard() { tls_in_parallel = true; }
  ~ParallelRegionGuard() { tls_in_parallel = false; }
};
}  // namespace

struct Executor::Impl {
  // One round of fork/join work. Only one round is active at a time
  // (round_mu serializes callers), so the state is reused between rounds.
  struct Round {
    long end = 0;
    long chunk = 1;
    std::atomic<long> cursor{0};
    void* ctx = nullptr;
    RangeFn fn = nullptr;
    // Pool workers still allowed to join this round (the caller always
    // participates and is not counted here).
    int slots = 0;
    // Threads currently executing chunks; the round is over when the
    // cursor is exhausted and this drops to zero.
    int active = 0;
    std::exception_ptr error;
  };

  std::mutex round_mu;               // serializes concurrent callers
  std::mutex mu;                     // guards everything below
  std::condition_variable work_cv;   // workers: a round was posted / stop
  std::condition_variable done_cv;   // caller: round finished
  std::vector<std::thread> workers;
  std::atomic<int> worker_count{0};
  Round round;
  std::uint64_t generation = 0;      // bumps when a round is posted
  std::atomic<std::size_t> rounds{0};
  bool stop = false;

  void worker_loop() {
    ParallelRegionGuard in_parallel;
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(mu);
    for (;;) {
      work_cv.wait(lock, [&] { return stop || generation != seen; });
      if (stop) return;
      seen = generation;
      if (round.slots <= 0) continue;
      --round.slots;
      ++round.active;
      lock.unlock();
      run_chunks();
      lock.lock();
      if (--round.active == 0) done_cv.notify_all();
    }
  }

  // Pulls chunks until the range is drained. Called without the lock.
  void run_chunks() {
    Round& r = round;
    for (;;) {
      const long lo = r.cursor.fetch_add(r.chunk, std::memory_order_relaxed);
      if (lo >= r.end) return;
      const long hi = std::min(r.end, lo + r.chunk);
      try {
        for (long i = lo; i < hi; ++i) r.fn(r.ctx, i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu);
        if (!r.error) r.error = std::current_exception();
        // Park the cursor past the end so everyone drains quickly.
        r.cursor.store(r.end, std::memory_order_relaxed);
        return;
      }
    }
  }
};

Executor::Executor() : impl_(new Impl) {}

Executor::~Executor() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->stop = true;
  }
  impl_->work_cv.notify_all();
  for (std::thread& t : impl_->workers) t.join();
  delete impl_;
}

Executor& Executor::instance() {
  static Executor exec;
  return exec;
}

bool Executor::on_worker_thread() { return tls_in_parallel; }

int Executor::pool_size() const {
  return impl_->worker_count.load(std::memory_order_relaxed);
}

std::size_t Executor::rounds_dispatched() const {
  return impl_->rounds.load(std::memory_order_relaxed);
}

void Executor::for_range(long begin, long end, int threads, void* ctx,
                         RangeFn fn) {
  const long count = end - begin;
  if (count <= 0) return;
  const int participants =
      static_cast<int>(std::min<long>(resolve_threads(threads), count));
  // Serial paths: one participant (threads=1, or auto on a single-core
  // host), or a nested call from inside an active round (tls_in_parallel
  // above — recursing into the busy pool would deadlock).
  if (participants <= 1 || tls_in_parallel) {
    for (long i = begin; i < end; ++i) fn(ctx, i);
    return;
  }

  Impl& im = *impl_;
  std::lock_guard<std::mutex> round_lock(im.round_mu);
  std::unique_lock<std::mutex> lock(im.mu);
  // Workers are started lazily so that programs which never go parallel
  // (or set threads=1 throughout) pay nothing for the pool. The pool
  // grows to the largest explicit request seen (capped) so that
  // threads>hardware keeps its pre-pool oversubscription semantics.
  constexpr int kMaxWorkers = 64;
  const int target = std::min(kMaxWorkers, participants - 1);
  while (static_cast<int>(im.workers.size()) < target) {
    im.workers.emplace_back([this] { impl_->worker_loop(); });
    im.worker_count.store(static_cast<int>(im.workers.size()),
                          std::memory_order_relaxed);
  }

  Impl::Round& r = im.round;
  r.end = end;
  // Chunks are sized for dynamic load balancing: enough chunks that an
  // uneven fn cost doesn't stall the round on one straggler, large
  // enough that the atomic cursor isn't contended per index.
  r.chunk = std::max<long>(1, count / (4L * participants));
  r.cursor.store(begin, std::memory_order_relaxed);
  r.ctx = ctx;
  r.fn = fn;
  r.slots = std::min(participants - 1, static_cast<int>(im.workers.size()));
  r.active = 0;
  r.error = nullptr;
  ++im.generation;
  im.rounds.fetch_add(1, std::memory_order_relaxed);
  lock.unlock();
  im.work_cv.notify_all();

  {
    // The caller is a full participant; it drains chunks like any worker.
    ParallelRegionGuard in_parallel;
    im.run_chunks();
  }

  lock.lock();
  im.done_cv.wait(lock, [&] { return r.active == 0; });
  // Close leftover slots so late-waking workers skip the finished round.
  r.slots = 0;
  std::exception_ptr err = r.error;
  r.error = nullptr;
  lock.unlock();
  if (err) std::rethrow_exception(err);
}

}  // namespace san
