// Core scalar types and conventions shared by all san:: libraries.
//
// A k-ary search tree *network* (paper, Definition 1) is a rooted tree over
// network nodes 1..n. Each node carries
//   * a permanent identifier (NodeId) that never changes across rotations,
//   * a sorted array of at most k-1 routing keys (RoutingKey),
//   * up to k children, one per routing interval.
//
// Interval convention (pinned down in DESIGN.md): child i of a node with
// routing keys r_1 < ... < r_m owns identifiers in the half-open interval
// [r_i, r_{i+1}) with sentinels r_0 = kKeyMin, r_{m+1} = kKeyMax. A node's
// own identifier must lie inside the range assigned to it by its parent;
// lookups test the local identifier before descending, so the identifier may
// lie inside any child interval without violating the search property.
#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>

namespace san {

/// Permanent network-node identifier. Valid ids are 1..n; kNoNode marks
/// empty child slots and absent parents.
using NodeId = std::int32_t;

/// Routing element. Drawn from an ordered universe strictly larger than the
/// identifier set (Definition 1: "routing elements (not keys)"): identifier
/// i maps to key value i * kKeySpacing, leaving room for synthetic
/// *separator* values between any two consecutive identifiers.
///
/// Construction establishes the *saturation invariant* the paper's Figure 3
/// depicts: every node holds exactly k-1 routing elements (real child
/// boundaries, its own id key, plus synthetic separators padding unused
/// capacity with empty intervals). Rotations merge and re-split complete
/// routing arrays (k-1 + k-1 [+ k-1] elements), so saturation — and with
/// it the splay-tree balance argument — is preserved forever; the key
/// multiset never changes after construction. Without saturation a node's
/// fan-out is capped by the keys it happens to hold and the self-adjusting
/// trees measurably degenerate toward chains. At k = 2 this scheme is
/// exactly the classic splay tree (one permanent key per node).
using RoutingKey = std::int64_t;

/// Gap between consecutive identifier key values; bounds the number of
/// synthetic separators that fit between two ids (k - 2 are needed at most,
/// so arities up to kKeySpacing / 2 are supported).
inline constexpr RoutingKey kKeySpacing = RoutingKey{1} << 20;

/// Key value of node id `i`.
inline constexpr RoutingKey id_key(NodeId id) {
  return static_cast<RoutingKey>(id) * kKeySpacing;
}

/// The synthetic separator at the midpoint below id `i`: strictly between
/// id_key(i - 1) and id_key(i).
inline constexpr RoutingKey separator_before(NodeId id) {
  return id_key(id) - kKeySpacing / 2;
}

inline constexpr NodeId kNoNode = 0;
inline constexpr RoutingKey kKeyMin = std::numeric_limits<RoutingKey>::min();
inline constexpr RoutingKey kKeyMax = std::numeric_limits<RoutingKey>::max();

/// Cost scalar used throughout the simulation (distances, potentials,
/// total service cost). 64-bit: total distance of a 10^6-request trace on
/// 10^4 nodes exceeds 2^32.
using Cost = std::int64_t;

inline constexpr Cost kInfiniteCost = std::numeric_limits<Cost>::max() / 4;

/// Thrown on API misuse (invalid arity, ids out of range, malformed input).
class TreeError : public std::runtime_error {
 public:
  explicit TreeError(const std::string& what) : std::runtime_error(what) {}
};

}  // namespace san
