// Implementation-independent random primitives.
//
// The determinism contract (traces, golden costs, arrival schedules are
// bit-identical across toolchains) forbids std::*_distribution: the
// standard specifies the distributions' statistics but not their
// algorithms, so libstdc++ and libc++ produce different sequences from the
// same engine. Everything that must replay bit-identically derives its
// variates from raw mt19937_64 words through the helpers below instead.
#pragma once

#include <cstdint>
#include <random>

namespace san {

/// Uniform double in (0, 1], built from the top 53 bits of a raw RNG word.
/// The +1 keeps 0 out of the range, making -log(u) finite.
inline double uniform_open(std::mt19937_64& rng) {
  return (static_cast<double>(rng() >> 11) + 1.0) * 0x1.0p-53;
}

/// splitmix64 finalizer: a fixed 64-bit mix used as a seeded stateless
/// hash (shard scattering, sketch row hashing). Never change the
/// constants — checked-in partitions and sketches depend on them.
inline std::uint64_t splitmix64_mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace san
