#include "core/splaynet.hpp"

#include <algorithm>

namespace san {
namespace {

void accumulate(ServeResult& total, const RotationResult& step) {
  ++total.rotations;
  total.parent_changes += step.parent_changes;
  total.edge_changes += step.edge_changes;
}

}  // namespace

KArySplayNet::KArySplayNet(KAryTree initial, RotationPolicy policy,
                           SplayMode mode)
    : tree_(std::move(initial)), policy_(policy), mode_(mode) {
  if (auto err = tree_.validate())
    throw TreeError("KArySplayNet: invalid initial topology: " + *err);
}

KArySplayNet KArySplayNet::balanced(int k, int n, RotationPolicy policy,
                                    SplayMode mode) {
  return KArySplayNet(build_from_shape(k, make_complete_shape(n, k)), policy,
                      mode);
}

ServeResult KArySplayNet::splay_until_parent(NodeId x, NodeId stop_parent) {
  ServeResult res;
  while (true) {
    const NodeId p = tree_.parent(x);
    if (p == stop_parent) break;
    if (p == kNoNode)
      throw TreeError("splay_until_parent: stop parent not on root path");
    if (mode_ == SplayMode::kSemiSplayOnly ||
        tree_.parent(p) == stop_parent)
      accumulate(res, k_semi_splay(tree_, x, policy_));
    else
      accumulate(res, k_splay(tree_, x, policy_));
  }
  return res;
}

ServeResult KArySplayNet::serve(NodeId u, NodeId v) {
  ServeResult res;
  if (u == v) return res;
  // One depth-directed walk yields both the pre-adjustment routing cost and
  // the LCA whose position u will take.
  const PathInfo path = tree_.path_info(u, v);
  res.routing_cost = path.distance;

  // Phase 1: u takes the place of the lowest common ancestor.
  const NodeId stop = tree_.parent(path.lca);
  ServeResult up = splay_until_parent(u, stop);
  // Phase 2: v becomes a child of u; the request is then one hop.
  ServeResult down = splay_until_parent(v, u);

  res.rotations = up.rotations + down.rotations;
  res.parent_changes = up.parent_changes + down.parent_changes;
  res.edge_changes = up.edge_changes + down.edge_changes;
  return res;
}

ServeResult KArySplayNet::access(NodeId x) {
  // The pre-adjustment depth (= routing cost of a root-originated request)
  // is recovered from the splay itself instead of a separate depth() walk:
  // every k-splay lifts x exactly two levels and every k-semi-splay one,
  // so the levels climbed sum to the original depth. This keeps the
  // cross-shard ascent path (sharded_network.cpp) at one tree walk per
  // access and skips stamping depth memos the rotations would invalidate.
  ServeResult res;
  while (true) {
    const NodeId p = tree_.parent(x);
    if (p == kNoNode) break;
    if (mode_ == SplayMode::kSemiSplayOnly || tree_.parent(p) == kNoNode) {
      accumulate(res, k_semi_splay(tree_, x, policy_));
      res.routing_cost += 1;
    } else {
      accumulate(res, k_splay(tree_, x, policy_));
      res.routing_cost += 2;
    }
  }
  return res;
}

CentroidSplayNet::CentroidSplayNet(int k, int n, RotationPolicy policy)
    : net_([&] {
        if (n < 2 * k + 1)
          throw TreeError(
              "CentroidSplayNet needs at least 2k+1 nodes (two centroids plus "
              "one node per subtree)");
        // Paper Fig. 8 layout: c1 side holds (n-2)/(k+1) nodes across k-1
        // subtrees, c2 side holds the rest across k subtrees.
        const int body = n - 2;
        const int c1_side = body / (k + 1);
        const int c2_side = body - c1_side;

        auto split = [](int total, int parts) {
          std::vector<int> sizes(parts, total / parts);
          for (int i = 0; i < total % parts; ++i) ++sizes[i];
          return sizes;
        };
        const std::vector<int> a_sizes = split(c1_side, k - 1);
        const std::vector<int> b_sizes = split(c2_side, k);

        Shape c2_shape;
        for (int sz : b_sizes)
          if (sz > 0) c2_shape.kids.push_back(make_complete_shape(sz, k));
        c2_shape.self_pos = static_cast<int>(c2_shape.kids.size()) / 2;

        Shape c1_shape;
        for (int sz : a_sizes)
          if (sz > 0) c1_shape.kids.push_back(make_complete_shape(sz, k));
        c1_shape.self_pos = static_cast<int>(c1_shape.kids.size());
        c1_shape.kids.push_back(std::move(c2_shape));
        c1_shape.recompute_sizes();
        return KArySplayNet(build_from_shape(k, c1_shape), policy);
      }()) {
  // Recover the centroid ids and record permanent subtree membership.
  const KAryTree& t = net_.tree();
  c1_ = t.root();
  subtree_idx_.assign(static_cast<size_t>(n) + 1, -1);
  int index = 0;
  std::vector<NodeId> c2_kids;
  const auto& c1_children = t.node(c1_).children;
  for (size_t s = 0; s < c1_children.size(); ++s) {
    NodeId child = c1_children[s];
    if (child == kNoNode) continue;
    if (s + 1 == c1_children.size()) {
      c2_ = child;  // last child interval holds the c2 subtree
    } else {
      std::vector<NodeId> stack = {child};
      while (!stack.empty()) {
        NodeId cur = stack.back();
        stack.pop_back();
        subtree_idx_[cur] = index;
        for (NodeId c : t.node(cur).children)
          if (c != kNoNode) stack.push_back(c);
      }
      ++index;
    }
  }
  // Indices k-1..2k-2 belong to c2's children. Subtree count under c1 can be
  // lower than k-1 for tiny n; c2 children always start at index k-1.
  index = k - 1;
  for (NodeId child : t.node(c2_).children) {
    if (child == kNoNode) continue;
    std::vector<NodeId> stack = {child};
    while (!stack.empty()) {
      NodeId cur = stack.back();
      stack.pop_back();
      subtree_idx_[cur] = index;
      for (NodeId c : t.node(cur).children)
        if (c != kNoNode) stack.push_back(c);
    }
    ++index;
  }
}

ServeResult CentroidSplayNet::serve(NodeId u, NodeId v) {
  ServeResult res;
  if (u == v) return res;
  const PathInfo path = net_.tree().path_info(u, v);
  res.routing_cost = path.distance;

  const int su = subtree_of(u);
  const int sv = subtree_of(v);
  if (su == sv && su >= 0) {
    // Intra-subtree request: exactly the k-ary SplayNet behaviour, confined
    // to the subtree (the LCA is inside it, so rotations never touch the
    // centroids).
    ServeResult up = net_.splay_until_parent(u, net_.tree().parent(path.lca));
    ServeResult down = net_.splay_until_parent(v, u);
    res.rotations = up.rotations + down.rotations;
    res.parent_changes = up.parent_changes + down.parent_changes;
    res.edge_changes = up.edge_changes + down.edge_changes;
    return res;
  }
  // Cross-subtree (or centroid endpoint): splay each non-centroid endpoint
  // to its subtree root; the route then runs u -> c_a (-> c_b) -> v.
  for (auto [node, st] : {std::pair{u, su}, std::pair{v, sv}}) {
    if (st < 0) continue;  // centroids stay put
    ServeResult part = net_.splay_until_parent(node, centroid_parent(st));
    res.rotations += part.rotations;
    res.parent_changes += part.parent_changes;
    res.edge_changes += part.edge_changes;
  }
  return res;
}

}  // namespace san
