// KAryTree: the k-ary search tree network topology.
//
// Nodes are indexed by their permanent identifier (1..n), so a rotation can
// never "lose" a node: only keys / child links / parent links are rewired.
// The container exposes a low-level mutation API used by the rotation engine
// (rotation.hpp) and the static-tree builders, plus read-only queries used by
// simulation (distance, LCA, routing) and by the validator.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/types.hpp"

namespace san {

/// One network node. `lo`/`hi` cache the identifier range the parent assigns
/// to this node's subtree ([lo, hi)); they make hop-by-hop *local* routing
/// possible (a node can decide "target below me or above me" without global
/// state) and are maintained by the rotation engine in O(1) per rotation.
struct TreeNode {
  NodeId id = kNoNode;
  std::vector<RoutingKey> keys;  ///< strictly increasing, size() <= k-1
  std::vector<NodeId> children;  ///< size() == keys.size()+1, kNoNode = empty
  NodeId parent = kNoNode;
  int slot_in_parent = -1;  ///< index into parent's children, -1 for root
  RoutingKey lo = kKeyMin;  ///< subtree identifier range, inclusive
  RoutingKey hi = kKeyMax;  ///< subtree identifier range, exclusive
};

class KAryTree {
 public:
  /// Creates a tree of `n` detached nodes with ids 1..n and arity `k` >= 2.
  /// A topology must be installed through a builder (tree_builder.hpp) or
  /// the low-level mutators before queries are meaningful.
  KAryTree(int k, int n);

  int arity() const { return k_; }
  int size() const { return n_; }
  NodeId root() const { return root_; }

  const TreeNode& node(NodeId id) const { return nodes_[check(id)]; }
  TreeNode& node_mut(NodeId id) { return nodes_[check(id)]; }

  // --- topology queries -----------------------------------------------
  /// Number of edges on the root path. O(depth).
  int depth(NodeId id) const;
  /// Lowest common ancestor. O(depth(u) + depth(v)).
  NodeId lca(NodeId u, NodeId v) const;
  /// Tree distance in edges between two nodes. O(depth).
  int distance(NodeId u, NodeId v) const;
  /// Nodes of the unique u->v routing path, endpoints included.
  std::vector<NodeId> route(NodeId u, NodeId v) const;
  /// True iff `anc` lies on the root path of `id` (anc == id counts).
  bool is_ancestor(NodeId anc, NodeId id) const;

  /// Descends from the root using the search property only; returns the
  /// visited path. Throws TreeError if the search property is broken in a
  /// way that makes `target` unreachable.
  std::vector<NodeId> search_from_root(NodeId target) const;

  /// Index of the child interval of `id` that contains `key`:
  /// count of routing keys <= key. O(log k).
  int interval_of(NodeId id, RoutingKey key) const;

  /// Sum over requests of d(u,v): total routing cost of a demand matrix
  /// entry stream is computed by callers; this helper returns d over all
  /// ordered pairs weighted 1 (uniform total distance). O(n^2 * depth).
  Cost uniform_total_distance() const;

  // --- low-level mutation (rotation engine / builders) -----------------
  void set_root(NodeId id);
  /// Installs keys/children on `id` and fixes the parent/slot back-links of
  /// every non-empty child. Does not touch `id`'s own parent link.
  void install(NodeId id, std::vector<RoutingKey> keys,
               std::vector<NodeId> children, RoutingKey lo, RoutingKey hi);
  /// Points `parent`'s child slot at `child` and sets the back-link.
  /// `parent == kNoNode` makes `child` the root.
  void link(NodeId parent, int slot, NodeId child);

  // --- validation -------------------------------------------------------
  /// Full structural + search-property audit. Returns std::nullopt when the
  /// tree is a valid k-ary search tree network covering all n nodes, else a
  /// human-readable description of the first violation found.
  std::optional<std::string> validate() const;

  /// Convenience: validate() == nullopt.
  bool valid() const { return !validate().has_value(); }

 private:
  int check(NodeId id) const {
    if (id < 1 || id > n_) throw TreeError("node id out of range");
    return id;
  }

  int k_;
  int n_;
  NodeId root_ = kNoNode;
  std::vector<TreeNode> nodes_;  // index 0 unused; ids are 1-based
};

}  // namespace san
