// KAryTree: the k-ary search tree network topology.
//
// Nodes are indexed by their permanent identifier (1..n), so a rotation can
// never "lose" a node: only keys / child links / parent links are rewired.
// The container exposes a low-level mutation API used by the rotation engine
// (rotation.hpp) and the static-tree builders, plus read-only queries used by
// simulation (distance, LCA, routing) and by the validator.
//
// Storage layout: arity is fixed at construction, so every node owns exactly
// k-1 key slots and k child slots carved out of two contiguous
// structure-of-arrays buffers (`keys_`: n*(k-1) RoutingKeys, `children_`:
// n*k NodeIds) plus per-field scalar arrays (parent, slot-in-parent, lo/hi,
// key count). Nothing is heap-allocated after construction — install() and
// link() only overwrite slots in place — which keeps the serve() hot path
// free of allocator traffic. `node(id)` returns a cheap view whose
// `keys`/`children` are spans into the flat buffers.
//
// Depth cache: each node carries a memoized depth validated by an epoch
// counter. Structural mutations set a dirty flag; the next depth-dependent
// query bumps the epoch (invalidating every memo in O(1)) and reads repair
// lazily by walking to the nearest fresh ancestor and stamping the walked
// path. Within one mutation-free window — e.g. the lca + distance pair at
// the start of serve(), or an entire static-tree replay — repeated depth
// reads are O(1); a replay over a never-rotating tree converges to fully
// memoized depths. Because the memo arrays are mutable, const queries are
// NOT safe to call concurrently on the same tree (each sweep/DP worker owns
// its own tree instance, see sim/sweep.hpp).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/types.hpp"

namespace san {

/// Read-only view of one network node, returned by value from
/// KAryTree::node(). `keys`/`children` are spans into the tree's flat
/// storage: they never dangle (the buffers live as long as the tree and
/// never reallocate), but a later install() on this node changes the values
/// — and possibly the span length — so re-fetch the view after mutations.
/// `lo`/`hi` cache the identifier range the parent assigns to this node's
/// subtree ([lo, hi)); they make hop-by-hop *local* routing possible (a node
/// can decide "target below me or above me" without global state) and are
/// maintained by the rotation engine in O(1) per rotation.
struct TreeNode {
  NodeId id = kNoNode;
  std::span<const RoutingKey> keys;  ///< strictly increasing, size() <= k-1
  std::span<const NodeId> children;  ///< size() == keys.size()+1, kNoNode = empty
  NodeId parent = kNoNode;
  int slot_in_parent = -1;  ///< index into parent's children, -1 for root
  RoutingKey lo = kKeyMin;  ///< subtree identifier range, inclusive
  RoutingKey hi = kKeyMax;  ///< subtree identifier range, exclusive
};

/// LCA and tree distance of one node pair, computed in a single walk.
struct PathInfo {
  NodeId lca = kNoNode;
  int distance = 0;
};

/// Read prefetch hint with low expected temporal locality. No-op where
/// __builtin_prefetch is unavailable.
inline void prefetch_read(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/1);
#else
  (void)p;
#endif
}

class KAryTree {
 public:
  /// Creates a tree of `n` detached nodes with ids 1..n and arity `k` >= 2.
  /// A topology must be installed through a builder (shape.hpp) or the
  /// low-level mutators before queries are meaningful. All storage is
  /// allocated here, once.
  KAryTree(int k, int n);

  int arity() const { return k_; }
  int size() const { return n_; }
  NodeId root() const { return root_; }

  /// Cheap by-value view; see TreeNode.
  TreeNode node(NodeId id) const {
    check(id);
    return TreeNode{id,
                    keys(id),
                    children(id),
                    parent_[static_cast<size_t>(id)],
                    slot_in_parent_[static_cast<size_t>(id)],
                    lo_[static_cast<size_t>(id)],
                    hi_[static_cast<size_t>(id)]};
  }

  // --- field accessors (no view construction; hot-path friendly) --------
  NodeId parent(NodeId id) const { return parent_[static_cast<size_t>(check(id))]; }
  int slot_in_parent(NodeId id) const {
    return slot_in_parent_[static_cast<size_t>(check(id))];
  }
  RoutingKey lo(NodeId id) const { return lo_[static_cast<size_t>(check(id))]; }
  RoutingKey hi(NodeId id) const { return hi_[static_cast<size_t>(check(id))]; }
  int num_keys(NodeId id) const { return nkeys_[static_cast<size_t>(check(id))]; }
  int num_children(NodeId id) const { return num_keys(id) + 1; }
  std::span<const RoutingKey> keys(NodeId id) const {
    check(id);
    return {keys_.data() + key_base(id),
            static_cast<size_t>(nkeys_[static_cast<size_t>(id)])};
  }
  std::span<const NodeId> children(NodeId id) const {
    check(id);
    return {children_.data() + child_base(id),
            static_cast<size_t>(nkeys_[static_cast<size_t>(id)]) + 1};
  }
  NodeId child(NodeId id, int slot) const {
    return children_[child_base(check(id)) + static_cast<size_t>(slot)];
  }

  // --- topology queries -----------------------------------------------
  /// Number of edges on the root path. O(1) when memoized (see depth cache
  /// note above); otherwise walks to the nearest fresh ancestor and stamps
  /// the path.
  int depth(NodeId id) const;
  /// True iff `id`'s depth memo is valid for the current topology (test /
  /// diagnostics hook for the cache machinery).
  bool depth_is_cached(NodeId id) const {
    check(id);
    return !dirty_ && depth_epoch_[static_cast<size_t>(id)] == epoch_;
  }
  /// Lowest common ancestor: equalizes depths, then walks up in lockstep.
  /// O(distance) plus the cost of the two depth() reads.
  NodeId lca(NodeId u, NodeId v) const;
  /// Tree distance in edges between two nodes; single depth-directed walk,
  /// no lca() recomputation.
  int distance(NodeId u, NodeId v) const;
  /// LCA and distance from one walk — what serve() needs per request.
  PathInfo path_info(NodeId u, NodeId v) const;
  /// Batch variant of path_info(): computes `out[i] = path_info(us[i],
  /// vs[i])` with up to `group` walks advanced in lockstep, each round
  /// prefetching the next parent hop of every live walk so the DRAM misses
  /// of independent root paths overlap instead of serializing. Results are
  /// bit-identical to the scalar calls (same arithmetic, same memo repair,
  /// same error conditions). All three spans must have equal length.
  void path_info_batch(std::span<const NodeId> us, std::span<const NodeId> vs,
                       std::span<PathInfo> out, int group = 8) const;
  /// Interleaved parent-chase from each id to the root that only issues
  /// read prefetches on the parent / key / child cache lines a subsequent
  /// splay over those nodes will touch. Deliberately memo-free: it never
  /// reads or stamps the depth cache, so it is safe to call between
  /// mutations without epoch churn. Returns the total number of hops walked
  /// (the sum of the ids' depths). Node ids are permanent indexes into the
  /// flat SoA buffers — nodes never move in memory — so the warmed lines
  /// stay useful even as rotations rewire links underneath.
  int warm_root_paths(std::span<const NodeId> ids) const;
  /// Nodes of the unique u->v routing path, endpoints included.
  std::vector<NodeId> route(NodeId u, NodeId v) const;
  /// Buffer-reusing variant: replaces `out` with the path and returns its
  /// edge count. No allocation once `out`'s capacity covers the path.
  int route_into(NodeId u, NodeId v, std::vector<NodeId>& out) const;
  /// True iff `anc` lies on the root path of `id` (anc == id counts).
  bool is_ancestor(NodeId anc, NodeId id) const;

  /// Descends from the root using the search property only; returns the
  /// visited path. Throws TreeError if the search property is broken in a
  /// way that makes `target` unreachable.
  std::vector<NodeId> search_from_root(NodeId target) const;
  /// Buffer-reusing variant of search_from_root; returns the edge count of
  /// the found path (== depth of `target`).
  int search_from_root_into(NodeId target, std::vector<NodeId>& out) const;

  /// Index of the child interval of `id` that contains `key`:
  /// count of routing keys <= key. O(log k).
  int interval_of(NodeId id, RoutingKey key) const;

  /// Sum over requests of d(u,v): total routing cost of a demand matrix
  /// entry stream is computed by callers; this helper returns d over all
  /// ordered pairs weighted 1 (uniform total distance). O(n).
  Cost uniform_total_distance() const;

  // --- low-level mutation (rotation engine / builders) -----------------
  void set_root(NodeId id);
  /// Installs keys/children on `id` and fixes the parent/slot back-links of
  /// every non-empty child. Does not touch `id`'s own parent link. The
  /// spans are copied into the flat storage; they must not alias this
  /// tree's own key/child buffers.
  void install(NodeId id, std::span<const RoutingKey> keys,
               std::span<const NodeId> children, RoutingKey lo, RoutingKey hi);
  /// Brace-list convenience for builders and tests.
  void install(NodeId id, std::initializer_list<RoutingKey> keys,
               std::initializer_list<NodeId> children, RoutingKey lo,
               RoutingKey hi) {
    install(id, std::span<const RoutingKey>(keys.begin(), keys.size()),
            std::span<const NodeId>(children.begin(), children.size()), lo, hi);
  }
  /// Points `parent`'s child slot at `child` and sets the back-link.
  /// `parent == kNoNode` makes `child` the root.
  void link(NodeId parent, int slot, NodeId child);

  // --- validation -------------------------------------------------------
  /// Full structural + search-property audit, including the depth cache:
  /// every node whose depth memo is stamped fresh must hold its true depth.
  /// Returns std::nullopt when the tree is a valid k-ary search tree
  /// network covering all n nodes, else a human-readable description of the
  /// first violation found.
  std::optional<std::string> validate() const;

  /// Convenience: validate() == nullopt.
  bool valid() const { return !validate().has_value(); }

 private:
  NodeId check(NodeId id) const {
    if (id < 1 || id > n_) throw TreeError("node id out of range");
    return id;
  }
  size_t key_base(NodeId id) const {
    return static_cast<size_t>(id - 1) * static_cast<size_t>(k_ - 1);
  }
  size_t child_base(NodeId id) const {
    return static_cast<size_t>(id - 1) * static_cast<size_t>(k_);
  }
  /// Folds any pending mutation into one O(1) epoch bump; called by every
  /// depth-dependent read.
  void sync_epoch() const {
    if (dirty_) {
      ++epoch_;
      dirty_ = false;
    }
  }

  int k_;
  int n_;
  NodeId root_ = kNoNode;

  // Structure-of-arrays node storage; index 0 unused (ids are 1-based) in
  // the scalar arrays, flat buffers are 0-based via key_base/child_base.
  std::vector<NodeId> parent_;
  std::vector<std::int32_t> slot_in_parent_;
  std::vector<RoutingKey> lo_;
  std::vector<RoutingKey> hi_;
  std::vector<std::int32_t> nkeys_;
  std::vector<RoutingKey> keys_;    ///< n * (k-1) inline key slots
  std::vector<NodeId> children_;    ///< n * k inline child slots

  // Depth memoization (see class comment). Mutable: filled by const reads.
  mutable std::vector<std::int32_t> depth_;
  mutable std::vector<std::uint64_t> depth_epoch_;
  mutable std::uint64_t epoch_ = 1;
  mutable bool dirty_ = false;
  mutable std::vector<NodeId> depth_scratch_;  ///< repair-walk path buffer
  mutable std::vector<NodeId> route_scratch_;  ///< route_into v-side buffer
};

}  // namespace san
