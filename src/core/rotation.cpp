#include "core/rotation.hpp"

#include <algorithm>
#include <cassert>
#include <vector>

namespace san {
namespace {

// Alternating element/interval sequence produced by merging adjacent nodes,
// plus the pre-rotation edge snapshot. slots.size() == elems.size() + 1;
// slots[i] is the (possibly empty) subtree sitting in the interval
// (elems[i-1], elems[i]) with range sentinels at the ends. Every interval
// holds at most one subtree because each participating node's children
// occupy disjoint consecutive intervals.
//
// The buffers are thread_local and grow to the per-arity high-water mark on
// first use (a k-splay merges at most 3(k-1) elements), after which every
// rotation runs without touching the heap — the serve() hot path performs
// zero allocations in steady state.
struct Scratch {
  std::vector<RoutingKey> elems;
  std::vector<NodeId> slots;
  std::vector<NodeId> snap_nodes;
  std::vector<NodeId> snap_parents;
};

Scratch& scratch_for(int k) {
  thread_local Scratch s;
  const size_t cap = 3 * static_cast<size_t>(k);
  s.elems.reserve(cap);
  s.slots.reserve(cap + 1);
  s.snap_nodes.reserve(cap + 4);
  s.snap_parents.reserve(cap + 4);
  return s;
}

void expand(Scratch& m, const KAryTree& tree, NodeId id) {
  const std::span<const RoutingKey> ks = tree.keys(id);
  const std::span<const NodeId> cs = tree.children(id);
  m.elems.assign(ks.begin(), ks.end());
  m.slots.assign(cs.begin(), cs.end());
}

// Replaces slot `at` (which must currently hold `child`) with `child`'s own
// keys and child slots.
void splice(Scratch& m, int at, const KAryTree& tree, NodeId child) {
  assert(m.slots[static_cast<size_t>(at)] == child);
  const std::span<const RoutingKey> ks = tree.keys(child);
  const std::span<const NodeId> cs = tree.children(child);
  m.slots.erase(m.slots.begin() + at);
  m.slots.insert(m.slots.begin() + at, cs.begin(), cs.end());
  m.elems.insert(m.elems.begin() + at, ks.begin(), ks.end());
}

int interval_index(const Scratch& m, RoutingKey value) {
  return static_cast<int>(
      std::upper_bound(m.elems.begin(), m.elems.end(), value) -
      m.elems.begin());
}

// Interval-index constraints for a block choice. `hard_*` marks the slot
// range of the splayed node's former children: a pushed-down ancestor's new
// subtree must stay disjoint from them or the splay potential argument (and
// with it the amortized balance) breaks. `soft` marks the interval whose
// inclusion turns the paper's k-splay case 1 (siblings) into case 2
// (nesting chain); it is taken only when unavoidable.
struct BlockAvoid {
  int hard_begin = 0, hard_end = -1;  // inclusive, empty when begin > end
  int soft = -1;
};

// Carves a contiguous block of `s` internal elements (s+1 intervals) out of
// `m`, covering node `id`'s identifier, and installs it as node `id`. The
// block is replaced in `m` by a single slot holding `id`; the new interval
// index of that slot is returned. `outer_lo`/`outer_hi` bound the whole
// merged sequence.
//
// Interval semantics are open: a boundary value belongs to neither side
// (key values are globally unique, so no target can be ambiguous). Hence
// "covering" has two cases: if the node's own id key is one of the merged
// elements, the block must *contain that element* — the node ends in the
// routing-based position with its id as one of its own boundaries; if not,
// the id value lies strictly inside an interval and the block must span
// that interval.
int collapse_block(KAryTree& tree, Scratch& m, NodeId id, int s,
                   BlockPlacement placement, RoutingKey outer_lo,
                   RoutingKey outer_hi, BlockAvoid avoid = {}) {
  const int M = static_cast<int>(m.elems.size());
  assert(s >= 0 && s <= M);
  const RoutingKey v = id_key(id);
  const auto lb = std::lower_bound(m.elems.begin(), m.elems.end(), v);
  const bool own_key_present = lb != m.elems.end() && *lb == v;
  int j = static_cast<int>(lb - m.elems.begin());
  int a_min, a_max;
  if (own_key_present) {
    if (s == 0) s = 1;  // must take at least the own id key
    a_min = std::max(0, j - s + 1);
    a_max = std::min(j, M - s);
  } else {
    a_min = std::max(0, j - s);
    a_max = std::min(j, M - s);
  }
  assert(a_min <= a_max);

  // Score every feasible window (there are at most k of them): hard
  // violations dominate, then soft ones, then the placement preference.
  const int preferred = (placement == BlockPlacement::kLeftmost) ? a_min
                        : (placement == BlockPlacement::kRightmost)
                            ? a_max
                            : std::clamp(j - s / 2, a_min, a_max);
  int a = preferred;
  int best_score = INT32_MAX;
  for (int cand = a_min; cand <= a_max; ++cand) {
    const int lo_iv = cand, hi_iv = cand + s;  // inclusive interval range
    int score = 0;
    if (avoid.hard_begin <= avoid.hard_end && lo_iv <= avoid.hard_end &&
        hi_iv >= avoid.hard_begin)
      score += 4;
    if (avoid.soft >= lo_iv && avoid.soft <= hi_iv) score += 2;
    score = score * (M + 1) + std::abs(cand - preferred);
    if (score < best_score) {
      best_score = score;
      a = cand;
    }
  }

  const RoutingKey lo = (a == 0) ? outer_lo : m.elems[static_cast<size_t>(a - 1)];
  const RoutingKey hi =
      (a + s == M) ? outer_hi : m.elems[static_cast<size_t>(a + s)];
  // Spans view the scratch buffers; install() copies them into the tree's
  // flat storage before we shrink the merged sequence below.
  tree.install(id,
               std::span<const RoutingKey>(m.elems.data() + a,
                                           static_cast<size_t>(s)),
               std::span<const NodeId>(m.slots.data() + a,
                                       static_cast<size_t>(s) + 1),
               lo, hi);

  m.elems.erase(m.elems.begin() + a, m.elems.begin() + a + s);
  m.slots.erase(m.slots.begin() + a, m.slots.begin() + a + s + 1);
  m.slots.insert(m.slots.begin() + a, id);
  return a;
}

int clamp_block_size(int desired, int total_remaining, int budget_after,
                     int k) {
  // The block keeps `size` elements; everything not yet assigned must still
  // fit into nodes holding at most k-1 elements each (`budget_after` counts
  // how many such nodes remain).
  const int lower = std::max(0, total_remaining - budget_after * (k - 1));
  const int upper = std::min(k - 1, total_remaining);
  return std::clamp(desired, lower, upper);
}

void snapshot(Scratch& m, const KAryTree& tree,
              std::initializer_list<NodeId> protagonists) {
  m.snap_nodes.clear();
  m.snap_parents.clear();
  for (NodeId s : m.slots)
    if (s != kNoNode) m.snap_nodes.push_back(s);
  for (NodeId p : protagonists) m.snap_nodes.push_back(p);
  for (NodeId nd : m.snap_nodes) m.snap_parents.push_back(tree.parent(nd));
}

RotationResult diff(const KAryTree& tree, const Scratch& m) {
  RotationResult res;
  for (size_t i = 0; i < m.snap_nodes.size(); ++i) {
    NodeId now = tree.parent(m.snap_nodes[i]);
    NodeId before = m.snap_parents[i];
    if (now == before) continue;
    ++res.parent_changes;
    if (before != kNoNode) ++res.edge_changes;  // link removed
    if (now != kNoNode) ++res.edge_changes;     // link added
  }
  return res;
}

}  // namespace

RotationResult k_semi_splay(KAryTree& tree, NodeId x,
                            const RotationPolicy& policy) {
  const NodeId p = tree.parent(x);
  if (p == kNoNode) throw TreeError("k_semi_splay: node is the root");
  const int x_slot = tree.slot_in_parent(x);
  const NodeId g = tree.parent(p);
  const int g_slot = tree.slot_in_parent(p);
  const RoutingKey lo = tree.lo(p);
  const RoutingKey hi = tree.hi(p);
  const int k = tree.arity();

  Scratch& m = scratch_for(k);
  expand(m, tree, p);
  splice(m, x_slot, tree, x);
  snapshot(m, tree, {x, p});

  const int M = static_cast<int>(m.elems.size());
  const int desired =
      policy.sizing == BlockSizing::kGreedyMax ? k - 1 : (M + 1) / 2;
  const int s_p = clamp_block_size(desired, M, /*budget_after=*/1, k);
  BlockAvoid p_avoid;
  if (policy.case_preference) p_avoid.soft = interval_index(m, id_key(x));
  collapse_block(tree, m, p, s_p, policy.placement, lo, hi, p_avoid);

  tree.install(x, m.elems, m.slots, lo, hi);
  if (g == kNoNode)
    tree.set_root(x);
  else
    tree.link(g, g_slot, x);
  return diff(tree, m);
}

RotationResult k_splay(KAryTree& tree, NodeId x, const RotationPolicy& policy) {
  const NodeId p = tree.parent(x);
  if (p == kNoNode) throw TreeError("k_splay: node is the root");
  const int x_slot = tree.slot_in_parent(x);
  const NodeId g = tree.parent(p);
  if (g == kNoNode) throw TreeError("k_splay: node has no grandparent");
  const int p_slot = tree.slot_in_parent(p);
  const NodeId top = tree.parent(g);
  const int top_slot = tree.slot_in_parent(g);
  const RoutingKey lo = tree.lo(g);
  const RoutingKey hi = tree.hi(g);
  const int k = tree.arity();

  Scratch& m = scratch_for(k);
  expand(m, tree, g);
  splice(m, p_slot, tree, p);
  // After splicing p's arrays at slot p_slot, p's former child slots begin
  // at index p_slot; x sits at offset x_slot within them.
  const int x_begin = p_slot + x_slot;
  const int x_len = tree.num_children(x);
  splice(m, x_begin, tree, x);
  snapshot(m, tree, {x, p, g});

  const int M = static_cast<int>(m.elems.size());
  const bool greedy = policy.sizing == BlockSizing::kGreedyMax;
  const int s_g = clamp_block_size(greedy ? k - 1 : (M + 2) / 3, M,
                                   /*budget_after=*/2, k);
  // g's new subtree must not swallow x's former children (hard constraint:
  // that disjointness is what the access-lemma potential argument rests
  // on), and prefers not to swallow p's identifier interval, which would
  // force p to nest under g (paper case 2, the zig-zig analogue).
  BlockAvoid g_avoid;
  if (policy.case_preference) {
    g_avoid.hard_begin = x_begin;
    g_avoid.hard_end = x_begin + x_len - 1;
    g_avoid.soft = interval_index(m, id_key(p));
  }
  const int g_slot =
      collapse_block(tree, m, g, s_g, policy.placement, lo, hi, g_avoid);
  // Re-read the remaining element count: collapse_block may take one extra
  // element when the own-id-key rule forces a non-empty block.
  const int M2 = static_cast<int>(m.elems.size());
  const int s_p = clamp_block_size(greedy ? k - 1 : (M2 + 1) / 2, M2,
                                   /*budget_after=*/1, k);
  // p prefers to stay g's sibling (case 1); when its identifier interval
  // is swallowed by g's block it chains below (case 2).
  BlockAvoid p_avoid;
  if (policy.case_preference) p_avoid.soft = g_slot;
  collapse_block(tree, m, p, s_p, policy.placement, lo, hi, p_avoid);

  tree.install(x, m.elems, m.slots, lo, hi);
  if (top == kNoNode)
    tree.set_root(x);
  else
    tree.link(top, top_slot, x);
  return diff(tree, m);
}

}  // namespace san
