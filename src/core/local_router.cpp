#include "core/local_router.hpp"

#include <algorithm>

namespace san {

int local_route_into(const KAryTree& tree, NodeId src, NodeId dst,
                     std::vector<Hop>& hops) {
  hops.clear();
  NodeId cur = src;
  // The port the packet arrived on: kNoNode for "fresh" / "from parent",
  // otherwise the child we just bounced back from. Keys are value
  // boundaries, not node indices, so after rotations the id key of an
  // ancestor may sit inside a descendant interval; the bounce rule ("if I
  // would forward back to where the packet came from, go up instead") keeps
  // forwarding purely local and loop-free in that case — see DESIGN.md.
  NodeId came_from_child = kNoNode;
  const RoutingKey target = id_key(dst);
  while (true) {
    if (hops.size() > 4 * static_cast<size_t>(tree.size()))
      throw TreeError("local_route: packet is looping");
    const TreeNode nd = tree.node(cur);
    if (cur == dst) {
      hops.push_back({cur, HopKind::kDeliverLocal, kNoNode});
      return static_cast<int>(hops.size()) - 1;
    }
    NodeId next = kNoNode;
    HopKind kind = HopKind::kToParent;
    // Open-interval semantics: a target strictly inside the range descends;
    // a target equal to one of this node's boundary values cannot be below
    // (key values are unique), so it routes upward.
    const bool on_boundary = std::binary_search(nd.keys.begin(),
                                                nd.keys.end(), target);
    if (target > nd.lo && target < nd.hi && !on_boundary) {
      const NodeId down = nd.children[tree.interval_of(cur, target)];
      if (down != kNoNode && down != came_from_child) {
        next = down;
        kind = HopKind::kToChild;
      }
    }
    if (next == kNoNode) {
      next = nd.parent;
      kind = HopKind::kToParent;
      if (next == kNoNode)
        throw TreeError("local_route: fell off the root");
    }
    hops.push_back({cur, kind, next});
    came_from_child = (kind == HopKind::kToParent) ? cur : kNoNode;
    cur = next;
  }
}

std::vector<Hop> local_route(const KAryTree& tree, NodeId src, NodeId dst) {
  std::vector<Hop> hops;
  local_route_into(tree, src, dst, hops);
  return hops;
}

int local_route_length(const KAryTree& tree, NodeId src, NodeId dst) {
  thread_local std::vector<Hop> hops;
  return local_route_into(tree, src, dst, hops);
}

}  // namespace san
