// Persistent thread-pool executor for the data-parallel hot paths.
//
// The O(n^3 k) demand-aware DP issues one parallel_for per length
// diagonal — thousands of fork/join rounds per tree — and the bench
// sweeps issue one per table cell. Spawning std::threads for every round
// costs tens of microseconds each; this executor keeps one pool of
// workers alive for the process lifetime and hands them chunks of the
// index range through an atomic cursor, so a round costs one mutex
// broadcast instead of thread creation.
//
// Semantics (shared with the parallel_for shim in parallel.hpp):
//  - fn is called exactly once for every index in [begin, end), in
//    unspecified order, from the calling thread and/or pool workers.
//  - `threads` caps the number of participating threads; 0 means "auto"
//    (hardware concurrency) and threads=1 runs serially on the caller.
//    Explicit requests above hardware concurrency oversubscribe like the
//    pre-pool implementation did, except that the pool never grows past
//    64 workers — a request for more silently gets 64 + the caller.
//  - The first exception thrown by fn is captured and rethrown on the
//    calling thread after the round completes; remaining indices may be
//    skipped once an exception is pending.
//  - Calls from inside a worker (nested parallelism) run serially on
//    that worker instead of deadlocking on the pool.
#pragma once

#include <cstddef>
#include <exception>
#include <mutex>

namespace san {

/// Number of participating threads when the caller passes `requested`
/// (0 = auto = hardware concurrency, never less than 1).
int resolve_threads(int requested);

class Executor {
 public:
  /// The process-wide pool. Workers are started lazily on the first
  /// parallel round and joined at static destruction.
  static Executor& instance();

  /// An owned pool with the same contract as instance(). Almost all code
  /// should go through instance() (or parallel_for) and share the one
  /// process pool; owned pools exist so shutdown — destruction racing
  /// workers that are still waking from the last posted round — is
  /// testable without tearing down the shared singleton. Destruction
  /// while a for_range on this pool is still running is undefined; join
  /// your callers first.
  Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Type-erased element callback: ctx is the caller's closure.
  using RangeFn = void (*)(void* ctx, long index);

  /// Runs fn(ctx, i) for every i in [begin, end) on up to
  /// resolve_threads(threads) threads (caller included). Blocks until
  /// every index is done; rethrows the first captured exception.
  void for_range(long begin, long end, int threads, void* ctx, RangeFn fn);

  /// Workers currently alive in the pool (grown lazily; they persist for
  /// the process lifetime once started).
  int pool_size() const;

  /// Total parallel rounds dispatched to the pool since process start
  /// (serial fallbacks excluded); exposed so tests can assert the pool
  /// is being reused rather than respawned.
  std::size_t rounds_dispatched() const;

  /// True on any thread currently inside an active round — pool workers
  /// AND the caller while it participates in its own for_range. Nested
  /// for_range calls check this to degrade to serial execution.
  static bool on_worker_thread();

  ~Executor();

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace san
