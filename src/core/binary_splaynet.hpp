// Classic SplayNet (Schmid et al., IEEE/ACM ToN 2015): the binary search
// tree network the paper generalizes and benchmarks against.
//
// Implemented independently of the k-ary machinery (plain left/right/parent
// links, Sleator-Tarjan zig / zig-zig / zig-zag steps) so it can serve both
// as the evaluation baseline and as a cross-check for KArySplayNet at k = 2.
// Node ids double as BST keys — the binary case is routing-based by
// construction.
#pragma once

#include <vector>

#include "core/splaynet.hpp"  // ServeResult
#include "core/types.hpp"

namespace san {

class BinarySplayNet {
 public:
  /// Balanced initial BST over ids 1..n.
  explicit BinarySplayNet(int n);

  /// Serves (u, v): splays u to the lowest common ancestor's position, then
  /// v to a child of u. Routing cost is the pre-adjustment distance; each
  /// zig / zig-zig / zig-zag step counts as one rotation.
  ServeResult serve(NodeId u, NodeId v);

  /// Splays x to the root (splay-tree access; used by static-optimality
  /// tests).
  ServeResult access(NodeId x);

  int size() const { return n_; }
  NodeId root() const { return root_; }
  NodeId parent(NodeId x) const { return parent_[x]; }
  NodeId left(NodeId x) const { return left_[x]; }
  NodeId right(NodeId x) const { return right_[x]; }

  int depth(NodeId x) const;
  int distance(NodeId u, NodeId v) const;
  /// BST lowest common ancestor found by top-down search (u, v in id order).
  NodeId lca(NodeId u, NodeId v) const;

  /// Structural audit: BST order, link symmetry, all nodes reachable.
  bool valid() const;

 private:
  NodeId build_balanced(NodeId lo, NodeId hi, NodeId parent);
  /// Single rotation of x over its parent (no accounting; splay_step
  /// measures the whole step).
  void rotate_up(NodeId x);
  /// One splay step toward `stop` (parent sentinel); returns link changes.
  /// Accounting uses the same before/after snapshot-diff convention as the
  /// k-ary rotation engine (rotation.cpp): a node whose parent changed
  /// *net* over the step counts one parent change plus one edge change per
  /// link removed or added — the transient middle state of a zig-zig /
  /// zig-zag does not double-count. This is what makes the per-request
  /// ServeResults of BinarySplayNet and KArySplayNet(k=2) comparable
  /// (tests/test_differential.cpp).
  RotationResult splay_step(NodeId x, NodeId stop);
  ServeResult splay_until_parent(NodeId x, NodeId stop);

  int n_;
  NodeId root_ = kNoNode;
  std::vector<NodeId> left_, right_, parent_;
};

}  // namespace san
