#include "core/binary_splaynet.hpp"

#include <algorithm>
#include <iterator>

namespace san {

BinarySplayNet::BinarySplayNet(int n) : n_(n) {
  if (n < 1) throw TreeError("BinarySplayNet needs at least one node");
  left_.assign(static_cast<size_t>(n) + 1, kNoNode);
  right_.assign(static_cast<size_t>(n) + 1, kNoNode);
  parent_.assign(static_cast<size_t>(n) + 1, kNoNode);
  root_ = build_balanced(1, n, kNoNode);
}

NodeId BinarySplayNet::build_balanced(NodeId lo, NodeId hi, NodeId parent) {
  if (lo > hi) return kNoNode;
  NodeId mid = lo + (hi - lo) / 2;
  parent_[mid] = parent;
  left_[mid] = build_balanced(lo, mid - 1, mid);
  right_[mid] = build_balanced(mid + 1, hi, mid);
  return mid;
}

int BinarySplayNet::depth(NodeId x) const {
  int d = 0;
  for (NodeId cur = x; parent_[cur] != kNoNode; cur = parent_[cur]) ++d;
  return d;
}

NodeId BinarySplayNet::lca(NodeId u, NodeId v) const {
  NodeId lo = std::min(u, v);
  NodeId hi = std::max(u, v);
  NodeId cur = root_;
  while (cur < lo || cur > hi) cur = (cur > hi) ? left_[cur] : right_[cur];
  return cur;
}

int BinarySplayNet::distance(NodeId u, NodeId v) const {
  // Count the two lca-ward walks directly instead of materializing three
  // full root depths.
  const NodeId w = lca(u, v);
  int d = 0;
  for (NodeId cur = u; cur != w; cur = parent_[cur]) ++d;
  for (NodeId cur = v; cur != w; cur = parent_[cur]) ++d;
  return d;
}

void BinarySplayNet::rotate_up(NodeId x) {
  NodeId p = parent_[x];
  NodeId g = parent_[p];
  NodeId moved_subtree;
  if (left_[p] == x) {  // right rotation
    moved_subtree = right_[x];
    left_[p] = moved_subtree;
    right_[x] = p;
  } else {  // left rotation
    moved_subtree = left_[x];
    right_[p] = moved_subtree;
    left_[x] = p;
  }
  if (moved_subtree != kNoNode) parent_[moved_subtree] = p;
  parent_[p] = x;
  parent_[x] = g;
  if (g == kNoNode) {
    root_ = x;
  } else if (left_[g] == p) {
    left_[g] = x;
  } else {
    right_[g] = x;
  }
}

RotationResult BinarySplayNet::splay_step(NodeId x, NodeId stop) {
  // Snapshot the parents of every node a step can rewire (the protagonists
  // plus the subtrees hanging off x and p), rotate, then diff — the same
  // net-change convention as rotation.cpp's snapshot/diff.
  const NodeId p = parent_[x];
  const NodeId g = parent_[p];
  // x is one of p's children; null that duplicate out so its parent change
  // is counted once.
  const NodeId affected[] = {x,
                             p,
                             g,
                             left_[x],
                             right_[x],
                             left_[p] == x ? kNoNode : left_[p],
                             right_[p] == x ? kNoNode : right_[p]};
  NodeId before[std::size(affected)];
  for (size_t i = 0; i < std::size(affected); ++i)
    before[i] = affected[i] == kNoNode ? kNoNode : parent_[affected[i]];

  if (g == stop) {
    rotate_up(x);  // zig
  } else if ((left_[g] == p) == (left_[p] == x)) {
    rotate_up(p);  // zig-zig: rotate parent first
    rotate_up(x);
  } else {
    rotate_up(x);  // zig-zag: rotate x twice
    rotate_up(x);
  }

  RotationResult res;
  for (size_t i = 0; i < std::size(affected); ++i) {
    if (affected[i] == kNoNode) continue;
    const NodeId now = parent_[affected[i]];
    if (now == before[i]) continue;
    ++res.parent_changes;
    if (before[i] != kNoNode) ++res.edge_changes;  // link removed
    if (now != kNoNode) ++res.edge_changes;        // link added
  }
  return res;
}

ServeResult BinarySplayNet::splay_until_parent(NodeId x, NodeId stop) {
  ServeResult res;
  while (parent_[x] != stop) {
    RotationResult step = splay_step(x, stop);
    ++res.rotations;
    res.parent_changes += step.parent_changes;
    res.edge_changes += step.edge_changes;
  }
  return res;
}

ServeResult BinarySplayNet::serve(NodeId u, NodeId v) {
  ServeResult res;
  if (u == v) return res;
  // One LCA descent serves both the routing cost and the splay stop point
  // (the k-ary side's path_info analogue).
  NodeId w = lca(u, v);
  for (NodeId cur = u; cur != w; cur = parent_[cur]) ++res.routing_cost;
  for (NodeId cur = v; cur != w; cur = parent_[cur]) ++res.routing_cost;
  NodeId stop = parent_[w];
  ServeResult up = splay_until_parent(u, stop);
  ServeResult down = splay_until_parent(v, u);
  res.rotations = up.rotations + down.rotations;
  res.parent_changes = up.parent_changes + down.parent_changes;
  res.edge_changes = up.edge_changes + down.edge_changes;
  return res;
}

ServeResult BinarySplayNet::access(NodeId x) {
  ServeResult res;
  res.routing_cost = depth(x);
  ServeResult splay = splay_until_parent(x, kNoNode);
  res.rotations = splay.rotations;
  res.parent_changes = splay.parent_changes;
  res.edge_changes = splay.edge_changes;
  return res;
}

bool BinarySplayNet::valid() const {
  if (root_ == kNoNode || parent_[root_] != kNoNode) return false;
  int visited = 0;
  struct Frame {
    NodeId id, lo, hi;
  };
  std::vector<Frame> stack = {{root_, 1, static_cast<NodeId>(n_)}};
  while (!stack.empty()) {
    auto [id, lo, hi] = stack.back();
    stack.pop_back();
    if (id < lo || id > hi) return false;
    ++visited;
    if (visited > n_) return false;
    if (left_[id] != kNoNode) {
      if (parent_[left_[id]] != id) return false;
      stack.push_back({left_[id], lo, static_cast<NodeId>(id - 1)});
    }
    if (right_[id] != kNoNode) {
      if (parent_[right_[id]] != id) return false;
      stack.push_back({right_[id], static_cast<NodeId>(id + 1), hi});
    }
  }
  return visited == n_;
}

}  // namespace san
