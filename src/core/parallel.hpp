// Minimal data-parallel helpers (no external dependencies).
//
// The O(n^3 k) demand-aware DP and the benchmark parameter sweeps are
// embarrassingly parallel across independent sub-problems. parallel_for
// is a thin type-erasing shim over the persistent Executor pool
// (core/executor.hpp): callers keep the old fork/join interface but no
// longer pay thread creation on every invocation.
#pragma once

#include <functional>
#include <type_traits>
#include <vector>

#include "core/executor.hpp"

namespace san {

/// Calls fn(i) for i in [begin, end) using `threads` workers (0 = auto).
/// fn must be safe to call concurrently for distinct i. Blocks until
/// done; the first exception thrown by fn is rethrown on the caller.
template <typename Fn>
void parallel_for(long begin, long end, int threads, Fn&& fn) {
  using Decayed = std::remove_reference_t<Fn>;
  Executor::instance().for_range(
      begin, end, threads, const_cast<std::remove_const_t<Decayed>*>(&fn),
      [](void* ctx, long i) { (*static_cast<Decayed*>(ctx))(i); });
}

/// Runs a list of independent tasks on up to `threads` workers.
inline void parallel_tasks(std::vector<std::function<void()>> tasks,
                           int threads) {
  parallel_for(0, static_cast<long>(tasks.size()), threads,
               [&tasks](long i) { tasks[static_cast<size_t>(i)](); });
}

}  // namespace san
