// Minimal data-parallel helpers (no external dependencies).
//
// The O(n^3 k) demand-aware DP and the benchmark parameter sweeps are
// embarrassingly parallel across independent sub-problems; a chunked
// parallel_for over std::thread keeps them within laptop-scale wall-clock
// budgets without pulling in OpenMP.
#pragma once

#include <algorithm>
#include <functional>
#include <thread>
#include <vector>

namespace san {

/// Number of workers to use when the caller passes 0 ("auto").
inline int resolve_threads(int requested) {
  if (requested > 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

/// Calls fn(i) for i in [begin, end) using `threads` workers (0 = auto).
/// fn must be safe to call concurrently for distinct i. Blocks until done.
template <typename Fn>
void parallel_for(long begin, long end, int threads, Fn&& fn) {
  const long count = end - begin;
  if (count <= 0) return;
  const int workers = std::min<long>(resolve_threads(threads), count);
  if (workers <= 1) {
    for (long i = begin; i < end; ++i) fn(i);
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(workers);
  const long chunk = (count + workers - 1) / workers;
  for (int w = 0; w < workers; ++w) {
    const long lo = begin + w * chunk;
    const long hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    pool.emplace_back([lo, hi, &fn] {
      for (long i = lo; i < hi; ++i) fn(i);
    });
  }
  for (std::thread& t : pool) t.join();
}

/// Runs a list of independent tasks on up to `threads` workers.
inline void parallel_tasks(std::vector<std::function<void()>> tasks,
                           int threads) {
  parallel_for(0, static_cast<long>(tasks.size()), threads,
               [&tasks](long i) { tasks[static_cast<size_t>(i)](); });
}

}  // namespace san
