// k-semi-splay and k-splay: the paper's novel rotation operations
// (Section 4.1, Figures 3-6).
//
// Both rotations merge the routing arrays and child slots of the nodes on a
// short root-ward path segment into one alternating element/interval
// sequence (every interval holds at most one subtree), then re-partition it:
// each pushed-down node takes a contiguous *block* of at most k-1 internal
// elements that covers its own identifier, and the splayed node keeps the
// remainder. The paper's two k-splay cases (zig-zag analogue: former parent
// and grandparent become siblings; zig-zig analogue: they nest into a chain)
// emerge from whether the second block swallows the first collapsed
// interval. Node identifiers never move between nodes — only routing keys
// and child links are reshuffled — which is exactly the property that
// distinguishes search-tree *networks* from search-tree data structures.
#pragma once

#include "core/karytree.hpp"
#include "core/types.hpp"

namespace san {

/// How many merged elements a pushed-down node keeps.
enum class BlockSizing {
  kBalanced,   ///< split the merged elements roughly evenly
  kGreedyMax,  ///< paper-literal: exactly k-1 consecutive elements when
               ///< available ("take X and k-1 consecutive routing elements
               ///< covering X")
};

/// Where the block sits relative to the pushed-down node's identifier.
enum class BlockPlacement { kCentered, kLeftmost, kRightmost };

struct RotationPolicy {
  BlockSizing sizing = BlockSizing::kBalanced;
  BlockPlacement placement = BlockPlacement::kCentered;
  /// Enables the paper's case 1 / case 2 distinction (prefer sibling
  /// placement, nest only when forced) and the disjointness of a pushed-
  /// down ancestor's block from the splayed node's former children. Exists
  /// only for the ablation bench: disabling it demonstrably destroys the
  /// amortized balance (depth grows toward linear).
  bool case_preference = true;
};

/// Adjustment bookkeeping for one rotation, matching the Section 2 cost
/// model (edges added or removed) plus the unit-per-rotation convention of
/// the experimental section.
struct RotationResult {
  int parent_changes = 0;  ///< nodes whose parent link changed
  int edge_changes = 0;    ///< links removed + links added
};

/// Generalized zig (paper Fig. 3): makes `x` the parent of its current
/// parent. `x` must not be the root. Preserves the search property, every
/// node identifier, and the subtree node set.
RotationResult k_semi_splay(KAryTree& tree, NodeId x,
                            const RotationPolicy& policy = {});

/// Generalized zig-zig / zig-zag (paper Figs. 4-6): makes `x` the topmost
/// of the {grandparent, parent, x} triple. `x` must have a grandparent.
RotationResult k_splay(KAryTree& tree, NodeId x,
                       const RotationPolicy& policy = {});

}  // namespace san
