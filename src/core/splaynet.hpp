// KArySplayNet: the paper's online self-adjusting k-ary search tree network
// (Section 4.1).
//
// Serving a request (u, v) splays u to the position of the lowest common
// ancestor of u and v and then splays v to become a child of u, using
// k-splay steps (two levels at a time) with a final k-semi-splay when the
// remaining distance is one — the direct generalization of SplayNet's
// double-splay. Routing cost is the u-v distance in the topology *before*
// adjustment (Section 2 model); every k-splay / k-semi-splay counts as one
// rotation (the experimental section's unit-cost convention), and the exact
// links-added-plus-removed adjustment cost is tracked alongside.
#pragma once

#include "core/karytree.hpp"
#include "core/rotation.hpp"
#include "core/shape.hpp"
#include "core/types.hpp"

namespace san {

/// Per-request cost breakdown.
struct ServeResult {
  Cost routing_cost = 0;  ///< path length in the pre-adjustment topology
  int rotations = 0;      ///< k-splay + k-semi-splay steps performed
  int parent_changes = 0;
  int edge_changes = 0;  ///< links added + removed (Section 2 adjustment)

  friend bool operator==(const ServeResult&, const ServeResult&) = default;
};

/// How aggressively the network self-adjusts.
enum class SplayMode {
  /// Full double-splay with k-splay steps (the paper's k-ary SplayNet).
  kFullSplay,
  /// Single-level k-semi-splay steps only: the accessed nodes rise one
  /// level per rotation instead of two. A gentler adjuster in the spirit
  /// of Sleator-Tarjan semi-splaying; evaluated in the ablation bench.
  kSemiSplayOnly,
};

class KArySplayNet {
 public:
  /// Adopts an existing valid topology.
  explicit KArySplayNet(KAryTree initial, RotationPolicy policy = {},
                        SplayMode mode = SplayMode::kFullSplay);

  /// Balanced (complete k-ary) initial topology on n nodes — the standard
  /// demand-oblivious starting network of the evaluation.
  static KArySplayNet balanced(int k, int n, RotationPolicy policy = {},
                               SplayMode mode = SplayMode::kFullSplay);

  /// Serves the communication request (u, v) and self-adjusts.
  ServeResult serve(NodeId u, NodeId v);

  /// Splay-tree access: splays `x` all the way to the root (Theorem 12's
  /// k-ary splay *tree* mode, where every request originates at the root).
  ServeResult access(NodeId x);

  /// Splays `x` upward until its parent is `stop_parent` (kNoNode = until
  /// root). Exposed for CentroidSplayNet, which pins centroid nodes.
  ServeResult splay_until_parent(NodeId x, NodeId stop_parent);

  const KAryTree& tree() const { return tree_; }
  KAryTree& tree_mut() { return tree_; }
  int size() const { return tree_.size(); }
  int arity() const { return tree_.arity(); }
  const RotationPolicy& policy() const { return policy_; }
  SplayMode mode() const { return mode_; }

 private:
  KAryTree tree_;
  RotationPolicy policy_;
  SplayMode mode_;
};

/// (k+1)-SplayNet: the centroid heuristic of Section 4.2 (Figures 7-8).
///
/// Two fixed centroid nodes: c2 plays the centroid of the static
/// construction with k self-adjusting k-ary SplayNet subtrees of size
/// (n-2)/(k+1); c1 hangs above it with k-1 SplayNet subtrees sharing the
/// remaining (n-2)/(k+1) nodes. Subtree membership is permanent and the
/// centroids never rotate; requests inside one subtree are served exactly as
/// in KArySplayNet, requests across subtrees splay both endpoints to their
/// subtree roots and route via u -> c_a (-> c_b) -> v.
class CentroidSplayNet {
 public:
  CentroidSplayNet(int k, int n, RotationPolicy policy = {});

  ServeResult serve(NodeId u, NodeId v);

  const KAryTree& tree() const { return net_.tree(); }
  int size() const { return net_.size(); }
  int arity() const { return net_.arity(); }
  NodeId c1() const { return c1_; }
  NodeId c2() const { return c2_; }
  /// Fixed subtree index of a node: 0..k-2 under c1, k-1..2k-2 under c2,
  /// -1 for the centroids themselves.
  int subtree_of(NodeId id) const { return subtree_idx_[id]; }

 private:
  NodeId centroid_parent(int subtree) const {
    return subtree < arity() - 1 ? c1_ : c2_;
  }

  KArySplayNet net_;
  NodeId c1_ = kNoNode;
  NodeId c2_ = kNoNode;
  std::vector<int> subtree_idx_;
};

}  // namespace san
