// Topology (de)serialization and Graphviz export.
//
// san-tree v1 format: header `san-tree v1 <k> <n> <root>`, then one line
// per node: `<id> <lo> <hi> <num_keys> <key...> <child...>` with
// children = num_keys + 1 slots (0 = empty). Ranges use the sentinel
// encoding "min"/"max" for kKeyMin/kKeyMax. Loaded trees are validated
// before being returned, so a stored file can be trusted as a topology
// checkpoint (e.g. to resume a long self-adjustment run).
#pragma once

#include <iosfwd>
#include <string>

#include "core/karytree.hpp"

namespace san {

void write_tree(std::ostream& out, const KAryTree& tree);
void write_tree_file(const std::string& path, const KAryTree& tree);

/// Parses and validates a san-tree v1 stream; throws TreeError on
/// malformed input or an invalid topology.
KAryTree read_tree(std::istream& in);
KAryTree read_tree_file(const std::string& path);

/// Graphviz dot rendering: nodes labelled "id [keys]", edges parent->child
/// annotated with the child's interval. Empty slots are omitted.
std::string to_dot(const KAryTree& tree, const std::string& graph_name = "san");

}  // namespace san
