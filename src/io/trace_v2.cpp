#include "io/trace_v2.hpp"

#include <algorithm>
#include <cstring>
#include <istream>
#include <limits>
#include <ostream>
#include <vector>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "core/types.hpp"

namespace san {
namespace {

void store_u32le(unsigned char* p, std::uint32_t v) {
  p[0] = static_cast<unsigned char>(v);
  p[1] = static_cast<unsigned char>(v >> 8);
  p[2] = static_cast<unsigned char>(v >> 16);
  p[3] = static_cast<unsigned char>(v >> 24);
}

void store_u64le(unsigned char* p, std::uint64_t v) {
  store_u32le(p, static_cast<std::uint32_t>(v));
  store_u32le(p + 4, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t load_u32le(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t load_u64le(const unsigned char* p) {
  return static_cast<std::uint64_t>(load_u32le(p)) |
         (static_cast<std::uint64_t>(load_u32le(p + 4)) << 32);
}

void encode_header(unsigned char* hdr, int n, std::uint64_t m) {
  std::memcpy(hdr, kTraceV2Magic, sizeof(kTraceV2Magic));
  store_u32le(hdr + 8, static_cast<std::uint32_t>(n));
  store_u32le(hdr + 12, kTraceV2FlagChecksum);
  store_u64le(hdr + 16, m);
}

void check_node_count(long long n) {
  if (n < 2) throw TreeError("trace v2: node count must be >= 2");
  if (n > std::numeric_limits<NodeId>::max())
    throw TreeError("trace v2: node count " + std::to_string(n) +
                    " exceeds the NodeId range");
}

/// Records per buffered read in the istream backend: 64 KiB chunks keep
/// the reader's footprint O(1) in m while amortizing stream overhead.
constexpr std::size_t kReadChunkRecords = 8192;

}  // namespace

void write_trace_v2(std::ostream& out, const Trace& trace) {
  TraceV2Writer writer(out, trace.n, trace.size());
  for (const Request& r : trace.requests) writer.append(r);
  writer.finish();
}

void write_trace_v2_file(const std::string& path, const Trace& trace) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw TreeError("write_trace_v2_file: cannot open " + path);
  write_trace_v2(out, trace);
}

TraceV2Writer::TraceV2Writer(std::ostream& out, int n, std::uint64_t m)
    : out_(&out), n_(n), want_(m) {
  check_node_count(n);
  unsigned char hdr[kTraceV2HeaderBytes];
  encode_header(hdr, n_, want_);
  out_->write(reinterpret_cast<const char*>(hdr), sizeof(hdr));
  if (!*out_) throw TreeError("TraceV2Writer: header write failure");
  crc_.update(hdr, sizeof(hdr));
}

void TraceV2Writer::append(const Request& r) {
  if (finished_) throw TreeError("TraceV2Writer: append after finish");
  if (written_ >= want_)
    throw TreeError("TraceV2Writer: more records than the declared m=" +
                    std::to_string(want_));
  if (r.src < 1 || r.src > n_ || r.dst < 1 || r.dst > n_)
    throw TreeError("TraceV2Writer: node id out of range");
  if (r.src == r.dst) throw TreeError("TraceV2Writer: self-loop request");
  unsigned char rec[kTraceV2RecordBytes];
  store_u32le(rec, static_cast<std::uint32_t>(r.src));
  store_u32le(rec + 4, static_cast<std::uint32_t>(r.dst));
  out_->write(reinterpret_cast<const char*>(rec), sizeof(rec));
  if (!*out_) throw TreeError("TraceV2Writer: record write failure");
  crc_.update(rec, sizeof(rec));
  ++written_;
}

void TraceV2Writer::finish() {
  if (finished_) return;
  if (written_ != want_)
    throw TreeError("TraceV2Writer: wrote " + std::to_string(written_) +
                    " records but the header declared " +
                    std::to_string(want_));
  unsigned char footer[kTraceV2FooterBytes];
  std::memcpy(footer, kTraceV2FooterMagic, sizeof(kTraceV2FooterMagic));
  store_u32le(footer + 4, crc_.value());
  out_->write(reinterpret_cast<const char*>(footer), sizeof(footer));
  out_->flush();
  if (!*out_) throw TreeError("TraceV2Writer: flush failure");
  finished_ = true;
}

void write_stream_v2_file(const std::string& path, RequestStream& stream) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw TreeError("write_stream_v2_file: cannot open " + path);
  TraceV2Writer writer(out, stream.n(), stream.size());
  std::vector<Request> chunk(kReadChunkRecords);
  while (true) {
    const std::size_t got = stream.fill(chunk);
    if (got == 0) break;
    for (std::size_t i = 0; i < got; ++i) writer.append(chunk[i]);
  }
  writer.finish();
}

void TraceV2Reader::parse_header(const unsigned char* hdr) {
  if (std::memcmp(hdr, kTraceV2Magic, sizeof(kTraceV2Magic)) != 0)
    throw TreeError("trace v2: bad magic (not a santrcv2 file)");
  const std::uint32_t n = load_u32le(hdr + 8);
  const std::uint32_t flags = load_u32le(hdr + 12);
  if ((flags & ~kTraceV2FlagChecksum) != 0)
    throw TreeError("trace v2: unknown flags 0x" + std::to_string(flags) +
                    " (newer format revision?)");
  has_footer_ = (flags & kTraceV2FlagChecksum) != 0;
  check_node_count(static_cast<long long>(n));
  n_ = static_cast<int>(n);
  m_ = load_u64le(hdr + 16);
  // A fixed-width format cannot hide records: a header whose m does not
  // fit any real file (m * 8 overflowing off_t) is hostile by definition.
  if (m_ > (std::numeric_limits<std::uint64_t>::max() - kTraceV2HeaderBytes -
            kTraceV2FooterBytes) /
               kTraceV2RecordBytes)
    throw TreeError("trace v2: record count overflows the format");
  crc_.update(hdr, kTraceV2HeaderBytes);
}

void TraceV2Reader::maybe_verify_footer() {
  if (!has_footer_ || footer_checked_ || next_ != m_) return;
  footer_checked_ = true;
  unsigned char footer[kTraceV2FooterBytes];
  if (map_) {
    std::memcpy(footer, map_ + kTraceV2HeaderBytes + m_ * kTraceV2RecordBytes,
                sizeof(footer));
  } else {
    in_->read(reinterpret_cast<char*>(footer),
              static_cast<std::streamsize>(sizeof(footer)));
    if (in_->gcount() != static_cast<std::streamsize>(sizeof(footer)))
      throw TreeError("trace v2: truncated checksum footer");
  }
  if (std::memcmp(footer, kTraceV2FooterMagic, sizeof(kTraceV2FooterMagic)) !=
      0)
    throw TreeError("trace v2: corrupt checksum footer (bad footer magic)");
  const std::uint32_t want = load_u32le(footer + 4);
  if (want != crc_.value())
    throw TreeError(
        "trace v2: checksum mismatch (torn or bit-flipped artifact)");
}

TraceV2Reader::TraceV2Reader(std::istream& in) : in_(&in) {
  unsigned char hdr[kTraceV2HeaderBytes];
  in_->read(reinterpret_cast<char*>(hdr), sizeof(hdr));
  if (in_->gcount() != static_cast<std::streamsize>(sizeof(hdr)))
    throw TreeError("trace v2: truncated header");
  parse_header(hdr);
  maybe_verify_footer();  // m == 0: the footer is all there is to check
}

TraceV2Reader::TraceV2Reader(const std::string& path, Backend backend) {
  if (backend == Backend::kIstream) {
    file_.open(path, std::ios::binary | std::ios::ate);
    if (!file_) throw TreeError("TraceV2Reader: cannot open " + path);
    const std::uint64_t len = static_cast<std::uint64_t>(file_.tellg());
    file_.seekg(0);
    in_ = &file_;
    unsigned char hdr[kTraceV2HeaderBytes];
    in_->read(reinterpret_cast<char*>(hdr), sizeof(hdr));
    if (in_->gcount() != static_cast<std::streamsize>(sizeof(hdr)))
      throw TreeError("trace v2: truncated header");
    parse_header(hdr);
    // The file size is knowable here, so check it against the header the
    // same way the mmap backend does.
    if (len != kTraceV2HeaderBytes + m_ * kTraceV2RecordBytes +
                   (has_footer_ ? kTraceV2FooterBytes : 0))
      throw TreeError("trace v2: file size does not match the header (" +
                      std::to_string(len) + " bytes for m=" +
                      std::to_string(m_) + ")");
    maybe_verify_footer();
    return;
  }

  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw TreeError("TraceV2Reader: cannot open " + path);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw TreeError("TraceV2Reader: fstat failed for " + path);
  }
  const std::size_t len = static_cast<std::size_t>(st.st_size);
  if (len < kTraceV2HeaderBytes) {
    ::close(fd);
    throw TreeError("trace v2: truncated header");
  }
  void* map = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps the file alive
  if (map == MAP_FAILED)
    throw TreeError("TraceV2Reader: mmap failed for " + path);
  map_ = static_cast<const unsigned char*>(map);
  map_len_ = len;
  try {
    parse_header(map_);
    // The mapping is the whole file, so the size coherence check is exact:
    // a header claiming records the file does not hold is rejected up
    // front, not discovered as a fault mid-replay.
    if (map_len_ != kTraceV2HeaderBytes + m_ * kTraceV2RecordBytes +
                        (has_footer_ ? kTraceV2FooterBytes : 0))
      throw TreeError("trace v2: file size does not match the header (" +
                      std::to_string(map_len_) + " bytes for m=" +
                      std::to_string(m_) + ")");
    maybe_verify_footer();
  } catch (...) {
    ::munmap(const_cast<unsigned char*>(map_), map_len_);
    map_ = nullptr;
    throw;
  }
  ::madvise(const_cast<unsigned char*>(map_), map_len_, MADV_SEQUENTIAL);
}

TraceV2Reader::~TraceV2Reader() {
  if (map_) ::munmap(const_cast<unsigned char*>(map_), map_len_);
}

std::size_t TraceV2Reader::fill_from_bytes(const unsigned char* bytes,
                                           std::size_t records,
                                           std::span<Request> out) {
  if (has_footer_) crc_.update(bytes, records * kTraceV2RecordBytes);
  for (std::size_t i = 0; i < records; ++i) {
    const std::uint32_t src = load_u32le(bytes + i * kTraceV2RecordBytes);
    const std::uint32_t dst = load_u32le(bytes + i * kTraceV2RecordBytes + 4);
    if (src < 1 || src > static_cast<std::uint32_t>(n_) || dst < 1 ||
        dst > static_cast<std::uint32_t>(n_))
      throw TreeError("trace v2: node id out of range in record " +
                      std::to_string(next_ + i));
    if (src == dst)
      throw TreeError("trace v2: self-loop request in record " +
                      std::to_string(next_ + i));
    out[i] = {static_cast<NodeId>(src), static_cast<NodeId>(dst)};
  }
  return records;
}

std::size_t TraceV2Reader::fill(std::span<Request> out) {
  const std::uint64_t left = m_ - next_;
  std::size_t want = static_cast<std::size_t>(
      std::min<std::uint64_t>(left, out.size()));
  if (want == 0) return 0;

  if (map_) {
    const unsigned char* bytes =
        map_ + kTraceV2HeaderBytes + next_ * kTraceV2RecordBytes;
    fill_from_bytes(bytes, want, out);
    next_ += want;
    maybe_verify_footer();
    return want;
  }

  want = std::min(want, kReadChunkRecords);
  std::vector<unsigned char> buf(want * kTraceV2RecordBytes);
  in_->read(reinterpret_cast<char*>(buf.data()),
            static_cast<std::streamsize>(buf.size()));
  const std::size_t got_bytes = static_cast<std::size_t>(in_->gcount());
  if (got_bytes != buf.size())
    throw TreeError("trace v2: truncated body (header declared m=" +
                    std::to_string(m_) + ", file ends at record " +
                    std::to_string(next_ + got_bytes / kTraceV2RecordBytes) +
                    ")");
  fill_from_bytes(buf.data(), want, out);
  next_ += want;
  maybe_verify_footer();
  return want;
}

Trace read_trace_v2_file(const std::string& path,
                         TraceV2Reader::Backend backend) {
  TraceV2Reader reader(path, backend);
  return materialize_stream(reader);
}

}  // namespace san
