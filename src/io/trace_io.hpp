// Trace (de)serialization so that real datacenter traces — the inputs the
// paper evaluates on — can be fed into the simulator, and synthetic traces
// can be archived for reproducibility.
//
// Format ("san-trace v1"): a one-line header `san-trace v1 <n> <m>`
// followed by m lines of `src dst` (1-based node ids). Whitespace
// separated; lines starting with '#' are comments.
#pragma once

#include <iosfwd>
#include <string>

#include "workload/request.hpp"

namespace san {

/// Writes `trace` in san-trace v1 format. Throws TreeError on I/O failure.
void write_trace(std::ostream& out, const Trace& trace);
void write_trace_file(const std::string& path, const Trace& trace);

/// Parses a san-trace v1 stream. Throws TreeError on malformed input:
/// bad header (including negative or NodeId-overflowing counts),
/// out-of-range node ids, self-loops, truncated body. The header's m is
/// used as an exact reserve() hint, capped so a hostile header cannot
/// force an allocation larger than the data actually supplied.
Trace read_trace(std::istream& in);
Trace read_trace_file(const std::string& path);

}  // namespace san
