// Binary trace format v2: fixed-width little-endian records behind a
// self-describing header, replayable in O(chunk) memory.
//
// The v1 text format (io/trace_io.hpp) is human-editable but costs ~12
// bytes of ASCII plus a parse per request and can only be materialized.
// v2 is the streaming companion:
//
//   offset  size  field
//   0       8     magic "santrcv2"
//   8       4     u32 LE  n        (node count, ids 1..n)
//   12      4     u32 LE  flags    (bit 0 = checksum footer present;
//                                   readers reject any other bit)
//   16      8     u64 LE  m        (record count)
//   24      8*m   records: u32 LE src, u32 LE dst
//   [end]   8     footer (flag bit 0): magic "scrc" + u32 LE CRC32 over
//                 every preceding byte (header + records)
//
// All integers are little-endian regardless of host byte order (encoded
// and decoded byte-wise, no type punning). TraceV2Reader implements
// workload/streaming.hpp's RequestStream, so a file replays through
// run_trace_stream / run_trace_sharded_stream / ServeFrontend without ever
// holding more than one chunk of requests; the mmap backend additionally
// avoids read syscalls and lets the page cache back the replay directly.
// Readers validate the header hard (magic, version bits, node range,
// record-count-vs-file-size coherence where the size is knowable) and
// every record (ids in [1, n], no self-loops): a corrupt or hostile file
// throws TreeError, it never yields garbage requests.
//
// Integrity: writers always emit the CRC32 footer (flag bit 0 set).
// Readers still accept flag-free legacy files; when the flag is set the
// CRC is folded incrementally as chunks stream through fill() and
// verified once the last record has been consumed, so a bit flip anywhere
// in the artifact — including the header fields the size checks trust —
// raises TreeError no later than end of replay, with zero extra passes
// over the data.
#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <iosfwd>
#include <string>

#include "io/checksum.hpp"
#include "workload/streaming.hpp"

namespace san {

inline constexpr char kTraceV2Magic[8] = {'s', 'a', 'n', 't',
                                          'r', 'c', 'v', '2'};
inline constexpr std::size_t kTraceV2HeaderBytes = 24;
inline constexpr std::size_t kTraceV2RecordBytes = 8;
/// Header flag bit 0: the file ends in a kTraceV2FooterBytes integrity
/// footer ("scrc" + u32 LE CRC32 of header + records).
inline constexpr std::uint32_t kTraceV2FlagChecksum = 0x1;
inline constexpr char kTraceV2FooterMagic[4] = {'s', 'c', 'r', 'c'};
inline constexpr std::size_t kTraceV2FooterBytes = 8;

/// Streams a Trace out in v2 format. Throws TreeError on stream failure.
void write_trace_v2(std::ostream& out, const Trace& trace);
void write_trace_v2_file(const std::string& path, const Trace& trace);

/// Incremental v2 writer for sources that never materialize: header first
/// (n and m must be known up front — the format is fixed-width, so m is
/// not discoverable later), then append() per request, then finish(),
/// which seals the file with the CRC32 integrity footer.
class TraceV2Writer {
 public:
  TraceV2Writer(std::ostream& out, int n, std::uint64_t m);

  /// Validates ids ([1, n], no self-loop) and writes one record.
  void append(const Request& r);
  /// Writes the checksum footer, flushes, and verifies exactly m records
  /// were appended.
  void finish();

 private:
  std::ostream* out_;
  int n_ = 0;
  std::uint64_t want_ = 0;
  std::uint64_t written_ = 0;
  bool finished_ = false;
  Crc32 crc_;
};

/// Drains any RequestStream to a v2 file in O(chunk) memory. Composing
/// this with TraceStream gives the materialized converter; composing with
/// read_trace's result converts v1 text to v2 binary.
void write_stream_v2_file(const std::string& path, RequestStream& stream);

/// Chunked v2 reader; a RequestStream over the file.
class TraceV2Reader final : public RequestStream {
 public:
  enum class Backend {
    kIstream,  ///< buffered reads from any std::istream
    kMmap,     ///< read-only file mapping (POSIX); zero-copy decode
  };

  /// Borrowed-stream reader (header parsed and validated immediately).
  /// The stream must outlive the reader.
  explicit TraceV2Reader(std::istream& in);
  /// File reader with the chosen backend.
  TraceV2Reader(const std::string& path, Backend backend);

  TraceV2Reader(const TraceV2Reader&) = delete;
  TraceV2Reader& operator=(const TraceV2Reader&) = delete;
  ~TraceV2Reader() override;

  int n() const override { return n_; }
  std::size_t size() const override { return static_cast<std::size_t>(m_); }
  std::size_t fill(std::span<Request> out) override;

 private:
  void parse_header(const unsigned char* hdr);
  std::size_t fill_from_bytes(const unsigned char* bytes, std::size_t records,
                              std::span<Request> out);
  /// Checks the integrity footer once every record has been consumed
  /// (no-op for legacy flag-free files or before the stream's end).
  void maybe_verify_footer();

  int n_ = 0;
  std::uint64_t m_ = 0;
  std::uint64_t next_ = 0;  ///< records consumed
  bool has_footer_ = false;
  bool footer_checked_ = false;
  Crc32 crc_;  ///< folded over header + records as they stream through

  std::istream* in_ = nullptr;  ///< borrowed or &file_
  std::ifstream file_;

  const unsigned char* map_ = nullptr;  ///< mmap backend
  std::size_t map_len_ = 0;
};

/// Materializes a whole v2 file (testing / small-scale convenience).
Trace read_trace_v2_file(const std::string& path,
                         TraceV2Reader::Backend backend =
                             TraceV2Reader::Backend::kIstream);

}  // namespace san
