#include "io/checksum.hpp"

#include <array>

namespace san {
namespace {

/// Byte-at-a-time table for the reflected IEEE polynomial, built once at
/// static-init time. Plenty for footer verification: the checksum pass is
/// bounded by I/O, not by the table walk.
std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit)
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    table[i] = c;
  }
  return table;
}

const std::array<std::uint32_t, 256> kTable = make_table();

}  // namespace

void Crc32::update(const void* data, std::size_t len) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = state_;
  for (std::size_t i = 0; i < len; ++i)
    c = kTable[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  state_ = c;
}

std::uint32_t crc32(const void* data, std::size_t len) {
  Crc32 c;
  c.update(data, len);
  return c.value();
}

}  // namespace san
