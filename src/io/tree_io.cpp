#include "io/tree_io.hpp"

#include <fstream>
#include <sstream>

namespace san {
namespace {

std::string encode_key(RoutingKey k) {
  if (k == kKeyMin) return "min";
  if (k == kKeyMax) return "max";
  return std::to_string(k);
}

RoutingKey decode_key(const std::string& s) {
  if (s == "min") return kKeyMin;
  if (s == "max") return kKeyMax;
  try {
    return static_cast<RoutingKey>(std::stoll(s));
  } catch (const std::exception&) {
    // stoll throws std::invalid_argument / out_of_range; surface hostile
    // bytes as the library's own error type like every other load failure.
    throw TreeError("read_tree: malformed routing key '" + s + "'");
  }
}

// Hard caps on header-claimed sizes, in the spirit of trace_io's
// kMaxHeaderReserve: a hostile or truncated header must not be able to
// drive allocation before a single node record has been checked. 2^24
// nodes is an order of magnitude past the n = 10^6 scaling runs; arity is
// structural (tens, not thousands).
constexpr long long kMaxTreeNodes = 1 << 24;
constexpr long long kMaxTreeArity = 1 << 16;

}  // namespace

void write_tree(std::ostream& out, const KAryTree& tree) {
  out << "san-tree v1 " << tree.arity() << " " << tree.size() << " "
      << tree.root() << "\n";
  for (NodeId id = 1; id <= tree.size(); ++id) {
    const TreeNode& nd = tree.node(id);
    out << id << " " << encode_key(nd.lo) << " " << encode_key(nd.hi) << " "
        << nd.keys.size();
    for (RoutingKey k : nd.keys) out << " " << k;
    for (NodeId c : nd.children) out << " " << c;
    out << "\n";
  }
  if (!out) throw TreeError("write_tree: stream failure");
}

void write_tree_file(const std::string& path, const KAryTree& tree) {
  std::ofstream out(path);
  if (!out) throw TreeError("write_tree_file: cannot open " + path);
  write_tree(out, tree);
}

KAryTree read_tree(std::istream& in) {
  std::string magic, version;
  long long k = 0, n = 0, root_v = 0;
  if (!(in >> magic >> version >> k >> n >> root_v) || magic != "san-tree" ||
      version != "v1")
    throw TreeError("read_tree: bad header (expected 'san-tree v1 k n root')");
  // Bound everything the header claims *before* allocating on its word —
  // a corrupt or hostile header is an error message, not an OOM.
  if (k < 2 || k > kMaxTreeArity)
    throw TreeError("read_tree: arity " + std::to_string(k) +
                    " out of range [2, " + std::to_string(kMaxTreeArity) +
                    "]");
  if (n < 0 || n > kMaxTreeNodes)
    throw TreeError("read_tree: node count " + std::to_string(n) +
                    " out of range [0, " + std::to_string(kMaxTreeNodes) +
                    "]");
  if (n == 0 ? root_v != static_cast<long long>(kNoNode)
             : (root_v < 1 || root_v > n))
    throw TreeError("read_tree: root " + std::to_string(root_v) +
                    " out of range for n=" + std::to_string(n));
  const NodeId root = static_cast<NodeId>(root_v);
  KAryTree tree(static_cast<int>(k), static_cast<int>(n));
  std::vector<char> seen(static_cast<std::size_t>(n) + 1, 0);
  for (long long i = 0; i < n; ++i) {
    long long id = 0;
    std::string lo_s, hi_s;
    long long num_keys = 0;
    if (!(in >> id >> lo_s >> hi_s >> num_keys))
      throw TreeError("read_tree: truncated node record");
    if (id < 1 || id > n) throw TreeError("read_tree: node id out of range");
    if (seen[static_cast<std::size_t>(id)])
      throw TreeError("read_tree: duplicate node id " + std::to_string(id));
    seen[static_cast<std::size_t>(id)] = 1;
    // A node routes over at most k - 1 keys; checked before the
    // allocation so a forged count cannot reserve unbounded memory.
    if (num_keys < 0 || num_keys > k - 1)
      throw TreeError("read_tree: node " + std::to_string(id) + " claims " +
                      std::to_string(num_keys) + " keys (arity " +
                      std::to_string(k) + " allows at most " +
                      std::to_string(k - 1) + ")");
    std::vector<RoutingKey> keys(static_cast<std::size_t>(num_keys));
    for (RoutingKey& key : keys) {
      std::string s;
      if (!(in >> s)) throw TreeError("read_tree: truncated key list");
      key = decode_key(s);
    }
    std::vector<NodeId> children(static_cast<std::size_t>(num_keys) + 1);
    for (NodeId& c : children) {
      long v = 0;
      if (!(in >> v)) throw TreeError("read_tree: truncated child list");
      if (v < 0 || v > n) throw TreeError("read_tree: child id out of range");
      c = static_cast<NodeId>(v);
    }
    tree.install(static_cast<NodeId>(id), std::move(keys),
                 std::move(children), decode_key(lo_s), decode_key(hi_s));
  }
  tree.set_root(root);
  if (auto err = tree.validate())
    throw TreeError("read_tree: loaded topology invalid: " + *err);
  return tree;
}

KAryTree read_tree_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw TreeError("read_tree_file: cannot open " + path);
  return read_tree(in);
}

std::string to_dot(const KAryTree& tree, const std::string& graph_name) {
  std::ostringstream out;
  out << "digraph " << graph_name << " {\n";
  out << "  node [shape=record];\n";
  for (NodeId id = 1; id <= tree.size(); ++id) {
    const TreeNode& nd = tree.node(id);
    out << "  n" << id << " [label=\"" << id << " |";
    for (size_t i = 0; i < nd.keys.size(); ++i)
      out << (i ? " " : " ") << nd.keys[i];
    out << "\"];\n";
    for (size_t s = 0; s < nd.children.size(); ++s) {
      if (nd.children[s] == kNoNode) continue;
      out << "  n" << id << " -> n" << nd.children[s] << " [label=\"slot "
          << s << "\"];\n";
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace san
