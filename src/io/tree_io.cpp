#include "io/tree_io.hpp"

#include <fstream>
#include <sstream>

namespace san {
namespace {

std::string encode_key(RoutingKey k) {
  if (k == kKeyMin) return "min";
  if (k == kKeyMax) return "max";
  return std::to_string(k);
}

RoutingKey decode_key(const std::string& s) {
  if (s == "min") return kKeyMin;
  if (s == "max") return kKeyMax;
  return static_cast<RoutingKey>(std::stoll(s));
}

}  // namespace

void write_tree(std::ostream& out, const KAryTree& tree) {
  out << "san-tree v1 " << tree.arity() << " " << tree.size() << " "
      << tree.root() << "\n";
  for (NodeId id = 1; id <= tree.size(); ++id) {
    const TreeNode& nd = tree.node(id);
    out << id << " " << encode_key(nd.lo) << " " << encode_key(nd.hi) << " "
        << nd.keys.size();
    for (RoutingKey k : nd.keys) out << " " << k;
    for (NodeId c : nd.children) out << " " << c;
    out << "\n";
  }
  if (!out) throw TreeError("write_tree: stream failure");
}

void write_tree_file(const std::string& path, const KAryTree& tree) {
  std::ofstream out(path);
  if (!out) throw TreeError("write_tree_file: cannot open " + path);
  write_tree(out, tree);
}

KAryTree read_tree(std::istream& in) {
  std::string magic, version;
  int k = 0, n = 0;
  NodeId root = kNoNode;
  if (!(in >> magic >> version >> k >> n >> root) || magic != "san-tree" ||
      version != "v1")
    throw TreeError("read_tree: bad header (expected 'san-tree v1 k n root')");
  KAryTree tree(k, n);
  for (int i = 0; i < n; ++i) {
    long id = 0;
    std::string lo_s, hi_s;
    size_t num_keys = 0;
    if (!(in >> id >> lo_s >> hi_s >> num_keys))
      throw TreeError("read_tree: truncated node record");
    if (id < 1 || id > n) throw TreeError("read_tree: node id out of range");
    std::vector<RoutingKey> keys(num_keys);
    for (RoutingKey& key : keys) {
      std::string s;
      if (!(in >> s)) throw TreeError("read_tree: truncated key list");
      key = decode_key(s);
    }
    std::vector<NodeId> children(num_keys + 1);
    for (NodeId& c : children) {
      long v = 0;
      if (!(in >> v)) throw TreeError("read_tree: truncated child list");
      if (v < 0 || v > n) throw TreeError("read_tree: child id out of range");
      c = static_cast<NodeId>(v);
    }
    tree.install(static_cast<NodeId>(id), std::move(keys),
                 std::move(children), decode_key(lo_s), decode_key(hi_s));
  }
  tree.set_root(root);
  if (auto err = tree.validate())
    throw TreeError("read_tree: loaded topology invalid: " + *err);
  return tree;
}

KAryTree read_tree_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw TreeError("read_tree_file: cannot open " + path);
  return read_tree(in);
}

std::string to_dot(const KAryTree& tree, const std::string& graph_name) {
  std::ostringstream out;
  out << "digraph " << graph_name << " {\n";
  out << "  node [shape=record];\n";
  for (NodeId id = 1; id <= tree.size(); ++id) {
    const TreeNode& nd = tree.node(id);
    out << "  n" << id << " [label=\"" << id << " |";
    for (size_t i = 0; i < nd.keys.size(); ++i)
      out << (i ? " " : " ") << nd.keys[i];
    out << "\"];\n";
    for (size_t s = 0; s < nd.children.size(); ++s) {
      if (nd.children[s] == kNoNode) continue;
      out << "  n" << id << " -> n" << nd.children[s] << " [label=\"slot "
          << s << "\"];\n";
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace san
