#include "io/trace_io.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "core/types.hpp"

namespace san {

void write_trace(std::ostream& out, const Trace& trace) {
  out << "san-trace v1 " << trace.n << " " << trace.size() << "\n";
  for (const Request& r : trace.requests) out << r.src << " " << r.dst << "\n";
  if (!out) throw TreeError("write_trace: stream failure");
}

void write_trace_file(const std::string& path, const Trace& trace) {
  std::ofstream out(path);
  if (!out) throw TreeError("write_trace_file: cannot open " + path);
  write_trace(out, trace);
}

Trace read_trace(std::istream& in) {
  // Parse the counts as signed 64-bit: streaming "-5" into a size_t
  // silently wraps to a huge value, which the reserve() below would turn
  // into an allocation bomb.
  std::string magic, version;
  long long n = 0;
  long long m = 0;
  if (!(in >> magic >> version >> n >> m) || magic != "san-trace" ||
      version != "v1")
    throw TreeError("read_trace: bad header (expected 'san-trace v1 n m')");
  if (n < 2) throw TreeError("read_trace: node count must be >= 2");
  if (n > std::numeric_limits<NodeId>::max())
    throw TreeError("read_trace: node count " + std::to_string(n) +
                    " exceeds the NodeId range");
  if (m < 0)
    throw TreeError("read_trace: negative request count in header");

  Trace trace;
  trace.n = static_cast<int>(n);
  // The header's m is the size hint for a single exact allocation; an
  // absurd claim (hostile or corrupt header) is capped so memory stays
  // proportional to data actually present — the body loop still enforces
  // that exactly m requests arrive.
  constexpr long long kMaxHeaderReserve = 1 << 20;  // covers the paper's 10^6
  trace.requests.reserve(
      static_cast<std::size_t>(std::min(m, kMaxHeaderReserve)));
  const std::size_t want = static_cast<std::size_t>(m);
  std::string line;
  std::getline(in, line);  // finish header line
  while (trace.requests.size() < want && std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    long long src = 0, dst = 0;
    if (!(ls >> src >> dst))
      throw TreeError("read_trace: malformed request line: " + line);
    // Reject residual non-whitespace: "1 2 junk" is a corrupt record, not
    // a request (1, 2) — silently dropping the tail would mask truncated
    // or column-shifted files.
    std::string rest;
    if (ls >> rest)
      throw TreeError("read_trace: trailing garbage on request line: " + line);
    if (src < 1 || src > n || dst < 1 || dst > n)
      throw TreeError("read_trace: node id out of range in: " + line);
    if (src == dst)
      throw TreeError("read_trace: self-loop request in: " + line);
    trace.requests.push_back(
        {static_cast<NodeId>(src), static_cast<NodeId>(dst)});
  }
  if (trace.requests.size() != want)
    throw TreeError("read_trace: truncated body (expected " +
                    std::to_string(m) + " requests, got " +
                    std::to_string(trace.requests.size()) + ")");
  return trace;
}

Trace read_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw TreeError("read_trace_file: cannot open " + path);
  return read_trace(in);
}

}  // namespace san
