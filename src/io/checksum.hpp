// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320) for artifact
// integrity footers: trace-v2 files and shard snapshots carry a checksum
// over everything that precedes it, so a torn write or a flipped bit is
// rejected with a clear error instead of replaying garbage. Implemented
// in-repo (no external hashing dependency); the incremental interface
// lets streaming readers fold chunk after chunk without buffering the
// artifact.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace san {

/// Incremental CRC32. Feed bytes in any chunking; `value()` finalizes
/// without consuming state, so it can be read mid-stream.
class Crc32 {
 public:
  void update(const void* data, std::size_t len);
  void update(std::string_view s) { update(s.data(), s.size()); }

  /// Final (bit-inverted) CRC of everything fed so far.
  std::uint32_t value() const { return state_ ^ 0xFFFFFFFFu; }

  void reset() { state_ = 0xFFFFFFFFu; }

 private:
  std::uint32_t state_ = 0xFFFFFFFFu;
};

/// One-shot convenience over a contiguous buffer.
std::uint32_t crc32(const void* data, std::size_t len);
inline std::uint32_t crc32(std::string_view s) {
  return crc32(s.data(), s.size());
}

}  // namespace san
