// Streaming request plane: generate, read and replay traces in O(chunk)
// memory instead of materializing all m requests.
//
// A materialized Trace at the paper's scale is cheap (10^6 requests = 8
// MB), but the n >= 10^6 / m >= 10^8 envelope the streaming pipeline
// targets would cost ~1 GB per trace copy. This header provides:
//   * RequestGen — a C++20 coroutine generator of requests. The workload
//     generator bodies (generators.cpp) are written as coroutines; the
//     classic gen_* functions are thin materializers over them, so the
//     streamed and materialized sequences are bit-identical by
//     construction (one source of truth, not two implementations).
//   * RequestStream — the pull interface the simulator, the sharded
//     runner and the serving frontend consume (sim/simulator.hpp:
//     run_trace_stream and friends). Implementations: StreamingWorkload
//     (on-demand synthetic workloads), TraceStream (adapter over a
//     materialized Trace — this is how the Trace& entry points keep their
//     exact behavior), and io/trace_v2.hpp's TraceV2Reader (binary files).
#pragma once

#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <span>
#include <utility>

#include "workload/generators.hpp"
#include "workload/request.hpp"

namespace san {

/// Move-only coroutine generator of Requests.
class RequestGen {
 public:
  struct promise_type {
    Request current{};
    std::exception_ptr error;

    RequestGen get_return_object() {
      return RequestGen(Handle::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    std::suspend_always yield_value(Request r) noexcept {
      current = r;
      return {};
    }
    void return_void() noexcept {}
    void unhandled_exception() { error = std::current_exception(); }
  };
  using Handle = std::coroutine_handle<promise_type>;

  RequestGen() = default;
  explicit RequestGen(Handle h) : h_(h) {}
  RequestGen(RequestGen&& other) noexcept
      : h_(std::exchange(other.h_, {})) {}
  RequestGen& operator=(RequestGen&& other) noexcept {
    if (this != &other) {
      if (h_) h_.destroy();
      h_ = std::exchange(other.h_, {});
    }
    return *this;
  }
  RequestGen(const RequestGen&) = delete;
  RequestGen& operator=(const RequestGen&) = delete;
  ~RequestGen() {
    if (h_) h_.destroy();
  }

  /// Advances the generator; false once it is exhausted. An exception
  /// thrown inside the generator body resurfaces here.
  bool next(Request& out) {
    if (!h_ || h_.done()) return false;
    h_.resume();
    if (h_.promise().error) std::rethrow_exception(h_.promise().error);
    if (h_.done()) return false;
    out = h_.promise().current;
    return true;
  }

 private:
  Handle h_;
};

/// Pull interface for a finite request sequence of known length. fill()
/// returns how many requests it wrote into `out` (any amount > 0 is
/// legal); 0 means the stream is exhausted. Streams are single-pass.
class RequestStream {
 public:
  virtual ~RequestStream() = default;

  /// Number of network nodes (ids 1..n).
  virtual int n() const = 0;
  /// Total requests this stream yields over its lifetime.
  virtual std::size_t size() const = 0;
  virtual std::size_t fill(std::span<Request> out) = 0;
};

/// Adapter: replays a materialized Trace as a stream. The Trace& entry
/// points of the simulator and frontend are thin wrappers over this, so
/// they serve the exact same request sequence they always did.
class TraceStream final : public RequestStream {
 public:
  explicit TraceStream(const Trace& trace) : trace_(&trace) {}

  int n() const override { return trace_->n; }
  std::size_t size() const override { return trace_->size(); }
  std::size_t fill(std::span<Request> out) override;

 private:
  const Trace* trace_;
  std::size_t next_ = 0;
};

/// The coroutine behind gen_workload: yields the same request sequence
/// gen_workload(kind, n, m, seed) materializes, one request at a time.
/// Argument validation happens here (eagerly), not on first pull.
RequestGen stream_workload(WorkloadKind kind, int n, std::size_t m,
                           std::uint64_t seed);

/// On-demand synthetic workload as a RequestStream: O(generator state)
/// memory regardless of m. n <= 0 picks paper_node_count(kind), exactly
/// like gen_workload.
class StreamingWorkload final : public RequestStream {
 public:
  StreamingWorkload(WorkloadKind kind, int n, std::size_t m,
                    std::uint64_t seed);

  int n() const override { return n_; }
  std::size_t size() const override { return m_; }
  std::size_t fill(std::span<Request> out) override;

 private:
  RequestGen gen_;
  int n_ = 0;
  std::size_t m_ = 0;
};

/// Drains a stream into a Trace (testing / small-scale convenience; at
/// streaming scale this is exactly the allocation the stream avoids).
Trace materialize_stream(RequestStream& stream);

}  // namespace san
