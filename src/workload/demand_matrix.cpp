#include "workload/demand_matrix.hpp"

#include <algorithm>

namespace san {

DemandMatrix::DemandMatrix(int n) : n_(n) {
  if (n < 1) throw TreeError("DemandMatrix needs n >= 1");
  d_.assign(static_cast<size_t>(n) * n, 0);
}

DemandMatrix DemandMatrix::from_trace(const Trace& trace) {
  DemandMatrix m(trace.n);
  for (const Request& r : trace.requests) m.add(r.src, r.dst);
  return m;
}

DemandMatrix DemandMatrix::uniform(int n) {
  DemandMatrix m(n);
  for (NodeId u = 1; u <= n; ++u)
    for (NodeId v = u + 1; v <= n; ++v) m.add(u, v);
  return m;
}

void DemandMatrix::add(NodeId u, NodeId v, Cost count) {
  if (u < 1 || u > n_ || v < 1 || v > n_)
    throw TreeError("DemandMatrix::add: node id out of range");
  d_[index(u, v)] += count;
  total_ += count;
  prefix_ready_ = false;
}

void DemandMatrix::ensure_prefix() const {
  if (prefix_ready_) return;
  const size_t stride = static_cast<size_t>(n_) + 1;
  prefix_.assign(stride * stride, 0);
  row_total_.assign(stride, 0);
  col_total_.assign(stride, 0);
  for (int u = 1; u <= n_; ++u) {
    for (int v = 1; v <= n_; ++v) {
      const Cost val = d_[index(u, v)];
      prefix_[u * stride + v] = val + prefix_[(u - 1) * stride + v] +
                                prefix_[u * stride + (v - 1)] -
                                prefix_[(u - 1) * stride + (v - 1)];
      row_total_[u] += val;
      col_total_[v] += val;
    }
  }
  for (int i = 1; i <= n_; ++i) {
    row_total_[i] += row_total_[i - 1];
    col_total_[i] += col_total_[i - 1];
  }
  prefix_ready_ = true;
}

Cost DemandMatrix::inside(int i, int j) const {
  if (i > j) return 0;
  ensure_prefix();
  const size_t stride = static_cast<size_t>(n_) + 1;
  auto rect = [&](int u, int v) { return prefix_[u * stride + v]; };
  return rect(j, j) - rect(i - 1, j) - rect(j, i - 1) + rect(i - 1, i - 1);
}

Cost DemandMatrix::boundary(int i, int j) const {
  if (i > j) return 0;
  ensure_prefix();
  const Cost rows = row_total_[j] - row_total_[i - 1];  // src in [i,j]
  const Cost cols = col_total_[j] - col_total_[i - 1];  // dst in [i,j]
  return rows + cols - 2 * inside(i, j);
}

Cost DemandMatrix::total_distance(const KAryTree& tree) const {
  // Edge-potential formulation (Definition 14): for every edge, the
  // potential is the demand crossing it; summing potentials equals summing
  // d_T(u,v) * D[u,v]. Computed as one DFS accumulating, per node, the
  // demand between its subtree and the rest.
  //
  // For a dense matrix the straightforward per-pair evaluation is O(n^2 *
  // depth); the potential route needs subtree demand sums which are just as
  // expensive without heavy machinery, so per-pair with an LCA cache per
  // source row is used: O(n^2 * depth) worst case but with depth the
  // typical ~log_k n this is fine for offline-scale n.
  Cost total = 0;
  for (NodeId u = 1; u <= n_; ++u) {
    bool row_empty = true;
    const size_t base = static_cast<size_t>(u - 1) * n_;
    for (int v = 0; v < n_; ++v)
      if (d_[base + v] != 0) {
        row_empty = false;
        break;
      }
    if (row_empty) continue;
    for (NodeId v = 1; v <= n_; ++v) {
      const Cost c = d_[base + (v - 1)];
      if (c != 0 && u != v)
        total += static_cast<Cost>(tree.distance(u, v)) * c;
    }
  }
  return total;
}

}  // namespace san
