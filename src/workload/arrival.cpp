#include "workload/arrival.hpp"

#include <cmath>
#include <random>

namespace san {
namespace {

constexpr double kNsPerSec = 1e9;

/// Uniform double in (0, 1], built from the top 53 bits of a raw RNG word
/// so the sequence is identical across standard libraries (std::
/// *_distribution algorithms are implementation-defined). The +1 keeps 0
/// out of the range, making -log(u) finite.
double uniform_open(std::mt19937_64& rng) {
  return (static_cast<double>(rng() >> 11) + 1.0) * 0x1.0p-53;
}

/// Exponential variate with the given mean.
double exponential(std::mt19937_64& rng, double mean) {
  return -mean * std::log(uniform_open(rng));
}

/// Pareto variate with shape alpha and the given mean (xm scaled so the
/// mean matches: mean = xm * alpha / (alpha - 1)).
double pareto(std::mt19937_64& rng, double alpha, double mean) {
  const double xm = mean * (alpha - 1.0) / alpha;
  return xm / std::pow(uniform_open(rng), 1.0 / alpha);
}

std::vector<std::uint64_t> poisson_times(double rate, std::size_t m,
                                         std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<std::uint64_t> times;
  times.reserve(m);
  const double mean_gap_ns = kNsPerSec / rate;
  double t = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    t += exponential(rng, mean_gap_ns);
    times.push_back(static_cast<std::uint64_t>(t));
  }
  return times;
}

std::vector<std::uint64_t> bursty_times(double rate, std::size_t m,
                                        std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<std::uint64_t> times;
  times.reserve(m);
  // ON periods arrive at rate / f; OFF periods are silent and last
  // (1 - f) / f times as long on average, so the long-run mean is `rate`.
  const double on_rate = rate / kBurstyOnFraction;
  const double mean_gap_ns = kNsPerSec / on_rate;
  const double mean_on_ns = kBurstyMeanOnSeconds * kNsPerSec;
  const double mean_off_ns =
      mean_on_ns * (1.0 - kBurstyOnFraction) / kBurstyOnFraction;
  double t = 0.0;
  double on_end = 0.0;
  while (times.size() < m) {
    // Draw the next ON window (possibly after an OFF gap).
    if (t >= on_end) {
      if (!times.empty() || t > 0.0)
        t += pareto(rng, kBurstyParetoShape, mean_off_ns);
      on_end = t + pareto(rng, kBurstyParetoShape, mean_on_ns);
    }
    while (times.size() < m) {
      t += exponential(rng, mean_gap_ns);
      if (t >= on_end) break;  // arrival falls past the window: drop to OFF
      times.push_back(static_cast<std::uint64_t>(t));
    }
    t = on_end;
  }
  return times;
}

}  // namespace

const char* arrival_kind_name(ArrivalKind kind) {
  switch (kind) {
    case ArrivalKind::kSaturation:
      return "saturation";
    case ArrivalKind::kPoisson:
      return "poisson";
    case ArrivalKind::kBursty:
      return "bursty";
  }
  return "?";
}

std::vector<std::uint64_t> gen_arrival_times(ArrivalKind kind,
                                             double rate_per_sec,
                                             std::size_t m,
                                             std::uint64_t seed) {
  if (kind == ArrivalKind::kSaturation)
    return std::vector<std::uint64_t>(m, 0);
  if (!(rate_per_sec > 0.0))
    throw TreeError("gen_arrival_times: rate must be positive");
  return kind == ArrivalKind::kPoisson
             ? poisson_times(rate_per_sec, m, seed)
             : bursty_times(rate_per_sec, m, seed);
}

}  // namespace san
