#include "workload/arrival.hpp"

#include <cmath>

#include "core/rng.hpp"

namespace san {
namespace {

constexpr double kNsPerSec = 1e9;

/// Exponential variate with the given mean.
double exponential(std::mt19937_64& rng, double mean) {
  return -mean * std::log(uniform_open(rng));
}

/// Pareto variate with shape alpha and the given mean (xm scaled so the
/// mean matches: mean = xm * alpha / (alpha - 1)).
double pareto(std::mt19937_64& rng, double alpha, double mean) {
  const double xm = mean * (alpha - 1.0) / alpha;
  return xm / std::pow(uniform_open(rng), 1.0 / alpha);
}

}  // namespace

const char* arrival_kind_name(ArrivalKind kind) {
  switch (kind) {
    case ArrivalKind::kSaturation:
      return "saturation";
    case ArrivalKind::kPoisson:
      return "poisson";
    case ArrivalKind::kBursty:
      return "bursty";
  }
  return "?";
}

std::uint64_t FixedArrivalSchedule::next() {
  if (pos_ >= times_.size())
    throw TreeError("FixedArrivalSchedule: pulled past the end");
  return times_[pos_++];
}

StreamingArrivalSchedule::StreamingArrivalSchedule(ArrivalKind kind,
                                                   double rate_per_sec,
                                                   std::uint64_t seed)
    : kind_(kind), rng_(seed) {
  if (kind_ == ArrivalKind::kSaturation) return;
  if (!(rate_per_sec > 0.0))
    throw TreeError("gen_arrival_times: rate must be positive");
  if (kind_ == ArrivalKind::kPoisson) {
    mean_gap_ns_ = kNsPerSec / rate_per_sec;
    return;
  }
  // ON periods arrive at rate / f; OFF periods are silent and last
  // (1 - f) / f times as long on average, so the long-run mean is `rate`.
  const double on_rate = rate_per_sec / kBurstyOnFraction;
  mean_gap_ns_ = kNsPerSec / on_rate;
  mean_on_ns_ = kBurstyMeanOnSeconds * kNsPerSec;
  mean_off_ns_ = mean_on_ns_ * (1.0 - kBurstyOnFraction) / kBurstyOnFraction;
}

std::uint64_t StreamingArrivalSchedule::next() {
  if (kind_ == ArrivalKind::kSaturation) return 0;
  if (kind_ == ArrivalKind::kPoisson) {
    t_ += exponential(rng_, mean_gap_ns_);
    return static_cast<std::uint64_t>(t_);
  }
  // Bursty: draws happen in emission order, so pulling one timestamp at a
  // time replays the materialized state machine exactly.
  for (;;) {
    // Draw the next ON window (possibly after an OFF gap; the very first
    // window starts at t = 0 with no gap).
    if (t_ >= on_end_) {
      if (started_) t_ += pareto(rng_, kBurstyParetoShape, mean_off_ns_);
      started_ = true;
      on_end_ = t_ + pareto(rng_, kBurstyParetoShape, mean_on_ns_);
    }
    t_ += exponential(rng_, mean_gap_ns_);
    if (t_ < on_end_) return static_cast<std::uint64_t>(t_);
    t_ = on_end_;  // arrival falls past the window: drop to OFF
  }
}

std::vector<std::uint64_t> gen_arrival_times(ArrivalKind kind,
                                             double rate_per_sec,
                                             std::size_t m,
                                             std::uint64_t seed) {
  StreamingArrivalSchedule schedule(kind, rate_per_sec, seed);
  std::vector<std::uint64_t> times;
  times.reserve(m);
  for (std::size_t i = 0; i < m; ++i) times.push_back(schedule.next());
  return times;
}

}  // namespace san
