// Trace complexity measurements (the quantities the paper's analysis and
// the locality reference [2] reason about): endpoint entropies, which drive
// the Theorem 13 upper bound, and temporal locality, which Section 5 uses to
// explain when the centroid heuristic wins.
#pragma once

#include <cstddef>

#include "workload/request.hpp"

namespace san {

struct TraceStats {
  double src_entropy = 0.0;   ///< H of the source marginal, bits
  double dst_entropy = 0.0;   ///< H of the destination marginal, bits
  double pair_entropy = 0.0;  ///< H of the joint (u, v) distribution, bits
  double repeat_fraction = 0.0;  ///< fraction of requests equal to previous
  std::size_t distinct_pairs = 0;
  std::size_t distinct_sources = 0;
  std::size_t distinct_destinations = 0;

  /// Theorem 13 upper bound on k-ary SplayNet total cost (up to the hidden
  /// constant): sum over x of a_x log(m/a_x) + b_x log(m/b_x).
  double entropy_bound = 0.0;
};

TraceStats compute_stats(const Trace& trace);

}  // namespace san
