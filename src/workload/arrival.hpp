// Open-loop arrival processes for the serving frontend.
//
// Closed-loop replay (run_trace*) issues the next request the moment the
// previous one finishes, so it measures throughput but can never measure
// latency under load. An open-loop generator instead assigns every request
// an *arrival timestamp* drawn from a stochastic process that does not
// care how fast the server is; the frontend dispatches at those times and
// latency = completion - arrival includes every queueing effect (and is
// immune to coordinated omission: a stalled server keeps accumulating
// intended arrivals, so the stall shows up in the tail instead of being
// silently absorbed by a paused load generator).
//
// Two processes, both bit-deterministic given a seed (uniform doubles are
// derived from raw mt19937_64 words, not from distribution objects whose
// algorithms vary across standard libraries):
//   * kPoisson — exponential interarrivals at `rate` requests/second; the
//     memoryless baseline of open-loop benchmarking.
//   * kBursty  — on-off modulated Poisson: ON periods arrive at
//     rate / kBurstyOnFraction, OFF periods are silent, and both period
//     lengths are Pareto(alpha = 1.5) distributed. Infinite-variance
//     periods give the arrival counts the slowly-decaying correlations of
//     self-similar datacenter traffic, so queues see correlated bursts far
//     above the mean rate while the long-run mean stays `rate`.
//   * kSaturation — every request arrives at t = 0: the offered load is
//     infinite and the frontend serves as fast as it can drain. This is
//     the mode whose total cost must bit-match closed-loop batch replay
//     at S = 1 (FIFO admission preserves trace order).
#pragma once

#include <cstddef>
#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "core/types.hpp"

namespace san {

enum class ArrivalKind {
  kSaturation,  ///< all arrivals at t = 0 (infinite offered load)
  kPoisson,     ///< exponential interarrivals at the given rate
  kBursty,      ///< Pareto on-off modulated Poisson (self-similar bursts)
};

const char* arrival_kind_name(ArrivalKind kind);

/// Fraction of time a bursty source is ON (its ON rate is scaled by the
/// inverse so the long-run mean rate matches the request).
inline constexpr double kBurstyOnFraction = 0.25;
/// Pareto shape of the ON/OFF period lengths; 1 < alpha < 2 gives finite
/// mean but infinite variance — the heavy tail behind self-similarity.
inline constexpr double kBurstyParetoShape = 1.5;
/// Mean ON period length in seconds.
inline constexpr double kBurstyMeanOnSeconds = 0.020;

/// Pull-based arrival-time source: each next() yields the intended
/// arrival timestamp (nanoseconds from t = 0, monotonically nondecreasing)
/// of the next request. The streaming frontend consumes timestamps one at
/// a time, so an m = 10^8 run never materializes the 800 MB vector the
/// span-based API would require.
class ArrivalSchedule {
 public:
  virtual ~ArrivalSchedule() = default;
  virtual std::uint64_t next() = 0;
};

/// Replays a materialized schedule. The span must outlive the object;
/// pulling past the end throws TreeError (the frontend pulls exactly one
/// timestamp per request, so this fires only on a caller-side mismatch).
class FixedArrivalSchedule final : public ArrivalSchedule {
 public:
  explicit FixedArrivalSchedule(std::span<const std::uint64_t> times)
      : times_(times) {}
  std::uint64_t next() override;

 private:
  std::span<const std::uint64_t> times_;
  std::size_t pos_ = 0;
};

/// Generates the arrival process on demand: the first m pulls are
/// bit-identical to gen_arrival_times(kind, rate, m, seed) for every m
/// (the generators draw in emission order, so their sequences are
/// prefix-stable). O(1) state regardless of how many timestamps are
/// pulled. Throws TreeError on a nonpositive rate for kPoisson / kBursty.
class StreamingArrivalSchedule final : public ArrivalSchedule {
 public:
  StreamingArrivalSchedule(ArrivalKind kind, double rate_per_sec,
                           std::uint64_t seed);
  std::uint64_t next() override;

 private:
  ArrivalKind kind_;
  std::mt19937_64 rng_;
  double mean_gap_ns_ = 0.0;  ///< mean interarrival inside an ON window
  double mean_on_ns_ = 0.0;   ///< mean ON window length (kBursty only)
  double mean_off_ns_ = 0.0;  ///< mean OFF gap length (kBursty only)
  double t_ = 0.0;            ///< current clock, ns
  double on_end_ = 0.0;       ///< current ON window's end, ns (kBursty)
  bool started_ = false;      ///< true once the first window was drawn
};

/// Generates `m` monotonically nondecreasing arrival timestamps in
/// nanoseconds from t = 0, deterministic given (kind, rate, m, seed).
/// `rate_per_sec` must be positive for kPoisson / kBursty and is ignored
/// for kSaturation. Throws TreeError on invalid arguments. Materializes
/// the first m pulls of a StreamingArrivalSchedule.
std::vector<std::uint64_t> gen_arrival_times(ArrivalKind kind,
                                             double rate_per_sec,
                                             std::size_t m,
                                             std::uint64_t seed);

}  // namespace san
