// Online shard-rebalancing policies: decide *which* nodes should move to
// *which* shard as the communication pattern drifts.
//
// A static ShardMap pays the cross-shard penalty forever once the hot pairs
// move — the same self-adjustment-vs-static tension the paper studies at
// the tree level, replayed one level up. This layer closes it: a
// RebalanceState accumulates a sliding-window histogram of communication
// pairs (exponentially aged: counts decay by `window_decay` at each epoch
// boundary, so the window slides without storing the raw tail), and at
// every epoch a pluggable trigger decides whether to plan a migration
// batch under one of two policies:
//   * kHotPair   — greedy hot-pair colocation: walk cross-shard pairs by
//     descending window weight and move the endpoint whose window affinity
//     to the partner's shard exceeds its affinity to its own, whenever the
//     projected per-window saving beats the migration cost estimate.
//   * kWatermark — load-watermark balancing: while the hottest shard's
//     window load exceeds `watermark` x the active-shard mean, move its
//     least-attached nodes to the shard they are most attached to among
//     the under-loaded ones.
// Planning is pure (it never touches the serving engine): it consumes the
// ShardMap plus two cost hints the simulator derives from the engine, and
// returns a batch the engine applies between drains
// (sim/sharded_network.hpp: apply_migrations). Every decision is a
// deterministic function of the observed requests — weights are dyadic
// rationals (integer counts halved), candidate orders are fully tie-broken
// — so sequential and concurrent drains plan identical batches.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "stats/sketch.hpp"
#include "workload/partition.hpp"
#include "workload/request.hpp"

namespace san {

/// Decayed window weights below this floor count as aged out and are
/// pruned at epoch boundaries. The floor — NOT 1.0 — is what gives the
/// window its depth: at the default decay of 0.5 a once-observed pair
/// (weight 1.0) survives ten epochs before crossing 1/1024, instead of
/// being evicted after the first decay the way a cut starting at 1.0 would.
/// Capacity pressure can still raise the cut (rebalance.cpp: decay()).
inline constexpr double kWindowFloorWeight = 1.0 / 1024.0;

/// One planned node move.
struct Migration {
  NodeId node = kNoNode;
  int to_shard = -1;

  friend bool operator==(const Migration&, const Migration&) = default;
};

enum class RebalancePolicy {
  kNone,       ///< never migrate — exactly PR 3's static sharding
  kHotPair,    ///< greedy hot-pair colocation
  kWatermark,  ///< load-watermark draining of overloaded shards
};

enum class RebalanceTrigger {
  kEveryEpoch,     ///< plan at every epoch; empty plans are free
  kCrossFraction,  ///< plan only when the window cross fraction exceeds
                   ///< trigger_cross_fraction
  kImbalance,      ///< plan only when the window load imbalance exceeds
                   ///< trigger_imbalance
  kDrift,          ///< plan only when the window's hot-pair set moved:
                   ///< fraction of the current top-k pairs absent from the
                   ///< previous epoch's exceeds trigger_drift. Parks the
                   ///< rebalancer on stationary workloads (a static map
                   ///< already is the steady-state answer there) while
                   ///< reacting within one epoch to phase changes.
};

/// How the window's pair-demand histogram is stored.
enum class DemandTracker {
  kExact,   ///< hash map, one entry per distinct pair (state grows with the
            ///< observed pair universe up to window_capacity)
  kSketch,  ///< SpaceSaving top-k + CountMin estimates (stats/sketch.hpp):
            ///< state fixed by sketch_top_k / sketch_cm_width, independent
            ///< of n and m — the n >= 10^6 streaming configuration
};

const char* rebalance_policy_name(RebalancePolicy policy);
const char* rebalance_trigger_name(RebalanceTrigger trigger);
const char* demand_tracker_name(DemandTracker tracker);

struct RebalanceConfig {
  RebalancePolicy policy = RebalancePolicy::kNone;
  RebalanceTrigger trigger = RebalanceTrigger::kDrift;
  /// Requests between epoch checks; 0 disables rebalancing outright
  /// (epoch = infinity), as does policy == kNone.
  std::size_t epoch_requests = 8192;
  /// Aging factor applied to every window weight at each epoch boundary.
  double window_decay = 0.5;
  /// Hard cap on migrations per epoch (bounds the pause length).
  int max_migrations = 64;
  double trigger_cross_fraction = 0.05;
  double trigger_imbalance = 1.5;
  /// kDrift: rebalance when more than this fraction of the current top
  /// drift_top_k pairs was absent from the previous epoch's top set.
  double trigger_drift = 0.3;
  std::size_t drift_top_k = 32;
  /// A move must beat the migration cost estimate by this many cost units
  /// (projected over one window) to be accepted.
  double min_gain = 0.0;
  /// Cost saved per request converted from cross- to intra-shard; 0 means
  /// "derive from the engine" (top-tree route + the second root ascent).
  double cross_penalty = 0.0;
  /// kWatermark: tolerated max-shard-load / mean-shard-load ratio.
  double watermark = 1.3;
  /// Capacity guard for every policy: no shard may grow beyond
  /// capacity_factor * (n / shards) nodes. Without it, greedy colocation
  /// on a stationary skewed workload (independent Zipf endpoints) keeps
  /// pulling the hot nodes into one mega-shard, trading away the
  /// parallelism and the shallow trees sharding exists to provide.
  double capacity_factor = 1.5;
  /// Soft cap on distinct pairs kept in the window (aged-out entries are
  /// pruned at epoch boundaries first, lightest pairs next).
  std::size_t window_capacity = 1 << 16;
  /// Window storage backend; kSketch bounds memory independently of n.
  DemandTracker tracker = DemandTracker::kExact;
  /// kSketch: heavy-pair entries tracked by the space-saving summary (the
  /// planner's working set — plays the role window_capacity plays for the
  /// exact map).
  std::size_t sketch_top_k = 4096;
  /// kSketch: count-min width (rounded up to a power of two) and depth.
  /// Point-estimate error is ~ window_weight / width per row; the default
  /// 2^16 x 4 costs 2 MiB of doubles.
  std::size_t sketch_cm_width = 1 << 16;
  int sketch_cm_depth = 4;

  // ---- tablet-style shard lifecycle (split / merge / replicate) -------
  // Lifecycle planning rides on the same per-shard window loads the
  // watermark migration policy measures, but is evaluated at *every*
  // epoch, independent of `trigger` and `policy` — a load spike needs a
  // systemic answer even when the hot-pair set is stationary. Plans are
  // applied by the batch pipeline at its drain barrier
  // (sim/simulator.hpp) and by the open-loop frontend at its quiesce
  // barriers (sim/serve_frontend.hpp), where splits spawn workers and
  // merges retire them mid-run.

  /// > 0 enables shard splitting: when the hottest shard's window load
  /// exceeds split_watermark x the active-shard mean (and it owns >= 4
  /// nodes, and the fleet is below max_shards), plan a midpoint split.
  double split_watermark = 0.0;
  /// > 0 enables shard merging: when the two coldest shards' combined
  /// window load is below merge_watermark x the active-shard mean (and
  /// the fleet is above min_shards, and the combined shard respects the
  /// capacity guard), plan their merge. A split and a merge never fire in
  /// the same epoch (split wins — relieving the hot shard comes first).
  double merge_watermark = 0.0;
  int max_shards = 256;  ///< split ceiling on the fleet size
  int min_shards = 1;    ///< merge floor on the fleet size
  /// > 0 enables read replicas: the `replicas` shards with the heaviest
  /// *intra*-shard window weight (ties to the smaller id) are kept
  /// replicated; the runner reconciles adds/drops at each barrier.
  int replicas = 0;

  bool enabled() const {
    return policy != RebalancePolicy::kNone && epoch_requests > 0;
  }
  /// Any lifecycle planning configured? (Planning then runs every epoch
  /// even under policy == kNone, which disables only node migrations.)
  bool lifecycle_enabled() const {
    return epoch_requests > 0 &&
           (split_watermark > 0.0 || merge_watermark > 0.0 || replicas > 0);
  }
};

/// Engine-derived cost estimates the planner prices moves with.
struct RebalanceCostHints {
  /// Cost saved per colocated request (overridden by cfg.cross_penalty).
  double cross_penalty = 3.0;
  /// Estimated one-off cost of migrating one node (extraction ascent plus
  /// its share of the relink batch).
  double migration_cost = 8.0;
};

struct RebalancePlan {
  bool triggered = false;
  std::vector<Migration> migrations;
  /// Projected per-window saving of the batch minus its migration cost,
  /// in the same units as SimResult::total_cost.
  double est_gain = 0.0;
  double cross_fraction = 0.0;
  double load_imbalance = 1.0;
  /// Fraction of the current top pairs that are new since last epoch.
  /// 0.0 while the history is empty: the first window only seeds the
  /// detector (an initial partition is configuration, not drift).
  double drift = 0.0;

  // Lifecycle actions (planned whenever cfg.lifecycle_enabled(),
  // independent of `triggered`, which gates only node migrations).
  int split_shard = -1;  ///< shard to split at its rank midpoint, or -1
  int merge_into = -1;   ///< merge target (the smaller id), or -1
  int merge_from = -1;   ///< shard folded into merge_into, or -1
  /// Desired replicated-shard set (sorted ascending; ids refer to the map
  /// the plan was made against, before any split/merge of this barrier).
  std::vector<int> replicate;

  bool has_lifecycle() const {
    return split_shard >= 0 || merge_from >= 0 || !replicate.empty();
  }
};

class RebalanceState {
 public:
  explicit RebalanceState(RebalanceConfig cfg);

  const RebalanceConfig& config() const { return cfg_; }

  /// Accounts one served request into the window under the current map.
  void observe(const Request& r, const ShardMap& map);

  /// Epoch boundary: evaluates the trigger against the current window,
  /// plans a batch when it fires, then ages the window. The returned
  /// migrations never drain a shard below one node and never move a node
  /// twice.
  RebalancePlan epoch(const ShardMap& map, const RebalanceCostHints& hints);

  // Window introspection (tests / CLI).
  double window_requests() const { return requests_; }
  double window_cross() const { return cross_; }
  double pair_weight(NodeId u, NodeId v) const;

 private:
  struct PairEntry {
    NodeId u = kNoNode;  ///< u < v (unordered pair)
    NodeId v = kNoNode;
    double weight = 0.0;
  };

  void plan_hot_pairs(const ShardMap& map, const RebalanceCostHints& hints,
                      const std::vector<PairEntry>& entries,
                      RebalancePlan& plan) const;
  /// `touches` is the per-shard window load epoch() measured (one endpoint
  /// touch per pair per shard), reused as the evolving load model.
  void plan_watermark(const ShardMap& map, const RebalanceCostHints& hints,
                      const std::vector<PairEntry>& entries,
                      const std::vector<double>& touches,
                      RebalancePlan& plan) const;
  /// Split/merge/replicate planning from the same window `touches` load
  /// model; see the lifecycle fields of RebalanceConfig.
  void plan_lifecycle(const ShardMap& map,
                      const std::vector<PairEntry>& entries,
                      const std::vector<double>& touches,
                      RebalancePlan& plan) const;
  std::vector<PairEntry> sorted_entries() const;
  void decay();

  RebalanceConfig cfg_;
  /// kExact: (min id << 32 | max id) -> exponentially aged request count.
  std::unordered_map<std::uint64_t, double> pairs_;
  /// kSketch: fixed-size summaries standing in for pairs_. hot_ feeds the
  /// planner's entry list; cm_ answers pair_weight() point queries.
  std::unique_ptr<SpaceSaving> hot_;
  std::unique_ptr<CountMinSketch> cm_;
  /// Previous epoch's top drift_top_k pair keys, sorted (drift detector).
  std::vector<std::uint64_t> prev_top_;
  double requests_ = 0.0;
  double cross_ = 0.0;
};

}  // namespace san
