#include "workload/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <random>

#include "core/types.hpp"
#include "workload/zipf.hpp"

namespace san {
namespace {

std::uniform_int_distribution<NodeId> node_dist(int n) {
  return std::uniform_int_distribution<NodeId>(1, n);
}

Request fresh_uniform_pair(int n, std::mt19937_64& rng) {
  auto dist = node_dist(n);
  NodeId u = dist(rng);
  NodeId v = dist(rng);
  while (v == u) v = dist(rng);
  return {u, v};
}

}  // namespace

Trace gen_uniform(int n, std::size_t m, std::uint64_t seed) {
  if (n < 2) throw TreeError("gen_uniform needs n >= 2");
  std::mt19937_64 rng(seed);
  Trace t;
  t.n = n;
  t.requests.reserve(m);
  for (std::size_t i = 0; i < m; ++i)
    t.requests.push_back(fresh_uniform_pair(n, rng));
  return t;
}

Trace gen_temporal(int n, std::size_t m, double p, std::uint64_t seed) {
  if (n < 2) throw TreeError("gen_temporal needs n >= 2");
  if (p < 0.0 || p >= 1.0) throw TreeError("gen_temporal needs 0 <= p < 1");
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  Trace t;
  t.n = n;
  t.requests.reserve(m);
  Request last = fresh_uniform_pair(n, rng);
  for (std::size_t i = 0; i < m; ++i) {
    if (i == 0 || coin(rng) >= p) last = fresh_uniform_pair(n, rng);
    t.requests.push_back(last);
  }
  return t;
}

Trace gen_hpc(int n, std::size_t m, std::uint64_t seed) {
  if (n < 8) throw TreeError("gen_hpc needs n >= 8");
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);

  // Arrange ranks on the most cubic nx*ny*nz >= n box; ranks beyond n are
  // simply absent (their exchanges are skipped), mirroring partially filled
  // allocations.
  int nx = static_cast<int>(std::cbrt(static_cast<double>(n)));
  while (nx > 1 && n % nx != 0) --nx;
  const int rest = n / nx;
  int ny = static_cast<int>(std::sqrt(static_cast<double>(rest)));
  while (ny > 1 && rest % ny != 0) --ny;
  const int nz = rest / ny;

  auto rank_of = [&](int x, int y, int z) {
    return static_cast<NodeId>(1 + x + nx * (y + static_cast<long>(ny) * z));
  };
  // MPI ranks are laid out row-major on the grid and map to network nodes
  // identically, as in real deployments: x-neighbours are id-adjacent, so
  // HPC demand is strongly local in id space — the property that lets
  // static search trees do well on this workload (paper Table 1, Full Tree
  // row crossing above 1).
  std::vector<NodeId> node_of(static_cast<size_t>(n) + 1);
  std::iota(node_of.begin(), node_of.end(), 0);

  // Precompute the 6-point stencil pair list.
  std::vector<Request> stencil;
  for (int z = 0; z < nz; ++z)
    for (int y = 0; y < ny; ++y)
      for (int x = 0; x < nx; ++x) {
        NodeId a = rank_of(x, y, z);
        if (a > n) continue;
        const int dx[3] = {1, 0, 0};
        const int dy[3] = {0, 1, 0};
        const int dz[3] = {0, 0, 1};
        for (int d = 0; d < 3; ++d) {
          int x2 = x + dx[d], y2 = y + dy[d], z2 = z + dz[d];
          if (x2 >= nx || y2 >= ny || z2 >= nz) continue;
          NodeId b = rank_of(x2, y2, z2);
          if (b > n) continue;
          stencil.push_back({node_of[a], node_of[b]});
        }
      }
  if (stencil.empty()) throw TreeError("gen_hpc: degenerate grid");

  // Heavy-tailed per-pair intensity (mini-apps exchange volumes differ by
  // orders of magnitude between boundary regions): a pair of weight w
  // joins a sweep with probability w/8, so hot pairs recur every
  // iteration and cold ones rarely — the skew a demand-aware static tree
  // exploits.
  std::vector<int> weight(stencil.size());
  for (int& w : weight) w = 1 << (rng() % 4);  // 1, 2, 4 or 8

  // Bulk-synchronous iteration structure, as in the DOE mini-apps: each
  // iteration sweeps all halo exchanges in rank order (direction flipping
  // between iterations), with occasional collective phases at iteration
  // boundaries and a little background noise. Temporal locality is LOW —
  // a pair recurs only once per sweep — but the demand matrix is extremely
  // sparse and structured, which is exactly the regime the paper describes
  // for HPC (Section 5.1: low temporal locality; Table 1: static
  // demand-aware trees excel).
  auto rank_picker = node_dist(n);
  Trace t;
  t.n = n;
  t.requests.reserve(m);
  bool forward = true;
  while (t.requests.size() < m) {
    if (coin(rng) < 0.30) {
      // Collective (reduce or broadcast) rooted at rank 0.
      const bool gather = coin(rng) < 0.5;
      for (int i = 0; i < n / 3 && t.requests.size() < m; ++i) {
        NodeId peer = rank_picker(rng);
        while (peer == node_of[1]) peer = rank_picker(rng);
        t.requests.push_back(gather ? Request{peer, node_of[1]}
                                    : Request{node_of[1], peer});
      }
      continue;
    }
    for (size_t pi = 0; pi < stencil.size(); ++pi) {
      const Request& pair = stencil[pi];
      if (coin(rng) * 8 >= weight[pi]) continue;
      if (coin(rng) < 0.08) {
        t.requests.push_back(fresh_uniform_pair(n, rng));  // noise
        if (t.requests.size() >= m) break;
      }
      // One halo exchange is a short message train (send, reply, send):
      // directions alternate, so consecutive requests are never identical
      // (temporal locality stays low) while the pair stays hot briefly.
      const Request fwd = forward ? pair : Request{pair.dst, pair.src};
      const Request rev{fwd.dst, fwd.src};
      for (const Request& msg : {fwd, rev, fwd}) {
        t.requests.push_back(msg);
        if (t.requests.size() >= m) break;
      }
      if (t.requests.size() >= m) break;
    }
    forward = !forward;
  }
  return t;
}

Trace gen_projector(int n, std::size_t m, std::uint64_t seed) {
  if (n < 4) throw TreeError("gen_projector needs n >= 4");
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);

  // Sparse elephant support: ~4n distinct ordered pairs with Zipf weights.
  // Requests are drawn independently — the working set is small and
  // persistent (spatial sparsity) but consecutive requests rarely repeat
  // (low *temporal* locality), which is the regime where the paper finds
  // the centroid heuristic ahead of SplayNet (Table 8, ProjecToR row).
  const size_t support = static_cast<size_t>(4) * n;
  std::vector<Request> pairs;
  pairs.reserve(support);
  while (pairs.size() < support) pairs.push_back(fresh_uniform_pair(n, rng));
  ZipfSampler zipf(static_cast<int>(support), 1.8);

  Trace t;
  t.n = n;
  t.requests.reserve(m);
  while (t.requests.size() < m) {
    if (coin(rng) < 0.04) {
      t.requests.push_back(fresh_uniform_pair(n, rng));  // mice flows
      continue;
    }
    t.requests.push_back(pairs[static_cast<size_t>(zipf(rng)) - 1]);
  }
  return t;
}

Trace gen_facebook(int n, std::size_t m, std::uint64_t seed) {
  if (n < 2) throw TreeError("gen_facebook needs n >= 2");
  std::mt19937_64 rng(seed);
  ZipfSampler zipf(n, 1.30);
  std::vector<NodeId> node_of(static_cast<size_t>(n) + 1);
  std::iota(node_of.begin(), node_of.end(), 0);
  std::shuffle(node_of.begin() + 1, node_of.end(), rng);

  Trace t;
  t.n = n;
  t.requests.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    NodeId u = node_of[static_cast<size_t>(zipf(rng))];
    NodeId v = node_of[static_cast<size_t>(zipf(rng))];
    while (v == u) v = node_of[static_cast<size_t>(zipf(rng))];
    t.requests.push_back({u, v});
  }
  return t;
}

Trace gen_phase_elephants(int n, std::size_t m, int phases,
                          std::uint64_t seed) {
  if (n < 4) throw TreeError("gen_phase_elephants needs n >= 4");
  if (phases < 1) throw TreeError("gen_phase_elephants needs phases >= 1");
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);

  const std::size_t phase_len =
      std::max<std::size_t>(1, (m + static_cast<std::size_t>(phases) - 1) /
                                   static_cast<std::size_t>(phases));
  const std::size_t support = static_cast<std::size_t>(n);
  ZipfSampler zipf(static_cast<int>(support), 1.6);

  Trace t;
  t.n = n;
  t.requests.reserve(m);
  std::vector<Request> pairs;
  while (t.requests.size() < m) {
    if (t.requests.size() % phase_len == 0) {
      // Phase boundary: a fresh elephant support — the previous hot pairs
      // go cold at once, the new ones land anywhere in the id space.
      pairs.clear();
      while (pairs.size() < support)
        pairs.push_back(fresh_uniform_pair(n, rng));
    }
    if (coin(rng) < 0.04) {
      t.requests.push_back(fresh_uniform_pair(n, rng));  // mice flows
      continue;
    }
    t.requests.push_back(pairs[static_cast<size_t>(zipf(rng)) - 1]);
  }
  return t;
}

Trace gen_rotating_hotset(int n, std::size_t m, int hot,
                          std::size_t rotate_every, std::uint64_t seed) {
  if (n < 4) throw TreeError("gen_rotating_hotset needs n >= 4");
  if (hot < 2 || hot > n)
    throw TreeError("gen_rotating_hotset needs 2 <= hot <= n");
  if (rotate_every == 0)
    throw TreeError("gen_rotating_hotset needs rotate_every >= 1");
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);

  std::vector<NodeId> ids(static_cast<size_t>(n));
  std::iota(ids.begin(), ids.end(), 1);
  std::vector<NodeId> hotset;

  Trace t;
  t.n = n;
  t.requests.reserve(m);
  auto hot_node = [&]() -> NodeId {
    return hotset[static_cast<size_t>(rng() % hotset.size())];
  };
  auto pick = [&]() -> NodeId {
    if (coin(rng) < 0.92) return hot_node();
    return static_cast<NodeId>(1 + rng() % static_cast<std::uint64_t>(n));
  };
  while (t.requests.size() < m) {
    if (t.requests.size() % rotate_every == 0) {
      // Resample the hot set without replacement: a fresh cluster that is
      // scattered across shards under any static partition.
      std::shuffle(ids.begin(), ids.end(), rng);
      hotset.assign(ids.begin(), ids.begin() + hot);
    }
    NodeId u = pick();
    NodeId v = pick();
    while (v == u) v = pick();
    t.requests.push_back({u, v});
  }
  return t;
}

const char* workload_name(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kUniform:
      return "Uniform";
    case WorkloadKind::kTemporal025:
      return "Temporal 0.25";
    case WorkloadKind::kTemporal05:
      return "Temporal 0.5";
    case WorkloadKind::kTemporal075:
      return "Temporal 0.75";
    case WorkloadKind::kTemporal09:
      return "Temporal 0.9";
    case WorkloadKind::kHpc:
      return "HPC";
    case WorkloadKind::kProjector:
      return "ProjecToR";
    case WorkloadKind::kFacebook:
      return "Facebook";
    case WorkloadKind::kPhaseElephants:
      return "PhaseElephants";
    case WorkloadKind::kRotatingHot:
      return "RotatingHot";
  }
  return "?";
}

int paper_node_count(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kUniform:
      return 100;
    case WorkloadKind::kTemporal025:
    case WorkloadKind::kTemporal05:
    case WorkloadKind::kTemporal075:
    case WorkloadKind::kTemporal09:
      return 1023;
    case WorkloadKind::kHpc:
      return 500;
    case WorkloadKind::kProjector:
      return 100;
    case WorkloadKind::kFacebook:
      return 10000;
    case WorkloadKind::kPhaseElephants:
    case WorkloadKind::kRotatingHot:
      return 1024;
  }
  return 0;
}

Trace gen_workload(WorkloadKind kind, int n, std::size_t m,
                   std::uint64_t seed) {
  if (n <= 0) n = paper_node_count(kind);
  switch (kind) {
    case WorkloadKind::kUniform:
      return gen_uniform(n, m, seed);
    case WorkloadKind::kTemporal025:
      return gen_temporal(n, m, 0.25, seed);
    case WorkloadKind::kTemporal05:
      return gen_temporal(n, m, 0.5, seed);
    case WorkloadKind::kTemporal075:
      return gen_temporal(n, m, 0.75, seed);
    case WorkloadKind::kTemporal09:
      return gen_temporal(n, m, 0.9, seed);
    case WorkloadKind::kHpc:
      return gen_hpc(n, m, seed);
    case WorkloadKind::kProjector:
      return gen_projector(n, m, seed);
    case WorkloadKind::kFacebook:
      return gen_facebook(n, m, seed);
    case WorkloadKind::kPhaseElephants:
      return gen_phase_elephants(n, m, /*phases=*/8, seed);
    case WorkloadKind::kRotatingHot:
      return gen_rotating_hotset(n, m, /*hot=*/std::max(2, n / 16),
                                 /*rotate_every=*/std::max<std::size_t>(1, m / 16),
                                 seed);
  }
  throw TreeError("unknown workload kind");
}

}  // namespace san
