#include "workload/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <random>

#include "core/types.hpp"
#include "workload/streaming.hpp"
#include "workload/zipf.hpp"

// Every workload body below is a coroutine (co_*) yielding exactly m
// requests; the public gen_* functions materialize it and StreamingWorkload
// pulls from it on demand. One body serves both paths, so the streamed and
// materialized sequences are bit-identical by construction. The coroutines
// draw from their RNG in exactly the order the historical loop bodies did —
// when editing, keep every draw strictly before its dependent co_yield, or
// the golden cost tables shift.
//
// Argument validation lives in the make_* factories (plain functions), not
// in the coroutine bodies: a coroutine body only runs on first resume, and
// bad arguments should throw at construction.

namespace san {
namespace {

std::uniform_int_distribution<NodeId> node_dist(int n) {
  return std::uniform_int_distribution<NodeId>(1, n);
}

Request fresh_uniform_pair(int n, std::mt19937_64& rng) {
  auto dist = node_dist(n);
  NodeId u = dist(rng);
  NodeId v = dist(rng);
  while (v == u) v = dist(rng);
  return {u, v};
}

Trace drain(int n, std::size_t m, RequestGen gen) {
  Trace t;
  t.n = n;
  t.requests.reserve(m);
  Request r;
  while (gen.next(r)) t.requests.push_back(r);
  return t;
}

RequestGen co_uniform(int n, std::size_t m, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  for (std::size_t i = 0; i < m; ++i) co_yield fresh_uniform_pair(n, rng);
}

RequestGen make_uniform(int n, std::size_t m, std::uint64_t seed) {
  if (n < 2) throw TreeError("gen_uniform needs n >= 2");
  return co_uniform(n, m, seed);
}

RequestGen co_temporal(int n, std::size_t m, double p, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  Request last = fresh_uniform_pair(n, rng);
  for (std::size_t i = 0; i < m; ++i) {
    if (i == 0 || coin(rng) >= p) last = fresh_uniform_pair(n, rng);
    co_yield last;
  }
}

RequestGen make_temporal(int n, std::size_t m, double p, std::uint64_t seed) {
  if (n < 2) throw TreeError("gen_temporal needs n >= 2");
  if (p < 0.0 || p >= 1.0) throw TreeError("gen_temporal needs 0 <= p < 1");
  return co_temporal(n, m, p, seed);
}

RequestGen co_hpc(int n, std::size_t m, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);

  // Arrange ranks on the most cubic nx*ny*nz >= n box; ranks beyond n are
  // simply absent (their exchanges are skipped), mirroring partially filled
  // allocations.
  int nx = static_cast<int>(std::cbrt(static_cast<double>(n)));
  while (nx > 1 && n % nx != 0) --nx;
  const int rest = n / nx;
  int ny = static_cast<int>(std::sqrt(static_cast<double>(rest)));
  while (ny > 1 && rest % ny != 0) --ny;
  const int nz = rest / ny;

  auto rank_of = [&](int x, int y, int z) {
    return static_cast<NodeId>(1 + x + nx * (y + static_cast<long>(ny) * z));
  };
  // MPI ranks are laid out row-major on the grid and map to network nodes
  // identically, as in real deployments: x-neighbours are id-adjacent, so
  // HPC demand is strongly local in id space — the property that lets
  // static search trees do well on this workload (paper Table 1, Full Tree
  // row crossing above 1).
  std::vector<NodeId> node_of(static_cast<size_t>(n) + 1);
  std::iota(node_of.begin(), node_of.end(), 0);

  // Precompute the 6-point stencil pair list.
  std::vector<Request> stencil;
  for (int z = 0; z < nz; ++z)
    for (int y = 0; y < ny; ++y)
      for (int x = 0; x < nx; ++x) {
        NodeId a = rank_of(x, y, z);
        if (a > n) continue;
        const int dx[3] = {1, 0, 0};
        const int dy[3] = {0, 1, 0};
        const int dz[3] = {0, 0, 1};
        for (int d = 0; d < 3; ++d) {
          int x2 = x + dx[d], y2 = y + dy[d], z2 = z + dz[d];
          if (x2 >= nx || y2 >= ny || z2 >= nz) continue;
          NodeId b = rank_of(x2, y2, z2);
          if (b > n) continue;
          stencil.push_back({node_of[a], node_of[b]});
        }
      }
  if (stencil.empty()) throw TreeError("gen_hpc: degenerate grid");

  // Heavy-tailed per-pair intensity (mini-apps exchange volumes differ by
  // orders of magnitude between boundary regions): a pair of weight w
  // joins a sweep with probability w/8, so hot pairs recur every
  // iteration and cold ones rarely — the skew a demand-aware static tree
  // exploits.
  std::vector<int> weight(stencil.size());
  for (int& w : weight) w = 1 << (rng() % 4);  // 1, 2, 4 or 8

  // Bulk-synchronous iteration structure, as in the DOE mini-apps: each
  // iteration sweeps all halo exchanges in rank order (direction flipping
  // between iterations), with occasional collective phases at iteration
  // boundaries and a little background noise. Temporal locality is LOW —
  // a pair recurs only once per sweep — but the demand matrix is extremely
  // sparse and structured, which is exactly the regime the paper describes
  // for HPC (Section 5.1: low temporal locality; Table 1: static
  // demand-aware trees excel).
  auto rank_picker = node_dist(n);
  std::size_t count = 0;
  bool forward = true;
  while (count < m) {
    if (coin(rng) < 0.30) {
      // Collective (reduce or broadcast) rooted at rank 0.
      const bool gather = coin(rng) < 0.5;
      for (int i = 0; i < n / 3 && count < m; ++i) {
        NodeId peer = rank_picker(rng);
        while (peer == node_of[1]) peer = rank_picker(rng);
        co_yield(gather ? Request{peer, node_of[1]}
                        : Request{node_of[1], peer});
        ++count;
      }
      continue;
    }
    for (size_t pi = 0; pi < stencil.size(); ++pi) {
      const Request& pair = stencil[pi];
      if (coin(rng) * 8 >= weight[pi]) continue;
      if (coin(rng) < 0.08) {
        co_yield fresh_uniform_pair(n, rng);  // noise
        ++count;
        if (count >= m) break;
      }
      // One halo exchange is a short message train (send, reply, send):
      // directions alternate, so consecutive requests are never identical
      // (temporal locality stays low) while the pair stays hot briefly.
      const Request fwd = forward ? pair : Request{pair.dst, pair.src};
      const Request rev{fwd.dst, fwd.src};
      for (const Request& msg : {fwd, rev, fwd}) {
        co_yield msg;
        ++count;
        if (count >= m) break;
      }
      if (count >= m) break;
    }
    forward = !forward;
  }
}

RequestGen make_hpc(int n, std::size_t m, std::uint64_t seed) {
  if (n < 8) throw TreeError("gen_hpc needs n >= 8");
  return co_hpc(n, m, seed);
}

RequestGen co_projector(int n, std::size_t m, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);

  // Sparse elephant support: ~4n distinct ordered pairs with Zipf weights.
  // Requests are drawn independently — the working set is small and
  // persistent (spatial sparsity) but consecutive requests rarely repeat
  // (low *temporal* locality), which is the regime where the paper finds
  // the centroid heuristic ahead of SplayNet (Table 8, ProjecToR row).
  const size_t support = static_cast<size_t>(4) * n;
  std::vector<Request> pairs;
  pairs.reserve(support);
  while (pairs.size() < support) pairs.push_back(fresh_uniform_pair(n, rng));
  ZipfSampler zipf(static_cast<int>(support), 1.8);

  std::size_t count = 0;
  while (count < m) {
    if (coin(rng) < 0.04) {
      co_yield fresh_uniform_pair(n, rng);  // mice flows
      ++count;
      continue;
    }
    co_yield pairs[static_cast<size_t>(zipf(rng)) - 1];
    ++count;
  }
}

RequestGen make_projector(int n, std::size_t m, std::uint64_t seed) {
  if (n < 4) throw TreeError("gen_projector needs n >= 4");
  return co_projector(n, m, seed);
}

RequestGen co_facebook(int n, std::size_t m, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  ZipfSampler zipf(n, 1.30);
  std::vector<NodeId> node_of(static_cast<size_t>(n) + 1);
  std::iota(node_of.begin(), node_of.end(), 0);
  std::shuffle(node_of.begin() + 1, node_of.end(), rng);

  for (std::size_t i = 0; i < m; ++i) {
    NodeId u = node_of[static_cast<size_t>(zipf(rng))];
    NodeId v = node_of[static_cast<size_t>(zipf(rng))];
    while (v == u) v = node_of[static_cast<size_t>(zipf(rng))];
    co_yield Request{u, v};
  }
}

RequestGen make_facebook(int n, std::size_t m, std::uint64_t seed) {
  if (n < 2) throw TreeError("gen_facebook needs n >= 2");
  return co_facebook(n, m, seed);
}

RequestGen co_phase_elephants(int n, std::size_t m, int phases,
                              std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);

  const std::size_t phase_len =
      std::max<std::size_t>(1, (m + static_cast<std::size_t>(phases) - 1) /
                                   static_cast<std::size_t>(phases));
  const std::size_t support = static_cast<std::size_t>(n);
  ZipfSampler zipf(static_cast<int>(support), 1.6);

  std::size_t count = 0;
  std::vector<Request> pairs;
  while (count < m) {
    if (count % phase_len == 0) {
      // Phase boundary: a fresh elephant support — the previous hot pairs
      // go cold at once, the new ones land anywhere in the id space.
      pairs.clear();
      while (pairs.size() < support)
        pairs.push_back(fresh_uniform_pair(n, rng));
    }
    if (coin(rng) < 0.04) {
      co_yield fresh_uniform_pair(n, rng);  // mice flows
      ++count;
      continue;
    }
    co_yield pairs[static_cast<size_t>(zipf(rng)) - 1];
    ++count;
  }
}

RequestGen make_phase_elephants(int n, std::size_t m, int phases,
                                std::uint64_t seed) {
  if (n < 4) throw TreeError("gen_phase_elephants needs n >= 4");
  if (phases < 1) throw TreeError("gen_phase_elephants needs phases >= 1");
  return co_phase_elephants(n, m, phases, seed);
}

RequestGen co_rotating_hotset(int n, std::size_t m, int hot,
                              std::size_t rotate_every, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);

  std::vector<NodeId> ids(static_cast<size_t>(n));
  std::iota(ids.begin(), ids.end(), 1);
  std::vector<NodeId> hotset;

  auto hot_node = [&]() -> NodeId {
    return hotset[static_cast<size_t>(rng() % hotset.size())];
  };
  auto pick = [&]() -> NodeId {
    if (coin(rng) < 0.92) return hot_node();
    return static_cast<NodeId>(1 + rng() % static_cast<std::uint64_t>(n));
  };
  std::size_t count = 0;
  while (count < m) {
    if (count % rotate_every == 0) {
      // Resample the hot set without replacement: a fresh cluster that is
      // scattered across shards under any static partition.
      std::shuffle(ids.begin(), ids.end(), rng);
      hotset.assign(ids.begin(), ids.begin() + hot);
    }
    NodeId u = pick();
    NodeId v = pick();
    while (v == u) v = pick();
    co_yield Request{u, v};
    ++count;
  }
}

RequestGen make_rotating_hotset(int n, std::size_t m, int hot,
                                std::size_t rotate_every,
                                std::uint64_t seed) {
  if (n < 4) throw TreeError("gen_rotating_hotset needs n >= 4");
  if (hot < 2 || hot > n)
    throw TreeError("gen_rotating_hotset needs 2 <= hot <= n");
  if (rotate_every == 0)
    throw TreeError("gen_rotating_hotset needs rotate_every >= 1");
  return co_rotating_hotset(n, m, hot, rotate_every, seed);
}

RequestGen co_sequential_scan(int n, std::size_t m, std::uint64_t seed) {
  // Fully deterministic: the seed only rotates the starting position of
  // the cyclic (u, u+1) walk so different seeds exercise different wrap
  // points.
  NodeId u = static_cast<NodeId>(
      1 + seed % static_cast<std::uint64_t>(n - 1));
  for (std::size_t i = 0; i < m; ++i) {
    co_yield Request{u, static_cast<NodeId>(u + 1)};
    ++u;
    if (u >= static_cast<NodeId>(n)) u = 1;
  }
}

RequestGen make_sequential_scan(int n, std::size_t m, std::uint64_t seed) {
  if (n < 2) throw TreeError("gen_sequential_scan needs n >= 2");
  return co_sequential_scan(n, m, seed);
}

RequestGen co_bit_reversal(int n, std::size_t m, std::uint64_t seed) {
  // Walk the bit-reversal permutation of the smallest power-of-two id
  // space covering n, skipping out-of-range values, and pair consecutive
  // visited ids. The seed rotates the starting offset in the permutation.
  int bits = 1;
  while ((std::uint32_t{1} << bits) < static_cast<std::uint32_t>(n)) ++bits;
  const std::uint32_t period = std::uint32_t{1} << bits;
  const auto rev = [bits](std::uint32_t x) {
    std::uint32_t r = 0;
    for (int b = 0; b < bits; ++b) {
      r = (r << 1) | (x & 1u);
      x >>= 1;
    }
    return r;
  };
  std::uint32_t j = static_cast<std::uint32_t>(seed % period);
  NodeId prev = kNoNode;
  std::size_t emitted = 0;
  while (emitted < m) {
    const std::uint32_t r = rev(j & (period - 1));
    ++j;
    if (r >= static_cast<std::uint32_t>(n)) continue;
    const NodeId cur = static_cast<NodeId>(r + 1);
    if (prev != kNoNode && prev != cur) {
      co_yield Request{prev, cur};
      ++emitted;
    }
    prev = cur;
  }
}

RequestGen make_bit_reversal(int n, std::size_t m, std::uint64_t seed) {
  if (n < 2) throw TreeError("gen_bit_reversal needs n >= 2");
  return co_bit_reversal(n, m, seed);
}

}  // namespace

Trace gen_uniform(int n, std::size_t m, std::uint64_t seed) {
  return drain(n, m, make_uniform(n, m, seed));
}

Trace gen_temporal(int n, std::size_t m, double p, std::uint64_t seed) {
  return drain(n, m, make_temporal(n, m, p, seed));
}

Trace gen_hpc(int n, std::size_t m, std::uint64_t seed) {
  return drain(n, m, make_hpc(n, m, seed));
}

Trace gen_projector(int n, std::size_t m, std::uint64_t seed) {
  return drain(n, m, make_projector(n, m, seed));
}

Trace gen_facebook(int n, std::size_t m, std::uint64_t seed) {
  return drain(n, m, make_facebook(n, m, seed));
}

Trace gen_phase_elephants(int n, std::size_t m, int phases,
                          std::uint64_t seed) {
  return drain(n, m, make_phase_elephants(n, m, phases, seed));
}

Trace gen_rotating_hotset(int n, std::size_t m, int hot,
                          std::size_t rotate_every, std::uint64_t seed) {
  return drain(n, m, make_rotating_hotset(n, m, hot, rotate_every, seed));
}

Trace gen_sequential_scan(int n, std::size_t m, std::uint64_t seed) {
  return drain(n, m, make_sequential_scan(n, m, seed));
}

Trace gen_bit_reversal(int n, std::size_t m, std::uint64_t seed) {
  return drain(n, m, make_bit_reversal(n, m, seed));
}

const char* workload_name(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kUniform:
      return "Uniform";
    case WorkloadKind::kTemporal025:
      return "Temporal 0.25";
    case WorkloadKind::kTemporal05:
      return "Temporal 0.5";
    case WorkloadKind::kTemporal075:
      return "Temporal 0.75";
    case WorkloadKind::kTemporal09:
      return "Temporal 0.9";
    case WorkloadKind::kHpc:
      return "HPC";
    case WorkloadKind::kProjector:
      return "ProjecToR";
    case WorkloadKind::kFacebook:
      return "Facebook";
    case WorkloadKind::kPhaseElephants:
      return "PhaseElephants";
    case WorkloadKind::kRotatingHot:
      return "RotatingHot";
    case WorkloadKind::kSequentialScan:
      return "SequentialScan";
    case WorkloadKind::kBitReversal:
      return "BitReversal";
  }
  return "?";
}

int paper_node_count(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kUniform:
      return 100;
    case WorkloadKind::kTemporal025:
    case WorkloadKind::kTemporal05:
    case WorkloadKind::kTemporal075:
    case WorkloadKind::kTemporal09:
      return 1023;
    case WorkloadKind::kHpc:
      return 500;
    case WorkloadKind::kProjector:
      return 100;
    case WorkloadKind::kFacebook:
      return 10000;
    case WorkloadKind::kPhaseElephants:
    case WorkloadKind::kRotatingHot:
    case WorkloadKind::kSequentialScan:
    case WorkloadKind::kBitReversal:
      return 1024;
  }
  return 0;
}

RequestGen stream_workload(WorkloadKind kind, int n, std::size_t m,
                           std::uint64_t seed) {
  if (n <= 0) n = paper_node_count(kind);
  switch (kind) {
    case WorkloadKind::kUniform:
      return make_uniform(n, m, seed);
    case WorkloadKind::kTemporal025:
      return make_temporal(n, m, 0.25, seed);
    case WorkloadKind::kTemporal05:
      return make_temporal(n, m, 0.5, seed);
    case WorkloadKind::kTemporal075:
      return make_temporal(n, m, 0.75, seed);
    case WorkloadKind::kTemporal09:
      return make_temporal(n, m, 0.9, seed);
    case WorkloadKind::kHpc:
      return make_hpc(n, m, seed);
    case WorkloadKind::kProjector:
      return make_projector(n, m, seed);
    case WorkloadKind::kFacebook:
      return make_facebook(n, m, seed);
    case WorkloadKind::kPhaseElephants:
      return make_phase_elephants(n, m, /*phases=*/8, seed);
    case WorkloadKind::kRotatingHot:
      return make_rotating_hotset(
          n, m, /*hot=*/std::max(2, n / 16),
          /*rotate_every=*/std::max<std::size_t>(1, m / 16), seed);
    case WorkloadKind::kSequentialScan:
      return make_sequential_scan(n, m, seed);
    case WorkloadKind::kBitReversal:
      return make_bit_reversal(n, m, seed);
  }
  throw TreeError("unknown workload kind");
}

Trace gen_workload(WorkloadKind kind, int n, std::size_t m,
                   std::uint64_t seed) {
  if (n <= 0) n = paper_node_count(kind);
  return drain(n, m, stream_workload(kind, n, m, seed));
}

}  // namespace san
