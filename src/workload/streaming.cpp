#include "workload/streaming.hpp"

#include "core/types.hpp"

namespace san {

std::size_t TraceStream::fill(std::span<Request> out) {
  const std::size_t avail = trace_->size() - next_;
  const std::size_t count = std::min(avail, out.size());
  for (std::size_t i = 0; i < count; ++i) out[i] = trace_->requests[next_ + i];
  next_ += count;
  return count;
}

StreamingWorkload::StreamingWorkload(WorkloadKind kind, int n, std::size_t m,
                                     std::uint64_t seed)
    : n_(n <= 0 ? paper_node_count(kind) : n), m_(m) {
  gen_ = stream_workload(kind, n_, m_, seed);
}

std::size_t StreamingWorkload::fill(std::span<Request> out) {
  std::size_t count = 0;
  Request r;
  while (count < out.size() && gen_.next(r)) out[count++] = r;
  return count;
}

Trace materialize_stream(RequestStream& stream) {
  Trace t;
  t.n = stream.n();
  // size() is a claim, not a guarantee (an istream-backed v2 reader takes
  // it from the file header): cap the up-front allocation the same way
  // read_trace caps its header reserve, and let push_back grow past it
  // only as data actually arrives.
  constexpr std::size_t kMaxReserve = 1 << 20;
  t.requests.reserve(std::min(stream.size(), kMaxReserve));
  Request chunk[4096];
  while (true) {
    const std::size_t got = stream.fill(chunk);
    if (got == 0) break;
    t.requests.insert(t.requests.end(), chunk, chunk + got);
  }
  return t;
}

}  // namespace san
