#include "workload/rebalance.hpp"

#include <algorithm>
#include <cmath>

namespace san {
namespace {

std::uint64_t pair_key(NodeId u, NodeId v) { return pack_node_pair(u, v); }

}  // namespace

const char* rebalance_policy_name(RebalancePolicy policy) {
  switch (policy) {
    case RebalancePolicy::kNone:
      return "none";
    case RebalancePolicy::kHotPair:
      return "hotpair";
    case RebalancePolicy::kWatermark:
      return "watermark";
  }
  return "?";
}

const char* rebalance_trigger_name(RebalanceTrigger trigger) {
  switch (trigger) {
    case RebalanceTrigger::kEveryEpoch:
      return "every-epoch";
    case RebalanceTrigger::kCrossFraction:
      return "cross-fraction";
    case RebalanceTrigger::kImbalance:
      return "imbalance";
    case RebalanceTrigger::kDrift:
      return "drift";
  }
  return "?";
}

const char* demand_tracker_name(DemandTracker tracker) {
  switch (tracker) {
    case DemandTracker::kExact:
      return "exact";
    case DemandTracker::kSketch:
      return "sketch";
  }
  return "?";
}

RebalanceState::RebalanceState(RebalanceConfig cfg) : cfg_(cfg) {
  if (cfg_.window_decay < 0.0 || cfg_.window_decay >= 1.0)
    throw TreeError("RebalanceState: window_decay must be in [0, 1)");
  if (cfg_.max_migrations < 0)
    throw TreeError("RebalanceState: max_migrations must be >= 0");
  if (cfg_.split_watermark < 0.0 || cfg_.merge_watermark < 0.0)
    throw TreeError("RebalanceState: lifecycle watermarks must be >= 0");
  if (cfg_.replicas < 0)
    throw TreeError("RebalanceState: replicas must be >= 0");
  if (cfg_.max_shards < 1 || cfg_.min_shards < 1)
    throw TreeError("RebalanceState: shard-count bounds must be >= 1");
  if (cfg_.tracker == DemandTracker::kSketch) {
    if (cfg_.sketch_top_k < 1)
      throw TreeError("RebalanceState: sketch_top_k must be >= 1");
    hot_ = std::make_unique<SpaceSaving>(cfg_.sketch_top_k);
    cm_ = std::make_unique<CountMinSketch>(cfg_.sketch_cm_width,
                                           cfg_.sketch_cm_depth);
  }
}

void RebalanceState::observe(const Request& r, const ShardMap& map) {
  if (r.src == r.dst) return;
  const std::uint64_t key = pair_key(r.src, r.dst);
  if (hot_) {
    hot_->observe(key, 1.0);
    cm_->observe(key, 1.0);
  } else {
    pairs_[key] += 1.0;
  }
  requests_ += 1.0;
  if (map.shard_of(r.src) != map.shard_of(r.dst)) cross_ += 1.0;
}

double RebalanceState::pair_weight(NodeId u, NodeId v) const {
  const std::uint64_t key = pair_key(u, v);
  if (hot_) {
    // Tracked heavy pairs answer from the summary; the long tail falls
    // back to the count-min point estimate (never an underestimate).
    // Estimates below the retention floor are decayed-out noise — the
    // exact window would have pruned them, so report 0 like it does.
    if (hot_->contains(key)) return hot_->count(key);
    const double est = cm_->estimate(key);
    return est < kWindowFloorWeight ? 0.0 : est;
  }
  const auto it = pairs_.find(key);
  return it == pairs_.end() ? 0.0 : it->second;
}

std::vector<RebalanceState::PairEntry> RebalanceState::sorted_entries() const {
  std::vector<PairEntry> entries;
  if (hot_) {
    // The space-saving summary IS the window under kSketch: the planner
    // works off the top-k heavy pairs (already in (count desc, key asc)
    // order, which matches the exact branch's sort below).
    const std::vector<SpaceSaving::Entry> tracked = hot_->entries();
    entries.reserve(tracked.size());
    for (const SpaceSaving::Entry& e : tracked)
      entries.push_back({static_cast<NodeId>(e.key >> 32),
                         static_cast<NodeId>(e.key & 0xffffffffu), e.count});
    return entries;
  }
  entries.reserve(pairs_.size());
  for (const auto& [key, weight] : pairs_)
    entries.push_back({static_cast<NodeId>(key >> 32),
                       static_cast<NodeId>(key & 0xffffffffu), weight});
  // Hot pairs first; full (u, v) tie-break so the order — and with it every
  // greedy decision — is independent of hash-map iteration order.
  std::sort(entries.begin(), entries.end(),
            [](const PairEntry& a, const PairEntry& b) {
              if (a.weight != b.weight) return a.weight > b.weight;
              if (a.u != b.u) return a.u < b.u;
              return a.v < b.v;
            });
  return entries;
}

void RebalanceState::decay() {
  requests_ *= cfg_.window_decay;
  cross_ *= cfg_.window_decay;
  if (hot_) {
    hot_->scale(cfg_.window_decay);
    hot_->prune_below(kWindowFloorWeight);
    cm_->scale(cfg_.window_decay);
    return;
  }
  for (auto& [key, weight] : pairs_) weight *= cfg_.window_decay;
  // Prune aged-out pairs: only weights that have decayed to noise
  // (kWindowFloorWeight) are dropped unconditionally. The cut must NOT
  // start at 1.0 — that would evict every pair not re-observed in the
  // current epoch after a single decay, collapsing the "exponentially aged
  // sliding window" to depth 1 for cold pairs even with the table nearly
  // empty. Only when the table exceeds its capacity does the cut rise
  // (deterministic doubling; value predicate — no dependence on iteration
  // order) until it fits, evicting lightest-first as documented.
  double cut = kWindowFloorWeight;
  while (true) {
    std::erase_if(pairs_, [cut](const auto& kv) { return kv.second < cut; });
    if (pairs_.size() <= cfg_.window_capacity) break;
    cut *= 2.0;
  }
}

RebalancePlan RebalanceState::epoch(const ShardMap& map,
                                    const RebalanceCostHints& hints) {
  RebalancePlan plan;
  plan.cross_fraction =
      requests_ == 0.0 ? 0.0 : cross_ / requests_;

  const std::vector<PairEntry> entries = sorted_entries();

  // Window load per shard (each endpoint touch counts its weight), shared
  // by the imbalance trigger and the watermark policy.
  std::vector<double> touches(static_cast<std::size_t>(map.shards()), 0.0);
  for (const PairEntry& e : entries) {
    touches[static_cast<std::size_t>(map.shard_of(e.u))] += e.weight;
    const int sv = map.shard_of(e.v);
    if (sv != map.shard_of(e.u))
      touches[static_cast<std::size_t>(sv)] += e.weight;
  }
  {
    double max = 0.0, sum = 0.0;
    int active = 0;
    for (int s = 0; s < map.shards(); ++s) {
      if (map.shard_size(s) == 0) continue;
      ++active;
      max = std::max(max, touches[static_cast<std::size_t>(s)]);
      sum += touches[static_cast<std::size_t>(s)];
    }
    plan.load_imbalance =
        (active == 0 || sum == 0.0) ? 1.0 : max / (sum / active);
  }

  // Drift score: how much of the current hot-pair set is new. Computed
  // every epoch (not only under kDrift) so the plan always reports it and
  // the history stays warm across trigger changes.
  {
    std::vector<std::uint64_t> top;
    const std::size_t k = std::min(cfg_.drift_top_k, entries.size());
    top.reserve(k);
    for (std::size_t i = 0; i < k; ++i)
      top.push_back(pair_key(entries[i].u, entries[i].v));
    std::sort(top.begin(), top.end());
    if (prev_top_.empty() || top.empty()) {
      // An empty history is not drift: the first window only seeds the
      // detector. The initial partition is configuration — rebalancing
      // exists to chase *change*, and a workload that never changes should
      // serve exactly like PR 3's static engine.
      plan.drift = 0.0;
    } else {
      std::size_t fresh = 0;
      for (std::uint64_t key : top)
        if (!std::binary_search(prev_top_.begin(), prev_top_.end(), key))
          ++fresh;
      plan.drift = static_cast<double>(fresh) / static_cast<double>(top.size());
    }
    if (!top.empty()) prev_top_ = std::move(top);
  }

  switch (cfg_.trigger) {
    case RebalanceTrigger::kEveryEpoch:
      plan.triggered = true;
      break;
    case RebalanceTrigger::kCrossFraction:
      plan.triggered = plan.cross_fraction > cfg_.trigger_cross_fraction;
      break;
    case RebalanceTrigger::kImbalance:
      plan.triggered = plan.load_imbalance > cfg_.trigger_imbalance;
      break;
    case RebalanceTrigger::kDrift:
      plan.triggered = plan.drift > cfg_.trigger_drift;
      break;
  }

  if (plan.triggered && map.shards() > 1) {
    RebalanceCostHints resolved = hints;
    if (cfg_.cross_penalty > 0.0) resolved.cross_penalty = cfg_.cross_penalty;
    if (cfg_.policy == RebalancePolicy::kHotPair)
      plan_hot_pairs(map, resolved, entries, plan);
    else if (cfg_.policy == RebalancePolicy::kWatermark)
      plan_watermark(map, resolved, entries, touches, plan);
  }

  // Lifecycle decisions fire on every epoch regardless of the migration
  // trigger: a fleet-shape change answers sustained load skew, which the
  // drift detector deliberately ignores.
  if (cfg_.lifecycle_enabled()) plan_lifecycle(map, entries, touches, plan);

  decay();
  return plan;
}

void RebalanceState::plan_lifecycle(const ShardMap& map,
                                    const std::vector<PairEntry>& entries,
                                    const std::vector<double>& touches,
                                    RebalancePlan& plan) const {
  // Per-shard window load over node-owning shards, plus the two coldest
  // and the hottest — all tie-broken toward the smaller id so the plan is
  // a pure function of the window.
  double max = 0.0, sum = 0.0;
  int active = 0, hottest = -1;
  int cold1 = -1, cold2 = -1;  // coldest and second-coldest
  for (int s = 0; s < map.shards(); ++s) {
    if (map.shard_size(s) == 0) continue;
    ++active;
    const double w = touches[static_cast<std::size_t>(s)];
    sum += w;
    if (hottest < 0 || w > max) {
      max = w;
      hottest = s;
    }
    if (cold1 < 0 || w < touches[static_cast<std::size_t>(cold1)]) {
      cold2 = cold1;
      cold1 = s;
    } else if (cold2 < 0 || w < touches[static_cast<std::size_t>(cold2)]) {
      cold2 = s;
    }
  }
  if (active < 1 || sum == 0.0) return;  // empty window: nothing to react to
  const double mean = sum / active;

  // Replica set: the cfg_.replicas shards with the heaviest *intra*-shard
  // window weight (both endpoints inside), weight > 0, ties to the
  // smaller id. Ids refer to the pre-lifecycle map; the runner reconciles
  // replicas before applying any split/merge of the same barrier.
  if (cfg_.replicas > 0) {
    std::vector<double> intra_w(static_cast<std::size_t>(map.shards()), 0.0);
    for (const PairEntry& e : entries) {
      const int su = map.shard_of(e.u);
      if (su == map.shard_of(e.v)) intra_w[static_cast<std::size_t>(su)] += e.weight;
    }
    std::vector<int> order;
    for (int s = 0; s < map.shards(); ++s)
      if (intra_w[static_cast<std::size_t>(s)] > 0.0) order.push_back(s);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      const double wa = intra_w[static_cast<std::size_t>(a)];
      const double wb = intra_w[static_cast<std::size_t>(b)];
      if (wa != wb) return wa > wb;
      return a < b;
    });
    order.resize(std::min(order.size(),
                          static_cast<std::size_t>(cfg_.replicas)));
    std::sort(order.begin(), order.end());
    plan.replicate = std::move(order);
  }

  // Split the hottest shard when it carries more than split_watermark x
  // the mean load. >= 4 nodes so both halves can later merge or shed
  // nodes without tripping the never-drain guards.
  if (cfg_.split_watermark > 0.0 && map.shards() < cfg_.max_shards &&
      hottest >= 0 && max > cfg_.split_watermark * mean &&
      map.shard_size(hottest) >= 4) {
    plan.split_shard = hottest;
    return;  // never split and merge at the same barrier
  }

  // Merge the two coldest shards when their combined load is below
  // merge_watermark x the mean and the combined shard fits the capacity
  // guard of the shrunken fleet.
  if (cfg_.merge_watermark > 0.0 && active > 1 &&
      map.shards() > std::max(cfg_.min_shards, 1) && cold1 >= 0 &&
      cold2 >= 0) {
    const double combined = touches[static_cast<std::size_t>(cold1)] +
                            touches[static_cast<std::size_t>(cold2)];
    const int merged_nodes = map.shard_size(cold1) + map.shard_size(cold2);
    const double post_even = static_cast<double>(map.n()) /
                             static_cast<double>(map.shards() - 1);
    if (combined < cfg_.merge_watermark * mean &&
        static_cast<double>(merged_nodes) <=
            cfg_.capacity_factor * post_even) {
      plan.merge_into = std::min(cold1, cold2);
      plan.merge_from = std::max(cold1, cold2);
    }
  }
}

namespace {

/// Per-node window adjacency, built once per planning pass from the sorted
/// entry list (so its per-node partner order is deterministic too).
struct Adjacency {
  std::unordered_map<NodeId, std::vector<std::pair<NodeId, double>>> of;

  void add(NodeId a, NodeId b, double w) {
    of[a].push_back({b, w});
    of[b].push_back({a, w});
  }
};

/// Window weight node `x` sends to shard `t` under assignment `shard_of`.
double affinity(const Adjacency& adj, const std::vector<int>& shard_of,
                NodeId x, int t) {
  const auto it = adj.of.find(x);
  if (it == adj.of.end()) return 0.0;
  double sum = 0.0;
  for (const auto& [partner, w] : it->second)
    if (shard_of[static_cast<std::size_t>(partner)] == t) sum += w;
  return sum;
}

/// Working copies a greedy planning pass mutates as it accepts moves, so
/// later decisions price earlier ones in. Shared by both policies.
struct PlanScratch {
  std::vector<int> shard_of;
  std::vector<int> owned;
  std::vector<bool> moved;

  explicit PlanScratch(const ShardMap& map)
      : shard_of(static_cast<std::size_t>(map.n()) + 1),
        owned(static_cast<std::size_t>(map.shards())),
        moved(static_cast<std::size_t>(map.n()) + 1, false) {
    for (NodeId id = 1; id <= map.n(); ++id)
      shard_of[static_cast<std::size_t>(id)] = map.shard_of(id);
    for (int s = 0; s < map.shards(); ++s)
      owned[static_cast<std::size_t>(s)] = map.shard_size(s);
  }
};

}  // namespace

namespace {

/// Largest node count the capacity guard lets one shard reach.
int shard_capacity(const ShardMap& map, double factor) {
  const double even =
      static_cast<double>(map.n()) / static_cast<double>(map.shards());
  const int cap = static_cast<int>(factor * even);
  return std::max(cap, 2);
}

}  // namespace

void RebalanceState::plan_hot_pairs(const ShardMap& map,
                                    const RebalanceCostHints& hints,
                                    const std::vector<PairEntry>& entries,
                                    RebalancePlan& plan) const {
  Adjacency adj;
  for (const PairEntry& e : entries) adj.add(e.u, e.v, e.weight);
  const int capacity = shard_capacity(map, cfg_.capacity_factor);

  PlanScratch sc(map);
  std::vector<int>& shard_of = sc.shard_of;
  std::vector<int>& owned = sc.owned;
  std::vector<bool>& moved = sc.moved;

  for (const PairEntry& e : entries) {
    if (static_cast<int>(plan.migrations.size()) >= cfg_.max_migrations) break;
    const int su = shard_of[static_cast<std::size_t>(e.u)];
    const int sv = shard_of[static_cast<std::size_t>(e.v)];
    if (su == sv) continue;

    // Candidate moves: u joins v's shard or v joins u's. Score each by the
    // projected per-window saving (affinity gained minus affinity lost,
    // priced at the cross penalty) net of the migration cost estimate.
    double best_gain = cfg_.min_gain;
    NodeId best_node = kNoNode;
    int best_target = -1;
    for (const auto& [node, target] : {std::pair{e.u, sv}, std::pair{e.v, su}}) {
      const int cur = shard_of[static_cast<std::size_t>(node)];
      if (moved[static_cast<std::size_t>(node)]) continue;
      if (owned[static_cast<std::size_t>(cur)] <= 1) continue;  // never drain
      if (owned[static_cast<std::size_t>(target)] >= capacity) continue;
      const double delta = affinity(adj, shard_of, node, target) -
                           affinity(adj, shard_of, node, cur);
      const double gain = delta * hints.cross_penalty - hints.migration_cost;
      if (gain > best_gain) {
        best_gain = gain;
        best_node = node;
        best_target = target;
      }
    }
    if (best_node == kNoNode) continue;

    plan.migrations.push_back({best_node, best_target});
    plan.est_gain += best_gain;
    moved[static_cast<std::size_t>(best_node)] = true;
    --owned[static_cast<std::size_t>(shard_of[static_cast<std::size_t>(best_node)])];
    ++owned[static_cast<std::size_t>(best_target)];
    shard_of[static_cast<std::size_t>(best_node)] = best_target;
  }
}

void RebalanceState::plan_watermark(const ShardMap& map,
                                    const RebalanceCostHints& hints,
                                    const std::vector<PairEntry>& entries,
                                    const std::vector<double>& touches,
                                    RebalancePlan& plan) const {
  Adjacency adj;
  for (const PairEntry& e : entries) adj.add(e.u, e.v, e.weight);
  // The greedy loop evolves the same per-shard load epoch() already
  // measured (one endpoint touch per pair per shard).
  std::vector<double> load = touches;

  PlanScratch sc(map);
  std::vector<int>& shard_of = sc.shard_of;
  std::vector<int>& owned = sc.owned;
  std::vector<bool>& moved = sc.moved;

  // Per-node window weight (the sum over its pairs; its *shed-able* load
  // is smaller — pairs with a partner in the same shard keep touching the
  // shard through the partner after the node leaves).
  std::unordered_map<NodeId, double> node_load;
  for (const PairEntry& e : entries) {
    node_load[e.u] += e.weight;
    node_load[e.v] += e.weight;
  }

  while (static_cast<int>(plan.migrations.size()) < cfg_.max_migrations) {
    double max = 0.0, sum = 0.0;
    int active = 0, hottest = -1;
    for (int s = 0; s < map.shards(); ++s) {
      if (owned[static_cast<std::size_t>(s)] == 0) continue;
      ++active;
      sum += load[static_cast<std::size_t>(s)];
      if (hottest < 0 || load[static_cast<std::size_t>(s)] > max) {
        max = load[static_cast<std::size_t>(s)];
        hottest = s;
      }
    }
    if (active <= 1 || sum == 0.0) break;
    const double mean = sum / active;
    if (max <= cfg_.watermark * mean) break;
    if (owned[static_cast<std::size_t>(hottest)] <= 1) break;

    // Evict the node of the hottest shard least attached to it: smallest
    // (internal - external) window affinity; ties break toward the node
    // with less load, then the smaller id.
    NodeId evict = kNoNode;
    double evict_score = 0.0;
    double evict_load = 0.0;
    for (NodeId local = 1; local <= map.shard_size(hottest); ++local) {
      const NodeId node = map.global_of(hottest, local);
      if (moved[static_cast<std::size_t>(node)]) continue;
      if (shard_of[static_cast<std::size_t>(node)] != hottest) continue;
      const auto nl = node_load.find(node);
      const double w = nl == node_load.end() ? 0.0 : nl->second;
      if (w == 0.0) continue;  // moving silent nodes cannot shed load
      const double score =
          2.0 * affinity(adj, shard_of, node, hottest) - w;  // internal - external
      if (evict == kNoNode || score < evict_score ||
          (score == evict_score && w < evict_load)) {
        evict = node;
        evict_score = score;
        evict_load = w;
      }
    }
    if (evict == kNoNode) break;

    // Send it where it is most attached among the under-loaded shards;
    // with no attachment anywhere, fall back to the least-loaded one.
    int target = -1;
    double target_aff = 0.0;  // strictly positive affinity required
    int coldest = -1;
    const int capacity = shard_capacity(map, cfg_.capacity_factor);
    for (int s = 0; s < map.shards(); ++s) {
      if (s == hottest || owned[static_cast<std::size_t>(s)] == 0) continue;
      if (owned[static_cast<std::size_t>(s)] >= capacity) continue;
      if (load[static_cast<std::size_t>(s)] >= mean) continue;
      if (coldest < 0 ||
          load[static_cast<std::size_t>(s)] < load[static_cast<std::size_t>(coldest)])
        coldest = s;
      const double aff = affinity(adj, shard_of, evict, s);
      if (aff > target_aff) {
        target_aff = aff;
        target = s;
      }
    }
    if (target < 0) {
      target = coldest;
      if (target < 0) break;
      target_aff = affinity(adj, shard_of, evict, target);
    }

    plan.migrations.push_back({evict, target});
    plan.est_gain += target_aff * hints.cross_penalty - hints.migration_cost;
    moved[static_cast<std::size_t>(evict)] = true;
    // A touch leaves the hot shard only for pairs whose partner is not
    // also there (intra pairs keep anchoring it through the partner), and
    // the target gains one touch for every pair not already ending there.
    const auto nl = node_load.find(evict);
    const double w = nl == node_load.end() ? 0.0 : nl->second;
    load[static_cast<std::size_t>(hottest)] -=
        w - affinity(adj, shard_of, evict, hottest);
    load[static_cast<std::size_t>(target)] += w - target_aff;
    --owned[static_cast<std::size_t>(hottest)];
    ++owned[static_cast<std::size_t>(target)];
    shard_of[static_cast<std::size_t>(evict)] = target;
  }
}

}  // namespace san
