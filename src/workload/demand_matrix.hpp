// Dense demand matrix D[u][v] = number of (u, v) requests, plus the
// prefix-sum machinery behind the W matrix of the offline DP (Appendix A,
// Claim 16): W[i, j] is the total number of requests with exactly one
// endpoint inside the id segment [i, j].
#pragma once

#include <vector>

#include "core/karytree.hpp"
#include "core/types.hpp"
#include "workload/request.hpp"

namespace san {

class DemandMatrix {
 public:
  /// Dense n x n storage; intended for the offline algorithms (n up to a
  /// few thousand). Large online-only workloads never build one.
  explicit DemandMatrix(int n);

  static DemandMatrix from_trace(const Trace& trace);
  /// All-ones upper-triangular matrix: the finite uniform workload of
  /// Section 3.2 (each unordered pair requested exactly once).
  static DemandMatrix uniform(int n);

  int n() const { return n_; }
  Cost at(NodeId u, NodeId v) const { return d_[index(u, v)]; }
  void add(NodeId u, NodeId v, Cost count = 1);
  Cost total_requests() const { return total_; }

  /// Forces the lazy prefix-sum build now. The offline DPs call this once
  /// before their parallel rounds (the build is not thread-safe), and the
  /// benchmarks call it before starting timers so the one-time O(n^2) build
  /// is not charged to whichever DP cell happens to run first.
  void prewarm() const { ensure_prefix(); }

  /// Sum of D over [i..j] x [i..j]. Requires i <= j. O(1) after first use.
  Cost inside(int i, int j) const;
  /// W[i, j]: requests crossing the segment boundary (Appendix A). O(1)
  /// after first use; segments with i > j yield 0.
  Cost boundary(int i, int j) const;

  /// TotalDistance(D, T) = sum_{u,v} d_T(u, v) * D[u, v].
  Cost total_distance(const KAryTree& tree) const;

 private:
  size_t index(NodeId u, NodeId v) const {
    return static_cast<size_t>(u - 1) * n_ + (v - 1);
  }
  void ensure_prefix() const;

  int n_;
  Cost total_ = 0;
  std::vector<Cost> d_;
  // (n+1)^2 2D prefix sums + per-row/column totals, built lazily.
  mutable std::vector<Cost> prefix_;
  mutable std::vector<Cost> row_total_, col_total_;
  mutable bool prefix_ready_ = false;
};

}  // namespace san
