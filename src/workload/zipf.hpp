// Zipf / power-law sampling used by the trace generators.
//
// P(rank r) ~ 1 / r^alpha over ranks 1..n, sampled by binary search on the
// precomputed CDF (O(log n) per draw; exact, no rejection). Rank-to-item
// shuffling is left to the callers so that "popular" ids are not clustered
// in id space (which would unrealistically favour search-tree locality).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include "core/rng.hpp"

namespace san {

class ZipfSampler {
 public:
  ZipfSampler(int n, double alpha) : cdf_(static_cast<size_t>(n)) {
    double acc = 0.0;
    for (int r = 1; r <= n; ++r) {
      acc += 1.0 / std::pow(static_cast<double>(r), alpha);
      cdf_[static_cast<size_t>(r - 1)] = acc;
    }
    for (double& x : cdf_) x /= acc;
  }

  /// Returns a rank in [1, n]. The variate comes from uniform_open (raw
  /// top-53-bit construction), not std::uniform_real_distribution, whose
  /// algorithm is implementation-defined: traces — and every golden cost
  /// derived from them — must be bit-identical across standard libraries
  /// (the contract workload/arrival.hpp documents).
  int operator()(std::mt19937_64& rng) const {
    const double u = uniform_open(rng);
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<int>(it - cdf_.begin()) + 1;
  }

  int n() const { return static_cast<int>(cdf_.size()); }

 private:
  std::vector<double> cdf_;
};

}  // namespace san
