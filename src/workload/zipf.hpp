// Zipf / power-law sampling used by the trace generators.
//
// P(rank r) ~ 1 / r^alpha over ranks 1..n, sampled by binary search on the
// precomputed CDF (O(log n) per draw; exact, no rejection). Rank-to-item
// shuffling is left to the callers so that "popular" ids are not clustered
// in id space (which would unrealistically favour search-tree locality).
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace san {

class ZipfSampler {
 public:
  ZipfSampler(int n, double alpha) : cdf_(static_cast<size_t>(n)) {
    double acc = 0.0;
    for (int r = 1; r <= n; ++r) {
      acc += 1.0 / std::pow(static_cast<double>(r), alpha);
      cdf_[static_cast<size_t>(r - 1)] = acc;
    }
    for (double& x : cdf_) x /= acc;
  }

  /// Returns a rank in [1, n].
  int operator()(std::mt19937_64& rng) const {
    const double u = std::uniform_real_distribution<double>(0.0, 1.0)(rng);
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<int>(it - cdf_.begin()) + 1;
  }

  int n() const { return static_cast<int>(cdf_.size()); }

 private:
  std::vector<double> cdf_;
};

}  // namespace san
