#include "workload/partition.hpp"

#include <algorithm>
#include <iterator>
#include <string>

#include "core/rng.hpp"

namespace san {
namespace {

/// splitmix64 (core/rng.hpp): stable across platforms — the shard
/// assignment is part of the reproducible experiment setup, so it must not
/// depend on std::hash.
std::uint64_t mix64(std::uint64_t x) { return splitmix64_mix(x); }

}  // namespace

const char* shard_partition_name(ShardPartition policy) {
  switch (policy) {
    case ShardPartition::kContiguous:
      return "contiguous";
    case ShardPartition::kHash:
      return "hash";
    case ShardPartition::kExplicit:
      return "explicit";
  }
  return "?";
}

ShardMap::ShardMap(int n, int shards, ShardPartition policy)
    : n_(n), shards_(shards), policy_(policy) {
  if (n < 1) throw TreeError("ShardMap: need at least one node");
  if (shards < 1 || shards > n)
    throw TreeError("ShardMap: shard count must be in [1, n], got " +
                    std::to_string(shards) + " for n=" + std::to_string(n));

  shard_of_.assign(static_cast<std::size_t>(n) + 1, 0);
  local_of_.assign(static_cast<std::size_t>(n) + 1, kNoNode);
  globals_.assign(static_cast<std::size_t>(shards), {});

  for (NodeId id = 1; id <= n; ++id) {
    int s = 0;
    if (policy == ShardPartition::kContiguous) {
      // First (n % S) shards get ceil(n/S) ids, the rest floor(n/S).
      const int base = n / shards;
      const int big = n % shards;
      const int cut = big * (base + 1);
      s = (id - 1) < cut ? (id - 1) / (base + 1)
                         : big + ((id - 1) - cut) / base;
    } else {
      s = static_cast<int>(mix64(static_cast<std::uint64_t>(id)) %
                           static_cast<std::uint64_t>(shards));
    }
    shard_of_[static_cast<std::size_t>(id)] = s;
    // Ascending-id construction order makes local ids rank-ordered.
    globals_[static_cast<std::size_t>(s)].push_back(id);
    local_of_[static_cast<std::size_t>(id)] =
        static_cast<NodeId>(globals_[static_cast<std::size_t>(s)].size());
  }

  for (int s = 0; s < shards; ++s)
    if (globals_[static_cast<std::size_t>(s)].empty())
      throw TreeError("ShardMap: " + std::string(shard_partition_name(policy)) +
                      " partition left shard " + std::to_string(s) +
                      " empty; use fewer shards");
}

ShardMap::ShardMap(int n, int shards, const std::vector<int>& assignment)
    : n_(n), shards_(shards), policy_(ShardPartition::kExplicit) {
  if (n < 1) throw TreeError("ShardMap: need at least one node");
  if (shards < 1) throw TreeError("ShardMap: need at least one shard");
  if (assignment.size() != static_cast<std::size_t>(n) + 1)
    throw TreeError("ShardMap: assignment must have n+1 entries (index 0 unused)");

  shard_of_.assign(static_cast<std::size_t>(n) + 1, 0);
  local_of_.assign(static_cast<std::size_t>(n) + 1, kNoNode);
  globals_.assign(static_cast<std::size_t>(shards), {});
  for (NodeId id = 1; id <= n; ++id) {
    const int s = assignment[static_cast<std::size_t>(id)];
    if (s < 0 || s >= shards)
      throw TreeError("ShardMap: assignment of node " + std::to_string(id) +
                      " out of range");
    shard_of_[static_cast<std::size_t>(id)] = s;
    globals_[static_cast<std::size_t>(s)].push_back(id);
    local_of_[static_cast<std::size_t>(id)] =
        static_cast<NodeId>(globals_[static_cast<std::size_t>(s)].size());
  }
}

void ShardMap::migrate(NodeId id, int to_shard) {
  check(id);
  if (to_shard < 0 || to_shard >= shards_)
    throw TreeError("ShardMap::migrate: shard " + std::to_string(to_shard) +
                    " out of range");
  const int from = shard_of_[static_cast<std::size_t>(id)];
  if (from == to_shard) return;

  // Extract: locals are rank-ordered, so the node's position in its source
  // shard is exactly local_of - 1; everything after it shifts down one.
  std::vector<NodeId>& src = globals_[static_cast<std::size_t>(from)];
  const std::size_t at = static_cast<std::size_t>(
      local_of_[static_cast<std::size_t>(id)] - 1);
  src.erase(src.begin() + static_cast<std::ptrdiff_t>(at));
  for (std::size_t i = at; i < src.size(); ++i)
    --local_of_[static_cast<std::size_t>(src[i])];

  // Insert at the global-id rank position of the destination; everything
  // at or after it shifts up one, keeping locals dense and rank-ordered.
  std::vector<NodeId>& dst = globals_[static_cast<std::size_t>(to_shard)];
  const auto pos = std::lower_bound(dst.begin(), dst.end(), id);
  const std::size_t rank = static_cast<std::size_t>(pos - dst.begin());
  for (auto it = pos; it != dst.end(); ++it)
    ++local_of_[static_cast<std::size_t>(*it)];
  dst.insert(dst.begin() + static_cast<std::ptrdiff_t>(rank), id);

  shard_of_[static_cast<std::size_t>(id)] = to_shard;
  local_of_[static_cast<std::size_t>(id)] = static_cast<NodeId>(rank + 1);
}

int ShardMap::split(int shard) {
  if (shard < 0 || shard >= shards_)
    throw TreeError("ShardMap::split: shard " + std::to_string(shard) +
                    " out of range");
  std::vector<NodeId>& src = globals_[static_cast<std::size_t>(shard)];
  if (src.size() < 2)
    throw TreeError("ShardMap::split: shard " + std::to_string(shard) +
                    " needs >= 2 nodes to split");

  // The staying half keeps the lower ranks, so its locals are already
  // dense 1..keep; only the moved half needs remapping. The moved list is
  // detached *before* the outer push_back — growing globals_ invalidates
  // the src reference.
  const std::size_t keep = (src.size() + 1) / 2;
  const int fresh = shards_;
  std::vector<NodeId> moved_half(src.begin() + static_cast<std::ptrdiff_t>(keep),
                                 src.end());
  src.resize(keep);
  globals_.push_back(std::move(moved_half));
  ++shards_;
  const std::vector<NodeId>& moved =
      globals_[static_cast<std::size_t>(fresh)];
  for (std::size_t i = 0; i < moved.size(); ++i) {
    shard_of_[static_cast<std::size_t>(moved[i])] = fresh;
    local_of_[static_cast<std::size_t>(moved[i])] =
        static_cast<NodeId>(i + 1);
  }
  return fresh;
}

int ShardMap::merge(int into, int from) {
  if (into < 0 || into >= shards_ || from < 0 || from >= shards_)
    throw TreeError("ShardMap::merge: shard id out of range");
  if (into == from) throw TreeError("ShardMap::merge: into == from");

  std::vector<NodeId>& a = globals_[static_cast<std::size_t>(into)];
  std::vector<NodeId>& b = globals_[static_cast<std::size_t>(from)];
  std::vector<NodeId> combined;
  combined.reserve(a.size() + b.size());
  std::merge(a.begin(), a.end(), b.begin(), b.end(),
             std::back_inserter(combined));
  a = std::move(combined);
  globals_.erase(globals_.begin() + from);
  --shards_;

  // Everything at or after the first changed slot needs its shard ids and
  // locals rewritten: the combined shard's locals recompacted, and every
  // shard that slid down one slot re-labelled.
  const int at = into > from ? into - 1 : into;
  for (int s = std::min(into, from); s < shards_; ++s) {
    const std::vector<NodeId>& g = globals_[static_cast<std::size_t>(s)];
    for (std::size_t i = 0; i < g.size(); ++i) {
      shard_of_[static_cast<std::size_t>(g[i])] = s;
      local_of_[static_cast<std::size_t>(g[i])] = static_cast<NodeId>(i + 1);
    }
  }
  return at;
}

PartitionedTrace partition_trace(const Trace& trace, const ShardMap& map) {
  return partition_trace(std::span<const Request>(trace.requests), map);
}

PartitionedTrace partition_trace(std::span<const Request> requests,
                                 const ShardMap& map) {
  const int S = map.shards();
  PartitionedTrace pt;
  pt.ops.assign(static_cast<std::size_t>(S), {});
  pt.cross_pairs.assign(static_cast<std::size_t>(S) * static_cast<std::size_t>(S),
                        0);
  pt.total_requests = requests.size();

  // Size the queues in one counting pass so the fill pass never reallocates.
  std::vector<std::size_t> sizes(static_cast<std::size_t>(S), 0);
  for (const Request& r : requests) {
    const int a = map.shard_of(r.src);
    const int b = map.shard_of(r.dst);
    ++sizes[static_cast<std::size_t>(a)];
    if (a != b) ++sizes[static_cast<std::size_t>(b)];
  }
  for (int s = 0; s < S; ++s)
    pt.ops[static_cast<std::size_t>(s)].reserve(sizes[static_cast<std::size_t>(s)]);

  for (const Request& r : requests) {
    const int a = map.shard_of(r.src);
    const int b = map.shard_of(r.dst);
    if (a == b) {
      pt.ops[static_cast<std::size_t>(a)].push_back(
          {map.local_of(r.src), map.local_of(r.dst)});
    } else {
      pt.ops[static_cast<std::size_t>(a)].push_back(
          {map.local_of(r.src), kNoNode});
      pt.ops[static_cast<std::size_t>(b)].push_back(
          {map.local_of(r.dst), kNoNode});
      ++pt.cross_pairs[static_cast<std::size_t>(a) *
                           static_cast<std::size_t>(S) +
                       static_cast<std::size_t>(b)];
      ++pt.cross_requests;
    }
  }
  return pt;
}

int ShardLocalityStats::empty_shards() const {
  int count = 0;
  for (int o : owned)
    if (o == 0) ++count;
  return count;
}

double ShardLocalityStats::load_imbalance() const {
  if (touches.empty()) return 1.0;
  // Range only over shards that own nodes (see header): an empty shard's
  // zero touches would otherwise deflate the mean toward an inf-like
  // overstatement as migrations drain shards.
  std::size_t max = 0, sum = 0, active = 0;
  for (std::size_t s = 0; s < touches.size(); ++s) {
    if (s < owned.size() && owned[s] == 0) continue;
    ++active;
    max = std::max(max, touches[s]);
    sum += touches[s];
  }
  if (active == 0 || sum == 0) return 1.0;
  const double mean = static_cast<double>(sum) / static_cast<double>(active);
  return static_cast<double>(max) / mean;
}

ShardLocalityStats compute_shard_stats(const Trace& trace,
                                       const ShardMap& map) {
  const int S = map.shards();
  ShardLocalityStats st;
  st.shards = S;
  st.intra.assign(static_cast<std::size_t>(S), 0);
  st.touches.assign(static_cast<std::size_t>(S), 0);
  st.owned.assign(static_cast<std::size_t>(S), 0);
  for (int s = 0; s < S; ++s)
    st.owned[static_cast<std::size_t>(s)] = map.shard_size(s);
  st.total_requests = trace.size();
  for (const Request& r : trace.requests) {
    const int a = map.shard_of(r.src);
    const int b = map.shard_of(r.dst);
    ++st.touches[static_cast<std::size_t>(a)];
    if (a == b) {
      ++st.intra[static_cast<std::size_t>(a)];
    } else {
      ++st.touches[static_cast<std::size_t>(b)];
      ++st.cross_requests;
    }
  }
  return st;
}

}  // namespace san
