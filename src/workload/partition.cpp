#include "workload/partition.hpp"

#include <algorithm>
#include <string>

namespace san {
namespace {

/// splitmix64: tiny, well-mixed, and stable across platforms — the shard
/// assignment is part of the reproducible experiment setup, so it must not
/// depend on std::hash.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

const char* shard_partition_name(ShardPartition policy) {
  switch (policy) {
    case ShardPartition::kContiguous:
      return "contiguous";
    case ShardPartition::kHash:
      return "hash";
  }
  return "?";
}

ShardMap::ShardMap(int n, int shards, ShardPartition policy)
    : n_(n), shards_(shards), policy_(policy) {
  if (n < 1) throw TreeError("ShardMap: need at least one node");
  if (shards < 1 || shards > n)
    throw TreeError("ShardMap: shard count must be in [1, n], got " +
                    std::to_string(shards) + " for n=" + std::to_string(n));

  shard_of_.assign(static_cast<std::size_t>(n) + 1, 0);
  local_of_.assign(static_cast<std::size_t>(n) + 1, kNoNode);
  globals_.assign(static_cast<std::size_t>(shards), {});

  for (NodeId id = 1; id <= n; ++id) {
    int s = 0;
    if (policy == ShardPartition::kContiguous) {
      // First (n % S) shards get ceil(n/S) ids, the rest floor(n/S).
      const int base = n / shards;
      const int big = n % shards;
      const int cut = big * (base + 1);
      s = (id - 1) < cut ? (id - 1) / (base + 1)
                         : big + ((id - 1) - cut) / base;
    } else {
      s = static_cast<int>(mix64(static_cast<std::uint64_t>(id)) %
                           static_cast<std::uint64_t>(shards));
    }
    shard_of_[static_cast<std::size_t>(id)] = s;
    // Ascending-id construction order makes local ids rank-ordered.
    globals_[static_cast<std::size_t>(s)].push_back(id);
    local_of_[static_cast<std::size_t>(id)] =
        static_cast<NodeId>(globals_[static_cast<std::size_t>(s)].size());
  }

  for (int s = 0; s < shards; ++s)
    if (globals_[static_cast<std::size_t>(s)].empty())
      throw TreeError("ShardMap: " + std::string(shard_partition_name(policy)) +
                      " partition left shard " + std::to_string(s) +
                      " empty; use fewer shards");
}

PartitionedTrace partition_trace(const Trace& trace, const ShardMap& map) {
  const int S = map.shards();
  PartitionedTrace pt;
  pt.ops.assign(static_cast<std::size_t>(S), {});
  pt.cross_pairs.assign(static_cast<std::size_t>(S) * static_cast<std::size_t>(S),
                        0);
  pt.total_requests = trace.size();

  // Size the queues in one counting pass so the fill pass never reallocates.
  std::vector<std::size_t> sizes(static_cast<std::size_t>(S), 0);
  for (const Request& r : trace.requests) {
    const int a = map.shard_of(r.src);
    const int b = map.shard_of(r.dst);
    ++sizes[static_cast<std::size_t>(a)];
    if (a != b) ++sizes[static_cast<std::size_t>(b)];
  }
  for (int s = 0; s < S; ++s)
    pt.ops[static_cast<std::size_t>(s)].reserve(sizes[static_cast<std::size_t>(s)]);

  for (const Request& r : trace.requests) {
    const int a = map.shard_of(r.src);
    const int b = map.shard_of(r.dst);
    if (a == b) {
      pt.ops[static_cast<std::size_t>(a)].push_back(
          {map.local_of(r.src), map.local_of(r.dst)});
    } else {
      pt.ops[static_cast<std::size_t>(a)].push_back(
          {map.local_of(r.src), kNoNode});
      pt.ops[static_cast<std::size_t>(b)].push_back(
          {map.local_of(r.dst), kNoNode});
      ++pt.cross_pairs[static_cast<std::size_t>(a) *
                           static_cast<std::size_t>(S) +
                       static_cast<std::size_t>(b)];
      ++pt.cross_requests;
    }
  }
  return pt;
}

double ShardLocalityStats::load_imbalance() const {
  if (touches.empty()) return 1.0;
  std::size_t max = 0, sum = 0;
  for (std::size_t t : touches) {
    max = std::max(max, t);
    sum += t;
  }
  if (sum == 0) return 1.0;
  const double mean =
      static_cast<double>(sum) / static_cast<double>(touches.size());
  return static_cast<double>(max) / mean;
}

ShardLocalityStats compute_shard_stats(const Trace& trace,
                                       const ShardMap& map) {
  const int S = map.shards();
  ShardLocalityStats st;
  st.shards = S;
  st.intra.assign(static_cast<std::size_t>(S), 0);
  st.touches.assign(static_cast<std::size_t>(S), 0);
  st.total_requests = trace.size();
  for (const Request& r : trace.requests) {
    const int a = map.shard_of(r.src);
    const int b = map.shard_of(r.dst);
    ++st.touches[static_cast<std::size_t>(a)];
    if (a == b) {
      ++st.intra[static_cast<std::size_t>(a)];
    } else {
      ++st.touches[static_cast<std::size_t>(b)];
      ++st.cross_requests;
    }
  }
  return st;
}

}  // namespace san
