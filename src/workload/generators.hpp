// Trace generators for the evaluation workloads (Section 5, "Setup and
// data").
//
// The synthetic families (uniform, temporal-locality) follow the paper's
// description directly. The three real datacenter traces are not
// redistributable, so each is replaced by a synthetic generator matched to
// the published characteristics the paper's conclusions rest on (see
// DESIGN.md, "Substitutions"):
//   * HPC (DOE mini-apps [11])  -> 3-D stencil exchange + collectives,
//     bursty message trains => high temporal locality, structured sparsity;
//   * ProjecToR (Microsoft [14]) -> sparse "elephant" pair support with
//     Zipf weights and medium burstiness;
//   * Facebook (datacenter [21]) -> independent Zipf endpoint popularity,
//     wide support, low temporal locality, large n.
#pragma once

#include <cstdint>

#include "workload/request.hpp"

namespace san {

/// Every request drawn independently and uniformly over ordered pairs
/// (u != v). The finite analogue of the Section 3.2 uniform workload.
Trace gen_uniform(int n, std::size_t m, std::uint64_t seed);

/// Temporal-locality workload: with probability p repeat the previous
/// request, otherwise draw a fresh uniform pair. p is the paper's
/// "temporal complexity parameter" (0.25 / 0.5 / 0.75 / 0.9 in Tables 4-7).
Trace gen_temporal(int n, std::size_t m, double p, std::uint64_t seed);

/// HPC-like workload (substitute for the DOE mini-apps trace): ranks on a
/// 3-D grid exchange with their 6-neighbourhood in bursty message trains,
/// with periodic rank-0 collectives and a little background noise.
Trace gen_hpc(int n, std::size_t m, std::uint64_t seed);

/// ProjecToR-like workload: a sparse support of ~4n "elephant" pairs with
/// Zipf(1.2) weights, served in short bursts.
Trace gen_projector(int n, std::size_t m, std::uint64_t seed);

/// Facebook-like workload: source and destination drawn independently from
/// a shuffled Zipf(1.05) popularity distribution; no repetition bonus.
Trace gen_facebook(int n, std::size_t m, std::uint64_t seed);

// --- drifting workloads (not from the paper) ---------------------------
// The families below model communication patterns whose *spatial* locality
// moves over time — the regime where a static shard partition decays and
// the adaptive rebalancer (workload/rebalance.hpp) earns its keep.

/// Phase-change elephant pairs: ProjecToR-like sparse elephant support
/// (~n pairs, Zipf weights, a few percent mice noise), but the support is
/// redrawn from scratch at every phase boundary (`phases` equal phases
/// over the trace), so the hot communication graph shifts abruptly.
Trace gen_phase_elephants(int n, std::size_t m, int phases,
                          std::uint64_t seed);

/// Rotating hot set: both endpoints are drawn from a small hot set of
/// `hot` nodes with probability ~0.92 (uniform otherwise); the hot set is
/// resampled uniformly at random every `rotate_every` requests, so the
/// cluster that should be colocated keeps moving across the id space.
Trace gen_rotating_hotset(int n, std::size_t m, int hot,
                          std::size_t rotate_every, std::uint64_t seed);

// --- adversarial workloads (scenario-wall generators) ------------------
// Deterministic patterns built to defeat specific optimizations rather
// than model real traffic: the scheduling and rebalance benches use them
// as the honest "where it loses" cells.

/// Sequential scan: the cyclic neighbour walk (u, u+1), (u+1, u+2), ... —
/// the classic splay-friendly sequential access pattern, amortized O(1)
/// per request under FIFO. Any locality reorder scrambles the chain the
/// splay tree is exploiting, so this is the adversarial case for batch
/// scheduling. `seed` only rotates the starting position.
Trace gen_sequential_scan(int n, std::size_t m, std::uint64_t seed);

/// Bit reversal: requests pair consecutive elements of the bit-reversal
/// permutation of the id space — maximal spatial jumps with no reuse, the
/// classic anti-locality order (cf. the bit-reversal lower-bound family
/// for BSTs). `seed` rotates the starting offset within the permutation.
Trace gen_bit_reversal(int n, std::size_t m, std::uint64_t seed);

/// Identifier of the workloads used by benches/examples.
enum class WorkloadKind {
  kUniform,
  kTemporal025,
  kTemporal05,
  kTemporal075,
  kTemporal09,
  kHpc,
  kProjector,
  kFacebook,
  kPhaseElephants,  ///< gen_phase_elephants, 8 phases
  kRotatingHot,     ///< gen_rotating_hotset, hot = n/16, 16 rotations
  kSequentialScan,  ///< gen_sequential_scan (adversarial, deterministic)
  kBitReversal,     ///< gen_bit_reversal (adversarial, deterministic)
};

const char* workload_name(WorkloadKind kind);

/// Dispatches to the matching generator with the paper's node counts
/// scaled by the caller (n <= 0 picks the paper's default n).
Trace gen_workload(WorkloadKind kind, int n, std::size_t m,
                   std::uint64_t seed);

/// The paper's node count for each workload (Section 5 setup): uniform 100,
/// temporal 1023, HPC 500, ProjecToR 100, Facebook 10^4. The drifting
/// families are not from the paper and default to 1024.
int paper_node_count(WorkloadKind kind);

}  // namespace san
