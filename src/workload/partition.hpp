// Node-space partitioning for the sharded serving engine.
//
// A ShardMap splits the identifier space 1..n into S disjoint shards, each
// of which is served by an independent self-adjusting tree
// (sim/sharded_network.hpp). Two policies:
//   * kContiguous — shard s owns a contiguous id range; sizes differ by at
//     most one. Preserves range locality (neighbouring ids co-locate).
//   * kHash      — ids are scattered by a fixed 64-bit mix (splitmix64),
//     spreading hot id ranges across shards for load balance.
// Within a shard, nodes get dense *local* ids 1..|shard| in ascending
// global-id order, so every shard is itself a valid search-tree id space
// and global order is preserved inside each shard.
//
// partition_trace() projects a trace onto the shards: an intra-shard
// request becomes one local serve op on its shard; a cross-shard request
// decomposes into one root-ascent op per endpoint shard (the endpoints are
// splayed to their shard roots, the remaining route runs over the static
// top-level tree and carries no adjustment). Because shards share no
// state, the per-shard op order — which partition_trace fixes to arrival
// order — fully determines every shard's cost, independent of how the
// queues are later interleaved or parallelized.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "workload/request.hpp"

namespace san {

/// Collision-free 64-bit key of an *unordered* node pair (ids are 31-bit
/// positive): min id in the high word, max in the low. Shared by the
/// rebalance window histogram and the migration edge-diff accounting so
/// the encoding cannot drift between them.
inline std::uint64_t pack_node_pair(NodeId a, NodeId b) {
  if (a > b) {
    const NodeId t = a;
    a = b;
    b = t;
  }
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) |
         static_cast<std::uint32_t>(b);
}

enum class ShardPartition {
  kContiguous,  ///< shard s owns ids [s*n/S-ish range]; sizes differ by <= 1
  kHash,        ///< splitmix64(id) % S; sizes concentrate around n/S
  kExplicit,    ///< caller-supplied assignment (rebuilds, fuzz references)
};

const char* shard_partition_name(ShardPartition policy);

/// Node -> (shard, local id) mapping. Construction validates 1 <= shards
/// <= n and that no shard is empty (hash can starve a shard only when n is
/// tiny relative to S). After construction the map can evolve one node at
/// a time through migrate(), which keeps local ids dense and rank-ordered;
/// migrate() may drain a shard to empty (the serving engine layers its own
/// no-empty-shard guard on top, sim/sharded_network.hpp).
class ShardMap {
 public:
  ShardMap(int n, int shards, ShardPartition policy = ShardPartition::kContiguous);

  /// From-scratch rebuild of an explicit assignment: `assignment[id]` is
  /// the shard of node id (index 0 unused). Unlike the policy constructor
  /// this allows empty shards — it is the reference a sequence of
  /// migrate() calls is checked against (tests/test_migration_fuzz.cpp).
  ShardMap(int n, int shards, const std::vector<int>& assignment);

  /// Moves one node to `to_shard` (no-op when it already lives there).
  /// Local ids recompact on both sides: the source shard's locals above
  /// the extracted rank shift down, the destination's locals at and above
  /// the insertion rank shift up, so both shards keep dense 1..|shard|
  /// local ids in ascending global order. O(|source| + |destination|).
  void migrate(NodeId id, int to_shard);

  /// Tablet-style shard split: the upper floor(size/2) local ranks of
  /// `shard` move to a brand-new shard appended with id shards(); the
  /// lower ceil(size/2) ranks stay. Both halves keep dense rank-ordered
  /// locals (the staying half's locals are untouched). Returns the new
  /// shard's id. Requires shard_size(shard) >= 2. O(|shard|).
  int split(int shard);

  /// Tablet-style shard merge: folds shard `from` into shard `into`
  /// (their rank-ordered global lists are merged, locals recompact) and
  /// removes `from`'s slot, so every shard id above `from` shifts down by
  /// one. Returns the post-merge id of the combined shard (`into`,
  /// shifted down when into > from). Requires into != from. O(n).
  int merge(int into, int from);

  int n() const { return n_; }
  int shards() const { return shards_; }
  ShardPartition policy() const { return policy_; }

  int shard_of(NodeId id) const { return shard_of_[check(id)]; }
  /// Dense 1-based id of `id` inside its shard.
  NodeId local_of(NodeId id) const { return local_of_[check(id)]; }
  /// Inverse mapping: global id of local node `local` (1-based) of `shard`.
  NodeId global_of(int shard, NodeId local) const {
    return globals_[static_cast<std::size_t>(shard)]
                   [static_cast<std::size_t>(local - 1)];
  }
  int shard_size(int shard) const {
    return static_cast<int>(globals_[static_cast<std::size_t>(shard)].size());
  }

 private:
  std::size_t check(NodeId id) const {
    if (id < 1 || id > n_) throw TreeError("ShardMap: node id out of range");
    return static_cast<std::size_t>(id);
  }

  int n_;
  int shards_;
  ShardPartition policy_;
  std::vector<std::int32_t> shard_of_;        ///< [global id] -> shard, 1-based index
  std::vector<NodeId> local_of_;              ///< [global id] -> local id
  std::vector<std::vector<NodeId>> globals_;  ///< [shard][local-1] -> global id
};

/// One queued operation on a shard, in local ids. `dst == kNoNode` marks a
/// root ascent (the shard-side half of a cross-shard request): the node is
/// splayed to the shard root and charged its pre-adjustment depth.
struct ShardOp {
  NodeId src = kNoNode;
  NodeId dst = kNoNode;

  bool is_ascent() const { return dst == kNoNode; }
  friend bool operator==(const ShardOp&, const ShardOp&) = default;
};

/// A trace projected onto per-shard queues (arrival order preserved within
/// each queue) plus the cross-shard pair histogram needed to cost the
/// top-level routes.
struct PartitionedTrace {
  std::vector<std::vector<ShardOp>> ops;  ///< [shard] -> local op queue
  /// Count of cross-shard requests per ordered (src shard, dst shard) pair,
  /// flattened row-major: cross_pairs[a * S + b].
  std::vector<std::size_t> cross_pairs;
  std::size_t cross_requests = 0;
  std::size_t total_requests = 0;
};

PartitionedTrace partition_trace(const Trace& trace, const ShardMap& map);
/// Span overload: projects one contiguous slice of a trace — what the
/// rebalancing pipeline feeds between epochs. Queues drained chunk by
/// chunk concatenate to exactly the whole-trace projection.
PartitionedTrace partition_trace(std::span<const Request> requests,
                                 const ShardMap& map);

/// Per-shard locality profile of a trace under a ShardMap: how much of the
/// traffic stays inside one shard, and how evenly the serving work spreads.
struct ShardLocalityStats {
  int shards = 0;
  std::vector<std::size_t> intra;    ///< [shard] requests fully inside it
  std::vector<std::size_t> touches;  ///< [shard] endpoint touches (load proxy)
  std::vector<int> owned;            ///< [shard] nodes the map assigns to it
  std::size_t cross_requests = 0;
  std::size_t total_requests = 0;

  /// Shards that own no nodes (possible after migrate() drains one).
  int empty_shards() const;

  /// Fraction of requests served without touching the top-level tree.
  double intra_fraction() const {
    return total_requests == 0
               ? 0.0
               : 1.0 - static_cast<double>(cross_requests) /
                           static_cast<double>(total_requests);
  }
  /// Max over shards of touches / mean touches; 1.0 = perfectly balanced.
  /// Both max and mean range only over shards that own at least one node:
  /// a shard migration drained to empty can receive no traffic, and letting
  /// it deflate the mean would overstate the imbalance of the shards that
  /// actually serve (with every shard empty of traffic this returns 1.0).
  double load_imbalance() const;
};

/// Every per-shard array is sized from the map's *live* shard count at
/// call time — never a construction-time S — so the stats stay correct
/// after mid-run split/merge reshaped the fleet (locked by
/// Lifecycle.ShardStatsStayLiveAfterSplitMerge).
ShardLocalityStats compute_shard_stats(const Trace& trace,
                                       const ShardMap& map);

}  // namespace san
