#include "workload/trace_stats.hpp"

#include <cmath>
#include <unordered_map>
#include <vector>

namespace san {
namespace {

double entropy_bits(const std::vector<std::size_t>& counts, std::size_t m) {
  double h = 0.0;
  for (std::size_t c : counts) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / static_cast<double>(m);
    h -= p * std::log2(p);
  }
  return h;
}

}  // namespace

TraceStats compute_stats(const Trace& trace) {
  TraceStats s;
  const std::size_t m = trace.size();
  if (m == 0) return s;

  std::vector<std::size_t> src(static_cast<size_t>(trace.n) + 1, 0);
  std::vector<std::size_t> dst(static_cast<size_t>(trace.n) + 1, 0);
  std::unordered_map<std::uint64_t, std::size_t> pairs;
  pairs.reserve(m / 4);
  std::size_t repeats = 0;
  for (std::size_t i = 0; i < m; ++i) {
    const Request& r = trace.requests[i];
    ++src[static_cast<size_t>(r.src)];
    ++dst[static_cast<size_t>(r.dst)];
    const std::uint64_t key =
        (static_cast<std::uint64_t>(r.src) << 32) |
        static_cast<std::uint32_t>(r.dst);
    ++pairs[key];
    if (i > 0 && trace.requests[i - 1] == r) ++repeats;
  }

  s.src_entropy = entropy_bits(src, m);
  s.dst_entropy = entropy_bits(dst, m);
  std::vector<std::size_t> pair_counts;
  pair_counts.reserve(pairs.size());
  for (const auto& [key, c] : pairs) pair_counts.push_back(c);
  s.pair_entropy = entropy_bits(pair_counts, m);
  s.repeat_fraction =
      m > 1 ? static_cast<double>(repeats) / static_cast<double>(m - 1) : 0.0;
  s.distinct_pairs = pairs.size();
  for (std::size_t c : src)
    if (c > 0) ++s.distinct_sources;
  for (std::size_t c : dst)
    if (c > 0) ++s.distinct_destinations;

  const double md = static_cast<double>(m);
  for (int x = 1; x <= trace.n; ++x) {
    const double a = static_cast<double>(src[static_cast<size_t>(x)]);
    const double b = static_cast<double>(dst[static_cast<size_t>(x)]);
    if (a > 0) s.entropy_bound += a * std::log2(md / a);
    if (b > 0) s.entropy_bound += b * std::log2(md / b);
  }
  return s;
}

}  // namespace san
