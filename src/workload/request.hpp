// Communication requests and traces (Section 2 model).
//
// A trace sigma = (sigma_1, ..., sigma_m) of source/destination pairs over
// nodes 1..n is the input to both problem variants: the online networks
// serve it request by request, the offline algorithms see it aggregated
// into a demand matrix.
#pragma once

#include <cstddef>
#include <vector>

#include "core/types.hpp"

namespace san {

struct Request {
  NodeId src = kNoNode;
  NodeId dst = kNoNode;

  friend bool operator==(const Request&, const Request&) = default;
};

struct Trace {
  int n = 0;  ///< number of network nodes (ids 1..n)
  std::vector<Request> requests;

  std::size_t size() const { return requests.size(); }
  const Request& operator[](std::size_t i) const { return requests[i]; }
};

}  // namespace san
