#include "static_trees/uniform_dp.hpp"

#include <algorithm>
#include <vector>

#include "core/parallel.hpp"
#include "core/shape.hpp"

namespace san {
namespace {

// Same recurrence as the seed implementation, restructured the way the
// general DP was (optimal_dp.cpp): the partition rows range only over
// their feasible region (p[t-1][l-a] is finite whenever l-a >= t-1, so no
// sentinel checks survive in the inner loop — it is a branchless min-plus
// sweep the compiler vectorizes), and the O(n k) argmin tables (split,
// cnt, kids_of) are gone — rebuild() re-derives each visited chain's
// argmin from the retained cost rows with the original scan order, so the
// reconstructed shape is unchanged. optimal_uniform_cost never pays for
// argmin bookkeeping at all.
//
// Note: a "monotone sweep" over the row scans (Knuth-style argmin
// windows) would NOT be exact here — the argmin of p[t][l] is not
// monotone in l for this cost family (first subtree costs carry the
// global l*(n-l) potential term); see the DpPruning counterexample test
// for the general-DP analogue.
struct UniformDp {
  int k, n;
  // U1[l]: optimal cost of a single subtree on l nodes, including the
  // potential l*(n-l) of its parent edge.
  std::vector<Cost> u1;
  // P[t][m]: optimal cost of exactly t non-empty subtrees totalling m
  // nodes; P2[t][m] = min over <= t parts (P2[.][0] = 0).
  std::vector<std::vector<Cost>> p, p2;

  UniformDp(int k_in, int n_in, int threads) : k(k_in), n(n_in) {
    u1.assign(static_cast<size_t>(n) + 1, kInfiniteCost);
    p.assign(static_cast<size_t>(k) + 1,
             std::vector<Cost>(static_cast<size_t>(n) + 1, kInfiniteCost));
    p2 = p;
    for (int t = 0; t <= k; ++t) p2[static_cast<size_t>(t)][0] = 0;

    for (int l = 1; l <= n; ++l) {
      const Cost above = static_cast<Cost>(l) * (n - l);
      u1[static_cast<size_t>(l)] = above + p2[static_cast<size_t>(k)][l - 1];
      p[1][static_cast<size_t>(l)] = u1[static_cast<size_t>(l)];
      // For a fixed l every t-row only reads u1 and p[t-1] at lengths
      // < l, so the t = 2..k transitions are independent of each other.
      // The executor pool makes the dispatch cheap, but each row is only
      // O(l) work — go parallel only when the row is long enough to
      // amortize the fork/join round.
      const int row_threads = (l >= 2048 && k >= 4) ? threads : 1;
      parallel_for(2, static_cast<long>(k) + 1, row_threads, [&](long tl) {
        const int t = static_cast<int>(tl);
        if (l < t) return;  // p[t][l] stays infinite: no t-part partition
        const Cost* head = u1.data();
        const Cost* tail = p[static_cast<size_t>(t - 1)].data();
        Cost best = kInfiniteCost;
        for (int a = 1; a <= l - (t - 1); ++a)
          best = std::min(best, head[a] + tail[l - a]);
        p[static_cast<size_t>(t)][static_cast<size_t>(l)] = best;
      });
      Cost run = kInfiniteCost;
      for (int t = 1; t <= k; ++t) {
        run = std::min(run, p[static_cast<size_t>(t)][static_cast<size_t>(l)]);
        p2[static_cast<size_t>(t)][static_cast<size_t>(l)] = run;
      }
    }
  }

  // First t with p[t][m] at the prefix minimum — identical to the seed
  // implementation's cnt[k][m] argmin (first strict improvement over t).
  int count_of(int m) const {
    const Cost target = p2[static_cast<size_t>(k)][static_cast<size_t>(m)];
    for (int t = 1; t < k; ++t)
      if (p[static_cast<size_t>(t)][static_cast<size_t>(m)] == target)
        return t;
    return k;
  }

  // First-min argmin head size of P[t][m], replicating the seed scan.
  int split_of(int t, int m) const {
    Cost best = kInfiniteCost;
    int best_a = -1;
    for (int a = 1; a <= m - (t - 1); ++a) {
      const Cost cand =
          u1[static_cast<size_t>(a)] + p[static_cast<size_t>(t - 1)][m - a];
      if (cand < best) {
        best = cand;
        best_a = a;
      }
    }
    return best_a;
  }

  Shape rebuild(int l) const {
    Shape s;
    s.size = l;
    int m = l - 1;
    int t = (m == 0) ? 0 : count_of(m);
    while (t > 1) {
      const int a = split_of(t, m);
      s.kids.push_back(rebuild(a));
      m -= a;
      --t;
    }
    if (t == 1) s.kids.push_back(rebuild(m));
    s.self_pos = static_cast<int>(s.kids.size()) / 2;
    return s;
  }
};

}  // namespace

UniformTreeResult optimal_uniform_tree(int k, int n, int threads) {
  if (k < 2) throw TreeError("optimal_uniform_tree: k must be >= 2");
  if (n < 1) throw TreeError("optimal_uniform_tree: n must be >= 1");
  UniformDp dp(k, n, threads);
  Shape shape = dp.rebuild(n);
  shape.recompute_sizes();
  return {build_from_shape(k, shape), dp.u1[static_cast<size_t>(n)]};
}

Cost optimal_uniform_cost(int k, int n, int threads) {
  if (k < 2) throw TreeError("optimal_uniform_cost: k must be >= 2");
  if (n < 1) throw TreeError("optimal_uniform_cost: n must be >= 1");
  UniformDp dp(k, n, threads);
  return dp.u1[static_cast<size_t>(n)];
}

}  // namespace san
