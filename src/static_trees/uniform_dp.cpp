#include "static_trees/uniform_dp.hpp"

#include <algorithm>
#include <vector>

#include "core/parallel.hpp"
#include "core/shape.hpp"

namespace san {
namespace {

struct UniformDp {
  int k, n;
  // U1[l]: optimal cost of a single subtree on l nodes, including the
  // potential l*(n-l) of its parent edge.
  std::vector<Cost> u1;
  // P[t][m]: optimal cost of exactly t non-empty subtrees totalling m
  // nodes; P2[t][m] = min over <= t parts (P2[.][0] = 0).
  std::vector<std::vector<Cost>> p, p2;
  std::vector<std::vector<int>> split;        // argmin head size for P[t][m]
  std::vector<std::vector<signed char>> cnt;  // argmin part count for P2
  std::vector<signed char> kids_of;           // part count under U1[l]

  UniformDp(int k_in, int n_in, int threads) : k(k_in), n(n_in) {
    u1.assign(static_cast<size_t>(n) + 1, kInfiniteCost);
    p.assign(static_cast<size_t>(k) + 1,
             std::vector<Cost>(static_cast<size_t>(n) + 1, kInfiniteCost));
    p2 = p;
    split.assign(static_cast<size_t>(k) + 1,
                 std::vector<int>(static_cast<size_t>(n) + 1, -1));
    cnt.assign(static_cast<size_t>(k) + 1,
               std::vector<signed char>(static_cast<size_t>(n) + 1, -1));
    kids_of.assign(static_cast<size_t>(n) + 1, 0);
    for (int t = 0; t <= k; ++t) {
      p2[static_cast<size_t>(t)][0] = 0;
      cnt[static_cast<size_t>(t)][0] = 0;
    }

    for (int l = 1; l <= n; ++l) {
      const Cost above = static_cast<Cost>(l) * (n - l);
      u1[static_cast<size_t>(l)] = above + p2[static_cast<size_t>(k)][l - 1];
      kids_of[static_cast<size_t>(l)] = cnt[static_cast<size_t>(k)][l - 1];

      p[1][static_cast<size_t>(l)] = u1[static_cast<size_t>(l)];
      // For a fixed l every t-row only reads u1 and p[t-1] at lengths
      // < l, so the t = 2..k transitions are independent of each other.
      // The executor pool makes the dispatch cheap, but each row is only
      // O(l) work — go parallel only when the row is long enough to
      // amortize the fork/join round.
      const int row_threads = (l >= 2048 && k >= 4) ? threads : 1;
      parallel_for(2, static_cast<long>(k) + 1, row_threads, [&](long tl) {
        const int t = static_cast<int>(tl);
        Cost best = kInfiniteCost;
        int best_a = -1;
        for (int a = 1; a <= l - (t - 1); ++a) {
          const Cost tail = p[static_cast<size_t>(t - 1)][l - a];
          if (tail >= kInfiniteCost) continue;
          const Cost cand = u1[static_cast<size_t>(a)] + tail;
          if (cand < best) {
            best = cand;
            best_a = a;
          }
        }
        p[static_cast<size_t>(t)][static_cast<size_t>(l)] = best;
        split[static_cast<size_t>(t)][static_cast<size_t>(l)] = best_a;
      });
      Cost run = kInfiniteCost;
      signed char argmin = -1;
      for (int t = 1; t <= k; ++t) {
        if (p[static_cast<size_t>(t)][static_cast<size_t>(l)] < run) {
          run = p[static_cast<size_t>(t)][static_cast<size_t>(l)];
          argmin = static_cast<signed char>(t);
        }
        p2[static_cast<size_t>(t)][static_cast<size_t>(l)] = run;
        cnt[static_cast<size_t>(t)][static_cast<size_t>(l)] = argmin;
      }
    }
  }

  Shape rebuild(int l) const {
    Shape s;
    s.size = l;
    int m = l - 1;
    int t = kids_of[static_cast<size_t>(l)];
    while (t > 1) {
      const int a = split[static_cast<size_t>(t)][static_cast<size_t>(m)];
      s.kids.push_back(rebuild(a));
      m -= a;
      --t;
    }
    if (t == 1) s.kids.push_back(rebuild(m));
    s.self_pos = static_cast<int>(s.kids.size()) / 2;
    return s;
  }
};

}  // namespace

UniformTreeResult optimal_uniform_tree(int k, int n, int threads) {
  if (k < 2) throw TreeError("optimal_uniform_tree: k must be >= 2");
  if (n < 1) throw TreeError("optimal_uniform_tree: n must be >= 1");
  UniformDp dp(k, n, threads);
  Shape shape = dp.rebuild(n);
  shape.recompute_sizes();
  return {build_from_shape(k, shape), dp.u1[static_cast<size_t>(n)]};
}

Cost optimal_uniform_cost(int k, int n, int threads) {
  if (k < 2) throw TreeError("optimal_uniform_cost: k must be >= 2");
  if (n < 1) throw TreeError("optimal_uniform_cost: n must be >= 1");
  UniformDp dp(k, n, threads);
  return dp.u1[static_cast<size_t>(n)];
}

}  // namespace san
