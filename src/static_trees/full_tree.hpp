// Full (complete) k-ary search tree: the demand-oblivious static baseline
// of the evaluation ("Full Tree" rows of Tables 1-7, "Full Binary Net" of
// Table 8). Lemma 9 shows its uniform-workload total distance is
// n^2 log_k n + O(n^2), within O(n^2) of optimal.
#pragma once

#include "core/karytree.hpp"

namespace san {

/// Complete k-ary search tree over ids 1..n (every level full except the
/// last, which is filled left to right).
KAryTree full_kary_tree(int k, int n);

}  // namespace san
