// Offline optimal static routing-based k-ary search tree network
// (Theorem 2 / Appendix A.1).
//
// Dynamic programming over id segments: dp[t][i][j] is the minimal cost of
// partitioning segment [i, j] into t child trees, where the cost of a
// single tree on [i, j] includes W[i, j], the demand crossing the segment
// boundary (the potential of the edge to its future parent). The t = 1
// transition picks the root r and the number of children on each side
// (dl + dr <= k) using the prefix-minimum table dp2[t] = min_{y<=t} dp[y],
// which removes a factor k and yields O(n^3 k) time.
//
// Two implementations share this interface:
//
//  * optimal_routing_based_tree / optimal_routing_based_cost — the flat
//    cache-blocked engine. Packed-triangular diagonal tables kept in both
//    row-major and transposed (column-major) mirrors so every inner scan
//    is a contiguous branchless min-plus sweep the compiler vectorizes;
//    the structurally dead t = k layer is dropped (dp2 is only ever read
//    at indices <= k-1 and tails at t-1 <= k-2, see optimal_dp.cpp); the
//    O(n^2 k) argmin/choice tables are gone entirely — reconstruction
//    re-derives each visited cell's argmin from the retained cost tables
//    with the original scan order, so the produced tree is bit-identical
//    to the reference. Length-diagonals are independent and dispatched as
//    work-gated rounds on the persistent Executor pool.
//
//  * optimal_routing_based_tree_reference — the original per-length
//    vector-of-vectors implementation, kept as the differential oracle
//    (tests/test_dp_exhaustive.cpp, bench/dp_differential.cpp). Setting
//    the environment variable SAN_DP_REFERENCE=1 routes the public entry
//    points through it at runtime.
//
// A note on what the rewrite deliberately does NOT do: Knuth/Yao
// quadrangle-inequality root pruning (restricting the root scan of [i, j]
// to [root(i, j-1), root(i+1, j)]) is UNSOUND for this cost model and is
// not used. The classic optimality proof needs the per-segment weight to
// satisfy the quadrangle inequality and interval monotonicity; W[i, j]
// here is the demand CROSSING the segment boundary, which is submodular
// (the reverse inequality: concentrated demand between distant endpoints
// makes a larger segment cheaper than its parts) and non-monotone
// (W[1, n] = 0). Optimal roots consequently jump outward, not inward.
// DpPruning.KnuthWindowUnsoundForCrossingDemand locks a concrete
// counterexample where the windowed DP returns a strictly worse cost.
#pragma once

#include "core/karytree.hpp"
#include "workload/demand_matrix.hpp"

namespace san {

struct OptimalTreeResult {
  KAryTree tree;
  Cost total_distance = 0;  ///< TotalDistance(D, tree); equals the DP value
};

/// Computes an optimal static routing-based k-ary search tree network for
/// demand `D`. `threads` = 0 uses all hardware threads.
OptimalTreeResult optimal_routing_based_tree(int k, const DemandMatrix& D,
                                             int threads = 0);

/// Cost of the optimal tree without materializing it: skips the
/// reconstruction pass (the forward tables are identical — the recurrence
/// reads every shorter prefix/suffix cell, so its live state is
/// inherently O(n^2 k); what this entry point saves over the reference is
/// the choice tables and the dead layer, roughly 2.4x at k = 10 and 8.9x
/// at k = 2 per cell). Used by the optimality-gap reporting paths where
/// only the ratio matters.
Cost optimal_routing_based_cost(int k, const DemandMatrix& D,
                                int threads = 0);

/// The pre-rewrite implementation, kept as the differential oracle; see
/// the file comment. Also reachable through the public entry points with
/// SAN_DP_REFERENCE=1 in the environment.
OptimalTreeResult optimal_routing_based_tree_reference(int k,
                                                       const DemandMatrix& D,
                                                       int threads = 0);

}  // namespace san
