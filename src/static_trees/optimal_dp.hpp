// Offline optimal static routing-based k-ary search tree network
// (Theorem 2 / Appendix A.1).
//
// Dynamic programming over id segments: dp[t][i][j] is the minimal cost of
// partitioning segment [i, j] into t child trees, where the cost of a
// single tree on [i, j] includes W[i, j], the demand crossing the segment
// boundary (the potential of the edge to its future parent). The t = 1
// transition picks the root r and the number of children on each side
// (dl + dr <= k) using the prefix-minimum table dp2[t] = min_{y<=t} dp[y],
// which removes a factor k and yields O(n^3 k) time and O(n^2 k) memory.
// Segments of equal length are independent, so each length-diagonal is
// one parallel_for round on the persistent Executor pool — n rounds per
// tree, which is exactly the fork/join pattern the pool exists for.
#pragma once

#include "core/karytree.hpp"
#include "workload/demand_matrix.hpp"

namespace san {

struct OptimalTreeResult {
  KAryTree tree;
  Cost total_distance = 0;  ///< TotalDistance(D, tree); equals the DP value
};

/// Computes an optimal static routing-based k-ary search tree network for
/// demand `D`. `threads` = 0 uses all hardware threads.
OptimalTreeResult optimal_routing_based_tree(int k, const DemandMatrix& D,
                                             int threads = 0);

}  // namespace san
