// Flat cache-blocked engine for the Theorem 2 DP. See optimal_dp.hpp for
// the interface story and optimal_dp_reference.cpp for the oracle this is
// tested against.
//
// What makes it fast (all of it exact — every cost cell is bit-identical
// to the reference, and the reconstructed tree is the same tree):
//
//  1. Dead-layer elimination. The recurrence only ever reads dp2[t] at
//     t <= k-1 (a root with children on both sides leaves dl, dr <= k-1;
//     with one side empty the id key occupies a router slot, capping the
//     other side at k-1) and dp[t-1] tails at t-1 <= k-2. The t = k layer
//     of the reference is write-only; this engine never computes it. At
//     k = 2 the entire t >= 2 pass disappears.
//
//  2. Structural infinity elimination. dp[t][i, j] is infinite exactly
//     when t > j-i+1 and dp2[t] is finite for every nonempty segment, so
//     ranging every scan over its feasible region removes all sentinel
//     comparisons from the inner loops: they become pure min-plus sweeps
//     (acc = min(acc, a[x] + b[x])) with no branches to mispredict and
//     nothing for the compiler to prove — they auto-vectorize.
//
//  3. Contiguity via paired mirrors. A cell (i, j) scans its own row
//     prefixes dp2[dl](i, r-1) — contiguous in row-major — and its own
//     column suffixes dp2[dr](r+1, j), which stride by n in row-major and
//     wreck the cache. Each cost table is therefore kept twice: packed
//     upper-triangular row-major (row i holds [i, i..n]) and transposed
//     column-major (column j holds [1..j, j]), written once per cell and
//     read only in the contiguous direction. Memory stays ~2.4x (k = 10)
//     to ~8.9x (k = 2) below the reference because of 1. and 4.
//
//  4. Choice-table elimination. The reference stores O(n^2 k) argmin
//     tables (root, dl, split, count) to rebuild the tree. Reconstruction
//     only visits O(n) cells, so this engine stores none of them and
//     re-derives each visited cell's argmin from the retained cost tables
//     with the reference's exact scan order (first strict improvement in
//     (r, dl) lexicographic order) — the resulting Shape is bit-identical.
//
//  5. Wavefront parallelism. Equal-length segments are independent; each
//     length-diagonal is one work-gated round on the persistent Executor
//     pool, with the pool's chunked cursor acting as the cache block:
//     consecutive cells of a diagonal touch consecutive rows/columns.
//
// Knuth/quadrangle-inequality root pruning is deliberately absent; it is
// unsound for crossing-demand weights (see optimal_dp.hpp and the
// DpPruning counterexample test).
#include "static_trees/optimal_dp.hpp"

#include <algorithm>
#include <cstdlib>
#include <utility>
#include <vector>

#include "core/parallel.hpp"
#include "core/shape.hpp"

namespace san {
namespace {

// Packed-triangular cost tables in both orientations. Indices are 1-based
// segment endpoints 1 <= i <= j <= n.
struct FlatTables {
  int k, n;
  size_t cells;
  std::vector<size_t> row_off;  // row_off[i]: index of (i, i) in row-major
  std::vector<size_t> col_off;  // col_off[j]: index of (1, j) in col-major
  // dp[1] == dp2[1]; the pair of orientations shares one allocation each.
  std::vector<Cost> d1r, d1c;
  // dp[t] col-major for t = 2..k-2 (tail reads of the t-layer).
  std::vector<std::vector<Cost>> dtc;
  // dp2[t] row/col-major for t = 2..k-1 (combo reads of the t = 1 layer).
  std::vector<std::vector<Cost>> q2r, q2c;

  FlatTables(int k_in, int n_in)
      : k(k_in),
        n(n_in),
        cells(static_cast<size_t>(n_in) * (n_in + 1) / 2),
        row_off(static_cast<size_t>(n_in) + 2, 0),
        col_off(static_cast<size_t>(n_in) + 2, 0),
        dtc(static_cast<size_t>(k_in)),
        q2r(static_cast<size_t>(k_in)),
        q2c(static_cast<size_t>(k_in)) {
    for (int i = 2; i <= n + 1; ++i)
      row_off[static_cast<size_t>(i)] =
          row_off[static_cast<size_t>(i) - 1] + static_cast<size_t>(n - i + 2);
    for (int j = 1; j <= n + 1; ++j)
      col_off[static_cast<size_t>(j)] =
          static_cast<size_t>(j) * (j - 1) / 2;
    d1r.assign(cells, 0);
    d1c.assign(cells, 0);
    for (int t = 2; t <= k - 2; ++t) dtc[static_cast<size_t>(t)].assign(cells, 0);
    for (int t = 2; t <= k - 1; ++t) {
      q2r[static_cast<size_t>(t)].assign(cells, 0);
      q2c[static_cast<size_t>(t)].assign(cells, 0);
    }
  }

  size_t at_row(int i, int j) const {
    return row_off[static_cast<size_t>(i)] + static_cast<size_t>(j - i);
  }
  size_t at_col(int i, int j) const {
    return col_off[static_cast<size_t>(j)] + static_cast<size_t>(i - 1);
  }

  // dp2[t] base pointers (t == 1 aliases dp[1]).
  const Cost* q2_row(int t) const {
    return t == 1 ? d1r.data() : q2r[static_cast<size_t>(t)].data();
  }
  const Cost* q2_col(int t) const {
    return t == 1 ? d1c.data() : q2c[static_cast<size_t>(t)].data();
  }
  // dp[t] col-major base (t <= k-2).
  const Cost* dp_col(int t) const {
    return t == 1 ? d1c.data() : dtc[static_cast<size_t>(t)].data();
  }
};

void forward(FlatTables& T, const DemandMatrix& D, int threads) {
  const int n = T.n;
  const int k = T.k;
  for (int len = 1; len <= n; ++len) {
    // Work-gate the diagonal dispatch: a diagonal is n-len+1 cells of
    // O(len * k) min-plus elements each; short diagonals of small
    // instances stay inline on the caller.
    const long work = static_cast<long>(n - len + 1) * (len + k) * 2 * k;
    const int diag_threads = work < 8192 ? 1 : threads;
    parallel_for(1, n - len + 2, diag_threads, [&](long li) {
      const int i = static_cast<int>(li);
      const int j = i + len - 1;
      const Cost w = D.boundary(i, j);
      const size_t rij = T.at_row(i, j);
      const size_t cij = T.at_col(i, j);

      // ---- t = 1: root choice. Boundary roots (r = i / r = j) leave one
      // side empty and read dp2[k-1] of the other; interior roots combine
      // dp2[dl] row prefixes with dp2[k-dl] column suffixes. Sweeps run
      // in pairs: the average sweep is short enough that the fixed
      // per-sweep cost (pointer setup, vector prologue/epilogue) rivals
      // the arithmetic, and two independent min-reductions per pass halve
      // it.
      const size_t roi = T.row_off[static_cast<size_t>(i)];
      const size_t coj = T.col_off[static_cast<size_t>(j)];
      Cost v1;
      if (len == 1) {
        v1 = w;
      } else {
        const Cost* qr = T.q2_row(k - 1);
        const Cost* qc = T.q2_col(k - 1);
        Cost best = qc[T.at_col(i + 1, j)];                     // r = i
        best = std::min(best, qr[T.at_row(i, j - 1)]);          // r = j
        const long m = len - 2;  // interior roots r in (i, j)
        if (m > 0) {
          // pa[x] = dp2[dl](i, i+x), pb[x] = dp2[k-dl](i+2+x, j): the
          // candidate with root r = i+1+x. Pure min-plus sweeps.
          int dl = 1;
          for (; dl + 1 <= k - 1; dl += 2) {
            const Cost* pa1 = T.q2_row(dl) + roi;
            const Cost* pb1 = T.q2_col(k - dl) + coj + i + 1;
            const Cost* pa2 = T.q2_row(dl + 1) + roi;
            const Cost* pb2 = T.q2_col(k - dl - 1) + coj + i + 1;
            Cost acc1 = kInfiniteCost, acc2 = kInfiniteCost;
            for (long x = 0; x < m; ++x) {
              acc1 = std::min(acc1, pa1[x] + pb1[x]);
              acc2 = std::min(acc2, pa2[x] + pb2[x]);
            }
            best = std::min(best, std::min(acc1, acc2));
          }
          for (; dl <= k - 1; ++dl) {
            const Cost* pa = T.q2_row(dl) + roi;
            const Cost* pb = T.q2_col(k - dl) + coj + i + 1;
            Cost acc = kInfiniteCost;
            for (long x = 0; x < m; ++x) acc = std::min(acc, pa[x] + pb[x]);
            best = std::min(best, acc);
          }
        }
        v1 = w + best;
      }
      T.d1r[rij] = v1;
      T.d1c[cij] = v1;

      // ---- t = 2..k-1: first tree on a prefix [i, l], t-1 parts after.
      // dp2 folds as a running prefix minimum. Adjacent layers share the
      // dp[1] head row, so they also sweep in pairs (layer t scans one
      // element more than layer t+1; it is peeled off after the loop).
      Cost q = v1;
      const int tmax = std::min(k - 1, len);
      auto commit = [&](int t, Cost vt) {
        if (t <= k - 2) T.dtc[static_cast<size_t>(t)][cij] = vt;
        q = std::min(q, vt);
        T.q2r[static_cast<size_t>(t)][rij] = q;
        T.q2c[static_cast<size_t>(t)][cij] = q;
      };
      const Cost* pa = T.d1r.data() + roi;
      int t = 2;
      for (; t + 1 <= tmax; t += 2) {
        // pa[x] = dp[1](i, i+x), pb[x] = dp[t-1](i+1+x, j): split l=i+x.
        const Cost* pb1 = T.dp_col(t - 1) + coj + i;
        const Cost* pb2 = T.dp_col(t) + coj + i;
        const long m2 = len - t;  // layer t+1 range; layer t has one more
        Cost acc1 = kInfiniteCost, acc2 = kInfiniteCost;
        for (long x = 0; x < m2; ++x) {
          acc1 = std::min(acc1, pa[x] + pb1[x]);
          acc2 = std::min(acc2, pa[x] + pb2[x]);
        }
        acc1 = std::min(acc1, pa[m2] + pb1[m2]);
        commit(t, acc1);
        commit(t + 1, acc2);
      }
      for (; t <= k - 1; ++t) {
        Cost vt = kInfiniteCost;
        if (t <= tmax) {
          const Cost* pb = T.dp_col(t - 1) + coj + i;
          const long m = len - t + 1;
          Cost acc = kInfiniteCost;
          for (long x = 0; x < m; ++x) acc = std::min(acc, pa[x] + pb[x]);
          vt = acc;
        }
        commit(t, vt);
      }
    });
  }
}

// Reconstruction without choice tables: each visited cell's argmin is
// re-derived from the cost tables with the reference implementation's
// exact scan order, so tie-breaks — and therefore the tree — match the
// reference bit for bit. O(len * k) per tree node, O(n^2 k) worst case
// (a path tree), negligible against the forward pass.
struct Rebuilder {
  const FlatTables& T;
  int k;

  Cost dp2_at(int t, int a, int b) const {  // 1 <= t <= k-1, a <= b
    return T.q2_row(t)[T.at_row(a, b)];
  }
  Cost DP2(int t, int a, int b) const {
    if (a > b) return 0;
    if (t == 0) return kInfiniteCost;
    return dp2_at(t, a, b);
  }

  std::pair<int, int> root_and_dl(int i, int j) const {
    Cost best = kInfiniteCost;
    int best_r = -1, best_dl = -1;
    for (int r = i; r <= j; ++r) {
      for (int dl = 0; dl <= k - 1; ++dl) {
        const int dr = (dl == 0) ? k - 1 : k - dl;
        const Cost left = DP2(dl, i, r - 1);
        if (left >= kInfiniteCost) continue;
        const Cost cand = left + DP2(dr, r + 1, j);
        if (cand < best) {
          best = cand;
          best_r = r;
          best_dl = dl;
        }
      }
    }
    return {best_r, best_dl};
  }

  // First y <= budget with dp[y] at the prefix minimum: identical to the
  // reference's count_ argmin (first strict improvement over y).
  int count_of(int budget, int a, int b) const {
    const Cost target = dp2_at(budget, a, b);
    for (int y = 1; y < budget; ++y)
      if (dp2_at(y, a, b) == target) return y;
    return budget;
  }

  int split_of(int t, int i, int j) const {  // 2 <= t <= k-1
    const Cost* tail = T.dp_col(t - 1);
    Cost best = kInfiniteCost;
    int best_l = -1;
    for (int l = i; l <= j - (t - 1); ++l) {
      const Cost cand = T.d1r[T.at_row(i, l)] + tail[T.at_col(l + 1, j)];
      if (cand < best) {
        best = cand;
        best_l = l;
      }
    }
    return best_l;
  }

  Shape single(int i, int j) const {
    Shape s;
    const auto [r, dl] = root_and_dl(i, j);
    const int dr = (dl == 0) ? k - 1 : k - dl;
    int tl = 0, tr = 0;
    if (i <= r - 1) tl = count_of(dl, i, r - 1);
    if (r + 1 <= j) tr = count_of(dr, r + 1, j);
    parts(i, r - 1, tl, s.kids);
    s.self_pos = static_cast<int>(s.kids.size());
    parts(r + 1, j, tr, s.kids);
    s.size = j - i + 1;
    return s;
  }

  void parts(int i, int j, int t, std::vector<Shape>& out) const {
    while (t > 1) {
      const int l = split_of(t, i, j);
      out.push_back(single(i, l));
      i = l + 1;
      --t;
    }
    if (t == 1) out.push_back(single(i, j));
  }
};

bool use_reference() {
  static const bool v = [] {
    const char* e = std::getenv("SAN_DP_REFERENCE");
    return e != nullptr && e[0] == '1';
  }();
  return v;
}

}  // namespace

OptimalTreeResult optimal_routing_based_tree(int k, const DemandMatrix& D,
                                             int threads) {
  if (k < 2) throw TreeError("optimal_routing_based_tree: k must be >= 2");
  if (use_reference())
    return optimal_routing_based_tree_reference(k, D, threads);
  const int n = D.n();
  FlatTables T(k, n);
  D.prewarm();  // the lazy prefix build is not thread-safe
  forward(T, D, threads);
  Rebuilder rb{T, k};
  Shape shape = rb.single(1, n);
  shape.recompute_sizes();
  return {build_from_shape(k, shape), T.d1r[T.at_row(1, n)]};
}

Cost optimal_routing_based_cost(int k, const DemandMatrix& D, int threads) {
  if (k < 2) throw TreeError("optimal_routing_based_cost: k must be >= 2");
  if (use_reference())
    return optimal_routing_based_tree_reference(k, D, threads).total_distance;
  const int n = D.n();
  FlatTables T(k, n);
  D.prewarm();
  forward(T, D, threads);
  return T.d1r[T.at_row(1, n)];
}

}  // namespace san
