#include "static_trees/full_tree.hpp"

#include "core/shape.hpp"

namespace san {

KAryTree full_kary_tree(int k, int n) {
  return build_from_shape(k, make_complete_shape(n, k));
}

}  // namespace san
