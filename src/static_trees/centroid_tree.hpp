// Centroid static k-ary search tree (Section 3.2 / Appendix B).
//
// The centroid (k+1)-degree tree has a centroid node joined to k+1
// weakly-complete k-ary subtrees of near-equal size, all levels of the
// whole tree full except the last, whose leaves are grouped to the left
// (Definition 5 / Figure 2). Rooting the unrooted structure at a leaf and
// assigning identifiers in order yields a valid k-ary search tree (Remark 7)
// in O(n) total time (Theorem 8). For the uniform workload its total
// distance is within O(n^2 k log k) of the optimal (k+1)-degree tree
// (Theorem 6) and experimentally *equal* to the optimum for n < 10^3,
// k <= 10 (Remark 10) — reproduced by bench/remark10_centroid_optimality.
#pragma once

#include <vector>

#include "core/karytree.hpp"
#include "core/shape.hpp"

namespace san {

/// Sizes of the k+1 weakly-complete subtrees around the centroid for a
/// centroid tree on n nodes (n >= 1). Exposed for tests: sizes differ by at
/// most one "last level" and sum to n-1.
std::vector<int> centroid_subtree_sizes(int k, int n);

/// The rooted shape of the centroid k-ary search tree: the (k+1)-degree
/// centroid structure re-rooted at one of its leaves.
Shape centroid_shape(int k, int n);

/// Builds the centroid k-ary search tree over ids 1..n in O(n).
KAryTree centroid_kary_tree(int k, int n);

}  // namespace san
