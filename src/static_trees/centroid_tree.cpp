#include "static_trees/centroid_tree.hpp"

#include <algorithm>

namespace san {
namespace {

// Unrooted adjacency representation used to re-root the (k+1)-degree
// centroid structure at a leaf.
struct Adjacency {
  std::vector<std::vector<int>> nbrs;

  int add() {
    nbrs.emplace_back();
    return static_cast<int>(nbrs.size()) - 1;
  }
  void link(int a, int b) {
    nbrs[static_cast<size_t>(a)].push_back(b);
    nbrs[static_cast<size_t>(b)].push_back(a);
  }
};

int add_shape(Adjacency& adj, const Shape& s) {
  const int id = adj.add();
  for (const Shape& kid : s.kids) adj.link(id, add_shape(adj, kid));
  return id;
}

Shape to_rooted_shape(const Adjacency& adj, int node, int parent) {
  Shape s;
  for (int nbr : adj.nbrs[static_cast<size_t>(node)]) {
    if (nbr == parent) continue;
    s.kids.push_back(to_rooted_shape(adj, nbr, node));
  }
  s.self_pos = static_cast<int>(s.kids.size()) / 2;
  s.size = 1;
  for (const Shape& kid : s.kids) s.size += kid.size;
  return s;
}

}  // namespace

std::vector<int> centroid_subtree_sizes(int k, int n) {
  if (k < 2) throw TreeError("centroid tree needs k >= 2");
  if (n < 1) throw TreeError("centroid tree needs n >= 1");
  // F = size of a weakly-complete subtree with all of the whole tree's full
  // levels; grow while one more fully-filled level fits entirely.
  long long full = 0;
  while (1 + (static_cast<long long>(k) + 1) * (full * k + 1) <= n)
    full = full * k + 1;
  const long long last_level_cap = full * (k - 1) + 1;  // = k^H
  long long rem = n - 1 - (k + 1) * full;
  std::vector<int> sizes(static_cast<size_t>(k) + 1);
  for (int i = 0; i <= k; ++i) {
    const long long extra = std::min(rem, last_level_cap);
    sizes[static_cast<size_t>(i)] = static_cast<int>(full + extra);
    rem -= extra;
  }
  return sizes;
}

Shape centroid_shape(int k, int n) {
  if (n == 1) return Shape{};
  const std::vector<int> sizes = centroid_subtree_sizes(k, n);

  Adjacency adj;
  const int centroid = adj.add();
  for (int sz : sizes) {
    if (sz == 0) continue;
    adj.link(centroid, add_shape(adj, make_complete_shape(sz, k)));
  }
  // Root at a leaf (Remark 7: "rooting at some leaf"); any leaf gives the
  // same total distance since pairwise distances ignore the root.
  int leaf = -1;
  for (int i = 0; i < static_cast<int>(adj.nbrs.size()); ++i) {
    if (adj.nbrs[static_cast<size_t>(i)].size() == 1) {
      leaf = i;
      break;
    }
  }
  if (leaf < 0) leaf = centroid;  // n == 2 edge: both nodes degree 1 anyway
  Shape s = to_rooted_shape(adj, leaf, -1);
  s.recompute_sizes();
  return s;
}

KAryTree centroid_kary_tree(int k, int n) {
  return build_from_shape(k, centroid_shape(k, n));
}

}  // namespace san
