// Offline optimal static k-ary search tree for the uniform workload
// (Theorem 4 / Appendix A.2).
//
// Lemmas 18-19: under uniform demand both W and the optimal segment cost
// depend only on the segment *length*, so the general O(n^3 k) program
// collapses to one dimension. The remaining program is over tree shapes:
// U1[l] = l*(n-l) + best partition of l-1 nodes into at most k subtrees,
// O(n^2 k) time, O(n k) memory. The resulting tree need not be
// routing-based (Section 3.1 remark) — any shape with at most k children
// per node can be labelled in order to satisfy the search property.
//
// The partition rows are branchless vectorized min-plus sweeps (feasible
// ranges make every read finite) and no argmin tables are kept —
// optimal_uniform_tree re-derives the visited chains' argmins from the
// cost rows with the original scan order, and optimal_uniform_cost never
// pays for argmin bookkeeping at all. Same discipline as the general DP
// engine (optimal_dp.cpp); n = 16000, k = 10 answers in ~0.3 s.
#pragma once

#include "core/karytree.hpp"
#include "core/types.hpp"

namespace san {

struct UniformTreeResult {
  KAryTree tree;
  /// TotalDistance over the finite uniform workload (every unordered pair
  /// once) = sum over edges of s * (n - s).
  Cost total_distance = 0;
};

/// Optimal k-ary search tree for the uniform workload on n nodes.
/// `threads` = 0 uses all hardware threads for the per-length partition
/// rows (each t-row of P[t][l] is independent given lengths < l).
UniformTreeResult optimal_uniform_tree(int k, int n, int threads = 0);

/// Cost only (skips reconstruction); same O(n^2 k) DP.
Cost optimal_uniform_cost(int k, int n, int threads = 0);

}  // namespace san
