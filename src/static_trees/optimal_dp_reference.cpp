// Reference implementation of the Theorem 2 DP — the pre-rewrite code,
// kept verbatim as the differential oracle for the flat cache-blocked
// engine in optimal_dp.cpp. Slower (per-length vector-of-vectors tables,
// sentinel-guarded inner loops, O(n^2 k) choice tables) but maximally
// literal: every accessor matches the recurrence as written in the paper.
//
// tests/test_dp_exhaustive.cpp runs the rewritten engine against this
// oracle on hundreds of random demand matrices and asserts identical cost
// AND an identical reconstructed tree; bench/dp_differential.cpp repeats
// the check in Release as a CI smoke gate. Setting SAN_DP_REFERENCE=1 in
// the environment routes optimal_routing_based_tree() here at runtime.
#include "static_trees/optimal_dp.hpp"

#include <algorithm>
#include <vector>

#include "core/parallel.hpp"
#include "core/shape.hpp"

namespace san {
namespace {

// Flattened tables indexed by (t, segment). Segment [i, j] with 1 <= i <=
// j <= n lives at (i-1)*n + (j-1); empty segments are resolved by the
// accessors, not stored.
class DpTables {
 public:
  DpTables(int k, int n)
      : k_(k),
        n_(n),
        dp_(static_cast<size_t>(k + 1), row(n)),
        dp2_(static_cast<size_t>(k + 1), row(n)),
        split_(static_cast<size_t>(k + 1),
               std::vector<int>(static_cast<size_t>(n) * n, -1)),
        count_(static_cast<size_t>(k + 1),
               std::vector<signed char>(static_cast<size_t>(n) * n, -1)),
        root_(static_cast<size_t>(n) * n, -1),
        dl_(static_cast<size_t>(n) * n, -1) {}

  size_t at(int i, int j) const {
    return static_cast<size_t>(i - 1) * n_ + (j - 1);
  }

  Cost dp(int t, int i, int j) const {
    if (i > j) return 0;
    if (t == 0) return kInfiniteCost;
    return dp_[static_cast<size_t>(t)][at(i, j)];
  }
  Cost dp2(int t, int i, int j) const {
    if (i > j) return 0;
    if (t == 0) return kInfiniteCost;
    return dp2_[static_cast<size_t>(t)][at(i, j)];
  }

  int k_, n_;
  std::vector<std::vector<Cost>> dp_, dp2_;
  std::vector<std::vector<int>> split_;          // argmin l for t >= 2
  std::vector<std::vector<signed char>> count_;  // argmin y for dp2[t]
  std::vector<int> root_;                        // argmin r for t = 1
  std::vector<int> dl_;                          // argmin dl for t = 1

 private:
  static std::vector<Cost> row(int n) {
    return std::vector<Cost>(static_cast<size_t>(n) * n, kInfiniteCost);
  }
};

// Reconstruction: walks the choice tables back into a Shape whose in-order
// id assignment is exactly 1..n (the DP's segment order).
struct Rebuilder {
  const DpTables& T;

  Shape single(int i, int j) const {
    Shape s;
    const size_t ij = T.at(i, j);
    const int r = T.root_[ij];
    const int dl = T.dl_[ij];
    const int dr = (dl == 0) ? T.k_ - 1 : T.k_ - dl;
    int tl = 0, tr = 0;
    if (i <= r - 1) tl = T.count_[static_cast<size_t>(dl)][T.at(i, r - 1)];
    if (r + 1 <= j) tr = T.count_[static_cast<size_t>(dr)][T.at(r + 1, j)];
    parts(i, r - 1, tl, s.kids);
    s.self_pos = static_cast<int>(s.kids.size());
    parts(r + 1, j, tr, s.kids);
    s.size = j - i + 1;
    return s;
  }

  void parts(int i, int j, int t, std::vector<Shape>& out) const {
    while (t > 1) {
      const int l = T.split_[static_cast<size_t>(t)][T.at(i, j)];
      out.push_back(single(i, l));
      i = l + 1;
      --t;
    }
    if (t == 1) out.push_back(single(i, j));
  }
};

}  // namespace

OptimalTreeResult optimal_routing_based_tree_reference(int k,
                                                       const DemandMatrix& D,
                                                       int threads) {
  const int n = D.n();
  if (k < 2) throw TreeError("optimal_routing_based_tree: k must be >= 2");
  DpTables T(k, n);
  D.prewarm();  // force the lazy prefix build before parallel access

  for (int len = 1; len <= n; ++len) {
    // A diagonal is n-len+1 segments of O(len*k + k^2) work each. The
    // executor pool makes a round cheap, but the shortest diagonals of a
    // small instance are still better off inline on the caller.
    const long work = static_cast<long>(n - len + 1) * (len + k) * k;
    const int diag_threads = work < 8192 ? 1 : threads;
    parallel_for(1, n - len + 2, diag_threads, [&](long li) {
      const int i = static_cast<int>(li);
      const int j = i + len - 1;
      const size_t ij = T.at(i, j);
      const Cost w = D.boundary(i, j);

      // t = 1: choose root r and children split. The root's id is itself a
      // boundary: with children on both sides it separates the left and
      // right groups (dl + dr <= k uses dl + dr - 1 <= k - 1 keys), but
      // with all children on one side the id key occupies an extra slot,
      // capping that side at k - 1 (dp2 being a prefix minimum covers every
      // dl' <= dl, dr' <= dr).
      Cost best = kInfiniteCost;
      int best_r = -1, best_dl = -1;
      for (int r = i; r <= j; ++r) {
        for (int dl = 0; dl <= k - 1; ++dl) {
          const int dr = (dl == 0) ? k - 1 : k - dl;
          const Cost left = T.dp2(dl, i, r - 1);
          if (left >= kInfiniteCost) continue;
          const Cost right = T.dp2(dr, r + 1, j);
          if (right >= kInfiniteCost) continue;
          const Cost cand = left + right + w;
          if (cand < best) {
            best = cand;
            best_r = r;
            best_dl = dl;
          }
        }
      }
      T.dp_[1][ij] = best;
      T.root_[ij] = best_r;
      T.dl_[ij] = best_dl;

      // t >= 2: first tree on a prefix [i, l], remaining t-1 parts after.
      const int tmax = std::min(k, len);
      for (int t = 2; t <= tmax; ++t) {
        Cost best_t = kInfiniteCost;
        int best_l = -1;
        for (int l = i; l <= j - (t - 1); ++l) {
          const Cost head = T.dp_[1][T.at(i, l)];
          const Cost tail = T.dp_[static_cast<size_t>(t - 1)][T.at(l + 1, j)];
          if (head >= kInfiniteCost || tail >= kInfiniteCost) continue;
          const Cost cand = head + tail;
          if (cand < best_t) {
            best_t = cand;
            best_l = l;
          }
        }
        T.dp_[static_cast<size_t>(t)][ij] = best_t;
        T.split_[static_cast<size_t>(t)][ij] = best_l;
      }

      Cost run = kInfiniteCost;
      signed char argmin = -1;
      for (int t = 1; t <= k; ++t) {
        if (T.dp_[static_cast<size_t>(t)][ij] < run) {
          run = T.dp_[static_cast<size_t>(t)][ij];
          argmin = static_cast<signed char>(t);
        }
        T.dp2_[static_cast<size_t>(t)][ij] = run;
        T.count_[static_cast<size_t>(t)][ij] = argmin;
      }
    });
  }

  Rebuilder rb{T};
  Shape shape = rb.single(1, n);
  shape.recompute_sizes();
  OptimalTreeResult res{build_from_shape(k, shape),
                        T.dp_[1][T.at(1, n)]};
  return res;
}

}  // namespace san
