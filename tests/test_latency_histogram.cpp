// LatencyHistogram: bucket geometry, quantile accuracy, mergeability.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include "stats/latency_histogram.hpp"

namespace san {
namespace {

TEST(LatencyHistogram, EmptyIsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0u);
  EXPECT_EQ(h.p999(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(LatencyHistogram, BucketGeometry) {
  // The linear region is exact; every value maps into a bucket whose
  // [low, low + width) range contains it, and indices are monotone.
  for (std::uint64_t v = 0; v < LatencyHistogram::kSubBuckets; ++v) {
    const std::size_t idx = LatencyHistogram::bucket_index(v);
    EXPECT_EQ(idx, v);
    EXPECT_EQ(LatencyHistogram::bucket_low(idx), v);
    EXPECT_EQ(LatencyHistogram::bucket_mid(idx), v);
  }
  std::size_t prev = 0;
  for (std::uint64_t v :
       {std::uint64_t{32}, std::uint64_t{33}, std::uint64_t{63},
        std::uint64_t{64}, std::uint64_t{100}, std::uint64_t{1000},
        std::uint64_t{123456}, std::uint64_t{1} << 40,
        (std::uint64_t{1} << 63) + 12345, ~std::uint64_t{0}}) {
    const std::size_t idx = LatencyHistogram::bucket_index(v);
    ASSERT_LT(idx, LatencyHistogram::kBuckets);
    EXPECT_GE(idx, prev);
    prev = idx;
    EXPECT_LE(LatencyHistogram::bucket_low(idx), v);
    // The last bucket's upper edge is 2^64 (not representable); skip it.
    if (idx + 1 < LatencyHistogram::kBuckets)
      EXPECT_GT(LatencyHistogram::bucket_low(idx + 1), v);
  }
}

TEST(LatencyHistogram, SmallValuesExact) {
  LatencyHistogram h;
  for (std::uint64_t v : {0u, 1u, 2u, 3u, 10u, 31u}) h.record(v);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 31u);
  EXPECT_EQ(h.quantile(0.5), 2u);
  EXPECT_EQ(h.quantile(1.0), 31u);
  EXPECT_DOUBLE_EQ(h.mean(), 47.0 / 6.0);
}

// Quantiles over wide-range values stay within the 2^-5 relative error
// the sub-bucket resolution promises, checked against the exact order
// statistics of the same sample.
TEST(LatencyHistogram, QuantileRelativeErrorBound) {
  std::mt19937_64 rng(7);
  LatencyHistogram h;
  std::vector<std::uint64_t> values;
  values.reserve(100000);
  // Log-uniform over ~6 decades, the shape of a latency distribution
  // with a heavy tail.
  std::uniform_real_distribution<double> exponent(2.0, 9.0);
  for (int i = 0; i < 100000; ++i) {
    const auto v =
        static_cast<std::uint64_t>(std::pow(10.0, exponent(rng)));
    values.push_back(v);
    h.record(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 0.9999}) {
    const auto rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(values.size())));
    const std::uint64_t exact = values[rank == 0 ? 0 : rank - 1];
    const std::uint64_t approx = h.quantile(q);
    const double rel =
        std::abs(static_cast<double>(approx) - static_cast<double>(exact)) /
        static_cast<double>(exact);
    EXPECT_LE(rel, 1.0 / 32.0) << "q=" << q << " exact=" << exact
                               << " approx=" << approx;
  }
  // Quantiles are monotone in q.
  EXPECT_LE(h.p50(), h.p99());
  EXPECT_LE(h.p99(), h.p999());
  EXPECT_LE(h.p999(), h.max());
  EXPECT_LE(h.min(), h.p50());
}

// merge() must equal recording both streams into one histogram —
// bucket-exact, not approximately: this is what makes per-shard
// histograms a mergeable summary for global quantiles.
TEST(LatencyHistogram, MergeEqualsConcatenation) {
  std::mt19937_64 rng(11);
  LatencyHistogram a, b, both;
  std::uniform_int_distribution<std::uint64_t> dist(0, 50'000'000);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t v = dist(rng);
    if (i % 3 == 0) {
      a.record(v);
    } else {
      b.record(v);
    }
    both.record(v);
  }
  LatencyHistogram merged = a;
  merged.merge(b);
  EXPECT_EQ(merged.count(), both.count());
  EXPECT_EQ(merged.min(), both.min());
  EXPECT_EQ(merged.max(), both.max());
  EXPECT_DOUBLE_EQ(merged.mean(), both.mean());
  for (double q = 0.0; q <= 1.0; q += 0.01)
    EXPECT_EQ(merged.quantile(q), both.quantile(q)) << "q=" << q;
}

TEST(LatencyHistogram, MergeEmptyIsIdentity) {
  LatencyHistogram h, empty;
  h.record(42);
  h.record(1000);
  LatencyHistogram copy = h;
  copy.merge(empty);
  EXPECT_EQ(copy.count(), 2u);
  EXPECT_EQ(copy.min(), 42u);
  EXPECT_EQ(copy.max(), 1000u);
  empty.merge(h);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_EQ(empty.min(), 42u);
}

TEST(LatencyHistogram, SingleValue) {
  LatencyHistogram h;
  h.record(123456789);
  EXPECT_EQ(h.count(), 1u);
  // Every quantile of a single observation is that observation, clamped
  // to the exact min/max rather than the bucket midpoint.
  EXPECT_EQ(h.quantile(0.0), 123456789u);
  EXPECT_EQ(h.quantile(1.0), 123456789u);
  EXPECT_GE(h.quantile(0.5), 123456789u * 31 / 32);
  EXPECT_LE(h.quantile(0.5), 123456789u * 33 / 32);
}

}  // namespace
}  // namespace san
