// Simulation layer: cost accounting identities across all Network
// adapters, and agreement between the static shortcut and the adapter path.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "core/shape.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "static_trees/full_tree.hpp"
#include "workload/generators.hpp"

namespace san {
namespace {

TEST(Simulator, StaticNetworkNeverRotates) {
  StaticTreeNetwork net(full_kary_tree(3, 50), "full 3-ary");
  Trace t = gen_uniform(50, 2000, 1);
  SimResult r = run_trace(net, t);
  EXPECT_EQ(r.rotation_count, 0);
  EXPECT_EQ(r.edge_changes, 0);
  EXPECT_GT(r.routing_cost, 0);
  EXPECT_EQ(r.requests, 2000u);
  EXPECT_EQ(r.total_cost(), r.routing_cost);
}

TEST(Simulator, StaticShortcutMatchesAdapter) {
  KAryTree tree = full_kary_tree(4, 80);
  Trace t = gen_temporal(80, 3000, 0.5, 2);
  StaticTreeNetwork net(full_kary_tree(4, 80), "full");
  SimResult via_adapter = run_trace(net, t);
  SimResult direct = run_trace_static(tree, t);
  EXPECT_EQ(via_adapter.routing_cost, direct.routing_cost);
  EXPECT_EQ(via_adapter.requests, direct.requests);
}

TEST(Simulator, StaticPathsAgreeOnRandomTreesAndTraces) {
  // run_trace_static and StaticTreeNetwork::serve share one costing helper
  // (serve_on_static_tree); this locks their agreement — totals and
  // per-request — over random topologies and every workload family.
  std::mt19937_64 rng(20260728);
  for (int k : {2, 3, 7}) {
    for (int trial = 0; trial < 3; ++trial) {
      const int n = 40 + static_cast<int>(rng() % 60);
      KAryTree tree = build_from_shape(k, make_random_shape(n, k, rng));
      StaticTreeNetwork net(tree, "random static");
      // Draw into locals: argument evaluation order is unsequenced and the
      // chosen (kind, seed) pair must not depend on the compiler.
      const auto kind = static_cast<WorkloadKind>(rng() % 8);
      const std::uint64_t trace_seed = rng();
      const Trace t = gen_workload(kind, n, 1500, trace_seed);
      SimResult via_adapter = run_trace(net, t);
      SimResult direct = run_trace_static(tree, t);
      EXPECT_EQ(via_adapter.routing_cost, direct.routing_cost)
          << "k=" << k << " trial " << trial;
      EXPECT_EQ(via_adapter.rotation_count, direct.rotation_count);
      EXPECT_EQ(via_adapter.edge_changes, direct.edge_changes);
      EXPECT_EQ(via_adapter.requests, direct.requests);
      for (const Request& r : t.requests) {
        ASSERT_EQ(net.serve(r.src, r.dst).routing_cost,
                  serve_on_static_tree(tree, r.src, r.dst).routing_cost)
            << r.src << " -> " << r.dst;
      }
    }
  }
}

TEST(Simulator, OnlineAdaptersAccumulateCosts) {
  Trace t = gen_temporal(64, 3000, 0.7, 3);
  std::vector<AnyNetwork> nets;
  nets.emplace_back(KArySplayNetwork(KArySplayNet::balanced(3, 64)));
  nets.emplace_back(CentroidSplayNetwork(CentroidSplayNet(3, 64)));
  nets.emplace_back(BinarySplayNetwork(64));
  nets.emplace_back(ShardedNetwork::balanced(3, 64, 4));
  for (AnyNetwork& net : nets) {
    SimResult r = run_trace(net, t);
    EXPECT_EQ(r.requests, 3000u) << net.name();
    EXPECT_GT(r.routing_cost, 0) << net.name();
    EXPECT_GT(r.rotation_count, 0) << net.name();
    EXPECT_EQ(r.total_cost(), r.routing_cost + r.rotation_count)
        << net.name();
    EXPECT_EQ(r.model_cost(), r.routing_cost + r.edge_changes) << net.name();
    EXPECT_NEAR(r.avg_request_cost(),
                static_cast<double>(r.total_cost()) / 3000.0, 1e-9)
        << net.name();
  }
}

// Field-level lock on the SimResult cost identities: golden tests exercise
// model_cost/edge_changes only through total_cost, so pin them directly.
TEST(Simulator, SimResultCostIdentities) {
  SimResult r;
  r.routing_cost = 100;
  r.rotation_count = 40;
  r.edge_changes = 90;
  r.cross_shard = 3;
  r.requests = 10;
  EXPECT_EQ(r.total_cost(), 140);   // unit routing + unit rotation
  EXPECT_EQ(r.model_cost(), 190);   // routing + links added/removed
  EXPECT_DOUBLE_EQ(r.avg_request_cost(), 14.0);
  EXPECT_DOUBLE_EQ(r.avg_routing_cost(), 10.0);

  const SimResult empty;
  EXPECT_EQ(empty.total_cost(), 0);
  EXPECT_EQ(empty.model_cost(), 0);
  EXPECT_EQ(empty.cross_shard, 0);
  EXPECT_EQ(empty.avg_request_cost(), 0.0);
  EXPECT_EQ(empty.avg_routing_cost(), 0.0);
}

// The edge_changes path: run_trace must accumulate exactly the per-request
// adjustment links reported by serve(), and model_cost must track them.
TEST(Simulator, EdgeChangesMatchPerRequestAccounting) {
  const int n = 48;
  Trace t = gen_temporal(n, 2000, 0.5, 17);
  KArySplayNet reference = KArySplayNet::balanced(3, n);
  Cost routing = 0, edges = 0;
  for (const Request& r : t.requests) {
    const ServeResult s = reference.serve(r.src, r.dst);
    routing += s.routing_cost;
    edges += s.edge_changes;
  }
  ASSERT_GT(edges, 0);

  KArySplayNetwork net(KArySplayNet::balanced(3, n));
  const SimResult res = run_trace(net, t);
  EXPECT_EQ(res.edge_changes, edges);
  EXPECT_EQ(res.routing_cost, routing);
  EXPECT_EQ(res.model_cost(), routing + edges);
  // Every k-splay merges at least one link pair, so the Section 2 model
  // cost strictly dominates routing for a self-adjusting replay.
  EXPECT_GT(res.model_cost(), res.routing_cost);
}

TEST(Simulator, NetworkNames) {
  EXPECT_EQ(KArySplayNetwork(KArySplayNet::balanced(5, 20)).name(),
            "5-ary SplayNet");
  EXPECT_EQ(CentroidSplayNetwork(CentroidSplayNet(2, 20)).name(),
            "3-SplayNet");
  EXPECT_EQ(BinarySplayNetwork(20).name(), "SplayNet");
  EXPECT_EQ(StaticTreeNetwork(full_kary_tree(2, 8), "x").name(), "x");
}

TEST(Simulator, SelfAdjustingBeatsStaticOnHighLocality) {
  // The paper's core qualitative claim, as an integration test: with high
  // temporal locality the self-adjusting network's total cost (routing +
  // rotations) drops below the static full tree's routing cost.
  const int n = 200;
  Trace t = gen_temporal(n, 30000, 0.9, 4);
  KArySplayNetwork online(KArySplayNet::balanced(3, n));
  SimResult dynamic = run_trace(online, t);
  SimResult fixed = run_trace_static(full_kary_tree(3, n), t);
  EXPECT_LT(dynamic.total_cost(), fixed.total_cost());
}

TEST(Simulator, StaticBeatsSelfAdjustingOnUniform) {
  // And the converse: under uniform traffic the rotations cannot pay off.
  const int n = 200;
  Trace t = gen_uniform(n, 30000, 5);
  KArySplayNetwork online(KArySplayNet::balanced(3, n));
  SimResult dynamic = run_trace(online, t);
  SimResult fixed = run_trace_static(full_kary_tree(3, n), t);
  EXPECT_GT(dynamic.total_cost(), fixed.total_cost());
}

TEST(Simulator, EmptyTrace) {
  StaticTreeNetwork net(full_kary_tree(2, 10), "full");
  Trace t;
  t.n = 10;
  SimResult r = run_trace(net, t);
  EXPECT_EQ(r.requests, 0u);
  EXPECT_EQ(r.avg_request_cost(), 0.0);
}

}  // namespace
}  // namespace san
