// Classic binary SplayNet baseline: structural validity, splay semantics,
// and agreement with the 2-ary instantiation of the generic engine.
#include <gtest/gtest.h>

#include <random>

#include "core/binary_splaynet.hpp"
#include "core/splaynet.hpp"
#include "workload/generators.hpp"

namespace san {
namespace {

TEST(BinarySplayNet, BalancedConstruction) {
  BinarySplayNet net(127);
  EXPECT_TRUE(net.valid());
  int max_depth = 0;
  for (NodeId id = 1; id <= 127; ++id)
    max_depth = std::max(max_depth, net.depth(id));
  EXPECT_EQ(max_depth, 6);  // perfect tree on 2^7 - 1 nodes
}

TEST(BinarySplayNet, LcaMatchesDefinition) {
  BinarySplayNet net(100);
  for (NodeId u = 1; u <= 100; u += 7)
    for (NodeId v = u; v <= 100; v += 11) {
      const NodeId w = net.lca(u, v);
      // w lies in the id interval [u, v] and is an ancestor of both.
      EXPECT_GE(w, std::min(u, v));
      EXPECT_LE(w, std::max(u, v));
      NodeId a = u;
      while (a != w && a != kNoNode) a = net.parent(a);
      EXPECT_EQ(a, w);
    }
}

TEST(BinarySplayNet, ServeBringsAdjacent) {
  BinarySplayNet net(128);
  std::mt19937_64 rng(5);
  for (int step = 0; step < 300; ++step) {
    NodeId u = 1 + static_cast<NodeId>(rng() % 128);
    NodeId v = 1 + static_cast<NodeId>(rng() % 128);
    if (u == v) continue;
    net.serve(u, v);
    EXPECT_EQ(net.distance(u, v), 1);
    const ServeResult again = net.serve(u, v);
    EXPECT_EQ(again.routing_cost, 1);
    EXPECT_EQ(again.rotations, 0);
  }
  EXPECT_TRUE(net.valid());
}

TEST(BinarySplayNet, AccessMovesToRoot) {
  BinarySplayNet net(64);
  std::mt19937_64 rng(6);
  for (int step = 0; step < 100; ++step) {
    NodeId x = 1 + static_cast<NodeId>(rng() % 64);
    const int d = net.depth(x);
    const ServeResult r = net.access(x);
    EXPECT_EQ(r.routing_cost, d);
    EXPECT_EQ(net.root(), x);
    EXPECT_TRUE(net.valid());
  }
}

TEST(BinarySplayNet, DepthStaysLogarithmicUnderUniformLoad) {
  const int n = 512;
  BinarySplayNet net(n);
  Trace t = gen_uniform(n, 20000, 31);
  for (const Request& r : t.requests) net.serve(r.src, r.dst);
  double depth_sum = 0;
  for (NodeId id = 1; id <= n; ++id) depth_sum += net.depth(id);
  EXPECT_LT(depth_sum / n, 40.0);
  EXPECT_TRUE(net.valid());
}

TEST(BinarySplayNet, AgreesWithGeneric2AryWithinTolerance) {
  // Two independent implementations of the same algorithm family: total
  // routing costs on one trace agree within a modest constant factor.
  const int n = 256;
  Trace t = gen_temporal(n, 20000, 0.5, 8);
  BinarySplayNet classic(n);
  KArySplayNet generic = KArySplayNet::balanced(2, n);
  Cost classic_cost = 0, generic_cost = 0;
  for (const Request& r : t.requests) {
    classic_cost += classic.serve(r.src, r.dst).routing_cost;
    generic_cost += generic.serve(r.src, r.dst).routing_cost;
  }
  EXPECT_LT(generic_cost, 2 * classic_cost);
  EXPECT_LT(classic_cost, 2 * generic_cost);
}

TEST(BinarySplayNet, PathReversalFoldsDepth) {
  // Splaying the deepest node of a degenerate path halves the depth: the
  // textbook splay behaviour, asserted here as a regression guard for the
  // rotation order.
  const int n = 255;
  BinarySplayNet net(n);
  // Build a left path by accessing ids in increasing order: each access
  // makes the accessed node root with the previous tree as left child.
  for (NodeId id = 1; id <= n; ++id) net.access(id);
  EXPECT_EQ(net.depth(1), n - 1);
  net.access(1);
  int max_depth = 0;
  for (NodeId id = 1; id <= n; ++id)
    max_depth = std::max(max_depth, net.depth(id));
  EXPECT_LE(max_depth, n / 2 + 2);
  EXPECT_TRUE(net.valid());
}

TEST(BinarySplayNet, SingleNode) {
  BinarySplayNet net(1);
  EXPECT_TRUE(net.valid());
  EXPECT_EQ(net.serve(1, 1).routing_cost, 0);
}

}  // namespace
}  // namespace san
