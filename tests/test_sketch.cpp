// Differential wall for the streaming summaries (stats/sketch.hpp): the
// sketches are checked against exact histograms, not against hand-picked
// outputs, so every guarantee the rebalancer leans on (no underestimates,
// bounded overestimates, exact-order heavy hitters, bit-identical merges)
// is exercised with real skewed traffic.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <random>
#include <vector>

#include "core/rng.hpp"
#include "core/types.hpp"
#include "stats/sketch.hpp"
#include "workload/zipf.hpp"

namespace san {
namespace {

/// Deterministic skewed key stream: Zipf ranks mixed through splitmix64 so
/// keys are spread over the full 64-bit space like real pair keys are.
std::vector<std::uint64_t> zipf_keys(std::size_t m, int universe, double s,
                                     std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  ZipfSampler zipf(universe, s);
  std::vector<std::uint64_t> keys;
  keys.reserve(m);
  for (std::size_t i = 0; i < m; ++i)
    keys.push_back(splitmix64_mix(static_cast<std::uint64_t>(zipf(rng))));
  return keys;
}

std::map<std::uint64_t, double> exact_histogram(
    const std::vector<std::uint64_t>& keys) {
  std::map<std::uint64_t, double> h;
  for (std::uint64_t k : keys) h[k] += 1.0;
  return h;
}

TEST(SketchCountMin, NeverUnderestimatesAndMeetsTheErrorBound) {
  const auto keys = zipf_keys(20000, 400, 1.2, 11);
  const auto exact = exact_histogram(keys);
  CountMinSketch cm(1024, 4, 99);
  for (std::uint64_t k : keys) cm.observe(k, 1.0);

  EXPECT_DOUBLE_EQ(cm.total_weight(), static_cast<double>(keys.size()));
  // Classical CM guarantee: estimate in [true, true + eps * W] with
  // probability 1 - delta where eps = e / width. With depth 4 a violation
  // is (< 1/2)^4 per key; over 400 keys with a fixed seed this is a
  // deterministic check, not a flaky probabilistic one.
  const double eps_w =
      std::exp(1.0) / static_cast<double>(cm.width()) * cm.total_weight();
  for (const auto& [key, true_w] : exact) {
    const double est = cm.estimate(key);
    EXPECT_GE(est, true_w) << key;
    EXPECT_LE(est, true_w + eps_w) << key;
  }
  // Untracked keys may collide into nonzero cells but never exceed the
  // same bound above a true weight of zero.
  for (std::uint64_t probe : {std::uint64_t{1}, std::uint64_t{424242}}) {
    if (exact.count(splitmix64_mix(probe)) == 0)
      EXPECT_LE(cm.estimate(splitmix64_mix(probe)), eps_w);
  }
}

TEST(SketchCountMin, ScaleDecaysEveryEstimate) {
  const auto keys = zipf_keys(5000, 100, 1.1, 3);
  const auto exact = exact_histogram(keys);
  CountMinSketch cm(512, 4, 7);
  for (std::uint64_t k : keys) cm.observe(k, 1.0);
  std::map<std::uint64_t, double> before;
  for (const auto& [key, w] : exact) before[key] = cm.estimate(key);
  cm.scale(0.5);
  EXPECT_DOUBLE_EQ(cm.total_weight(), static_cast<double>(keys.size()) * 0.5);
  for (const auto& [key, est] : before)
    EXPECT_DOUBLE_EQ(cm.estimate(key), est * 0.5) << key;
}

TEST(SketchCountMin, MergeIsBitIdenticalToObservingTheConcatenation) {
  const auto a = zipf_keys(4000, 200, 1.3, 21);
  const auto b = zipf_keys(4000, 200, 1.3, 22);
  CountMinSketch whole(512, 4, 5), left(512, 4, 5), right(512, 4, 5);
  for (std::uint64_t k : a) {
    whole.observe(k, 1.0);
    left.observe(k, 1.0);
  }
  for (std::uint64_t k : b) {
    whole.observe(k, 1.0);
    right.observe(k, 1.0);
  }
  left.merge(right);
  EXPECT_EQ(left.total_weight(), whole.total_weight());
  for (std::uint64_t k : a) EXPECT_EQ(left.estimate(k), whole.estimate(k));
  for (std::uint64_t k : b) EXPECT_EQ(left.estimate(k), whole.estimate(k));

  CountMinSketch mismatched(256, 4, 5);
  EXPECT_THROW(left.merge(mismatched), TreeError);
  CountMinSketch wrong_seed(512, 4, 6);
  EXPECT_THROW(left.merge(wrong_seed), TreeError);
}

TEST(SketchSpaceSaving, ExactWhenTheUniverseFitsCapacity) {
  const auto keys = zipf_keys(10000, 50, 1.0, 13);
  const auto exact = exact_histogram(keys);
  ASSERT_LE(exact.size(), 64u);
  SpaceSaving ss(64);
  for (std::uint64_t k : keys) ss.observe(k, 1.0);
  EXPECT_EQ(ss.size(), exact.size());
  for (const auto& [key, w] : exact) {
    EXPECT_DOUBLE_EQ(ss.count(key), w) << key;
  }
  for (const SpaceSaving::Entry& e : ss.entries())
    EXPECT_DOUBLE_EQ(e.error, 0.0) << e.key;
}

TEST(SketchSpaceSaving, TopRanksMatchExactCountsOnSkewedTraffic) {
  // Zipf(1.4) over 1000 ranks through a capacity-256 summary: the classical
  // guarantee count - error <= true <= count must hold for every survivor,
  // and the heavy head (well above the eviction floor) must rank exactly
  // as the true histogram does.
  const auto keys = zipf_keys(50000, 1000, 1.4, 17);
  const auto exact = exact_histogram(keys);
  SpaceSaving ss(256);
  for (std::uint64_t k : keys) ss.observe(k, 1.0);
  EXPECT_EQ(ss.size(), 256u);

  const auto entries = ss.entries();
  for (const SpaceSaving::Entry& e : entries) {
    const auto it = exact.find(e.key);
    const double true_w = it == exact.end() ? 0.0 : it->second;
    EXPECT_GE(e.count + 1e-9, true_w) << e.key;
    EXPECT_LE(e.count - e.error, true_w + 1e-9) << e.key;
  }

  // True top-16 by (weight desc, key asc), exactly the summary's order.
  std::vector<std::pair<double, std::uint64_t>> top;
  for (const auto& [key, w] : exact) top.push_back({w, key});
  std::sort(top.begin(), top.end(), [](const auto& a, const auto& b) {
    return a.first != b.first ? a.first > b.first : a.second < b.second;
  });
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(entries[i].key, top[i].second) << i;
    EXPECT_DOUBLE_EQ(entries[i].count - entries[i].error, top[i].first) << i;
  }
}

TEST(SketchSpaceSaving, ScaleAndPruneAgeOutTheTail) {
  SpaceSaving ss(8);
  for (int i = 1; i <= 4; ++i)
    for (int rep = 0; rep < i; ++rep)
      ss.observe(static_cast<std::uint64_t>(i), 1.0);
  ss.scale(0.5);
  EXPECT_DOUBLE_EQ(ss.count(1), 0.5);
  EXPECT_DOUBLE_EQ(ss.count(4), 2.0);
  ss.prune_below(1.0);
  EXPECT_FALSE(ss.contains(1));
  EXPECT_TRUE(ss.contains(2));  // exactly at the cut survives
  EXPECT_TRUE(ss.contains(4));
  EXPECT_EQ(ss.size(), 3u);
}

TEST(SketchSpaceSaving, MergeIsExactAndAssociativeWithinCapacity) {
  // Three shards' summaries whose union fits capacity: merging must equal
  // the exact union regardless of association order, bit for bit.
  const auto a = zipf_keys(3000, 30, 1.0, 31);
  const auto b = zipf_keys(3000, 30, 1.0, 32);
  const auto c = zipf_keys(3000, 30, 1.0, 33);
  auto summarize = [](const std::vector<std::uint64_t>& keys) {
    SpaceSaving s(128);
    for (std::uint64_t k : keys) s.observe(k, 1.0);
    return s;
  };
  SpaceSaving ab_c = summarize(a);
  ab_c.merge(summarize(b));
  ab_c.merge(summarize(c));
  SpaceSaving bc = summarize(b);
  bc.merge(summarize(c));
  SpaceSaving a_bc = summarize(a);
  a_bc.merge(bc);

  const auto left = ab_c.entries(), right = a_bc.entries();
  ASSERT_EQ(left.size(), right.size());
  for (std::size_t i = 0; i < left.size(); ++i) {
    EXPECT_EQ(left[i].key, right[i].key) << i;
    EXPECT_EQ(left[i].count, right[i].count) << i;  // bit-identical
    EXPECT_EQ(left[i].error, right[i].error) << i;
  }

  std::vector<std::uint64_t> all = a;
  all.insert(all.end(), b.begin(), b.end());
  all.insert(all.end(), c.begin(), c.end());
  for (const auto& [key, w] : exact_histogram(all))
    EXPECT_DOUBLE_EQ(ab_c.count(key), w) << key;
}

TEST(SketchDeterminism, IdenticalStreamsProduceIdenticalSummaries) {
  const auto keys = zipf_keys(8000, 300, 1.2, 41);
  CountMinSketch cm1(256, 4, 9), cm2(256, 4, 9);
  SpaceSaving ss1(64), ss2(64);
  for (std::uint64_t k : keys) {
    cm1.observe(k, 1.0);
    cm2.observe(k, 1.0);
    ss1.observe(k, 1.0);
    ss2.observe(k, 1.0);
  }
  for (std::uint64_t k : keys) EXPECT_EQ(cm1.estimate(k), cm2.estimate(k));
  const auto e1 = ss1.entries(), e2 = ss2.entries();
  ASSERT_EQ(e1.size(), e2.size());
  for (std::size_t i = 0; i < e1.size(); ++i) {
    EXPECT_EQ(e1[i].key, e2[i].key);
    EXPECT_EQ(e1[i].count, e2[i].count);
  }
}

TEST(SketchCountMin, RejectsBadShapes) {
  EXPECT_THROW(CountMinSketch(64, 0), TreeError);
  EXPECT_THROW(CountMinSketch(64, 17), TreeError);
  EXPECT_NO_THROW(CountMinSketch(0, 1));  // width clamps up to the minimum
  EXPECT_THROW(SpaceSaving(0), TreeError);
}

}  // namespace
}  // namespace san
