// Static constructions: full k-ary tree, centroid tree (Theorems 6/8,
// Remark 10), uniform-workload DP (Theorem 4) against exhaustive search,
// and the general routing-based DP (Theorem 2) against achievability and
// dominance properties.
#include <gtest/gtest.h>

#include <random>

#include "core/shape.hpp"
#include "static_trees/centroid_tree.hpp"
#include "static_trees/full_tree.hpp"
#include "static_trees/optimal_dp.hpp"
#include "static_trees/uniform_dp.hpp"
#include "workload/demand_matrix.hpp"

namespace san {
namespace {

// Exhaustive minimum of sum over edges s*(n-s) over all rooted shapes with
// at most k children per node. Used as ground truth for n <= 11.
Cost brute_uniform(int k, int n, int total_n, std::vector<Cost>& memo_single,
                   std::vector<std::vector<Cost>>& memo_parts);

Cost brute_parts(int k, int m, int parts, int max_first, int total_n,
                 std::vector<Cost>& memo_single,
                 std::vector<std::vector<Cost>>& memo_parts) {
  // min cost of `parts` subtrees totalling m nodes, first part <= max_first
  // (sizes non-increasing to kill permutations; costs are symmetric).
  if (parts == 0) return m == 0 ? 0 : kInfiniteCost;
  if (m < parts) return kInfiniteCost;
  Cost best = kInfiniteCost;
  for (int a = std::min(m - parts + 1, max_first); a >= 1; --a) {
    const Cost head =
        brute_uniform(k, a, total_n, memo_single, memo_parts) +
        static_cast<Cost>(a) * (total_n - a);
    const Cost tail = brute_parts(k, m - a, parts - 1, a, total_n,
                                  memo_single, memo_parts);
    if (tail >= kInfiniteCost) continue;
    best = std::min(best, head + tail);
  }
  return best;
}

Cost brute_uniform(int k, int n, int total_n, std::vector<Cost>& memo_single,
                   std::vector<std::vector<Cost>>& memo_parts) {
  if (n <= 1) return 0;
  if (memo_single[static_cast<size_t>(n)] >= 0)
    return memo_single[static_cast<size_t>(n)];
  Cost best = kInfiniteCost;
  for (int parts = 1; parts <= std::min(k, n - 1); ++parts)
    best = std::min(best, brute_parts(k, n - 1, parts, n - 1, total_n,
                                      memo_single, memo_parts));
  memo_single[static_cast<size_t>(n)] = best;
  return best;
}

TEST(FullTree, IsValidAndCompleteAcrossSizes) {
  for (int k = 2; k <= 8; ++k)
    for (int n : {1, 2, 10, 64, 333}) {
      KAryTree t = full_kary_tree(k, n);
      ASSERT_TRUE(t.valid()) << "k=" << k << " n=" << n;
      // Depth bound of a complete tree.
      int cap = 1, levels = 0;
      long long total = 1;
      while (total < n) {
        cap *= k;
        total += cap;
        ++levels;
      }
      for (NodeId id = 1; id <= n; ++id)
        EXPECT_LE(t.depth(id), levels);
    }
}

TEST(CentroidTree, SubtreeSizesSumAndBalance) {
  for (int k = 2; k <= 10; ++k)
    for (int n : {1, 2, 5, 23, 100, 999}) {
      auto sizes = centroid_subtree_sizes(k, n);
      ASSERT_EQ(sizes.size(), static_cast<size_t>(k + 1));
      long long sum = 0;
      int prev = INT32_MAX;
      for (int s : sizes) {
        sum += s;
        EXPECT_LE(s, prev) << "left-first fill";
        prev = s;
      }
      EXPECT_EQ(sum, n - 1);
    }
}

TEST(CentroidTree, ValidSearchTreeForAllSizes) {
  for (int k = 2; k <= 8; ++k)
    for (int n : {1, 2, 3, 8, 50, 341}) {
      KAryTree t = centroid_kary_tree(k, n);
      auto err = t.validate();
      ASSERT_FALSE(err.has_value()) << "k=" << k << " n=" << n << ": " << *err;
    }
}

TEST(CentroidTree, MatchesUniformOptimum_Remark10) {
  // Remark 10/37: the centroid tree is exactly optimal for the uniform
  // workload for n < 10^3, k <= 10 (spot-checked here; the full sweep is
  // bench/remark10_centroid_optimality).
  for (int k = 2; k <= 10; ++k)
    for (int n : {4, 9, 31, 77, 200}) {
      const Cost opt = optimal_uniform_cost(k, n);
      const Cost cen = centroid_kary_tree(k, n).uniform_total_distance();
      EXPECT_EQ(cen, opt) << "k=" << k << " n=" << n;
    }
}

TEST(CentroidTree, BeatsOrTiesFullTreeOnUniform_Lemma9) {
  // Lemma 9: both are n^2 log_k n + O(n^2); the centroid split makes the
  // centroid tree at least as good.
  for (int k = 2; k <= 6; ++k)
    for (int n : {50, 200, 500}) {
      const Cost cen = centroid_kary_tree(k, n).uniform_total_distance();
      const Cost ful = full_kary_tree(k, n).uniform_total_distance();
      EXPECT_LE(cen, ful) << "k=" << k << " n=" << n;
      // Within O(n^2) of each other (constant 2 is generous).
      EXPECT_LE(ful - cen, 2LL * n * n) << "k=" << k << " n=" << n;
    }
}

TEST(UniformDp, MatchesExhaustiveSearch) {
  for (int k = 2; k <= 4; ++k)
    for (int n = 1; n <= 11; ++n) {
      std::vector<Cost> memo_single(static_cast<size_t>(n) + 1, -1);
      std::vector<std::vector<Cost>> memo_parts;
      const Cost brute =
          brute_uniform(k, n, n, memo_single, memo_parts);
      const Cost dp = optimal_uniform_cost(k, n);
      EXPECT_EQ(dp, brute) << "k=" << k << " n=" << n;
    }
}

TEST(UniformDp, ReconstructionAchievesClaimedCost) {
  for (int k = 2; k <= 9; ++k)
    for (int n : {1, 7, 30, 120, 500}) {
      UniformTreeResult r = optimal_uniform_tree(k, n);
      ASSERT_TRUE(r.tree.valid()) << "k=" << k << " n=" << n;
      EXPECT_EQ(r.tree.uniform_total_distance(), r.total_distance)
          << "k=" << k << " n=" << n;
    }
}

TEST(UniformDp, CostDecreasesWithArity) {
  for (int n : {40, 200}) {
    Cost prev = kInfiniteCost;
    for (int k = 2; k <= 10; ++k) {
      const Cost c = optimal_uniform_cost(k, n);
      EXPECT_LE(c, prev) << "k=" << k << " n=" << n;
      prev = c;
    }
  }
}

TEST(OptimalDp, ReconstructionAchievesClaimedCost) {
  std::mt19937_64 rng(55);
  for (int k : {2, 3, 4, 7}) {
    for (int n : {1, 2, 6, 15, 40}) {
      DemandMatrix d(n);
      for (int t = 0; t < 3 * n; ++t) {
        NodeId u = 1 + static_cast<NodeId>(rng() % n);
        NodeId v = 1 + static_cast<NodeId>(rng() % n);
        if (u != v) d.add(u, v, 1 + static_cast<Cost>(rng() % 9));
      }
      OptimalTreeResult r = optimal_routing_based_tree(k, d, 2);
      ASSERT_TRUE(r.tree.valid()) << "k=" << k << " n=" << n;
      EXPECT_EQ(d.total_distance(r.tree), r.total_distance)
          << "k=" << k << " n=" << n;
    }
  }
}

TEST(OptimalDp, DominatesRandomTrees) {
  std::mt19937_64 rng(56);
  for (int k : {2, 3, 5}) {
    const int n = 18;
    DemandMatrix d(n);
    for (int t = 0; t < 60; ++t) {
      NodeId u = 1 + static_cast<NodeId>(rng() % n);
      NodeId v = 1 + static_cast<NodeId>(rng() % n);
      if (u != v) d.add(u, v, 1 + static_cast<Cost>(rng() % 5));
    }
    OptimalTreeResult r = optimal_routing_based_tree(k, d, 1);
    for (int trial = 0; trial < 300; ++trial) {
      Shape s = make_random_shape(n, k, rng);
      s.recompute_sizes();
      KAryTree rt = build_from_shape(k, s);
      EXPECT_GE(d.total_distance(rt), r.total_distance)
          << "k=" << k << " trial " << trial;
    }
  }
}

TEST(OptimalDp, CostMonotoneInArity) {
  std::mt19937_64 rng(57);
  const int n = 25;
  DemandMatrix d(n);
  for (int t = 0; t < 120; ++t) {
    NodeId u = 1 + static_cast<NodeId>(rng() % n);
    NodeId v = 1 + static_cast<NodeId>(rng() % n);
    if (u != v) d.add(u, v);
  }
  Cost prev = kInfiniteCost;
  for (int k = 2; k <= 8; ++k) {
    const Cost c = optimal_routing_based_tree(k, d, 2).total_distance;
    EXPECT_LE(c, prev) << "k=" << k;
    prev = c;
  }
}

TEST(OptimalDp, ThreadedAndSerialAgree) {
  std::mt19937_64 rng(58);
  const int n = 30;
  DemandMatrix d(n);
  for (int t = 0; t < 200; ++t) {
    NodeId u = 1 + static_cast<NodeId>(rng() % n);
    NodeId v = 1 + static_cast<NodeId>(rng() % n);
    if (u != v) d.add(u, v, 1 + static_cast<Cost>(rng() % 4));
  }
  const Cost serial = optimal_routing_based_tree(3, d, 1).total_distance;
  const Cost threaded = optimal_routing_based_tree(3, d, 4).total_distance;
  EXPECT_EQ(serial, threaded);
}

TEST(OptimalDp, CostOnlyEntryMatchesTreeEntry) {
  // optimal_routing_based_cost shares the forward tables with the tree
  // entry point and must return exactly the reconstructed tree's value.
  std::mt19937_64 rng(59);
  for (int k : {2, 4, 8}) {
    for (int n : {1, 3, 21, 44}) {
      DemandMatrix d(n);
      for (int t = 0; t < 3 * n; ++t) {
        NodeId u = 1 + static_cast<NodeId>(rng() % n);
        NodeId v = 1 + static_cast<NodeId>(rng() % n);
        if (u != v) d.add(u, v, 1 + static_cast<Cost>(rng() % 6));
      }
      const OptimalTreeResult r = optimal_routing_based_tree(k, d, 1);
      EXPECT_EQ(optimal_routing_based_cost(k, d, 1), r.total_distance)
          << "k=" << k << " n=" << n;
      EXPECT_EQ(optimal_routing_based_cost(k, d, 2), r.total_distance)
          << "k=" << k << " n=" << n << " (threaded)";
    }
  }
}

TEST(OptimalDp, ConcentratedDemandYieldsAdjacency) {
  // All demand on one pair: the optimal tree must place them at distance 1.
  DemandMatrix d(10);
  d.add(3, 8, 1000);
  OptimalTreeResult r = optimal_routing_based_tree(2, d, 1);
  EXPECT_EQ(r.total_distance, 1000);
  EXPECT_EQ(r.tree.distance(3, 8), 1);
}

TEST(OptimalDp, UniformDemandNotWorseThanShapeDp) {
  // The routing-based space is a sub-family; on the uniform workload its
  // optimum can't beat the shape DP, and for these sizes they coincide.
  for (int k : {2, 3}) {
    for (int n : {8, 14}) {
      const Cost shape_opt = optimal_uniform_cost(k, n);
      const Cost rb =
          optimal_routing_based_tree(k, DemandMatrix::uniform(n), 1)
              .total_distance;
      EXPECT_GE(rb, shape_opt);
      EXPECT_EQ(rb, shape_opt) << "k=" << k << " n=" << n;
    }
  }
}

}  // namespace
}  // namespace san
