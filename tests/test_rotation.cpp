// Property tests for the k-semi-splay / k-splay rotation engine: the search
// property, the permanence of node identifiers, and subtree node sets must
// survive arbitrary rotation storms for every arity and policy.
#include <gtest/gtest.h>

#include <random>
#include <set>

#include "core/rotation.hpp"
#include "core/shape.hpp"

namespace san {
namespace {

std::set<NodeId> subtree_ids(const KAryTree& t, NodeId root) {
  std::set<NodeId> ids;
  std::vector<NodeId> stack = {root};
  while (!stack.empty()) {
    NodeId cur = stack.back();
    stack.pop_back();
    ids.insert(cur);
    for (NodeId c : t.node(cur).children)
      if (c != kNoNode) stack.push_back(c);
  }
  return ids;
}

struct PolicyCase {
  RotationPolicy policy;
  const char* name;
};

const PolicyCase kPolicies[] = {
    {{BlockSizing::kBalanced, BlockPlacement::kCentered}, "balanced-centered"},
    {{BlockSizing::kGreedyMax, BlockPlacement::kCentered}, "greedy-centered"},
    {{BlockSizing::kBalanced, BlockPlacement::kLeftmost}, "balanced-left"},
    {{BlockSizing::kBalanced, BlockPlacement::kRightmost}, "balanced-right"},
    {{BlockSizing::kGreedyMax, BlockPlacement::kLeftmost}, "greedy-left"},
};

class RotationPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RotationPropertyTest, SemiSplayPreservesEverything) {
  const auto [k, seed] = GetParam();
  std::mt19937_64 rng(static_cast<uint64_t>(seed) * 7919 + k);
  for (const PolicyCase& pc : kPolicies) {
    const int n = 20 + static_cast<int>(rng() % 60);
    Shape s = make_random_shape(n, k, rng);
    s.recompute_sizes();
    KAryTree t = build_from_shape(k, s);
    for (int step = 0; step < 200; ++step) {
      NodeId x = 1 + static_cast<NodeId>(rng() % n);
      if (t.node(x).parent == kNoNode) continue;
      const NodeId p = t.node(x).parent;
      const auto before = subtree_ids(t, p);
      k_semi_splay(t, x, pc.policy);
      auto err = t.validate();
      ASSERT_FALSE(err.has_value())
          << pc.name << " k=" << k << " step=" << step << ": " << *err;
      // x took p's place: same node set below.
      EXPECT_EQ(subtree_ids(t, x), before) << pc.name;
      // x is now p's ancestor.
      EXPECT_TRUE(t.is_ancestor(x, p)) << pc.name;
    }
  }
}

TEST_P(RotationPropertyTest, KSplayPreservesEverything) {
  const auto [k, seed] = GetParam();
  std::mt19937_64 rng(static_cast<uint64_t>(seed) * 104729 + k);
  for (const PolicyCase& pc : kPolicies) {
    const int n = 20 + static_cast<int>(rng() % 60);
    Shape s = make_random_shape(n, k, rng);
    s.recompute_sizes();
    KAryTree t = build_from_shape(k, s);
    for (int step = 0; step < 200; ++step) {
      NodeId x = 1 + static_cast<NodeId>(rng() % n);
      const NodeId p = t.node(x).parent;
      if (p == kNoNode || t.node(p).parent == kNoNode) continue;
      const NodeId g = t.node(p).parent;
      const int depth_before = t.depth(x);
      const auto before = subtree_ids(t, g);
      k_splay(t, x, pc.policy);
      auto err = t.validate();
      ASSERT_FALSE(err.has_value())
          << pc.name << " k=" << k << " step=" << step << ": " << *err;
      EXPECT_EQ(subtree_ids(t, x), before) << pc.name;
      EXPECT_EQ(t.depth(x), depth_before - 2) << pc.name;
      EXPECT_TRUE(t.is_ancestor(x, p)) << pc.name;
      EXPECT_TRUE(t.is_ancestor(x, g)) << pc.name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Arity, RotationPropertyTest,
                         ::testing::Combine(::testing::Range(2, 11),
                                            ::testing::Values(1, 2, 3)),
                         [](const auto& info) {
                           return "k" +
                                  std::to_string(std::get<0>(info.param)) +
                                  "_seed" +
                                  std::to_string(std::get<1>(info.param));
                         });

TEST(Rotation, SemiSplayOnRootThrows) {
  KAryTree t = build_from_shape(3, make_complete_shape(10, 3));
  EXPECT_THROW(k_semi_splay(t, t.root()), TreeError);
}

TEST(Rotation, KSplayNeedsGrandparent) {
  KAryTree t = build_from_shape(3, make_complete_shape(10, 3));
  EXPECT_THROW(k_splay(t, t.root()), TreeError);
  for (NodeId c : t.node(t.root()).children)
    if (c != kNoNode) {
      EXPECT_THROW(k_splay(t, c), TreeError);
    }
}

TEST(Rotation, ReportsEdgeChanges) {
  KAryTree t = build_from_shape(2, make_path_shape(8));
  // Deepest node of the path; splaying it up must rewire something.
  NodeId deepest = 1;
  for (NodeId id = 2; id <= 8; ++id)
    if (t.depth(id) > t.depth(deepest)) deepest = id;
  RotationResult r = k_splay(t, deepest);
  EXPECT_GT(r.parent_changes, 0);
  EXPECT_GE(r.edge_changes, r.parent_changes);
  ASSERT_TRUE(t.valid());
}

TEST(Rotation, BinaryCaseActsLikeBstRotation) {
  // k = 2, complete tree of 3: semi-splay of a child is exactly one BST
  // rotation; the former root ends with the rotated node as parent.
  KAryTree t = build_from_shape(2, make_complete_shape(3, 2));
  NodeId root = t.root();
  NodeId child = kNoNode;
  for (NodeId c : t.node(root).children)
    if (c != kNoNode) child = c;
  ASSERT_NE(child, kNoNode);
  k_semi_splay(t, child);
  ASSERT_TRUE(t.valid());
  EXPECT_EQ(t.root(), child);
  EXPECT_EQ(t.node(root).parent, child);
}

}  // namespace
}  // namespace san
