// Open-loop arrival generators: seeded determinism, empirical mean rate,
// monotonicity, burstiness of the on-off process.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "workload/arrival.hpp"

namespace san {
namespace {

double empirical_rate(const std::vector<std::uint64_t>& times) {
  if (times.empty() || times.back() == 0) return 0.0;
  return static_cast<double>(times.size()) /
         (static_cast<double>(times.back()) / 1e9);
}

/// Variance-to-mean ratio of per-window arrival counts (index of
/// dispersion). ~1 for Poisson; well above 1 for bursty processes.
double dispersion(const std::vector<std::uint64_t>& times,
                  std::uint64_t window_ns) {
  std::vector<std::size_t> counts(times.back() / window_ns + 1, 0);
  for (std::uint64_t t : times) ++counts[t / window_ns];
  counts.pop_back();  // final window is partial; it would inflate the variance
  double mean = 0.0;
  for (std::size_t c : counts) mean += static_cast<double>(c);
  mean /= static_cast<double>(counts.size());
  double var = 0.0;
  for (std::size_t c : counts) {
    const double d = static_cast<double>(c) - mean;
    var += d * d;
  }
  var /= static_cast<double>(counts.size());
  return mean == 0.0 ? 0.0 : var / mean;
}

TEST(Arrival, SaturationIsAllZero) {
  const auto times = gen_arrival_times(ArrivalKind::kSaturation, 0.0, 1000, 7);
  ASSERT_EQ(times.size(), 1000u);
  for (std::uint64_t t : times) EXPECT_EQ(t, 0u);
}

TEST(Arrival, PoissonDeterministicGivenSeed) {
  const auto a = gen_arrival_times(ArrivalKind::kPoisson, 1e6, 50000, 42);
  const auto b = gen_arrival_times(ArrivalKind::kPoisson, 1e6, 50000, 42);
  EXPECT_EQ(a, b);
  const auto c = gen_arrival_times(ArrivalKind::kPoisson, 1e6, 50000, 43);
  EXPECT_NE(a, c);
}

TEST(Arrival, BurstyDeterministicGivenSeed) {
  const auto a = gen_arrival_times(ArrivalKind::kBursty, 1e6, 50000, 42);
  const auto b = gen_arrival_times(ArrivalKind::kBursty, 1e6, 50000, 42);
  EXPECT_EQ(a, b);
  const auto c = gen_arrival_times(ArrivalKind::kBursty, 1e6, 50000, 1234);
  EXPECT_NE(a, c);
}

TEST(Arrival, TimesAreMonotone) {
  for (ArrivalKind kind : {ArrivalKind::kPoisson, ArrivalKind::kBursty}) {
    const auto times = gen_arrival_times(kind, 5e5, 20000, 9);
    ASSERT_EQ(times.size(), 20000u);
    for (std::size_t i = 1; i < times.size(); ++i)
      ASSERT_GE(times[i], times[i - 1]) << arrival_kind_name(kind);
  }
}

TEST(Arrival, PoissonEmpiricalMeanRate) {
  // 200k exponential gaps: the sample mean is within a couple percent of
  // 1/rate with overwhelming probability (and the seed is fixed anyway).
  const double rate = 2e6;
  const auto times = gen_arrival_times(ArrivalKind::kPoisson, rate, 200000, 3);
  const double emp = empirical_rate(times);
  EXPECT_NEAR(emp / rate, 1.0, 0.02);
}

TEST(Arrival, BurstyEmpiricalMeanRateLoose) {
  // Pareto(1.5) period lengths have infinite variance, so a finite run's
  // realized rate fluctuates much more than Poisson; the long-run design
  // target is `rate` and a fixed-seed run must land in its vicinity.
  const double rate = 2e6;
  const auto times = gen_arrival_times(ArrivalKind::kBursty, rate, 200000, 3);
  const double emp = empirical_rate(times);
  EXPECT_GT(emp / rate, 0.5);
  EXPECT_LT(emp / rate, 2.0);
}

TEST(Arrival, BurstyIsBurstierThanPoisson) {
  const double rate = 1e6;
  const auto poisson =
      gen_arrival_times(ArrivalKind::kPoisson, rate, 200000, 5);
  const auto bursty = gen_arrival_times(ArrivalKind::kBursty, rate, 200000, 5);
  const std::uint64_t window = 1'000'000;  // 1 ms
  const double dp = dispersion(poisson, window);
  const double db = dispersion(bursty, window);
  // Poisson counts have dispersion ~1; the on-off process far above.
  EXPECT_LT(dp, 2.0);
  EXPECT_GT(db, 5.0);
  EXPECT_GT(db, 3.0 * dp);
}

TEST(Arrival, RejectsBadArguments) {
  EXPECT_THROW(gen_arrival_times(ArrivalKind::kPoisson, 0.0, 10, 1),
               TreeError);
  EXPECT_THROW(gen_arrival_times(ArrivalKind::kBursty, -1.0, 10, 1),
               TreeError);
  EXPECT_TRUE(gen_arrival_times(ArrivalKind::kPoisson, 100.0, 0, 1).empty());
}

}  // namespace
}  // namespace san
