// Workload partition layer: ShardMap policies, trace projection onto
// per-shard queues, and the locality statistics.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>
#include <set>

#include "workload/generators.hpp"
#include "workload/partition.hpp"

namespace san {
namespace {

TEST(ShardMap, ContiguousCoversAllNodesEvenly) {
  for (int n : {7, 16, 100, 1001}) {
    for (int S : {1, 2, 3, 8}) {
      if (S > n) continue;
      ShardMap map(n, S, ShardPartition::kContiguous);
      int total = 0, lo = n, hi = 0;
      for (int s = 0; s < S; ++s) {
        total += map.shard_size(s);
        lo = std::min(lo, map.shard_size(s));
        hi = std::max(hi, map.shard_size(s));
      }
      EXPECT_EQ(total, n);
      EXPECT_LE(hi - lo, 1) << "n=" << n << " S=" << S;
      // Contiguity: shard index is monotone in the id.
      for (NodeId id = 2; id <= n; ++id)
        EXPECT_GE(map.shard_of(id), map.shard_of(id - 1));
    }
  }
}

TEST(ShardMap, LocalIdsAreDenseAndOrderPreserving) {
  for (ShardPartition policy :
       {ShardPartition::kContiguous, ShardPartition::kHash}) {
    ShardMap map(200, 8, policy);
    for (int s = 0; s < 8; ++s) {
      NodeId prev_global = 0;
      for (NodeId local = 1; local <= map.shard_size(s); ++local) {
        const NodeId global = map.global_of(s, local);
        EXPECT_GT(global, prev_global);  // ascending global order
        prev_global = global;
        EXPECT_EQ(map.shard_of(global), s);
        EXPECT_EQ(map.local_of(global), local);  // exact inverse
      }
    }
  }
}

TEST(ShardMap, HashCoversAllNodes) {
  const int n = 500, S = 8;
  ShardMap map(n, S, ShardPartition::kHash);
  std::set<NodeId> seen;
  int total = 0;
  for (int s = 0; s < S; ++s) {
    total += map.shard_size(s);
    for (NodeId local = 1; local <= map.shard_size(s); ++local)
      seen.insert(map.global_of(s, local));
  }
  EXPECT_EQ(total, n);
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(n));
  EXPECT_EQ(*seen.begin(), 1);
  EXPECT_EQ(*seen.rbegin(), n);
}

TEST(ShardMap, RejectsInvalidConfigurations) {
  EXPECT_THROW(ShardMap(10, 0), TreeError);
  EXPECT_THROW(ShardMap(10, 11), TreeError);
  EXPECT_THROW(ShardMap(0, 1), TreeError);
  ShardMap map(10, 2);
  EXPECT_THROW(map.shard_of(0), TreeError);
  EXPECT_THROW(map.shard_of(11), TreeError);
}

TEST(ShardMap, SingleShardIsIdentity) {
  ShardMap map(64, 1);
  for (NodeId id = 1; id <= 64; ++id) {
    EXPECT_EQ(map.shard_of(id), 0);
    EXPECT_EQ(map.local_of(id), id);  // S=1 must preserve global ids
  }
}

TEST(ShardMap, MigrateRecompactsLocalIdsOnBothSides) {
  // n=12, S=3 contiguous: shard 0 = {1..4}, 1 = {5..8}, 2 = {9..12}.
  ShardMap map(12, 3, ShardPartition::kContiguous);
  map.migrate(6, 2);
  EXPECT_EQ(map.shard_of(6), 2);
  // Source locals above the extracted rank shift down...
  EXPECT_EQ(map.shard_size(1), 3);
  EXPECT_EQ(map.local_of(5), 1);
  EXPECT_EQ(map.local_of(7), 2);
  EXPECT_EQ(map.local_of(8), 3);
  // ...and the destination inserts at global rank: 6 < 9 <= 12.
  EXPECT_EQ(map.shard_size(2), 5);
  EXPECT_EQ(map.local_of(6), 1);
  EXPECT_EQ(map.local_of(9), 2);
  EXPECT_EQ(map.local_of(12), 5);
  EXPECT_EQ(map.global_of(2, 1), 6);

  // Moving it back restores the original mapping exactly.
  map.migrate(6, 1);
  for (NodeId id = 1; id <= 12; ++id) {
    EXPECT_EQ(map.shard_of(id), (id - 1) / 4);
    EXPECT_EQ(map.local_of(id), ((id - 1) % 4) + 1);
  }

  // No-op and error cases.
  map.migrate(6, 1);
  EXPECT_EQ(map.local_of(6), 2);
  EXPECT_THROW(map.migrate(0, 1), TreeError);
  EXPECT_THROW(map.migrate(13, 1), TreeError);
  EXPECT_THROW(map.migrate(1, 3), TreeError);
  EXPECT_THROW(map.migrate(1, -1), TreeError);
}

TEST(ShardMap, ExplicitAssignmentRoundTrips) {
  std::vector<int> assign(9, 0);
  for (NodeId id = 1; id <= 8; ++id) assign[static_cast<std::size_t>(id)] = id % 3;
  ShardMap map(8, 3, assign);
  EXPECT_EQ(map.policy(), ShardPartition::kExplicit);
  for (NodeId id = 1; id <= 8; ++id) EXPECT_EQ(map.shard_of(id), id % 3);
  // Empty shards are allowed here (unlike the policy constructor).
  std::vector<int> lopsided(9, 0);
  ShardMap empties(8, 3, lopsided);
  EXPECT_EQ(empties.shard_size(0), 8);
  EXPECT_EQ(empties.shard_size(1), 0);
  EXPECT_THROW(ShardMap(8, 3, std::vector<int>(9, 7)), TreeError);
  EXPECT_THROW(ShardMap(8, 3, std::vector<int>(4, 0)), TreeError);
}

TEST(ShardStats, EmptyShardIsDefinedAndExcludedFromImbalance) {
  // Drain shard 1 of a 2-shard map by migration, then profile traffic that
  // necessarily only touches shard 0: the imbalance must stay the finite,
  // meaningful ratio over the shards that still own nodes.
  ShardMap map(8, 2, ShardPartition::kContiguous);
  for (NodeId id = 5; id <= 8; ++id) map.migrate(id, 0);
  Trace t;
  t.n = 8;
  t.requests = {{1, 2}, {2, 3}, {5, 8}};
  ShardLocalityStats st = compute_shard_stats(t, map);
  EXPECT_EQ(st.empty_shards(), 1);
  EXPECT_EQ(st.owned[0], 8);
  EXPECT_EQ(st.owned[1], 0);
  EXPECT_EQ(st.touches[1], 0u);
  // One active shard carrying everything is, by definition, balanced among
  // the active shards — not infinitely imbalanced.
  EXPECT_DOUBLE_EQ(st.load_imbalance(), 1.0);
  EXPECT_DOUBLE_EQ(st.intra_fraction(), 1.0);
}

TEST(PartitionTrace, SpanChunksConcatenateToTheWholeProjection) {
  const Trace t = gen_workload(WorkloadKind::kUniform, 64, 1000, 7);
  ShardMap map(64, 4, ShardPartition::kHash);
  const PartitionedTrace whole = partition_trace(t, map);
  PartitionedTrace glued;
  glued.ops.assign(4, {});
  glued.cross_pairs.assign(16, 0);
  const std::span<const Request> all(t.requests);
  for (std::size_t at = 0; at < all.size(); at += 333) {
    const PartitionedTrace part =
        partition_trace(all.subspan(at, std::min<std::size_t>(333, all.size() - at)), map);
    for (int s = 0; s < 4; ++s)
      glued.ops[static_cast<std::size_t>(s)].insert(
          glued.ops[static_cast<std::size_t>(s)].end(),
          part.ops[static_cast<std::size_t>(s)].begin(),
          part.ops[static_cast<std::size_t>(s)].end());
    for (std::size_t i = 0; i < 16; ++i)
      glued.cross_pairs[i] += part.cross_pairs[i];
    glued.cross_requests += part.cross_requests;
  }
  EXPECT_EQ(glued.ops, whole.ops);
  EXPECT_EQ(glued.cross_pairs, whole.cross_pairs);
  EXPECT_EQ(glued.cross_requests, whole.cross_requests);
}

TEST(PartitionTrace, ProjectsRequestsInArrivalOrder) {
  // Hand-built trace on n=6, S=2 contiguous: shard 0 = {1,2,3} -> local
  // 1..3, shard 1 = {4,5,6} -> local 1..3.
  Trace t;
  t.n = 6;
  t.requests = {{1, 3}, {1, 5}, {4, 6}, {2, 1}, {6, 2}};
  ShardMap map(6, 2, ShardPartition::kContiguous);
  PartitionedTrace pt = partition_trace(t, map);

  ASSERT_EQ(pt.ops.size(), 2u);
  // Shard 0: intra (1,3), ascent of 1 (from cross 1->5), intra (2,1),
  // ascent of 2 (from cross 6->2).
  const std::vector<ShardOp> expect0 = {
      {1, 3}, {1, kNoNode}, {2, 1}, {2, kNoNode}};
  // Shard 1: ascent of local(5)=2, intra (local 1, local 3), ascent of
  // local(6)=3.
  const std::vector<ShardOp> expect1 = {{2, kNoNode}, {1, 3}, {3, kNoNode}};
  EXPECT_EQ(pt.ops[0], expect0);
  EXPECT_EQ(pt.ops[1], expect1);
  EXPECT_EQ(pt.cross_requests, 2u);
  EXPECT_EQ(pt.total_requests, 5u);
  EXPECT_EQ(pt.cross_pairs[0 * 2 + 1], 1u);  // 1 -> 5
  EXPECT_EQ(pt.cross_pairs[1 * 2 + 0], 1u);  // 6 -> 2
  EXPECT_EQ(pt.cross_pairs[0 * 2 + 0], 0u);
}

TEST(PartitionTrace, OpCountsAddUp) {
  Trace t = gen_workload(WorkloadKind::kFacebook, 128, 4000, 99);
  ShardMap map(128, 8, ShardPartition::kHash);
  PartitionedTrace pt = partition_trace(t, map);
  std::size_t ops = 0;
  for (const auto& q : pt.ops) ops += q.size();
  // Every intra request is one op, every cross request two.
  EXPECT_EQ(ops, t.size() + pt.cross_requests);
  std::size_t pairs = std::accumulate(pt.cross_pairs.begin(),
                                      pt.cross_pairs.end(), std::size_t{0});
  EXPECT_EQ(pairs, pt.cross_requests);
}

TEST(ShardStats, LocalityAndImbalance) {
  Trace t;
  t.n = 8;
  // 3 intra requests on shard 0, 1 cross: shard 0 carries nearly all load.
  t.requests = {{1, 2}, {2, 3}, {3, 1}, {1, 8}};
  ShardMap map(8, 2, ShardPartition::kContiguous);
  ShardLocalityStats st = compute_shard_stats(t, map);
  EXPECT_EQ(st.shards, 2);
  EXPECT_EQ(st.intra[0], 3u);
  EXPECT_EQ(st.intra[1], 0u);
  EXPECT_EQ(st.cross_requests, 1u);
  EXPECT_DOUBLE_EQ(st.intra_fraction(), 0.75);
  EXPECT_EQ(st.touches[0], 4u);
  EXPECT_EQ(st.touches[1], 1u);
  EXPECT_DOUBLE_EQ(st.load_imbalance(), 4.0 / 2.5);

  // Empty trace degenerates cleanly.
  Trace empty;
  empty.n = 8;
  ShardLocalityStats est = compute_shard_stats(empty, map);
  EXPECT_EQ(est.intra_fraction(), 0.0);
  EXPECT_EQ(est.load_imbalance(), 1.0);
}

TEST(ShardStats, HashBalancesSkewedRanges) {
  // Traffic concentrated on a contiguous id range: the contiguous policy
  // piles it onto one shard, hashing spreads it.
  Trace t;
  t.n = 256;
  std::mt19937_64 rng(5);
  for (int i = 0; i < 4000; ++i) {
    NodeId u = static_cast<NodeId>(1 + rng() % 32);
    NodeId v = static_cast<NodeId>(1 + rng() % 32);
    if (u == v) v = (v % 32) + 1;
    t.requests.push_back({u, v});
  }
  ShardMap contiguous(256, 8, ShardPartition::kContiguous);
  ShardMap hashed(256, 8, ShardPartition::kHash);
  const double imb_contig =
      compute_shard_stats(t, contiguous).load_imbalance();
  const double imb_hash = compute_shard_stats(t, hashed).load_imbalance();
  EXPECT_GT(imb_contig, 4.0);  // all 32 hot ids live in shard 0
  EXPECT_LT(imb_hash, imb_contig);
}

}  // namespace
}  // namespace san
