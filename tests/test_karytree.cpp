// Unit tests for the KAryTree container: construction, queries, validation.
#include <gtest/gtest.h>

#include "core/karytree.hpp"
#include "core/shape.hpp"

namespace san {
namespace {

// Deliberately broken hand-built tree: node 1 carries keys outside its
// assigned range (keys live in the doubled space, see types.hpp).
KAryTree broken_tree() {
  KAryTree t(3, 4);
  t.install(2, {id_key(2)}, {1, 3}, kKeyMin, kKeyMax);
  // node 1's range is (-inf, 4) but it claims keys {6, 8}.
  t.install(1, {id_key(3), id_key(4)}, {kNoNode, kNoNode, kNoNode}, kKeyMin,
            id_key(2));
  t.install(3, {id_key(3)}, {kNoNode, 4}, id_key(2), kKeyMax);
  t.install(4, {id_key(4)}, {kNoNode, kNoNode}, id_key(3), kKeyMax);
  t.set_root(2);
  return t;
}

TEST(KAryTree, ConstructionRejectsBadArity) {
  EXPECT_THROW(KAryTree(1, 5), TreeError);
  EXPECT_THROW(KAryTree(2, 0), TreeError);
}

TEST(KAryTree, InstallRejectsMalformedNode) {
  KAryTree t(3, 3);
  // children must be keys + 1
  EXPECT_THROW(t.install(1, {id_key(2)}, {kNoNode}, kKeyMin, kKeyMax),
               TreeError);
  // too many keys for arity 3
  EXPECT_THROW(t.install(1, {id_key(1), id_key(2), id_key(3)},
                         {kNoNode, 2, 3, kNoNode}, kKeyMin, kKeyMax),
               TreeError);
}

TEST(KAryTree, ValidateDetectsMissingRoot) {
  KAryTree t(2, 2);
  EXPECT_TRUE(t.validate().has_value());
}

TEST(KAryTree, ValidateDetectsUnreachableNodes) {
  KAryTree t(2, 3);
  t.install(1, {id_key(1)}, {kNoNode, 2}, kKeyMin, kKeyMax);
  t.install(2, {id_key(2)}, {kNoNode, kNoNode}, id_key(1), kKeyMax);
  t.set_root(1);
  auto err = t.validate();
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("reachable"), std::string::npos);
}

TEST(KAryTree, ValidateDetectsRangeViolation) {
  KAryTree t(2, 3);
  // node 3 placed in the interval below id_key(1): violates its range.
  t.install(1, {id_key(1)}, {3, 2}, kKeyMin, kKeyMax);
  t.install(3, {id_key(3)}, {kNoNode, kNoNode}, kKeyMin, id_key(1));
  t.install(2, {id_key(2)}, {kNoNode, kNoNode}, id_key(1), kKeyMax);
  t.set_root(1);
  auto err = t.validate();
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("range"), std::string::npos);
}

TEST(KAryTree, ValidPathTree) {
  KAryTree t = build_from_shape(2, make_path_shape(6));
  EXPECT_FALSE(t.validate().has_value()) << *t.validate();
  // A path shape with self_pos = 1 stacks n..1 downward.
  EXPECT_EQ(t.depth(t.root()), 0);
  int max_depth = 0;
  for (NodeId id = 1; id <= 6; ++id)
    max_depth = std::max(max_depth, t.depth(id));
  EXPECT_EQ(max_depth, 5);
}

TEST(KAryTree, DistanceAndLcaOnCompleteTree) {
  KAryTree t = build_from_shape(2, make_complete_shape(7, 2));
  ASSERT_TRUE(t.valid());
  for (NodeId u = 1; u <= 7; ++u) {
    EXPECT_EQ(t.distance(u, u), 0);
    EXPECT_EQ(t.lca(u, u), u);
  }
  // Symmetry and triangle equality along tree paths.
  for (NodeId u = 1; u <= 7; ++u)
    for (NodeId v = 1; v <= 7; ++v) {
      EXPECT_EQ(t.distance(u, v), t.distance(v, u));
      NodeId w = t.lca(u, v);
      EXPECT_EQ(t.distance(u, v), t.distance(u, w) + t.distance(w, v));
      EXPECT_TRUE(t.is_ancestor(w, u));
      EXPECT_TRUE(t.is_ancestor(w, v));
    }
}

TEST(KAryTree, RouteEndpointsAndLength) {
  KAryTree t = build_from_shape(3, make_complete_shape(13, 3));
  ASSERT_TRUE(t.valid());
  for (NodeId u = 1; u <= 13; u += 3)
    for (NodeId v = 1; v <= 13; v += 2) {
      auto path = t.route(u, v);
      ASSERT_FALSE(path.empty());
      EXPECT_EQ(path.front(), u);
      EXPECT_EQ(path.back(), v);
      EXPECT_EQ(static_cast<int>(path.size()) - 1, t.distance(u, v));
    }
}

TEST(KAryTree, SearchFromRootFindsEveryNode) {
  KAryTree t = build_from_shape(4, make_complete_shape(29, 4));
  ASSERT_TRUE(t.valid());
  for (NodeId id = 1; id <= 29; ++id) {
    auto path = t.search_from_root(id);
    EXPECT_EQ(path.back(), id);
    EXPECT_EQ(static_cast<int>(path.size()) - 1, t.depth(id));
  }
}

TEST(KAryTree, UniformTotalDistanceMatchesPairwiseSum) {
  KAryTree t = build_from_shape(3, make_complete_shape(10, 3));
  Cost direct = 0;
  for (NodeId u = 1; u <= 10; ++u)
    for (NodeId v = u + 1; v <= 10; ++v) direct += t.distance(u, v);
  EXPECT_EQ(t.uniform_total_distance(), direct);
}

TEST(KAryTree, BrokenHandBuiltTreeIsInvalid) {
  // Keys outside the node's open range must be caught.
  KAryTree t = broken_tree();
  EXPECT_TRUE(t.validate().has_value());
}

}  // namespace
}  // namespace san
