// Parallel sweep runner: positional results, determinism vs the serial
// path, error propagation, and the virtual escape hatch at the factory
// boundary.
#include <gtest/gtest.h>

#include <memory>

#include "sim/sweep.hpp"
#include "static_trees/full_tree.hpp"
#include "workload/generators.hpp"

namespace san {
namespace {

TEST(Sweep, MatchesSerialExecution) {
  Trace trace = gen_temporal(60, 5000, 0.5, 4);
  std::vector<SweepCase> cases;
  for (int k = 2; k <= 6; ++k) {
    cases.push_back({[k, &trace]() -> AnyNetwork {
                       return KArySplayNetwork(
                           KArySplayNet::balanced(k, trace.n));
                     },
                     &trace});
  }
  auto parallel = run_sweep(cases, 4);
  auto serial = run_sweep(cases, 1);
  ASSERT_EQ(parallel.size(), 5u);
  for (size_t i = 0; i < parallel.size(); ++i) {
    EXPECT_EQ(parallel[i].routing_cost, serial[i].routing_cost) << i;
    EXPECT_EQ(parallel[i].rotation_count, serial[i].rotation_count) << i;
  }
  // Results are positional: higher k costs less on this trace family.
  EXPECT_GT(parallel.front().total_cost(), parallel.back().total_cost());
}

TEST(Sweep, MixedTopologies) {
  Trace trace = gen_uniform(50, 2000, 9);
  std::vector<SweepCase> cases = {
      {[&trace]() -> AnyNetwork {
         return StaticTreeNetwork(full_kary_tree(3, trace.n), "full");
       },
       &trace},
      {[&trace]() -> AnyNetwork { return BinarySplayNetwork(trace.n); },
       &trace},
      {[&trace]() -> AnyNetwork {
         return CentroidSplayNetwork(CentroidSplayNet(2, trace.n));
       },
       &trace},
      {[&trace]() -> AnyNetwork {
         return ShardedNetwork::balanced(2, trace.n, 4);
       },
       &trace},
  };
  auto results = run_sweep(cases);
  EXPECT_EQ(results[0].rotation_count, 0);  // static never rotates
  EXPECT_GT(results[1].rotation_count, 0);
  EXPECT_GT(results[2].rotation_count, 0);
  EXPECT_GT(results[3].rotation_count, 0);
  EXPECT_GT(results[3].cross_shard, 0);  // uniform traffic crosses shards
  for (int i = 0; i < 3; ++i) EXPECT_EQ(results[i].cross_shard, 0) << i;
}

// The variant's unique_ptr<Network> alternative: a topology the closed set
// does not know still sweeps through the thin virtual adapter.
TEST(Sweep, VirtualEscapeHatch) {
  class ConstantNetwork final : public Network {
   public:
    ServeResult serve(NodeId, NodeId) override {
      ServeResult r;
      r.routing_cost = 7;
      return r;
    }
    int size() const override { return 10; }
    std::string name() const override { return "constant"; }
  };
  Trace trace = gen_uniform(10, 100, 1);
  std::vector<SweepCase> cases = {
      {[]() -> AnyNetwork { return std::make_unique<ConstantNetwork>(); },
       &trace}};
  auto results = run_sweep(cases, 1);
  EXPECT_EQ(results[0].routing_cost, 700);
  EXPECT_EQ(results[0].rotation_count, 0);
  EXPECT_THROW(
      AnyNetwork(std::unique_ptr<Network>()),  // null adapter rejected
      TreeError);
}

TEST(Sweep, RejectsIncompleteCases) {
  Trace trace = gen_uniform(10, 10, 1);
  std::vector<SweepCase> cases(1);
  cases[0].trace = &trace;  // no factory
  EXPECT_THROW(run_sweep(cases), TreeError);
  cases[0].make_network = [&trace]() -> AnyNetwork {
    return BinarySplayNetwork(trace.n);
  };
  cases[0].trace = nullptr;
  EXPECT_THROW(run_sweep(cases), TreeError);
}

TEST(Sweep, PropagatesWorkerExceptions) {
  Trace trace = gen_uniform(10, 10, 1);
  std::vector<SweepCase> cases = {
      {[]() -> AnyNetwork { throw TreeError("factory exploded"); }, &trace}};
  EXPECT_THROW(run_sweep(cases, 2), TreeError);
}

TEST(Sweep, EmptySweep) {
  EXPECT_TRUE(run_sweep({}).empty());
}

// Regression guard for the persistent-executor rewrite: a sweep over a
// fixed-seed trace must produce bit-identical SimResults whether it runs
// serially (threads=1) or on the full pool (threads=0). Each case owns
// its result slot and its own network instance, so scheduling order must
// not leak into any counted field.
TEST(Sweep, DeterministicAcrossThreadCounts) {
  Trace trace = gen_temporal(48, 8000, 0.75, 11);
  std::vector<SweepCase> cases;
  for (int k = 2; k <= 9; ++k) {
    cases.push_back({[k, &trace]() -> AnyNetwork {
                       return KArySplayNetwork(
                           KArySplayNet::balanced(k, trace.n));
                     },
                     &trace});
  }
  const auto serial = run_sweep(cases, 1);
  const auto pooled = run_sweep(cases, 0);
  ASSERT_EQ(serial.size(), pooled.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].routing_cost, pooled[i].routing_cost) << i;
    EXPECT_EQ(serial[i].rotation_count, pooled[i].rotation_count) << i;
    EXPECT_EQ(serial[i].edge_changes, pooled[i].edge_changes) << i;
    EXPECT_EQ(serial[i].requests, pooled[i].requests) << i;
  }
}

}  // namespace
}  // namespace san
