// Golden-cost regression lock: total_cost (routing + rotations) and
// edge_changes of every Network type over every WorkloadKind at small n/m,
// frozen into a checked-in table. The values were generated from the seed
// implementation (per-node std::vector storage, recomputed depths) BEFORE
// the flat structure-of-arrays rewrite, so a passing run proves the storage
// layout change preserved serve() semantics bit for bit.
//
// Regenerate (after an intentional semantic change only!) with
//   SAN_PRINT_GOLDENS=1 ./build/test_golden_costs
// and paste the printed rows over kGoldens.
//
// Determinism caveat: workload generators draw from <random> distributions,
// whose mappings are implementation-defined. libstdc++ (GCC and Clang on
// Linux, what CI runs) is stable across versions; a libc++/MSVC port would
// need its own golden column.
#include <cstdlib>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "static_trees/centroid_tree.hpp"
#include "static_trees/full_tree.hpp"
#include "static_trees/optimal_dp.hpp"
#include "workload/demand_matrix.hpp"
#include "workload/generators.hpp"

namespace san {
namespace {

constexpr int kN = 32;
constexpr std::size_t kM = 500;
constexpr std::uint64_t kSeed = 0xC0FFEE;

const std::vector<WorkloadKind> kKinds = {
    WorkloadKind::kUniform,     WorkloadKind::kTemporal025,
    WorkloadKind::kTemporal05,  WorkloadKind::kTemporal075,
    WorkloadKind::kTemporal09,  WorkloadKind::kHpc,
    WorkloadKind::kProjector,   WorkloadKind::kFacebook,
    // Drifting families (PR 4): rows generated at their introduction, so
    // unlike the rows above they lock current — not seed — behaviour.
    WorkloadKind::kPhaseElephants, WorkloadKind::kRotatingHot,
    // Adversarial families (PR 8, deterministic): same caveat.
    WorkloadKind::kSequentialScan, WorkloadKind::kBitReversal,
};

struct NetworkSpec {
  const char* name;
  AnyNetwork (*make)(const Trace& trace);
};

const NetworkSpec kNetworks[] = {
    {"splay-k2",
     [](const Trace&) -> AnyNetwork {
       return KArySplayNetwork(KArySplayNet::balanced(2, kN));
     }},
    {"splay-k3",
     [](const Trace&) -> AnyNetwork {
       return KArySplayNetwork(KArySplayNet::balanced(3, kN));
     }},
    {"splay-k5",
     [](const Trace&) -> AnyNetwork {
       return KArySplayNetwork(KArySplayNet::balanced(5, kN));
     }},
    {"semi-splay-k3",
     [](const Trace&) -> AnyNetwork {
       return KArySplayNetwork(KArySplayNet::balanced(
           3, kN, RotationPolicy{}, SplayMode::kSemiSplayOnly));
     }},
    {"centroid-k3",
     [](const Trace&) -> AnyNetwork {
       return CentroidSplayNetwork(CentroidSplayNet(3, kN));
     }},
    {"binary",
     [](const Trace&) -> AnyNetwork {
       return BinarySplayNetwork(kN);
     }},
    {"static-full-k3",
     [](const Trace&) -> AnyNetwork {
       return StaticTreeNetwork(full_kary_tree(3, kN), "full-k3");
     }},
    {"static-centroid-k3",
     [](const Trace&) -> AnyNetwork {
       return StaticTreeNetwork(centroid_kary_tree(3, kN), "centroid-k3");
     }},
    {"static-optimal-k3",
     [](const Trace& trace) -> AnyNetwork {
       return StaticTreeNetwork(
           optimal_routing_based_tree(3, DemandMatrix::from_trace(trace), 1)
               .tree,
           "optimal-k3");
     }},
};

struct Golden {
  const char* workload;
  const char* network;
  Cost total_cost;
  Cost edge_changes;
};

// Generated from the seed implementation; see file comment. Exception: the
// "binary" edge_changes column was regenerated after BinarySplayNet's
// adjustment accounting moved to the k-ary engine's snapshot-diff
// convention (net link changes per splay step instead of per-rotation
// formulas that double-counted zig-zig/zig-zag intermediates) — an
// intentional semantic fix required for the k=2 differential test. All
// other values are bit-identical to the seed.
const Golden kGoldens[] = {
    {"Uniform", "splay-k2", 4647, 12876},
    {"Uniform", "splay-k3", 3906, 12804},
    {"Uniform", "splay-k5", 3620, 12024},
    {"Uniform", "semi-splay-k3", 4951, 14916},
    {"Uniform", "centroid-k3", 3331, 6536},
    {"Uniform", "binary", 4659, 12926},
    {"Uniform", "static-full-k3", 2007, 0},
    {"Uniform", "static-centroid-k3", 1969, 0},
    {"Uniform", "static-optimal-k3", 1823, 0},
    {"Temporal 0.25", "splay-k2", 3625, 9810},
    {"Temporal 0.25", "splay-k3", 3179, 9820},
    {"Temporal 0.25", "splay-k5", 2860, 9058},
    {"Temporal 0.25", "semi-splay-k3", 3839, 11524},
    {"Temporal 0.25", "centroid-k3", 2755, 4982},
    {"Temporal 0.25", "binary", 3663, 9894},
    {"Temporal 0.25", "static-full-k3", 2000, 0},
    {"Temporal 0.25", "static-centroid-k3", 1973, 0},
    {"Temporal 0.25", "static-optimal-k3", 1831, 0},
    {"Temporal 0.5", "splay-k2", 2780, 7086},
    {"Temporal 0.5", "splay-k3", 2428, 7168},
    {"Temporal 0.5", "splay-k5", 2208, 6722},
    {"Temporal 0.5", "semi-splay-k3", 2893, 8204},
    {"Temporal 0.5", "centroid-k3", 2283, 3526},
    {"Temporal 0.5", "binary", 2799, 7120},
    {"Temporal 0.5", "static-full-k3", 2018, 0},
    {"Temporal 0.5", "static-centroid-k3", 2042, 0},
    {"Temporal 0.5", "static-optimal-k3", 1808, 0},
    {"Temporal 0.75", "splay-k2", 1523, 3192},
    {"Temporal 0.75", "splay-k3", 1407, 3384},
    {"Temporal 0.75", "splay-k5", 1301, 2940},
    {"Temporal 0.75", "semi-splay-k3", 1629, 3920},
    {"Temporal 0.75", "centroid-k3", 1634, 1622},
    {"Temporal 0.75", "binary", 1540, 3214},
    {"Temporal 0.75", "static-full-k3", 1912, 0},
    {"Temporal 0.75", "static-centroid-k3", 1981, 0},
    {"Temporal 0.75", "static-optimal-k3", 1520, 0},
    {"Temporal 0.9", "splay-k2", 925, 1306},
    {"Temporal 0.9", "splay-k3", 840, 1254},
    {"Temporal 0.9", "splay-k5", 815, 1158},
    {"Temporal 0.9", "semi-splay-k3", 974, 1560},
    {"Temporal 0.9", "centroid-k3", 1387, 736},
    {"Temporal 0.9", "binary", 922, 1296},
    {"Temporal 0.9", "static-full-k3", 2164, 0},
    {"Temporal 0.9", "static-centroid-k3", 2008, 0},
    {"Temporal 0.9", "static-optimal-k3", 1465, 0},
    {"HPC", "splay-k2", 1732, 4370},
    {"HPC", "splay-k3", 1627, 4396},
    {"HPC", "splay-k5", 1533, 4184},
    {"HPC", "semi-splay-k3", 1957, 5404},
    {"HPC", "centroid-k3", 1524, 2578},
    {"HPC", "binary", 1712, 4332},
    {"HPC", "static-full-k3", 1364, 0},
    {"HPC", "static-centroid-k3", 1395, 0},
    {"HPC", "static-optimal-k3", 1034, 0},
    {"ProjecToR", "splay-k2", 1544, 3458},
    {"ProjecToR", "splay-k3", 1493, 3750},
    {"ProjecToR", "splay-k5", 1422, 3436},
    {"ProjecToR", "semi-splay-k3", 1796, 4416},
    {"ProjecToR", "centroid-k3", 1675, 2132},
    {"ProjecToR", "binary", 1524, 3370},
    {"ProjecToR", "static-full-k3", 1737, 0},
    {"ProjecToR", "static-centroid-k3", 1840, 0},
    {"ProjecToR", "static-optimal-k3", 724, 0},
    {"Facebook", "splay-k2", 3163, 8874},
    {"Facebook", "splay-k3", 2675, 8648},
    {"Facebook", "splay-k5", 2491, 8332},
    {"Facebook", "semi-splay-k3", 3296, 10110},
    {"Facebook", "centroid-k3", 2471, 3562},
    {"Facebook", "binary", 3158, 8896},
    {"Facebook", "static-full-k3", 1824, 0},
    {"Facebook", "static-centroid-k3", 2323, 0},
    {"Facebook", "static-optimal-k3", 1095, 0},
    {"PhaseElephants", "splay-k2", 2178, 5420},
    {"PhaseElephants", "splay-k3", 2001, 5770},
    {"PhaseElephants", "splay-k5", 1956, 5644},
    {"PhaseElephants", "semi-splay-k3", 2477, 6774},
    {"PhaseElephants", "centroid-k3", 2099, 3294},
    {"PhaseElephants", "binary", 2192, 5444},
    {"PhaseElephants", "static-full-k3", 1979, 0},
    {"PhaseElephants", "static-centroid-k3", 1920, 0},
    {"PhaseElephants", "static-optimal-k3", 1380, 0},
    {"RotatingHot", "splay-k2", 1465, 3496},
    {"RotatingHot", "splay-k3", 1341, 3822},
    {"RotatingHot", "splay-k5", 1265, 3686},
    {"RotatingHot", "semi-splay-k3", 1511, 4108},
    {"RotatingHot", "centroid-k3", 1421, 1216},
    {"RotatingHot", "binary", 1452, 3446},
    {"RotatingHot", "static-full-k3", 1850, 0},
    {"RotatingHot", "static-centroid-k3", 2097, 0},
    {"RotatingHot", "static-optimal-k3", 1208, 0},
    {"SequentialScan", "splay-k2", 820, 794},
    {"SequentialScan", "splay-k3", 1750, 3900},
    {"SequentialScan", "splay-k5", 1777, 3868},
    {"SequentialScan", "semi-splay-k3", 1945, 4352},
    {"SequentialScan", "centroid-k3", 1710, 3148},
    {"SequentialScan", "binary", 786, 706},
    {"SequentialScan", "static-full-k3", 918, 0},
    {"SequentialScan", "static-centroid-k3", 920, 0},
    {"SequentialScan", "static-optimal-k3", 500, 0},
    {"BitReversal", "splay-k2", 4981, 13424},
    {"BitReversal", "splay-k3", 3889, 12166},
    {"BitReversal", "splay-k5", 3553, 11686},
    {"BitReversal", "semi-splay-k3", 4657, 13982},
    {"BitReversal", "centroid-k3", 3091, 5538},
    {"BitReversal", "binary", 4949, 13376},
    {"BitReversal", "static-full-k3", 2378, 0},
    {"BitReversal", "static-centroid-k3", 2217, 0},
    {"BitReversal", "static-optimal-k3", 1926, 0},
};

bool print_mode() {
  const char* env = std::getenv("SAN_PRINT_GOLDENS");
  return env != nullptr && env[0] == '1';
}

// Theorem 2 DP values at n = 512 — unreachable in test time before the
// flat cache-blocked engine (PR 5); the reference implementation alone
// would make this the slowest test in the wall. Locks the big-instance
// cost path (packed-triangular indexing at sizes where size_t arithmetic
// matters) the same way kGoldens locks the serve path. Regenerate with
// SAN_PRINT_GOLDENS=1 after an intentional semantic change only.
struct DpGolden {
  WorkloadKind kind;
  int k;
  Cost cost;
};

constexpr int kDpN = 512;
constexpr std::size_t kDpM = 20000;

const DpGolden kDpGoldens[] = {
    {WorkloadKind::kTemporal05, 2, 228374},
    {WorkloadKind::kTemporal05, 5, 127041},
    {WorkloadKind::kHpc, 3, 85557},
    {WorkloadKind::kFacebook, 10, 45384},
};

TEST(GoldenCosts, OptimalDpCostAtN512) {
  for (const DpGolden& g : kDpGoldens) {
    const Trace trace = gen_workload(g.kind, kDpN, kDpM, kSeed);
    ASSERT_EQ(trace.n, kDpN);
    const DemandMatrix d = DemandMatrix::from_trace(trace);
    const Cost got = optimal_routing_based_cost(g.k, d, 1);
    if (print_mode()) {
      std::printf("    // %s k=%d -> %lld\n", workload_name(g.kind), g.k,
                  static_cast<long long>(got));
      continue;
    }
    EXPECT_EQ(got, g.cost) << workload_name(g.kind) << " k=" << g.k;
  }
  if (print_mode()) GTEST_SKIP() << "printed n=512 DP golden rows";
}

TEST(GoldenCosts, EveryNetworkOnEveryWorkload) {
  std::vector<Golden> measured;
  for (WorkloadKind kind : kKinds) {
    const Trace trace = gen_workload(kind, kN, kM, kSeed);
    ASSERT_EQ(trace.n, kN);
    for (const NetworkSpec& spec : kNetworks) {
      AnyNetwork net = spec.make(trace);
      const SimResult res = run_trace(net, trace);
      measured.push_back(
          {workload_name(kind), spec.name, res.total_cost(), res.edge_changes});
    }
  }

  if (print_mode()) {
    for (const Golden& g : measured)
      std::printf("    {\"%s\", \"%s\", %lld, %lld},\n", g.workload, g.network,
                  static_cast<long long>(g.total_cost),
                  static_cast<long long>(g.edge_changes));
    GTEST_SKIP() << "printed " << measured.size() << " golden rows";
  }

  ASSERT_EQ(measured.size(), std::size(kGoldens))
      << "network/workload grid changed; regenerate kGoldens";
  for (std::size_t i = 0; i < measured.size(); ++i) {
    EXPECT_STREQ(measured[i].workload, kGoldens[i].workload) << "row " << i;
    EXPECT_STREQ(measured[i].network, kGoldens[i].network) << "row " << i;
    EXPECT_EQ(measured[i].total_cost, kGoldens[i].total_cost)
        << measured[i].workload << " / " << measured[i].network;
    EXPECT_EQ(measured[i].edge_changes, kGoldens[i].edge_changes)
        << measured[i].workload << " / " << measured[i].network;
  }
}

}  // namespace
}  // namespace san
