// Ground-truth cross-check of the general O(n^3 k) DP (Theorem 2): an
// independent exhaustive enumerator walks EVERY k-ary search tree over ids
// 1..n (every shape with <= k children per node and a feasible id
// position, laid out in order) and evaluates TotalDistance directly on the
// built tree. For small n the DP must hit the exhaustive minimum exactly —
// this validates the recurrence, the W-matrix, and the reconstruction in
// one pass, with no shared code path between the two answers.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <random>
#include <utility>

#include "core/shape.hpp"
#include "static_trees/optimal_dp.hpp"
#include "workload/demand_matrix.hpp"

namespace san {
namespace {

// Enumerates all valid shapes on `n` nodes for arity `k`, invoking `visit`
// for each. Children partition the n-1 non-root nodes into ordered
// non-empty groups; the root id position ranges over the feasible self
// positions (interior only when the fan-out is exactly k).
void enumerate_shapes(int n, int k, const std::function<void(Shape&)>& visit) {
  if (n == 1) {
    Shape leaf;
    visit(leaf);
    return;
  }
  // compositions of n-1 into c parts, c <= k
  std::vector<int> parts;
  std::function<void(int)> rec = [&](int remaining) {
    if (remaining == 0) {
      const int c = static_cast<int>(parts.size());
      // Recursively enumerate each part's shapes via an index cursor.
      std::vector<std::vector<Shape>> options(parts.size());
      for (size_t i = 0; i < parts.size(); ++i)
        enumerate_shapes(parts[i], k,
                         [&](Shape& s) { options[i].push_back(s); });
      std::vector<size_t> pick(parts.size(), 0);
      while (true) {
        Shape node;
        for (size_t i = 0; i < parts.size(); ++i)
          node.kids.push_back(options[i][pick[i]]);
        const int pos_lo = (c == k) ? 1 : 0;
        const int pos_hi = (c == k) ? c - 1 : c;
        for (int pos = pos_lo; pos <= pos_hi; ++pos) {
          node.self_pos = pos;
          node.recompute_sizes();
          visit(node);
        }
        // advance mixed-radix counter
        size_t i = 0;
        while (i < pick.size() && ++pick[i] == options[i].size()) {
          pick[i] = 0;
          ++i;
        }
        if (i == pick.size()) break;
      }
      return;
    }
    if (static_cast<int>(parts.size()) == k) return;
    for (int take = 1; take <= remaining; ++take) {
      parts.push_back(take);
      rec(remaining - take);
      parts.pop_back();
    }
  };
  rec(n - 1);
}

Cost exhaustive_minimum(int k, const DemandMatrix& d, long* trees_seen) {
  Cost best = kInfiniteCost;
  enumerate_shapes(d.n(), k, [&](Shape& s) {
    KAryTree t = build_from_shape(k, s);
    best = std::min(best, d.total_distance(t));
    ++*trees_seen;
  });
  return best;
}

class DpExhaustiveTest : public ::testing::TestWithParam<std::tuple<int, int>> {
};

TEST_P(DpExhaustiveTest, DpEqualsExhaustiveMinimum) {
  const auto [k, n] = GetParam();
  std::mt19937_64 rng(static_cast<uint64_t>(k) * 1000 + n);
  for (int trial = 0; trial < 3; ++trial) {
    DemandMatrix d(n);
    for (int t = 0; t < 4 * n; ++t) {
      NodeId u = 1 + static_cast<NodeId>(rng() % n);
      NodeId v = 1 + static_cast<NodeId>(rng() % n);
      if (u != v) d.add(u, v, 1 + static_cast<Cost>(rng() % 7));
    }
    long trees = 0;
    const Cost brute = exhaustive_minimum(k, d, &trees);
    const OptimalTreeResult dp = optimal_routing_based_tree(k, d, 1);
    EXPECT_EQ(dp.total_distance, brute)
        << "k=" << k << " n=" << n << " trial=" << trial << " (searched "
        << trees << " trees)";
    ASSERT_GT(trees, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SmallInstances, DpExhaustiveTest,
    ::testing::Values(std::tuple{2, 3}, std::tuple{2, 5}, std::tuple{2, 7},
                      std::tuple{3, 4}, std::tuple{3, 6}, std::tuple{4, 5},
                      std::tuple{4, 6}, std::tuple{5, 6}),
    [](const auto& info) {
      return "k" + std::to_string(std::get<0>(info.param)) + "_n" +
             std::to_string(std::get<1>(info.param));
    });

TEST(DpExhaustive, UniformDemandSmall) {
  // Same cross-check on the uniform matrix, where Theorem 4's shape DP is
  // a third independent answer.
  for (int k : {2, 3}) {
    for (int n : {4, 6}) {
      DemandMatrix d = DemandMatrix::uniform(n);
      long trees = 0;
      const Cost brute = exhaustive_minimum(k, d, &trees);
      EXPECT_EQ(optimal_routing_based_tree(k, d, 1).total_distance, brute);
    }
  }
}

// ---------------------------------------------------------------------------
// Differential wall: the flat cache-blocked engine against the pre-rewrite
// reference oracle (optimal_dp_reference.cpp, also reachable at runtime via
// SAN_DP_REFERENCE=1). The engine re-derives reconstruction argmins with the
// reference's exact scan order, so the comparison is stronger than the cost:
// parent array and child slots must match node for node.

DemandMatrix random_demand(int n, std::mt19937_64& rng) {
  DemandMatrix d(n);
  const int pairs = 1 + static_cast<int>(rng() % (3 * n));
  for (int t = 0; t < pairs; ++t) {
    NodeId u = 1 + static_cast<NodeId>(rng() % n);
    NodeId v = 1 + static_cast<NodeId>(rng() % n);
    if (u != v) d.add(u, v, 1 + static_cast<Cost>(rng() % 97));
  }
  return d;
}

TEST(DpDifferential, FlatEngineMatchesReferenceOracle) {
  int seeds = 0;
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    for (int k : {2, 3, 5, 10}) {
      std::mt19937_64 rng(seed * 7919 + static_cast<std::uint64_t>(k));
      const int n = 2 + static_cast<int>(rng() % 47);  // 2..48
      const DemandMatrix d = random_demand(n, rng);
      const OptimalTreeResult fast = optimal_routing_based_tree(k, d, 1);
      const OptimalTreeResult ref =
          optimal_routing_based_tree_reference(k, d, 1);
      ASSERT_EQ(fast.total_distance, ref.total_distance)
          << "seed=" << seed << " k=" << k << " n=" << n;
      EXPECT_EQ(optimal_routing_based_cost(k, d, 1), ref.total_distance);
      ASSERT_TRUE(fast.tree.valid()) << "seed=" << seed << " k=" << k;
      EXPECT_EQ(d.total_distance(fast.tree), fast.total_distance)
          << "seed=" << seed << " k=" << k << " n=" << n;
      for (NodeId u = 1; u <= n; ++u) {
        ASSERT_EQ(fast.tree.parent(u), ref.tree.parent(u))
            << "seed=" << seed << " k=" << k << " n=" << n << " node=" << u;
        if (fast.tree.parent(u) != kNoNode)
          ASSERT_EQ(fast.tree.slot_in_parent(u), ref.tree.slot_in_parent(u))
              << "seed=" << seed << " k=" << k << " n=" << n << " node=" << u;
      }
      ++seeds;
    }
  }
  EXPECT_GE(seeds, 200);
}

TEST(DpDifferential, ThreadedEngineMatchesReference) {
  // The wavefront dispatch must not change any cost cell: pure min
  // computations are order-independent, but this is the test that keeps
  // it that way.
  for (std::uint64_t seed : {3u, 17u}) {
    for (int k : {2, 5}) {
      std::mt19937_64 rng(seed);
      const DemandMatrix d = random_demand(40, rng);
      const OptimalTreeResult ref =
          optimal_routing_based_tree_reference(k, d, 1);
      EXPECT_EQ(optimal_routing_based_tree(k, d, 4).total_distance,
                ref.total_distance);
      EXPECT_EQ(optimal_routing_based_cost(k, d, 4), ref.total_distance);
    }
  }
}

// ---------------------------------------------------------------------------
// Why the engine has no Knuth/quadrangle-inequality pruning. The classic
// window root(i, j-1) <= root(i, j) <= root(i+1, j) is only valid when the
// per-segment weight satisfies the quadrangle inequality and interval
// monotonicity. W here is the demand CROSSING the segment boundary, which
// is submodular — the REVERSE inequality (a pair spanning two crossing
// segments is counted by both but by neither their union nor their
// intersection) — and non-monotone (W[1, n] = 0). Demand between distant
// endpoints pushes optimal roots outward to the segment edges, so windows
// bracketed by subproblem roots exclude true optima. This test locks a
// four-node counterexample where a full windowed DP (windows taken from
// its own subproblem roots, exactly as a Knuth implementation would) is
// strictly worse: 68 vs the true 47.
TEST(DpPruning, KnuthWindowUnsoundForCrossingDemand) {
  const int n = 4;
  DemandMatrix d(n);
  d.add(1, 4, 21);
  d.add(2, 4, 26);
  // Optimum (cost 47 = 21*2 + 5): e.g. root 4 with child 2, grandchildren
  // 1 and 3 — distance(1,4) = 2, distance(2,4) = 1. Both engines and the
  // cost-only entry agree.
  EXPECT_EQ(optimal_routing_based_tree(2, d, 1).total_distance, 47);
  EXPECT_EQ(optimal_routing_based_tree_reference(2, d, 1).total_distance, 47);
  EXPECT_EQ(optimal_routing_based_cost(2, d, 1), 47);

  // Windowed binary DP replica (k = 2 collapses the general recurrence to
  // c(i,j) = W(i,j) + min_r c(i,r-1) + c(r+1,j)).
  Cost c[n + 2][n + 2] = {};
  int root[n + 2][n + 2] = {};
  auto cc = [&](int i, int j) { return i > j ? Cost{0} : c[i][j]; };
  for (int len = 1; len <= n; ++len) {
    for (int i = 1; i + len - 1 <= n; ++i) {
      const int j = i + len - 1;
      int lo = i, hi = j;
      if (len >= 2) {
        lo = std::max(i, root[i][j - 1]);
        hi = std::min(j, root[i + 1][j]);
        if (hi < lo) std::swap(lo, hi);
      }
      Cost best = kInfiniteCost;
      int best_r = -1;
      for (int r = lo; r <= hi; ++r) {
        const Cost cand = d.boundary(i, j) + cc(i, r - 1) + cc(r + 1, j);
        if (cand < best) {
          best = cand;
          best_r = r;
        }
      }
      c[i][j] = best;
      root[i][j] = best_r;
    }
  }
  EXPECT_EQ(c[1][n], 68);  // strictly worse than the true optimum
  EXPECT_GT(c[1][n], Cost{47});
}

}  // namespace
}  // namespace san
