// Ground-truth cross-check of the general O(n^3 k) DP (Theorem 2): an
// independent exhaustive enumerator walks EVERY k-ary search tree over ids
// 1..n (every shape with <= k children per node and a feasible id
// position, laid out in order) and evaluates TotalDistance directly on the
// built tree. For small n the DP must hit the exhaustive minimum exactly —
// this validates the recurrence, the W-matrix, and the reconstruction in
// one pass, with no shared code path between the two answers.
#include <gtest/gtest.h>

#include <functional>
#include <random>

#include "core/shape.hpp"
#include "static_trees/optimal_dp.hpp"
#include "workload/demand_matrix.hpp"

namespace san {
namespace {

// Enumerates all valid shapes on `n` nodes for arity `k`, invoking `visit`
// for each. Children partition the n-1 non-root nodes into ordered
// non-empty groups; the root id position ranges over the feasible self
// positions (interior only when the fan-out is exactly k).
void enumerate_shapes(int n, int k, const std::function<void(Shape&)>& visit) {
  if (n == 1) {
    Shape leaf;
    visit(leaf);
    return;
  }
  // compositions of n-1 into c parts, c <= k
  std::vector<int> parts;
  std::function<void(int)> rec = [&](int remaining) {
    if (remaining == 0) {
      const int c = static_cast<int>(parts.size());
      // Recursively enumerate each part's shapes via an index cursor.
      std::vector<std::vector<Shape>> options(parts.size());
      for (size_t i = 0; i < parts.size(); ++i)
        enumerate_shapes(parts[i], k,
                         [&](Shape& s) { options[i].push_back(s); });
      std::vector<size_t> pick(parts.size(), 0);
      while (true) {
        Shape node;
        for (size_t i = 0; i < parts.size(); ++i)
          node.kids.push_back(options[i][pick[i]]);
        const int pos_lo = (c == k) ? 1 : 0;
        const int pos_hi = (c == k) ? c - 1 : c;
        for (int pos = pos_lo; pos <= pos_hi; ++pos) {
          node.self_pos = pos;
          node.recompute_sizes();
          visit(node);
        }
        // advance mixed-radix counter
        size_t i = 0;
        while (i < pick.size() && ++pick[i] == options[i].size()) {
          pick[i] = 0;
          ++i;
        }
        if (i == pick.size()) break;
      }
      return;
    }
    if (static_cast<int>(parts.size()) == k) return;
    for (int take = 1; take <= remaining; ++take) {
      parts.push_back(take);
      rec(remaining - take);
      parts.pop_back();
    }
  };
  rec(n - 1);
}

Cost exhaustive_minimum(int k, const DemandMatrix& d, long* trees_seen) {
  Cost best = kInfiniteCost;
  enumerate_shapes(d.n(), k, [&](Shape& s) {
    KAryTree t = build_from_shape(k, s);
    best = std::min(best, d.total_distance(t));
    ++*trees_seen;
  });
  return best;
}

class DpExhaustiveTest : public ::testing::TestWithParam<std::tuple<int, int>> {
};

TEST_P(DpExhaustiveTest, DpEqualsExhaustiveMinimum) {
  const auto [k, n] = GetParam();
  std::mt19937_64 rng(static_cast<uint64_t>(k) * 1000 + n);
  for (int trial = 0; trial < 3; ++trial) {
    DemandMatrix d(n);
    for (int t = 0; t < 4 * n; ++t) {
      NodeId u = 1 + static_cast<NodeId>(rng() % n);
      NodeId v = 1 + static_cast<NodeId>(rng() % n);
      if (u != v) d.add(u, v, 1 + static_cast<Cost>(rng() % 7));
    }
    long trees = 0;
    const Cost brute = exhaustive_minimum(k, d, &trees);
    const OptimalTreeResult dp = optimal_routing_based_tree(k, d, 1);
    EXPECT_EQ(dp.total_distance, brute)
        << "k=" << k << " n=" << n << " trial=" << trial << " (searched "
        << trees << " trees)";
    ASSERT_GT(trees, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SmallInstances, DpExhaustiveTest,
    ::testing::Values(std::tuple{2, 3}, std::tuple{2, 5}, std::tuple{2, 7},
                      std::tuple{3, 4}, std::tuple{3, 6}, std::tuple{4, 5},
                      std::tuple{4, 6}, std::tuple{5, 6}),
    [](const auto& info) {
      return "k" + std::to_string(std::get<0>(info.param)) + "_n" +
             std::to_string(std::get<1>(info.param));
    });

TEST(DpExhaustive, UniformDemandSmall) {
  // Same cross-check on the uniform matrix, where Theorem 4's shape DP is
  // a third independent answer.
  for (int k : {2, 3}) {
    for (int n : {4, 6}) {
      DemandMatrix d = DemandMatrix::uniform(n);
      long trees = 0;
      const Cost brute = exhaustive_minimum(k, d, &trees);
      EXPECT_EQ(optimal_routing_based_tree(k, d, 1).total_distance, brute);
    }
  }
}

}  // namespace
}  // namespace san
