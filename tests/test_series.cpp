// CostSeries percentile / bucket statistics.
#include <gtest/gtest.h>

#include "stats/series.hpp"

namespace san {
namespace {

TEST(CostSeries, MeanAndMax) {
  CostSeries s;
  for (Cost v : {1, 2, 3, 4}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_EQ(s.max(), 4);
  EXPECT_EQ(s.count(), 4u);
}

TEST(CostSeries, Percentiles) {
  CostSeries s;
  for (Cost v = 1; v <= 100; ++v) s.add(101 - v);  // unsorted insert
  EXPECT_EQ(s.percentile(0.0), 1);
  EXPECT_EQ(s.percentile(0.5), 50);
  EXPECT_EQ(s.percentile(0.99), 99);
  EXPECT_EQ(s.percentile(1.0), 100);
}

TEST(CostSeries, PercentileAfterLaterAdds) {
  CostSeries s;
  s.add(10);
  EXPECT_EQ(s.percentile(0.5), 10);
  s.add(20);  // must invalidate the sorted cache
  EXPECT_EQ(s.percentile(1.0), 20);
}

TEST(CostSeries, EmptySeries) {
  CostSeries s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.max(), 0);
  EXPECT_THROW(s.percentile(0.5), TreeError);
  EXPECT_TRUE(s.bucket_means(4).empty());
}

TEST(CostSeries, BucketMeansShowTrend) {
  CostSeries s;
  for (int i = 0; i < 100; ++i) s.add(i < 50 ? 10 : 2);
  auto buckets = s.bucket_means(2);
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_DOUBLE_EQ(buckets[0], 10.0);
  EXPECT_DOUBLE_EQ(buckets[1], 2.0);
}

TEST(CostSeries, BucketCountLargerThanSeries) {
  CostSeries s;
  s.add(5);
  s.add(7);
  auto buckets = s.bucket_means(10);
  ASSERT_EQ(buckets.size(), 2u);
}

}  // namespace
}  // namespace san
