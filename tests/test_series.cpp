// CostSeries percentile / bucket statistics.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "stats/series.hpp"

namespace san {
namespace {

TEST(CostSeries, MeanAndMax) {
  CostSeries s;
  for (Cost v : {1, 2, 3, 4}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_EQ(s.max(), 4);
  EXPECT_EQ(s.count(), 4u);
}

TEST(CostSeries, Percentiles) {
  CostSeries s;
  for (Cost v = 1; v <= 100; ++v) s.add(101 - v);  // unsorted insert
  EXPECT_EQ(s.percentile(0.0), 1);
  EXPECT_EQ(s.percentile(0.5), 50);
  EXPECT_EQ(s.percentile(0.99), 99);
  EXPECT_EQ(s.percentile(1.0), 100);
}

TEST(CostSeries, PercentileAfterLaterAdds) {
  CostSeries s;
  s.add(10);
  EXPECT_EQ(s.percentile(0.5), 10);
  s.add(20);  // must invalidate the sorted cache
  EXPECT_EQ(s.percentile(1.0), 20);
}

TEST(CostSeries, EmptySeries) {
  CostSeries s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.max(), 0);
  EXPECT_THROW(s.percentile(0.5), TreeError);
  EXPECT_TRUE(s.bucket_means(4).empty());
}

TEST(CostSeries, BucketMeansShowTrend) {
  CostSeries s;
  for (int i = 0; i < 100; ++i) s.add(i < 50 ? 10 : 2);
  auto buckets = s.bucket_means(2);
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_DOUBLE_EQ(buckets[0], 10.0);
  EXPECT_DOUBLE_EQ(buckets[1], 2.0);
}

TEST(CostSeries, BucketCountLargerThanSeries) {
  CostSeries s;
  s.add(5);
  s.add(7);
  auto buckets = s.bucket_means(10);
  ASSERT_EQ(buckets.size(), 2u);
}

// Regression: ceil-division sizing used to emit fewer buckets than
// requested (5 values / 4 buckets -> 3 slices). The partition must return
// exactly min(buckets, count()) slices of near-equal size covering every
// value, for every uneven count/bucket combination.
TEST(CostSeries, BucketMeansExactCountOnUnevenSizes) {
  for (int count : {1, 2, 3, 5, 7, 10, 11, 100, 101}) {
    CostSeries s;
    double total = 0.0;
    for (int i = 0; i < count; ++i) {
      s.add(i);
      total += i;
    }
    for (int buckets : {1, 2, 3, 4, 5, 8, 13}) {
      const auto means = s.bucket_means(buckets);
      const std::size_t expect =
          std::min<std::size_t>(buckets, static_cast<std::size_t>(count));
      ASSERT_EQ(means.size(), expect)
          << count << " values / " << buckets << " buckets";
      // Slices tile the series: size-weighted means sum back to the total.
      double sum = 0.0;
      for (std::size_t b = 0; b < means.size(); ++b) {
        const std::size_t begin = b * s.count() / means.size();
        const std::size_t end = (b + 1) * s.count() / means.size();
        ASSERT_GE(end - begin, s.count() / means.size());
        ASSERT_LE(end - begin, s.count() / means.size() + 1);
        sum += means[b] * static_cast<double>(end - begin);
      }
      EXPECT_NEAR(sum, total, 1e-6);
    }
  }
}

TEST(CostSeries, BucketMeansFiveOverFour) {
  CostSeries s;
  for (Cost v : {10, 20, 30, 40, 50}) s.add(v);
  const auto means = s.bucket_means(4);
  ASSERT_EQ(means.size(), 4u);  // was 3 with ceil-division sizing
  // Partition is {10}, {20}, {30}, {40, 50}.
  EXPECT_DOUBLE_EQ(means[0], 10.0);
  EXPECT_DOUBLE_EQ(means[1], 20.0);
  EXPECT_DOUBLE_EQ(means[2], 30.0);
  EXPECT_DOUBLE_EQ(means[3], 45.0);
}

// The sorted percentile cache is built lazily inside a const method; many
// threads reading the same const series concurrently (exactly what
// per-shard frontend reporting does) must not race on its construction.
// Run under TSan by the CI thread-sanitizer job.
TEST(CostSeries, ConcurrentConstReaders) {
  CostSeries s;
  for (Cost v = 1000; v >= 1; --v) s.add(v);
  const CostSeries& cs = s;
  std::vector<std::thread> readers;
  std::atomic<int> failures{0};
  for (int t = 0; t < 8; ++t)
    readers.emplace_back([&cs, &failures] {
      for (int i = 0; i < 50; ++i) {
        if (cs.percentile(0.5) != 500) ++failures;
        if (cs.percentile(0.99) != 990) ++failures;
        if (cs.percentile(1.0) != 1000) ++failures;
        if (cs.max() != 1000) ++failures;
        if (cs.bucket_means(4).size() != 4u) ++failures;
      }
    });
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace san
