// The streaming data plane's equivalence wall: every streamed path (the
// on-demand workload generators, the v2 binary readers on both backends,
// the chunked replay loops, the open-loop frontend engine) must reproduce
// its materialized counterpart bit for bit — the whole point of the
// O(chunk) pipeline is that scaling m changes memory, never results.
// Plus corrupt-input injection for the v2 parser (header byte flips,
// truncation, trailing bytes), which the ASan tier-1 job covers.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <vector>

#include "io/trace_io.hpp"
#include "io/trace_v2.hpp"
#include "sim/serve_frontend.hpp"
#include "sim/sharded_network.hpp"
#include "sim/simulator.hpp"
#include "workload/arrival.hpp"
#include "workload/generators.hpp"
#include "workload/rebalance.hpp"
#include "workload/streaming.hpp"

namespace san {
namespace {

const WorkloadKind kAllKinds[] = {
    WorkloadKind::kUniform,     WorkloadKind::kTemporal025,
    WorkloadKind::kTemporal05,  WorkloadKind::kTemporal075,
    WorkloadKind::kTemporal09,  WorkloadKind::kHpc,
    WorkloadKind::kProjector,   WorkloadKind::kFacebook,
    WorkloadKind::kPhaseElephants, WorkloadKind::kRotatingHot,
};

TEST(StreamWorkload, EveryFamilyMatchesTheMaterializedGeneratorBitForBit) {
  for (WorkloadKind kind : kAllKinds) {
    const Trace batch = gen_workload(kind, 64, 2000, 42);
    StreamingWorkload stream(kind, 64, 2000, 42);
    EXPECT_EQ(stream.n(), static_cast<std::size_t>(batch.n));
    EXPECT_EQ(stream.size(), batch.size());
    const Trace pulled = materialize_stream(stream);
    EXPECT_EQ(pulled.requests, batch.requests) << workload_name(kind);
    // Drained: further fills return nothing.
    Request r;
    EXPECT_EQ(stream.fill({&r, 1}), 0u) << workload_name(kind);
  }
}

TEST(StreamWorkload, ShortFillsDoNotChangeTheSequence) {
  // Pulling in awkward chunk sizes (1, 3, 7, ...) must yield the same
  // request sequence as one big pull: fill() boundaries carry no state.
  const Trace batch = gen_workload(WorkloadKind::kPhaseElephants, 32, 500, 9);
  StreamingWorkload stream(WorkloadKind::kPhaseElephants, 32, 500, 9);
  std::vector<Request> pulled;
  std::vector<Request> buf(7);
  std::size_t step = 1;
  while (true) {
    const std::size_t want = 1 + (step++ % buf.size());
    const std::size_t got = stream.fill({buf.data(), want});
    if (got == 0) break;
    pulled.insert(pulled.end(), buf.begin(),
                  buf.begin() + static_cast<std::ptrdiff_t>(got));
  }
  EXPECT_EQ(pulled, batch.requests);
}

TEST(StreamWorkload, DefaultNodeCountMatchesThePaperDefault) {
  StreamingWorkload stream(WorkloadKind::kHpc, 0, 10, 1);
  EXPECT_EQ(stream.n(),
            static_cast<std::size_t>(paper_node_count(WorkloadKind::kHpc)));
}

TEST(StreamTraceV2, RoundTripsThroughMemory) {
  const Trace t = gen_workload(WorkloadKind::kFacebook, 100, 1500, 5);
  std::stringstream buf;
  write_trace_v2(buf, t);
  EXPECT_EQ(buf.str().size(), kTraceV2HeaderBytes +
                                  t.size() * kTraceV2RecordBytes +
                                  kTraceV2FooterBytes);
  TraceV2Reader reader(buf);
  EXPECT_EQ(reader.n(), static_cast<std::size_t>(t.n));
  EXPECT_EQ(reader.size(), t.size());
  const Trace back = materialize_stream(reader);
  EXPECT_EQ(back.n, t.n);
  EXPECT_EQ(back.requests, t.requests);
}

TEST(StreamTraceV2, FileBackendsAgreeWithEachOtherAndTheSource) {
  const Trace t = gen_workload(WorkloadKind::kRotatingHot, 80, 3000, 8);
  const std::string path = ::testing::TempDir() + "/roundtrip.v2";
  write_trace_v2_file(path, t);

  for (const auto backend :
       {TraceV2Reader::Backend::kIstream, TraceV2Reader::Backend::kMmap}) {
    TraceV2Reader reader(path, backend);
    const Trace back = materialize_stream(reader);
    EXPECT_EQ(back.n, t.n);
    EXPECT_EQ(back.requests, t.requests);
  }
  EXPECT_EQ(read_trace_v2_file(path).requests, t.requests);
}

TEST(StreamTraceV2, V1TextAndV2BinaryCarryTheSameTrace) {
  // The conversion satellite: v1 text -> Trace -> v2 binary -> Trace must
  // be lossless, and the incremental writer must agree with the batch one.
  const Trace t = gen_workload(WorkloadKind::kTemporal075, 50, 800, 3);
  std::stringstream v1;
  write_trace(v1, t);
  const Trace from_v1 = read_trace(v1);

  std::stringstream v2a, v2b;
  write_trace_v2(v2a, from_v1);
  TraceV2Writer w(v2b, from_v1.n, from_v1.size());
  for (const Request& r : from_v1.requests) w.append(r);
  w.finish();
  EXPECT_EQ(v2a.str(), v2b.str());

  TraceV2Reader reader(v2a);
  EXPECT_EQ(materialize_stream(reader).requests, t.requests);
}

TEST(StreamTraceV2, WriterRejectsBadRecordsAndCounts) {
  std::stringstream out;
  TraceV2Writer w(out, 10, 2);
  w.append({1, 2});
  EXPECT_THROW(w.append({0, 2}), TreeError);   // id out of range
  EXPECT_THROW(w.append({1, 11}), TreeError);  // id out of range
  EXPECT_THROW(w.append({3, 3}), TreeError);   // self-loop
  EXPECT_THROW(w.finish(), TreeError);         // only 1 of 2 written
  w.append({4, 5});
  EXPECT_NO_THROW(w.finish());
  EXPECT_THROW(w.append({1, 2}), TreeError);  // past m
}

TEST(StreamTraceV2, CorruptHeadersAndBodiesAreRejected) {
  const Trace t = gen_workload(WorkloadKind::kUniform, 20, 50, 2);
  std::stringstream buf;
  write_trace_v2(buf, t);
  const std::string good = buf.str();

  auto reject_bytes = [](std::string bytes, const char* what) {
    std::stringstream in(std::move(bytes));
    try {
      TraceV2Reader reader(in);
      materialize_stream(reader);
      FAIL() << "expected TreeError: " << what;
    } catch (const TreeError&) {
    }
  };

  // Header bytes flipped one at a time: every flip lands in a validation —
  // bad magic / n out of range / unknown flag bits / m vs body mismatch /
  // record checks — or, since the CRC32 footer covers the header, in the
  // end-of-stream checksum verification. No silent garbage, including the
  // n bytes a borrowed istream used to have no oracle for.
  for (std::size_t i = 0; i < kTraceV2HeaderBytes; ++i) {
    std::string bad = good;
    bad[i] = static_cast<char>(bad[i] ^ 0x80);
    reject_bytes(bad, "header byte flip");
  }
  // Truncations: mid-header, into the footer, and footer gone entirely.
  reject_bytes(good.substr(0, kTraceV2HeaderBytes - 1), "header truncated");
  reject_bytes(good.substr(0, good.size() - 3), "footer truncated");
  reject_bytes(good.substr(0, good.size() - kTraceV2FooterBytes),
               "footer missing");
  reject_bytes(
      good.substr(0, good.size() - kTraceV2FooterBytes - kTraceV2RecordBytes),
      "one record short");
  // Trailing bytes are only detectable with a size oracle: the file-backed
  // readers reject them (see FileBackendsRejectCorruptFiles); a borrowed
  // istream stops after the promised m records and the footer.
  // Record-level corruption: a self-loop smuggled into the body.
  {
    std::string bad = good;
    const std::size_t rec = kTraceV2HeaderBytes;
    for (std::size_t i = 0; i < 8; ++i) bad[rec + i] = (i == 0 || i == 4);
    reject_bytes(bad, "self-loop record");
  }
  // A record bit flip that keeps both ids in range is invisible to the
  // per-record validation; the checksum footer is what rejects it.
  {
    std::string bad = good;
    bad[kTraceV2HeaderBytes] = static_cast<char>(bad[kTraceV2HeaderBytes] ^ 2);
    reject_bytes(bad, "in-range record bit flip");
  }
  // Footer corruption: flipped magic and flipped CRC are both rejected.
  for (const std::size_t off : {good.size() - 8, good.size() - 1}) {
    std::string bad = good;
    bad[off] = static_cast<char>(bad[off] ^ 0x10);
    reject_bytes(bad, "footer byte flip");
  }
}

TEST(StreamTraceV2, LegacyFlagFreeFilesStillReplay) {
  // Files written before the checksum footer (flags == 0, no trailer)
  // must keep replaying: strip the footer and clear the flag bit.
  const Trace t = gen_workload(WorkloadKind::kUniform, 20, 50, 2);
  std::stringstream buf;
  write_trace_v2(buf, t);
  std::string legacy = buf.str().substr(0, buf.str().size() -
                                               kTraceV2FooterBytes);
  legacy[12] = 0;  // flags byte: drop kTraceV2FlagChecksum
  {
    std::stringstream in(legacy);
    TraceV2Reader reader(in);
    EXPECT_EQ(materialize_stream(reader).requests, t.requests);
  }
  // Without a checksum, enlarging n keeps every record in range, which a
  // borrowed istream (no size oracle) accepts by design — the documented
  // integrity gap the footer exists to close.
  {
    std::string enlarged = legacy;
    enlarged[8] = static_cast<char>(enlarged[8] ^ 0x80);  // n = 20 -> 148
    std::stringstream in(enlarged);
    TraceV2Reader reader(in);
    EXPECT_EQ(reader.n(), 148);
    EXPECT_EQ(materialize_stream(reader).requests, t.requests);
  }
  // The file backends still apply their size oracle to legacy files.
  const std::string path = ::testing::TempDir() + "/legacy.v2";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(legacy.data(), static_cast<std::streamsize>(legacy.size()));
  }
  for (const auto backend :
       {TraceV2Reader::Backend::kIstream, TraceV2Reader::Backend::kMmap}) {
    TraceV2Reader reader(path, backend);
    EXPECT_EQ(materialize_stream(reader).requests, t.requests);
  }
}

TEST(StreamTraceV2, FileBackendsRejectCorruptFiles) {
  const Trace t = gen_workload(WorkloadKind::kUniform, 20, 50, 2);
  std::stringstream buf;
  write_trace_v2(buf, t);
  const std::string good = buf.str();
  const std::string path = ::testing::TempDir() + "/corrupt.v2";

  auto write_file = [&](const std::string& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  };
  for (const auto backend :
       {TraceV2Reader::Backend::kIstream, TraceV2Reader::Backend::kMmap}) {
    write_file(good.substr(0, good.size() - 3));
    EXPECT_THROW(TraceV2Reader(path, backend), TreeError);
    write_file(good + "zzz");
    EXPECT_THROW(TraceV2Reader(path, backend), TreeError);
    write_file(good.substr(0, 4));
    EXPECT_THROW(TraceV2Reader(path, backend), TreeError);
    EXPECT_THROW(TraceV2Reader(path + ".missing", backend), TreeError);
  }
}

TEST(StreamReplay, ChunkedUnshardedReplayMatchesMaterialized) {
  // m > kStreamChunkRequests so the loop takes multiple chunks.
  const Trace t =
      gen_workload(WorkloadKind::kTemporal05, 128, 3 * 8192 + 77, 6);
  KArySplayNet a = KArySplayNet::balanced(3, t.n);
  KArySplayNet b = KArySplayNet::balanced(3, t.n);
  const SimResult batch = run_trace(a, t);
  StreamingWorkload stream(WorkloadKind::kTemporal05, 128, 3 * 8192 + 77, 6);
  const SimResult streamed = run_trace_stream(b, stream);
  EXPECT_EQ(streamed.routing_cost, batch.routing_cost);
  EXPECT_EQ(streamed.rotation_count, batch.rotation_count);
  EXPECT_EQ(streamed.edge_changes, batch.edge_changes);
  EXPECT_EQ(streamed.requests, batch.requests);
}

TEST(StreamReplay, ShardedStaticPipelineMatchesMaterialized) {
  const Trace t = gen_workload(WorkloadKind::kFacebook, 256, 20000, 4);
  ShardedNetwork a = ShardedNetwork::balanced(3, t.n, 4);
  ShardedNetwork b = ShardedNetwork::balanced(3, t.n, 4);
  const SimResult batch = run_trace_sharded(a, t, {.sequential = true});
  StreamingWorkload stream(WorkloadKind::kFacebook, 256, 20000, 4);
  const SimResult streamed =
      run_trace_sharded_stream(b, stream, {.sequential = true});
  EXPECT_EQ(streamed.routing_cost, batch.routing_cost);
  EXPECT_EQ(streamed.rotation_count, batch.rotation_count);
  EXPECT_EQ(streamed.cross_shard, batch.cross_shard);
  EXPECT_DOUBLE_EQ(streamed.post_intra_fraction, batch.post_intra_fraction);
}

TEST(StreamReplay, ShardedAdaptivePipelineMatchesMaterialized) {
  // Epoch barriers must land on identical request indices whether the
  // trace arrives whole or pulled chunk by chunk; every planned batch and
  // migration follows.
  const Trace t = gen_workload(WorkloadKind::kPhaseElephants, 200, 25000, 12);
  ShardedNetwork a = ShardedNetwork::balanced(3, t.n, 4);
  ShardedNetwork b = ShardedNetwork::balanced(3, t.n, 4);
  RebalanceConfig cfg;
  cfg.policy = RebalancePolicy::kHotPair;
  cfg.epoch_requests = 2500;
  const SimResult batch =
      run_trace_sharded(a, t, {.sequential = true, .rebalance = &cfg});
  StreamingWorkload stream(WorkloadKind::kPhaseElephants, 200, 25000, 12);
  const SimResult streamed = run_trace_sharded_stream(
      b, stream, {.sequential = true, .rebalance = &cfg});
  EXPECT_EQ(streamed.routing_cost, batch.routing_cost);
  EXPECT_EQ(streamed.rotation_count, batch.rotation_count);
  EXPECT_EQ(streamed.migrations, batch.migrations);
  EXPECT_EQ(streamed.migration_cost, batch.migration_cost);
  EXPECT_EQ(streamed.rebalance_epochs, batch.rebalance_epochs);
  EXPECT_EQ(streamed.grand_total_cost(), batch.grand_total_cost());
}

TEST(StreamArrivals, ScheduleIsPrefixStableAndMatchesTheMaterializer) {
  for (const ArrivalKind kind :
       {ArrivalKind::kSaturation, ArrivalKind::kPoisson,
        ArrivalKind::kBursty}) {
    const auto batch = gen_arrival_times(kind, 5e5, 4000, 77);
    StreamingArrivalSchedule schedule(kind, 5e5, 77);
    for (std::size_t i = 0; i < batch.size(); ++i)
      ASSERT_EQ(schedule.next(), batch[i])
          << arrival_kind_name(kind) << " @" << i;
    // Prefix stability: a shorter materialization is a prefix of a longer
    // one, so stream consumers can size m after the fact.
    const auto shorter = gen_arrival_times(kind, 5e5, 1000, 77);
    for (std::size_t i = 0; i < shorter.size(); ++i)
      ASSERT_EQ(shorter[i], batch[i]);
  }
  EXPECT_THROW(StreamingArrivalSchedule(ArrivalKind::kPoisson, 0.0, 1),
               TreeError);
}

TEST(StreamFrontend, RunStreamMatchesRunAtSingleShardSaturation) {
  // The S = 1 saturation lock from test_frontend.cpp, through the stream
  // entry point: FIFO admission preserves order, so costs bit-match the
  // closed-loop replay whichever entry point fed the engine.
  const Trace t = gen_workload(WorkloadKind::kProjector, 60, 5000, 15);
  ShardedNetwork a = ShardedNetwork::balanced(3, t.n, 1);
  ShardedNetwork b = ShardedNetwork::balanced(3, t.n, 1);
  const std::vector<std::uint64_t> arrivals(t.size(), 0);

  ServeFrontend fa(a);
  const FrontendResult batch = fa.run(t, arrivals);

  TraceStream stream(t);
  StreamingArrivalSchedule schedule(ArrivalKind::kSaturation, 0.0, 1);
  ServeFrontend fb(b);
  const FrontendResult streamed = fb.run_stream(stream, schedule);

  EXPECT_EQ(streamed.sim.routing_cost, batch.sim.routing_cost);
  EXPECT_EQ(streamed.sim.rotation_count, batch.sim.rotation_count);
  EXPECT_EQ(streamed.sim.requests, batch.sim.requests);
  EXPECT_EQ(streamed.sim.cross_shard, batch.sim.cross_shard);
  EXPECT_TRUE(streamed.sim.latency.measured);
}

}  // namespace
}  // namespace san
