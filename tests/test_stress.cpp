// Stress and failure-injection suite: long mixed operation sequences over
// every network type with periodic audits, and rotations on *unsaturated*
// adopted topologies (nodes below k-1 routing keys), which exercise the
// block-size clamping paths the saturated fast path never hits.
#include <gtest/gtest.h>

#include <random>

#include "core/binary_splaynet.hpp"
#include "core/local_router.hpp"
#include "core/rotation.hpp"
#include "core/shape.hpp"
#include "core/splaynet.hpp"
#include "workload/generators.hpp"

namespace san {
namespace {

// Builds a *sparse* (unsaturated) valid search tree: every node gets only
// the boundaries its children require, no id key, no pads — the minimal
// representation a third-party system might hand to KArySplayNet.
NodeId install_sparse(KAryTree& tree, const Shape& shape, NodeId first,
                      RoutingKey lo, RoutingKey hi) {
  const int c = static_cast<int>(shape.kids.size());
  NodeId cursor = first;
  std::vector<NodeId> kid_first(c);
  NodeId my_id = kNoNode;
  for (int i = 0; i <= c; ++i) {
    if (i == shape.self_pos) my_id = cursor++;
    if (i < c) {
      kid_first[i] = cursor;
      cursor += shape.kids[i].size;
    }
  }
  std::vector<RoutingKey> keys;
  std::vector<RoutingKey> bounds = {lo};
  for (int i = 1; i < c; ++i) {
    keys.push_back(separator_before(kid_first[i]));
    bounds.push_back(keys.back());
  }
  bounds.push_back(hi);
  std::vector<NodeId> children;
  if (c == 0) {
    children = {kNoNode};
  } else {
    for (int i = 0; i < c; ++i)
      children.push_back(install_sparse(tree, shape.kids[i], kid_first[i],
                                        bounds[i], bounds[i + 1]));
  }
  tree.install(my_id, std::move(keys), std::move(children), lo, hi);
  return my_id;
}

KAryTree build_sparse(int k, Shape shape) {
  shape.recompute_sizes();
  KAryTree tree(k, shape.size);
  tree.set_root(install_sparse(tree, shape, 1, kKeyMin, kKeyMax));
  return tree;
}

TEST(Stress, RotationsOnUnsaturatedTreesStayValid) {
  std::mt19937_64 rng(2024);
  for (int k : {2, 3, 5, 9}) {
    for (int trial = 0; trial < 8; ++trial) {
      const int n = 20 + static_cast<int>(rng() % 60);
      // Sparse trees cannot place the id between children (no id key), so
      // keep fan-out below k where needed by generating shapes for k-1...
      Shape s = make_random_shape(n, std::max(2, k - 1), rng);
      KAryTree t = build_sparse(k, std::move(s));
      ASSERT_TRUE(t.valid());
      for (int step = 0; step < 300; ++step) {
        NodeId x = 1 + static_cast<NodeId>(rng() % n);
        const NodeId p = t.node(x).parent;
        if (p == kNoNode) continue;
        if (t.node(p).parent != kNoNode && (rng() & 1))
          k_splay(t, x);
        else
          k_semi_splay(t, x);
        if (step % 60 == 0) {
          auto err = t.validate();
          ASSERT_FALSE(err.has_value())
              << "k=" << k << " trial=" << trial << ": " << *err;
        }
      }
      ASSERT_TRUE(t.valid());
    }
  }
}

TEST(Stress, SplayNetAdoptsSparseTopology) {
  std::mt19937_64 rng(7);
  Shape s = make_random_shape(100, 3, rng);
  KArySplayNet net(build_sparse(4, std::move(s)));
  for (int step = 0; step < 2000; ++step) {
    NodeId u = 1 + static_cast<NodeId>(rng() % 100);
    NodeId v = 1 + static_cast<NodeId>(rng() % 100);
    if (u != v) net.serve(u, v);
  }
  EXPECT_TRUE(net.tree().valid());
}

TEST(Stress, MixedOperationsLongRun) {
  const int n = 300;
  std::mt19937_64 rng(1);
  KArySplayNet kary = KArySplayNet::balanced(5, n);
  CentroidSplayNet cent(5, n);
  BinarySplayNet bin(n);
  for (int step = 0; step < 20000; ++step) {
    NodeId u = 1 + static_cast<NodeId>(rng() % n);
    NodeId v = 1 + static_cast<NodeId>(rng() % n);
    if (u == v) continue;
    switch (rng() % 4) {
      case 0:
        kary.access(u);
        break;
      case 1:
        kary.serve(u, v);
        break;
      case 2:
        cent.serve(u, v);
        break;
      default:
        bin.serve(u, v);
        break;
    }
    if (step % 2500 == 0) {
      ASSERT_TRUE(kary.tree().valid()) << step;
      ASSERT_TRUE(cent.tree().valid()) << step;
      ASSERT_TRUE(bin.valid()) << step;
    }
  }
  ASSERT_TRUE(kary.tree().valid());
  ASSERT_TRUE(cent.tree().valid());
  ASSERT_TRUE(bin.valid());
}

TEST(Stress, LocalRoutingSurvivesAdversarialChurn) {
  // Route packets while the topology is reconfigured between every hop
  // measurement; forwarding must always deliver.
  const int n = 80;
  KArySplayNet net = KArySplayNet::balanced(3, n);
  std::mt19937_64 rng(5);
  for (int round = 0; round < 200; ++round) {
    NodeId a = 1 + static_cast<NodeId>(rng() % n);
    NodeId b = 1 + static_cast<NodeId>(rng() % n);
    if (a != b) net.serve(a, b);
    NodeId src = 1 + static_cast<NodeId>(rng() % n);
    NodeId dst = 1 + static_cast<NodeId>(rng() % n);
    auto hops = local_route(net.tree(), src, dst);
    ASSERT_EQ(hops.back().at, dst);
  }
}

TEST(Stress, RepeatedEndToEndPairsSaturateToUnitCost) {
  // Degenerate demand: one pair served 10^4 times must cost amortized ~1.
  KArySplayNet net = KArySplayNet::balanced(6, 400);
  Cost total = 0;
  const int reps = 10000;
  for (int i = 0; i < reps; ++i) total += net.serve(17, 377).routing_cost;
  EXPECT_LT(static_cast<double>(total) / reps, 1.01);
}

TEST(Stress, AllPairsSweepKeepsTreeHealthy) {
  const int n = 64;
  KArySplayNet net = KArySplayNet::balanced(4, n);
  for (NodeId u = 1; u <= n; ++u)
    for (NodeId v = 1; v <= n; ++v)
      if (u != v) net.serve(u, v);
  auto err = net.tree().validate();
  ASSERT_FALSE(err.has_value()) << *err;
  // The ordered all-pairs sweep is a sequential-access adversary for splay
  // structures; the tree may grow loose but must not approach a chain
  // (average depth ~ n/2).
  double depth = 0;
  for (NodeId id = 1; id <= n; ++id) depth += net.tree().depth(id);
  EXPECT_LT(depth / n, n / 2.0 - 4.0);
}

}  // namespace
}  // namespace san
