// Local greedy routing: on freshly constructed trees every node's id key is
// a boundary at the node itself, so hop-by-hop forwarding follows the exact
// shortest tree path; after rotations id keys may drift and the bounce rule
// recovers, still delivering with bounded overhead.
#include <gtest/gtest.h>

#include <random>

#include "core/local_router.hpp"
#include "core/rotation.hpp"
#include "core/shape.hpp"
#include "core/splaynet.hpp"

namespace san {
namespace {

class LocalRouterTest : public ::testing::TestWithParam<int> {};

TEST_P(LocalRouterTest, MatchesDistanceOnFreshTrees) {
  const int k = GetParam();
  for (int n : {5, 33, 128}) {
    KAryTree t = build_from_shape(k, make_complete_shape(n, k));
    for (NodeId u = 1; u <= n; u += 3)
      for (NodeId v = 1; v <= n; v += 5) {
        const int len = local_route_length(t, u, v);
        EXPECT_EQ(len, t.distance(u, v)) << "k=" << k << " " << u << "->" << v;
      }
  }
}

TEST_P(LocalRouterTest, MatchesDistanceOnRandomFreshTrees) {
  const int k = GetParam();
  std::mt19937_64 rng(777 + k);
  for (int trial = 0; trial < 10; ++trial) {
    const int n = 10 + static_cast<int>(rng() % 60);
    Shape s = make_random_shape(n, k, rng);
    s.recompute_sizes();
    KAryTree t = build_from_shape(k, s);
    for (NodeId u = 1; u <= n; ++u)
      for (NodeId v = 1; v <= n; v += 3)
        EXPECT_EQ(local_route_length(t, u, v), t.distance(u, v));
  }
}

TEST_P(LocalRouterTest, DeliversAfterRotationStorm) {
  const int k = GetParam();
  const int n = 100;
  KArySplayNet net = KArySplayNet::balanced(k, n);
  std::mt19937_64 rng(k);
  for (int step = 0; step < 300; ++step) {
    NodeId u = 1 + static_cast<NodeId>(rng() % n);
    NodeId v = 1 + static_cast<NodeId>(rng() % n);
    if (u != v) net.serve(u, v);
  }
  const KAryTree& t = net.tree();
  for (NodeId u = 1; u <= n; u += 2)
    for (NodeId v = 1; v <= n; v += 3) {
      auto hops = local_route(t, u, v);
      ASSERT_FALSE(hops.empty());
      EXPECT_EQ(hops.back().kind, HopKind::kDeliverLocal);
      EXPECT_EQ(hops.back().at, v);
      const int len = static_cast<int>(hops.size()) - 1;
      EXPECT_GE(len, t.distance(u, v));
      EXPECT_LE(len, 4 * t.size());
    }
}

INSTANTIATE_TEST_SUITE_P(Arity, LocalRouterTest, ::testing::Values(2, 3, 5, 8),
                         [](const auto& info) {
                           return "k" + std::to_string(info.param);
                         });

TEST(LocalRouter, SelfDelivery) {
  KAryTree t = build_from_shape(3, make_complete_shape(10, 3));
  auto hops = local_route(t, 4, 4);
  EXPECT_EQ(hops.size(), 1u);
  EXPECT_EQ(hops.front().kind, HopKind::kDeliverLocal);
  EXPECT_EQ(local_route_length(t, 4, 4), 0);
}

TEST(LocalRouter, HopKindsFollowUpDownPattern) {
  // On a fresh tree the hop sequence is parents first, then children: the
  // reverse-search / search route of Section 2.
  KAryTree t = build_from_shape(2, make_complete_shape(31, 2));
  auto hops = local_route(t, 1, 31);
  bool seen_down = false;
  for (const Hop& h : hops) {
    if (h.kind == HopKind::kToChild) seen_down = true;
    if (h.kind == HopKind::kToParent) {
      EXPECT_FALSE(seen_down) << "went up after descending on a fresh tree";
    }
  }
}

}  // namespace
}  // namespace san
