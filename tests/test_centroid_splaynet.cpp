// (k+1)-SplayNet (Section 4.2): fixed centroids, permanent subtree
// membership, Fig. 8 size split, and serve correctness.
#include <gtest/gtest.h>

#include <random>
#include <set>

#include "core/splaynet.hpp"
#include "workload/generators.hpp"

namespace san {
namespace {

class CentroidNetTest : public ::testing::TestWithParam<int> {};

TEST_P(CentroidNetTest, ConstructionMatchesFig8Layout) {
  const int k = GetParam();
  const int n = 500;
  CentroidSplayNet net(k, n);
  ASSERT_TRUE(net.tree().valid());
  EXPECT_EQ(net.tree().root(), net.c1());

  // c2 is a child of c1.
  EXPECT_EQ(net.tree().node(net.c2()).parent, net.c1());

  // Count per-subtree sizes: c1 side holds ~ (n-2)/(k+1) nodes across k-1
  // subtrees, c2 side the rest across k subtrees.
  std::vector<int> sizes(static_cast<size_t>(2 * k - 1), 0);
  int centroids = 0;
  for (NodeId id = 1; id <= n; ++id) {
    const int s = net.subtree_of(id);
    if (s < 0)
      ++centroids;
    else
      ++sizes[static_cast<size_t>(s)];
  }
  EXPECT_EQ(centroids, 2);
  const int c1_side = (n - 2) / (k + 1);
  int c1_total = 0, c2_total = 0;
  for (int s = 0; s < k - 1; ++s) c1_total += sizes[static_cast<size_t>(s)];
  for (int s = k - 1; s < 2 * k - 1; ++s)
    c2_total += sizes[static_cast<size_t>(s)];
  EXPECT_EQ(c1_total, c1_side);
  EXPECT_EQ(c2_total, n - 2 - c1_side);
  // c2's subtrees are near-equal: sizes differ by at most one.
  for (int s = k - 1; s < 2 * k - 1; ++s) {
    EXPECT_LE(std::abs(sizes[static_cast<size_t>(s)] -
                       c2_total / k),
              1)
        << "subtree " << s;
  }
}

TEST_P(CentroidNetTest, CentroidsNeverMoveAndMembershipIsPermanent) {
  const int k = GetParam();
  const int n = 300;
  CentroidSplayNet net(k, n);
  const NodeId c1 = net.c1();
  const NodeId c2 = net.c2();

  std::vector<int> membership(static_cast<size_t>(n) + 1);
  for (NodeId id = 1; id <= n; ++id) membership[id] = net.subtree_of(id);
  auto current_subtree = [&](NodeId id) {
    // Recompute membership structurally: walk up to the child of c1/c2.
    NodeId cur = id;
    while (true) {
      NodeId p = net.tree().node(cur).parent;
      if (p == c1 || p == c2) break;
      cur = p;
    }
    return cur;
  };

  std::mt19937_64 rng(23 + k);
  for (int step = 0; step < 400; ++step) {
    NodeId u = 1 + static_cast<NodeId>(rng() % n);
    NodeId v = 1 + static_cast<NodeId>(rng() % n);
    if (u == v) continue;
    net.serve(u, v);
    EXPECT_EQ(net.tree().root(), c1);
    EXPECT_EQ(net.tree().node(c2).parent, c1);
    if (step % 40 == 0) {
      ASSERT_TRUE(net.tree().valid());
      // Structural membership agrees with the recorded one.
      for (NodeId id = 1; id <= n; id += 17) {
        if (id == c1 || id == c2) continue;
        NodeId subroot = current_subtree(id);
        // All nodes under this subtree root share one recorded index.
        EXPECT_EQ(membership[id], net.subtree_of(subroot))
            << "node " << id << " leaked into another subtree";
      }
    }
  }
}

TEST_P(CentroidNetTest, CrossSubtreeRequestEndsNearCentroids) {
  const int k = GetParam();
  const int n = 200;
  CentroidSplayNet net(k, n);
  std::mt19937_64 rng(41);
  int cross_checked = 0;
  for (int step = 0; step < 300 && cross_checked < 50; ++step) {
    NodeId u = 1 + static_cast<NodeId>(rng() % n);
    NodeId v = 1 + static_cast<NodeId>(rng() % n);
    const int su = net.subtree_of(u);
    const int sv = net.subtree_of(v);
    if (u == v || su < 0 || sv < 0 || su == sv) continue;
    net.serve(u, v);
    ++cross_checked;
    // After splaying, both endpoints are subtree roots: children of their
    // centroid, so the route is u -> c_a (-> c_b) -> v.
    const NodeId pu = net.tree().node(u).parent;
    const NodeId pv = net.tree().node(v).parent;
    EXPECT_TRUE(pu == net.c1() || pu == net.c2());
    EXPECT_TRUE(pv == net.c1() || pv == net.c2());
    EXPECT_LE(net.tree().distance(u, v), 3);
  }
  EXPECT_GE(cross_checked, 50);
}

TEST_P(CentroidNetTest, IntraSubtreeServeMatchesSplayNetSemantics) {
  const int k = GetParam();
  const int n = 400;
  CentroidSplayNet net(k, n);
  std::mt19937_64 rng(4242);
  int checked = 0;
  while (checked < 50) {
    NodeId u = 1 + static_cast<NodeId>(rng() % n);
    NodeId v = 1 + static_cast<NodeId>(rng() % n);
    if (u == v || net.subtree_of(u) < 0 ||
        net.subtree_of(u) != net.subtree_of(v))
      continue;
    net.serve(u, v);
    // Exactly as in KArySplayNet: endpoints end adjacent.
    EXPECT_EQ(net.tree().distance(u, v), 1);
    ++checked;
  }
}

INSTANTIATE_TEST_SUITE_P(Arity, CentroidNetTest, ::testing::Range(2, 9),
                         [](const auto& info) {
                           return "k" + std::to_string(info.param);
                         });

TEST(CentroidNet, RejectsTooFewNodes) {
  EXPECT_THROW(CentroidSplayNet(3, 6), TreeError);
  EXPECT_NO_THROW(CentroidSplayNet(3, 7));
}

TEST(CentroidNet, ServesFullWorkloadValidly) {
  CentroidSplayNet net(2, 100);  // the paper's 3-SplayNet case study shape
  Trace t = gen_temporal(100, 5000, 0.5, 77);
  for (const Request& r : t.requests) net.serve(r.src, r.dst);
  EXPECT_TRUE(net.tree().valid());
  // Saturation preserved under confined splays too.
  for (NodeId id = 1; id <= 100; ++id)
    EXPECT_EQ(net.tree().node(id).keys.size(), 1u);
}

TEST(CentroidNet, CentroidEndpointRequests) {
  CentroidSplayNet net(3, 100);
  for (NodeId peer : {NodeId{5}, NodeId{50}, NodeId{95}}) {
    net.serve(net.c1(), peer);
    net.serve(peer, net.c2());
    EXPECT_TRUE(net.tree().valid());
    // The non-centroid endpoint was splayed to its subtree root.
    const NodeId p = net.tree().node(peer).parent;
    EXPECT_TRUE(p == net.c1() || p == net.c2());
  }
  net.serve(net.c1(), net.c2());  // both fixed: routing only
  EXPECT_TRUE(net.tree().valid());
}

}  // namespace
}  // namespace san
