// Report formatting used by the bench harness.
#include <gtest/gtest.h>

#include "stats/table.hpp"

namespace san {
namespace {

TEST(Table, MarkdownLayout) {
  Table t({"k", "cost"});
  t.add_row({"2", "1.00x"});
  t.add_row({"10", "0.70x"});
  const std::string md = t.to_markdown();
  EXPECT_NE(md.find("| k "), std::string::npos);
  EXPECT_NE(md.find("| 0.70x |"), std::string::npos);
  // header + separator + 2 rows = 4 lines
  EXPECT_EQ(std::count(md.begin(), md.end(), '\n'), 4);
}

TEST(Table, CsvLayout) {
  Table t({"a", "b", "c"});
  t.add_row({"1", "2"});  // short row padded
  EXPECT_EQ(t.to_csv(), "a,b,c\n1,2,\n");
}

TEST(Table, RatioCell) {
  EXPECT_EQ(ratio_cell(87, 100), "0.87x");
  EXPECT_EQ(ratio_cell(250, 100), "2.50x");
  EXPECT_EQ(ratio_cell(1, 0), "-");
}

TEST(Table, FixedCell) {
  EXPECT_EQ(fixed_cell(17.7304), "17.730");
  EXPECT_EQ(fixed_cell(2.5, 1), "2.5");
}

TEST(Table, Dimensions) {
  Table t({"x"});
  EXPECT_EQ(t.columns(), 1u);
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1"});
  EXPECT_EQ(t.rows(), 1u);
}

}  // namespace
}  // namespace san
