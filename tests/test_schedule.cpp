// Locality-aware batch scheduling (sim/schedule.hpp) walls:
//
//   Schedule.*             config validation + the KAryTree batch-walk
//                          primitives (path_info_batch / warm_root_paths)
//   ScheduleReorder.*      the windowed reorder pass: permutation sanity,
//                          window bounding, reordered counters
//   ScheduleDifferential.* semantic locks — FIFO stays bit-identical with
//                          the config threaded through every engine; the
//                          locality cost equals the FIFO cost of the
//                          scheduler's own permutation (the prefetch
//                          warm-up is provably cost-free); sharded
//                          sequential == concurrent under locality;
//                          static trees serve order-invariant totals
//   ScheduleGolden.*       locality total_cost/edge_changes rows across
//                          all 9 network types, regenerable with
//                          SAN_PRINT_GOLDENS=1
//   ScheduleFuzz.*         locality-scheduled serves keep validate()-clean
//                          trees on every engine
//   ScheduleFrontend.*     batch-reordering worker path: completion,
//                          counters, and the admission-batch combo checks
#include <algorithm>
#include <cstdlib>
#include <cstdio>
#include <numeric>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/network.hpp"
#include "sim/serve_frontend.hpp"
#include "sim/simulator.hpp"
#include "static_trees/centroid_tree.hpp"
#include "static_trees/full_tree.hpp"
#include "static_trees/optimal_dp.hpp"
#include "workload/arrival.hpp"
#include "workload/demand_matrix.hpp"
#include "workload/generators.hpp"

namespace san {
namespace {

constexpr std::uint64_t kSeed = 0xC0FFEE;

ScheduleConfig locality(int window = 1024, int group = 8) {
  return ScheduleConfig{SchedulePolicy::kLocality, window, group};
}

bool print_mode() {
  const char* env = std::getenv("SAN_PRINT_GOLDENS");
  return env != nullptr && env[0] == '1';
}

// ---------------------------------------------------------------- config

TEST(Schedule, ConfigRejectsNonPositiveWindowAndGroup) {
  EXPECT_THROW(locality(0, 1).validate(), TreeError);
  EXPECT_THROW(locality(-5, 1).validate(), TreeError);
  EXPECT_THROW(locality(8, 0).validate(), TreeError);
  EXPECT_THROW(locality(8, -1).validate(), TreeError);
  EXPECT_NO_THROW(locality(1, 1).validate());
  // The bounds hold for FIFO configs too: a config is either valid or not,
  // independent of which policy it currently selects.
  ScheduleConfig fifo;
  fifo.window = 0;
  EXPECT_THROW(fifo.validate(), TreeError);
}

TEST(Schedule, ConfigRejectsGroupLargerThanWindow) {
  EXPECT_THROW(locality(4, 8).validate(), TreeError);
  EXPECT_NO_THROW(locality(8, 8).validate());
}

TEST(Schedule, EnginesRejectInvalidConfigBeforeServing) {
  const Trace t = gen_uniform(16, 10, kSeed);
  KArySplayNetwork net(KArySplayNet::balanced(2, 16));
  EXPECT_THROW(run_trace(net, t, locality(0, 1)), TreeError);
  EXPECT_THROW(run_trace(net, t, locality(4, 8)), TreeError);
  EXPECT_THROW(run_trace_static(full_kary_tree(2, 16), t, locality(0, 1)),
               TreeError);
  ShardedNetwork sharded = ShardedNetwork::balanced(2, 16, 2);
  ShardedRunOptions opt;
  opt.schedule = locality(8, 16);
  EXPECT_THROW(run_trace_sharded(sharded, t, opt), TreeError);
  EXPECT_THROW(ServeFrontend(sharded, {.schedule = locality(0, 1)}),
               TreeError);
}

TEST(Schedule, LocalityNeedsASchedulableTree) {
  // ShardedNetwork through the generic per-request loop has S trees, not
  // one; locality there must go through run_trace_sharded.
  const Trace t = gen_uniform(16, 10, kSeed);
  AnyNetwork any = ShardedNetwork::balanced(2, 16, 2);
  EXPECT_THROW(run_trace(any, t, locality()), TreeError);
  // FIFO on the same path stays supported.
  EXPECT_NO_THROW(run_trace(any, t, ScheduleConfig{}));
}

TEST(Schedule, PolicyNames) {
  EXPECT_STREQ(schedule_policy_name(SchedulePolicy::kFifo), "fifo");
  EXPECT_STREQ(schedule_policy_name(SchedulePolicy::kLocality), "locality");
}

// ------------------------------------------------- karytree batch walks

TEST(Schedule, PathInfoBatchMatchesScalarOnMutatingTree) {
  KArySplayNet net = KArySplayNet::balanced(3, 200);
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<NodeId> node(1, 200);
  std::vector<NodeId> us, vs;
  for (int round = 0; round < 20; ++round) {
    // Mutate, then compare a batch against per-pair scalar calls.
    for (int i = 0; i < 10; ++i) {
      NodeId a = node(rng), b = node(rng);
      if (a != b) net.serve(a, b);
    }
    us.clear();
    vs.clear();
    for (int i = 0; i < 37; ++i) {  // deliberately not a multiple of group
      us.push_back(node(rng));
      vs.push_back(node(rng));
    }
    std::vector<PathInfo> batch(us.size());
    net.tree().path_info_batch(us, vs, batch, /*group=*/8);
    for (std::size_t i = 0; i < us.size(); ++i) {
      const PathInfo want = net.tree().path_info(us[i], vs[i]);
      EXPECT_EQ(batch[i].lca, want.lca) << i;
      EXPECT_EQ(batch[i].distance, want.distance) << i;
    }
  }
}

TEST(Schedule, PathInfoBatchValidatesArguments) {
  KArySplayNet net = KArySplayNet::balanced(2, 8);
  std::vector<NodeId> us = {1, 2}, vs = {3};
  std::vector<PathInfo> out(2);
  EXPECT_THROW(net.tree().path_info_batch(us, vs, out), TreeError);
  vs = {3, 4};
  EXPECT_THROW(net.tree().path_info_batch(us, vs, out, 0), TreeError);
  EXPECT_NO_THROW(net.tree().path_info_batch(us, vs, out, 1));
}

TEST(Schedule, WarmRootPathsCountsDepthsAndLeavesMemosAlone) {
  KArySplayNet net = KArySplayNet::balanced(2, 63);
  const KAryTree& t = net.tree();
  std::vector<NodeId> ids;
  int want = 0;
  for (NodeId id = 1; id <= 63; ++id) {
    ids.push_back(id);
    want += t.depth(id);
  }
  EXPECT_EQ(t.warm_root_paths(ids), want);
  // The warm walk is memo-free: after a mutation it must not repair (and
  // thus must not stamp) any depth memo.
  net.serve(1, 63);
  const NodeId probe = net.tree().root();
  ASSERT_FALSE(net.tree().depth_is_cached(probe));
  net.tree().warm_root_paths(ids);
  EXPECT_FALSE(net.tree().depth_is_cached(probe));
  EXPECT_FALSE(net.tree().validate().has_value());
}

// ------------------------------------------------------------- reorder

TEST(ScheduleReorder, PermutesWithinWindowsOnly) {
  KArySplayNet net = KArySplayNet::balanced(2, 64);
  const Trace t = gen_uniform(64, 200, kSeed);
  std::vector<Request> ops = t.requests;
  const int window = 50;
  LocalityScheduler sched(locality(window, 8));
  // Reorder window by window, as run() does, without serving (tree is
  // untouched, so the permutation is pure).
  for (std::size_t base = 0; base < ops.size(); base += window) {
    std::span<Request> win(ops.data() + base,
                           std::min<std::size_t>(window, ops.size() - base));
    sched.reorder(net.tree(), win, [](const Request& r) {
      return ScheduleEndpoints{r.src, r.dst};
    });
  }
  ASSERT_EQ(ops.size(), t.requests.size());
  // Window bounding: every op stays inside its arrival window.
  auto key = [](const Request& r) {
    return (static_cast<std::uint64_t>(r.src) << 32) |
           static_cast<std::uint32_t>(r.dst);
  };
  for (std::size_t base = 0; base < ops.size(); base += window) {
    const std::size_t end = std::min(ops.size(), base + window);
    std::vector<std::uint64_t> got, want;
    for (std::size_t i = base; i < end; ++i) {
      got.push_back(key(ops[i]));
      want.push_back(key(t.requests[i]));
    }
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want) << "window at " << base
                         << " lost or gained requests";
  }
  EXPECT_GT(sched.reordered(), 0);
  EXPECT_LE(sched.reordered(), static_cast<Cost>(ops.size()));
}

TEST(ScheduleReorder, AlreadyClusteredInputIsAFixpoint) {
  // All requests identical: every key ties, the stable sort keeps arrival
  // order, and nothing is counted as reordered.
  KArySplayNet net = KArySplayNet::balanced(2, 32);
  std::vector<Request> ops(100, Request{5, 9});
  LocalityScheduler sched(locality(64, 8));
  sched.reorder(net.tree(), std::span<Request>(ops), [](const Request& r) {
    return ScheduleEndpoints{r.src, r.dst};
  });
  EXPECT_EQ(sched.reordered(), 0);
}

TEST(ScheduleReorder, FifoPolicyServesInArrivalOrder) {
  KArySplayNet net = KArySplayNet::balanced(2, 32);
  const Trace t = gen_uniform(32, 64, kSeed);
  std::vector<Request> ops = t.requests;
  std::vector<Request> served;
  LocalityScheduler sched{ScheduleConfig{}};
  sched.run(
      net.tree(), std::span<Request>(ops),
      [](const Request& r) { return ScheduleEndpoints{r.src, r.dst}; },
      [&](const Request& r) { served.push_back(r); });
  ASSERT_EQ(served.size(), t.requests.size());
  for (std::size_t i = 0; i < served.size(); ++i) {
    EXPECT_EQ(served[i].src, t.requests[i].src);
    EXPECT_EQ(served[i].dst, t.requests[i].dst);
  }
  EXPECT_EQ(sched.reordered(), 0);
}

// -------------------------------------------------------- differential

TEST(ScheduleDifferential, FifoDefaultIsBitIdenticalOnEveryEngine) {
  // The ScheduleConfig parameter must be invisible under FIFO: identical
  // results with and without it, on every replay engine.
  const int n = 128;
  const Trace t = gen_workload(WorkloadKind::kFacebook, n, 4000, kSeed);
  {
    KArySplayNetwork a(KArySplayNet::balanced(3, n));
    KArySplayNetwork b(KArySplayNet::balanced(3, n));
    const SimResult ra = run_trace(a, t);
    const SimResult rb = run_trace(b, t, ScheduleConfig{});
    EXPECT_EQ(ra.total_cost(), rb.total_cost());
    EXPECT_EQ(ra.edge_changes, rb.edge_changes);
    EXPECT_EQ(rb.reordered_requests, 0);
    EXPECT_EQ(rb.schedule, SchedulePolicy::kFifo);
  }
  {
    ShardedNetwork a = ShardedNetwork::balanced(3, n, 4);
    ShardedNetwork b = ShardedNetwork::balanced(3, n, 4);
    const SimResult ra = run_trace_sharded(a, t);
    ShardedRunOptions opt;
    opt.schedule = ScheduleConfig{};
    const SimResult rb = run_trace_sharded(b, t, opt);
    EXPECT_EQ(ra.total_cost(), rb.total_cost());
    EXPECT_EQ(ra.cross_shard, rb.cross_shard);
    EXPECT_EQ(rb.reordered_requests, 0);
  }
  {
    const KAryTree tree = full_kary_tree(3, n);
    EXPECT_EQ(run_trace_static(tree, t).routing_cost,
              run_trace_static(tree, t, ScheduleConfig{}).routing_cost);
  }
}

TEST(ScheduleDifferential, LocalityCostIsTheFifoCostOfItsOwnPermutation) {
  // The scheduler's contract: reordering fully determines the cost — the
  // interleaved prefetch warm-up must not change any counter. Replay the
  // reorder pass manually (reorder window, then plain sequential serves)
  // and demand bit-equality with the engine's locality run.
  const int n = 256;
  const Trace t = gen_workload(WorkloadKind::kProjector, n, 5000, kSeed);
  const ScheduleConfig cfg = locality(192, 8);

  KArySplayNetwork engine(KArySplayNet::balanced(2, n));
  const SimResult via_engine = run_trace(engine, t, cfg);

  KArySplayNet manual = KArySplayNet::balanced(2, n);
  SimResult by_hand;
  std::vector<Request> buf = t.requests;
  LocalityScheduler sched(cfg);
  const auto resolve = [](const Request& r) {
    return ScheduleEndpoints{r.src, r.dst};
  };
  // Same chunking as run_trace_stream, same windows as run(): reorder one
  // window against the current tree, then serve it with NO warm-up.
  for (std::size_t cb = 0; cb < buf.size(); cb += kStreamChunkRequests) {
    const std::size_t ce = std::min(buf.size(), cb + kStreamChunkRequests);
    for (std::size_t wb = cb; wb < ce;
         wb += static_cast<std::size_t>(cfg.window)) {
      const std::size_t we =
          std::min(ce, wb + static_cast<std::size_t>(cfg.window));
      std::span<Request> win(buf.data() + wb, we - wb);
      sched.reorder(manual.tree(), win, resolve);
      for (const Request& r : win) {
        const ServeResult s = manual.serve(r.src, r.dst);
        by_hand.routing_cost += s.routing_cost;
        by_hand.rotation_count += s.rotations;
        by_hand.edge_changes += s.edge_changes;
      }
    }
  }
  EXPECT_EQ(via_engine.routing_cost, by_hand.routing_cost);
  EXPECT_EQ(via_engine.rotation_count, by_hand.rotation_count);
  EXPECT_EQ(via_engine.edge_changes, by_hand.edge_changes);
  EXPECT_EQ(via_engine.reordered_requests, sched.reordered());
  EXPECT_GT(via_engine.reordered_requests, 0);
}

TEST(ScheduleDifferential, ShardedLocalitySequentialMatchesConcurrent) {
  const int n = 240;
  for (WorkloadKind kind :
       {WorkloadKind::kFacebook, WorkloadKind::kSequentialScan}) {
    const Trace t = gen_workload(kind, n, 6000, kSeed);
    ShardedNetwork seq = ShardedNetwork::balanced(3, n, 5);
    ShardedNetwork conc = ShardedNetwork::balanced(3, n, 5);
    ShardedRunOptions sopt;
    sopt.sequential = true;
    sopt.schedule = locality(128, 8);
    ShardedRunOptions copt;
    copt.threads = 4;
    copt.schedule = locality(128, 8);
    const SimResult rs = run_trace_sharded(seq, t, sopt);
    const SimResult rc = run_trace_sharded(conc, t, copt);
    EXPECT_EQ(rs.routing_cost, rc.routing_cost) << workload_name(kind);
    EXPECT_EQ(rs.rotation_count, rc.rotation_count) << workload_name(kind);
    EXPECT_EQ(rs.edge_changes, rc.edge_changes) << workload_name(kind);
    EXPECT_EQ(rs.reordered_requests, rc.reordered_requests)
        << workload_name(kind);
    EXPECT_GT(rs.reordered_requests, 0) << workload_name(kind);
  }
}

TEST(ScheduleDifferential, StaticTreeCostIsOrderInvariant) {
  // No rotations => permutation cannot change the total: locality must
  // reproduce the FIFO routing cost exactly while actually reordering.
  const int n = 200;
  const Trace t = gen_workload(WorkloadKind::kUniform, n, 4000, kSeed);
  for (const KAryTree& tree : {full_kary_tree(3, n), centroid_kary_tree(3, n)}) {
    const SimResult fifo = run_trace_static(tree, t);
    const SimResult loc = run_trace_static(tree, t, locality(256, 8));
    EXPECT_EQ(fifo.routing_cost, loc.routing_cost);
    EXPECT_EQ(fifo.requests, loc.requests);
    EXPECT_GT(loc.reordered_requests, 0);
  }
}

// -------------------------------------------------------------- golden

// Locality-scheduled totals across every network type, kN/kM/kSeed chosen
// to match test_golden_costs.cpp so the FIFO columns there and these rows
// describe the same traces. Regenerate with
//   SAN_PRINT_GOLDENS=1 ./build/test_schedule
// after an intentional semantic change only. Same libstdc++ determinism
// caveat as the FIFO goldens.
constexpr int kGN = 32;
constexpr std::size_t kGM = 500;

struct NetworkSpec {
  const char* name;
  AnyNetwork (*make)(const Trace& trace);
};

const NetworkSpec kNetworks[] = {
    {"splay-k2",
     [](const Trace&) -> AnyNetwork {
       return KArySplayNetwork(KArySplayNet::balanced(2, kGN));
     }},
    {"splay-k3",
     [](const Trace&) -> AnyNetwork {
       return KArySplayNetwork(KArySplayNet::balanced(3, kGN));
     }},
    {"splay-k5",
     [](const Trace&) -> AnyNetwork {
       return KArySplayNetwork(KArySplayNet::balanced(5, kGN));
     }},
    {"semi-splay-k3",
     [](const Trace&) -> AnyNetwork {
       return KArySplayNetwork(KArySplayNet::balanced(
           3, kGN, RotationPolicy{}, SplayMode::kSemiSplayOnly));
     }},
    {"centroid-k3",
     [](const Trace&) -> AnyNetwork {
       return CentroidSplayNetwork(CentroidSplayNet(3, kGN));
     }},
    {"binary",
     [](const Trace&) -> AnyNetwork { return BinarySplayNetwork(kGN); }},
    {"static-full-k3",
     [](const Trace&) -> AnyNetwork {
       return StaticTreeNetwork(full_kary_tree(3, kGN), "full-k3");
     }},
    {"static-centroid-k3",
     [](const Trace&) -> AnyNetwork {
       return StaticTreeNetwork(centroid_kary_tree(3, kGN), "centroid-k3");
     }},
    {"static-optimal-k3",
     [](const Trace& trace) -> AnyNetwork {
       return StaticTreeNetwork(
           optimal_routing_based_tree(3, DemandMatrix::from_trace(trace), 1)
               .tree,
           "optimal-k3");
     }},
};

struct Golden {
  const char* workload;
  const char* network;
  Cost total_cost;
  Cost edge_changes;
};

const Golden kLocalityGoldens[] = {
    {"Facebook", "splay-k2", 2712, 7330},
    {"Facebook", "splay-k3", 2329, 7164},
    {"Facebook", "splay-k5", 2138, 6526},
    {"Facebook", "semi-splay-k3", 2819, 8270},
    {"Facebook", "centroid-k3", 2375, 3178},
    {"Facebook", "binary", 2718, 7302},
    {"Facebook", "static-full-k3", 1824, 0},
    {"Facebook", "static-centroid-k3", 2323, 0},
    {"Facebook", "static-optimal-k3", 1095, 0},
    {"SequentialScan", "splay-k2", 768, 698},
    {"SequentialScan", "splay-k3", 1187, 2220},
    {"SequentialScan", "splay-k5", 1192, 2202},
    {"SequentialScan", "semi-splay-k3", 1283, 2392},
    {"SequentialScan", "centroid-k3", 1231, 1976},
    {"SequentialScan", "binary", 741, 618},
    {"SequentialScan", "static-full-k3", 918, 0},
    {"SequentialScan", "static-centroid-k3", 920, 0},
    {"SequentialScan", "static-optimal-k3", 500, 0},
};

TEST(ScheduleGolden, LocalityOnEveryNetworkType) {
  const ScheduleConfig cfg = locality(64, 8);
  std::vector<Golden> measured;
  for (WorkloadKind kind :
       {WorkloadKind::kFacebook, WorkloadKind::kSequentialScan}) {
    const Trace trace = gen_workload(kind, kGN, kGM, kSeed);
    for (const NetworkSpec& spec : kNetworks) {
      AnyNetwork net = spec.make(trace);
      const SimResult res = run_trace(net, trace, cfg);
      measured.push_back(
          {workload_name(kind), spec.name, res.total_cost(), res.edge_changes});
    }
  }
  if (print_mode()) {
    for (const Golden& g : measured)
      std::printf("    {\"%s\", \"%s\", %lld, %lld},\n", g.workload, g.network,
                  static_cast<long long>(g.total_cost),
                  static_cast<long long>(g.edge_changes));
    GTEST_SKIP() << "printed " << measured.size() << " locality golden rows";
  }
  ASSERT_EQ(measured.size(), std::size(kLocalityGoldens))
      << "grid changed; regenerate kLocalityGoldens";
  for (std::size_t i = 0; i < measured.size(); ++i) {
    EXPECT_STREQ(measured[i].workload, kLocalityGoldens[i].workload);
    EXPECT_STREQ(measured[i].network, kLocalityGoldens[i].network);
    EXPECT_EQ(measured[i].total_cost, kLocalityGoldens[i].total_cost)
        << measured[i].workload << " / " << measured[i].network;
    EXPECT_EQ(measured[i].edge_changes, kLocalityGoldens[i].edge_changes)
        << measured[i].workload << " / " << measured[i].network;
  }
}

// ---------------------------------------------------------------- fuzz

TEST(ScheduleFuzz, LocalityKeepsTreesValidateClean) {
  std::mt19937_64 rng(0xF00D);
  for (int round = 0; round < 8; ++round) {
    const int n = 16 + static_cast<int>(rng() % 200);
    const std::size_t m = 500 + rng() % 3000;
    const int window = 1 + static_cast<int>(rng() % 300);
    const int group = 1 + static_cast<int>(rng() % window);
    const auto kind = (round % 2 == 0) ? WorkloadKind::kFacebook
                                       : WorkloadKind::kBitReversal;
    const Trace t = gen_workload(kind, n, m, rng());
    const ScheduleConfig cfg = locality(window, group);

    KArySplayNetwork plain(KArySplayNet::balanced(2 + round % 3, n));
    run_trace(plain, t, cfg);
    EXPECT_FALSE(plain.net().tree().validate().has_value())
        << "round " << round;

    ShardedNetwork sharded = ShardedNetwork::balanced(3, n, 1 + round % 4);
    ShardedRunOptions opt;
    opt.schedule = cfg;
    run_trace_sharded(sharded, t, opt);
    for (int s = 0; s < sharded.num_shards(); ++s)
      EXPECT_FALSE(sharded.shard(s).tree().validate().has_value())
          << "round " << round << " shard " << s;
  }
}

// ------------------------------------------------------------ frontend

TEST(ScheduleFrontend, RejectsLocalityWithSingleItemBatches) {
  ShardedNetwork net = ShardedNetwork::balanced(2, 32, 1);
  EXPECT_THROW(
      ServeFrontend(net, {.admission_batch = 1, .schedule = locality()}),
      TreeError);
  EXPECT_NO_THROW(
      ServeFrontend(net, {.admission_batch = 2, .schedule = locality()}));
  // The pre-existing rejections stay intact.
  EXPECT_THROW(ServeFrontend(net, {.admission_batch = 0}), TreeError);
  EXPECT_THROW(ServeFrontend(net, {.queue_capacity = 0}), TreeError);
}

TEST(ScheduleFrontend, LocalityServesEverythingAndKeepsShardsValid) {
  const int n = 120;
  const std::size_t m = 8000;
  const Trace t = gen_workload(WorkloadKind::kFacebook, n, m, kSeed);
  const std::vector<std::uint64_t> arrivals(m, 0);  // saturation
  for (int S : {1, 3}) {
    ShardedNetwork net = ShardedNetwork::balanced(2, n, S);
    ServeFrontend fe(net, {.admission_batch = 64, .schedule = locality(64, 8)});
    const FrontendResult r = fe.run(t, arrivals);
    EXPECT_EQ(r.sim.requests, m) << "S=" << S;
    EXPECT_EQ(r.sim.schedule, SchedulePolicy::kLocality);
    EXPECT_GT(r.sim.reordered_requests, 0) << "S=" << S;
    EXPECT_GT(r.sim.routing_cost, 0);
    EXPECT_EQ(r.sojourn.count(), m) << "every request must complete";
    for (int s = 0; s < net.num_shards(); ++s)
      EXPECT_FALSE(net.shard(s).tree().validate().has_value()) << s;
  }
}

}  // namespace
}  // namespace san
