// Tests for shapes and the shape -> search tree builder.
#include <gtest/gtest.h>

#include <random>

#include "core/shape.hpp"

namespace san {
namespace {

int shape_max_kids(const Shape& s) {
  int m = static_cast<int>(s.kids.size());
  for (const Shape& kid : s.kids) m = std::max(m, shape_max_kids(kid));
  return m;
}

int shape_height(const Shape& s) {
  int h = 0;
  for (const Shape& kid : s.kids) h = std::max(h, 1 + shape_height(kid));
  return h;
}

bool shape_last_level_leftmost(const Shape& s) {
  // In a complete tree, child heights are non-increasing left to right and
  // differ by at most one.
  int prev = INT32_MAX;
  for (const Shape& kid : s.kids) {
    int h = shape_height(kid);
    if (h > prev) return false;
    prev = h;
    if (!shape_last_level_leftmost(kid)) return false;
  }
  return true;
}

TEST(Shape, CompleteShapeSizes) {
  for (int k = 2; k <= 6; ++k) {
    for (int n : {1, 2, 3, 5, 7, 15, 16, 31, 100, 365}) {
      Shape s = make_complete_shape(n, k);
      s.recompute_sizes();
      EXPECT_EQ(s.size, n) << "k=" << k << " n=" << n;
      EXPECT_LE(shape_max_kids(s), k);
    }
  }
}

TEST(Shape, CompleteShapeHeightIsLogarithmic) {
  for (int k = 2; k <= 8; ++k) {
    for (int n : {10, 100, 1000}) {
      Shape s = make_complete_shape(n, k);
      const int h = shape_height(s);
      // height of a complete k-ary tree: ceil(log_k(n(k-1)+1)) - 1-ish.
      int cap = 1, levels = 0;
      long long total = 1;
      while (total < n) {
        cap *= k;
        total += cap;
        ++levels;
      }
      EXPECT_EQ(h, levels) << "k=" << k << " n=" << n;
    }
  }
}

TEST(Shape, CompleteShapeFillsLeft) {
  for (int k = 2; k <= 5; ++k)
    for (int n : {4, 9, 23, 77})
      EXPECT_TRUE(shape_last_level_leftmost(make_complete_shape(n, k)))
          << "k=" << k << " n=" << n;
}

TEST(Shape, BuilderProducesValidTreesFromCompleteShapes) {
  for (int k = 2; k <= 7; ++k)
    for (int n : {1, 2, 5, 17, 64, 200}) {
      KAryTree t = build_from_shape(k, make_complete_shape(n, k));
      auto err = t.validate();
      EXPECT_FALSE(err.has_value())
          << "k=" << k << " n=" << n << ": " << *err;
    }
}

TEST(Shape, BuilderProducesValidTreesFromRandomShapes) {
  std::mt19937_64 rng(42);
  for (int k = 2; k <= 10; ++k) {
    for (int trial = 0; trial < 20; ++trial) {
      const int n = 1 + static_cast<int>(rng() % 80);
      Shape s = make_random_shape(n, k, rng);
      s.recompute_sizes();
      KAryTree t = build_from_shape(k, s);
      auto err = t.validate();
      ASSERT_FALSE(err.has_value())
          << "k=" << k << " n=" << n << ": " << *err;
      // Every id must be reachable by pure search.
      for (NodeId id = 1; id <= n; ++id)
        EXPECT_EQ(t.search_from_root(id).back(), id);
    }
  }
}

TEST(Shape, PathShapeIsAPath) {
  KAryTree t = build_from_shape(2, make_path_shape(10));
  ASSERT_TRUE(t.valid());
  int leaves = 0;
  for (NodeId id = 1; id <= 10; ++id) {
    int kids = 0;
    for (NodeId c : t.node(id).children)
      if (c != kNoNode) ++kids;
    EXPECT_LE(kids, 1);
    if (kids == 0) ++leaves;
  }
  EXPECT_EQ(leaves, 1);
}

TEST(Shape, BuilderRejectsOverWideShape) {
  Shape s;
  for (int i = 0; i < 4; ++i) s.kids.push_back(Shape{});
  s.self_pos = 2;
  s.recompute_sizes();
  EXPECT_THROW(build_from_shape(3, s), TreeError);
  EXPECT_NO_THROW(build_from_shape(4, s));
}

TEST(Shape, BuilderRejectsEdgeIdWithFullFanOut) {
  // With k children, the id key must double as a boundary between two of
  // them; an edge position would need k keys and is rejected.
  for (int pos : {0, 3}) {
    Shape s;
    for (int i = 0; i < 3; ++i) s.kids.push_back(Shape{});
    s.self_pos = pos;
    s.recompute_sizes();
    EXPECT_THROW(build_from_shape(3, s), TreeError) << pos;
    EXPECT_NO_THROW(build_from_shape(4, s));
  }
}

}  // namespace
}  // namespace san
