// Trace generators and statistics: determinism, id-range safety, and the
// locality/skew characteristics each workload family is supposed to carry
// (they are what the paper's Section 5 conclusions hinge on).
#include <gtest/gtest.h>

#include "workload/generators.hpp"
#include "workload/trace_stats.hpp"
#include "workload/zipf.hpp"

namespace san {
namespace {

void check_basic(const Trace& t, int n, std::size_t m) {
  EXPECT_EQ(t.n, n);
  ASSERT_EQ(t.size(), m);
  for (const Request& r : t.requests) {
    EXPECT_GE(r.src, 1);
    EXPECT_LE(r.src, n);
    EXPECT_GE(r.dst, 1);
    EXPECT_LE(r.dst, n);
    EXPECT_NE(r.src, r.dst);
  }
}

TEST(Workloads, AllGeneratorsProduceValidTraces) {
  for (WorkloadKind kind :
       {WorkloadKind::kUniform, WorkloadKind::kTemporal025,
        WorkloadKind::kTemporal05, WorkloadKind::kTemporal075,
        WorkloadKind::kTemporal09, WorkloadKind::kHpc,
        WorkloadKind::kProjector, WorkloadKind::kFacebook}) {
    Trace t = gen_workload(kind, 64, 5000, 1);
    check_basic(t, 64, 5000);
  }
}

TEST(Workloads, Deterministic) {
  for (WorkloadKind kind : {WorkloadKind::kUniform, WorkloadKind::kHpc,
                            WorkloadKind::kProjector, WorkloadKind::kFacebook,
                            WorkloadKind::kTemporal05}) {
    Trace a = gen_workload(kind, 50, 2000, 42);
    Trace b = gen_workload(kind, 50, 2000, 42);
    EXPECT_EQ(a.requests, b.requests) << workload_name(kind);
    Trace c = gen_workload(kind, 50, 2000, 43);
    EXPECT_NE(a.requests, c.requests) << workload_name(kind);
  }
}

TEST(Workloads, PaperNodeCounts) {
  EXPECT_EQ(paper_node_count(WorkloadKind::kUniform), 100);
  EXPECT_EQ(paper_node_count(WorkloadKind::kTemporal09), 1023);
  EXPECT_EQ(paper_node_count(WorkloadKind::kHpc), 500);
  EXPECT_EQ(paper_node_count(WorkloadKind::kProjector), 100);
  EXPECT_EQ(paper_node_count(WorkloadKind::kFacebook), 10000);
  // n <= 0 selects the paper default.
  Trace t = gen_workload(WorkloadKind::kProjector, 0, 100, 1);
  EXPECT_EQ(t.n, 100);
}

TEST(Workloads, TemporalRepeatFractionTracksParameter) {
  for (double p : {0.25, 0.5, 0.75, 0.9}) {
    Trace t = gen_temporal(200, 50000, p, 9);
    TraceStats s = compute_stats(t);
    EXPECT_NEAR(s.repeat_fraction, p, 0.02) << "p=" << p;
  }
}

TEST(Workloads, UniformHasNearFullEntropy) {
  Trace t = gen_uniform(128, 100000, 10);
  TraceStats s = compute_stats(t);
  EXPECT_GT(s.src_entropy, 6.9);  // log2(128) = 7
  EXPECT_GT(s.dst_entropy, 6.9);
  EXPECT_LT(s.repeat_fraction, 0.01);
}

TEST(Workloads, LocalityOrderingAcrossFamilies) {
  // The property stack the substitution argument rests on (DESIGN.md and
  // the paper's Section 5.1): HPC has LOW temporal locality (bulk-
  // synchronous sweeps, a pair recurs once per iteration) but the most
  // structured demand matrix; ProjecToR is bursty (elephant flows) and
  // sparse; Facebook has low locality and wide heavy-tailed support.
  const std::size_t m = 50000;
  TraceStats hpc = compute_stats(gen_hpc(100, m, 3));
  TraceStats proj = compute_stats(gen_projector(100, m, 3));
  TraceStats fb = compute_stats(gen_facebook(100, m, 3));
  TraceStats uni = compute_stats(gen_uniform(100, m, 3));

  // Temporal locality is low for all three real-trace substitutes; the
  // skewed ProjecToR support gives it the highest accidental repeat rate
  // (hot pair drawn twice in a row), still far from the bursty temporal
  // workloads.
  EXPECT_LT(hpc.repeat_fraction, 0.05);
  EXPECT_LT(fb.repeat_fraction, 0.05);
  EXPECT_LT(proj.repeat_fraction, 0.4);  // far below the bursty temporal 0.75/0.9
  EXPECT_GT(proj.repeat_fraction, hpc.repeat_fraction);

  // Sparsity: ProjecToR's support is a few pairs per node; uniform covers
  // nearly every ordered pair.
  EXPECT_LT(proj.distinct_pairs, uni.distinct_pairs / 2);
  // Structure (all at n = 100): both real-trace substitutes have demand
  // matrices far more compressible than uniform; Facebook sits between.
  EXPECT_LT(hpc.pair_entropy, uni.pair_entropy - 2.0);
  EXPECT_LT(proj.pair_entropy, uni.pair_entropy - 2.0);
  EXPECT_LT(fb.pair_entropy, uni.pair_entropy);
}

TEST(Workloads, FacebookEndpointsAreSkewed) {
  Trace t = gen_facebook(1000, 100000, 4);
  TraceStats s = compute_stats(t);
  // Zipf(1.05) over 1000 ranks: entropy well below uniform log2(1000)=9.97.
  EXPECT_LT(s.src_entropy, 9.0);
  EXPECT_GT(s.src_entropy, 4.0);
}

TEST(Workloads, EntropyBoundIsFinitePositive) {
  Trace t = gen_temporal(100, 10000, 0.5, 6);
  TraceStats s = compute_stats(t);
  EXPECT_GT(s.entropy_bound, 0.0);
  // Upper bound: 2m log2(n).
  EXPECT_LT(s.entropy_bound, 2.0 * 10000 * std::log2(100.0) + 1.0);
}

TEST(Workloads, ZipfSamplerIsSkewedAndInRange) {
  ZipfSampler zipf(100, 1.2);
  std::mt19937_64 rng(8);
  std::vector<int> counts(101, 0);
  for (int i = 0; i < 100000; ++i) {
    int r = zipf(rng);
    ASSERT_GE(r, 1);
    ASSERT_LE(r, 100);
    ++counts[static_cast<size_t>(r)];
  }
  EXPECT_GT(counts[1], counts[10] * 5 / 2);  // ~ 10^1.2 = 15.8x in theory
  EXPECT_GT(counts[10], counts[100]);
}

TEST(Workloads, RejectDegenerateParameters) {
  EXPECT_THROW(gen_uniform(1, 10, 0), TreeError);
  EXPECT_THROW(gen_temporal(10, 10, 1.0, 0), TreeError);
  EXPECT_THROW(gen_temporal(10, 10, -0.1, 0), TreeError);
  EXPECT_THROW(gen_hpc(4, 10, 0), TreeError);
}

TEST(Workloads, StatsOnEmptyTrace) {
  Trace t;
  t.n = 10;
  TraceStats s = compute_stats(t);
  EXPECT_EQ(s.distinct_pairs, 0u);
  EXPECT_EQ(s.src_entropy, 0.0);
}

}  // namespace
}  // namespace san
