// Trace generators and statistics: determinism, id-range safety, and the
// locality/skew characteristics each workload family is supposed to carry
// (they are what the paper's Section 5 conclusions hinge on).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "workload/generators.hpp"
#include "workload/trace_stats.hpp"
#include "workload/zipf.hpp"

namespace san {
namespace {

void check_basic(const Trace& t, int n, std::size_t m) {
  EXPECT_EQ(t.n, n);
  ASSERT_EQ(t.size(), m);
  for (const Request& r : t.requests) {
    EXPECT_GE(r.src, 1);
    EXPECT_LE(r.src, n);
    EXPECT_GE(r.dst, 1);
    EXPECT_LE(r.dst, n);
    EXPECT_NE(r.src, r.dst);
  }
}

TEST(Workloads, AllGeneratorsProduceValidTraces) {
  for (WorkloadKind kind :
       {WorkloadKind::kUniform, WorkloadKind::kTemporal025,
        WorkloadKind::kTemporal05, WorkloadKind::kTemporal075,
        WorkloadKind::kTemporal09, WorkloadKind::kHpc,
        WorkloadKind::kProjector, WorkloadKind::kFacebook,
        WorkloadKind::kPhaseElephants, WorkloadKind::kRotatingHot}) {
    Trace t = gen_workload(kind, 64, 5000, 1);
    check_basic(t, 64, 5000);
  }
}

TEST(Workloads, Deterministic) {
  for (WorkloadKind kind : {WorkloadKind::kUniform, WorkloadKind::kHpc,
                            WorkloadKind::kProjector, WorkloadKind::kFacebook,
                            WorkloadKind::kPhaseElephants,
                            WorkloadKind::kRotatingHot,
                            WorkloadKind::kTemporal05}) {
    Trace a = gen_workload(kind, 50, 2000, 42);
    Trace b = gen_workload(kind, 50, 2000, 42);
    EXPECT_EQ(a.requests, b.requests) << workload_name(kind);
    Trace c = gen_workload(kind, 50, 2000, 43);
    EXPECT_NE(a.requests, c.requests) << workload_name(kind);
  }
}

TEST(Workloads, PaperNodeCounts) {
  EXPECT_EQ(paper_node_count(WorkloadKind::kUniform), 100);
  EXPECT_EQ(paper_node_count(WorkloadKind::kTemporal09), 1023);
  EXPECT_EQ(paper_node_count(WorkloadKind::kHpc), 500);
  EXPECT_EQ(paper_node_count(WorkloadKind::kProjector), 100);
  EXPECT_EQ(paper_node_count(WorkloadKind::kFacebook), 10000);
  // n <= 0 selects the paper default.
  Trace t = gen_workload(WorkloadKind::kProjector, 0, 100, 1);
  EXPECT_EQ(t.n, 100);
}

TEST(Workloads, TemporalRepeatFractionTracksParameter) {
  for (double p : {0.25, 0.5, 0.75, 0.9}) {
    Trace t = gen_temporal(200, 50000, p, 9);
    TraceStats s = compute_stats(t);
    EXPECT_NEAR(s.repeat_fraction, p, 0.02) << "p=" << p;
  }
}

TEST(Workloads, UniformHasNearFullEntropy) {
  Trace t = gen_uniform(128, 100000, 10);
  TraceStats s = compute_stats(t);
  EXPECT_GT(s.src_entropy, 6.9);  // log2(128) = 7
  EXPECT_GT(s.dst_entropy, 6.9);
  EXPECT_LT(s.repeat_fraction, 0.01);
}

TEST(Workloads, LocalityOrderingAcrossFamilies) {
  // The property stack the substitution argument rests on (DESIGN.md and
  // the paper's Section 5.1): HPC has LOW temporal locality (bulk-
  // synchronous sweeps, a pair recurs once per iteration) but the most
  // structured demand matrix; ProjecToR is bursty (elephant flows) and
  // sparse; Facebook has low locality and wide heavy-tailed support.
  const std::size_t m = 50000;
  TraceStats hpc = compute_stats(gen_hpc(100, m, 3));
  TraceStats proj = compute_stats(gen_projector(100, m, 3));
  TraceStats fb = compute_stats(gen_facebook(100, m, 3));
  TraceStats uni = compute_stats(gen_uniform(100, m, 3));

  // Temporal locality is low for all three real-trace substitutes; the
  // skewed ProjecToR support gives it the highest accidental repeat rate
  // (hot pair drawn twice in a row), still far from the bursty temporal
  // workloads.
  EXPECT_LT(hpc.repeat_fraction, 0.05);
  EXPECT_LT(fb.repeat_fraction, 0.05);
  EXPECT_LT(proj.repeat_fraction, 0.4);  // far below the bursty temporal 0.75/0.9
  EXPECT_GT(proj.repeat_fraction, hpc.repeat_fraction);

  // Sparsity: ProjecToR's support is a few pairs per node; uniform covers
  // nearly every ordered pair.
  EXPECT_LT(proj.distinct_pairs, uni.distinct_pairs / 2);
  // Structure (all at n = 100): both real-trace substitutes have demand
  // matrices far more compressible than uniform; Facebook sits between.
  EXPECT_LT(hpc.pair_entropy, uni.pair_entropy - 2.0);
  EXPECT_LT(proj.pair_entropy, uni.pair_entropy - 2.0);
  EXPECT_LT(fb.pair_entropy, uni.pair_entropy);
}

TEST(Workloads, FacebookEndpointsAreSkewed) {
  Trace t = gen_facebook(1000, 100000, 4);
  TraceStats s = compute_stats(t);
  // Zipf(1.05) over 1000 ranks: entropy well below uniform log2(1000)=9.97.
  EXPECT_LT(s.src_entropy, 9.0);
  EXPECT_GT(s.src_entropy, 4.0);
}

TEST(Workloads, EntropyBoundIsFinitePositive) {
  Trace t = gen_temporal(100, 10000, 0.5, 6);
  TraceStats s = compute_stats(t);
  EXPECT_GT(s.entropy_bound, 0.0);
  // Upper bound: 2m log2(n).
  EXPECT_LT(s.entropy_bound, 2.0 * 10000 * std::log2(100.0) + 1.0);
}

TEST(Workloads, ZipfSamplerIsSkewedAndInRange) {
  ZipfSampler zipf(100, 1.2);
  std::mt19937_64 rng(8);
  std::vector<int> counts(101, 0);
  for (int i = 0; i < 100000; ++i) {
    int r = zipf(rng);
    ASSERT_GE(r, 1);
    ASSERT_LE(r, 100);
    ++counts[static_cast<size_t>(r)];
  }
  EXPECT_GT(counts[1], counts[10] * 5 / 2);  // ~ 10^1.2 = 15.8x in theory
  EXPECT_GT(counts[10], counts[100]);
}

TEST(Workloads, RejectDegenerateParameters) {
  EXPECT_THROW(gen_uniform(1, 10, 0), TreeError);
  EXPECT_THROW(gen_temporal(10, 10, 1.0, 0), TreeError);
  EXPECT_THROW(gen_temporal(10, 10, -0.1, 0), TreeError);
  EXPECT_THROW(gen_hpc(4, 10, 0), TreeError);
  EXPECT_THROW(gen_phase_elephants(10, 10, 0, 0), TreeError);
  EXPECT_THROW(gen_phase_elephants(2, 10, 4, 0), TreeError);
  EXPECT_THROW(gen_rotating_hotset(10, 10, 1, 5, 0), TreeError);
  EXPECT_THROW(gen_rotating_hotset(10, 10, 11, 5, 0), TreeError);
  EXPECT_THROW(gen_rotating_hotset(10, 10, 4, 0, 0), TreeError);
}

TEST(Workloads, PhaseElephantsDriftAcrossPhases) {
  // The communication graph must actually move: the top pairs of the first
  // phase should carry almost none of the last phase's traffic.
  const int n = 200;
  const std::size_t m = 40000;
  const int phases = 4;
  Trace t = gen_phase_elephants(n, m, phases, 17);
  const std::size_t phase_len = m / phases;

  auto top_pairs = [&](std::size_t begin, std::size_t end) {
    std::map<std::pair<NodeId, NodeId>, int> counts;
    for (std::size_t i = begin; i < end; ++i)
      ++counts[{t[i].src, t[i].dst}];
    std::vector<std::pair<int, std::pair<NodeId, NodeId>>> sorted;
    for (const auto& [pair, c] : counts) sorted.push_back({c, pair});
    std::sort(sorted.rbegin(), sorted.rend());
    sorted.resize(std::min<std::size_t>(sorted.size(), 10));
    return sorted;
  };
  const auto first = top_pairs(0, phase_len);
  const auto last = top_pairs(m - phase_len, m);
  // Each phase is heavily concentrated on its own elephants...
  EXPECT_GT(first[0].first, static_cast<int>(phase_len) / 50);
  // ...and the hot sets are (essentially) disjoint across phases.
  std::size_t shared = 0;
  for (const auto& [ca, pa] : first)
    for (const auto& [cb, pb] : last)
      if (pa == pb) ++shared;
  EXPECT_LE(shared, 1u);
}

TEST(Workloads, RotatingHotsetConcentratesThenMoves) {
  const int n = 256;
  const std::size_t m = 32000;
  const int hot = 16;
  const std::size_t rotate = 8000;
  Trace t = gen_rotating_hotset(n, m, hot, rotate, 23);

  auto hot_nodes = [&](std::size_t begin, std::size_t end) {
    std::map<NodeId, int> counts;
    for (std::size_t i = begin; i < end; ++i) {
      ++counts[t[i].src];
      ++counts[t[i].dst];
    }
    std::vector<std::pair<int, NodeId>> sorted;
    for (const auto& [node, c] : counts) sorted.push_back({c, node});
    std::sort(sorted.rbegin(), sorted.rend());
    std::set<NodeId> top;
    for (int i = 0; i < hot && i < static_cast<int>(sorted.size()); ++i)
      top.insert(sorted[static_cast<std::size_t>(i)].second);
    return top;
  };
  const std::set<NodeId> first = hot_nodes(0, rotate);
  const std::set<NodeId> second = hot_nodes(rotate, 2 * rotate);
  // Within a rotation, the hot set dominates the endpoint distribution:
  // ~92% of endpoints fall on 16 of 256 nodes.
  std::size_t first_hits = 0;
  for (std::size_t i = 0; i < rotate; ++i)
    first_hits += first.count(t[i].src) + first.count(t[i].dst);
  EXPECT_GT(first_hits, 2 * rotate * 8 / 10);
  // Across rotations the sets barely overlap (16 of 256 resampled).
  std::size_t overlap = 0;
  for (NodeId id : first) overlap += second.count(id);
  EXPECT_LT(overlap, 4u);
}

TEST(Workloads, StatsOnEmptyTrace) {
  Trace t;
  t.n = 10;
  TraceStats s = compute_stats(t);
  EXPECT_EQ(s.distinct_pairs, 0u);
  EXPECT_EQ(s.src_entropy, 0.0);
}

}  // namespace
}  // namespace san
