// Overload-control test wall for the open-loop frontend: shed-free runs
// bit-match the lossless golden, the token-bucket throttle is a
// deterministic function of the arrival schedule, deadline-expired
// requests never mutate a tree, degraded runs conserve every request
// (served + shed == offered), backpressure is visible even in the
// lossless mode, and the seeded chaos generator emits valid, replayable
// fault scripts that the frontend survives.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/fault.hpp"
#include "sim/serve_frontend.hpp"
#include "sim/simulator.hpp"
#include "workload/arrival.hpp"
#include "workload/generators.hpp"

namespace san {
namespace {

std::vector<std::uint64_t> saturation(std::size_t m) {
  return gen_arrival_times(ArrivalKind::kSaturation, 0.0, m, 0);
}

// Acceptance (ISSUE): a run in which the overload plane never fires is
// bit-identical to the lossless engine. kShed with a queue deep enough to
// hold the whole trace cannot drop anything, so at S = 1 its costs must
// bit-match closed-loop batch replay exactly like the kBlock golden.
TEST(Overload, ShedFreeRunBitMatchesBatchReplay) {
  const int n = 64;
  const std::size_t m = 3000;
  const Trace trace = gen_workload(WorkloadKind::kTemporal05, n, m, 0xBEEF);
  ShardedNetwork batch_net = ShardedNetwork::balanced(3, n, 1);
  const SimResult batch =
      run_trace_sharded(batch_net, trace, {.sequential = true});

  ShardedNetwork net = ShardedNetwork::balanced(3, n, 1);
  FrontendOptions opt;
  opt.queue_policy = QueuePolicy::kShed;
  opt.queue_capacity = m;  // nothing can ever be dropped
  ServeFrontend fe(net, opt);
  const FrontendResult live = fe.run(trace, saturation(m));

  EXPECT_EQ(live.sim.shed_requests, 0);
  EXPECT_EQ(live.shed.count(), 0u);
  EXPECT_EQ(live.sojourn.count(), m);
  EXPECT_EQ(live.sim.routing_cost, batch.routing_cost);
  EXPECT_EQ(live.sim.rotation_count, batch.rotation_count);
  EXPECT_EQ(live.sim.edge_changes, batch.edge_changes);
  EXPECT_EQ(live.sim.total_cost(), batch.total_cost());
}

// The token bucket refills from the *intended-arrival* clock. Under a
// saturation schedule that clock never advances, so exactly the initial
// burst is admitted — a fully deterministic admit/shed pattern,
// reproducible run over run.
TEST(Overload, TokenBucketIsDeterministicGivenTheSchedule) {
  const int n = 48;
  const std::size_t m = 4000;
  const Trace trace = gen_workload(WorkloadKind::kUniform, n, m, 5);
  SimResult runs[2];
  for (int i = 0; i < 2; ++i) {
    ShardedNetwork net = ShardedNetwork::balanced(2, n, 1);
    FrontendOptions opt;
    opt.admit_rate = 1e6;
    opt.admit_burst = 100.0;
    ServeFrontend fe(net, opt);
    const FrontendResult res = fe.run(trace, saturation(m));
    runs[i] = res.sim;
    EXPECT_EQ(res.sojourn.count(), 100u) << "run " << i;
    EXPECT_EQ(res.shed.count(), m - 100) << "run " << i;
  }
  EXPECT_EQ(runs[0].shed_throttled, static_cast<Cost>(m - 100));
  EXPECT_EQ(runs[0].shed_requests, runs[1].shed_requests);
  EXPECT_EQ(runs[0].shed_throttled, runs[1].shed_throttled);
  EXPECT_EQ(runs[0].routing_cost, runs[1].routing_cost);
  EXPECT_EQ(runs[0].rotation_count, runs[1].rotation_count);
}

// Acceptance (ISSUE): deadline-expired requests never mutate the tree.
// With a nanosecond budget every request is dead on arrival, so the run
// must end with zero serve cost and the shards bit-identical to their
// initial state.
TEST(Overload, DeadlineExpiredRequestsNeverTouchTheTrees) {
  const int n = 64;
  const std::size_t m = 2000;
  const Trace trace = gen_workload(WorkloadKind::kHpc, n, m, 77);
  ShardedNetwork net = ShardedNetwork::balanced(2, n, 2);
  std::vector<std::string> before;
  for (int s = 0; s < net.num_shards(); ++s)
    before.push_back(net.snapshot_shard(s));

  FrontendOptions opt;
  opt.queue_policy = QueuePolicy::kDeadline;
  opt.deadline_ms = 1e-6;  // 1 ns: dead before the dispatcher can route it
  ServeFrontend fe(net, opt);
  const FrontendResult res = fe.run(trace, saturation(m));

  EXPECT_EQ(res.sojourn.count(), 0u);
  EXPECT_EQ(res.sim.shed_requests, static_cast<Cost>(m));
  EXPECT_EQ(res.sim.deadline_expired, static_cast<Cost>(m));
  EXPECT_EQ(res.shed.count(), m);
  EXPECT_EQ(res.sim.routing_cost, 0);
  EXPECT_EQ(res.sim.rotation_count, 0);
  EXPECT_EQ(res.sim.edge_changes, 0);
  for (int s = 0; s < net.num_shards(); ++s)
    EXPECT_EQ(net.snapshot_shard(s), before[static_cast<std::size_t>(s)])
        << "shard " << s << " mutated by expired requests";
}

// Degradation conservation: under genuine overload (tiny queues, tiny
// mailboxes, aggressive breaker, saturation arrivals) every offered
// request is either served or accounted shed — nothing lost, nothing
// double-counted — and the shards stay structurally valid.
TEST(Overload, ShedUnderOverloadConservesEveryRequest) {
  const int n = 96;
  const std::size_t m = 20000;
  const Trace trace = gen_workload(WorkloadKind::kUniform, n, m, 42);
  ShardedNetwork net = ShardedNetwork::balanced(2, n, 4);
  FrontendOptions opt;
  opt.queue_policy = QueuePolicy::kShed;
  opt.queue_capacity = 16;
  opt.mailbox_capacity = 8;
  opt.handover_retries = 1;
  opt.breaker_threshold = 2;
  ServeFrontend fe(net, opt);
  const FrontendResult res = fe.run(trace, saturation(m));

  EXPECT_EQ(res.sim.requests, m);
  EXPECT_EQ(res.sojourn.count() + static_cast<std::size_t>(
                                      res.sim.shed_requests),
            m);
  EXPECT_EQ(res.shed.count(),
            static_cast<std::size_t>(res.sim.shed_requests));
  EXPECT_EQ(res.sim.shed_requests,
            res.sim.shed_queue_full + res.sim.shed_throttled +
                res.sim.deadline_expired + res.sim.cross_shed);
  EXPECT_GE(res.sim.queue_full_blocks, res.sim.shed_queue_full);
  for (int s = 0; s < net.num_shards(); ++s) {
    const auto err = net.shard(s).tree().validate();
    ASSERT_FALSE(err.has_value()) << "shard " << s << ": " << *err;
  }
}

// The lossless mode is no longer silent about saturation: a full main
// queue still blocks the dispatcher, but every such stall now lands in
// queue_full_blocks.
TEST(Overload, BlockModeCountsFullQueueStalls) {
  const int n = 48;
  const std::size_t m = 2000;
  const Trace trace = gen_workload(WorkloadKind::kTemporal09, n, m, 3);
  ShardedNetwork net = ShardedNetwork::balanced(2, n, 1);
  FrontendOptions opt;
  opt.queue_capacity = 1;
  opt.admission_batch = 1;
  ServeFrontend fe(net, opt);
  const FrontendResult res = fe.run(trace, saturation(m));
  EXPECT_EQ(res.sojourn.count(), m);  // still lossless
  EXPECT_EQ(res.sim.shed_requests, 0);
  EXPECT_GT(res.sim.queue_full_blocks, 0);
}

// Scripted queue pressure under the shed policy: the collapsed inbox
// window may drop requests, but conservation and tree validity hold, and
// the event is counted.
TEST(Overload, QueuePressureWindowDegradesGracefully) {
  const int n = 64;
  const std::size_t m = 8000;
  const Trace trace = gen_workload(WorkloadKind::kTemporal05, n, m, 9);
  FaultPlan plan;
  plan.kills = {{1000, 0, FaultKind::kQueuePressure}};
  ShardedNetwork net = ShardedNetwork::balanced(2, n, 2);
  FrontendOptions opt;
  opt.queue_policy = QueuePolicy::kShed;
  opt.queue_capacity = 64;
  opt.faults = &plan;
  ServeFrontend fe(net, opt);
  const FrontendResult res = fe.run(trace, saturation(m));
  EXPECT_EQ(res.sim.queue_pressure_events, 1);
  EXPECT_EQ(res.sojourn.count() + static_cast<std::size_t>(
                                      res.sim.shed_requests),
            m);
  for (int s = 0; s < net.num_shards(); ++s) {
    const auto err = net.shard(s).tree().validate();
    ASSERT_FALSE(err.has_value()) << "shard " << s << ": " << *err;
  }
}

// Option validation of the overload plane.
TEST(Overload, RejectsBadOverloadOptions) {
  ShardedNetwork net = ShardedNetwork::balanced(2, 32, 2);
  {
    FrontendOptions opt;
    opt.queue_policy = QueuePolicy::kDeadline;  // no deadline_ms
    EXPECT_THROW(ServeFrontend(net, opt), TreeError);
  }
  {
    FrontendOptions opt;
    opt.deadline_ms = 5.0;  // deadline without the deadline policy
    EXPECT_THROW(ServeFrontend(net, opt), TreeError);
  }
  {
    FrontendOptions opt;
    opt.admit_rate = -1.0;
    EXPECT_THROW(ServeFrontend(net, opt), TreeError);
  }
  {
    FrontendOptions opt;
    opt.handover_retries = -1;
    EXPECT_THROW(ServeFrontend(net, opt), TreeError);
  }
  {
    FrontendOptions opt;
    opt.breaker_threshold = 0;
    EXPECT_THROW(ServeFrontend(net, opt), TreeError);
  }
}

TEST(Overload, QueuePolicyNames) {
  EXPECT_STREQ(queue_policy_name(QueuePolicy::kBlock), "block");
  EXPECT_STREQ(queue_policy_name(QueuePolicy::kShed), "shed");
  EXPECT_STREQ(queue_policy_name(QueuePolicy::kDeadline), "deadline");
}

// ---- chaos mode --------------------------------------------------------

// The chaos generator is a pure function of (seed, shards, m): same
// inputs, same plan; the plan is always valid, in range, and mixes kinds.
TEST(Chaos, GeneratorIsDeterministicAndValid) {
  for (std::uint64_t seed : {0ull, 1ull, 42ull, 0xDEADBEEFull}) {
    const FaultPlan a = gen_chaos_plan(seed, 4, 10000);
    const FaultPlan b = gen_chaos_plan(seed, 4, 10000);
    ASSERT_EQ(a.kills.size(), b.kills.size()) << "seed " << seed;
    for (std::size_t i = 0; i < a.kills.size(); ++i)
      EXPECT_EQ(a.kills[i], b.kills[i]) << "seed " << seed << " event " << i;
    EXPECT_NO_THROW(a.validate());
    EXPECT_GE(a.kills.size(), 2u);
    EXPECT_LE(a.kills.size(), 6u);
    for (const FaultEvent& ev : a.kills) {
      EXPECT_GT(ev.at_request, 0u);
      EXPECT_LT(ev.at_request, 10000u);
      EXPECT_GE(ev.shard, 0);
      EXPECT_LT(ev.shard, 4);
    }
  }
  // Different inputs produce different scripts (any one differing event
  // suffices; identical plans across all of these would be astonishing).
  const FaultPlan p1 = gen_chaos_plan(1, 4, 10000);
  const FaultPlan p2 = gen_chaos_plan(2, 4, 10000);
  const FaultPlan p3 = gen_chaos_plan(1, 8, 10000);
  EXPECT_TRUE(p1.kills != p2.kills || p1.kills != p3.kills);
  EXPECT_THROW(gen_chaos_plan(7, 0, 100), TreeError);
  EXPECT_THROW(gen_chaos_plan(7, 2, 1), TreeError);
}

// A chaos script drives the full frontend recovery machinery and the run
// still conserves every request under the lossless policy.
TEST(Chaos, FrontendSurvivesChaosPlans) {
  const int n = 96, S = 3;
  const std::size_t m = 9000;
  const Trace trace = gen_workload(WorkloadKind::kPhaseElephants, n, m, 21);
  for (std::uint64_t seed : {3ull, 11ull}) {
    const FaultPlan plan = gen_chaos_plan(seed, S, m);
    ShardedNetwork net = ShardedNetwork::balanced(2, n, S);
    FrontendOptions opt;
    opt.faults = &plan;
    ServeFrontend fe(net, opt);
    const FrontendResult res = fe.run(trace, saturation(m));
    EXPECT_EQ(res.sojourn.count(), m) << "seed " << seed;
    EXPECT_EQ(res.sim.shed_requests, 0) << "seed " << seed;
    EXPECT_EQ(res.sim.faults_injected + res.sim.worker_kills +
                  res.sim.queue_pressure_events,
              static_cast<Cost>(plan.kills.size()))
        << "seed " << seed;
    for (int s = 0; s < net.num_shards(); ++s) {
      const auto err = net.shard(s).tree().validate();
      ASSERT_FALSE(err.has_value())
          << "seed " << seed << " shard " << s << ": " << *err;
    }
  }
}

// CLI fault scripts accept kind prefixes and reject unknown kinds.
TEST(Chaos, ParseFaultPlanKindPrefixes) {
  const FaultPlan plan = parse_fault_plan("50@2,w:60@0,q:80@1,k:90@3");
  ASSERT_EQ(plan.kills.size(), 4u);
  EXPECT_EQ(plan.kills[0].kind, FaultKind::kShardKill);
  EXPECT_EQ(plan.kills[1].kind, FaultKind::kWorkerKill);
  EXPECT_EQ(plan.kills[2].kind, FaultKind::kQueuePressure);
  EXPECT_EQ(plan.kills[3].kind, FaultKind::kShardKill);
  EXPECT_EQ(plan.kills[1].at_request, 60u);
  EXPECT_EQ(plan.kills[1].shard, 0);
  EXPECT_THROW(parse_fault_plan("x:50@2"), TreeError);
  EXPECT_THROW(parse_fault_plan("w:"), TreeError);
}

}  // namespace
}  // namespace san
