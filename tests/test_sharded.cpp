// Sharded serving engine: S=1 degeneration to the unsharded network,
// bit-identical concurrent vs sequential pipeline, pipeline vs per-request
// serve agreement, and the cross-shard cost model.
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"
#include "workload/generators.hpp"

namespace san {
namespace {

void expect_same(const SimResult& a, const SimResult& b,
                 const std::string& what) {
  EXPECT_EQ(a.routing_cost, b.routing_cost) << what;
  EXPECT_EQ(a.rotation_count, b.rotation_count) << what;
  EXPECT_EQ(a.edge_changes, b.edge_changes) << what;
  EXPECT_EQ(a.cross_shard, b.cross_shard) << what;
  EXPECT_EQ(a.requests, b.requests) << what;
}

// Acceptance: S=1 must produce bit-identical SimResults to the unsharded
// KArySplayNetwork on every golden workload (same balanced initial tree,
// same serve path, identity local mapping).
TEST(Sharded, SingleShardMatchesUnshardedOnEveryWorkload) {
  const int n = 32;
  const std::size_t m = 500;
  for (WorkloadKind kind :
       {WorkloadKind::kUniform, WorkloadKind::kTemporal025,
        WorkloadKind::kTemporal05, WorkloadKind::kTemporal075,
        WorkloadKind::kTemporal09, WorkloadKind::kHpc,
        WorkloadKind::kProjector, WorkloadKind::kFacebook}) {
    const Trace trace = gen_workload(kind, n, m, 0xC0FFEE);
    for (int k : {2, 3, 5}) {
      KArySplayNetwork plain(KArySplayNet::balanced(k, n));
      const SimResult reference = run_trace(plain, trace);

      ShardedNetwork via_serve = ShardedNetwork::balanced(k, n, 1);
      const SimResult served = run_trace(via_serve, trace);
      expect_same(served, reference,
                  std::string(workload_name(kind)) + " k=" +
                      std::to_string(k) + " serve path");
      EXPECT_EQ(served.cross_shard, 0);

      ShardedNetwork via_pipeline = ShardedNetwork::balanced(k, n, 1);
      const SimResult piped = run_trace_sharded(via_pipeline, trace);
      expect_same(piped, reference,
                  std::string(workload_name(kind)) + " k=" +
                      std::to_string(k) + " pipeline");
    }
  }
}

// Acceptance: the concurrent drain must be bit-identical to the sequential
// reference mode across 3 seeds x S in {2, 4, 8}.
TEST(Sharded, ConcurrentPipelineMatchesSequential) {
  const int n = 96;
  for (std::uint64_t seed : {7u, 21u, 1023u}) {
    const Trace trace = gen_workload(WorkloadKind::kTemporal05, n, 4000, seed);
    for (int S : {2, 4, 8}) {
      for (ShardPartition policy :
           {ShardPartition::kContiguous, ShardPartition::kHash}) {
        ShardedNetwork seq = ShardedNetwork::balanced(3, n, S, policy);
        ShardedNetwork conc = ShardedNetwork::balanced(3, n, S, policy);
        const SimResult a =
            run_trace_sharded(seq, trace, {.threads = 0, .sequential = true});
        const SimResult b =
            run_trace_sharded(conc, trace, {.threads = 4, .sequential = false});
        expect_same(a, b,
                    "seed=" + std::to_string(seed) + " S=" +
                        std::to_string(S) + " " +
                        shard_partition_name(policy));
        EXPECT_GT(b.cross_shard, 0);
      }
    }
  }
}

// The pipeline and the per-request serve() path are two routes to the same
// cost: per-shard op order is the arrival-order projection either way.
TEST(Sharded, PipelineMatchesPerRequestServe) {
  const int n = 64;
  const Trace trace = gen_workload(WorkloadKind::kProjector, n, 3000, 42);
  for (int S : {2, 5, 8}) {
    ShardedNetwork by_serve = ShardedNetwork::balanced(2, n, S);
    ShardedNetwork by_pipeline = ShardedNetwork::balanced(2, n, S);
    const SimResult a = run_trace(by_serve, trace);
    const SimResult b = run_trace_sharded(by_pipeline, trace);
    expect_same(a, b, "S=" + std::to_string(S));
    // Final topologies agree shard by shard: same rotations in same order.
    for (int s = 0; s < S; ++s) {
      const KAryTree& ta = by_serve.shard(s).tree();
      const KAryTree& tb = by_pipeline.shard(s).tree();
      ASSERT_EQ(ta.size(), tb.size());
      for (NodeId id = 1; id <= ta.size(); ++id) {
        EXPECT_EQ(ta.parent(id), tb.parent(id)) << "S=" << S << " s=" << s;
        EXPECT_EQ(ta.depth(id), tb.depth(id));
      }
    }
  }
}

// Cross-shard cost decomposition on a hand-checkable instance.
TEST(Sharded, CrossShardCostModel) {
  const int n = 12, S = 2;
  ShardedNetwork net = ShardedNetwork::balanced(2, n, S);
  // Contiguous split: shard 0 = {1..6}, shard 1 = {7..12}.
  ASSERT_EQ(net.map().shard_of(1), 0);
  ASSERT_EQ(net.map().shard_of(12), 1);
  ASSERT_EQ(net.top_distance(0, 1), 1);  // 2-node top tree, one edge
  ASSERT_EQ(net.top_distance(0, 0), 0);

  const NodeId u = 2, v = 11;
  const Cost du = net.shard(0).tree().depth(net.map().local_of(u));
  const Cost dv = net.shard(1).tree().depth(net.map().local_of(v));
  const ServeResult s = net.serve(u, v);
  EXPECT_EQ(s.routing_cost, du + 1 + dv);
  EXPECT_EQ(net.cross_shard_served(), 1);
  // Both endpoints were splayed to their shard roots.
  EXPECT_EQ(net.shard(0).tree().root(), net.map().local_of(u));
  EXPECT_EQ(net.shard(1).tree().root(), net.map().local_of(v));
  // A repeat of the same request is now pure top-level routing.
  const ServeResult again = net.serve(u, v);
  EXPECT_EQ(again.routing_cost, 1);
  EXPECT_EQ(again.rotations, 0);

  // Intra-shard requests never touch the counter and keep k-ary semantics.
  const ServeResult intra = net.serve(3, 4);
  EXPECT_GT(intra.routing_cost, 0);
  EXPECT_EQ(net.cross_shard_served(), 2);
}

// Shard containment: serving never moves a node across shards, and every
// shard stays a valid search tree under heavy mixed traffic.
TEST(Sharded, ShardsStayValidAndDisjoint) {
  const int n = 80;
  const Trace trace = gen_workload(WorkloadKind::kUniform, n, 5000, 3);
  for (ShardPartition policy :
       {ShardPartition::kContiguous, ShardPartition::kHash}) {
    ShardedNetwork net = ShardedNetwork::balanced(3, n, 6, policy);
    run_trace(net, trace);
    int total = 0;
    for (int s = 0; s < net.num_shards(); ++s) {
      EXPECT_TRUE(net.shard(s).tree().valid())
          << shard_partition_name(policy) << " shard " << s;
      total += net.shard(s).size();
    }
    EXPECT_EQ(total, n);
  }
}

// AnyNetwork integration: the sharded engine rides the same variant
// dispatch as every other topology.
TEST(Sharded, ServesThroughAnyNetwork) {
  const Trace trace = gen_workload(WorkloadKind::kHpc, 60, 1500, 8);
  AnyNetwork any = ShardedNetwork::balanced(3, 60, 4);
  EXPECT_EQ(any.name(), "sharded[4,contiguous] 3-ary SplayNet");
  EXPECT_EQ(any.size(), 60);
  const SimResult via_any = run_trace(any, trace);

  ShardedNetwork direct = ShardedNetwork::balanced(3, 60, 4);
  const SimResult via_direct = run_trace(direct, trace);
  expect_same(via_any, via_direct, "AnyNetwork vs direct");
  EXPECT_GT(via_any.cross_shard, 0);
  EXPECT_NE(any.get_if<ShardedNetwork>(), nullptr);
  EXPECT_EQ(any.get_if<BinarySplayNetwork>(), nullptr);
}

}  // namespace
}  // namespace san
