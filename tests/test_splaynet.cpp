// KArySplayNet behaviour: the online network must preserve the search
// property, node identifiers, the saturation invariant, and the node set
// across arbitrary serve sequences; repeated requests must become cheap
// (distance 1); access mode must satisfy the Theorem 12 entropy bound up to
// a constant; and depth must stay logarithmic under uniform load.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <random>

#include "core/splaynet.hpp"
#include "workload/generators.hpp"

namespace san {
namespace {

class SplayNetPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SplayNetPropertyTest, ServePreservesInvariants) {
  const int k = GetParam();
  const int n = 120;
  KArySplayNet net = KArySplayNet::balanced(k, n);
  std::mt19937_64 rng(99 + k);
  for (int step = 0; step < 500; ++step) {
    NodeId u = 1 + static_cast<NodeId>(rng() % n);
    NodeId v = 1 + static_cast<NodeId>(rng() % n);
    if (u == v) continue;
    const ServeResult r = net.serve(u, v);
    EXPECT_GE(r.routing_cost, 1);
    if (step % 50 == 0) {
      auto err = net.tree().validate();
      ASSERT_FALSE(err.has_value()) << "k=" << k << " step " << step << ": "
                                    << *err;
    }
  }
  auto err = net.tree().validate();
  ASSERT_FALSE(err.has_value()) << *err;
  // Saturation: every node still holds exactly k-1 routing keys.
  for (NodeId id = 1; id <= n; ++id)
    EXPECT_EQ(net.tree().node(id).keys.size(), static_cast<size_t>(k - 1))
        << "node " << id;
}

TEST_P(SplayNetPropertyTest, ServeBringsEndpointsAdjacent) {
  const int k = GetParam();
  const int n = 100;
  KArySplayNet net = KArySplayNet::balanced(k, n);
  std::mt19937_64 rng(7 * k);
  for (int step = 0; step < 200; ++step) {
    NodeId u = 1 + static_cast<NodeId>(rng() % n);
    NodeId v = 1 + static_cast<NodeId>(rng() % n);
    if (u == v) continue;
    net.serve(u, v);
    // After the double splay u and v are adjacent: repeating the request
    // costs exactly one hop and performs no rotations.
    const ServeResult again = net.serve(u, v);
    EXPECT_EQ(again.routing_cost, 1) << "k=" << k;
    EXPECT_EQ(again.rotations, 0) << "k=" << k;
  }
}

TEST_P(SplayNetPropertyTest, SelfRequestIsFree) {
  const int k = GetParam();
  KArySplayNet net = KArySplayNet::balanced(k, 50);
  const ServeResult r = net.serve(17, 17);
  EXPECT_EQ(r.routing_cost, 0);
  EXPECT_EQ(r.rotations, 0);
}

TEST_P(SplayNetPropertyTest, AccessMovesNodeToRoot) {
  const int k = GetParam();
  const int n = 80;
  KArySplayNet net = KArySplayNet::balanced(k, n);
  std::mt19937_64 rng(13 * k);
  for (int step = 0; step < 100; ++step) {
    NodeId x = 1 + static_cast<NodeId>(rng() % n);
    const int depth_before = net.tree().depth(x);
    const ServeResult r = net.access(x);
    EXPECT_EQ(r.routing_cost, depth_before);
    EXPECT_EQ(net.tree().root(), x);
  }
  EXPECT_TRUE(net.tree().valid());
}

TEST_P(SplayNetPropertyTest, UniformLoadKeepsDepthLogarithmic) {
  const int k = GetParam();
  const int n = 512;
  KArySplayNet net = KArySplayNet::balanced(k, n);
  Trace trace = gen_uniform(n, 20000, 21);
  for (const Request& r : trace.requests) net.serve(r.src, r.dst);
  double depth_sum = 0;
  for (NodeId id = 1; id <= n; ++id) depth_sum += net.tree().depth(id);
  const double avg_depth = depth_sum / n;
  // Generous bound: a few multiples of log_k n (splay trees are loose but
  // never linear). Degeneration to chains would give ~n/2 = 256.
  const double logk = std::log(n) / std::log(k);
  EXPECT_LT(avg_depth, 6.0 * logk + 8.0) << "k=" << k;
}

TEST_P(SplayNetPropertyTest, HigherLocalityLowersCost) {
  const int k = GetParam();
  const int n = 256;
  auto total_cost = [&](double p) {
    KArySplayNet net = KArySplayNet::balanced(k, n);
    Trace t = gen_temporal(n, 20000, p, 5);
    Cost c = 0;
    for (const Request& r : t.requests)
      c += net.serve(r.src, r.dst).routing_cost;
    return c;
  };
  EXPECT_LT(total_cost(0.9), total_cost(0.5));
  EXPECT_LT(total_cost(0.5), total_cost(0.0));
}

INSTANTIATE_TEST_SUITE_P(Arity, SplayNetPropertyTest, ::testing::Range(2, 11),
                         [](const auto& info) {
                           return "k" + std::to_string(info.param);
                         });

TEST(SplayNet, RejectsInvalidInitialTopology) {
  KAryTree t(3, 4);  // no root installed
  EXPECT_THROW(KArySplayNet net(std::move(t)), TreeError);
}

TEST(SplayNet, StaticOptimalityEntropyBound) {
  // Theorem 12: total access cost is O(m + sum_x n_x log(m / n_x)). Run a
  // heavily skewed access sequence and check the measured cost against the
  // entropy bound with a single constant for all arities.
  const int n = 256;
  std::mt19937_64 rng(3);
  for (int k : {2, 3, 5, 8}) {
    KArySplayNet net = KArySplayNet::balanced(k, n);
    std::vector<std::size_t> counts(static_cast<size_t>(n) + 1, 0);
    const std::size_t m = 40000;
    Cost total = 0;
    for (std::size_t i = 0; i < m; ++i) {
      // Zipf-flavoured skew: node 1 + floor(n * u^3).
      const double u = std::uniform_real_distribution<double>(0, 1)(rng);
      NodeId x = 1 + static_cast<NodeId>(
                         std::min<double>(n - 1, n * u * u * u));
      ++counts[static_cast<size_t>(x)];
      total += net.access(x).routing_cost;
    }
    double bound = static_cast<double>(m);
    for (NodeId x = 1; x <= n; ++x) {
      if (counts[static_cast<size_t>(x)] == 0) continue;
      const double nx = static_cast<double>(counts[static_cast<size_t>(x)]);
      bound += nx * std::log2(static_cast<double>(m) / nx);
    }
    EXPECT_LT(static_cast<double>(total), 3.0 * bound) << "k=" << k;
  }
}

TEST(SplayNet, ServingAncestorDescendantPairs) {
  // u ancestor of v and vice versa are the boundary paths of the LCA logic.
  KArySplayNet net = KArySplayNet::balanced(3, 64);
  const NodeId root = net.tree().root();
  NodeId deep = root;
  for (NodeId id = 1; id <= 64; ++id)
    if (net.tree().depth(id) > net.tree().depth(deep)) deep = id;
  const int d = net.tree().distance(root, deep);
  ServeResult r = net.serve(root, deep);
  EXPECT_EQ(r.routing_cost, d);
  EXPECT_TRUE(net.tree().valid());
  EXPECT_EQ(net.tree().distance(root, deep), 1);
  r = net.serve(deep, root);
  EXPECT_EQ(r.routing_cost, 1);
  EXPECT_TRUE(net.tree().valid());
}

TEST(SplayNet, EdgeChangeAccountingIsConsistent) {
  KArySplayNet net = KArySplayNet::balanced(4, 200);
  std::mt19937_64 rng(17);
  for (int step = 0; step < 200; ++step) {
    NodeId u = 1 + static_cast<NodeId>(rng() % 200);
    NodeId v = 1 + static_cast<NodeId>(rng() % 200);
    if (u == v) continue;
    const ServeResult r = net.serve(u, v);
    // Every rotation changes at least one parent; each parent change adds
    // at most two link operations.
    EXPECT_LE(r.parent_changes, r.edge_changes);
    EXPECT_LE(r.edge_changes, 2 * r.parent_changes);
    if (r.rotations > 0) {
      EXPECT_GT(r.parent_changes, 0);
    }
  }
}

}  // namespace
}  // namespace san
