// Trace / tree serialization round-trips and failure injection.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "core/rotation.hpp"
#include "core/shape.hpp"
#include "io/trace_io.hpp"
#include "io/tree_io.hpp"
#include "workload/generators.hpp"

namespace san {
namespace {

TEST(TraceIo, RoundTrip) {
  Trace t = gen_projector(40, 500, 7);
  std::stringstream buf;
  write_trace(buf, t);
  Trace back = read_trace(buf);
  EXPECT_EQ(back.n, t.n);
  EXPECT_EQ(back.requests, t.requests);
}

TEST(TraceIo, CommentsAndBlankLinesAreSkipped) {
  std::stringstream buf(
      "san-trace v1 5 2\n# a comment\n\n1 2\n# another\n3 4\n");
  Trace t = read_trace(buf);
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t.requests[0], (Request{1, 2}));
  EXPECT_EQ(t.requests[1], (Request{3, 4}));
}

TEST(TraceIo, RejectsMalformedInput) {
  auto reject = [](const std::string& text) {
    std::stringstream buf(text);
    EXPECT_THROW(read_trace(buf), TreeError) << text;
  };
  reject("bogus v1 5 1\n1 2\n");
  reject("san-trace v2 5 1\n1 2\n");
  reject("san-trace v1 5 2\n1 2\n");          // truncated
  reject("san-trace v1 5 1\n0 2\n");          // id out of range
  reject("san-trace v1 5 1\n1 6\n");          // id out of range
  reject("san-trace v1 5 1\n3 3\n");          // self-loop
  reject("san-trace v1 1 0\n");               // degenerate n
  reject("san-trace v1 5 1\nfoo bar\n");      // garbage
  reject("san-trace v1 5 1\n1 2 junk\n");     // trailing garbage
  reject("san-trace v1 5 1\n1 2 3\n");        // extra numeric field
}

TEST(TraceIo, RejectsHostileHeaderCounts) {
  auto reject = [](const std::string& text) {
    std::stringstream buf(text);
    EXPECT_THROW(read_trace(buf), TreeError) << text;
  };
  // Negative counts must not wrap into huge unsigned values.
  reject("san-trace v1 -4 1\n1 2\n");
  reject("san-trace v1 5 -1\n1 2\n");
  // n beyond the NodeId range would overflow every downstream id array.
  reject("san-trace v1 4294967296 1\n1 2\n");
  // A header claiming far more requests than the body holds must fail on
  // the truncation check, not OOM on reserve().
  reject("san-trace v1 5 123456789012\n1 2\n");
}

TEST(TraceIo, HugeReserveHintDoesNotPreallocate) {
  // The reserve cap: parsing starts (and fails on truncation) without
  // first attempting an m-sized allocation.
  std::stringstream buf("san-trace v1 5 99999999999999\n1 2\n3 4\n");
  try {
    read_trace(buf);
    FAIL() << "expected TreeError";
  } catch (const TreeError& e) {
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos);
  }
}

TEST(TraceIo, FileRoundTrip) {
  Trace t = gen_uniform(16, 100, 1);
  const std::string path = ::testing::TempDir() + "/trace_roundtrip.txt";
  write_trace_file(path, t);
  Trace back = read_trace_file(path);
  EXPECT_EQ(back.requests, t.requests);
  EXPECT_THROW(read_trace_file(path + ".does-not-exist"), TreeError);
}

TEST(TreeIo, RoundTripPreservesTopology) {
  for (int k : {2, 3, 7}) {
    KAryTree t = build_from_shape(k, make_complete_shape(60, k));
    // scramble it a little so the file is not the pristine shape
    std::mt19937_64 rng(k);
    for (int i = 0; i < 50; ++i) {
      NodeId x = 1 + static_cast<NodeId>(rng() % 60);
      if (t.node(x).parent != kNoNode) k_semi_splay(t, x);
    }
    std::stringstream buf;
    write_tree(buf, t);
    KAryTree back = read_tree(buf);
    ASSERT_TRUE(back.valid());
    EXPECT_EQ(back.arity(), t.arity());
    EXPECT_EQ(back.size(), t.size());
    EXPECT_EQ(back.root(), t.root());
    for (NodeId id = 1; id <= 60; ++id) {
      EXPECT_EQ(back.node(id).parent, t.node(id).parent);
      EXPECT_TRUE(std::ranges::equal(back.node(id).keys, t.node(id).keys));
      EXPECT_TRUE(
          std::ranges::equal(back.node(id).children, t.node(id).children));
    }
  }
}

TEST(TreeIo, LoadedTreeIsValidated) {
  // A file describing a broken topology (node 2 unreachable) must be
  // rejected even though every record parses.
  std::stringstream buf(
      "san-tree v1 2 2 1\n"
      "1 min max 1 2097152 0 0\n"   // node 1, key id_key(1), no children
      "2 min max 1 4194304 0 0\n");  // node 2 detached
  EXPECT_THROW(read_tree(buf), TreeError);
}

TEST(TreeIo, RejectsBadHeader) {
  std::stringstream buf("san-tree v9 2 2 1\n");
  EXPECT_THROW(read_tree(buf), TreeError);
}

TEST(TreeIo, RejectsHostileHeaderClaims) {
  // Every header field is bounded before any allocation happens on its
  // word: a snapshot restore feeds these bytes straight into read_tree, so
  // a corrupt or hostile file must fail with a TreeError, never an OOM or
  // a bad_alloc from a forged size.
  const char* hostile[] = {
      "san-tree v1 1 4 1\n",                    // arity below 2
      "san-tree v1 -3 4 1\n",                   // negative arity
      "san-tree v1 99999999 4 1\n",             // arity bomb
      "san-tree v1 2 -1 1\n",                   // negative node count
      "san-tree v1 2 999999999999 1\n",         // node-count bomb
      "san-tree v1 2 4 0\n",                    // root below range
      "san-tree v1 2 4 5\n",                    // root above range
      "san-tree v1 2 0 1\n",                    // empty tree must have no root
  };
  for (const char* bytes : hostile) {
    std::stringstream buf(bytes);
    EXPECT_THROW(read_tree(buf), TreeError) << "accepted: " << bytes;
  }
}

TEST(TreeIo, RejectsForgedNodeRecords) {
  // Node id out of range.
  {
    std::stringstream buf("san-tree v1 2 1 1\n9 min max 0 0 0\n");
    EXPECT_THROW(read_tree(buf), TreeError);
  }
  // Duplicate node id: the second record for node 1 must be rejected
  // instead of silently overwriting the first.
  {
    std::stringstream buf(
        "san-tree v1 2 2 1\n"
        "1 min max 1 2097152 2 0\n"
        "1 min max 0 0 0\n");
    EXPECT_THROW(read_tree(buf), TreeError);
  }
  // Forged key count: a node may route over at most arity-1 keys, and the
  // claim is checked before the key vector is allocated.
  {
    std::stringstream buf("san-tree v1 2 1 1\n1 min max 777777777 0 0\n");
    EXPECT_THROW(read_tree(buf), TreeError);
  }
  // Malformed routing key bytes surface as TreeError, not std::stoll's
  // invalid_argument.
  {
    std::stringstream buf("san-tree v1 2 1 1\n1 min max 0 0\n");
    std::stringstream bad("san-tree v1 2 1 1\n1 min garbage 0 0\n");
    EXPECT_NO_THROW(read_tree(buf));
    EXPECT_THROW(read_tree(bad), TreeError);
  }
  // Child id out of range.
  {
    std::stringstream buf("san-tree v1 2 1 1\n1 min max 0 7\n");
    EXPECT_THROW(read_tree(buf), TreeError);
  }
  // Truncated mid-record.
  {
    std::stringstream buf("san-tree v1 2 2 1\n1 min max 1 2097152\n");
    EXPECT_THROW(read_tree(buf), TreeError);
  }
}

TEST(TreeIo, DotExportMentionsEveryNodeAndEdge) {
  KAryTree t = build_from_shape(3, make_complete_shape(13, 3));
  const std::string dot = to_dot(t, "g");
  EXPECT_NE(dot.find("digraph g {"), std::string::npos);
  int edges = 0;
  for (NodeId id = 1; id <= 13; ++id) {
    EXPECT_NE(dot.find("n" + std::to_string(id) + " ["), std::string::npos);
    for (NodeId c : t.node(id).children)
      if (c != kNoNode) ++edges;
  }
  EXPECT_EQ(edges, 12);  // n-1 tree edges
  size_t arrow_count = 0;
  for (size_t pos = dot.find("->"); pos != std::string::npos;
       pos = dot.find("->", pos + 1))
    ++arrow_count;
  EXPECT_EQ(arrow_count, 12u);
}

}  // namespace
}  // namespace san
