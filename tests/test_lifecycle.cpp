// Tablet-style shard lifecycle test wall: split/merge round-trips to
// identity, crash recovery rebuilds bit-identical state (snapshot + tail
// replay, and replica promotion), sequential == concurrent with lifecycle
// events active, replica reads never change golden costs, watermark
// triggers fire on the loads they watch, and shard stats stay keyed to the
// live fleet after mid-run reshapes.
#include <gtest/gtest.h>

#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "io/trace_v2.hpp"
#include "sim/serve_frontend.hpp"
#include "sim/simulator.hpp"
#include "workload/arrival.hpp"
#include "workload/generators.hpp"
#include "workload/rebalance.hpp"

namespace san {
namespace {

void expect_same_costs(const SimResult& a, const SimResult& b,
                       const std::string& what) {
  EXPECT_EQ(a.routing_cost, b.routing_cost) << what;
  EXPECT_EQ(a.rotation_count, b.rotation_count) << what;
  EXPECT_EQ(a.edge_changes, b.edge_changes) << what;
  EXPECT_EQ(a.cross_shard, b.cross_shard) << what;
  EXPECT_EQ(a.requests, b.requests) << what;
}

void expect_trees_equal(const ShardedNetwork& a, const ShardedNetwork& b,
                        const std::string& what) {
  ASSERT_EQ(a.num_shards(), b.num_shards()) << what;
  for (int s = 0; s < a.num_shards(); ++s) {
    const KAryTree& ta = a.shard(s).tree();
    const KAryTree& tb = b.shard(s).tree();
    ASSERT_EQ(ta.size(), tb.size()) << what << " shard " << s;
    ASSERT_EQ(ta.root(), tb.root()) << what << " shard " << s;
    for (NodeId id = 1; id <= ta.size(); ++id) {
      ASSERT_EQ(ta.parent(id), tb.parent(id))
          << what << " shard " << s << " local " << id;
      ASSERT_EQ(ta.slot_in_parent(id), tb.slot_in_parent(id))
          << what << " shard " << s << " local " << id;
    }
  }
}

// ---- split / merge ----------------------------------------------------

TEST(Lifecycle, MapSplitMergeRoundTripIsIdentity) {
  for (const auto& [n, S] : {std::pair{30, 3}, {128, 4}, {257, 8}}) {
    for (ShardPartition policy :
         {ShardPartition::kContiguous, ShardPartition::kHash}) {
      const ShardMap original(n, S, policy);
      for (int s = 0; s < S; ++s) {
        if (original.shard_size(s) < 2) continue;
        ShardMap map = original;
        const int fresh = map.split(s);
        EXPECT_EQ(fresh, S);
        EXPECT_EQ(map.shards(), S + 1);
        // Balanced halves: sizes differ by at most one, ranks preserved.
        EXPECT_LE(std::abs(map.shard_size(s) - map.shard_size(fresh)), 1);
        EXPECT_EQ(map.shard_size(s) + map.shard_size(fresh),
                  original.shard_size(s));
        const int back = map.merge(s, fresh);
        EXPECT_EQ(back, s);
        ASSERT_EQ(map.shards(), S);
        for (NodeId id = 1; id <= n; ++id) {
          ASSERT_EQ(map.shard_of(id), original.shard_of(id))
              << "n=" << n << " split shard " << s << " node " << id;
          ASSERT_EQ(map.local_of(id), original.local_of(id))
              << "n=" << n << " split shard " << s << " node " << id;
        }
      }
    }
  }
}

TEST(Lifecycle, EngineSplitMergeRoundTripIsIdentity) {
  // A fresh engine's shards are balanced; split rebuilds both halves
  // balanced and merge rebuilds the reunion balanced, so split followed by
  // merge must reproduce the engine exactly — map, trees, and the costs of
  // any trace replayed afterwards.
  const int n = 96, S = 4, k = 3;
  ShardedNetwork net = ShardedNetwork::balanced(k, n, S);
  const ShardedNetwork reference = ShardedNetwork::balanced(k, n, S);

  const LifecycleResult split = net.split_shard(1);
  EXPECT_EQ(split.shard, S);
  EXPECT_EQ(net.num_shards(), S + 1);
  EXPECT_GT(split.top_edges, 0);
  const LifecycleResult merged = net.merge_shards(1, split.shard);
  EXPECT_EQ(merged.shard, 1);
  ASSERT_EQ(net.num_shards(), S);

  expect_trees_equal(net, reference, "split-merge round trip");
  const Trace probe = gen_workload(WorkloadKind::kTemporal05, n, 2000, 77);
  ShardedNetwork fresh = ShardedNetwork::balanced(k, n, S);
  const SimResult a = run_trace_sharded(net, probe);
  const SimResult b = run_trace_sharded(fresh, probe);
  expect_same_costs(a, b, "replay after round trip");
}

TEST(Lifecycle, SplitAndMergeRejectInvalidOperands) {
  ShardMap map(10, 5);  // 2 nodes per shard
  EXPECT_THROW(map.merge(1, 1), TreeError);
  EXPECT_THROW(map.split(5), TreeError);   // out of range
  EXPECT_THROW(map.merge(0, 9), TreeError);
  ShardMap tiny(4, 4);  // 1 node per shard: nothing to split
  EXPECT_THROW(tiny.split(0), TreeError);

  ShardedNetwork net = ShardedNetwork::balanced(2, 8, 4);
  EXPECT_THROW(net.split_shard(-1), TreeError);
  EXPECT_THROW(net.merge_shards(2, 2), TreeError);
  EXPECT_THROW(net.merge_shards(0, 7), TreeError);
}

// ---- crash recovery ----------------------------------------------------

// Headline differential: a run with scripted kills must end in exactly the
// state of the uncrashed run — snapshot + trace-tail replay rebuilds the
// lost shard node for node, and under FIFO the serve counters bit-match
// because recovery costs are booked separately.
TEST(Lifecycle, RecoveryRebuildsBitIdenticalState) {
  const int n = 128, k = 3;
  for (std::uint64_t seed : {3u, 58u, 901u}) {
    for (int S : {2, 4, 8}) {
      const Trace trace =
          gen_workload(WorkloadKind::kTemporal05, n, 6000, seed);
      FaultPlan plan;
      plan.kills = {{1500, 0}, {1500, S - 1}, {4000, S / 2}};

      for (bool sequential : {true, false}) {
        ShardedNetwork clean = ShardedNetwork::balanced(k, n, S);
        ShardedNetwork faulted = ShardedNetwork::balanced(k, n, S);
        ShardedRunOptions opt;
        opt.sequential = sequential;
        const SimResult want = run_trace_sharded(clean, trace, opt);
        opt.faults = &plan;
        const SimResult got = run_trace_sharded(faulted, trace, opt);

        const std::string what = "seed=" + std::to_string(seed) +
                                 " S=" + std::to_string(S) +
                                 (sequential ? " seq" : " conc");
        expect_same_costs(got, want, what);
        expect_trees_equal(faulted, clean, what);
        EXPECT_EQ(got.faults_injected, 3) << what;
        EXPECT_EQ(got.replica_promotions, 0) << what;
        EXPECT_GT(got.recovery_replayed, 0) << what;
        EXPECT_GT(got.recovery_cost, 0) << what;
        EXPECT_GE(got.recovery_total_ms, got.recovery_max_ms) << what;
        // Recovery work is bookkept outside the serve counters but inside
        // the grand total.
        EXPECT_EQ(got.grand_total_cost() - got.recovery_cost,
                  want.grand_total_cost())
            << what;
      }
    }
  }
}

TEST(Lifecycle, ReplicaPromotionRecoversWithoutReplay) {
  const int n = 64, S = 4, k = 2;
  const Trace trace = gen_workload(WorkloadKind::kFacebook, n, 5000, 11);
  FaultPlan plan;
  plan.kills = {{2000, 2}};

  ShardedNetwork clean = ShardedNetwork::balanced(k, n, S);
  ShardedNetwork faulted = ShardedNetwork::balanced(k, n, S);
  faulted.add_replica(2);
  ShardedRunOptions opt;
  opt.faults = &plan;
  const SimResult want = run_trace_sharded(clean, trace);
  const SimResult got = run_trace_sharded(faulted, trace, opt);

  expect_same_costs(got, want, "promotion recovery");
  expect_trees_equal(faulted, clean, "promotion recovery");
  EXPECT_EQ(got.faults_injected, 1);
  EXPECT_EQ(got.replica_promotions, 1);
  // Promotion is instant state adoption: nothing replayed, nothing spent.
  EXPECT_EQ(got.recovery_replayed, 0);
  EXPECT_EQ(got.recovery_cost, 0);
  EXPECT_GT(got.replica_reads, 0);
}

TEST(Lifecycle, StreamedRecoveryMatchesMaterializedRun) {
  // The crash path composes with the v2 streaming reader: a faulted
  // streamed replay from disk must land in the same state and costs as
  // the unfaulted materialized run.
  const int n = 80, S = 4, k = 3;
  const Trace trace = gen_workload(WorkloadKind::kTemporal075, n, 9000, 5);
  const std::string path = ::testing::TempDir() + "/lifecycle_tail.sv2";
  write_trace_v2_file(path, trace);

  FaultPlan plan;
  plan.kills = {{100, 1}, {8192 + 17, 3}};  // second kill crosses a chunk
  ShardedNetwork clean = ShardedNetwork::balanced(k, n, S);
  ShardedNetwork faulted = ShardedNetwork::balanced(k, n, S);
  const SimResult want = run_trace_sharded(clean, trace);

  TraceV2Reader stream(path, TraceV2Reader::Backend::kMmap);
  ShardedRunOptions opt;
  opt.faults = &plan;
  const SimResult got = run_trace_sharded_stream(faulted, stream, opt);

  expect_same_costs(got, want, "streamed recovery");
  expect_trees_equal(faulted, clean, "streamed recovery");
  EXPECT_EQ(got.faults_injected, 2);
}

TEST(Lifecycle, FaultPlanParsesAndValidates) {
  const FaultPlan plan = parse_fault_plan("100@2,500@0");
  ASSERT_EQ(plan.kills.size(), 2u);
  EXPECT_EQ(plan.kills[0].at_request, 100u);
  EXPECT_EQ(plan.kills[0].shard, 2);
  EXPECT_EQ(plan.kills[1].at_request, 500u);
  EXPECT_EQ(plan.kills[1].shard, 0);
  EXPECT_TRUE(plan.enabled());
  EXPECT_FALSE(FaultPlan{}.enabled());

  EXPECT_THROW(parse_fault_plan(""), TreeError);
  EXPECT_THROW(parse_fault_plan("100"), TreeError);
  EXPECT_THROW(parse_fault_plan("100@"), TreeError);
  EXPECT_THROW(parse_fault_plan("@2"), TreeError);
  EXPECT_THROW(parse_fault_plan("100@-3"), TreeError);
  EXPECT_THROW(parse_fault_plan("junk@2"), TreeError);

  FaultPlan unsorted;
  unsorted.kills = {{500, 0}, {100, 1}};
  EXPECT_THROW(unsorted.validate(), TreeError);

  // A kill aimed at a shard the fleet does not have fails at fire time.
  const Trace trace = gen_workload(WorkloadKind::kUniform, 32, 200, 1);
  ShardedNetwork net = ShardedNetwork::balanced(2, 32, 2);
  FaultPlan bad;
  bad.kills = {{50, 9}};
  ShardedRunOptions opt;
  opt.faults = &bad;
  EXPECT_THROW(run_trace_sharded(net, trace, opt), TreeError);
}

// ---- replicas ----------------------------------------------------------

TEST(Lifecycle, ReplicaReadsNeverChangeGoldenCosts) {
  // Replicas are lockstep copies: serving intra-shard requests from them
  // must be invisible in every cost counter, on both the per-request path
  // and the batched pipeline, while the reads actually route to them.
  const int n = 64, S = 4, k = 3;
  for (WorkloadKind kind : {WorkloadKind::kUniform, WorkloadKind::kTemporal05,
                            WorkloadKind::kFacebook}) {
    const Trace trace = gen_workload(kind, n, 3000, 0xBEEF);

    ShardedNetwork plain = ShardedNetwork::balanced(k, n, S);
    ShardedNetwork replicated = ShardedNetwork::balanced(k, n, S);
    for (int s = 0; s < S; ++s) replicated.add_replica(s);
    EXPECT_EQ(replicated.num_replicas(), S);

    const SimResult want = run_trace_sharded(plain, trace);
    const SimResult got = run_trace_sharded(replicated, trace);
    expect_same_costs(got, want, std::string(workload_name(kind)));
    EXPECT_GT(got.replica_reads, 0);
    EXPECT_EQ(want.replica_reads, 0);
    expect_trees_equal(replicated, plain, workload_name(kind));
    // The replicas themselves track their primaries in lockstep.
    for (int s = 0; s < S; ++s) {
      ASSERT_TRUE(replicated.has_replica(s));
      const KAryTree& pri = replicated.shard(s).tree();
      const KAryTree& rep = replicated.replica(s).tree();
      for (NodeId id = 1; id <= pri.size(); ++id)
        ASSERT_EQ(pri.parent(id), rep.parent(id)) << "shard " << s;
    }

    // Per-request serve() path: bit-identical ServeResults too.
    ShardedNetwork a = ShardedNetwork::balanced(k, n, S);
    ShardedNetwork b = ShardedNetwork::balanced(k, n, S);
    for (int s = 0; s < S; ++s) b.add_replica(s);
    for (const Request& r : trace.requests) {
      const ServeResult ra = a.serve(r.src, r.dst);
      const ServeResult rb = b.serve(r.src, r.dst);
      ASSERT_EQ(ra, rb) << workload_name(kind);
    }
    EXPECT_GT(b.replica_reads_served(), 0);
  }
}

// ---- lifecycle planning (split / merge watermarks) ---------------------

TEST(Lifecycle, SplitTriggersOnHotShardAndGrowsFleet) {
  // All traffic hammers shard 0's id range (contiguous partition), so the
  // hot-shard watermark must fire and split it — repeatedly, as the hot
  // half stays hot — while cold shards are left alone.
  const int n = 128, S = 4, k = 3;
  Trace trace;
  trace.n = n;
  std::mt19937_64 rng(42);
  for (int i = 0; i < 6000; ++i) {
    const NodeId u = static_cast<NodeId>(1 + rng() % 32);  // shard 0 owns 1..32
    NodeId v = static_cast<NodeId>(1 + rng() % 32);
    while (v == u) v = static_cast<NodeId>(1 + rng() % 32);
    trace.requests.push_back({u, v});
  }

  RebalanceConfig cfg;
  cfg.policy = RebalancePolicy::kNone;  // lifecycle plans independently
  cfg.epoch_requests = 1000;
  cfg.split_watermark = 1.5;
  ASSERT_TRUE(cfg.lifecycle_enabled());
  ShardedNetwork net = ShardedNetwork::balanced(k, n, S);
  ShardedRunOptions opt;
  opt.rebalance = &cfg;
  const SimResult res = run_trace_sharded(net, trace, opt);

  EXPECT_GT(res.shard_splits, 0);
  EXPECT_EQ(res.shard_merges, 0);
  EXPECT_GT(res.lifecycle_cost, 0);
  EXPECT_EQ(res.final_shards, S + static_cast<int>(res.shard_splits));
  EXPECT_EQ(net.num_shards(), res.final_shards);
  for (int s = 0; s < net.num_shards(); ++s) {
    const auto err = net.shard(s).tree().validate();
    ASSERT_FALSE(err.has_value()) << "shard " << s << ": " << *err;
  }
}

TEST(Lifecycle, MergeFoldsColdShardsAndRespectsFloor) {
  // Near-uniform traffic with a generous merge watermark: the two coldest
  // shards recombine, but never below min_shards.
  const int n = 120, S = 6, k = 2;
  const Trace trace = gen_workload(WorkloadKind::kUniform, n, 8000, 7);
  RebalanceConfig cfg;
  cfg.epoch_requests = 1000;
  cfg.merge_watermark = 3.0;  // combined-below-3x-mean: always true here
  cfg.capacity_factor = 4.0;  // don't let the guard park the merges
  cfg.min_shards = 3;
  ShardedNetwork net = ShardedNetwork::balanced(k, n, S);
  ShardedRunOptions opt;
  opt.rebalance = &cfg;
  const SimResult res = run_trace_sharded(net, trace, opt);

  EXPECT_GT(res.shard_merges, 0);
  EXPECT_EQ(res.shard_splits, 0);
  EXPECT_GE(res.final_shards, cfg.min_shards);
  EXPECT_EQ(res.final_shards, S - static_cast<int>(res.shard_merges));
  EXPECT_EQ(net.num_shards(), res.final_shards);
  int owned = 0;
  for (int s = 0; s < net.num_shards(); ++s) owned += net.map().shard_size(s);
  EXPECT_EQ(owned, n);
}

TEST(Lifecycle, SeqEqualsConcWithLifecycleAndFaultsActive) {
  // The full stack at once — splits, merges, planned replicas, scripted
  // kills — must keep the concurrent drain bit-identical to the
  // sequential reference: 3 seeds x S in {2, 4, 8}.
  const int n = 128, k = 3;
  for (std::uint64_t seed : {13u, 201u, 7777u}) {
    for (int S : {2, 4, 8}) {
      const Trace trace =
          gen_workload(WorkloadKind::kPhaseElephants, n, 8000, seed);
      RebalanceConfig cfg;
      cfg.policy = RebalancePolicy::kWatermark;
      cfg.trigger = RebalanceTrigger::kEveryEpoch;
      cfg.epoch_requests = 1000;
      cfg.split_watermark = 1.4;
      cfg.merge_watermark = 0.4;
      cfg.replicas = 1;
      FaultPlan plan;
      plan.kills = {{500, S - 1}, {3500, 0}};

      SimResult results[2];
      ShardedNetwork nets[2] = {ShardedNetwork::balanced(k, n, S),
                                ShardedNetwork::balanced(k, n, S)};
      for (int mode = 0; mode < 2; ++mode) {
        ShardedRunOptions opt;
        opt.sequential = mode == 0;
        opt.rebalance = &cfg;
        opt.faults = &plan;
        results[mode] = run_trace_sharded(nets[mode], trace, opt);
      }
      const std::string what =
          "seed=" + std::to_string(seed) + " S=" + std::to_string(S);
      expect_same_costs(results[0], results[1], what);
      EXPECT_EQ(results[0].shard_splits, results[1].shard_splits) << what;
      EXPECT_EQ(results[0].shard_merges, results[1].shard_merges) << what;
      EXPECT_EQ(results[0].lifecycle_cost, results[1].lifecycle_cost) << what;
      EXPECT_EQ(results[0].migrations, results[1].migrations) << what;
      EXPECT_EQ(results[0].replica_reads, results[1].replica_reads) << what;
      EXPECT_EQ(results[0].recovery_replayed, results[1].recovery_replayed)
          << what;
      EXPECT_EQ(results[0].recovery_cost, results[1].recovery_cost) << what;
      EXPECT_EQ(results[0].final_shards, results[1].final_shards) << what;
      EXPECT_EQ(results[0].faults_injected, 2) << what;
      expect_trees_equal(nets[0], nets[1], what);
      for (int s = 0; s < nets[0].num_shards(); ++s) {
        const auto err = nets[0].shard(s).tree().validate();
        ASSERT_FALSE(err.has_value()) << what << " shard " << s << ": "
                                      << *err;
      }
    }
  }
}

// Satellite regression: per-shard stats must key off the live shard count,
// not the construction-time S, once splits/merges reshaped the fleet — and
// the runner's final-map re-scan must kick in for lifecycle events exactly
// as it does for migrations.
TEST(Lifecycle, ShardStatsStayLiveAfterSplitMerge) {
  const int n = 128, S = 4, k = 3;
  Trace trace;
  trace.n = n;
  std::mt19937_64 rng(9);
  for (int i = 0; i < 5000; ++i) {
    const NodeId u = static_cast<NodeId>(1 + rng() % 32);
    NodeId v = static_cast<NodeId>(1 + rng() % 32);
    while (v == u) v = static_cast<NodeId>(1 + rng() % 32);
    trace.requests.push_back({u, v});
  }
  RebalanceConfig cfg;
  cfg.epoch_requests = 1000;
  cfg.split_watermark = 1.5;
  ShardedNetwork net = ShardedNetwork::balanced(k, n, S);
  ShardedRunOptions opt;
  opt.rebalance = &cfg;
  const SimResult res = run_trace_sharded(net, trace, opt);
  ASSERT_GT(res.shard_splits, 0);
  ASSERT_GT(net.num_shards(), S);

  const ShardLocalityStats stats = compute_shard_stats(trace, net.map());
  EXPECT_EQ(stats.shards, net.num_shards());
  EXPECT_EQ(stats.intra.size(), static_cast<std::size_t>(net.num_shards()));
  EXPECT_EQ(stats.touches.size(), static_cast<std::size_t>(net.num_shards()));
  EXPECT_EQ(stats.owned.size(), static_cast<std::size_t>(net.num_shards()));
  int owned = 0;
  for (int v : stats.owned) owned += v;
  EXPECT_EQ(owned, n);
  // No migrations happened, only splits — the re-scan condition must still
  // have upgraded post_intra_fraction to the final-map value.
  EXPECT_EQ(res.migrations, 0);
  EXPECT_DOUBLE_EQ(res.post_intra_fraction, stats.intra_fraction());
}

// ---- frontend ----------------------------------------------------------

TEST(Lifecycle, FrontendSplitsShardsUnderLiveTraffic) {
  // The dynamic worker fleet: a watermark split fires at an epoch barrier
  // while open-loop traffic is in flight, a fresh worker is spawned for
  // the new shard, and nothing is lost — every request is served exactly
  // once under the lossless default policy.
  const int n = 64, S = 2, k = 2;
  Trace trace;
  trace.n = n;
  std::mt19937_64 rng(11);
  for (int i = 0; i < 6000; ++i) {  // hammer shard 0's node range
    const NodeId u = static_cast<NodeId>(1 + rng() % 24);
    NodeId v = static_cast<NodeId>(1 + rng() % 24);
    while (v == u) v = static_cast<NodeId>(1 + rng() % 24);
    trace.requests.push_back({u, v});
  }
  RebalanceConfig cfg;
  cfg.policy = RebalancePolicy::kNone;  // lifecycle plans independently
  cfg.epoch_requests = 1000;
  cfg.split_watermark = 1.5;
  ShardedNetwork net = ShardedNetwork::balanced(k, n, S);
  FrontendOptions opt;
  opt.rebalance = &cfg;
  ServeFrontend frontend(net, opt);
  const auto arrivals =
      gen_arrival_times(ArrivalKind::kSaturation, 0.0, trace.size(), 1);
  const FrontendResult res = frontend.run(trace, arrivals);

  EXPECT_GT(res.sim.shard_splits, 0);
  EXPECT_EQ(net.num_shards(), S + static_cast<int>(res.sim.shard_splits));
  EXPECT_GT(res.route_epochs, 0u);
  EXPECT_EQ(res.sojourn.count(), trace.size());
  EXPECT_EQ(res.sim.shed_requests, 0);
  for (int s = 0; s < net.num_shards(); ++s) {
    const auto err = net.shard(s).tree().validate();
    ASSERT_FALSE(err.has_value()) << "shard " << s << ": " << *err;
  }
  // Node conservation + the final-map intra-fraction re-scan.
  int owned = 0;
  for (int s = 0; s < net.num_shards(); ++s) owned += net.map().shard_size(s);
  EXPECT_EQ(owned, n);
  EXPECT_DOUBLE_EQ(
      res.sim.post_intra_fraction,
      compute_shard_stats(trace, net.map()).intra_fraction());
}

TEST(Lifecycle, FrontendMergesShardsUnderLiveTraffic) {
  // The other direction: cold shards recombine mid-run, the vacated
  // worker retires, and queued traffic for renumbered shards is still
  // served exactly once.
  const int n = 120, S = 6, k = 2;
  const Trace trace = gen_workload(WorkloadKind::kUniform, n, 8000, 7);
  RebalanceConfig cfg;
  cfg.epoch_requests = 1000;
  cfg.merge_watermark = 3.0;  // combined-below-3x-mean: always true here
  cfg.capacity_factor = 4.0;  // don't let the guard park the merges
  cfg.min_shards = 3;
  ShardedNetwork net = ShardedNetwork::balanced(k, n, S);
  FrontendOptions opt;
  opt.rebalance = &cfg;
  ServeFrontend frontend(net, opt);
  const auto arrivals =
      gen_arrival_times(ArrivalKind::kSaturation, 0.0, trace.size(), 1);
  const FrontendResult res = frontend.run(trace, arrivals);

  EXPECT_GT(res.sim.shard_merges, 0);
  EXPECT_GE(res.sim.final_shards, cfg.min_shards);
  EXPECT_EQ(net.num_shards(), S - static_cast<int>(res.sim.shard_merges));
  EXPECT_EQ(res.sojourn.count(), trace.size());
  EXPECT_EQ(res.sim.shed_requests, 0);
  int owned = 0;
  for (int s = 0; s < net.num_shards(); ++s) owned += net.map().shard_size(s);
  EXPECT_EQ(owned, n);
  for (int s = 0; s < net.num_shards(); ++s) {
    const auto err = net.shard(s).tree().validate();
    ASSERT_FALSE(err.has_value()) << "shard " << s << ": " << *err;
  }
}

TEST(Lifecycle, FrontendLifecycleAndFaultsMidFlight) {
  // Everything at once under live traffic: watermark lifecycle, planned
  // replicas, a shard kill, a worker kill and a queue-pressure window.
  // Under the lossless default policy nothing may be shed, every tree
  // must stay valid, and every node must still be owned exactly once.
  const int n = 128, S = 4, k = 3;
  const Trace trace = gen_workload(WorkloadKind::kPhaseElephants, n, 9000, 13);
  RebalanceConfig cfg;
  cfg.policy = RebalancePolicy::kWatermark;
  cfg.trigger = RebalanceTrigger::kEveryEpoch;
  cfg.epoch_requests = 1500;
  cfg.split_watermark = 1.4;
  cfg.merge_watermark = 0.4;
  cfg.min_shards = 3;  // keep the scripted shard ids in range
  cfg.replicas = 1;
  FaultPlan plan;
  plan.kills = {{800, 1, FaultKind::kQueuePressure},
                {2200, 0, FaultKind::kShardKill},
                {5200, 2, FaultKind::kWorkerKill}};
  ShardedNetwork net = ShardedNetwork::balanced(k, n, S);
  FrontendOptions opt;
  opt.rebalance = &cfg;
  opt.faults = &plan;
  ServeFrontend frontend(net, opt);
  const auto arrivals =
      gen_arrival_times(ArrivalKind::kSaturation, 0.0, trace.size(), 1);
  const FrontendResult res = frontend.run(trace, arrivals);

  EXPECT_EQ(res.sim.faults_injected, 1);  // the shard kill
  EXPECT_EQ(res.sim.worker_kills, 1);
  EXPECT_EQ(res.sim.queue_pressure_events, 1);
  EXPECT_EQ(res.sojourn.count(), trace.size());
  EXPECT_EQ(res.sim.shed_requests, 0);
  EXPECT_EQ(res.sim.requests, trace.size());
  int owned = 0;
  for (int s = 0; s < net.num_shards(); ++s) owned += net.map().shard_size(s);
  EXPECT_EQ(owned, n);
  for (int s = 0; s < net.num_shards(); ++s) {
    const auto err = net.shard(s).tree().validate();
    ASSERT_FALSE(err.has_value()) << "shard " << s << ": " << *err;
  }
}

TEST(Lifecycle, FrontendSingleShardRecoveryBitMatchesBatchReplay) {
  // S = 1, FIFO, saturation arrivals: the frontend preserves trace order,
  // so a snapshot + tail-replay recovery must leave costs bit-identical to
  // the unfaulted closed-loop batch replay.
  const int n = 48, k = 3;
  const Trace trace = gen_workload(WorkloadKind::kTemporal05, n, 3000, 21);
  const auto arrivals =
      gen_arrival_times(ArrivalKind::kSaturation, 0.0, trace.size(), 1);

  ShardedNetwork batch_net = ShardedNetwork::balanced(k, n, 1);
  const SimResult want = run_trace_sharded(batch_net, trace);

  FaultPlan plan;
  plan.kills = {{1000, 0}};
  ShardedNetwork net = ShardedNetwork::balanced(k, n, 1);
  FrontendOptions opt;
  opt.faults = &plan;
  ServeFrontend frontend(net, opt);
  const FrontendResult got = frontend.run(trace, arrivals);

  EXPECT_EQ(got.sim.requests, trace.size());
  EXPECT_EQ(got.sim.routing_cost, want.routing_cost);
  EXPECT_EQ(got.sim.rotation_count, want.rotation_count);
  EXPECT_EQ(got.sim.edge_changes, want.edge_changes);
  EXPECT_EQ(got.sim.faults_injected, 1);
  EXPECT_GT(got.sim.recovery_replayed, 0);
  expect_trees_equal(net, batch_net, "frontend S=1 recovery");
}

TEST(Lifecycle, FrontendMultiShardSurvivesKillsAndPromotions) {
  // S > 1 is not bit-reproducible; the contract is completion — every
  // request served, recovery counters set, shards valid at the end.
  const int n = 64, S = 4, k = 2;
  const Trace trace = gen_workload(WorkloadKind::kFacebook, n, 4000, 33);
  const auto arrivals =
      gen_arrival_times(ArrivalKind::kSaturation, 0.0, trace.size(), 1);

  FaultPlan plan;
  plan.kills = {{800, 1}, {2500, 2}};
  ShardedNetwork net = ShardedNetwork::balanced(k, n, S);
  net.add_replica(2);  // second kill fails over by promotion
  FrontendOptions opt;
  opt.faults = &plan;
  ServeFrontend frontend(net, opt);
  const FrontendResult got = frontend.run(trace, arrivals);

  EXPECT_EQ(got.sim.requests, trace.size());
  EXPECT_EQ(got.sim.faults_injected, 2);
  EXPECT_EQ(got.sim.replica_promotions, 1);
  EXPECT_GT(got.sim.replica_reads, 0);
  EXPECT_GE(got.sim.recovery_max_ms, 0.0);
  for (int s = 0; s < S; ++s) {
    const auto err = net.shard(s).tree().validate();
    ASSERT_FALSE(err.has_value()) << "shard " << s << ": " << *err;
  }
}

// ---- snapshot hardening ------------------------------------------------

TEST(Lifecycle, RestoreShardValidatesSnapshots) {
  ShardedNetwork net = ShardedNetwork::balanced(3, 48, 4);
  const std::string good = net.snapshot_shard(1);
  EXPECT_NO_THROW(net.restore_shard(1, good));
  // Wrong shard: node counts differ (48 over 4 shards = 12 each, so use a
  // snapshot from a differently-sized fleet).
  ShardedNetwork other = ShardedNetwork::balanced(3, 48, 3);
  EXPECT_THROW(net.restore_shard(1, other.snapshot_shard(0)), TreeError);
  // Wrong arity.
  ShardedNetwork binary = ShardedNetwork::balanced(2, 48, 4);
  EXPECT_THROW(net.restore_shard(1, binary.snapshot_shard(1)), TreeError);
  // Hostile bytes.
  EXPECT_THROW(net.restore_shard(1, "san-tree v1 3 999999999 1\n"),
               TreeError);
  EXPECT_THROW(net.restore_shard(1, "garbage"), TreeError);
  EXPECT_THROW(net.restore_shard(1, good.substr(0, good.size() / 2)),
               TreeError);
}

}  // namespace
}  // namespace san
