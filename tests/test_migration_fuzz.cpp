// Seeded fuzz suite for the migration invariants: after random migrate()
// bursts a ShardMap must stay a bijection with dense rank-ordered local
// ids and match an independent from-scratch rebuild of the same final
// assignment; the serving engine's trees must stay valid under interleaved
// serve/migration traffic; and a migrated-but-unserved engine must be
// indistinguishable — replayed costs included — from one built from
// scratch over the final map.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "workload/generators.hpp"
#include "workload/rebalance.hpp"

namespace san {
namespace {

/// Full consistency audit of one map: inverse mappings agree, local ids
/// are dense 1..|shard| in ascending global order, every node is owned by
/// exactly one shard.
void check_bijection(const ShardMap& map, const std::string& what) {
  std::vector<int> seen(static_cast<std::size_t>(map.n()) + 1, 0);
  int total = 0;
  for (int s = 0; s < map.shards(); ++s) {
    NodeId prev_global = 0;
    for (NodeId local = 1; local <= map.shard_size(s); ++local) {
      const NodeId global = map.global_of(s, local);
      ASSERT_GE(global, 1) << what;
      ASSERT_LE(global, map.n()) << what;
      ASSERT_GT(global, prev_global) << what << " shard " << s;  // rank order
      prev_global = global;
      ASSERT_EQ(map.shard_of(global), s) << what << " node " << global;
      ASSERT_EQ(map.local_of(global), local) << what << " node " << global;
      ++seen[static_cast<std::size_t>(global)];
    }
    total += map.shard_size(s);
  }
  ASSERT_EQ(total, map.n()) << what;
  for (NodeId id = 1; id <= map.n(); ++id)
    ASSERT_EQ(seen[static_cast<std::size_t>(id)], 1) << what << " node " << id;
}

TEST(MigrationFuzz, MapStaysABijectionUnderRandomBursts) {
  for (std::uint64_t seed : {1u, 42u, 4096u}) {
    std::mt19937_64 rng(seed);
    for (const auto& [n, S] : {std::pair{30, 3}, {128, 8}, {257, 16}}) {
      const ShardPartition policy =
          seed % 2 ? ShardPartition::kHash : ShardPartition::kContiguous;
      ShardMap map(n, S, policy);
      for (int burst = 0; burst < 10; ++burst) {
        for (int i = 0; i < 40; ++i) {
          const NodeId node = static_cast<NodeId>(1 + rng() % n);
          const int target = static_cast<int>(rng() % S);
          map.migrate(node, target);  // emptying a shard is legal map-level
        }
        check_bijection(map, "seed=" + std::to_string(seed) +
                                 " n=" + std::to_string(n) +
                                 " burst=" + std::to_string(burst));
      }

      // The migrated map must equal an independent from-scratch rebuild of
      // its final assignment.
      std::vector<int> assignment(static_cast<std::size_t>(n) + 1, 0);
      for (NodeId id = 1; id <= n; ++id) assignment[static_cast<std::size_t>(id)] = map.shard_of(id);
      const ShardMap rebuilt(n, S, assignment);
      for (NodeId id = 1; id <= n; ++id) {
        ASSERT_EQ(map.shard_of(id), rebuilt.shard_of(id));
        ASSERT_EQ(map.local_of(id), rebuilt.local_of(id));
      }
      for (int s = 0; s < S; ++s)
        ASSERT_EQ(map.shard_size(s), rebuilt.shard_size(s));
    }
  }
}

TEST(MigrationFuzz, MigratedEngineEqualsFromScratchRebuild) {
  // Migration bursts with no serves in between: every affected shard is
  // rebuilt balanced and untouched shards started balanced, so the engine
  // must be structurally identical to one built directly over the final
  // map — and replaying any trace must cost exactly the same.
  for (std::uint64_t seed : {9u, 333u, 70000u}) {
    std::mt19937_64 rng(seed);
    const int n = 80, S = 5, k = 3;
    ShardedNetwork net = ShardedNetwork::balanced(k, n, S,
                                                  ShardPartition::kHash);
    Cost accumulated = 0;
    for (int burst = 0; burst < 6; ++burst) {
      std::vector<Migration> batch;
      std::vector<bool> used(static_cast<std::size_t>(n) + 1, false);
      for (int i = 0; i < 8; ++i) {
        const NodeId node = static_cast<NodeId>(1 + rng() % n);
        const int target = static_cast<int>(rng() % S);
        if (used[static_cast<std::size_t>(node)]) continue;
        if (net.map().shard_of(node) != target &&
            net.map().shard_size(net.map().shard_of(node)) <= 1)
          continue;
        used[static_cast<std::size_t>(node)] = true;
        batch.push_back({node, target});
      }
      accumulated += net.apply_migrations(std::move(batch)).total_cost();
    }

    std::vector<int> assignment(static_cast<std::size_t>(n) + 1, 0);
    for (NodeId id = 1; id <= n; ++id) assignment[static_cast<std::size_t>(id)] = net.map().shard_of(id);
    ShardedNetwork rebuilt(k, ShardMap(n, S, assignment));

    for (int s = 0; s < S; ++s) {
      const KAryTree& ta = net.shard(s).tree();
      const KAryTree& tb = rebuilt.shard(s).tree();
      ASSERT_EQ(ta.size(), tb.size()) << "seed=" << seed << " shard " << s;
      ASSERT_TRUE(ta.valid());
      for (NodeId id = 1; id <= ta.size(); ++id) {
        ASSERT_EQ(ta.parent(id), tb.parent(id))
            << "seed=" << seed << " shard " << s << " local " << id;
        ASSERT_EQ(ta.slot_in_parent(id), tb.slot_in_parent(id));
      }
    }

    const Trace probe = gen_workload(WorkloadKind::kUniform, n, 1500, seed);
    const SimResult a = run_trace_sharded(net, probe);
    const SimResult b = run_trace_sharded(rebuilt, probe);
    EXPECT_EQ(a.routing_cost, b.routing_cost) << "seed=" << seed;
    EXPECT_EQ(a.rotation_count, b.rotation_count) << "seed=" << seed;
    EXPECT_EQ(a.edge_changes, b.edge_changes) << "seed=" << seed;
    EXPECT_EQ(a.cross_shard, b.cross_shard) << "seed=" << seed;
    EXPECT_GT(accumulated, 0) << "seed=" << seed;
  }
}

TEST(MigrationFuzz, ShardsStayValidUnderInterleavedServesAndMigrations) {
  for (std::uint64_t seed : {5u, 123u, 999u}) {
    std::mt19937_64 rng(seed);
    const int n = 72, S = 6, k = 2;
    ShardedNetwork net = ShardedNetwork::balanced(k, n, S);
    const Trace traffic = gen_workload(WorkloadKind::kTemporal05, n, 6000,
                                       seed * 31 + 1);
    std::size_t cursor = 0;
    for (int round = 0; round < 12; ++round) {
      // A burst of real traffic...
      for (int i = 0; i < 400 && cursor < traffic.size(); ++i, ++cursor)
        net.serve(traffic[cursor].src, traffic[cursor].dst);
      // ...then a random migration batch.
      std::vector<Migration> batch;
      std::vector<bool> used(static_cast<std::size_t>(n) + 1, false);
      for (int i = 0; i < 5; ++i) {
        const NodeId node = static_cast<NodeId>(1 + rng() % n);
        const int target = static_cast<int>(rng() % S);
        if (used[static_cast<std::size_t>(node)]) continue;
        if (net.map().shard_of(node) != target &&
            net.map().shard_size(net.map().shard_of(node)) <= 1)
          continue;
        used[static_cast<std::size_t>(node)] = true;
        batch.push_back({node, target});
      }
      net.apply_migrations(std::move(batch));

      int total = 0;
      for (int s = 0; s < S; ++s) {
        const auto err = net.shard(s).tree().validate();
        ASSERT_FALSE(err.has_value())
            << "seed=" << seed << " round=" << round << " shard " << s
            << ": " << *err;
        total += net.shard(s).size();
      }
      ASSERT_EQ(total, n);
      check_bijection(net.map(), "engine seed=" + std::to_string(seed));
    }
  }
}

TEST(MigrationFuzz, LifecycleStormKeepsFleetConsistent) {
  // Random interleaved split / merge / kill+recover / replica bursts over
  // live serve traffic: after every burst the ShardMap must still be a
  // bijection, every shard tree must validate clean, and the fleet must
  // own exactly n nodes. Kills alternate between snapshot-restore and
  // replica promotion so both recovery paths are fuzzed.
  for (std::uint64_t seed : {7u, 271u, 31337u}) {
    std::mt19937_64 rng(seed);
    const int n = 96, k = 3;
    ShardedNetwork net = ShardedNetwork::balanced(k, n, 4,
                                                  ShardPartition::kHash);
    const Trace traffic = gen_workload(WorkloadKind::kTemporal075, n, 8000,
                                       seed * 17 + 3);
    std::size_t cursor = 0;
    for (int round = 0; round < 20; ++round) {
      for (int i = 0; i < 300 && cursor < traffic.size(); ++i, ++cursor)
        net.serve(traffic[cursor].src, traffic[cursor].dst);

      const int S = net.num_shards();
      switch (rng() % 4) {
        case 0: {  // split a random splittable shard
          const int s = static_cast<int>(rng() % S);
          if (net.map().shard_size(s) >= 2) net.split_shard(s);
          break;
        }
        case 1: {  // merge two random distinct shards
          if (S >= 2) {
            const int a = static_cast<int>(rng() % S);
            int b = static_cast<int>(rng() % S);
            if (a == b) b = (b + 1) % S;
            net.merge_shards(a, b);
          }
          break;
        }
        case 2: {  // kill + snapshot-restore a random shard
          const int s = static_cast<int>(rng() % S);
          const std::string snap = net.snapshot_shard(s);
          net.restore_shard(s, snap);
          break;
        }
        default: {  // replica attach, kill, promote
          const int s = static_cast<int>(rng() % S);
          if (!net.has_replica(s)) net.add_replica(s);
          net.promote_replica(s);
          break;
        }
      }

      int total = 0;
      for (int s = 0; s < net.num_shards(); ++s) {
        const auto err = net.shard(s).tree().validate();
        ASSERT_FALSE(err.has_value())
            << "seed=" << seed << " round=" << round << " shard " << s
            << ": " << *err;
        ASSERT_EQ(net.shard(s).size(), net.map().shard_size(s));
        total += net.shard(s).size();
      }
      ASSERT_EQ(total, n) << "seed=" << seed << " round=" << round;
      check_bijection(net.map(),
                      "lifecycle seed=" + std::to_string(seed) +
                          " round=" + std::to_string(round));
    }
    ASSERT_LT(cursor, traffic.size() + 1);  // traffic actually flowed
  }
}

}  // namespace
}  // namespace san
