// DemandMatrix: W-matrix semantics (Appendix A, Claim 16), prefix sums, and
// total-distance evaluation.
#include <gtest/gtest.h>

#include <random>

#include "core/shape.hpp"
#include "workload/demand_matrix.hpp"
#include "workload/generators.hpp"

namespace san {
namespace {

Cost brute_boundary(const DemandMatrix& d, int i, int j) {
  Cost w = 0;
  for (NodeId u = 1; u <= d.n(); ++u)
    for (NodeId v = 1; v <= d.n(); ++v) {
      const bool u_in = u >= i && u <= j;
      const bool v_in = v >= i && v <= j;
      if (u_in != v_in) w += d.at(u, v);
    }
  return w;
}

TEST(DemandMatrix, BoundaryMatchesBruteForce) {
  std::mt19937_64 rng(12);
  const int n = 17;
  DemandMatrix d(n);
  for (int t = 0; t < 200; ++t) {
    NodeId u = 1 + static_cast<NodeId>(rng() % n);
    NodeId v = 1 + static_cast<NodeId>(rng() % n);
    d.add(u, v, 1 + static_cast<Cost>(rng() % 7));
  }
  for (int i = 1; i <= n; ++i)
    for (int j = i; j <= n; ++j)
      EXPECT_EQ(d.boundary(i, j), brute_boundary(d, i, j))
          << "[" << i << "," << j << "]";
  EXPECT_EQ(d.boundary(5, 3), 0);  // empty segment
  EXPECT_EQ(d.boundary(1, n), 0);  // whole range: nothing crosses
}

TEST(DemandMatrix, InsideMatchesBruteForce) {
  std::mt19937_64 rng(13);
  const int n = 12;
  DemandMatrix d(n);
  for (int t = 0; t < 100; ++t)
    d.add(1 + static_cast<NodeId>(rng() % n), 1 + static_cast<NodeId>(rng() % n));
  for (int i = 1; i <= n; ++i)
    for (int j = i; j <= n; ++j) {
      Cost brute = 0;
      for (NodeId u = i; u <= j; ++u)
        for (NodeId v = i; v <= j; ++v) brute += d.at(u, v);
      EXPECT_EQ(d.inside(i, j), brute);
    }
}

TEST(DemandMatrix, AddAfterQueryInvalidatesPrefix) {
  DemandMatrix d(5);
  d.add(1, 5);
  EXPECT_EQ(d.boundary(1, 3), 1);
  d.add(2, 4, 3);  // inside [1,3]? 2 in, 4 out -> crosses
  EXPECT_EQ(d.boundary(1, 3), 4);
}

TEST(DemandMatrix, FromTraceCountsRequests) {
  Trace t = gen_uniform(20, 500, 3);
  DemandMatrix d = DemandMatrix::from_trace(t);
  EXPECT_EQ(d.total_requests(), 500);
  Cost sum = 0;
  for (NodeId u = 1; u <= 20; ++u)
    for (NodeId v = 1; v <= 20; ++v) sum += d.at(u, v);
  EXPECT_EQ(sum, 500);
}

TEST(DemandMatrix, UniformMatrixIsUpperTriangularOnes) {
  DemandMatrix d = DemandMatrix::uniform(6);
  for (NodeId u = 1; u <= 6; ++u)
    for (NodeId v = 1; v <= 6; ++v)
      EXPECT_EQ(d.at(u, v), (u < v) ? 1 : 0);
  EXPECT_EQ(d.total_requests(), 15);
}

TEST(DemandMatrix, TotalDistanceMatchesDirectSum) {
  std::mt19937_64 rng(14);
  const int n = 30;
  DemandMatrix d(n);
  for (int t = 0; t < 150; ++t) {
    NodeId u = 1 + static_cast<NodeId>(rng() % n);
    NodeId v = 1 + static_cast<NodeId>(rng() % n);
    if (u != v) d.add(u, v, 1 + static_cast<Cost>(rng() % 3));
  }
  KAryTree tree = build_from_shape(3, make_complete_shape(n, 3));
  Cost direct = 0;
  for (NodeId u = 1; u <= n; ++u)
    for (NodeId v = 1; v <= n; ++v)
      if (u != v && d.at(u, v) > 0)
        direct += static_cast<Cost>(tree.distance(u, v)) * d.at(u, v);
  EXPECT_EQ(d.total_distance(tree), direct);
}

TEST(DemandMatrix, UniformTotalDistanceAgreesWithTreeHelper) {
  DemandMatrix d = DemandMatrix::uniform(25);
  KAryTree tree = build_from_shape(4, make_complete_shape(25, 4));
  EXPECT_EQ(d.total_distance(tree), tree.uniform_total_distance());
}

TEST(DemandMatrix, RejectsBadInput) {
  EXPECT_THROW(DemandMatrix(0), TreeError);
  DemandMatrix d(4);
  EXPECT_THROW(d.add(0, 3), TreeError);
  EXPECT_THROW(d.add(1, 5), TreeError);
}

}  // namespace
}  // namespace san
