// Open-loop serving frontend: the S=1 saturation golden lock against
// batch replay, arrival-process independence of S=1 costs, multi-shard
// conservation (every request served exactly once, handovers = cross
// count), latency plumbing, and online rebalancing under drift.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/serve_frontend.hpp"
#include "sim/simulator.hpp"
#include "workload/arrival.hpp"
#include "workload/generators.hpp"

namespace san {
namespace {

std::vector<std::uint64_t> saturation(std::size_t m) {
  return gen_arrival_times(ArrivalKind::kSaturation, 0.0, m, 0);
}

// Acceptance (ISSUE): open-loop at saturation reproduces batch-replay
// total cost on a stationary workload with S = 1 and FIFO admission —
// bit-identical, for every workload family and batch size tried. The
// single inbox preserves trace order, so the serve sequence is the same.
TEST(Frontend, SingleShardSaturationMatchesBatchReplay) {
  const int n = 64;
  const std::size_t m = 3000;
  for (WorkloadKind kind : {WorkloadKind::kTemporal05, WorkloadKind::kHpc,
                            WorkloadKind::kProjector}) {
    const Trace trace = gen_workload(kind, n, m, 0xBEEF);
    ShardedNetwork batch_net = ShardedNetwork::balanced(3, n, 1);
    const SimResult batch =
        run_trace_sharded(batch_net, trace, {.sequential = true});
    for (int admission : {1, 64}) {
      ShardedNetwork live_net = ShardedNetwork::balanced(3, n, 1);
      ServeFrontend fe(live_net, {.admission_batch = admission});
      const FrontendResult live = fe.run(trace, saturation(m));
      const std::string what = std::string(workload_name(kind)) +
                               " B=" + std::to_string(admission);
      EXPECT_EQ(live.sim.routing_cost, batch.routing_cost) << what;
      EXPECT_EQ(live.sim.rotation_count, batch.rotation_count) << what;
      EXPECT_EQ(live.sim.edge_changes, batch.edge_changes) << what;
      EXPECT_EQ(live.sim.total_cost(), batch.total_cost()) << what;
      EXPECT_EQ(live.sim.requests, m) << what;
      EXPECT_EQ(live.sim.cross_shard, 0) << what;
      EXPECT_EQ(live.handovers, 0u) << what;
    }
  }
}

// At S = 1 the arrival process changes *when* requests are served, never
// in *what order* — total cost is invariant across saturation, Poisson,
// and bursty schedules.
TEST(Frontend, SingleShardCostIndependentOfArrivalProcess) {
  const int n = 48;
  const std::size_t m = 2000;
  const Trace trace = gen_workload(WorkloadKind::kFacebook, n, m, 99);
  Cost reference = -1;
  for (ArrivalKind kind : {ArrivalKind::kSaturation, ArrivalKind::kPoisson,
                           ArrivalKind::kBursty}) {
    const auto arrivals =
        kind == ArrivalKind::kSaturation
            ? saturation(m)
            : gen_arrival_times(kind, 2e6, m, 17);  // ~1 ms of schedule
    ShardedNetwork net = ShardedNetwork::balanced(2, n, 1);
    ServeFrontend fe(net);
    const FrontendResult r = fe.run(trace, arrivals);
    if (reference < 0) reference = r.sim.total_cost();
    EXPECT_EQ(r.sim.total_cost(), reference) << arrival_kind_name(kind);
    EXPECT_EQ(r.sojourn.count(), m) << arrival_kind_name(kind);
  }
}

// Multi-shard conservation on a static map: every request completes
// exactly once, every cross-shard request performs exactly one handover,
// and the dispatched cross count equals the trace's locality stats.
TEST(Frontend, MultiShardServesEverythingOnce) {
  const int n = 96;
  const std::size_t m = 5000;
  const Trace trace = gen_workload(WorkloadKind::kTemporal05, n, m, 7);
  for (int S : {2, 4}) {
    ShardedNetwork net = ShardedNetwork::balanced(3, n, S);
    const ShardLocalityStats stats = compute_shard_stats(trace, net.map());
    ServeFrontend fe(net, {.admission_batch = 32, .queue_capacity = 256});
    const FrontendResult r = fe.run(trace, saturation(m));
    EXPECT_EQ(r.sojourn.count(), m) << "S=" << S;
    EXPECT_EQ(r.queue_wait.count(), m) << "S=" << S;
    EXPECT_EQ(r.sim.cross_shard, static_cast<Cost>(stats.cross_requests))
        << "S=" << S;
    EXPECT_EQ(r.handovers, stats.cross_requests) << "S=" << S;
    EXPECT_EQ(r.forwards, 0u) << "S=" << S;  // static map: no races to lose
    EXPECT_GT(r.sim.total_cost(), 0);
    EXPECT_GT(r.achieved_rate, 0.0);
    EXPECT_DOUBLE_EQ(r.sim.post_intra_fraction, stats.intra_fraction())
        << "S=" << S;
  }
}

// A paced Poisson run completes with sane latency plumbing: measured
// sojourn quantiles are monotone, the mean lies inside [min, max], the
// SimResult mirror matches the histogram, and offered rate is reported.
TEST(Frontend, PoissonOpenLoopReportsLatencies) {
  const int n = 64;
  const std::size_t m = 20000;
  const Trace trace = gen_workload(WorkloadKind::kTemporal075, n, m, 5);
  const auto arrivals = gen_arrival_times(ArrivalKind::kPoisson, 1e6, m, 5);
  ShardedNetwork net = ShardedNetwork::balanced(3, n, 2);
  ServeFrontend fe(net);
  const FrontendResult r = fe.run(trace, arrivals);
  ASSERT_EQ(r.sojourn.count(), m);
  EXPECT_TRUE(r.sim.latency.measured);
  EXPECT_LE(r.sojourn.min(), r.sojourn.p50());
  EXPECT_LE(r.sojourn.p50(), r.sojourn.p99());
  EXPECT_LE(r.sojourn.p99(), r.sojourn.p999());
  EXPECT_LE(r.sojourn.p999(), r.sojourn.max());
  EXPECT_GE(r.sim.latency.mean_us,
            static_cast<double>(r.sojourn.min()) / 1e3);
  EXPECT_LE(r.sim.latency.mean_us,
            static_cast<double>(r.sojourn.max()) / 1e3);
  EXPECT_DOUBLE_EQ(r.sim.latency.p99_us,
                   static_cast<double>(r.sojourn.p99()) / 1e3);
  EXPECT_GT(r.offered_rate, 0.0);
  EXPECT_GT(r.achieved_rate, 0.0);
  // Queue wait is a component of sojourn, never more than all of it.
  EXPECT_LE(r.queue_wait.p50(), r.sojourn.p50());
}

// Online rebalancing through the quiesce barrier: a drifting workload
// must fire epochs and migrate nodes mid-run, with every request still
// served exactly once (forwards may be nonzero, lost requests may not).
TEST(Frontend, RebalancesOnlineUnderDrift) {
  const int n = 96;
  const std::size_t m = 24000;
  const Trace trace = gen_phase_elephants(n, m, 4, 21);
  RebalanceConfig cfg;
  cfg.policy = RebalancePolicy::kHotPair;
  cfg.trigger = RebalanceTrigger::kEveryEpoch;
  cfg.epoch_requests = 2000;
  cfg.max_migrations = 32;
  ShardedNetwork net = ShardedNetwork::balanced(3, n, 4);
  ServeFrontend fe(net, {.rebalance = &cfg});
  const FrontendResult r = fe.run(trace, saturation(m));
  EXPECT_EQ(r.sojourn.count(), m);
  EXPECT_GT(r.sim.rebalance_epochs, 0);
  EXPECT_GT(r.sim.migrations, 0);
  EXPECT_GT(r.sim.migration_cost, 0);
  // post_intra_fraction was recomputed under the final (migrated) map.
  EXPECT_GT(r.sim.post_intra_fraction, 0.0);
  EXPECT_LE(r.sim.post_intra_fraction, 1.0);

  // The same trace through the static frontend completes too, for a
  // like-for-like conservation check (costs differ; conservation holds).
  ShardedNetwork static_net = ShardedNetwork::balanced(3, n, 4);
  ServeFrontend static_fe(static_net);
  const FrontendResult rs = static_fe.run(trace, saturation(m));
  EXPECT_EQ(rs.sojourn.count(), m);
  EXPECT_EQ(rs.forwards, 0u);
}

TEST(Frontend, RejectsBadArguments) {
  ShardedNetwork net = ShardedNetwork::balanced(2, 16, 2);
  EXPECT_THROW(ServeFrontend(net, {.admission_batch = 0}), TreeError);
  EXPECT_THROW(ServeFrontend(net, {.queue_capacity = 0}), TreeError);
  ServeFrontend fe(net);
  const Trace trace = gen_uniform(16, 100, 1);
  const auto wrong = saturation(50);
  EXPECT_THROW(fe.run(trace, wrong), TreeError);
}

}  // namespace
}  // namespace san
