// Cross-cutting conservation laws: the key multiset is fixed after
// construction, identifiers are immutable, ranges stay consistent with
// parent boundaries, and distances agree across all query paths.
#include <gtest/gtest.h>

#include <set>
#include <random>

#include "core/local_router.hpp"
#include "core/shape.hpp"
#include "core/splaynet.hpp"

namespace san {
namespace {

std::multiset<RoutingKey> key_multiset(const KAryTree& t) {
  std::multiset<RoutingKey> keys;
  for (NodeId id = 1; id <= t.size(); ++id)
    keys.insert(t.node(id).keys.begin(), t.node(id).keys.end());
  return keys;
}

TEST(Invariants, KeyMultisetIsConservedAcrossServes) {
  for (int k : {2, 4, 9}) {
    const int n = 150;
    KArySplayNet net = KArySplayNet::balanced(k, n);
    const auto before = key_multiset(net.tree());
    EXPECT_EQ(before.size(), static_cast<size_t>(n) * (k - 1));
    std::mt19937_64 rng(k);
    for (int step = 0; step < 1000; ++step) {
      NodeId u = 1 + static_cast<NodeId>(rng() % n);
      NodeId v = 1 + static_cast<NodeId>(rng() % n);
      if (u != v) net.serve(u, v);
    }
    EXPECT_EQ(key_multiset(net.tree()), before) << "k=" << k;
  }
}

TEST(Invariants, EveryIdKeyExistsExactlyOnce) {
  KArySplayNet net = KArySplayNet::balanced(5, 200);
  std::mt19937_64 rng(77);
  for (int step = 0; step < 500; ++step) {
    NodeId u = 1 + static_cast<NodeId>(rng() % 200);
    NodeId v = 1 + static_cast<NodeId>(rng() % 200);
    if (u != v) net.serve(u, v);
  }
  const auto keys = key_multiset(net.tree());
  for (NodeId id = 1; id <= 200; ++id)
    EXPECT_EQ(keys.count(id_key(id)), 1u) << "id " << id;
}

TEST(Invariants, NodeIdsAreImmutable) {
  KArySplayNet net = KArySplayNet::balanced(3, 90);
  std::mt19937_64 rng(5);
  for (int step = 0; step < 500; ++step) {
    NodeId u = 1 + static_cast<NodeId>(rng() % 90);
    NodeId v = 1 + static_cast<NodeId>(rng() % 90);
    if (u != v) net.serve(u, v);
  }
  for (NodeId id = 1; id <= 90; ++id)
    EXPECT_EQ(net.tree().node(id).id, id);
}

TEST(Invariants, CachedRangesMatchParentBoundaries) {
  // The validator checks this too, but here it is asserted as the direct
  // relation: a child's [lo, hi) is exactly the parent's adjacent keys.
  KArySplayNet net = KArySplayNet::balanced(4, 120);
  std::mt19937_64 rng(6);
  for (int step = 0; step < 800; ++step) {
    NodeId u = 1 + static_cast<NodeId>(rng() % 120);
    NodeId v = 1 + static_cast<NodeId>(rng() % 120);
    if (u != v) net.serve(u, v);
  }
  const KAryTree& t = net.tree();
  for (NodeId id = 1; id <= 120; ++id) {
    const TreeNode& nd = t.node(id);
    for (size_t s = 0; s < nd.children.size(); ++s) {
      NodeId c = nd.children[s];
      if (c == kNoNode) continue;
      const RoutingKey lo = (s == 0) ? nd.lo : nd.keys[s - 1];
      const RoutingKey hi = (s == nd.keys.size()) ? nd.hi : nd.keys[s];
      EXPECT_EQ(t.node(c).lo, lo);
      EXPECT_EQ(t.node(c).hi, hi);
    }
  }
}

TEST(Invariants, DistanceAgreesAcrossQueryPaths) {
  KArySplayNet net = KArySplayNet::balanced(3, 70);
  std::mt19937_64 rng(8);
  for (int step = 0; step < 300; ++step) {
    NodeId a = 1 + static_cast<NodeId>(rng() % 70);
    NodeId b = 1 + static_cast<NodeId>(rng() % 70);
    if (a != b) net.serve(a, b);
  }
  const KAryTree& t = net.tree();
  for (NodeId u = 1; u <= 70; u += 3)
    for (NodeId v = 1; v <= 70; v += 5) {
      const int d = t.distance(u, v);
      EXPECT_EQ(static_cast<int>(t.route(u, v).size()) - 1, d);
      // search path from root to v has length depth(v)
      EXPECT_EQ(static_cast<int>(t.search_from_root(v).size()) - 1,
                t.depth(v));
    }
}

TEST(Invariants, ServeCostEqualsPreAdjustmentDistance) {
  KArySplayNet net = KArySplayNet::balanced(4, 100);
  std::mt19937_64 rng(9);
  for (int step = 0; step < 300; ++step) {
    NodeId u = 1 + static_cast<NodeId>(rng() % 100);
    NodeId v = 1 + static_cast<NodeId>(rng() % 100);
    if (u == v) continue;
    const int d = net.tree().distance(u, v);
    EXPECT_EQ(net.serve(u, v).routing_cost, d);
  }
}

TEST(Invariants, SubtreeSizesSumAfterChurn) {
  // Reachability audit independent of validate(): every id appears once in
  // a DFS and the root subtree covers n.
  KArySplayNet net = KArySplayNet::balanced(6, 222);
  std::mt19937_64 rng(10);
  for (int step = 0; step < 500; ++step) {
    NodeId u = 1 + static_cast<NodeId>(rng() % 222);
    NodeId v = 1 + static_cast<NodeId>(rng() % 222);
    if (u != v) net.serve(u, v);
  }
  std::vector<bool> seen(223, false);
  std::vector<NodeId> stack = {net.tree().root()};
  int count = 0;
  while (!stack.empty()) {
    NodeId cur = stack.back();
    stack.pop_back();
    ASSERT_FALSE(seen[static_cast<size_t>(cur)]);
    seen[static_cast<size_t>(cur)] = true;
    ++count;
    for (NodeId c : net.tree().node(cur).children)
      if (c != kNoNode) stack.push_back(c);
  }
  EXPECT_EQ(count, 222);
}

}  // namespace
}  // namespace san
