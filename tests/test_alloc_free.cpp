// Allocation audit for the serve() hot path. This binary overrides the
// global allocation functions with counting wrappers; after a short warm-up
// (first rotations size the thread-local rotation scratch to its per-arity
// high-water mark), a serve/replay loop must perform ZERO heap allocations:
// KAryTree's flat storage never grows, depth-cache repairs use the
// tree-owned scratch, rotations reuse the thread-local merge buffers, and
// the static costing path is pure pointer chasing.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <random>
#include <vector>

#include "core/binary_splaynet.hpp"
#include "core/local_router.hpp"
#include "core/splaynet.hpp"
#include "sim/simulator.hpp"
#include "static_trees/full_tree.hpp"
#include "workload/generators.hpp"

namespace {
std::atomic<long> g_allocations{0};
}

// Counting replacements for the global allocation functions. Counting the
// allocation side only is enough: the tests assert a zero *delta*, so any
// new/delete pair inside the measured window is caught via the new.
void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}
void* operator new(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(align);
  const std::size_t rounded = size == 0 ? a : (size + a - 1) / a * a;
  if (void* p = std::aligned_alloc(a, rounded)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace san {
namespace {

long allocations() { return g_allocations.load(std::memory_order_relaxed); }

std::vector<Request> random_requests(int n, int count, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<NodeId> pick(1, n);
  std::vector<Request> reqs(static_cast<size_t>(count));
  for (Request& r : reqs) {
    r.src = pick(rng);
    r.dst = pick(rng);
    while (r.dst == r.src) r.dst = pick(rng);
  }
  return reqs;
}

TEST(AllocFree, SanityCounterSeesAllocations) {
  const long before = allocations();
  std::vector<int>* v = new std::vector<int>(100);
  EXPECT_GT(allocations(), before);
  delete v;
}

TEST(AllocFree, KArySplayServeIsAllocationFree) {
  for (int k : {2, 3, 5, 10}) {
    KArySplayNet net = KArySplayNet::balanced(k, 300);
    const std::vector<Request> reqs = random_requests(300, 4000, 42 + k);
    // Warm-up: first rotations grow the thread-local merge scratch to the
    // arity's high-water mark.
    for (int i = 0; i < 1000; ++i) net.serve(reqs[i].src, reqs[i].dst);

    const long before = allocations();
    Cost total = 0;
    for (int i = 1000; i < 4000; ++i) {
      const ServeResult s = net.serve(reqs[i].src, reqs[i].dst);
      total += s.routing_cost + s.rotations;
    }
    EXPECT_EQ(allocations() - before, 0)
        << "k=" << k << " serve() allocated on the hot path";
    EXPECT_GT(total, 0);
  }
}

TEST(AllocFree, StaticReplayAndTopologyQueriesAreAllocationFree) {
  const KAryTree tree = full_kary_tree(4, 500);
  const std::vector<Request> reqs = random_requests(500, 3000, 7);
  Trace trace;
  trace.n = 500;
  trace.requests = reqs;
  // Warm-up fills the depth memo (and proves the first pass allocates
  // nothing either — the repair walk uses tree-owned scratch).
  const long before_cold = allocations();
  const SimResult cold = run_trace_static(tree, trace);
  EXPECT_EQ(allocations() - before_cold, 0) << "cold static replay allocated";

  const long before = allocations();
  const SimResult warm = run_trace_static(tree, trace);
  Cost depth_sum = 0;
  for (NodeId id = 1; id <= tree.size(); ++id) depth_sum += tree.depth(id);
  for (int i = 0; i < 500; ++i) {
    const PathInfo info = tree.path_info(reqs[i].src, reqs[i].dst);
    depth_sum += info.distance + tree.distance(reqs[i].src, reqs[i].dst);
  }
  EXPECT_EQ(allocations() - before, 0) << "warm static queries allocated";
  EXPECT_EQ(cold.routing_cost, warm.routing_cost);
  EXPECT_GT(depth_sum, 0);
}

TEST(AllocFree, BufferReusingVariantsAreAllocationFreeOnceWarm) {
  KArySplayNet net = KArySplayNet::balanced(3, 200);
  const std::vector<Request> reqs = random_requests(200, 2000, 99);
  for (int i = 0; i < 500; ++i) net.serve(reqs[i].src, reqs[i].dst);

  std::vector<NodeId> path;
  std::vector<Hop> hops;
  // Caller-owned buffers: reserve the worst case up front (that is the
  // documented usage). The router's internal thread-local buffer grows to
  // its high-water mark during a full warm-up pass over the same request
  // sequence the measured loop replays.
  path.reserve(static_cast<size_t>(net.size()) + 1);
  hops.reserve(4 * static_cast<size_t>(net.size()) + 1);
  for (int i = 500; i < 2000; ++i)
    local_route_length(net.tree(), reqs[i].dst, reqs[i].src);

  const long before = allocations();
  long hop_total = 0;
  for (int i = 500; i < 2000; ++i) {
    hop_total += net.tree().route_into(reqs[i].src, reqs[i].dst, path);
    hop_total += net.tree().search_from_root_into(reqs[i].dst, path);
    hop_total += local_route_into(net.tree(), reqs[i].src, reqs[i].dst, hops);
    hop_total += local_route_length(net.tree(), reqs[i].dst, reqs[i].src);
  }
  EXPECT_EQ(allocations() - before, 0) << "buffer-reusing variants allocated";
  EXPECT_GT(hop_total, 0);
}

TEST(AllocFree, BinarySplayServeIsAllocationFree) {
  BinarySplayNet net(300);
  const std::vector<Request> reqs = random_requests(300, 3000, 5);
  for (int i = 0; i < 500; ++i) net.serve(reqs[i].src, reqs[i].dst);
  const long before = allocations();
  for (int i = 500; i < 3000; ++i) net.serve(reqs[i].src, reqs[i].dst);
  EXPECT_EQ(allocations() - before, 0) << "binary serve allocated";
}

}  // namespace
}  // namespace san
