// Persistent-executor contract: one pool reused across rounds, chunked
// coverage of the index range, exception propagation to the caller, and
// identical side effects regardless of thread count.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/parallel.hpp"

namespace san {
namespace {

TEST(Executor, CoversEveryIndexExactlyOnce) {
  for (int threads : {0, 1, 2, 7}) {
    const long n = 10007;  // prime, so no chunk size divides it evenly
    std::vector<std::atomic<int>> hits(n);
    parallel_for(0, n, threads, [&](long i) {
      hits[static_cast<size_t>(i)].fetch_add(1, std::memory_order_relaxed);
    });
    for (long i = 0; i < n; ++i)
      ASSERT_EQ(hits[static_cast<size_t>(i)].load(), 1)
          << "index " << i << " with threads=" << threads;
  }
}

TEST(Executor, EmptyAndReversedRangesAreNoOps) {
  std::atomic<int> calls{0};
  parallel_for(5, 5, 0, [&](long) { calls.fetch_add(1); });
  parallel_for(9, 3, 0, [&](long) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(Executor, SerialAndParallelSideEffectsMatch) {
  const long n = 4096;
  std::vector<long> serial(n), parallel(n);
  auto work = [](long i) { return i * i - 3 * i + 7; };
  parallel_for(0, n, 1, [&](long i) { serial[i] = work(i); });
  parallel_for(0, n, 8, [&](long i) { parallel[i] = work(i); });
  EXPECT_EQ(serial, parallel);
}

TEST(Executor, PoolIsReusedAcrossRounds) {
  Executor& exec = Executor::instance();
  // Explicit threads=4 forces a pool even on single-core hosts (the
  // pre-pool parallel_for oversubscribed the same way).
  auto collect_ids = [] {
    std::mutex mu;
    std::set<std::thread::id> ids;
    parallel_for(0, 64, 4, [&](long) {
      std::lock_guard<std::mutex> lock(mu);
      ids.insert(std::this_thread::get_id());
    });
    return ids;
  };
  const std::size_t rounds_before = exec.rounds_dispatched();
  std::set<std::thread::id> ids;
  const int kRounds = 10;
  for (int r = 0; r < kRounds; ++r)
    for (const auto& id : collect_ids()) ids.insert(id);
  EXPECT_GE(exec.pool_size(), 3);
  EXPECT_EQ(exec.rounds_dispatched(), rounds_before + kRounds);
  // Spawn-per-call would mint fresh thread ids every round (up to
  // kRounds * pool_size distinct ids); a persistent pool serves every
  // round from the same pool_size workers plus the caller.
  EXPECT_LE(ids.size(), static_cast<size_t>(exec.pool_size()) + 1);
}

TEST(Executor, ExceptionPropagatesToCaller) {
  for (int threads : {1, 4}) {
    std::atomic<int> calls{0};
    try {
      parallel_for(0, 1000, threads, [&](long i) {
        calls.fetch_add(1, std::memory_order_relaxed);
        if (i == 501) throw std::runtime_error("boom at 501");
      });
      FAIL() << "expected the worker exception to surface (threads="
             << threads << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "boom at 501");
    }
    EXPECT_GT(calls.load(), 0);
  }
}

TEST(Executor, RecoversAfterException) {
  EXPECT_THROW(
      parallel_for(0, 100, 0, [](long) { throw std::logic_error("x"); }),
      std::logic_error);
  // The pool must come back clean: a follow-up round runs to completion.
  std::atomic<long> sum{0};
  parallel_for(1, 101, 0,
               [&](long i) { sum.fetch_add(i, std::memory_order_relaxed); });
  EXPECT_EQ(sum.load(), 5050);
}

TEST(Executor, NestedCallsRunSerially) {
  // A nested parallel_for from inside a round must not deadlock on the
  // busy pool; it degrades to a serial loop on that participant.
  std::vector<std::atomic<int>> hits(32 * 32);
  parallel_for(0, 32, 0, [&](long outer) {
    parallel_for(0, 32, 0, [&](long inner) {
      hits[static_cast<size_t>(outer * 32 + inner)].fetch_add(1);
    });
  });
  for (auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(Executor, ConcurrentCallersAreSerialized) {
  // Two foreign threads driving rounds at once: rounds must not corrupt
  // each other's ranges.
  auto drive = [](std::vector<int>& out) {
    for (int round = 0; round < 50; ++round)
      parallel_for(0, static_cast<long>(out.size()), 0,
                   [&](long i) { out[static_cast<size_t>(i)] += 1; });
  };
  std::vector<int> a(257, 0), b(509, 0);
  std::thread ta([&] { drive(a); });
  std::thread tb([&] { drive(b); });
  ta.join();
  tb.join();
  for (int v : a) ASSERT_EQ(v, 50);
  for (int v : b) ASSERT_EQ(v, 50);
}

TEST(Executor, ParallelTasksRunAll) {
  std::atomic<int> ran{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 20; ++i)
    tasks.push_back([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  parallel_tasks(std::move(tasks), 0);
  EXPECT_EQ(ran.load(), 20);
}

TEST(Executor, ResolveThreads) {
  EXPECT_EQ(resolve_threads(3), 3);
  EXPECT_EQ(resolve_threads(1), 1);
  EXPECT_GE(resolve_threads(0), 1);
}

}  // namespace
}  // namespace san
