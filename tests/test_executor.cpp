// Persistent-executor contract: one pool reused across rounds, chunked
// coverage of the index range, exception propagation to the caller, and
// identical side effects regardless of thread count.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/parallel.hpp"

namespace san {
namespace {

TEST(Executor, CoversEveryIndexExactlyOnce) {
  for (int threads : {0, 1, 2, 7}) {
    const long n = 10007;  // prime, so no chunk size divides it evenly
    std::vector<std::atomic<int>> hits(n);
    parallel_for(0, n, threads, [&](long i) {
      hits[static_cast<size_t>(i)].fetch_add(1, std::memory_order_relaxed);
    });
    for (long i = 0; i < n; ++i)
      ASSERT_EQ(hits[static_cast<size_t>(i)].load(), 1)
          << "index " << i << " with threads=" << threads;
  }
}

TEST(Executor, EmptyAndReversedRangesAreNoOps) {
  std::atomic<int> calls{0};
  parallel_for(5, 5, 0, [&](long) { calls.fetch_add(1); });
  parallel_for(9, 3, 0, [&](long) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(Executor, SerialAndParallelSideEffectsMatch) {
  const long n = 4096;
  std::vector<long> serial(n), parallel(n);
  auto work = [](long i) { return i * i - 3 * i + 7; };
  parallel_for(0, n, 1, [&](long i) { serial[i] = work(i); });
  parallel_for(0, n, 8, [&](long i) { parallel[i] = work(i); });
  EXPECT_EQ(serial, parallel);
}

TEST(Executor, PoolIsReusedAcrossRounds) {
  Executor& exec = Executor::instance();
  // Explicit threads=4 forces a pool even on single-core hosts (the
  // pre-pool parallel_for oversubscribed the same way).
  auto collect_ids = [] {
    std::mutex mu;
    std::set<std::thread::id> ids;
    parallel_for(0, 64, 4, [&](long) {
      std::lock_guard<std::mutex> lock(mu);
      ids.insert(std::this_thread::get_id());
    });
    return ids;
  };
  const std::size_t rounds_before = exec.rounds_dispatched();
  std::set<std::thread::id> ids;
  const int kRounds = 10;
  for (int r = 0; r < kRounds; ++r)
    for (const auto& id : collect_ids()) ids.insert(id);
  EXPECT_GE(exec.pool_size(), 3);
  EXPECT_EQ(exec.rounds_dispatched(), rounds_before + kRounds);
  // Spawn-per-call would mint fresh thread ids every round (up to
  // kRounds * pool_size distinct ids); a persistent pool serves every
  // round from the same pool_size workers plus the caller.
  EXPECT_LE(ids.size(), static_cast<size_t>(exec.pool_size()) + 1);
}

TEST(Executor, ExceptionPropagatesToCaller) {
  for (int threads : {1, 4}) {
    std::atomic<int> calls{0};
    try {
      parallel_for(0, 1000, threads, [&](long i) {
        calls.fetch_add(1, std::memory_order_relaxed);
        if (i == 501) throw std::runtime_error("boom at 501");
      });
      FAIL() << "expected the worker exception to surface (threads="
             << threads << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "boom at 501");
    }
    EXPECT_GT(calls.load(), 0);
  }
}

TEST(Executor, RecoversAfterException) {
  EXPECT_THROW(
      parallel_for(0, 100, 0, [](long) { throw std::logic_error("x"); }),
      std::logic_error);
  // The pool must come back clean: a follow-up round runs to completion.
  std::atomic<long> sum{0};
  parallel_for(1, 101, 0,
               [&](long i) { sum.fetch_add(i, std::memory_order_relaxed); });
  EXPECT_EQ(sum.load(), 5050);
}

TEST(Executor, NestedCallsRunSerially) {
  // A nested parallel_for from inside a round must not deadlock on the
  // busy pool; it degrades to a serial loop on that participant.
  std::vector<std::atomic<int>> hits(32 * 32);
  parallel_for(0, 32, 0, [&](long outer) {
    parallel_for(0, 32, 0, [&](long inner) {
      hits[static_cast<size_t>(outer * 32 + inner)].fetch_add(1);
    });
  });
  for (auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(Executor, ConcurrentCallersAreSerialized) {
  // Two foreign threads driving rounds at once: rounds must not corrupt
  // each other's ranges.
  auto drive = [](std::vector<int>& out) {
    for (int round = 0; round < 50; ++round)
      parallel_for(0, static_cast<long>(out.size()), 0,
                   [&](long i) { out[static_cast<size_t>(i)] += 1; });
  };
  std::vector<int> a(257, 0), b(509, 0);
  std::thread ta([&] { drive(a); });
  std::thread tb([&] { drive(b); });
  ta.join();
  tb.join();
  for (int v : a) ASSERT_EQ(v, 50);
  for (int v : b) ASSERT_EQ(v, 50);
}

TEST(Executor, ParallelTasksRunAll) {
  std::atomic<int> ran{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 20; ++i)
    tasks.push_back([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  parallel_tasks(std::move(tasks), 0);
  EXPECT_EQ(ran.load(), 20);
}

TEST(Executor, ResolveThreads) {
  EXPECT_EQ(resolve_threads(3), 3);
  EXPECT_EQ(resolve_threads(1), 1);
  EXPECT_GE(resolve_threads(0), 1);
}

/// Drives a round on an owned pool through the type-erased interface
/// (parallel_for is hard-wired to the shared instance()).
template <typename Fn>
void run_on(Executor& exec, long begin, long end, int threads, Fn&& fn) {
  using Decayed = std::remove_reference_t<Fn>;
  exec.for_range(begin, end, threads, &fn,
                 [](void* ctx, long i) { (*static_cast<Decayed*>(ctx))(i); });
}

// Shutdown-vs-late-worker stress: destroy the pool immediately after a
// round completes, over and over. A worker that is still waking from the
// posted round must observe the closed slots / stop flag under the lock
// and exit cleanly; any flaw here is a join-on-detached or use-after-free
// that TSan (and often plain ASAN/crash) catches within a few hundred
// iterations.
TEST(Executor, DestructionRacesLateWakingWorkers) {
  for (int iter = 0; iter < 300; ++iter) {
    std::atomic<long> sum{0};
    {
      Executor pool;
      // Tiny range with many participants: most workers wake to find the
      // cursor already drained — exactly the late-waker window.
      run_on(pool, 0, 8, 4, [&](long i) {
        sum.fetch_add(i, std::memory_order_relaxed);
      });
    }  // pool destroyed while its workers may still be mid-wakeup
    ASSERT_EQ(sum.load(), 28) << "iter " << iter;
  }
}

// Regression: when fn throws on the *caller* (or any participant), the
// round must fully quiesce — no fn still executing anywhere — before the
// exception is rethrown to the caller. Otherwise a worker could still be
// touching caller-owned state after for_range returned.
TEST(Executor, ExceptionRethrownOnlyAfterWorkersQuiesce) {
  for (int iter = 0; iter < 50; ++iter) {
    Executor pool;
    std::atomic<int> in_flight{0};
    std::atomic<int> max_seen{0};
    auto body = [&](long i) {
      const int now = in_flight.fetch_add(1, std::memory_order_acq_rel) + 1;
      int prev = max_seen.load(std::memory_order_relaxed);
      while (now > prev &&
             !max_seen.compare_exchange_weak(prev, now,
                                             std::memory_order_relaxed)) {
      }
      if (i == 0) {  // index 0 lands in the caller's first chunk
        in_flight.fetch_sub(1, std::memory_order_acq_rel);
        throw std::runtime_error("caller chunk boom");
      }
      // Give other participants time to be genuinely mid-fn when the
      // throw happens, so a premature rethrow would observe them.
      for (volatile int spin = 0; spin < 2000; ++spin) {
      }
      in_flight.fetch_sub(1, std::memory_order_acq_rel);
    };
    bool threw = false;
    try {
      run_on(pool, 0, 2048, 4, body);
    } catch (const std::runtime_error&) {
      threw = true;
      // The contract: rethrow happens only after every participant
      // drained. Nothing may still be inside fn now.
      EXPECT_EQ(in_flight.load(std::memory_order_acquire), 0)
          << "iter " << iter;
    }
    ASSERT_TRUE(threw) << "iter " << iter;
    EXPECT_GE(max_seen.load(), 1);
    // And the pool is still usable after the failed round.
    std::atomic<long> sum{0};
    run_on(pool, 0, 100, 4, [&](long i) {
      sum.fetch_add(i + 1, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 5050);
  }
}

// Owned pools are independent: rounds on two pools from two threads do
// not share round state (instance() serializes via round_mu; two owned
// pools must not need to).
TEST(Executor, OwnedPoolsAreIndependent) {
  Executor pa, pb;
  std::vector<int> a(1001, 0), b(2003, 0);
  std::thread ta([&] {
    for (int r = 0; r < 20; ++r)
      run_on(pa, 0, static_cast<long>(a.size()), 3,
             [&](long i) { a[static_cast<size_t>(i)] += 1; });
  });
  std::thread tb([&] {
    for (int r = 0; r < 20; ++r)
      run_on(pb, 0, static_cast<long>(b.size()), 3,
             [&](long i) { b[static_cast<size_t>(i)] += 1; });
  });
  ta.join();
  tb.join();
  for (int v : a) ASSERT_EQ(v, 20);
  for (int v : b) ASSERT_EQ(v, 20);
}

}  // namespace
}  // namespace san
