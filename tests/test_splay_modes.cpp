// SplayMode variants: the semi-splay-only network must preserve every
// invariant of the full splayer while adjusting more gently.
#include <gtest/gtest.h>

#include <random>

#include "core/splaynet.hpp"
#include "workload/generators.hpp"

namespace san {
namespace {

TEST(SplayModes, SemiOnlyPreservesInvariants) {
  for (int k : {2, 4, 7}) {
    const int n = 120;
    KArySplayNet net = KArySplayNet::balanced(k, n, RotationPolicy{},
                                              SplayMode::kSemiSplayOnly);
    std::mt19937_64 rng(k);
    for (int step = 0; step < 400; ++step) {
      NodeId u = 1 + static_cast<NodeId>(rng() % n);
      NodeId v = 1 + static_cast<NodeId>(rng() % n);
      if (u != v) net.serve(u, v);
    }
    auto err = net.tree().validate();
    ASSERT_FALSE(err.has_value()) << "k=" << k << ": " << *err;
    for (NodeId id = 1; id <= n; ++id)
      EXPECT_EQ(net.tree().node(id).keys.size(), static_cast<size_t>(k - 1));
  }
}

TEST(SplayModes, SemiOnlyStillBringsEndpointsAdjacent) {
  KArySplayNet net = KArySplayNet::balanced(3, 80, RotationPolicy{},
                                            SplayMode::kSemiSplayOnly);
  std::mt19937_64 rng(9);
  for (int step = 0; step < 100; ++step) {
    NodeId u = 1 + static_cast<NodeId>(rng() % 80);
    NodeId v = 1 + static_cast<NodeId>(rng() % 80);
    if (u == v) continue;
    net.serve(u, v);
    EXPECT_EQ(net.tree().distance(u, v), 1);
  }
}

TEST(SplayModes, SemiOnlyAccessReachesRoot) {
  KArySplayNet net = KArySplayNet::balanced(4, 100, RotationPolicy{},
                                            SplayMode::kSemiSplayOnly);
  net.access(42);
  EXPECT_EQ(net.tree().root(), 42);
  EXPECT_TRUE(net.tree().valid());
}

TEST(SplayModes, FullSplayUsesFewerRotationsPerServe) {
  // Full splay climbs two levels per rotation, semi-splay one: on the same
  // fresh tree the first serve of a deep pair needs ~2x the rotations in
  // semi mode.
  const int n = 511;
  KArySplayNet full = KArySplayNet::balanced(2, n);
  KArySplayNet semi = KArySplayNet::balanced(2, n, RotationPolicy{},
                                             SplayMode::kSemiSplayOnly);
  // A deep pair on the complete tree: two leaves on opposite flanks.
  NodeId a = 1, b = n;
  const ServeResult rf = full.serve(a, b);
  const ServeResult rs = semi.serve(a, b);
  EXPECT_EQ(rf.routing_cost, rs.routing_cost);
  EXPECT_GT(rs.rotations, rf.rotations);
}

TEST(SplayModes, SemiModeRemainsBalancedUnderLoad) {
  // Semi-splaying is a legitimate self-adjustment strategy: depth must stay
  // logarithmic, not degrade to linear.
  const int n = 512;
  KArySplayNet net = KArySplayNet::balanced(3, n, RotationPolicy{},
                                            SplayMode::kSemiSplayOnly);
  Trace t = gen_uniform(n, 20000, 3);
  for (const Request& r : t.requests) net.serve(r.src, r.dst);
  double depth = 0;
  for (NodeId id = 1; id <= n; ++id) depth += net.tree().depth(id);
  EXPECT_LT(depth / n, 40.0);
}

}  // namespace
}  // namespace san
