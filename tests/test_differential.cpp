// Differential check: KArySplayNet at k = 2 must be *exactly* classic
// SplayNet. Starting from identical topologies, the two independent
// implementations (flat k-ary engine vs plain left/right/parent BST) must
// produce identical per-request ServeResults — routing cost, rotation
// count, parent changes, and edge changes — over long randomized request
// sequences, and identical tree evolution. Any divergence in the merge /
// block-partition rotation engine, the depth-directed lca/distance, or the
// snapshot-diff accounting shows up here within a few requests.
#include <gtest/gtest.h>

#include <random>

#include "core/binary_splaynet.hpp"
#include "core/shape.hpp"
#include "core/splaynet.hpp"

namespace san {
namespace {

// Mirror of BinarySplayNet::build_balanced([lo, hi]) as a Shape: midpoint
// root, ids assigned in order — so build_from_shape(2, ...) reproduces the
// binary net's initial topology node for node.
Shape balanced_bst_shape(int count) {
  Shape s;
  s.size = count;
  if (count <= 1) return s;
  const int left = (count - 1) / 2;   // nodes below mid = lo + (hi-lo)/2
  const int right = count - 1 - left;
  if (left > 0) s.kids.push_back(balanced_bst_shape(left));
  s.self_pos = static_cast<int>(s.kids.size());
  if (right > 0) s.kids.push_back(balanced_bst_shape(right));
  return s;
}

// Structural equality: same parent for every node implies the same tree.
void expect_same_topology(const KAryTree& kary, const BinarySplayNet& bin,
                          int request_index) {
  ASSERT_EQ(kary.size(), bin.size());
  EXPECT_EQ(kary.root(), bin.root()) << "after request " << request_index;
  for (NodeId id = 1; id <= kary.size(); ++id)
    ASSERT_EQ(kary.parent(id), bin.parent(id))
        << "node " << id << " after request " << request_index;
}

TEST(Differential, InitialBalancedTopologiesMatch) {
  for (int n : {1, 2, 3, 7, 20, 64, 100}) {
    BinarySplayNet bin(n);
    KAryTree kary = build_from_shape(2, balanced_bst_shape(n));
    ASSERT_FALSE(kary.validate().has_value());
    expect_same_topology(kary, bin, -1);
  }
}

TEST(Differential, TenThousandRandomServesAcrossSeeds) {
  constexpr int kNodes = 64;
  constexpr int kRequests = 10000;
  for (std::uint64_t seed : {11u, 222u, 3333u}) {
    BinarySplayNet bin(kNodes);
    KArySplayNet kary(build_from_shape(2, balanced_bst_shape(kNodes)));
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<NodeId> pick(1, kNodes);
    for (int i = 0; i < kRequests; ++i) {
      const NodeId u = pick(rng);
      NodeId v = pick(rng);
      while (v == u) v = pick(rng);
      const ServeResult kr = kary.serve(u, v);
      const ServeResult br = bin.serve(u, v);
      ASSERT_EQ(kr, br) << "seed " << seed << " request " << i << " (" << u
                        << " -> " << v << "): kary {" << kr.routing_cost
                        << ", " << kr.rotations << ", " << kr.parent_changes
                        << ", " << kr.edge_changes << "} vs binary {"
                        << br.routing_cost << ", " << br.rotations << ", "
                        << br.parent_changes << ", " << br.edge_changes << "}";
      if (i % 1000 == 0) {
        ASSERT_FALSE(kary.tree().validate().has_value());
        ASSERT_TRUE(bin.valid());
        expect_same_topology(kary.tree(), bin, i);
      }
    }
    expect_same_topology(kary.tree(), bin, kRequests);
  }
}

TEST(Differential, AccessSequencesMatch) {
  // Theorem 12 mode: every request originates at the root (splay-tree
  // access). Zipf-ish skew so some nodes are accessed repeatedly.
  constexpr int kNodes = 50;
  BinarySplayNet bin(kNodes);
  KArySplayNet kary(build_from_shape(2, balanced_bst_shape(kNodes)));
  std::mt19937_64 rng(77);
  std::uniform_int_distribution<NodeId> pick(1, kNodes);
  for (int i = 0; i < 5000; ++i) {
    const NodeId x = std::min(pick(rng), pick(rng));  // mild skew to low ids
    const ServeResult kr = kary.access(x);
    const ServeResult br = bin.access(x);
    ASSERT_EQ(kr, br) << "access " << i << " of node " << x;
  }
  expect_same_topology(kary.tree(), bin, 5000);
}

}  // namespace
}  // namespace san
