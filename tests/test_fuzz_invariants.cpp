// Property fuzz: randomized serve/access/rotation sequences interleaved
// with full audits. Seeded and deterministic (tier1). Invariants beyond
// validate()'s structural/search-property checks:
//   * depth cache: depth() always equals an independent parent-chase
//     recompute, reads stamp the memo, and validate() cross-checks every
//     fresh memo against true BFS depths;
//   * lo/hi ranges: recomputed top-down from the keys alone, they must
//     partition each node's range exactly as the cached lo/hi claim;
//   * adjustment accounting: each rotation's edge_changes/parent_changes
//     must match an independently diffed before/after parent snapshot.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "core/rotation.hpp"
#include "core/shape.hpp"
#include "core/splaynet.hpp"

namespace san {
namespace {

// Independent depth recompute: pure parent chasing, no cache involvement.
int chase_depth(const KAryTree& t, NodeId id) {
  int d = 0;
  for (NodeId cur = id; t.parent(cur) != kNoNode; cur = t.parent(cur)) ++d;
  return d;
}

void expect_depth_cache_consistent(const KAryTree& t) {
  for (NodeId id = 1; id <= t.size(); ++id) {
    ASSERT_EQ(t.depth(id), chase_depth(t, id)) << "node " << id;
    ASSERT_TRUE(t.depth_is_cached(id)) << "read did not stamp node " << id;
  }
  // With every memo now stamped, validate()'s depth audit covers all nodes.
  const auto err = t.validate();
  ASSERT_FALSE(err.has_value()) << *err;
}

// Recompute every node's [lo, hi) from the root down using only the keys,
// and check the cached ranges and the child-interval partition.
void expect_ranges_partition(const KAryTree& t) {
  struct Frame {
    NodeId id;
    RoutingKey lo, hi;
  };
  std::vector<Frame> stack = {{t.root(), kKeyMin, kKeyMax}};
  int visited = 0;
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    ++visited;
    ASSERT_EQ(t.lo(f.id), f.lo) << "node " << f.id;
    ASSERT_EQ(t.hi(f.id), f.hi) << "node " << f.id;
    const TreeNode nd = t.node(f.id);
    // The child intervals (lo, k1), (k1, k2), ..., (km, hi) partition the
    // node's open range: consecutive, non-empty, strictly increasing.
    RoutingKey prev = f.lo;
    for (const RoutingKey rk : nd.keys) {
      ASSERT_GT(rk, prev) << "node " << f.id;
      prev = rk;
    }
    ASSERT_LT(prev, f.hi) << "node " << f.id;
    for (size_t s = 0; s < nd.children.size(); ++s) {
      const NodeId c = nd.children[s];
      if (c == kNoNode) continue;
      const RoutingKey clo = (s == 0) ? f.lo : nd.keys[s - 1];
      const RoutingKey chi = (s == nd.keys.size()) ? f.hi : nd.keys[s];
      // The child's own id must fall strictly inside its interval.
      ASSERT_GT(id_key(c), clo);
      ASSERT_LT(id_key(c), chi);
      stack.push_back({c, clo, chi});
    }
  }
  ASSERT_EQ(visited, t.size());
}

std::vector<NodeId> snapshot_parents(const KAryTree& t) {
  std::vector<NodeId> parents(static_cast<size_t>(t.size()) + 1, kNoNode);
  for (NodeId id = 1; id <= t.size(); ++id) parents[id] = t.parent(id);
  return parents;
}

RotationResult diff_parents(const KAryTree& t,
                            const std::vector<NodeId>& before) {
  RotationResult res;
  for (NodeId id = 1; id <= t.size(); ++id) {
    const NodeId now = t.parent(id);
    if (now == before[static_cast<size_t>(id)]) continue;
    ++res.parent_changes;
    if (before[static_cast<size_t>(id)] != kNoNode) ++res.edge_changes;
    if (now != kNoNode) ++res.edge_changes;
  }
  return res;
}

TEST(FuzzInvariants, ServeAccessMixWithFullAudits) {
  for (const auto& [k, n, seed] : {std::tuple{2, 48, 101u},
                                   std::tuple{3, 80, 202u},
                                   std::tuple{5, 120, 303u},
                                   std::tuple{8, 64, 404u}}) {
    std::mt19937_64 rng(seed);
    KArySplayNet net(build_from_shape(k, make_random_shape(n, k, rng)));
    std::uniform_int_distribution<NodeId> pick(1, n);
    std::uniform_int_distribution<int> op(0, 9);
    for (int i = 0; i < 1200; ++i) {
      const NodeId u = pick(rng);
      NodeId v = pick(rng);
      while (v == u) v = pick(rng);
      if (op(rng) == 0)
        net.access(u);
      else
        net.serve(u, v);
      if (i % 100 == 99) {
        expect_depth_cache_consistent(net.tree());
        expect_ranges_partition(net.tree());
      }
    }
  }
}

TEST(FuzzInvariants, RotationAccountingMatchesIndependentEdgeDiff) {
  for (const auto& [k, n, seed] : {std::tuple{2, 40, 1u}, std::tuple{3, 60, 2u},
                                   std::tuple{6, 90, 3u}}) {
    std::mt19937_64 rng(seed);
    KAryTree t = build_from_shape(k, make_random_shape(n, k, rng));
    std::uniform_int_distribution<NodeId> pick(1, n);
    int splays = 0, semis = 0;
    for (int i = 0; i < 1500; ++i) {
      const NodeId x = pick(rng);
      const NodeId p = t.parent(x);
      if (p == kNoNode) continue;  // root: no rotation defined
      const std::vector<NodeId> before = snapshot_parents(t);
      RotationResult reported;
      if (t.parent(p) != kNoNode && (rng() & 1)) {
        reported = k_splay(t, x);
        ++splays;
      } else {
        reported = k_semi_splay(t, x);
        ++semis;
      }
      const RotationResult independent = diff_parents(t, before);
      ASSERT_EQ(reported.parent_changes, independent.parent_changes)
          << "k=" << k << " rotation " << i << " of node " << x;
      ASSERT_EQ(reported.edge_changes, independent.edge_changes)
          << "k=" << k << " rotation " << i << " of node " << x;
      if (i % 150 == 0) {
        const auto err = t.validate();
        ASSERT_FALSE(err.has_value()) << *err;
      }
    }
    // The mix must actually exercise both rotation kinds.
    EXPECT_GT(splays, 100);
    EXPECT_GT(semis, 100);
  }
}

TEST(FuzzInvariants, DepthMemoSurvivesInterleavedReadsAndRotations) {
  // Reads fill the memo; rotations invalidate it wholesale via the epoch.
  // Interleave them in every order and verify depth() never returns a stale
  // value (the exact failure mode an incremental-update bug would cause).
  std::mt19937_64 rng(555);
  KAryTree t = build_from_shape(4, make_random_shape(100, 4, rng));
  std::uniform_int_distribution<NodeId> pick(1, 100);
  for (int i = 0; i < 3000; ++i) {
    const NodeId x = pick(rng);
    switch (rng() % 3) {
      case 0:
        ASSERT_EQ(t.depth(x), chase_depth(t, x)) << "op " << i;
        break;
      case 1: {
        if (t.parent(x) == kNoNode) break;
        if (t.parent(t.parent(x)) != kNoNode)
          k_splay(t, x);
        else
          k_semi_splay(t, x);
        break;
      }
      case 2: {
        NodeId y = pick(rng);
        const PathInfo info = t.path_info(x, y);
        ASSERT_EQ(info.distance,
                  chase_depth(t, x) + chase_depth(t, y) -
                      2 * chase_depth(t, info.lca))
            << "op " << i;
        ASSERT_TRUE(t.is_ancestor(info.lca, x));
        ASSERT_TRUE(t.is_ancestor(info.lca, y));
        break;
      }
    }
  }
}

}  // namespace
}  // namespace san
