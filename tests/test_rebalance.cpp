// Adaptive shard rebalancing: window/policy/trigger units, migration
// application on the serving engine, the rebalance-disabled differential
// against PR 3's static pipeline, sequential-vs-concurrent epoch drains,
// and a golden static-vs-adaptive cost lock on the drifting workloads.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "workload/generators.hpp"
#include "workload/rebalance.hpp"

namespace san {
namespace {

void expect_same(const SimResult& a, const SimResult& b,
                 const std::string& what) {
  EXPECT_EQ(a.routing_cost, b.routing_cost) << what;
  EXPECT_EQ(a.rotation_count, b.rotation_count) << what;
  EXPECT_EQ(a.edge_changes, b.edge_changes) << what;
  EXPECT_EQ(a.cross_shard, b.cross_shard) << what;
  EXPECT_EQ(a.requests, b.requests) << what;
  EXPECT_EQ(a.rebalance_epochs, b.rebalance_epochs) << what;
  EXPECT_EQ(a.migrations, b.migrations) << what;
  EXPECT_EQ(a.migration_cost, b.migration_cost) << what;
  EXPECT_DOUBLE_EQ(a.post_intra_fraction, b.post_intra_fraction) << what;
}

void expect_same_shards(const ShardedNetwork& a, const ShardedNetwork& b,
                        const std::string& what) {
  ASSERT_EQ(a.num_shards(), b.num_shards()) << what;
  for (int s = 0; s < a.num_shards(); ++s) {
    const KAryTree& ta = a.shard(s).tree();
    const KAryTree& tb = b.shard(s).tree();
    ASSERT_EQ(ta.size(), tb.size()) << what << " shard " << s;
    for (NodeId id = 1; id <= ta.size(); ++id) {
      ASSERT_EQ(ta.parent(id), tb.parent(id))
          << what << " shard " << s << " node " << id;
      ASSERT_EQ(ta.slot_in_parent(id), tb.slot_in_parent(id))
          << what << " shard " << s << " node " << id;
    }
  }
}

// --- window / policy units ---------------------------------------------

TEST(Rebalance, WindowObservesAndAges) {
  RebalanceConfig cfg;
  cfg.policy = RebalancePolicy::kHotPair;
  cfg.trigger = RebalanceTrigger::kEveryEpoch;
  cfg.window_decay = 0.5;
  RebalanceState state(cfg);
  ShardMap map(8, 2, ShardPartition::kContiguous);

  for (int i = 0; i < 8; ++i) state.observe({1, 5}, map);  // cross
  for (int i = 0; i < 4; ++i) state.observe({2, 3}, map);  // intra
  EXPECT_DOUBLE_EQ(state.pair_weight(1, 5), 8.0);
  EXPECT_DOUBLE_EQ(state.pair_weight(5, 1), 8.0);  // unordered
  EXPECT_DOUBLE_EQ(state.pair_weight(2, 3), 4.0);
  EXPECT_DOUBLE_EQ(state.window_requests(), 12.0);
  EXPECT_DOUBLE_EQ(state.window_cross(), 8.0);

  RebalancePlan plan = state.epoch(map, RebalanceCostHints{});
  EXPECT_TRUE(plan.triggered);
  EXPECT_DOUBLE_EQ(plan.cross_fraction, 8.0 / 12.0);
  // epoch() ages the window afterwards.
  EXPECT_DOUBLE_EQ(state.pair_weight(1, 5), 4.0);
  EXPECT_DOUBLE_EQ(state.window_requests(), 6.0);

  // Three more idle halvings leave both pairs at small dyadic weights —
  // NOT zero. A cold pair must survive multiple epochs while the table is
  // under capacity; pruning it after one decay (the old cut-at-1.0
  // behavior) collapsed the sliding window to depth 1 for cold pairs.
  state.epoch(map, RebalanceCostHints{});
  state.epoch(map, RebalanceCostHints{});
  state.epoch(map, RebalanceCostHints{});
  EXPECT_DOUBLE_EQ(state.pair_weight(1, 5), 0.5);
  EXPECT_DOUBLE_EQ(state.pair_weight(2, 3), 0.25);
}

// Multi-epoch aging: a once-hot pair decays geometrically across idle
// epochs and is pruned exactly when it falls below kWindowFloorWeight,
// never earlier — the retention contract the decay() fix locks in.
TEST(Rebalance, ColdPairsAgeToTheFloorNotToOneEpoch) {
  RebalanceConfig cfg;
  cfg.policy = RebalancePolicy::kHotPair;
  cfg.trigger = RebalanceTrigger::kEveryEpoch;
  cfg.window_decay = 0.5;
  RebalanceState state(cfg);
  ShardMap map(8, 2, ShardPartition::kContiguous);

  for (int i = 0; i < 8; ++i) state.observe({1, 5}, map);
  double expected = 8.0;
  int epochs_survived = 0;
  for (int e = 0; e < 20; ++e) {
    state.epoch(map, RebalanceCostHints{});
    expected *= cfg.window_decay;
    if (expected >= kWindowFloorWeight) {
      ASSERT_DOUBLE_EQ(state.pair_weight(1, 5), expected)
          << "epoch " << e << ": pair dropped before reaching the floor";
      ++epochs_survived;
    } else {
      ASSERT_DOUBLE_EQ(state.pair_weight(1, 5), 0.0)
          << "epoch " << e << ": pair lingered below the floor";
    }
  }
  // weight 8 at decay 0.5: 8 * 0.5^13 == 1/1024 survives (cut is strict),
  // one more halving crosses the floor.
  EXPECT_EQ(epochs_survived, 13);
}

// Capacity pressure still evicts: the floor governs only the under-capacity
// regime; an over-full table sheds its lightest pairs deterministically.
TEST(Rebalance, CapacityPressureEvictsLightestFirst) {
  RebalanceConfig cfg;
  cfg.policy = RebalancePolicy::kHotPair;
  cfg.trigger = RebalanceTrigger::kEveryEpoch;
  cfg.window_decay = 0.5;
  cfg.window_capacity = 4;
  RebalanceState state(cfg);
  ShardMap map(32, 2, ShardPartition::kContiguous);

  // Six distinct pairs with distinct weights 1, 2, ..., 6.
  const Request reqs[] = {{1, 2}, {3, 4}, {5, 6}, {7, 8}, {9, 10}, {11, 12}};
  for (int p = 0; p < 6; ++p)
    for (int i = 0; i <= p; ++i) state.observe(reqs[p], map);
  state.epoch(map, RebalanceCostHints{});  // decays to 0.5 .. 3.0, then prunes

  // The cut doubles (1/1024 ... 1.0, 2.0) until the table fits: the
  // lightest pairs go first, in doubling bands — the final cut of 2.0
  // clears 0.5, 1.0 and 1.5, keeping the three heaviest.
  EXPECT_DOUBLE_EQ(state.pair_weight(1, 2), 0.0);
  EXPECT_DOUBLE_EQ(state.pair_weight(3, 4), 0.0);
  EXPECT_DOUBLE_EQ(state.pair_weight(5, 6), 0.0);
  EXPECT_DOUBLE_EQ(state.pair_weight(7, 8), 2.0);
  EXPECT_DOUBLE_EQ(state.pair_weight(9, 10), 2.5);
  EXPECT_DOUBLE_EQ(state.pair_weight(11, 12), 3.0);
}

TEST(Rebalance, SketchWindowObservesAndAgesLikeTheExactOne) {
  RebalanceConfig cfg;
  cfg.policy = RebalancePolicy::kHotPair;
  cfg.trigger = RebalanceTrigger::kEveryEpoch;
  cfg.window_decay = 0.5;
  cfg.tracker = DemandTracker::kSketch;
  RebalanceState state(cfg);
  ShardMap map(8, 2, ShardPartition::kContiguous);

  for (int i = 0; i < 8; ++i) state.observe({1, 5}, map);
  for (int i = 0; i < 4; ++i) state.observe({2, 3}, map);
  EXPECT_DOUBLE_EQ(state.pair_weight(1, 5), 8.0);
  EXPECT_DOUBLE_EQ(state.pair_weight(2, 3), 4.0);
  state.epoch(map, RebalanceCostHints{});
  EXPECT_DOUBLE_EQ(state.pair_weight(1, 5), 4.0);
  EXPECT_DOUBLE_EQ(state.pair_weight(2, 3), 2.0);
  // Ages to the retention floor exactly like the exact window: 8 * 0.5^e
  // survives while >= 1/1024, i.e. 13 epochs total.
  for (int e = 0; e < 12; ++e) state.epoch(map, RebalanceCostHints{});
  EXPECT_GT(state.pair_weight(1, 5), 0.0);
  state.epoch(map, RebalanceCostHints{});
  EXPECT_DOUBLE_EQ(state.pair_weight(1, 5), 0.0);
}

TEST(RebalanceDifferential, SketchTrackerMatchesExactWhenCapacityIsAmple) {
  // With the space-saving summary sized past the distinct-pair count the
  // sketch window is lossless: same weights, same sorted order, hence the
  // same plans, migrations and costs bit for bit.
  const Trace t = gen_workload(WorkloadKind::kPhaseElephants, 200, 25000, 12);
  auto run_with = [&](DemandTracker tracker) {
    RebalanceConfig cfg;
    cfg.policy = RebalancePolicy::kHotPair;
    cfg.epoch_requests = 2500;
    cfg.tracker = tracker;
    ShardedNetwork net = ShardedNetwork::balanced(3, t.n, 4);
    return run_trace_sharded(net, t, {.sequential = true, .rebalance = &cfg});
  };
  const SimResult exact = run_with(DemandTracker::kExact);
  const SimResult sketch = run_with(DemandTracker::kSketch);
  expect_same(exact, sketch, "exact vs ample sketch");
}

TEST(RebalanceDifferential, TightSketchStaysWithinTwoPercentOfExact) {
  // The acceptance bound at unit scale: a deliberately tight summary
  // (top-k far below the distinct-pair count, narrow count-min) may plan
  // slightly different migrations, but the grand cost it reaches must stay
  // within 2% of the exact tracker's on the drifting workload.
  const Trace t = gen_workload(WorkloadKind::kRotatingHot, 400, 40000, 5);
  auto run_with = [&](DemandTracker tracker) {
    RebalanceConfig cfg;
    cfg.policy = RebalancePolicy::kHotPair;
    cfg.epoch_requests = 4000;
    cfg.tracker = tracker;
    cfg.sketch_top_k = 128;
    cfg.sketch_cm_width = 1 << 10;
    ShardedNetwork net = ShardedNetwork::balanced(3, t.n, 4);
    return run_trace_sharded(net, t, {.sequential = true, .rebalance = &cfg});
  };
  const SimResult exact = run_with(DemandTracker::kExact);
  const SimResult sketch = run_with(DemandTracker::kSketch);
  const double ratio = static_cast<double>(sketch.grand_total_cost()) /
                       static_cast<double>(exact.grand_total_cost());
  EXPECT_GT(ratio, 0.98) << sketch.grand_total_cost() << " vs "
                         << exact.grand_total_cost();
  EXPECT_LT(ratio, 1.02) << sketch.grand_total_cost() << " vs "
                         << exact.grand_total_cost();
}

TEST(Rebalance, HotPairPlanColocatesTheHotPair) {
  RebalanceConfig cfg;
  cfg.policy = RebalancePolicy::kHotPair;
  cfg.trigger = RebalanceTrigger::kEveryEpoch;
  RebalanceState state(cfg);
  // n=16, S=4 contiguous: shard 0 = {1..4}, shard 2 = {9..12}.
  ShardMap map(16, 4, ShardPartition::kContiguous);

  // Node 2 talks overwhelmingly to node 10 (shard 2) plus a little at
  // home; node 10 has no other traffic at all.
  for (int i = 0; i < 100; ++i) state.observe({2, 10}, map);
  state.observe({2, 3}, map);
  RebalanceCostHints hints{.cross_penalty = 3.0, .migration_cost = 8.0};
  RebalancePlan plan = state.epoch(map, hints);
  ASSERT_EQ(plan.migrations.size(), 1u);
  // Both directions beat the migration cost, but node 10 — with zero home
  // affinity holding it back — has the larger net gain, so the greedy pass
  // moves 10 into 2's shard.
  EXPECT_EQ(plan.migrations[0].node, 10);
  EXPECT_EQ(plan.migrations[0].to_shard, 0);
  EXPECT_GT(plan.est_gain, 0.0);
}

TEST(Rebalance, HotPairPlanSkipsUnprofitableMoves) {
  RebalanceConfig cfg;
  cfg.policy = RebalancePolicy::kHotPair;
  cfg.trigger = RebalanceTrigger::kEveryEpoch;
  RebalanceState state(cfg);
  ShardMap map(16, 4, ShardPartition::kContiguous);
  // A lukewarm cross pair: the projected saving cannot pay for the move.
  for (int i = 0; i < 2; ++i) state.observe({2, 10}, map);
  RebalanceCostHints hints{.cross_penalty = 3.0, .migration_cost = 100.0};
  RebalancePlan plan = state.epoch(map, hints);
  EXPECT_TRUE(plan.triggered);
  EXPECT_TRUE(plan.migrations.empty());
}

TEST(Rebalance, HotPairPlanNeverDrainsAShard) {
  RebalanceConfig cfg;
  cfg.policy = RebalancePolicy::kHotPair;
  cfg.trigger = RebalanceTrigger::kEveryEpoch;
  cfg.max_migrations = 16;
  RebalanceState state(cfg);
  // Shard 1 of this explicit map owns only node 9.
  std::vector<int> assign(17, 0);
  for (NodeId id = 1; id <= 16; ++id) assign[id] = id <= 8 ? 0 : (id == 9 ? 1 : 2);
  ShardMap map(16, 3, assign);
  for (int i = 0; i < 50; ++i) state.observe({9, 1}, map);
  RebalancePlan plan = state.epoch(map, RebalanceCostHints{1.0, 0.5});
  // 9 may not leave (last node) — the plan must colocate by moving 1 in.
  for (const Migration& m : plan.migrations) EXPECT_NE(m.node, 9);
}

TEST(Rebalance, WatermarkPlanDrainsTheHotShard) {
  RebalanceConfig cfg;
  cfg.policy = RebalancePolicy::kWatermark;
  cfg.trigger = RebalanceTrigger::kEveryEpoch;
  cfg.watermark = 1.2;
  cfg.max_migrations = 8;
  RebalanceState state(cfg);
  ShardMap map(32, 4, ShardPartition::kContiguous);  // shard 0 = {1..8}
  // All load on shard 0: pairs (1,2), (3,4), (5,6) intra plus noise out.
  for (int i = 0; i < 40; ++i) {
    state.observe({1, 2}, map);
    state.observe({3, 4}, map);
    state.observe({5, 6}, map);
  }
  state.observe({9, 17}, map);
  RebalancePlan plan = state.epoch(map, RebalanceCostHints{});
  ASSERT_FALSE(plan.migrations.empty());
  EXPECT_GT(plan.load_imbalance, cfg.watermark);
  // The first eviction comes from the overloaded shard; later ones may
  // cascade if a move pushes another shard over the watermark, but no
  // migration ever targets the shard it leaves.
  EXPECT_EQ(map.shard_of(plan.migrations[0].node), 0);
  EXPECT_NE(plan.migrations[0].to_shard, 0);
  for (const Migration& m : plan.migrations)
    EXPECT_NE(m.to_shard, map.shard_of(m.node));
}

TEST(Rebalance, TriggersGateThePlanning) {
  ShardMap map(16, 2, ShardPartition::kContiguous);
  RebalanceConfig cfg;
  cfg.policy = RebalancePolicy::kHotPair;
  cfg.trigger = RebalanceTrigger::kCrossFraction;
  cfg.trigger_cross_fraction = 0.5;
  {
    RebalanceState state(cfg);
    for (int i = 0; i < 9; ++i) state.observe({1, 2}, map);   // intra
    state.observe({1, 9}, map);                               // one cross
    EXPECT_FALSE(state.epoch(map, RebalanceCostHints{}).triggered);
  }
  {
    RebalanceState state(cfg);
    for (int i = 0; i < 9; ++i) state.observe({1, 9}, map);
    state.observe({1, 2}, map);
    EXPECT_TRUE(state.epoch(map, RebalanceCostHints{}).triggered);
  }
  cfg.trigger = RebalanceTrigger::kImbalance;
  cfg.trigger_imbalance = 1.6;
  {
    RebalanceState state(cfg);
    for (int i = 0; i < 8; ++i) state.observe({1, 2}, map);  // all on shard 0
    RebalancePlan plan = state.epoch(map, RebalanceCostHints{});
    EXPECT_TRUE(plan.triggered);
    EXPECT_DOUBLE_EQ(plan.load_imbalance, 2.0);
  }
}

TEST(Rebalance, DriftTriggerParksOnStationaryTraffic) {
  ShardMap map(32, 4, ShardPartition::kContiguous);
  RebalanceConfig cfg;
  cfg.policy = RebalancePolicy::kHotPair;
  cfg.trigger = RebalanceTrigger::kDrift;
  cfg.trigger_drift = 0.3;
  RebalanceState state(cfg);

  // Epoch 1 only seeds the history — an initial partition is not drift.
  for (int i = 0; i < 20; ++i) state.observe({1, 9}, map);
  RebalancePlan p1 = state.epoch(map, RebalanceCostHints{});
  EXPECT_DOUBLE_EQ(p1.drift, 0.0);
  EXPECT_FALSE(p1.triggered);

  // Same hot pairs again: stationary, parked.
  for (int i = 0; i < 20; ++i) state.observe({1, 9}, map);
  RebalancePlan p2 = state.epoch(map, RebalanceCostHints{});
  EXPECT_DOUBLE_EQ(p2.drift, 0.0);
  EXPECT_FALSE(p2.triggered);

  // The hot set moves: a fresh dominant pair set fires the trigger.
  for (int i = 0; i < 200; ++i) {
    state.observe({2, 25}, map);
    state.observe({3, 26}, map);
    state.observe({4, 27}, map);
  }
  RebalancePlan p3 = state.epoch(map, RebalanceCostHints{});
  EXPECT_GT(p3.drift, 0.3);
  EXPECT_TRUE(p3.triggered);
}

// --- migration application on the serving engine ------------------------

TEST(Rebalance, ApplyMigrationsKeepsEngineConsistent) {
  const int n = 60, S = 4, k = 3;
  ShardedNetwork net = ShardedNetwork::balanced(k, n, S);
  // Warm the trees so extraction happens on genuinely splayed state.
  const Trace warm = gen_workload(WorkloadKind::kTemporal05, n, 2000, 11);
  run_trace(net, warm);

  const MigrationResult res =
      net.apply_migrations({{2, 3}, {17, 0}, {33, 1}, {59, 2}});
  EXPECT_EQ(res.migrated, 4);
  EXPECT_GT(res.extraction_routing, 0);
  EXPECT_GT(res.relink_edges, 0);
  EXPECT_EQ(net.map().shard_of(2), 3);
  EXPECT_EQ(net.map().shard_of(17), 0);
  EXPECT_EQ(net.map().shard_of(33), 1);
  EXPECT_EQ(net.map().shard_of(59), 2);

  int total = 0;
  for (int s = 0; s < S; ++s) {
    EXPECT_TRUE(net.shard(s).tree().valid()) << "shard " << s;
    EXPECT_EQ(net.shard(s).size(), net.map().shard_size(s));
    total += net.shard(s).size();
  }
  EXPECT_EQ(total, n);

  // The engine still serves every pair correctly after the move.
  for (NodeId u = 1; u <= n; u += 7)
    for (NodeId v = 1; v <= n; v += 5) {
      if (u == v) continue;
      const ServeResult s = net.serve(u, v);
      EXPECT_GE(s.routing_cost, 1);
    }
}

TEST(Rebalance, SingleExtractionChargesTheNodesDepth) {
  const int n = 40, S = 2;
  ShardedNetwork net = ShardedNetwork::balanced(2, n, S);
  const Trace warm = gen_workload(WorkloadKind::kUniform, n, 1000, 5);
  run_trace(net, warm);

  const NodeId node = 7;
  const int depth =
      net.shard(net.map().shard_of(node)).tree().depth(net.map().local_of(node));
  const MigrationResult res = net.apply_migrations({{node, 1}});
  EXPECT_EQ(res.migrated, 1);
  EXPECT_EQ(res.extraction_routing, depth);  // access() climbs exactly it
}

TEST(Rebalance, ApplyMigrationsRejectsDrainingAndDuplicates) {
  std::vector<int> assign(13, 0);
  for (NodeId id = 1; id <= 12; ++id) assign[id] = id <= 6 ? 0 : (id == 7 ? 1 : 2);
  ShardedNetwork net(2, ShardMap(12, 3, assign));
  EXPECT_THROW(net.apply_migrations({{7, 0}}), TreeError);  // drains shard 1
  EXPECT_THROW(net.apply_migrations({{1, 1}, {1, 2}}), TreeError);
  EXPECT_THROW(net.apply_migrations({{99, 0}}), TreeError);
  EXPECT_THROW(net.apply_migrations({{1, 5}}), TreeError);
  // No-op batches change nothing and cost nothing.
  const MigrationResult res = net.apply_migrations({{1, 0}});
  EXPECT_EQ(res.migrated, 0);
  EXPECT_EQ(res.total_cost(), 0);
}

// --- differential: rebalancing disabled == PR 3 static sharding ---------

TEST(RebalanceDifferential, DisabledPathsMatchStaticShardedBitForBit) {
  const int n = 96;
  RebalanceConfig off;  // kNone
  RebalanceConfig never;
  never.policy = RebalancePolicy::kHotPair;
  never.trigger = RebalanceTrigger::kCrossFraction;
  never.trigger_cross_fraction = 2.0;  // cross fraction can never exceed 1
  never.epoch_requests = 512;

  for (std::uint64_t seed : {3u, 77u, 2024u}) {
    const Trace trace =
        gen_workload(WorkloadKind::kPhaseElephants, n, 4000, seed);
    for (int S : {2, 4, 8}) {
      for (ShardPartition policy :
           {ShardPartition::kContiguous, ShardPartition::kHash}) {
        const std::string what = "seed=" + std::to_string(seed) +
                                 " S=" + std::to_string(S) + " " +
                                 shard_partition_name(policy);
        ShardedNetwork reference = ShardedNetwork::balanced(3, n, S, policy);
        const SimResult ref = run_trace_sharded(reference, trace);

        // Per-request serve(), the PR 3 hot path, pins the baseline.
        ShardedNetwork serve_path = ShardedNetwork::balanced(3, n, S, policy);
        const SimResult served = run_trace(serve_path, trace);
        EXPECT_EQ(served.routing_cost, ref.routing_cost) << what;
        EXPECT_EQ(served.rotation_count, ref.rotation_count) << what;
        EXPECT_EQ(served.edge_changes, ref.edge_changes) << what;
        expect_same_shards(reference, serve_path, what + " serve");

        ShardedNetwork with_off = ShardedNetwork::balanced(3, n, S, policy);
        const SimResult a =
            run_trace_sharded(with_off, trace, {.rebalance = &off});
        expect_same(a, ref, what + " kNone");
        expect_same_shards(reference, with_off, what + " kNone");

        // An enabled config whose trigger never fires exercises the real
        // chunked epoch loop and must still be bit-identical.
        ShardedNetwork with_never = ShardedNetwork::balanced(3, n, S, policy);
        const SimResult b =
            run_trace_sharded(with_never, trace, {.rebalance = &never});
        expect_same(b, ref, what + " never-trigger");
        expect_same_shards(reference, with_never, what + " never-trigger");
        EXPECT_EQ(b.migrations, 0) << what;
      }
    }
  }
}

// --- acceptance: sequential and concurrent epoch drains are bit-identical
// even while rebalancing is actively migrating nodes.

TEST(RebalanceDifferential, ActiveSequentialMatchesConcurrent) {
  const int n = 96;
  for (RebalancePolicy policy :
       {RebalancePolicy::kHotPair, RebalancePolicy::kWatermark}) {
    RebalanceConfig cfg;
    cfg.policy = policy;
    cfg.epoch_requests = 500;
    cfg.max_migrations = 16;
    for (std::uint64_t seed : {7u, 21u, 1023u}) {
      const Trace trace =
          gen_workload(WorkloadKind::kRotatingHot, n, 4000, seed);
      for (int S : {2, 4, 8}) {
        const std::string what = std::string(rebalance_policy_name(policy)) +
                                 " seed=" + std::to_string(seed) +
                                 " S=" + std::to_string(S);
        ShardedNetwork seq = ShardedNetwork::balanced(3, n, S);
        ShardedNetwork conc = ShardedNetwork::balanced(3, n, S);
        const SimResult a = run_trace_sharded(
            seq, trace, {.threads = 0, .sequential = true, .rebalance = &cfg});
        const SimResult b = run_trace_sharded(
            conc, trace,
            {.threads = 4, .sequential = false, .rebalance = &cfg});
        expect_same(a, b, what);
        expect_same_shards(seq, conc, what);
        EXPECT_EQ(seq.map().shard_of(n / 2), conc.map().shard_of(n / 2));
      }
    }
  }
}

// --- golden lock: static vs adaptive on the drifting workloads ----------
//
// Regenerate (after an intentional semantic change only!) with
//   SAN_PRINT_GOLDENS=1 ./build/test_rebalance
// and paste the printed rows over kRebalanceGoldens.

struct RebalanceGolden {
  const char* workload;
  const char* policy;
  Cost grand_total;  // total_cost + migration_cost
  Cost migrations;
};

const RebalanceGolden kRebalanceGoldens[] = {
    {"PhaseElephants", "static", 39100, 0},
    {"PhaseElephants", "hotpair", 33773, 91},
    {"PhaseElephants", "watermark", 37867, 70},
    {"RotatingHot", "static", 30460, 0},
    {"RotatingHot", "hotpair", 33029, 71},
    {"RotatingHot", "watermark", 34239, 69},
};

bool print_mode() {
  const char* env = std::getenv("SAN_PRINT_GOLDENS");
  return env != nullptr && env[0] == '1';
}

TEST(RebalanceGolden, StaticVsAdaptiveTotalsLocked) {
  const int n = 96, S = 8, k = 3;
  const std::size_t m = 8000;
  RebalanceConfig adaptive;
  adaptive.epoch_requests = 500;
  adaptive.max_migrations = 24;

  std::vector<RebalanceGolden> measured;
  Cost static_elephants = 0, hotpair_elephants = 0;
  for (WorkloadKind kind :
       {WorkloadKind::kPhaseElephants, WorkloadKind::kRotatingHot}) {
    const Trace trace = gen_workload(kind, n, m, 0xC0FFEE);
    {
      ShardedNetwork net =
          ShardedNetwork::balanced(k, n, S, ShardPartition::kHash);
      const SimResult res = run_trace_sharded(net, trace);
      measured.push_back(
          {workload_name(kind), "static", res.grand_total_cost(), 0});
      if (kind == WorkloadKind::kPhaseElephants)
        static_elephants = res.grand_total_cost();
    }
    for (RebalancePolicy policy :
         {RebalancePolicy::kHotPair, RebalancePolicy::kWatermark}) {
      adaptive.policy = policy;
      ShardedNetwork net =
          ShardedNetwork::balanced(k, n, S, ShardPartition::kHash);
      const SimResult res =
          run_trace_sharded(net, trace, {.rebalance = &adaptive});
      measured.push_back({workload_name(kind), rebalance_policy_name(policy),
                          res.grand_total_cost(), res.migrations});
      if (policy == RebalancePolicy::kHotPair &&
          kind == WorkloadKind::kPhaseElephants)
        hotpair_elephants = res.grand_total_cost();
    }
  }

  if (print_mode()) {
    for (const RebalanceGolden& g : measured)
      std::printf("    {\"%s\", \"%s\", %lld, %lld},\n", g.workload, g.policy,
                  static_cast<long long>(g.grand_total),
                  static_cast<long long>(g.migrations));
    GTEST_SKIP() << "printed " << measured.size() << " golden rows";
  }

  ASSERT_EQ(measured.size(), std::size(kRebalanceGoldens));
  for (std::size_t i = 0; i < measured.size(); ++i) {
    EXPECT_STREQ(measured[i].workload, kRebalanceGoldens[i].workload);
    EXPECT_STREQ(measured[i].policy, kRebalanceGoldens[i].policy);
    EXPECT_EQ(measured[i].grand_total, kRebalanceGoldens[i].grand_total)
        << measured[i].workload << " / " << measured[i].policy;
    EXPECT_EQ(measured[i].migrations, kRebalanceGoldens[i].migrations)
        << measured[i].workload << " / " << measured[i].policy;
  }
  // The point of the subsystem, locked behaviorally: hot-pair colocation
  // beats static sharding on the phase-change workload even after paying
  // its own migration bill. (RotatingHot is the documented losing regime —
  // its drift period matches the epoch cadence, so plans are stale on
  // arrival; the golden rows above keep that honest number pinned.)
  EXPECT_LT(hotpair_elephants, static_elephants);
}

// post_intra_fraction reports the final map's locality in both modes.
TEST(Rebalance, PostIntraFractionReflectsFinalMap) {
  const int n = 64;
  const Trace trace = gen_workload(WorkloadKind::kRotatingHot, n, 4000, 9);
  ShardedNetwork fixed = ShardedNetwork::balanced(2, n, 4);
  const SimResult s = run_trace_sharded(fixed, trace);
  const double static_frac =
      compute_shard_stats(trace, fixed.map()).intra_fraction();
  EXPECT_DOUBLE_EQ(s.post_intra_fraction, static_frac);

  RebalanceConfig cfg;
  cfg.policy = RebalancePolicy::kHotPair;
  cfg.epoch_requests = 400;
  ShardedNetwork moving = ShardedNetwork::balanced(2, n, 4);
  const SimResult a = run_trace_sharded(moving, trace, {.rebalance = &cfg});
  EXPECT_DOUBLE_EQ(a.post_intra_fraction,
                   compute_shard_stats(trace, moving.map()).intra_fraction());
  EXPECT_GT(a.migrations, 0);
}

}  // namespace
}  // namespace san
