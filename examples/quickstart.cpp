// Quickstart: build a k-ary SplayNet, serve a workload, inspect costs.
//
//   $ ./quickstart [k] [n] [requests]
//
// Walks through the core public API: constructing a self-adjusting k-ary
// search tree network, serving a trace with temporal locality, comparing
// against a static full tree, and reading the cost breakdown.
#include <cstdlib>
#include <iostream>

#include "core/splaynet.hpp"
#include "sim/simulator.hpp"
#include "static_trees/full_tree.hpp"
#include "workload/generators.hpp"
#include "workload/trace_stats.hpp"

int main(int argc, char** argv) {
  const int k = argc > 1 ? std::atoi(argv[1]) : 4;
  const int n = argc > 2 ? std::atoi(argv[2]) : 256;
  const std::size_t m = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 50000;

  std::cout << "Self-adjusting " << k << "-ary search tree network on " << n
            << " nodes, " << m << " requests\n\n";

  // A workload with mild temporal locality (repeat probability 0.5).
  san::Trace trace = san::gen_temporal(n, m, 0.5, /*seed=*/7);
  san::TraceStats stats = san::compute_stats(trace);
  std::cout << "trace: src entropy " << stats.src_entropy << " bits, repeat "
            << stats.repeat_fraction << ", distinct pairs "
            << stats.distinct_pairs << "\n\n";

  // Online self-adjusting network, starting from a balanced topology.
  san::KArySplayNet net = san::KArySplayNet::balanced(k, n);
  san::KArySplayNetwork online(std::move(net));
  san::SimResult online_cost = san::run_trace(online, trace);

  // Demand-oblivious static baseline: the complete k-ary tree.
  san::SimResult static_cost =
      san::run_trace_static(san::full_kary_tree(k, n), trace);

  std::cout << "k-ary SplayNet : routing " << online_cost.routing_cost
            << " + rotations " << online_cost.rotation_count << " = "
            << online_cost.total_cost() << " (avg "
            << online_cost.avg_request_cost() << "/req)\n";
  std::cout << "full k-ary tree: routing " << static_cost.routing_cost
            << " (avg " << static_cost.avg_request_cost() << "/req)\n";

  const bool online_wins =
      online_cost.total_cost() < static_cost.total_cost();
  std::cout << "\n=> " << (online_wins ? "self-adjusting wins" : "static wins")
            << " on this trace; raise the repeat probability to favour "
               "self-adjustment.\n";

  // The topology stayed a valid k-ary search tree throughout.
  std::cout << "final topology valid: "
            << (online.net().tree().valid() ? "yes" : "NO") << "\n";
  return 0;
}
