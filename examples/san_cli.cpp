// san_cli: run any workload x topology combination from the command line.
//
//   san_cli --workload hpc --topology ksplay --k 4 --n 500 --requests 100000
//   san_cli --trace mytrace.txt --topology centroid --k 2
//   san_cli --workload temporal075 --topology optimal --k 3 --dump-tree t.dot
//   san_cli --workload facebook --topology ksplay --shards 8 --partition hash
//   san_cli --workload elephants --shards 8 --rebalance hotpair --epoch 5000
//
// Workloads: uniform temporal025 temporal05 temporal075 temporal09 hpc
//            projector facebook elephants rotating, or --trace FILE
//            (san-trace v1).
// Topologies: ksplay (k-ary SplayNet), semisplay (k-semi-splay only),
//             centroid ((k+1)-SplayNet), binary (classic SplayNet),
//             full (static complete k-ary), optimal (static demand-aware
//             DP over the whole trace — hindsight reference).
// Sharding: --shards S > 1 partitions the node space into S independent
// ksplay/semisplay shards under a static top-level tree (--partition
// contiguous|hash) and reports per-shard locality. --rebalance
// none|hotpair|watermark turns on adaptive rebalancing epochs over the
// batched pipeline (--epoch N requests per epoch, drift trigger), with
// migration counters in the summary.
// Serving mode: --open-loop feeds the trace through the live frontend
// (sim/serve_frontend.hpp) at a timed arrival schedule instead of
// replaying it closed-loop: --arrival poisson|bursty|saturation,
// --rate R requests/s, --duration T seconds (T > 0 sizes the trace as
// R*T requests, overriding --requests). Needs ksplay/semisplay; composes
// with --shards and --rebalance, and reports offered/achieved rate plus
// sojourn-latency p50/p99/p999/max in microseconds.
// Output: one summary table (mean / p50 / p99 / max per-request cost,
// rotation and link-change totals) and optional CSV / dot dumps. The
// rebalancing path serves through the batched drain, so per-request
// percentiles are not available there.
#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "core/splaynet.hpp"
#include "io/trace_io.hpp"
#include "io/trace_v2.hpp"
#include "io/tree_io.hpp"
#include "sim/any_network.hpp"
#include "sim/serve_frontend.hpp"
#include "sim/simulator.hpp"
#include "static_trees/full_tree.hpp"
#include "static_trees/optimal_dp.hpp"
#include "stats/series.hpp"
#include "stats/table.hpp"
#include "workload/arrival.hpp"
#include "workload/demand_matrix.hpp"
#include "workload/generators.hpp"
#include "workload/partition.hpp"
#include "workload/streaming.hpp"
#include "workload/trace_stats.hpp"

namespace {

using namespace san;

struct Options {
  std::string workload = "temporal05";
  std::string trace_path;
  std::string trace_v2_path;
  bool stream = false;
  std::string topology = "ksplay";
  int k = 3;
  int n = 0;  // 0 = workload default
  int shards = 1;
  std::string partition = "contiguous";
  std::string rebalance = "none";
  std::size_t epoch = 5000;
  double split_watermark = 0.0;  // > 0 enables watermark-triggered splits
  double merge_watermark = 0.0;  // > 0 enables cold-shard merges
  int replicas = 0;              // planned read replicas
  std::string fault;         // fault script "[KIND:]IDX@SHARD[,...]"
  bool chaos = false;        // --chaos-seed given: generate the script
  std::uint64_t chaos_seed = 0;
  double recovery_slo = 0.0;     // ms; > 0 prints an SLO verdict
  std::string queue_policy = "block";  // frontend full-queue policy
  double deadline_ms = 0.0;            // per-request budget (deadline policy)
  double admit_rate = 0.0;             // token-bucket admission throttle
  std::string schedule = "fifo";
  int sched_window = 1024;
  int sched_group = 8;
  std::size_t requests = 100000;
  std::uint64_t seed = 1;
  bool open_loop = false;
  std::string arrival = "poisson";
  double rate = 1e6;      // requests per second of the arrival schedule
  double duration = 0.0;  // seconds; > 0 sizes the trace as rate * duration
  std::string dump_tree;      // dot output path
  std::string dump_trace;     // san-trace v1 (text) output path
  std::string dump_trace_v2;  // san-trace v2 (binary) output path
  bool csv = false;
  bool optimal_gap = false;
};

// Hindsight optimality gap: cost of the Theorem 2 optimal static tree for
// the trace's own demand matrix, via the cost-only DP entry (no tree is
// materialized). Feasible well past the old n = 256 ceiling since the
// flat engine rewrite, but the DP's table footprint is O(n^2 k) — cap it
// so an interactive run cannot silently allocate gigabytes (k = 2 at
// n = 4096 is ~390 MB total and ~8 s; k = 10 at the same n would be
// ~1.7 GB of tables alone and is rejected).
constexpr int kMaxOptimalGapNodes = 4096;
constexpr std::size_t kMaxOptimalGapTableBytes = 1'200'000'000;

Cost optimal_cost_for(const Trace& trace, int k) {
  if (trace.n > kMaxOptimalGapNodes)
    throw TreeError("--optimal-gap supports n <= " +
                    std::to_string(kMaxOptimalGapNodes) + " (got n = " +
                    std::to_string(trace.n) + ")");
  const std::size_t tables = static_cast<std::size_t>(std::max(2, 3 * k - 5));
  const std::size_t cells =
      static_cast<std::size_t>(trace.n) * (trace.n + 1) / 2;
  if (tables * cells * sizeof(Cost) > kMaxOptimalGapTableBytes)
    throw TreeError(
        "--optimal-gap: DP tables for n = " + std::to_string(trace.n) +
        ", k = " + std::to_string(k) + " would exceed " +
        std::to_string(kMaxOptimalGapTableBytes / 1'000'000) +
        " MB; lower n or k");
  DemandMatrix d = DemandMatrix::from_trace(trace);
  return optimal_routing_based_cost(k, d, 0);
}

[[noreturn]] void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " [--workload NAME | --trace FILE | --trace-v2 FILE] [--stream]\n"
         "          [--topology NAME] [--k K]\n"
         "          [--n N] [--requests M] [--seed S] [--csv]\n"
         "          [--shards S] [--partition contiguous|hash]\n"
         "          [--rebalance none|hotpair|watermark] [--epoch N]\n"
         "          [--split-watermark X] [--merge-watermark X]\n"
         "          [--replicas R] [--fault [KIND:]IDX@SHARD[,...]]\n"
         "          [--chaos-seed SEED] [--recovery-slo MS]\n"
         "          [--schedule fifo|locality] [--sched-window W]\n"
         "          [--sched-group G]\n"
         "          [--open-loop] [--arrival poisson|bursty|saturation]\n"
         "          [--rate R] [--duration T]\n"
         "          [--queue-policy block|shed|deadline] [--deadline-ms D]\n"
         "          [--admit-rate R]\n"
         "          [--optimal-gap]\n"
         "          [--dump-tree FILE.dot] [--dump-trace FILE]\n"
         "          [--dump-trace-v2 FILE]\n"
         "workloads: uniform temporal025 temporal05 temporal075 temporal09\n"
         "           hpc projector facebook elephants rotating seqscan\n"
         "           bitrev\n"
         "topologies: ksplay semisplay centroid binary full optimal\n"
         "--shards > 1 runs ksplay/semisplay shards under a static top tree\n"
         "--rebalance adds adaptive migration epochs (needs --shards > 1)\n"
         "--split-watermark/--merge-watermark add tablet-style shard\n"
         "  lifecycle epochs (split the hot shard / merge the two coldest);\n"
         "  --replicas R keeps the R hottest shards read-replicated. Works\n"
         "  in the batch pipeline and under --open-loop, where splits spawn\n"
         "  workers and merges retire them mid-run\n"
         "--fault fires KIND (k = shard kill, the default; w = worker kill;\n"
         "  q = queue pressure) at shard SHARD when the request counter\n"
         "  reaches IDX; shard kills crash-recover (replica promotion, else\n"
         "  snapshot + replay). --chaos-seed generates a valid random script\n"
         "  instead (deterministic per seed);\n"
         "  --recovery-slo MS prints a pass/fail verdict on recovery time\n"
         "--queue-policy picks what a full frontend queue does (block is\n"
         "  lossless backpressure; shed drops; deadline sheds requests older\n"
         "  than --deadline-ms at admission and dequeue); --admit-rate R\n"
         "  arms a token-bucket admission throttle (open-loop only)\n"
         "--schedule locality reorders requests within --sched-window slots\n"
         "  by LCA cluster and serves --sched-group descents behind an\n"
         "  interleaved prefetch warm-up (per shard / admission batch);\n"
         "  costs are the honest costs of the permuted order — totals only,\n"
         "  no per-request percentiles. fifo (default) is bit-identical to\n"
         "  previous releases\n"
         "--open-loop serves through the live frontend at --rate req/s for\n"
         "  --duration seconds (ksplay/semisplay; composes with --shards\n"
         "  and --rebalance; reports sojourn p50/p99/p999 in us)\n"
         "--optimal-gap adds online-cost / optimal-static-cost rows (exact\n"
         "  Theorem 2 DP on the trace's demand matrix; n <= 4096)\n"
         "--trace-v2 reads the binary san-trace v2 format (io/trace_v2.hpp);\n"
         "  --dump-trace-v2 writes it\n"
         "--stream replays without materializing the trace: a generated\n"
         "  workload is pulled on demand, a --trace-v2 file is mmapped and\n"
         "  read in chunks, so memory stays O(chunk) at any request count\n"
         "  (ksplay/semisplay; composes with --shards, --rebalance, and\n"
         "  --open-loop; per-request percentiles and dumps unavailable)\n";
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--workload") o.workload = next();
    else if (arg == "--trace") o.trace_path = next();
    else if (arg == "--trace-v2") o.trace_v2_path = next();
    else if (arg == "--stream") o.stream = true;
    else if (arg == "--topology") o.topology = next();
    else if (arg == "--k") o.k = std::stoi(next());
    else if (arg == "--n") o.n = std::stoi(next());
    else if (arg == "--shards") o.shards = std::stoi(next());
    else if (arg == "--partition") o.partition = next();
    else if (arg == "--rebalance") o.rebalance = next();
    else if (arg == "--epoch") {
      // stoull would silently wrap "-1" to a huge epoch (= rebalancing
      // off); parse signed and range-check instead.
      const long long v = std::stoll(next());
      if (v < 0) usage(argv[0]);
      o.epoch = static_cast<std::size_t>(v);
    }
    else if (arg == "--split-watermark") o.split_watermark = std::stod(next());
    else if (arg == "--merge-watermark") o.merge_watermark = std::stod(next());
    else if (arg == "--replicas") o.replicas = std::stoi(next());
    else if (arg == "--fault") o.fault = next();
    else if (arg == "--chaos-seed") {
      o.chaos = true;
      o.chaos_seed = std::stoull(next());
    }
    else if (arg == "--recovery-slo") o.recovery_slo = std::stod(next());
    else if (arg == "--queue-policy") o.queue_policy = next();
    else if (arg == "--deadline-ms") o.deadline_ms = std::stod(next());
    else if (arg == "--admit-rate") o.admit_rate = std::stod(next());
    else if (arg == "--schedule") o.schedule = next();
    else if (arg == "--sched-window") o.sched_window = std::stoi(next());
    else if (arg == "--sched-group") o.sched_group = std::stoi(next());
    else if (arg == "--requests") o.requests = std::stoull(next());
    else if (arg == "--seed") o.seed = std::stoull(next());
    else if (arg == "--open-loop") o.open_loop = true;
    else if (arg == "--arrival") o.arrival = next();
    else if (arg == "--rate") o.rate = std::stod(next());
    else if (arg == "--duration") o.duration = std::stod(next());
    else if (arg == "--dump-tree") o.dump_tree = next();
    else if (arg == "--dump-trace") o.dump_trace = next();
    else if (arg == "--dump-trace-v2") o.dump_trace_v2 = next();
    else if (arg == "--csv") o.csv = true;
    else if (arg == "--optimal-gap") o.optimal_gap = true;
    else usage(argv[0]);
  }
  return o;
}

WorkloadKind parse_workload(const std::string& name) {
  static const std::map<std::string, WorkloadKind> kinds = {
      {"uniform", WorkloadKind::kUniform},
      {"temporal025", WorkloadKind::kTemporal025},
      {"temporal05", WorkloadKind::kTemporal05},
      {"temporal075", WorkloadKind::kTemporal075},
      {"temporal09", WorkloadKind::kTemporal09},
      {"hpc", WorkloadKind::kHpc},
      {"projector", WorkloadKind::kProjector},
      {"facebook", WorkloadKind::kFacebook},
      {"elephants", WorkloadKind::kPhaseElephants},
      {"rotating", WorkloadKind::kRotatingHot},
      {"seqscan", WorkloadKind::kSequentialScan},
      {"bitrev", WorkloadKind::kBitReversal},
  };
  auto it = kinds.find(name);
  if (it == kinds.end()) throw TreeError("unknown workload: " + name);
  return it->second;
}

// Rejects unknown policy names and non-positive window/group at argument
// level (ScheduleConfig::validate also rejects group > window) so a typo
// fails fast instead of surfacing mid-run.
ScheduleConfig parse_schedule(const Options& o) {
  ScheduleConfig s;
  if (o.schedule == "fifo")
    s.policy = SchedulePolicy::kFifo;
  else if (o.schedule == "locality")
    s.policy = SchedulePolicy::kLocality;
  else
    throw TreeError("unknown schedule policy: " + o.schedule +
                    " (expected fifo|locality)");
  s.window = o.sched_window;
  s.group = o.sched_group;
  s.validate();
  return s;
}

ShardPartition parse_partition(const std::string& name) {
  if (name == "contiguous") return ShardPartition::kContiguous;
  if (name == "hash") return ShardPartition::kHash;
  throw TreeError("unknown partition policy: " + name);
}

ArrivalKind parse_arrival(const std::string& name) {
  if (name == "poisson") return ArrivalKind::kPoisson;
  if (name == "bursty") return ArrivalKind::kBursty;
  if (name == "saturation") return ArrivalKind::kSaturation;
  throw TreeError("unknown arrival process: " + name);
}

RebalancePolicy parse_rebalance(const std::string& name) {
  if (name == "none") return RebalancePolicy::kNone;
  if (name == "hotpair") return RebalancePolicy::kHotPair;
  if (name == "watermark") return RebalancePolicy::kWatermark;
  throw TreeError("unknown rebalance policy: " + name);
}

RebalanceConfig make_rebalance_config(const Options& o,
                                      RebalancePolicy policy) {
  RebalanceConfig cfg;
  cfg.policy = policy;
  cfg.epoch_requests = o.epoch;
  cfg.split_watermark = o.split_watermark;
  cfg.merge_watermark = o.merge_watermark;
  cfg.replicas = o.replicas;
  return cfg;
}

QueuePolicy parse_queue_policy(const std::string& name) {
  if (name == "block") return QueuePolicy::kBlock;
  if (name == "shed") return QueuePolicy::kShed;
  if (name == "deadline") return QueuePolicy::kDeadline;
  throw TreeError("unknown queue policy: " + name +
                  " (expected block|shed|deadline)");
}

FaultPlan make_fault_plan(const Options& o, int shards, std::size_t m) {
  if (o.chaos && !o.fault.empty())
    throw TreeError("--fault and --chaos-seed are mutually exclusive");
  FaultPlan plan;
  if (o.chaos)
    plan = gen_chaos_plan(o.chaos_seed, shards, m);
  else if (!o.fault.empty())
    plan = parse_fault_plan(o.fault);
  plan.recovery_slo_ms = o.recovery_slo;
  return plan;
}

void add_lifecycle_rows(Table& out, const SimResult& res) {
  out.add_row({"shard splits", std::to_string(res.shard_splits)});
  out.add_row({"shard merges", std::to_string(res.shard_merges)});
  out.add_row({"lifecycle cost", std::to_string(res.lifecycle_cost)});
  out.add_row({"final shards", std::to_string(res.final_shards)});
  out.add_row({"replica reads", std::to_string(res.replica_reads)});
}

void add_fault_rows(Table& out, const SimResult& res, const FaultPlan& plan) {
  out.add_row({"faults injected", std::to_string(res.faults_injected)});
  out.add_row({"worker kills", std::to_string(res.worker_kills)});
  out.add_row(
      {"queue pressure events", std::to_string(res.queue_pressure_events)});
  out.add_row({"replica promotions", std::to_string(res.replica_promotions)});
  out.add_row(
      {"recovery replayed ops", std::to_string(res.recovery_replayed)});
  out.add_row({"recovery cost", std::to_string(res.recovery_cost)});
  out.add_row({"recovery max (ms)", fixed_cell(res.recovery_max_ms)});
  if (plan.recovery_slo_ms > 0.0)
    out.add_row({"recovery SLO (" + fixed_cell(plan.recovery_slo_ms) + " ms)",
                 res.recovery_max_ms <= plan.recovery_slo_ms
                     ? std::string("met")
                     : std::string("MISSED")});
}

void add_overload_rows(Table& out, const FrontendResult& r,
                       QueuePolicy policy) {
  out.add_row({"queue policy", queue_policy_name(policy)});
  out.add_row(
      {"queue full blocks", std::to_string(r.sim.queue_full_blocks)});
  if (r.sim.shed_requests > 0) {
    out.add_row({"shed requests", std::to_string(r.sim.shed_requests)});
    out.add_row({"  at full queue", std::to_string(r.sim.shed_queue_full)});
    out.add_row({"  throttled", std::to_string(r.sim.shed_throttled)});
    out.add_row(
        {"  deadline expired", std::to_string(r.sim.deadline_expired)});
    out.add_row({"  cross-shard legs", std::to_string(r.sim.cross_shed)});
    out.add_row({"breaker trips", std::to_string(r.sim.breaker_trips)});
    out.add_row({"shed age p99 (us)",
                 fixed_cell(static_cast<double>(r.shed.p99()) / 1e3)});
  }
  if (r.route_epochs > 0)
    out.add_row({"route epochs", std::to_string(r.route_epochs)});
}

// `opt_cost` receives the DP value when this factory already computed it
// (the "optimal" topology), so --optimal-gap does not re-run the O(n^3 k)
// forward pass a second time just to print the ratio 1.000.
AnyNetwork make_network(const Options& o, const Trace& trace,
                        std::optional<Cost>& opt_cost) {
  const int n = trace.n;
  const SplayMode mode = o.topology == "semisplay"
                             ? SplayMode::kSemiSplayOnly
                             : SplayMode::kFullSplay;
  if (o.shards != 1) {
    if (o.topology != "ksplay" && o.topology != "semisplay")
      throw TreeError("--shards requires a ksplay or semisplay topology");
    return ShardedNetwork::balanced(o.k, n, o.shards,
                                    parse_partition(o.partition),
                                    RotationPolicy{}, mode);
  }
  if (o.topology == "ksplay" || o.topology == "semisplay")
    return KArySplayNetwork(
        KArySplayNet::balanced(o.k, n, RotationPolicy{}, mode));
  if (o.topology == "centroid")
    return CentroidSplayNetwork(CentroidSplayNet(o.k, n));
  if (o.topology == "binary") return BinarySplayNetwork(n);
  if (o.topology == "full")
    return StaticTreeNetwork(full_kary_tree(o.k, n), "full tree");
  if (o.topology == "optimal") {
    DemandMatrix d = DemandMatrix::from_trace(trace);
    OptimalTreeResult r = optimal_routing_based_tree(o.k, d, 0);
    opt_cost = r.total_distance;
    return StaticTreeNetwork(std::move(r.tree), "optimal static tree");
  }
  throw TreeError("unknown topology: " + o.topology);
}

const KAryTree* tree_of(AnyNetwork& net) {
  if (auto* s = net.get_if<KArySplayNetwork>()) return &s->net().tree();
  if (auto* c = net.get_if<CentroidSplayNetwork>()) return &c->net().tree();
  if (auto* t = net.get_if<StaticTreeNetwork>()) return &t->tree();
  // binary SplayNet has its own representation; sharded has S trees
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  try {
    o = parse(argc, argv);
    const ArrivalKind arrival = parse_arrival(o.arrival);
    const ScheduleConfig sched = parse_schedule(o);
    if (o.open_loop && o.duration > 0.0) {
      if (arrival == ArrivalKind::kSaturation)
        throw TreeError("--duration needs --arrival poisson|bursty");
      if (o.rate <= 0.0) throw TreeError("--open-loop needs --rate > 0");
      o.requests = static_cast<std::size_t>(o.rate * o.duration);
      if (o.requests == 0) throw TreeError("--rate * --duration rounds to 0");
    }
    if (!o.trace_path.empty() && !o.trace_v2_path.empty())
      throw TreeError("--trace and --trace-v2 are mutually exclusive");
    if (!o.open_loop &&
        (o.queue_policy != "block" || o.deadline_ms > 0.0 || o.admit_rate > 0.0))
      throw TreeError(
          "--queue-policy/--deadline-ms/--admit-rate need --open-loop");

    if (o.stream) {
      // Single-pass replay: requests are pulled on demand, never
      // materialized, so the resident set is O(chunk) at any m.
      if (!o.trace_path.empty())
        throw TreeError("--stream needs a generated workload or --trace-v2");
      if (!o.dump_tree.empty() || !o.dump_trace.empty() ||
          !o.dump_trace_v2.empty() || o.optimal_gap)
        throw TreeError(
            "--stream does not compose with dumps or --optimal-gap (they "
            "need the materialized trace)");
      if (o.topology != "ksplay" && o.topology != "semisplay")
        throw TreeError("--stream requires a ksplay or semisplay topology");
      const RebalancePolicy rebalance = parse_rebalance(o.rebalance);
      if (rebalance != RebalancePolicy::kNone && o.shards <= 1)
        throw TreeError("--rebalance needs --shards > 1");
      if (rebalance != RebalancePolicy::kNone && o.epoch == 0)
        throw TreeError("--rebalance needs --epoch > 0");

      std::unique_ptr<RequestStream> stream;
      if (!o.trace_v2_path.empty())
        stream = std::make_unique<TraceV2Reader>(
            o.trace_v2_path, TraceV2Reader::Backend::kMmap);
      else
        stream = std::make_unique<StreamingWorkload>(
            parse_workload(o.workload), o.n, o.requests, o.seed);

      const SplayMode mode = o.topology == "semisplay"
                                 ? SplayMode::kSemiSplayOnly
                                 : SplayMode::kFullSplay;
      ShardedNetwork net = ShardedNetwork::balanced(
          o.k, static_cast<int>(stream->n()), std::max(1, o.shards),
          parse_partition(o.partition), RotationPolicy{}, mode);
      const RebalanceConfig cfg = make_rebalance_config(o, rebalance);
      const FaultPlan faults =
          make_fault_plan(o, std::max(1, o.shards), stream->size());

      Table out({"metric", "value"});
      out.add_row({"network", net.name() + (o.open_loop
                                                ? " (streaming, open-loop)"
                                                : " (streaming)")});
      out.add_row({"nodes", std::to_string(stream->n())});
      if (o.open_loop) {
        FrontendOptions fopt;
        if (rebalance != RebalancePolicy::kNone || cfg.lifecycle_enabled())
          fopt.rebalance = &cfg;
        fopt.schedule = sched;
        fopt.queue_policy = parse_queue_policy(o.queue_policy);
        fopt.deadline_ms = o.deadline_ms;
        fopt.admit_rate = o.admit_rate;
        if (faults.enabled()) fopt.faults = &faults;
        StreamingArrivalSchedule schedule(arrival, o.rate, o.seed);
        ServeFrontend frontend(net, fopt);
        const FrontendResult r = frontend.run_stream(*stream, schedule);
        out.add_row({"requests", std::to_string(r.sim.requests)});
        if (sched.reorders()) {
          out.add_row({"schedule", schedule_policy_name(r.sim.schedule)});
          out.add_row({"reordered requests",
                       std::to_string(r.sim.reordered_requests)});
        }
        out.add_row({"arrival process", arrival_kind_name(arrival)});
        out.add_row({"offered rate (req/s)", fixed_cell(r.offered_rate)});
        out.add_row({"achieved rate (req/s)", fixed_cell(r.achieved_rate)});
        out.add_row({"elapsed (s)", fixed_cell(r.elapsed_seconds)});
        out.add_row({"sojourn p50 (us)", fixed_cell(r.sim.latency.p50_us)});
        out.add_row({"sojourn p99 (us)", fixed_cell(r.sim.latency.p99_us)});
        out.add_row({"sojourn p999 (us)", fixed_cell(r.sim.latency.p999_us)});
        out.add_row({"sojourn max (us)", fixed_cell(r.sim.latency.max_us)});
        out.add_row(
            {"mean cost/request", fixed_cell(r.sim.avg_request_cost())});
        out.add_row({"total routing", std::to_string(r.sim.routing_cost)});
        out.add_row({"total rotations", std::to_string(r.sim.rotation_count)});
        out.add_row(
            {"cross-shard requests", std::to_string(r.sim.cross_shard)});
        out.add_row({"handovers", std::to_string(r.handovers)});
        if (rebalance != RebalancePolicy::kNone) {
          out.add_row(
              {"rebalance epochs", std::to_string(r.sim.rebalance_epochs)});
          out.add_row({"migrations", std::to_string(r.sim.migrations)});
          out.add_row({"migration cost", std::to_string(r.sim.migration_cost)});
          out.add_row({"forwards", std::to_string(r.forwards)});
          out.add_row({"intra-shard fraction (at dispatch)",
                       fixed_cell(r.sim.post_intra_fraction)});
        }
        add_overload_rows(out, r, fopt.queue_policy);
        if (cfg.lifecycle_enabled()) add_lifecycle_rows(out, r.sim);
        if (faults.enabled()) add_fault_rows(out, r.sim, faults);
      } else {
        ShardedRunOptions ropt;
        if (rebalance != RebalancePolicy::kNone || cfg.lifecycle_enabled())
          ropt.rebalance = &cfg;
        ropt.schedule = sched;
        if (faults.enabled()) ropt.faults = &faults;
        const SimResult res = run_trace_sharded_stream(net, *stream, ropt);
        out.add_row({"requests", std::to_string(res.requests)});
        if (sched.reorders()) {
          out.add_row({"schedule", schedule_policy_name(res.schedule)});
          out.add_row(
              {"reordered requests", std::to_string(res.reordered_requests)});
        }
        out.add_row({"mean cost/request", fixed_cell(res.avg_request_cost())});
        out.add_row({"total routing", std::to_string(res.routing_cost)});
        out.add_row({"total rotations", std::to_string(res.rotation_count)});
        out.add_row({"total link changes", std::to_string(res.edge_changes)});
        out.add_row({"cross-shard requests", std::to_string(res.cross_shard)});
        if (rebalance != RebalancePolicy::kNone) {
          out.add_row(
              {"rebalance epochs", std::to_string(res.rebalance_epochs)});
          out.add_row({"migrations", std::to_string(res.migrations)});
          out.add_row({"migration cost", std::to_string(res.migration_cost)});
          out.add_row(
              {"grand total cost", std::to_string(res.grand_total_cost())});
          out.add_row({"intra-shard fraction (at dispatch)",
                       fixed_cell(res.post_intra_fraction)});
        }
        if (cfg.lifecycle_enabled()) add_lifecycle_rows(out, res);
        if (faults.enabled()) add_fault_rows(out, res, faults);
      }
      if (o.csv)
        std::cout << out.to_csv();
      else
        out.print();
      return 0;
    }

    Trace trace = !o.trace_v2_path.empty()
                      ? read_trace_v2_file(o.trace_v2_path)
                      : (o.trace_path.empty()
                             ? gen_workload(parse_workload(o.workload), o.n,
                                            o.requests, o.seed)
                             : read_trace_file(o.trace_path));
    if (!o.dump_trace.empty()) write_trace_file(o.dump_trace, trace);
    if (!o.dump_trace_v2.empty()) write_trace_v2_file(o.dump_trace_v2, trace);

    const TraceStats st = compute_stats(trace);
    const RebalancePolicy rebalance = parse_rebalance(o.rebalance);
    if (rebalance != RebalancePolicy::kNone && o.shards <= 1)
      throw TreeError("--rebalance needs --shards > 1");
    if (rebalance != RebalancePolicy::kNone && o.epoch == 0)
      throw TreeError("--rebalance needs --epoch > 0");
    const RebalanceConfig lifecycle_cfg = make_rebalance_config(o, rebalance);
    const FaultPlan faults =
        make_fault_plan(o, std::max(1, o.shards), trace.size());
    if ((lifecycle_cfg.lifecycle_enabled() || faults.enabled()) &&
        o.shards <= 1 && !o.open_loop)
      throw TreeError("--split-watermark/--merge-watermark/--replicas/--fault "
                      "need --shards > 1 (or --open-loop for --fault)");
    if (o.open_loop) {
      // Live serving path: ServeFrontend over a ShardedNetwork (S = 1 is
      // the single-worker degenerate case with identical costs).
      if (o.topology != "ksplay" && o.topology != "semisplay")
        throw TreeError("--open-loop requires a ksplay or semisplay topology");
      const SplayMode mode = o.topology == "semisplay"
                                 ? SplayMode::kSemiSplayOnly
                                 : SplayMode::kFullSplay;
      ShardedNetwork net = ShardedNetwork::balanced(
          o.k, trace.n, std::max(1, o.shards), parse_partition(o.partition),
          RotationPolicy{}, mode);
      FrontendOptions fopt;
      if (rebalance != RebalancePolicy::kNone ||
          lifecycle_cfg.lifecycle_enabled())
        fopt.rebalance = &lifecycle_cfg;
      fopt.schedule = sched;
      fopt.queue_policy = parse_queue_policy(o.queue_policy);
      fopt.deadline_ms = o.deadline_ms;
      fopt.admit_rate = o.admit_rate;
      if (faults.enabled()) fopt.faults = &faults;
      const auto arrivals = gen_arrival_times(
          arrival, arrival == ArrivalKind::kSaturation ? 0.0 : o.rate,
          trace.size(), o.seed);
      ServeFrontend frontend(net, fopt);
      const FrontendResult r = frontend.run(trace, arrivals);

      Table out({"metric", "value"});
      out.add_row({"network", net.name() + " (open-loop)"});
      out.add_row({"nodes", std::to_string(trace.n)});
      out.add_row({"requests", std::to_string(trace.size())});
      if (sched.reorders()) {
        out.add_row({"schedule", schedule_policy_name(r.sim.schedule)});
        out.add_row(
            {"reordered requests", std::to_string(r.sim.reordered_requests)});
      }
      out.add_row({"arrival process", arrival_kind_name(arrival)});
      out.add_row({"offered rate (req/s)", fixed_cell(r.offered_rate)});
      out.add_row({"achieved rate (req/s)", fixed_cell(r.achieved_rate)});
      out.add_row({"elapsed (s)", fixed_cell(r.elapsed_seconds)});
      out.add_row({"sojourn p50 (us)", fixed_cell(r.sim.latency.p50_us)});
      out.add_row({"sojourn p99 (us)", fixed_cell(r.sim.latency.p99_us)});
      out.add_row({"sojourn p999 (us)", fixed_cell(r.sim.latency.p999_us)});
      out.add_row({"sojourn max (us)", fixed_cell(r.sim.latency.max_us)});
      out.add_row({"queue wait p99 (us)",
                   fixed_cell(static_cast<double>(r.queue_wait.p99()) / 1e3)});
      out.add_row({"mean cost/request", fixed_cell(r.sim.avg_request_cost())});
      out.add_row({"total routing", std::to_string(r.sim.routing_cost)});
      out.add_row({"total rotations", std::to_string(r.sim.rotation_count)});
      out.add_row({"cross-shard requests", std::to_string(r.sim.cross_shard)});
      out.add_row({"handovers", std::to_string(r.handovers)});
      if (rebalance != RebalancePolicy::kNone ||
          lifecycle_cfg.lifecycle_enabled()) {
        out.add_row({"rebalance epochs", std::to_string(r.sim.rebalance_epochs)});
        out.add_row({"migrations", std::to_string(r.sim.migrations)});
        out.add_row({"migration cost", std::to_string(r.sim.migration_cost)});
        out.add_row({"forwards", std::to_string(r.forwards)});
        out.add_row({"final intra-shard fraction",
                     fixed_cell(r.sim.post_intra_fraction)});
      }
      add_overload_rows(out, r, fopt.queue_policy);
      if (lifecycle_cfg.lifecycle_enabled()) add_lifecycle_rows(out, r.sim);
      if (faults.enabled()) add_fault_rows(out, r.sim, faults);
      if (o.csv)
        std::cout << out.to_csv();
      else
        out.print();
      return 0;
    }

    std::optional<Cost> precomputed_opt;
    AnyNetwork net = make_network(o, trace, precomputed_opt);

    Table out({"metric", "value"});
    out.add_row({"network", net.name()});
    out.add_row({"nodes", std::to_string(trace.n)});
    out.add_row({"requests", std::to_string(trace.size())});
    out.add_row({"trace repeat fraction", fixed_cell(st.repeat_fraction)});

    if (rebalance != RebalancePolicy::kNone ||
        lifecycle_cfg.lifecycle_enabled() || faults.enabled()) {
      // Adaptive path: the batched pipeline with rebalance / lifecycle
      // epochs and scripted faults. Costs come as totals (no per-request
      // series through the drains).
      ShardedNetwork& sharded = *net.get_if<ShardedNetwork>();
      ShardedRunOptions ropt;
      if (rebalance != RebalancePolicy::kNone ||
          lifecycle_cfg.lifecycle_enabled())
        ropt.rebalance = &lifecycle_cfg;
      ropt.schedule = sched;
      if (faults.enabled()) ropt.faults = &faults;
      const SimResult res = run_trace_sharded(sharded, trace, ropt);
      out.add_row({"rebalance policy", o.rebalance});
      out.add_row({"epoch requests", std::to_string(o.epoch)});
      if (sched.reorders()) {
        out.add_row({"schedule", schedule_policy_name(res.schedule)});
        out.add_row(
            {"reordered requests", std::to_string(res.reordered_requests)});
      }
      out.add_row({"mean cost/request", fixed_cell(res.avg_request_cost())});
      out.add_row({"total routing", std::to_string(res.routing_cost)});
      out.add_row({"total rotations", std::to_string(res.rotation_count)});
      out.add_row({"total link changes", std::to_string(res.edge_changes)});
      out.add_row({"rebalance epochs", std::to_string(res.rebalance_epochs)});
      out.add_row({"migrations", std::to_string(res.migrations)});
      out.add_row({"migration cost", std::to_string(res.migration_cost)});
      out.add_row({"grand total cost", std::to_string(res.grand_total_cost())});
      out.add_row(
          {"final intra-shard fraction", fixed_cell(res.post_intra_fraction)});
      out.add_row({"cross-shard requests", std::to_string(res.cross_shard)});
      out.add_row({"shard load imbalance",
                   fixed_cell(compute_shard_stats(trace, sharded.map())
                                  .load_imbalance())});
      if (lifecycle_cfg.lifecycle_enabled()) add_lifecycle_rows(out, res);
      if (faults.enabled()) add_fault_rows(out, res, faults);
      if (o.optimal_gap) {
        const Cost opt = optimal_cost_for(trace, o.k);
        out.add_row({"optimal static cost", std::to_string(opt)});
        out.add_row(
            {"optimality gap (grand total / optimal)",
             opt > 0 ? fixed_cell(
                           static_cast<double>(res.grand_total_cost()) / opt)
                     : std::string("-")});
      }
      if (o.csv)
        std::cout << out.to_csv();
      else
        out.print();
      return 0;
    }

    CostSeries series;
    Cost routing = 0, rotations = 0, links = 0;
    if (!sched.reorders()) {
      // One visit hoists the variant dispatch out of the replay loop.
      net.visit([&](auto& n) {
        for (const Request& r : trace.requests) {
          const ServeResult s = n.serve(r.src, r.dst);
          series.add(s.routing_cost + s.rotations);
          routing += s.routing_cost;
          rotations += s.rotations;
          links += s.edge_changes;
        }
      });
      out.add_row({"mean cost/request", fixed_cell(series.mean())});
      out.add_row({"p50 cost", std::to_string(series.percentile(0.50))});
      out.add_row({"p99 cost", std::to_string(series.percentile(0.99))});
      out.add_row({"max cost", std::to_string(series.max())});
    } else {
      // Scheduled replay goes through the batch engines (run_trace /
      // run_trace_sharded), which report totals: per-request percentiles
      // are not meaningful once the serve order is permuted.
      SimResult res;
      if (auto* sharded = net.get_if<ShardedNetwork>())
        res = run_trace_sharded(*sharded, trace, {.schedule = sched});
      else
        res = run_trace(net, trace, sched);
      routing = res.routing_cost;
      rotations = res.rotation_count;
      links = res.edge_changes;
      out.add_row({"schedule", schedule_policy_name(res.schedule)});
      out.add_row(
          {"reordered requests", std::to_string(res.reordered_requests)});
      out.add_row({"mean cost/request", fixed_cell(res.avg_request_cost())});
    }
    out.add_row({"total routing", std::to_string(routing)});
    out.add_row({"total rotations", std::to_string(rotations)});
    out.add_row({"total link changes", std::to_string(links)});
    if (const auto* sharded = net.get_if<ShardedNetwork>()) {
      const ShardLocalityStats ss = compute_shard_stats(trace, sharded->map());
      out.add_row({"shards", std::to_string(sharded->num_shards()) + " (" +
                                 o.partition + ")"});
      out.add_row({"cross-shard requests",
                   std::to_string(sharded->cross_shard_served())});
      out.add_row({"intra-shard fraction", fixed_cell(ss.intra_fraction())});
      out.add_row({"shard load imbalance", fixed_cell(ss.load_imbalance())});
    }
    if (o.optimal_gap) {
      // Gap of the served cost (routing + rotations, the paper's cost
      // convention) against the hindsight-optimal static k-ary tree for
      // this exact trace. The "optimal" topology serves at gap 1.000 by
      // construction; self-adjusting networks show their adjustment
      // overhead, sharded engines additionally pay the top-tree detour.
      const int gap_k = o.topology == "binary" ? 2 : o.k;
      const Cost opt =
          precomputed_opt ? *precomputed_opt : optimal_cost_for(trace, gap_k);
      out.add_row({"optimal static cost", std::to_string(opt)});
      out.add_row(
          {"optimality gap (online / optimal)",
           opt > 0
               ? fixed_cell(static_cast<double>(routing + rotations) / opt)
               : std::string("-")});
    }
    if (o.csv)
      std::cout << out.to_csv();
    else
      out.print();

    if (!o.dump_tree.empty()) {
      const KAryTree* tree = tree_of(net);
      if (tree == nullptr)
        throw TreeError("--dump-tree is not supported for this topology");
      std::ofstream dot(o.dump_tree);
      dot << to_dot(*tree);
      std::cout << "final topology written to " << o.dump_tree << "\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
