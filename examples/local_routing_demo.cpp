// Local routing demo: the practical selling point of search-tree SANs
// (Section 2) — after any reconfiguration, packets still route greedily
// with node-local state only (routing keys + subtree range), no routing
// table updates.
//
// The demo builds a k-ary SplayNet, routes packets hop by hop while the
// topology keeps rotating underneath, and prints per-hop decisions for a
// sample packet plus aggregate stretch statistics.
//
//   $ ./local_routing_demo [k] [n]
#include <cstdlib>
#include <iostream>
#include <random>

#include "core/local_router.hpp"
#include "core/splaynet.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
  const int k = argc > 1 ? std::atoi(argv[1]) : 4;
  const int n = argc > 2 ? std::atoi(argv[2]) : 64;

  san::KArySplayNet net = san::KArySplayNet::balanced(k, n);
  std::mt19937_64 rng(3);

  // Warm the network with some traffic so the topology is no longer the
  // pristine balanced tree.
  for (int i = 0; i < 2000; ++i) {
    san::NodeId u = 1 + static_cast<san::NodeId>(rng() % n);
    san::NodeId v = 1 + static_cast<san::NodeId>(rng() % n);
    if (u != v) net.serve(u, v);
  }

  // Show one packet's hop-by-hop trip.
  const san::NodeId src = 1 + static_cast<san::NodeId>(rng() % n);
  san::NodeId dst = 1 + static_cast<san::NodeId>(rng() % n);
  while (dst == src) dst = 1 + static_cast<san::NodeId>(rng() % n);
  std::cout << "packet " << src << " -> " << dst
            << " over the self-adjusted topology:\n";
  for (const san::Hop& hop : san::local_route(net.tree(), src, dst)) {
    switch (hop.kind) {
      case san::HopKind::kDeliverLocal:
        std::cout << "  at " << hop.at << ": deliver\n";
        break;
      case san::HopKind::kToChild:
        std::cout << "  at " << hop.at << ": target in my subtree range -> "
                  << "child " << hop.next << "\n";
        break;
      case san::HopKind::kToParent:
        std::cout << "  at " << hop.at << ": target outside my range -> "
                  << "parent " << hop.next << "\n";
        break;
    }
  }

  // Aggregate: local forwarding vs exact tree distance for all pairs,
  // interleaved with further self-adjustments.
  long pairs = 0, exact = 0, total_stretch_hops = 0;
  for (san::NodeId u = 1; u <= n; ++u) {
    for (san::NodeId v = 1; v <= n; ++v) {
      if (u == v) continue;
      const int len = san::local_route_length(net.tree(), u, v);
      const int dist = net.tree().distance(u, v);
      ++pairs;
      if (len == dist) ++exact;
      total_stretch_hops += len - dist;
    }
    // keep rotating while we measure
    san::NodeId a = 1 + static_cast<san::NodeId>(rng() % n);
    san::NodeId b = 1 + static_cast<san::NodeId>(rng() % n);
    if (a != b) net.serve(a, b);
  }
  std::cout << "\nall-pairs local forwarding: " << pairs << " packets, "
            << exact << " on the exact shortest path ("
            << san::fixed_cell(100.0 * exact / pairs, 1) << "%), "
            << "average overhead "
            << san::fixed_cell(static_cast<double>(total_stretch_hops) / pairs,
                               3)
            << " hops\n";
  std::cout << "(detours can appear after rotations when an id key has "
               "drifted; the bounce rule\n recovers locally — see "
               "DESIGN.md)\n";
  return 0;
}
