// Datacenter scenario: a rack-level reconfigurable interconnect serving
// shifting tenant traffic.
//
// Models the motivating setting of the paper's introduction: an optical-
// switch topology over top-of-rack nodes where the traffic mix changes over
// time (an HPC tenant phase, then a skewed service-mesh phase, then an
// all-to-all shuffle). Compares, on one continuous trace:
//   * k-ary SplayNet (fully reactive self-adjustment),
//   * (k+1)-SplayNet (the centroid heuristic),
//   * the static full k-ary tree (demand-oblivious), and
//   * a static demand-aware tree computed with hindsight over the whole
//     trace (the offline O(n^3 k) DP) — an unrealizable lower reference.
//
//   $ ./datacenter_reconfiguration [k] [n] [requests-per-phase]
#include <cstdlib>
#include <iostream>

#include "core/splaynet.hpp"
#include "sim/simulator.hpp"
#include "static_trees/full_tree.hpp"
#include "static_trees/optimal_dp.hpp"
#include "stats/table.hpp"
#include "workload/demand_matrix.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
  const int k = argc > 1 ? std::atoi(argv[1]) : 3;
  const int n = argc > 2 ? std::atoi(argv[2]) : 250;
  const std::size_t per_phase =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 60000;

  std::cout << "Reconfigurable datacenter interconnect: " << n
            << " racks, arity " << k << ", three traffic phases x "
            << per_phase << " requests\n\n";

  // Phase 1: HPC tenant (structured, id-local). Phase 2: service mesh
  // (sparse skewed elephants). Phase 3: shuffle (uniform all-to-all).
  san::Trace trace;
  trace.n = n;
  for (auto kind : {san::WorkloadKind::kHpc, san::WorkloadKind::kProjector,
                    san::WorkloadKind::kUniform}) {
    san::Trace phase = san::gen_workload(kind, n, per_phase, 11);
    trace.requests.insert(trace.requests.end(), phase.requests.begin(),
                          phase.requests.end());
  }

  san::KArySplayNetwork splay(san::KArySplayNet::balanced(k, n));
  san::CentroidSplayNetwork centroid{san::CentroidSplayNet(k, n)};
  san::SimResult splay_res = san::run_trace(splay, trace);
  san::SimResult cent_res = san::run_trace(centroid, trace);

  san::SimResult full_res =
      san::run_trace_static(san::full_kary_tree(k, n), trace);

  san::DemandMatrix demand = san::DemandMatrix::from_trace(trace);
  san::OptimalTreeResult opt = san::optimal_routing_based_tree(k, demand, 0);
  san::SimResult opt_res = san::run_trace_static(opt.tree, trace);

  san::Table out({"topology", "routing/req", "rotations/req", "total/req"});
  auto add = [&](const std::string& name, const san::SimResult& r) {
    out.add_row({name, san::fixed_cell(r.avg_routing_cost()),
                 san::fixed_cell(static_cast<double>(r.rotation_count) /
                                 static_cast<double>(r.requests)),
                 san::fixed_cell(r.avg_request_cost())});
  };
  add(std::to_string(k) + "-ary SplayNet (online)", splay_res);
  add(std::to_string(k + 1) + "-SplayNet (centroid, online)", cent_res);
  add("full " + std::to_string(k) + "-ary tree (static)", full_res);
  add("offline optimal tree (hindsight)", opt_res);
  out.print();

  std::cout << "\nThe online networks adapt across phase changes without "
               "global recomputation;\nthe hindsight-optimal static tree "
               "shows how much a single topology could ever get\nfrom this "
               "mixed demand.\n";
  return 0;
}
