// Lazy (partially reactive) self-adjustment: the meta-algorithm the paper's
// related-work section describes (Feder et al., INFOCOM 2022 model): keep a
// *static* demand-aware topology, accumulate routing cost, and once the
// cost since the last reconfiguration exceeds a threshold alpha, recompute
// the optimal static tree from the recent demand window and swap it in,
// paying the number of changed links.
//
// Compares, on a drifting workload (hot communication cluster moves over
// time), three operating points:
//   * fully reactive k-ary SplayNet (adjusts every request),
//   * lazy rebuilds at several alpha thresholds,
//   * one static demand-oblivious full tree.
//
//   $ ./lazy_rebuild [k] [n] [requests]
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <random>

#include "core/splaynet.hpp"
#include "sim/simulator.hpp"
#include "static_trees/full_tree.hpp"
#include "static_trees/optimal_dp.hpp"
#include "stats/table.hpp"
#include "workload/demand_matrix.hpp"

namespace {

using namespace san;

// Drifting hot-cluster workload: at any time a window of ~16 ids carries
// 90% of the traffic; the window glides across the id space.
Trace drifting_trace(int n, std::size_t m, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  Trace t;
  t.n = n;
  t.requests.reserve(m);
  const int width = 16;
  for (std::size_t i = 0; i < m; ++i) {
    const int base =
        static_cast<int>((i * (n - width)) / m);  // glides 0 .. n-width
    NodeId u, v;
    if (coin(rng) < 0.9) {
      u = static_cast<NodeId>(1 + base + rng() % width);
      v = static_cast<NodeId>(1 + base + rng() % width);
    } else {
      u = static_cast<NodeId>(1 + rng() % n);
      v = static_cast<NodeId>(1 + rng() % n);
    }
    if (u == v) v = (v % n) + 1;
    t.requests.push_back({u, v});
  }
  return t;
}

// Number of links present in one tree but not the other (the swap cost of
// a full reconfiguration under the Section 2 model).
Cost edge_diff(const KAryTree& a, const KAryTree& b) {
  auto edges = [](const KAryTree& t) {
    std::vector<std::pair<NodeId, NodeId>> e;
    for (NodeId id = 1; id <= t.size(); ++id) {
      NodeId p = t.node(id).parent;
      if (p != kNoNode) e.push_back({std::min(id, p), std::max(id, p)});
    }
    std::sort(e.begin(), e.end());
    return e;
  };
  auto ea = edges(a);
  auto eb = edges(b);
  std::vector<std::pair<NodeId, NodeId>> diff;
  std::set_symmetric_difference(ea.begin(), ea.end(), eb.begin(), eb.end(),
                                std::back_inserter(diff));
  return static_cast<Cost>(diff.size());
}

struct LazyResult {
  Cost routing = 0;
  Cost reconfig = 0;
  int rebuilds = 0;
};

LazyResult run_lazy(int k, const Trace& trace, Cost alpha) {
  const int n = trace.n;
  LazyResult res;
  KAryTree current = full_kary_tree(k, n);
  DemandMatrix window(n);
  Cost since_rebuild = 0;
  for (const Request& r : trace.requests) {
    const Cost c = current.distance(r.src, r.dst);
    res.routing += c;
    since_rebuild += c;
    window.add(r.src, r.dst);
    if (since_rebuild >= alpha) {
      KAryTree next = optimal_routing_based_tree(k, window, 0).tree;
      res.reconfig += edge_diff(current, next);
      current = std::move(next);
      window = DemandMatrix(n);  // fresh demand window
      since_rebuild = 0;
      ++res.rebuilds;
    }
  }
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const int k = argc > 1 ? std::atoi(argv[1]) : 3;
  const int n = argc > 2 ? std::atoi(argv[2]) : 128;
  const std::size_t m = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 80000;

  std::cout << "Lazy self-adjusting network (threshold rebuilds) on a "
               "drifting hot-cluster workload\n"
            << "k=" << k << ", n=" << n << ", m=" << m << "\n\n";
  Trace trace = drifting_trace(n, m, 5);

  Table out({"strategy", "routing/req", "adjust/req", "total/req",
             "rebuilds"});

  KArySplayNetwork reactive(KArySplayNet::balanced(k, n));
  SimResult splay = run_trace(reactive, trace);
  out.add_row({"k-ary SplayNet (reactive)", fixed_cell(splay.avg_routing_cost()),
               fixed_cell(static_cast<double>(splay.rotation_count) / m),
               fixed_cell(splay.avg_request_cost()), "-"});

  for (Cost alpha : {Cost{2000}, Cost{20000}, Cost{200000}}) {
    LazyResult lr = run_lazy(k, trace, alpha);
    const double total =
        static_cast<double>(lr.routing + lr.reconfig) / static_cast<double>(m);
    out.add_row({"lazy rebuild, alpha=" + std::to_string(alpha),
                 fixed_cell(static_cast<double>(lr.routing) / m),
                 fixed_cell(static_cast<double>(lr.reconfig) / m),
                 fixed_cell(total), std::to_string(lr.rebuilds)});
  }

  SimResult fixed = run_trace_static(full_kary_tree(k, n), trace);
  out.add_row({"full tree (never adjusts)", fixed_cell(fixed.avg_routing_cost()),
               "0.000", fixed_cell(fixed.avg_request_cost()), "0"});

  out.print();
  std::cout << "\nSmall alpha tracks the drift closely but pays frequent "
               "reconfigurations; large\nalpha converges to the static "
               "tree. The reactive SplayNet needs no tuning.\n";
  return 0;
}
