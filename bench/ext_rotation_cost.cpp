// Extension experiment: sensitivity to the reconfiguration price. The
// evaluation sets rotation cost = 1 (Section 5, following the matching-
// model convention [12]); real optical switches make reconfiguration
// slower than forwarding. This bench re-prices the same runs as
// total = routing + rho * rotations for rho in {0, 0.5, 1, 2, 5, 10} and
// reports, per workload, the largest rho at which the 4-ary SplayNet still
// beats the static full 4-ary tree — the break-even reconfiguration price.
#include <iostream>

#include "bench_common.hpp"
#include "core/splaynet.hpp"
#include "sim/simulator.hpp"
#include "static_trees/full_tree.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
  san::bench::init_bench_cli(argc, argv);
  using namespace san;
  const int k = 4;
  const int n = 500;
  const std::size_t m = bench::scaled<std::size_t>(5000, 200000, 1000000);
  const double rhos[] = {0.0, 0.5, 1.0, 2.0, 5.0, 10.0};

  std::cout << "== Extension: break-even rotation cost (k=" << k
            << ", n=" << n << ", " << m << " requests) ==\n";
  std::cout << "cells: (routing + rho*rotations) / static-full-tree cost; "
               "<1 means self-adjusting wins\n\n";

  std::vector<std::string> header = {"workload"};
  for (double rho : rhos) header.push_back("rho=" + fixed_cell(rho, 1));
  header.push_back("break-even rho");
  Table out(header);

  for (auto kind :
       {WorkloadKind::kUniform, WorkloadKind::kHpc, WorkloadKind::kProjector,
        WorkloadKind::kTemporal025, WorkloadKind::kTemporal05,
        WorkloadKind::kTemporal075, WorkloadKind::kTemporal09}) {
    Trace trace = gen_workload(kind, n, m, bench::bench_seed());
    KArySplayNetwork splay(KArySplayNet::balanced(k, n));
    const SimResult online = run_trace(splay, trace);
    const Cost static_cost =
        run_trace_static(full_kary_tree(k, n), trace).routing_cost;

    std::vector<std::string> row = {workload_name(kind)};
    double break_even = -1.0;
    for (double rho : rhos) {
      const double total = static_cast<double>(online.routing_cost) +
                           rho * static_cast<double>(online.rotation_count);
      const double ratio = total / static_cast<double>(static_cost);
      if (ratio < 1.0) break_even = rho;
      row.push_back(fixed_cell(ratio, 2));
    }
    // Exact break-even from the linear model.
    const double exact =
        (static_cast<double>(static_cost) -
         static_cast<double>(online.routing_cost)) /
        static_cast<double>(online.rotation_count);
    row.push_back(exact < 0 ? "never" : fixed_cell(exact, 2));
    (void)break_even;
    out.add_row(row);
  }
  out.print();
  std::cout << "\nHigh-locality workloads tolerate expensive "
               "reconfiguration; low-locality ones\nneed rotations to be "
               "nearly free — quantifying the Section 5 assumption.\n";
  return 0;
}
