// Release-mode differential gate: the flat DP engine against the
// pre-rewrite reference oracle on randomized demand matrices. The tier-1
// test wall runs the same comparison under ASan/UBSan in debug-friendly
// sizes (tests/test_dp_exhaustive.cpp); this binary repeats it with
// Release codegen — the configuration that actually ships the vectorized
// min-plus kernels — and exits nonzero on any cost or tree mismatch, so
// CI cannot go green with a silently diverging optimizer build.
//
//   dp_differential            # 200 instances, n up to 96
//   dp_differential --smoke    # 48 instances, n up to 40 (CI push gate)
#include <iostream>
#include <random>
#include <string>

#include "bench_common.hpp"
#include "static_trees/optimal_dp.hpp"
#include "workload/demand_matrix.hpp"

int main(int argc, char** argv) {
  using namespace san;
  bench::init_bench_cli(argc, argv);

  const int instances = bench::scaled(48, 200, 400);
  const int max_n = bench::scaled(40, 96, 128);
  const int ks[] = {2, 3, 5, 10};

  long checked = 0;
  for (int trial = 0; trial < instances; ++trial) {
    const int k = ks[trial % 4];
    std::mt19937_64 rng(0x5EEDu + static_cast<std::uint64_t>(trial));
    const int n = 2 + static_cast<int>(rng() % static_cast<unsigned>(max_n - 1));
    DemandMatrix d(n);
    const int pairs = 1 + static_cast<int>(rng() % (4u * n));
    for (int p = 0; p < pairs; ++p) {
      const NodeId u = 1 + static_cast<NodeId>(rng() % n);
      const NodeId v = 1 + static_cast<NodeId>(rng() % n);
      if (u != v) d.add(u, v, 1 + static_cast<Cost>(rng() % 997));
    }
    const OptimalTreeResult fast = optimal_routing_based_tree(k, d, 1);
    const OptimalTreeResult ref = optimal_routing_based_tree_reference(k, d, 1);
    if (fast.total_distance != ref.total_distance) {
      std::cerr << "MISMATCH: cost " << fast.total_distance << " vs reference "
                << ref.total_distance << " (trial " << trial << ", n=" << n
                << ", k=" << k << ")\n";
      return 1;
    }
    if (optimal_routing_based_cost(k, d, 1) != ref.total_distance) {
      std::cerr << "MISMATCH: cost-only entry diverges (trial " << trial
                << ", n=" << n << ", k=" << k << ")\n";
      return 1;
    }
    if (!fast.tree.valid() ||
        d.total_distance(fast.tree) != fast.total_distance) {
      std::cerr << "MISMATCH: reconstructed tree does not achieve the DP "
                   "value (trial "
                << trial << ", n=" << n << ", k=" << k << ")\n";
      return 1;
    }
    for (NodeId u = 1; u <= n; ++u) {
      if (fast.tree.parent(u) != ref.tree.parent(u)) {
        std::cerr << "MISMATCH: trees differ at node " << u << " (trial "
                  << trial << ", n=" << n << ", k=" << k << ")\n";
        return 1;
      }
    }
    ++checked;
  }
  std::cout << "dp_differential: " << checked
            << " instances, flat engine == reference (cost, tree)\n";
  bench::write_json_result(
      "{\n  \"bench\": \"dp_differential\",\n  \"instances\": " +
      std::to_string(checked) + ",\n  \"result\": \"identical\"\n}\n");
  return 0;
}
