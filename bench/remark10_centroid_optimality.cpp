// Remark 10 / Remark 37: "our centroid k-ary search tree is indeed optimal
// for all n less than 10^3 when k is up to 10". Reproduced by comparing the
// O(n) centroid construction's uniform total distance against the
// O(n^2 k) DP optimum over every (n, k) in the sweep.
#include <iostream>

#include "bench_common.hpp"
#include "static_trees/centroid_tree.hpp"
#include "static_trees/full_tree.hpp"
#include "static_trees/uniform_dp.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
  san::bench::init_bench_cli(argc, argv);
  using namespace san;
  const int n_max = bench::scaled(64, 512, 999);
  std::cout << "== Remark 10: centroid tree vs uniform-workload optimum ==\n";
  std::cout << "sweep: n in [2, " << n_max << "], k in [2, 10] (paper: n < "
               "10^3, k <= 10)\n\n";

  long long checked = 0, matches = 0;
  Cost worst_gap = 0;
  int worst_n = -1, worst_k = -1;
  for (int k = 2; k <= 10; ++k) {
    for (int n = 2; n <= n_max; ++n) {
      const Cost opt = optimal_uniform_cost(k, n);
      const Cost cen = centroid_kary_tree(k, n).uniform_total_distance();
      ++checked;
      if (cen == opt) {
        ++matches;
      } else if (cen - opt > worst_gap) {
        worst_gap = cen - opt;
        worst_n = n;
        worst_k = k;
      }
    }
  }

  Table out({"quantity", "measured", "paper"});
  out.add_row({"configurations checked", std::to_string(checked), "-"});
  out.add_row({"centroid == optimum", std::to_string(matches),
               "all (optimal for n < 10^3, k <= 10)"});
  out.add_row({"largest gap", std::to_string(worst_gap), "0"});
  out.print();
  if (worst_gap > 0)
    std::cout << "worst case: n=" << worst_n << " k=" << worst_k << "\n";

  // Spot table: absolute costs for a few sizes, full tree included for
  // context (Lemma 9's O(n^2) slack is visible in the last column).
  Table spot({"n", "k", "optimal", "centroid", "full"});
  for (int k : {2, 3, 5, 10})
    for (int n : {100, 250, n_max}) {
      spot.add_row({std::to_string(n), std::to_string(k),
                    std::to_string(optimal_uniform_cost(k, n)),
                    std::to_string(
                        centroid_kary_tree(k, n).uniform_total_distance()),
                    std::to_string(
                        full_kary_tree(k, n).uniform_total_distance())});
    }
  std::cout << "\n";
  spot.print();
  return matches == checked ? 0 : 1;
}
