// Locality-aware batch scheduling vs FIFO on the unsharded k-ary SplayNet:
// serve throughput and total cost across tree sizes, with the adversarial
// cells reported as honestly as the wins.
//
// Grid: n in {10^4, 10^5, 10^6} x workload x {fifo, locality}. Workloads:
//   * skewed (ProjecToR-like sparse elephant pairs) — hot pairs cluster
//     under few LCAs, the case the reorder targets;
//   * zipf (Facebook-like independent Zipf endpoints) — wide-support skew,
//     large working set: at n >= 10^5 the tree no longer fits in cache and
//     the prefetch warm-up has real misses to hide;
//   * seqscan (cyclic neighbour walk) — the ADVERSARIAL cell: FIFO order
//     is exactly the splay-friendly sequential pattern (amortized O(1)
//     per request) and any locality reorder scrambles the chain the tree
//     is exploiting, so locality is expected to LOSE here;
//   * bitrev (bit-reversal pairs) — anti-locality arrivals, the mirror
//     case: arrival order maximizes jumps, so clustering has headroom.
//
// Each cell is one run_trace over a fresh balanced k=2 net (the locality
// runs use the default window=1024 / group=8 config that san_cli
// --schedule locality picks). Ratios are per-(workload, n) against the
// FIFO cell. The checked-in BENCH_locality_scaling.json records this
// machine's numbers, losses included.
#include <chrono>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "stats/table.hpp"

namespace {

using namespace san;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct Row {
  std::string schedule;
  double seconds = 0;
  double req_per_sec = 0;
  double throughput_ratio = 1.0;  // vs the FIFO row of the same cell pair
  Cost total_cost = 0;
  double cost_ratio = 1.0;        // vs the FIFO row of the same cell pair
  double reordered_fraction = 0;
};

struct Cell {
  std::string workload;
  int n = 0;
  std::size_t requests = 0;
  std::vector<Row> rows;  // rows[0] = fifo, rows[1] = locality
};

Row run_row(const Trace& trace, int n, const ScheduleConfig& sched) {
  KArySplayNetwork net(KArySplayNet::balanced(2, n));
  const auto t0 = std::chrono::steady_clock::now();
  const SimResult res = run_trace(net, trace, sched);
  Row row;
  row.schedule = schedule_policy_name(sched.policy);
  row.seconds = seconds_since(t0);
  row.req_per_sec = static_cast<double>(res.requests) / row.seconds;
  row.total_cost = res.total_cost();
  row.reordered_fraction =
      res.requests == 0 ? 0.0
                        : static_cast<double>(res.reordered_requests) /
                              static_cast<double>(res.requests);
  return row;
}

Cell run_cell(const char* label, WorkloadKind kind, int n) {
  const std::size_t m = bench::trace_length();
  Cell cell;
  cell.workload = label;
  cell.n = n;
  cell.requests = m;
  const Trace trace = gen_workload(kind, n, m, bench::bench_seed());

  cell.rows.push_back(run_row(trace, n, ScheduleConfig{}));
  ScheduleConfig locality;
  locality.policy = SchedulePolicy::kLocality;
  cell.rows.push_back(run_row(trace, n, locality));

  Row& fifo = cell.rows[0];
  Row& loc = cell.rows[1];
  loc.throughput_ratio = loc.req_per_sec / fifo.req_per_sec;
  loc.cost_ratio = static_cast<double>(loc.total_cost) /
                   static_cast<double>(fifo.total_cost);
  return cell;
}

void print_cell(const Cell& cell) {
  std::cout << "-- " << cell.workload << " (n=" << cell.n
            << ", requests=" << cell.requests << ", k=2) --\n";
  Table out({"schedule", "seconds", "req/s", "thpt ratio", "total cost",
             "cost ratio", "reordered"});
  for (const Row& r : cell.rows)
    out.add_row({r.schedule, fixed_cell(r.seconds, 3),
                 std::to_string(static_cast<long long>(r.req_per_sec)),
                 fixed_cell(r.throughput_ratio), std::to_string(r.total_cost),
                 fixed_cell(r.cost_ratio), fixed_cell(r.reordered_fraction)});
  out.print();
  std::cout << "\n";
}

void append_json(std::ostringstream& js, const Cell& cell, bool last) {
  js << "    {\n      \"workload\": \"" << cell.workload
     << "\",\n      \"n\": " << cell.n
     << ",\n      \"requests\": " << cell.requests << ",\n      \"rows\": [\n";
  for (std::size_t i = 0; i < cell.rows.size(); ++i) {
    const Row& r = cell.rows[i];
    js << "        {\"schedule\": \"" << r.schedule
       << "\", \"seconds\": " << fixed_cell(r.seconds, 4)
       << ", \"req_per_sec\": " << static_cast<long long>(r.req_per_sec)
       << ", \"throughput_ratio\": " << fixed_cell(r.throughput_ratio)
       << ", \"total_cost\": " << r.total_cost
       << ", \"cost_ratio\": " << fixed_cell(r.cost_ratio)
       << ", \"reordered_fraction\": " << fixed_cell(r.reordered_fraction)
       << "}" << (i + 1 < cell.rows.size() ? ",\n" : "\n");
  }
  js << "      ]\n    }" << (last ? "\n" : ",\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace san;
  bench::init_bench_cli(argc, argv);
  std::cout << "== locality scheduling: windowed LCA reorder vs FIFO ==\n";
  std::cout << "window=1024 group=8 (the san_cli --schedule locality "
               "defaults)\n\n";

  const std::vector<int> sizes =
      bench::bench_cli().smoke ? std::vector<int>{1000}
                               : std::vector<int>{10000, 100000, 1000000};
  struct WorkloadSpec {
    const char* label;
    WorkloadKind kind;
  };
  const WorkloadSpec kWorkloads[] = {
      {"skewed", WorkloadKind::kProjector},
      {"zipf", WorkloadKind::kFacebook},
      {"seqscan", WorkloadKind::kSequentialScan},
      {"bitrev", WorkloadKind::kBitReversal},
  };

  std::vector<Cell> cells;
  for (int n : sizes)
    for (const WorkloadSpec& w : kWorkloads)
      cells.push_back(run_cell(w.label, w.kind, n));
  for (const Cell& cell : cells) print_cell(cell);

  // Honest-loss summary: name every cell where the reorder hurt.
  std::cout << "locality losses (ratio vs fifo):\n";
  bool any_loss = false;
  for (const Cell& cell : cells) {
    const Row& loc = cell.rows[1];
    if (loc.throughput_ratio < 1.0 || loc.cost_ratio > 1.0) {
      any_loss = true;
      std::cout << "  " << cell.workload << " n=" << cell.n
                << ": throughput " << fixed_cell(loc.throughput_ratio)
                << "x, cost " << fixed_cell(loc.cost_ratio) << "x\n";
    }
  }
  if (!any_loss) std::cout << "  (none on this run)\n";
  std::cout << "\n";

  std::ostringstream js;
  js << "{\n  \"bench\": \"locality_scaling\",\n  \"k\": 2,\n"
     << "  \"window\": 1024,\n  \"group\": 8,\n  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i)
    append_json(js, cells[i], i + 1 == cells.size());
  js << "  ]\n}\n";
  bench::write_json_result(js.str());
  return 0;
}
