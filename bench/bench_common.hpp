// Shared infrastructure for the table-reproduction benches.
//
// Every bench prints measured values side by side with the paper's
// published numbers. Scale control: by default traces are shortened and
// the largest DP instances reduced so the full bench suite completes in
// minutes; setting SAN_BENCH_FULL=1 switches to the paper's exact sizes
// (n and 10^6 requests). EXPERIMENTS.md records both conventions.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "workload/generators.hpp"

namespace san::bench {

/// Command-line scale control shared by every bench binary. `--smoke`
/// shrinks traces/instances to seconds-scale sizes (via trace_length() /
/// node_count() / scaled()) so CI can run the perf binaries on every push
/// without timing anything meaningful; `--json <path>` asks benches that
/// support it (dp_scaling, serve_hot_path, shard_scaling) to also emit a
/// machine-readable result file (uploaded as a CI artifact); `--threads N`
/// caps the Executor width of every parallel phase (sweeps, DP diagonals,
/// sharded drains; 0 = all hardware threads) and is recorded in the JSON
/// so a result file states the parallelism it was measured at.
struct BenchCli {
  bool smoke = false;
  std::string json_path;
  int threads = 0;
};

BenchCli& bench_cli();

/// Parses `--smoke`, `--json <path>` and `--threads N`; prints usage and
/// exits(2) on anything else. Every bench main calls this first.
void init_bench_cli(int argc, char** argv);

/// Thread count benches pass to run_sweep / parallel_for / sharded drains
/// (the raw --threads value; 0 = auto).
int bench_threads();

/// The width bench_threads() actually resolves to on this host — what the
/// JSON records (core/executor.hpp: resolve_threads).
int bench_threads_resolved();

/// Writes `body` to the `--json` path when one was given; exits(1) on an
/// unwritable path. No-op when --json was not passed.
void write_json_result(const std::string& body);

inline bool full_scale() {
  const char* env = std::getenv("SAN_BENCH_FULL");
  return env != nullptr && env[0] == '1';
}

/// Three-point scale for benches with bespoke instance sizes:
/// --smoke -> `smoke`, SAN_BENCH_FULL=1 -> `full`, otherwise `dflt`.
template <typename T>
T scaled(T smoke, T dflt, T full) {
  if (bench_cli().smoke) return smoke;
  return full_scale() ? full : dflt;
}

/// Requests per trace: paper uses 10^6 for every workload.
inline std::size_t trace_length() {
  return scaled<std::size_t>(5000, 200000, 1000000);
}

/// Node count per workload; the default mode shrinks only the instances
/// whose O(n^3 k) optimal-tree computation would dominate the suite.
inline int node_count(WorkloadKind kind) {
  const int paper = paper_node_count(kind);
  if (bench_cli().smoke) return paper < 64 ? paper : 64;
  if (full_scale()) return paper;
  switch (kind) {
    case WorkloadKind::kTemporal025:
    case WorkloadKind::kTemporal05:
    case WorkloadKind::kTemporal075:
    case WorkloadKind::kTemporal09:
      return 255;  // paper: 1023 (DP row needs O(n^3 k))
    default:
      return paper;
  }
}

inline std::uint64_t bench_seed() { return 20240612; }

/// A row of published numbers from the paper, used for the side-by-side
/// "paper" lines in the printed tables. Empty strings mean "not reported"
/// (e.g. the Facebook optimal-tree row).
struct PaperKaryTable {
  const char* workload;
  long long splaynet_k2_total;            // absolute first cell of row 1
  std::vector<const char*> splay_ratio;   // k = 3..10 relative to 2-ary
  std::vector<const char*> full_ratio;    // k = 2..10 vs full k-ary tree
  std::vector<const char*> optimal_ratio; // k = 2..10 vs optimal tree ("" = -)
};

/// Runs the Tables 1-7 experiment for one workload: k-ary SplayNet for
/// k = 2..10 against the static full k-ary tree and (when feasible) the
/// optimal static routing-based k-ary tree, printing measured vs paper.
void run_kary_table(WorkloadKind kind, const PaperKaryTable& paper,
                    bool optimal_feasible);

}  // namespace san::bench
