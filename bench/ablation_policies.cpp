// Ablation of the rotation-engine design choices DESIGN.md calls out:
//   1. case preference (the paper's k-splay case 1/2 distinction plus the
//      disjointness constraint behind the access-lemma argument) — turning
//      it off must visibly degrade balance;
//   2. block placement (centered / leftmost / rightmost) — second-order;
//   3. block sizing (balanced vs paper-literal greedy) — identical under
//      the saturation invariant (every node holds k-1 keys, so the sizes
//      are forced), shown here as evidence, not assumption.
#include <iostream>

#include "bench_common.hpp"
#include "core/splaynet.hpp"
#include "sim/simulator.hpp"
#include "stats/table.hpp"
#include "workload/generators.hpp"

namespace {

using namespace san;

struct Variant {
  const char* name;
  RotationPolicy policy;
};

double run(const Variant& v, int k, const Trace& trace, double* avg_depth) {
  KArySplayNet net = KArySplayNet::balanced(k, trace.n, v.policy);
  Cost total = 0;
  for (const Request& r : trace.requests) {
    const ServeResult s = net.serve(r.src, r.dst);
    total += s.routing_cost + s.rotations;
  }
  double depth = 0;
  for (NodeId id = 1; id <= trace.n; ++id) depth += net.tree().depth(id);
  *avg_depth = depth / trace.n;
  return static_cast<double>(total) / static_cast<double>(trace.size());
}

}  // namespace

int main(int argc, char** argv) {
  san::bench::init_bench_cli(argc, argv);
  const int n = 512;
  const std::size_t m = san::bench::scaled<std::size_t>(5000, 100000, 400000);
  std::cout << "== Rotation-policy ablation (n=" << n << ", " << m
            << " temporal-0.5 requests) ==\n\n";
  san::Trace trace = san::gen_temporal(n, m, 0.5, 9);

  const Variant variants[] = {
      {"default (balanced, centered, case-pref)", {}},
      {"greedy-max sizing",
       {san::BlockSizing::kGreedyMax, san::BlockPlacement::kCentered, true}},
      {"leftmost placement",
       {san::BlockSizing::kBalanced, san::BlockPlacement::kLeftmost, true}},
      {"rightmost placement",
       {san::BlockSizing::kBalanced, san::BlockPlacement::kRightmost, true}},
      {"NO case preference",
       {san::BlockSizing::kBalanced, san::BlockPlacement::kCentered, false}},
  };

  san::Table out({"variant", "k=2 cost/req", "k=2 depth", "k=4 cost/req",
                  "k=4 depth", "k=8 cost/req", "k=8 depth"});
  for (const Variant& v : variants) {
    std::vector<std::string> row = {v.name};
    for (int k : {2, 4, 8}) {
      double depth = 0;
      const double cost = run(v, k, trace, &depth);
      row.push_back(san::fixed_cell(cost, 2));
      row.push_back(san::fixed_cell(depth, 1));
    }
    out.add_row(row);
  }
  out.print();
  std::cout << "\nexpected: greedy == balanced under saturation; placement "
               "second-order; disabling case preference inflates depth.\n";
  return 0;
}
