// Theorem 13: k-ary SplayNet serves sigma with cost O(sum_x a_x log(m/a_x)
// + b_x log(m/b_x)) — the endpoint-entropy bound inherited from SplayNet.
// This bench measures the hidden constant: total measured cost divided by
// the entropy expression, across workloads and arities. The theorem holds
// iff the ratio stays bounded by a small constant independent of the
// workload; skewed traces (small entropy) are the stress case.
#include <iostream>

#include "bench_common.hpp"
#include "core/splaynet.hpp"
#include "sim/simulator.hpp"
#include "stats/table.hpp"
#include "workload/trace_stats.hpp"

int main(int argc, char** argv) {
  san::bench::init_bench_cli(argc, argv);
  using namespace san;
  const std::size_t m = bench::scaled<std::size_t>(5000, 200000, 1000000);
  std::cout << "== Theorem 13: measured cost vs entropy upper bound ==\n";
  std::cout << "cells: total(routing+rotations) / (sum_x a_x lg(m/a_x) + "
               "b_x lg(m/b_x)); bounded => theorem\n\n";

  Table out({"workload", "n", "bound (bits)", "k=2", "k=3", "k=5", "k=8"});
  double max_ratio = 0.0;
  for (auto kind :
       {WorkloadKind::kUniform, WorkloadKind::kHpc, WorkloadKind::kProjector,
        WorkloadKind::kFacebook, WorkloadKind::kTemporal025,
        WorkloadKind::kTemporal09}) {
    const int n =
        kind == WorkloadKind::kFacebook ? 2000 : bench::node_count(kind);
    Trace trace = gen_workload(kind, n, m, bench::bench_seed());
    const TraceStats st = compute_stats(trace);
    std::vector<std::string> row = {workload_name(kind), std::to_string(n),
                                    fixed_cell(st.entropy_bound, 0)};
    for (int k : {2, 3, 5, 8}) {
      KArySplayNetwork net(KArySplayNet::balanced(k, n));
      const SimResult res = run_trace(net, trace);
      const double ratio =
          static_cast<double>(res.total_cost()) / st.entropy_bound;
      max_ratio = std::max(max_ratio, ratio);
      row.push_back(fixed_cell(ratio, 3));
    }
    out.add_row(row);
  }
  out.print();
  std::cout << "\nmax constant observed: " << fixed_cell(max_ratio, 3)
            << " (Theorem 13 asserts O(1); higher k should not raise it)\n";
  return 0;
}
