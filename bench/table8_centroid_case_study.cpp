// Table 8: the centroid heuristic case study for k = 2 — 3-SplayNet
// against classic SplayNet, the static full binary tree, and the static
// optimal binary search tree network, over all eight workloads.
//
// Cells follow the paper's layout: the absolute average request cost of
// 3-SplayNet, then each competitor's cost relative to 3-SplayNet
// (x > 1 means 3-SplayNet is better).
#include <chrono>
#include <iostream>
#include <optional>

#include "bench_common.hpp"
#include "core/binary_splaynet.hpp"
#include "core/splaynet.hpp"
#include "sim/simulator.hpp"
#include "static_trees/full_tree.hpp"
#include "static_trees/optimal_dp.hpp"
#include "stats/table.hpp"
#include "workload/demand_matrix.hpp"

namespace {

using namespace san;
using namespace san::bench;

struct PaperRow {
  const char* splaynet;
  const char* full;
  const char* optimal;
};

struct RowSpec {
  WorkloadKind kind;
  double paper_3splay_avg;
  PaperRow paper;
};

// The optimal-tree DP is O(n^3 k): feasible for every Table 8 workload
// except Facebook (n = 10^4), which is computed on a reduced instance and
// marked accordingly (see EXPERIMENTS.md).
int table8_nodes(WorkloadKind kind) {
  if (kind == WorkloadKind::kFacebook) return scaled(128, 1024, 2048);
  return node_count(kind);
}

void run_row(const RowSpec& spec, Table& out) {
  const int n = table8_nodes(spec.kind);
  const std::size_t m = trace_length();
  Trace trace = gen_workload(spec.kind, n, m, bench_seed());

  CentroidSplayNet centroid(2, n);
  SimResult c_res;
  for (const Request& r : trace.requests) {
    const ServeResult s = centroid.serve(r.src, r.dst);
    c_res.routing_cost += s.routing_cost;
    c_res.rotation_count += s.rotations;
    ++c_res.requests;
  }

  BinarySplayNetwork splaynet(n);
  const SimResult s_res = run_trace(splaynet, trace);

  const SimResult f_res = run_trace_static(full_kary_tree(2, n), trace);

  DemandMatrix demand = DemandMatrix::from_trace(trace);
  OptimalTreeResult opt = optimal_routing_based_tree(2, demand, 0);
  const SimResult o_res = run_trace_static(opt.tree, trace);

  const double c_avg = c_res.avg_request_cost();
  std::vector<std::string> row = {workload_name(spec.kind)};
  row.push_back(fixed_cell(c_avg));
  row.push_back("x" + fixed_cell(s_res.avg_request_cost() / c_avg));
  row.push_back("x" + fixed_cell(f_res.avg_request_cost() / c_avg));
  row.push_back("x" + fixed_cell(o_res.avg_request_cost() / c_avg));
  row.push_back("n=" + std::to_string(n));
  out.add_row(row);

  out.add_row({std::string(workload_name(spec.kind)) + " (paper)",
               fixed_cell(spec.paper_3splay_avg), spec.paper.splaynet,
               spec.paper.full, spec.paper.optimal,
               "n=" + std::to_string(spec.kind == WorkloadKind::kFacebook
                                         ? 10000
                                         : paper_node_count(spec.kind))});
}

}  // namespace

int main(int argc, char** argv) {
  san::bench::init_bench_cli(argc, argv);
  std::cout << "== Table 8: 3-SplayNet vs SplayNet / full binary / static "
               "optimal binary ==\n";
  std::cout << "requests=" << trace_length() << " (paper: 1000000)"
            << (full_scale() ? " [FULL SCALE]" : "") << "\n";
  std::cout << "ratios are competitor / 3-SplayNet; >1 means 3-SplayNet "
               "wins\n\n";

  const RowSpec rows[] = {
      {WorkloadKind::kUniform, 17.730, {"x1.059", "x0.789", "x0.759"}},
      {WorkloadKind::kHpc, 9.269, {"x0.956", "x1.206", "x1.034"}},
      {WorkloadKind::kProjector, 2.865, {"x1.132", "x3.040", "x0.800"}},
      {WorkloadKind::kFacebook, 8.210, {"x1.104", "x0.939", "x0.852"}},
      {WorkloadKind::kTemporal025, 13.332, {"x1.046", "x1.046", "x0.937"}},
      {WorkloadKind::kTemporal05, 9.414, {"x1.021", "x1.482", "x1.326"}},
      {WorkloadKind::kTemporal075, 5.520, {"x0.963", "x2.527", "x2.250"}},
      {WorkloadKind::kTemporal09, 3.186, {"x0.856", "x4.380", "x3.862"}},
  };

  san::Table out({"workload", "3-SplayNet", "SplayNet", "Full Binary Net",
                  "Static Optimal Net", "scale"});
  for (const RowSpec& spec : rows) {
    const auto t0 = std::chrono::steady_clock::now();
    run_row(spec, out);
    const double dt = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    std::cerr << workload_name(spec.kind) << " done in "
              << san::fixed_cell(dt, 1) << "s\n";
  }
  out.print();
  return 0;
}
