// Extension experiment (the paper evaluates the centroid heuristic only at
// k = 2, Section 5.2, and names general k as future work): (k+1)-SplayNet
// vs k-ary SplayNet vs the static full k-ary tree across k = 2..8 on three
// workload families. Total cost convention as in the paper (hop = 1,
// rotation = 1); ratios are k-ary-SplayNet-relative (<1: centroid wins).
#include <iostream>

#include "bench_common.hpp"
#include "core/splaynet.hpp"
#include "sim/simulator.hpp"
#include "static_trees/full_tree.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
  san::bench::init_bench_cli(argc, argv);
  using namespace san;
  const int n = 500;
  const std::size_t m = bench::scaled<std::size_t>(5000, 200000, 1000000);
  std::cout << "== Extension: (k+1)-SplayNet beyond k = 2 ==\n";
  std::cout << "n=" << n << ", " << m << " requests; cells are total cost "
            << "relative to k-ary SplayNet (<1: centroid heuristic wins)\n\n";

  Table out({"workload", "net", "k=2", "k=3", "k=4", "k=5", "k=6", "k=8"});
  for (auto kind : {WorkloadKind::kUniform, WorkloadKind::kProjector,
                    WorkloadKind::kTemporal05, WorkloadKind::kTemporal09}) {
    Trace trace = gen_workload(kind, n, m, bench::bench_seed());
    std::vector<std::string> crow = {workload_name(kind), "(k+1)-SplayNet"};
    std::vector<std::string> frow = {workload_name(kind), "full k-ary tree"};
    for (int k : {2, 3, 4, 5, 6, 8}) {
      KArySplayNetwork splay(KArySplayNet::balanced(k, n));
      const Cost base = run_trace(splay, trace).total_cost();
      CentroidSplayNetwork cent{CentroidSplayNet(k, n)};
      const Cost cc = run_trace(cent, trace).total_cost();
      const Cost fc = run_trace_static(full_kary_tree(k, n), trace)
                          .total_cost();
      crow.push_back(ratio_cell(static_cast<double>(cc),
                                static_cast<double>(base)));
      frow.push_back(ratio_cell(static_cast<double>(fc),
                                static_cast<double>(base)));
    }
    out.add_row(crow);
    out.add_row(frow);
  }
  out.print();
  std::cout << "\nThe paper's k = 2 finding (centroid wins at low locality, "
               "loses at high locality)\nextends to larger k when it does — "
               "this table is the evidence either way.\n";
  return 0;
}
