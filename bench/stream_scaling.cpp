// Streaming data-plane scaling: the memory and throughput story of the
// O(chunk) replay path at n = 10^6 nodes and 10^7-10^8 requests.
//
// Three sections:
//   * stream scale — the sharded streaming drain over an on-demand
//     workload generator at a fixed n = 10^6 while m grows 4x. The
//     resident-set delta of each run must stay flat: the pipeline's
//     working set is the network plus one chunk, never the trace.
//   * stream vs materialized — the same workload served both ways at the
//     same m. Costs must match exactly (the streamed loops are
//     bit-identical by construction); the materialized side additionally
//     holds the 8-byte-per-request trace, which is the memory the
//     streaming path deletes. The streaming run goes FIRST so the
//     process's peak-RSS watermark (VmHWM, monotonic) still shows what
//     the streamed section alone needed.
//   * sketch vs exact — the PR 4 drift benchmark (rotating hotset,
//     n = 2000, S = 8, hotpair policy) with the rebalancer's demand
//     window kept exactly vs by the sketch pair
//     (stats/sketch.hpp). The sketch run's grand total must stay within
//     2% of exact while its window state is bounded independently of n.
//
// --smoke shrinks everything to CI-sized runs; SAN_BENCH_FULL=1 raises
// the top stream length to the 10^8 class. The checked-in
// BENCH_stream_scaling.json records this machine's numbers.
#include <chrono>
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#if defined(__linux__)
#include <unistd.h>
#endif

#include "bench_common.hpp"
#include "core/executor.hpp"
#include "sim/simulator.hpp"
#include "stats/table.hpp"
#include "workload/rebalance.hpp"
#include "workload/streaming.hpp"

namespace {

using namespace san;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Current resident set in bytes (/proc/self/statm), 0 where unsupported.
/// Current — not ru_maxrss — because the whole point is watching the
/// footprint stay flat as m grows, and a monotonic high-water mark cannot
/// show that.
std::size_t current_rss_bytes() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  long total = 0, resident = 0;
  const int got = std::fscanf(f, "%ld %ld", &total, &resident);
  std::fclose(f);
  if (got != 2) return 0;
  return static_cast<std::size_t>(resident) *
         static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
#else
  return 0;
#endif
}

/// Peak resident set in bytes (VmHWM), 0 where unsupported.
std::size_t peak_rss_bytes() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::size_t kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "VmHWM: %zu kB", &kb) == 1) break;
  }
  std::fclose(f);
  return kb * 1024;
#else
  return 0;
#endif
}

double mb(std::size_t bytes) { return static_cast<double>(bytes) / 1e6; }

struct StreamRow {
  std::size_t m = 0;
  double seconds = 0.0;
  double req_per_sec = 0.0;
  Cost total_cost = 0;
  double rss_before_mb = 0.0;
  double rss_during_mb = 0.0;  ///< network + chunk buffers, trace-free
  double rss_delta_mb = 0.0;
};

StreamRow run_stream_once(int n, int shards, std::size_t m) {
  StreamRow row;
  row.m = m;
  row.rss_before_mb = mb(current_rss_bytes());
  ShardedNetwork net = ShardedNetwork::balanced(3, n, shards,
                                                ShardPartition::kContiguous);
  StreamingWorkload stream(WorkloadKind::kUniform, n, m, bench::bench_seed());
  const auto t0 = std::chrono::steady_clock::now();
  const SimResult res = run_trace_sharded_stream(
      net, stream, {.threads = bench::bench_threads()});
  row.seconds = seconds_since(t0);
  row.req_per_sec = static_cast<double>(m) / row.seconds;
  row.total_cost = res.total_cost();
  // Sampled while the network is still alive: this is the whole working
  // set of the run.
  row.rss_during_mb = mb(current_rss_bytes());
  row.rss_delta_mb = row.rss_during_mb - row.rss_before_mb;
  return row;
}

struct HeadToHead {
  int n = 0;
  std::size_t m = 0;
  StreamRow stream;       // runs first: VmHWM still reflects it alone
  StreamRow materialized; // pays the m-record trace on top
  bool costs_match = false;
  double stream_peak_mb = 0.0;  ///< VmHWM right after the streamed run
};

HeadToHead run_head_to_head(int n, std::size_t m) {
  HeadToHead h;
  h.n = n;
  h.m = m;
  h.stream = run_stream_once(n, 8, m);
  h.stream_peak_mb = mb(peak_rss_bytes());

  StreamRow& mrow = h.materialized;
  mrow.m = m;
  mrow.rss_before_mb = mb(current_rss_bytes());
  ShardedNetwork net =
      ShardedNetwork::balanced(3, n, 8, ShardPartition::kContiguous);
  const Trace trace =
      gen_workload(WorkloadKind::kUniform, n, m, bench::bench_seed());
  const auto t0 = std::chrono::steady_clock::now();
  const SimResult res =
      run_trace_sharded(net, trace, {.threads = bench::bench_threads()});
  mrow.seconds = seconds_since(t0);
  mrow.req_per_sec = static_cast<double>(m) / mrow.seconds;
  mrow.total_cost = res.total_cost();
  mrow.rss_during_mb = mb(current_rss_bytes());
  mrow.rss_delta_mb = mrow.rss_during_mb - mrow.rss_before_mb;
  h.costs_match = res.total_cost() == h.stream.total_cost;
  return h;
}

struct SketchReport {
  int n = 0;
  int shards = 0;
  std::size_t m = 0;
  Cost exact_grand = 0;
  Cost sketch_grand = 0;
  double ratio = 0.0;
  double exact_seconds = 0.0;
  double sketch_seconds = 0.0;
  Cost exact_migrations = 0;
  Cost sketch_migrations = 0;
};

SketchReport run_sketch_vs_exact() {
  SketchReport rep;
  rep.n = bench::scaled(256, 2000, 2000);
  rep.shards = 8;
  rep.m = bench::trace_length();
  const Trace trace = gen_workload(WorkloadKind::kRotatingHot, rep.n, rep.m,
                                   bench::bench_seed());
  auto run_with = [&](DemandTracker tracker, double& seconds, Cost& migs) {
    RebalanceConfig cfg;
    cfg.policy = RebalancePolicy::kHotPair;
    cfg.tracker = tracker;
    ShardedNetwork net = ShardedNetwork::balanced(
        3, rep.n, rep.shards, ShardPartition::kContiguous);
    const auto t0 = std::chrono::steady_clock::now();
    const SimResult res = run_trace_sharded(
        net, trace, {.threads = bench::bench_threads(), .rebalance = &cfg});
    seconds = seconds_since(t0);
    migs = res.migrations;
    return res.grand_total_cost();
  };
  rep.exact_grand =
      run_with(DemandTracker::kExact, rep.exact_seconds, rep.exact_migrations);
  rep.sketch_grand = run_with(DemandTracker::kSketch, rep.sketch_seconds,
                              rep.sketch_migrations);
  rep.ratio = static_cast<double>(rep.sketch_grand) /
              static_cast<double>(rep.exact_grand);
  return rep;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace san;
  bench::init_bench_cli(argc, argv);
  std::cout << "== stream scaling: O(chunk) replay at n = 10^6 ==\n";
  std::cout << "threads: " << bench::bench_threads_resolved() << " of "
            << resolve_threads(0) << " hardware\n\n";

  const int n_big = bench::scaled(10000, 1'000'000, 1'000'000);
  const std::vector<std::size_t> stream_ms =
      bench::bench_cli().smoke
          ? std::vector<std::size_t>{50'000, 100'000, 200'000}
          : (bench::full_scale()
                 ? std::vector<std::size_t>{10'000'000, 30'000'000,
                                            100'000'000}
                 : std::vector<std::size_t>{2'500'000, 5'000'000,
                                            10'000'000});

  // Streaming first: every later section only raises the RSS watermark.
  std::vector<StreamRow> scale;
  for (std::size_t m : stream_ms) scale.push_back(run_stream_once(n_big, 8, m));

  Table t1({"m", "seconds", "req/s", "total cost", "rss during (MB)",
            "rss delta (MB)"});
  for (const StreamRow& r : scale)
    t1.add_row({std::to_string(r.m), fixed_cell(r.seconds, 3),
                std::to_string(static_cast<long long>(r.req_per_sec)),
                std::to_string(r.total_cost), fixed_cell(r.rss_during_mb, 1),
                fixed_cell(r.rss_delta_mb, 1)});
  std::cout << "-- streaming drain, n=" << n_big << ", S=8 (rss must stay "
            << "flat as m grows 4x) --\n";
  t1.print();
  std::cout << "\n";

  const std::size_t h2h_m = bench::scaled<std::size_t>(
      100'000, 10'000'000, 100'000'000);
  const HeadToHead h = run_head_to_head(n_big, h2h_m);
  Table t2({"path", "seconds", "req/s", "total cost", "rss delta (MB)"});
  t2.add_row({"streamed", fixed_cell(h.stream.seconds, 3),
              std::to_string(static_cast<long long>(h.stream.req_per_sec)),
              std::to_string(h.stream.total_cost),
              fixed_cell(h.stream.rss_delta_mb, 1)});
  t2.add_row(
      {"materialized", fixed_cell(h.materialized.seconds, 3),
       std::to_string(static_cast<long long>(h.materialized.req_per_sec)),
       std::to_string(h.materialized.total_cost),
       fixed_cell(h.materialized.rss_delta_mb, 1)});
  std::cout << "-- streamed vs materialized, n=" << h.n << ", m=" << h.m
            << " (costs " << (h.costs_match ? "match" : "DIVERGE")
            << "; streamed-section peak rss " << fixed_cell(h.stream_peak_mb, 1)
            << " MB) --\n";
  t2.print();
  std::cout << "\n";

  const SketchReport sk = run_sketch_vs_exact();
  Table t3({"tracker", "grand total", "migrations", "seconds"});
  t3.add_row({"exact", std::to_string(sk.exact_grand),
              std::to_string(sk.exact_migrations),
              fixed_cell(sk.exact_seconds, 3)});
  t3.add_row({"sketch", std::to_string(sk.sketch_grand),
              std::to_string(sk.sketch_migrations),
              fixed_cell(sk.sketch_seconds, 3)});
  std::cout << "-- sketch vs exact demand window, rotating hotset n=" << sk.n
            << ", S=" << sk.shards << ", m=" << sk.m
            << " (grand-cost ratio " << fixed_cell(sk.ratio, 4)
            << ", bound 1.02) --\n";
  t3.print();

  std::ostringstream js;
  js << "{\n  \"bench\": \"stream_scaling\",\n  \"threads\": "
     << bench::bench_threads_resolved() << ",\n  \"stream_scale\": {\n"
     << "    \"n\": " << n_big << ",\n    \"shards\": 8,\n    \"rows\": [\n";
  for (std::size_t i = 0; i < scale.size(); ++i) {
    const StreamRow& r = scale[i];
    js << "      {\"m\": " << r.m << ", \"seconds\": "
       << fixed_cell(r.seconds, 4) << ", \"req_per_sec\": "
       << static_cast<long long>(r.req_per_sec) << ", \"total_cost\": "
       << r.total_cost << ", \"rss_during_mb\": "
       << fixed_cell(r.rss_during_mb, 1) << ", \"rss_delta_mb\": "
       << fixed_cell(r.rss_delta_mb, 1) << "}"
       << (i + 1 < scale.size() ? ",\n" : "\n");
  }
  js << "    ]\n  },\n  \"stream_vs_materialized\": {\n    \"n\": " << h.n
     << ",\n    \"m\": " << h.m << ",\n    \"costs_match\": "
     << (h.costs_match ? "true" : "false")
     << ",\n    \"stream_peak_rss_mb\": " << fixed_cell(h.stream_peak_mb, 1)
     << ",\n    \"stream\": {\"seconds\": " << fixed_cell(h.stream.seconds, 4)
     << ", \"req_per_sec\": "
     << static_cast<long long>(h.stream.req_per_sec)
     << ", \"rss_delta_mb\": " << fixed_cell(h.stream.rss_delta_mb, 1)
     << "},\n    \"materialized\": {\"seconds\": "
     << fixed_cell(h.materialized.seconds, 4) << ", \"req_per_sec\": "
     << static_cast<long long>(h.materialized.req_per_sec)
     << ", \"rss_delta_mb\": " << fixed_cell(h.materialized.rss_delta_mb, 1)
     << "}\n  },\n  \"sketch_vs_exact\": {\n    \"n\": " << sk.n
     << ",\n    \"shards\": " << sk.shards << ",\n    \"m\": " << sk.m
     << ",\n    \"exact_grand_cost\": " << sk.exact_grand
     << ",\n    \"sketch_grand_cost\": " << sk.sketch_grand
     << ",\n    \"ratio\": " << fixed_cell(sk.ratio, 4)
     << ",\n    \"exact_migrations\": " << sk.exact_migrations
     << ",\n    \"sketch_migrations\": " << sk.sketch_migrations
     << "\n  }\n}\n";
  bench::write_json_result(js.str());
  return 0;
}
