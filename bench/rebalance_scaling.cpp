// Static vs adaptive sharding across drift rates: does online shard
// rebalancing pay for itself?
//
// Workloads:
//   * elephants-p4 / p8 / p32 — phase-change elephant pairs with 4 / 8 /
//     32 phases over the trace: the slower the drift, the longer each
//     migration batch keeps earning. This is the regime the rebalancer
//     targets: a sparse hot pair set that *moves*.
//   * rotating-hot — the hot node set resamples every m/16 requests, the
//     same order as the epoch cadence, so plans tend to be stale on
//     arrival: the documented losing regime.
//   * zipf — stationary Facebook-like skew: the drift trigger must park
//     the rebalancer (first window only seeds the detector) and tie the
//     static engine to within noise.
// For each workload: a static row (PR 3 pipeline) and one row per
// rebalance policy (hotpair, watermark; drift trigger, measured migration
// cost model). Costs include the migration bill (grand total =
// serve + extraction splays + rebuild relinks); wall time includes the
// epoch barriers, planning, and migration application. The checked-in
// BENCH_rebalance_scaling.json records this machine's numbers.
#include <chrono>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/executor.hpp"
#include "sim/simulator.hpp"
#include "stats/table.hpp"
#include "workload/rebalance.hpp"

namespace {

using namespace san;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct Row {
  std::string config;
  double seconds = 0;
  double req_per_sec = 0;
  double speedup = 1.0;     // vs the static row of the workload
  Cost serve_cost = 0;      // routing + rotations
  Cost grand_cost = 0;      // + migration cost
  double cost_ratio = 1.0;  // grand vs the static row
  Cost migrations = 0;
  Cost epochs = 0;
  double intra_fraction = 0;
};

struct WorkloadReport {
  std::string workload;
  int n = 0;
  std::size_t requests = 0;
  std::vector<Row> rows;  // rows[0] is the static pipeline
};

Row run_row(const std::string& label, const Trace& trace, int k, int S,
            const RebalanceConfig* cfg) {
  ShardedNetwork net =
      ShardedNetwork::balanced(k, trace.n, S, ShardPartition::kHash);
  ShardedRunOptions opt;
  opt.threads = bench::bench_threads();
  opt.rebalance = cfg;
  const auto t0 = std::chrono::steady_clock::now();
  const SimResult res = run_trace_sharded(net, trace, opt);
  Row row;
  row.config = label;
  row.seconds = seconds_since(t0);
  row.req_per_sec = static_cast<double>(trace.size()) / row.seconds;
  row.serve_cost = res.total_cost();
  row.grand_cost = res.grand_total_cost();
  row.migrations = res.migrations;
  row.epochs = res.rebalance_epochs;
  row.intra_fraction = res.post_intra_fraction;
  return row;
}

WorkloadReport run_one(const std::string& label, const Trace& trace, int k,
                       int S, const RebalanceConfig& base) {
  WorkloadReport rep;
  rep.workload = label;
  rep.n = trace.n;
  rep.requests = trace.size();

  rep.rows.push_back(run_row("static", trace, k, S, nullptr));
  const Row st = rep.rows.front();
  for (RebalancePolicy policy :
       {RebalancePolicy::kHotPair, RebalancePolicy::kWatermark}) {
    RebalanceConfig cfg = base;
    cfg.policy = policy;
    Row row = run_row(rebalance_policy_name(policy), trace, k, S, &cfg);
    row.speedup = st.seconds / row.seconds;
    row.cost_ratio = static_cast<double>(row.grand_cost) /
                     static_cast<double>(st.grand_cost);
    rep.rows.push_back(row);
  }
  return rep;
}

void print_report(const WorkloadReport& rep) {
  std::cout << "-- " << rep.workload << " (n=" << rep.n
            << ", requests=" << rep.requests << ") --\n";
  Table out({"config", "seconds", "req/s", "speedup", "serve cost",
             "grand cost", "cost ratio", "migrations", "epochs", "intra"});
  for (const Row& r : rep.rows)
    out.add_row({r.config, fixed_cell(r.seconds, 3),
                 std::to_string(static_cast<long long>(r.req_per_sec)),
                 fixed_cell(r.speedup), std::to_string(r.serve_cost),
                 std::to_string(r.grand_cost), fixed_cell(r.cost_ratio),
                 std::to_string(r.migrations), std::to_string(r.epochs),
                 fixed_cell(r.intra_fraction)});
  out.print();
  std::cout << "\n";
}

void append_json(std::ostringstream& js, const WorkloadReport& rep,
                 bool last) {
  js << "    {\n      \"workload\": \"" << rep.workload
     << "\",\n      \"n\": " << rep.n
     << ",\n      \"requests\": " << rep.requests << ",\n      \"rows\": [\n";
  for (std::size_t i = 0; i < rep.rows.size(); ++i) {
    const Row& r = rep.rows[i];
    js << "        {\"config\": \"" << r.config << "\", \"seconds\": "
       << fixed_cell(r.seconds, 4) << ", \"req_per_sec\": "
       << static_cast<long long>(r.req_per_sec) << ", \"speedup\": "
       << fixed_cell(r.speedup) << ", \"serve_cost\": " << r.serve_cost
       << ", \"grand_cost\": " << r.grand_cost << ", \"cost_ratio\": "
       << fixed_cell(r.cost_ratio) << ", \"migrations\": " << r.migrations
       << ", \"epochs\": " << r.epochs << ", \"intra_fraction\": "
       << fixed_cell(r.intra_fraction) << "}"
       << (i + 1 < rep.rows.size() ? ",\n" : "\n");
  }
  js << "      ]\n    }" << (last ? "\n" : ",\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace san;
  bench::init_bench_cli(argc, argv);
  std::cout << "== rebalance scaling: static vs adaptive sharding ==\n";
  std::cout << "threads: " << bench::bench_threads_resolved() << " of "
            << resolve_threads(0) << " hardware\n\n";

  const int k = 3, S = 8;
  const int n = bench::scaled(64, 2000, 10000);
  const std::size_t m = bench::trace_length();
  const std::uint64_t seed = bench::bench_seed();

  RebalanceConfig base;
  base.epoch_requests = std::max<std::size_t>(500, m / 40);
  base.max_migrations = 64;

  std::vector<WorkloadReport> reports;
  for (int phases : {4, 8, 32})
    reports.push_back(run_one("elephants-p" + std::to_string(phases),
                              gen_phase_elephants(n, m, phases, seed), k, S,
                              base));
  reports.push_back(
      run_one("rotating-hot",
              gen_rotating_hotset(n, m, std::max(2, n / 16),
                                  std::max<std::size_t>(1, m / 16), seed),
              k, S, base));
  reports.push_back(
      run_one("zipf", gen_facebook(n, m, seed), k, S, base));
  for (const WorkloadReport& rep : reports) print_report(rep);

  std::ostringstream js;
  js << "{\n  \"bench\": \"rebalance_scaling\",\n  \"threads\": "
     << bench::bench_threads_resolved() << ",\n  \"shards\": " << S
     << ",\n  \"k\": " << k << ",\n  \"epoch_requests\": "
     << base.epoch_requests << ",\n  \"workloads\": [\n";
  for (std::size_t i = 0; i < reports.size(); ++i)
    append_json(js, reports[i], i + 1 == reports.size());
  js << "  ]\n}\n";
  bench::write_json_result(js.str());
  return 0;
}
