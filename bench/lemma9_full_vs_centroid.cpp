// Lemma 9 / Lemma 36: the total distance of both the full k-ary tree and
// the centroid (k+1)-degree tree is n^2 log_k n + O(n^2). This bench prints
// the series cost / n^2 against log_k n: both curves track log_k n with a
// bounded additive gap, and the centroid tree is never worse.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "static_trees/centroid_tree.hpp"
#include "static_trees/full_tree.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
  san::bench::init_bench_cli(argc, argv);
  using namespace san;
  std::cout << "== Lemma 9: total distance of full vs centroid trees ==\n";
  std::cout << "both should be n^2 log_k n + O(n^2): cost/n^2 - log_k n "
               "stays bounded\n\n";

  const int n_max = bench::scaled(2000, 20000, 100000);
  Table out({"k", "n", "log_k n", "full/n^2", "centroid/n^2",
             "full gap", "centroid gap"});
  bool centroid_never_worse = true;
  double max_gap = 0.0;
  for (int k : {2, 3, 5, 10}) {
    for (int n = 100; n <= n_max; n *= 4) {
      const double logk = std::log(n) / std::log(k);
      const double n2 = static_cast<double>(n) * n;
      const Cost fc = full_kary_tree(k, n).uniform_total_distance();
      const Cost cc = centroid_kary_tree(k, n).uniform_total_distance();
      if (cc > fc) centroid_never_worse = false;
      const double fgap = static_cast<double>(fc) / n2 - logk;
      const double cgap = static_cast<double>(cc) / n2 - logk;
      max_gap = std::max({max_gap, std::abs(fgap), std::abs(cgap)});
      out.add_row({std::to_string(k), std::to_string(n),
                   fixed_cell(logk, 2), fixed_cell(fc / n2, 3),
                   fixed_cell(cc / n2, 3), fixed_cell(fgap, 3),
                   fixed_cell(cgap, 3)});
    }
  }
  out.print();
  std::cout << "\ncentroid never worse than full: "
            << (centroid_never_worse ? "yes (matches Remark 10 intuition)"
                                     : "NO")
            << "\nmax |cost/n^2 - log_k n| = " << fixed_cell(max_gap, 3)
            << " (Lemma 9 predicts an O(1) bound)\n";
  return centroid_never_worse ? 0 : 1;
}
