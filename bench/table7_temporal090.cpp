// Table 7: k-ary SplayNet on the synthetic workload with temporal
// complexity parameter 0.9 (the most bursty: self-adjustment dominates all
// static trees, including the demand-aware optimum).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  san::bench::init_bench_cli(argc, argv);
  san::bench::PaperKaryTable paper{
      "Temporal 0.9",
      271838,
      {"0.88x", "0.83x", "0.80x", "0.79x", "0.78x", "0.78x", "0.76x",
       "0.74x"},
      {"0.20x", "0.24x", "0.27x", "0.29x", "0.31x", "0.31x", "0.33x",
       "0.34x", "0.36x"},
      {"0.36x", "0.46x", "0.53x", "0.58x", "0.62x", "0.64x", "0.68x",
       "0.72x", "0.73x"},
  };
  san::bench::run_kary_table(san::WorkloadKind::kTemporal09, paper,
                             /*optimal_feasible=*/true);
  return 0;
}
