// Table 2: k-ary SplayNet on the ProjecToR workload (sparse skewed
// substitute) against static full and optimal k-ary trees.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  san::bench::init_bench_cli(argc, argv);
  san::bench::PaperKaryTable paper{
      "ProjecToR",
      3151626,
      {"0.93x", "0.91x", "0.87x", "0.84x", "0.86x", "0.86x", "0.84x",
       "0.83x"},
      {"0.40x", "0.49x", "0.46x", "0.52x", "0.70x", "0.50x", "0.58x",
       "0.57x", "0.92x"},
      {"1.45x", "1.81x", "2.09x", "2.10x", "2.08x", "2.20x", "2.22x",
       "2.22x", "2.25x"},
  };
  san::bench::run_kary_table(san::WorkloadKind::kProjector, paper,
                             /*optimal_feasible=*/true);
  return 0;
}
