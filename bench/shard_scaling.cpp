// Sharded serving engine scaling: single-trace throughput and total cost
// as the shard count grows, against the unsharded k-ary SplayNet baseline.
//
// Three workloads bracket the trade-off:
//   * skewed (ProjecToR-like sparse elephant pairs, Zipf(1.2) weights,
//     scaled to n = 10^4) — the production-shaped case sharding targets:
//     hot pairs stop fighting over one root, hash partitioning spreads
//     them, every shard serves a small working-set tree.
//   * zipf (Facebook-like independent Zipf endpoints, paper n = 10^4) —
//     wide-support skew with a long uniform-ish tail.
//   * temporal075 (0.75 repeat probability) — high locality; repeats are
//     as cheap unsharded as sharded, so this bounds the cost overhead the
//     static top-level detour adds.
// For each S in {1, 2, 4, 8, 16}: partition + concurrent drain wall time
// (run_trace_sharded on the Executor, --threads wide), total cost, and
// the cross-shard fraction; the baseline row is the devirtualized
// run_trace over one KArySplayNetwork. The checked-in
// BENCH_shard_scaling.json records this machine's numbers.
#include <chrono>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/executor.hpp"
#include "sim/simulator.hpp"
#include "stats/table.hpp"
#include "workload/partition.hpp"
#include "workload/trace_stats.hpp"

namespace {

using namespace san;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct Row {
  std::string config;
  int shards = 0;
  double seconds = 0;
  double req_per_sec = 0;
  double speedup = 1.0;      // vs the unsharded baseline of the workload
  Cost total_cost = 0;
  double cost_ratio = 1.0;   // vs the unsharded baseline of the workload
  double cross_fraction = 0;
  double intra_fraction = 1.0;
  double load_imbalance = 1.0;
};

struct WorkloadReport {
  std::string workload;
  std::string partition;
  int k = 0;
  int n = 0;
  std::size_t requests = 0;
  std::vector<Row> rows;  // rows[0] is the unsharded baseline
};

WorkloadReport run_one(const char* label, WorkloadKind kind, int n, int k,
                       ShardPartition partition) {
  const std::size_t m = bench::trace_length();
  WorkloadReport rep;
  rep.workload = label;
  rep.k = k;
  rep.partition = shard_partition_name(partition);
  rep.n = n;
  rep.requests = m;
  const Trace trace = gen_workload(kind, n, m, bench::bench_seed());

  {
    KArySplayNetwork baseline(KArySplayNet::balanced(k, n));
    const auto t0 = std::chrono::steady_clock::now();
    const SimResult res = run_trace(baseline, trace);
    Row row;
    row.config = "unsharded";
    row.shards = 1;
    row.seconds = seconds_since(t0);
    row.req_per_sec = static_cast<double>(m) / row.seconds;
    row.total_cost = res.total_cost();
    rep.rows.push_back(row);
  }
  const Row base = rep.rows.front();  // copy: rows reallocates below

  for (int S : {1, 2, 4, 8, 16}) {
    if (S > n) continue;
    ShardedNetwork net = ShardedNetwork::balanced(k, n, S, partition);
    const ShardLocalityStats st = compute_shard_stats(trace, net.map());
    // Timed section covers the whole pipeline: queue partitioning plus the
    // concurrent per-shard drains.
    const auto t0 = std::chrono::steady_clock::now();
    const SimResult res = run_trace_sharded(
        net, trace, {.threads = bench::bench_threads(), .sequential = false});
    Row row;
    row.config = "S=" + std::to_string(S);
    row.shards = S;
    row.seconds = seconds_since(t0);
    row.req_per_sec = static_cast<double>(m) / row.seconds;
    row.speedup = base.seconds / row.seconds;
    row.total_cost = res.total_cost();
    row.cost_ratio = static_cast<double>(row.total_cost) /
                     static_cast<double>(base.total_cost);
    row.cross_fraction = m == 0 ? 0.0
                                : static_cast<double>(res.cross_shard) /
                                      static_cast<double>(m);
    row.intra_fraction = st.intra_fraction();
    row.load_imbalance = st.load_imbalance();
    rep.rows.push_back(row);
  }
  return rep;
}

void print_report(const WorkloadReport& rep) {
  std::cout << "-- " << rep.workload << " (n=" << rep.n << ", k=" << rep.k
            << ", requests=" << rep.requests << ", partition="
            << rep.partition << ") --\n";
  Table out({"config", "seconds", "req/s", "speedup", "total cost",
             "cost ratio", "cross frac", "imbalance"});
  for (const Row& r : rep.rows)
    out.add_row({r.config, fixed_cell(r.seconds, 3),
                 std::to_string(static_cast<long long>(r.req_per_sec)),
                 fixed_cell(r.speedup), std::to_string(r.total_cost),
                 fixed_cell(r.cost_ratio), fixed_cell(r.cross_fraction),
                 fixed_cell(r.load_imbalance)});
  out.print();
  std::cout << "\n";
}

void append_json(std::ostringstream& js, const WorkloadReport& rep,
                 bool last) {
  js << "    {\n      \"workload\": \"" << rep.workload
     << "\",\n      \"partition\": \"" << rep.partition
     << "\",\n      \"k\": " << rep.k << ",\n      \"n\": " << rep.n << ",\n      \"requests\": "
     << rep.requests << ",\n      \"rows\": [\n";
  for (std::size_t i = 0; i < rep.rows.size(); ++i) {
    const Row& r = rep.rows[i];
    js << "        {\"config\": \"" << r.config << "\", \"shards\": "
       << r.shards << ", \"seconds\": " << fixed_cell(r.seconds, 4)
       << ", \"req_per_sec\": " << static_cast<long long>(r.req_per_sec)
       << ", \"speedup\": " << fixed_cell(r.speedup)
       << ", \"total_cost\": " << r.total_cost
       << ", \"cost_ratio\": " << fixed_cell(r.cost_ratio)
       << ", \"cross_fraction\": " << fixed_cell(r.cross_fraction)
       << ", \"load_imbalance\": " << fixed_cell(r.load_imbalance) << "}"
       << (i + 1 < rep.rows.size() ? ",\n" : "\n");
  }
  js << "      ]\n    }" << (last ? "\n" : ",\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace san;
  bench::init_bench_cli(argc, argv);
  std::cout << "== shard scaling: partitioned serving vs one SplayNet ==\n";
  std::cout << "threads: " << bench::bench_threads_resolved() << " of "
            << resolve_threads(0) << " hardware\n\n";

  // The sharding study wants production-scale node counts, not the paper's
  // per-table defaults (ProjecToR's n = 100 would leave S = 16 shards of 6
  // nodes); bench::scaled keeps --smoke CI-sized.
  const int n_big = bench::scaled(64, 10000, 10000);
  std::vector<WorkloadReport> reports;
  reports.push_back(run_one("skewed", WorkloadKind::kProjector, n_big,
                            /*k=*/2, ShardPartition::kHash));
  reports.push_back(run_one("zipf", WorkloadKind::kFacebook,
                            bench::node_count(WorkloadKind::kFacebook),
                            /*k=*/3, ShardPartition::kHash));
  reports.push_back(run_one("temporal075", WorkloadKind::kTemporal075,
                            bench::node_count(WorkloadKind::kTemporal075),
                            /*k=*/3, ShardPartition::kContiguous));
  for (const WorkloadReport& rep : reports) print_report(rep);

  std::ostringstream js;
  js << "{\n  \"bench\": \"shard_scaling\",\n  \"threads\": "
     << bench::bench_threads_resolved() << ",\n  \"workloads\": [\n";
  for (std::size_t i = 0; i < reports.size(); ++i)
    append_json(js, reports[i], i + 1 == reports.size());
  js << "  ]\n}\n";
  bench::write_json_result(js.str());
  return 0;
}
