// Table 3: k-ary SplayNet on the Facebook workload (heavy-tailed low-
// locality substitute, n = 10^4). As in the paper, the O(n^3 k) optimal
// tree is computationally infeasible at this size, so that row prints "-".
#include "bench_common.hpp"

int main(int argc, char** argv) {
  san::bench::init_bench_cli(argc, argv);
  san::bench::PaperKaryTable paper{
      "Facebook",
      12320225,
      {"0.85x", "0.77x", "0.74x", "0.72x", "0.70x", "0.70x", "0.68x",
       "0.67x"},
      {"0.69x", "0.87x", "0.94x", "1.00x", "1.07x", "1.11x", "1.15x",
       "1.19x", "1.28x"},
      {"", "", "", "", "", "", "", "", ""},
  };
  san::bench::run_kary_table(san::WorkloadKind::kFacebook, paper,
                             /*optimal_feasible=*/false);
  return 0;
}
