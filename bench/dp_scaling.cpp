// Theorem 2 / Theorem 4 complexity check: wall-clock scaling of the
// O(n^3 k) general DP (serial vs threaded diagonals) and the O(n^2 k)
// uniform DP. Doubling n should cost ~8x for the general program and ~4x
// for the uniform one; k enters linearly in both.
#include <chrono>
#include <iostream>
#include <sstream>
#include <vector>

#include "bench_common.hpp"
#include "core/parallel.hpp"
#include "static_trees/optimal_dp.hpp"
#include "static_trees/uniform_dp.hpp"
#include "stats/table.hpp"
#include "workload/demand_matrix.hpp"
#include "workload/generators.hpp"

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace san;
  bench::init_bench_cli(argc, argv);
  std::cout << "== DP scaling (Theorems 2 and 4) ==\n";
  std::cout << "threads: " << bench::bench_threads_resolved() << " of "
            << resolve_threads(0) << " hardware\n\n";

  std::ostringstream json_rows;
  const bool smoke = bench::bench_cli().smoke;
  const int top = bench::scaled(64, 256, 512);
  Table general({"n", "k", "serial s", "threaded s", "cost"});
  for (int n = top / 4; n <= top; n *= 2) {
    Trace t = gen_temporal(n, bench::scaled<std::size_t>(5000, 100000, 100000), 0.5, 3);
    DemandMatrix d = DemandMatrix::from_trace(t);
    for (int k : {2, 5, 10}) {
      auto t0 = std::chrono::steady_clock::now();
      const Cost serial_cost = optimal_routing_based_tree(k, d, 1).total_distance;
      const double serial = seconds_since(t0);
      t0 = std::chrono::steady_clock::now();
      const Cost thr_cost =
          optimal_routing_based_tree(k, d, bench::bench_threads())
              .total_distance;
      const double threaded = seconds_since(t0);
      if (serial_cost != thr_cost) {
        std::cerr << "BUG: serial and threaded DP disagree\n";
        return 1;
      }
      general.add_row({std::to_string(n), std::to_string(k),
                       fixed_cell(serial, 3), fixed_cell(threaded, 3),
                       std::to_string(serial_cost)});
      json_rows << (json_rows.tellp() > 0 ? ",\n" : "") << "    {\"n\": " << n
                << ", \"k\": " << k << ", \"serial\": " << fixed_cell(serial, 3)
                << ", \"threaded\": " << fixed_cell(threaded, 3)
                << ", \"cost\": " << serial_cost << "}";
    }
  }
  std::cout << "General demand-aware DP, O(n^3 k):\n";
  general.print();

  Table uniform({"n", "k", "time s", "cost"});
  const std::vector<int> uniform_sizes =
      smoke ? std::vector<int>{200, 500, 1000}
            : std::vector<int>{1000, 4000, bench::full_scale() ? 16000 : 8000};
  for (int n : uniform_sizes) {
    for (int k : {2, 10}) {
      const auto t0 = std::chrono::steady_clock::now();
      const Cost c = optimal_uniform_cost(k, n);
      uniform.add_row({std::to_string(n), std::to_string(k),
                       fixed_cell(seconds_since(t0), 3), std::to_string(c)});
    }
  }
  std::cout << "\nUniform-workload DP, O(n^2 k):\n";
  uniform.print();

  bench::write_json_result(
      "{\n  \"bench\": \"dp_scaling\",\n  \"threads\": " +
      std::to_string(bench::bench_threads_resolved()) +
      ",\n  \"general_dp\": [\n" + json_rows.str() + "\n  ]\n}\n");
  return 0;
}
