// Theorem 2 / Theorem 4 complexity check: wall-clock scaling of the
// general demand-aware DP (serial vs threaded diagonals, flat engine) and
// the O(n^2 k) uniform DP. The serial-vs-threaded grid replays the PR 1
// baseline cells (BENCH_dp_scaling.json) for the before/after comparison;
// the large-instance section exercises the scales the flat engine opened
// up (n = 512..2048 with reconstruction, n = 4096 cost-only).
//
// The lazy DemandMatrix prefix build is hoisted out of every timed region
// (D.prewarm()); in the PR 1 baseline the first serial cell absorbed that
// one-time O(n^2) build, which made serial-vs-threaded cells at small n
// incomparable.
#include <chrono>
#include <iostream>
#include <sstream>
#include <vector>

#include "bench_common.hpp"
#include "core/parallel.hpp"
#include "static_trees/optimal_dp.hpp"
#include "static_trees/uniform_dp.hpp"
#include "stats/table.hpp"
#include "workload/demand_matrix.hpp"
#include "workload/generators.hpp"

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace san;
  bench::init_bench_cli(argc, argv);
  std::cout << "== DP scaling (Theorems 2 and 4) ==\n";
  std::cout << "threads: " << bench::bench_threads_resolved() << " of "
            << resolve_threads(0) << " hardware\n\n";

  std::ostringstream json_rows;
  const bool smoke = bench::bench_cli().smoke;
  const std::size_t requests =
      bench::scaled<std::size_t>(5000, 100000, 100000);
  const int top = bench::scaled(64, 256, 512);
  Table general({"n", "k", "serial s", "threaded s", "cost"});
  for (int n = top / 4; n <= top; n *= 2) {
    Trace t = gen_temporal(n, requests, 0.5, 3);
    DemandMatrix d = DemandMatrix::from_trace(t);
    d.prewarm();  // keep the one-time prefix build out of the timed cells
    for (int k : {2, 5, 10}) {
      auto t0 = std::chrono::steady_clock::now();
      const Cost serial_cost = optimal_routing_based_tree(k, d, 1).total_distance;
      const double serial = seconds_since(t0);
      t0 = std::chrono::steady_clock::now();
      const Cost thr_cost =
          optimal_routing_based_tree(k, d, bench::bench_threads())
              .total_distance;
      const double threaded = seconds_since(t0);
      if (serial_cost != thr_cost) {
        std::cerr << "BUG: serial and threaded DP disagree\n";
        return 1;
      }
      general.add_row({std::to_string(n), std::to_string(k),
                       fixed_cell(serial, 3), fixed_cell(threaded, 3),
                       std::to_string(serial_cost)});
      json_rows << (json_rows.tellp() > 0 ? ",\n" : "") << "    {\"n\": " << n
                << ", \"k\": " << k << ", \"serial\": " << fixed_cell(serial, 3)
                << ", \"threaded\": " << fixed_cell(threaded, 3)
                << ", \"cost\": " << serial_cost << "}";
    }
  }
  std::cout << "General demand-aware DP (flat engine):\n";
  general.print();

  // Large instances: hopeless under the O(n^3 k)-with-choice-tables
  // reference (0.32 s at n = 256, k = 10 was the old ceiling's shadow);
  // the flat engine reconstructs trees at n = 2048 and answers cost-only
  // queries at n = 4096 in the default container. Skipped in --smoke.
  std::ostringstream json_large;
  if (!smoke) {
    struct LargeCell {
      int n, k;
      bool cost_only;
    };
    const std::vector<LargeCell> cells = {
        {512, 2, false},  {512, 5, false},  {512, 10, false},
        {1024, 2, false}, {1024, 10, false}, {2048, 2, false},
        {2048, 2, true},  {4096, 2, true},
    };
    Table large({"n", "k", "mode", "time s", "cost"});
    int prev_n = 0;
    Trace t;
    std::vector<Cost> tree_cost_at_2048;
    DemandMatrix d(1);
    for (const LargeCell& c : cells) {
      if (c.n != prev_n) {
        t = gen_temporal(c.n, requests, 0.5, 3);
        d = DemandMatrix::from_trace(t);
        d.prewarm();
        prev_n = c.n;
      }
      const auto t0 = std::chrono::steady_clock::now();
      const Cost cost =
          c.cost_only
              ? optimal_routing_based_cost(c.k, d, bench::bench_threads())
              : optimal_routing_based_tree(c.k, d, bench::bench_threads())
                    .total_distance;
      const double secs = seconds_since(t0);
      if (c.n == 2048 && c.k == 2) {
        tree_cost_at_2048.push_back(cost);
        if (tree_cost_at_2048.size() == 2 &&
            tree_cost_at_2048[0] != tree_cost_at_2048[1]) {
          std::cerr << "BUG: cost-only and tree entry disagree at n=2048\n";
          return 1;
        }
      }
      const char* mode = c.cost_only ? "cost-only" : "tree";
      large.add_row({std::to_string(c.n), std::to_string(c.k), mode,
                     fixed_cell(secs, 3), std::to_string(cost)});
      json_large << (json_large.tellp() > 0 ? ",\n" : "")
                 << "    {\"n\": " << c.n << ", \"k\": " << c.k
                 << ", \"mode\": \"" << mode
                 << "\", \"seconds\": " << fixed_cell(secs, 3)
                 << ", \"cost\": " << cost << "}";
    }
    std::cout << "\nLarge instances (flat engine only):\n";
    large.print();
  }

  std::ostringstream json_uniform;
  Table uniform({"n", "k", "time s", "cost"});
  const std::vector<int> uniform_sizes =
      smoke ? std::vector<int>{200, 500, 1000}
            : std::vector<int>{1000, 4000, bench::full_scale() ? 16000 : 8000};
  for (int n : uniform_sizes) {
    for (int k : {2, 10}) {
      const auto t0 = std::chrono::steady_clock::now();
      const Cost c = optimal_uniform_cost(k, n);
      const double secs = seconds_since(t0);
      uniform.add_row({std::to_string(n), std::to_string(k),
                       fixed_cell(secs, 3), std::to_string(c)});
      json_uniform << (json_uniform.tellp() > 0 ? ",\n" : "")
                   << "    {\"n\": " << n << ", \"k\": " << k
                   << ", \"seconds\": " << fixed_cell(secs, 3)
                   << ", \"cost\": " << c << "}";
    }
  }
  std::cout << "\nUniform-workload DP, O(n^2 k):\n";
  uniform.print();

  bench::write_json_result(
      "{\n  \"bench\": \"dp_scaling\",\n  \"threads\": " +
      std::to_string(bench::bench_threads_resolved()) +
      ",\n  \"general_dp\": [\n" + json_rows.str() + "\n  ],\n" +
      "  \"large_dp\": [\n" + json_large.str() + "\n  ],\n" +
      "  \"uniform_dp\": [\n" + json_uniform.str() + "\n  ]\n}\n");
  return 0;
}
