// Microbenchmarks: latency of the rotation primitives and of a full serve,
// as a function of arity. Not a paper table — engineering data for the
// DESIGN.md ablation discussion (rotation cost grows with k while depth
// shrinks; the product is what the macro benches measure end to end).
#include <benchmark/benchmark.h>

#include <random>

#include "core/rotation.hpp"
#include "core/shape.hpp"
#include "core/splaynet.hpp"
#include "workload/generators.hpp"

namespace {

void BM_KSemiSplay(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const int n = 1 << 12;
  san::KAryTree tree =
      san::build_from_shape(k, san::make_complete_shape(n, k));
  std::mt19937_64 rng(1);
  for (auto _ : state) {
    san::NodeId x = 1 + static_cast<san::NodeId>(rng() % n);
    if (tree.node(x).parent == san::kNoNode) continue;
    benchmark::DoNotOptimize(san::k_semi_splay(tree, x));
  }
}
BENCHMARK(BM_KSemiSplay)->DenseRange(2, 10, 2);

void BM_KSplay(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const int n = 1 << 12;
  san::KAryTree tree =
      san::build_from_shape(k, san::make_complete_shape(n, k));
  std::mt19937_64 rng(2);
  for (auto _ : state) {
    san::NodeId x = 1 + static_cast<san::NodeId>(rng() % n);
    const san::NodeId p = tree.node(x).parent;
    if (p == san::kNoNode || tree.node(p).parent == san::kNoNode) continue;
    benchmark::DoNotOptimize(san::k_splay(tree, x));
  }
}
BENCHMARK(BM_KSplay)->DenseRange(2, 10, 2);

void BM_Serve(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const int n = 1 << 12;
  san::KArySplayNet net = san::KArySplayNet::balanced(k, n);
  san::Trace trace = san::gen_temporal(n, 1 << 16, 0.5, 3);
  size_t i = 0;
  for (auto _ : state) {
    const san::Request& r = trace.requests[i++ % trace.size()];
    benchmark::DoNotOptimize(net.serve(r.src, r.dst));
  }
}
BENCHMARK(BM_Serve)->DenseRange(2, 10, 2);

void BM_StaticDistance(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const int n = 1 << 12;
  san::KAryTree tree =
      san::build_from_shape(k, san::make_complete_shape(n, k));
  std::mt19937_64 rng(4);
  for (auto _ : state) {
    san::NodeId u = 1 + static_cast<san::NodeId>(rng() % n);
    san::NodeId v = 1 + static_cast<san::NodeId>(rng() % n);
    benchmark::DoNotOptimize(tree.distance(u, v));
  }
}
BENCHMARK(BM_StaticDistance)->DenseRange(2, 10, 2);

}  // namespace
