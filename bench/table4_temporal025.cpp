// Table 4: k-ary SplayNet on the synthetic workload with temporal
// complexity parameter 0.25 (low locality).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  san::bench::init_bench_cli(argc, argv);
  san::bench::PaperKaryTable paper{
      "Temporal 0.25",
      1389359,
      {"0.82x", "0.75x", "0.71x", "0.69x", "0.68x", "0.68x", "0.65x",
       "0.62x"},
      {"0.99x", "1.15x", "1.23x", "1.30x", "1.37x", "1.39x", "1.47x",
       "1.51x", "1.55x"},
      {"1.75x", "2.12x", "2.32x", "2.49x", "2.64x", "2.71x", "2.88x",
       "2.99x", "3.03x"},
  };
  san::bench::run_kary_table(san::WorkloadKind::kTemporal025, paper,
                             /*optimal_feasible=*/true);
  return 0;
}
