// Table 6: k-ary SplayNet on the synthetic workload with temporal
// complexity parameter 0.75 (high locality: the self-adjusting tree beats
// both static trees).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  san::bench::init_bench_cli(argc, argv);
  san::bench::PaperKaryTable paper{
      "Temporal 0.75",
      530049,
      {"0.85x", "0.78x", "0.75x", "0.73x", "0.72x", "0.72x", "0.70x",
       "0.67x"},
      {"0.38x", "0.45x", "0.49x", "0.52x", "0.55x", "0.56x", "0.59x",
       "0.61x", "0.64x"},
      {"0.68x", "0.84x", "0.94x", "1.02x", "1.09x", "1.12x", "1.19x",
       "1.24x", "1.26x"},
  };
  san::bench::run_kary_table(san::WorkloadKind::kTemporal075, paper,
                             /*optimal_feasible=*/true);
  return 0;
}
