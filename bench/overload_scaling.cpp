// Overload and degradation in the live frontend: what does each admission
// policy buy when offered load exceeds the service ceiling, and how fast
// does the dynamic fleet recover from kills and reshape itself under
// traffic?
//
// Part 1 — overload sweep: the bench first measures the saturation
// throughput of a zipf-skewed sharded config (all-zero arrival schedule),
// then offers Poisson load at 0.9x, 1.5x and 2x that ceiling under each
// queue policy. kBlock is lossless: past the ceiling the queue IS the
// backlog, so sojourn p99 grows with the run length. kShed trades
// completeness for latency — queueing stays bounded by the queue
// capacity and the excess is dropped at admission. kDeadline bounds
// staleness instead of queue depth:
// requests older than the budget are shed at admission and dequeue, so
// served p99 stays near the deadline no matter the overload factor.
//
// Part 2 — resilience under live traffic: a mid-run shard kill recovered
// by snapshot restore + tail replay vs replica promotion (250 ms SLO on
// the worst single recovery, same convention as bench_lifecycle_scaling),
// and a watermark-split run (contiguous partition, hot-range trace that
// overloads shard 0) where the fleet grows mid-flight — reported against
// a static run of the same trace so the lifecycle overhead is visible as
// an elapsed-time ratio.
//
// The checked-in BENCH_overload_scaling.json records this machine's
// numbers; --smoke shrinks everything to seconds-scale for CI.
#include <algorithm>
#include <iostream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/executor.hpp"
#include "sim/fault.hpp"
#include "sim/serve_frontend.hpp"
#include "stats/table.hpp"
#include "workload/arrival.hpp"
#include "workload/rebalance.hpp"

namespace {

using namespace san;

constexpr double kRecoverySloMs = 250.0;
constexpr double kDeadlineMs = 2.0;

struct OverloadRow {
  std::string policy;
  double load = 0.0;  // offered / saturation ceiling (0 = saturation row)
  double offered = 0.0;
  double achieved = 0.0;
  std::uint64_t served = 0;
  std::uint64_t shed = 0;
  std::uint64_t queue_full_blocks = 0;
  double shed_fraction = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double shed_p99_us = 0.0;
};

struct ResilienceRow {
  std::string mode;  // "restore" | "promote" | "split"
  double seconds = 0.0;
  Cost faults = 0;
  Cost promotions = 0;
  Cost replayed = 0;
  double recovery_max_ms = 0.0;
  bool slo_met = true;
  Cost splits = 0;
  std::uint64_t route_epochs = 0;
  double elapsed_ratio = 1.0;  // vs a static run of the same trace
};

FrontendOptions overload_options(QueuePolicy policy) {
  FrontendOptions opt;
  // Small enough that overload shows up as full queues within the run,
  // large enough that the healthy 0.9x point never fills it.
  opt.queue_capacity = 256;
  opt.queue_policy = policy;
  if (policy == QueuePolicy::kDeadline) opt.deadline_ms = kDeadlineMs;
  return opt;
}

OverloadRow run_overload_point(const Trace& trace, int k, int S,
                               QueuePolicy policy, ArrivalKind kind,
                               double rate, double load) {
  ShardedNetwork net =
      ShardedNetwork::balanced(k, trace.n, S, ShardPartition::kHash);
  ServeFrontend frontend(net, overload_options(policy));
  const auto arrivals = gen_arrival_times(
      kind, kind == ArrivalKind::kSaturation ? 0.0 : rate, trace.size(),
      bench::bench_seed());
  const FrontendResult r = frontend.run(trace, arrivals);
  OverloadRow row;
  row.policy = queue_policy_name(policy);
  row.load = load;
  row.offered = r.offered_rate;
  row.achieved = r.achieved_rate;
  row.served = r.sojourn.count();
  row.shed = r.sim.shed_requests;
  row.queue_full_blocks = r.sim.queue_full_blocks;
  row.shed_fraction = static_cast<double>(row.shed) /
                      static_cast<double>(r.sim.requests);
  row.p50_us = r.sim.latency.p50_us;
  row.p99_us = r.sim.latency.p99_us;
  row.shed_p99_us = static_cast<double>(r.shed.p99()) / 1e3;
  return row;
}

ResilienceRow run_kill_row(const Trace& trace, int k, int S, bool promote) {
  const std::size_t m = trace.size();
  FaultPlan plan;
  plan.kills = {{m / 2, S / 2, FaultKind::kShardKill}};
  plan.recovery_slo_ms = kRecoverySloMs;

  RebalanceConfig cfg;
  cfg.policy = RebalancePolicy::kNone;
  cfg.epoch_requests = std::max<std::size_t>(500, m / 8);
  // Promotion rows keep every shard replicated so the kill fails over by
  // pointer swap; restore rows force snapshot + tail replay.
  cfg.replicas = promote ? S : 0;

  ShardedNetwork net =
      ShardedNetwork::balanced(k, trace.n, S, ShardPartition::kHash);
  FrontendOptions opt;
  if (promote) opt.rebalance = &cfg;
  opt.faults = &plan;
  ServeFrontend frontend(net, opt);
  const auto arrivals = gen_arrival_times(ArrivalKind::kSaturation, 0.0,
                                          trace.size(), bench::bench_seed());
  const FrontendResult r = frontend.run(trace, arrivals);
  ResilienceRow row;
  row.mode = promote ? "promote" : "restore";
  row.seconds = r.elapsed_seconds;
  row.faults = r.sim.faults_injected;
  row.promotions = r.sim.replica_promotions;
  row.replayed = r.sim.recovery_replayed;
  row.recovery_max_ms = r.sim.recovery_max_ms;
  row.slo_met = r.sim.recovery_max_ms <= kRecoverySloMs;
  row.route_epochs = r.route_epochs;
  return row;
}

// The split row needs a shard that actually crosses the watermark;
// generator ids are shuffled across the id space, so instead hammer a
// sub-range of shard 0's contiguous slice (plus a trickle of uniform
// mice for cross-shard traffic).
Trace make_hot_range_trace(int n, std::size_t m, int S, std::uint64_t seed) {
  Trace trace;
  trace.n = n;
  trace.requests.reserve(m);
  std::mt19937_64 rng(seed);
  const NodeId hot = static_cast<NodeId>(std::max(2, (3 * (n / S)) / 4));
  for (std::size_t i = 0; i < m; ++i) {
    const bool mouse = rng() % 16 == 0;
    const NodeId span = mouse ? static_cast<NodeId>(n) : hot;
    const NodeId u = static_cast<NodeId>(1 + rng() % span);
    NodeId v = static_cast<NodeId>(1 + rng() % span);
    while (v == u) v = static_cast<NodeId>(1 + rng() % span);
    trace.requests.push_back({u, v});
  }
  return trace;
}

ResilienceRow run_split_row(const Trace& trace, int k, int S) {
  // Contiguous partition + the hot-range trace: shard 0 crosses the split
  // watermark and forces the fleet to grow mid-flight.
  const std::size_t m = trace.size();
  double static_elapsed;
  {
    ShardedNetwork net = ShardedNetwork::balanced(k, trace.n, S,
                                                  ShardPartition::kContiguous);
    ServeFrontend frontend(net, FrontendOptions{});
    const auto arrivals = gen_arrival_times(ArrivalKind::kSaturation, 0.0, m,
                                            bench::bench_seed());
    static_elapsed = frontend.run(trace, arrivals).elapsed_seconds;
  }
  RebalanceConfig cfg;
  cfg.policy = RebalancePolicy::kNone;  // isolate lifecycle from migrations
  cfg.epoch_requests = std::max<std::size_t>(500, m / 10);
  cfg.split_watermark = 1.5;
  cfg.max_shards = 2 * S;
  ShardedNetwork net = ShardedNetwork::balanced(k, trace.n, S,
                                                ShardPartition::kContiguous);
  FrontendOptions opt;
  opt.rebalance = &cfg;
  ServeFrontend frontend(net, opt);
  const auto arrivals = gen_arrival_times(ArrivalKind::kSaturation, 0.0, m,
                                          bench::bench_seed());
  const FrontendResult r = frontend.run(trace, arrivals);
  ResilienceRow row;
  row.mode = "split";
  row.seconds = r.elapsed_seconds;
  row.splits = r.sim.shard_splits;
  row.route_epochs = r.route_epochs;
  row.elapsed_ratio = static_elapsed > 0.0
                          ? r.elapsed_seconds / static_elapsed
                          : 1.0;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace san;
  bench::init_bench_cli(argc, argv);
  std::cout << "== overload scaling: admission policies and live recovery ==\n";
  std::cout << "hardware threads: " << resolve_threads(0) << "\n\n";

  // One dispatcher plus S shard workers share the host (see
  // bench_serve_frontend); more shards than cores measures
  // oversubscription, not overload.
  const int k = 3;
  const int S = std::clamp(resolve_threads(0) - 1, 2, 4);
  const int n = bench::scaled(64, 512, 2048);
  const std::size_t m = bench::scaled<std::size_t>(4000, 100000, 400000);
  const std::uint64_t seed = bench::bench_seed();

  const Trace zipf = gen_facebook(n, m, seed);

  // The throughput ceiling is policy-independent (no shedding at
  // saturation admission with kBlock), measured not assumed.
  const OverloadRow ceiling = run_overload_point(
      zipf, k, S, QueuePolicy::kBlock, ArrivalKind::kSaturation, 0.0, 0.0);
  const double ceiling_rate = ceiling.achieved;

  const std::vector<double> loads = {0.9, 1.5, 2.0};
  std::vector<OverloadRow> overload;
  overload.push_back(ceiling);
  for (double load : loads)
    for (QueuePolicy policy :
         {QueuePolicy::kBlock, QueuePolicy::kShed, QueuePolicy::kDeadline})
      overload.push_back(run_overload_point(zipf, k, S, policy,
                                            ArrivalKind::kPoisson,
                                            load * ceiling_rate, load));

  std::cout << "-- overload sweep (zipf, n=" << n << ", m=" << m
            << ", S=" << S << ", queue=256, deadline=" << kDeadlineMs
            << " ms, ceiling=" << static_cast<long long>(ceiling_rate)
            << " req/s) --\n";
  Table ot({"policy", "load", "offered req/s", "achieved req/s", "served",
            "shed", "shed frac", "blocks", "p50 us", "p99 us",
            "shed p99 us"});
  for (const OverloadRow& r : overload)
    ot.add_row({r.policy, fixed_cell(r.load, 2),
                std::to_string(static_cast<long long>(r.offered)),
                std::to_string(static_cast<long long>(r.achieved)),
                std::to_string(r.served), std::to_string(r.shed),
                fixed_cell(r.shed_fraction, 3),
                std::to_string(r.queue_full_blocks), fixed_cell(r.p50_us, 1),
                fixed_cell(r.p99_us, 1), fixed_cell(r.shed_p99_us, 1)});
  ot.print();
  std::cout << "\n";

  std::vector<ResilienceRow> resilience;
  resilience.push_back(run_kill_row(zipf, k, S, /*promote=*/false));
  resilience.push_back(run_kill_row(zipf, k, S, /*promote=*/true));
  resilience.push_back(
      run_split_row(make_hot_range_trace(n, m, S, seed), k, S));

  std::cout << "-- resilience under live traffic (SLO " << kRecoverySloMs
            << " ms) --\n";
  Table rt({"mode", "faults", "promotions", "replayed", "recovery max ms",
            "SLO", "splits", "route epochs", "elapsed ratio", "seconds"});
  for (const ResilienceRow& r : resilience)
    rt.add_row({r.mode, std::to_string(r.faults),
                std::to_string(r.promotions), std::to_string(r.replayed),
                fixed_cell(r.recovery_max_ms, 3),
                r.mode == "split" ? "-" : (r.slo_met ? "met" : "MISSED"),
                std::to_string(r.splits), std::to_string(r.route_epochs),
                fixed_cell(r.elapsed_ratio, 2), fixed_cell(r.seconds, 3)});
  rt.print();
  std::cout << "\n";

  std::ostringstream js;
  js << "{\n  \"bench\": \"overload_scaling\",\n  \"shards\": " << S
     << ",\n  \"k\": " << k << ",\n  \"n\": " << n
     << ",\n  \"requests\": " << m << ",\n  \"hardware_threads\": "
     << resolve_threads(0) << ",\n  \"queue_capacity\": 256"
     << ",\n  \"deadline_ms\": " << fixed_cell(kDeadlineMs, 1)
     << ",\n  \"recovery_slo_ms\": " << fixed_cell(kRecoverySloMs, 1)
     << ",\n  \"saturation_req_per_sec\": "
     << static_cast<long long>(ceiling_rate) << ",\n  \"overload\": [\n";
  for (std::size_t i = 0; i < overload.size(); ++i) {
    const OverloadRow& r = overload[i];
    js << "    {\"policy\": \"" << r.policy << "\", \"load\": "
       << fixed_cell(r.load, 2) << ", \"offered_req_per_sec\": "
       << static_cast<long long>(r.offered) << ", \"achieved_req_per_sec\": "
       << static_cast<long long>(r.achieved) << ", \"served\": " << r.served
       << ", \"shed\": " << r.shed << ", \"shed_fraction\": "
       << fixed_cell(r.shed_fraction, 4) << ", \"queue_full_blocks\": "
       << r.queue_full_blocks << ", \"p50_us\": " << fixed_cell(r.p50_us, 1)
       << ", \"p99_us\": " << fixed_cell(r.p99_us, 1) << ", \"shed_p99_us\": "
       << fixed_cell(r.shed_p99_us, 1) << "}"
       << (i + 1 < overload.size() ? ",\n" : "\n");
  }
  js << "  ],\n  \"resilience\": [\n";
  for (std::size_t i = 0; i < resilience.size(); ++i) {
    const ResilienceRow& r = resilience[i];
    js << "    {\"mode\": \"" << r.mode << "\", \"faults\": " << r.faults
       << ", \"promotions\": " << r.promotions << ", \"replayed\": "
       << r.replayed << ", \"recovery_max_ms\": "
       << fixed_cell(r.recovery_max_ms, 3) << ", \"slo_met\": "
       << (r.slo_met ? "true" : "false") << ", \"splits\": " << r.splits
       << ", \"route_epochs\": " << r.route_epochs << ", \"elapsed_ratio\": "
       << fixed_cell(r.elapsed_ratio, 3) << ", \"seconds\": "
       << fixed_cell(r.seconds, 4) << "}"
       << (i + 1 < resilience.size() ? ",\n" : "\n");
  }
  js << "  ]\n}\n";
  bench::write_json_result(js.str());
  return 0;
}
